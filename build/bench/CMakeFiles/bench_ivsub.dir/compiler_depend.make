# Empty compiler generated dependencies file for bench_ivsub.
# This may be replaced when dependencies are built.
