file(REMOVE_RECURSE
  "CMakeFiles/bench_ivsub.dir/bench_ivsub.cpp.o"
  "CMakeFiles/bench_ivsub.dir/bench_ivsub.cpp.o.d"
  "bench_ivsub"
  "bench_ivsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ivsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
