file(REMOVE_RECURSE
  "CMakeFiles/bench_striplen.dir/bench_striplen.cpp.o"
  "CMakeFiles/bench_striplen.dir/bench_striplen.cpp.o.d"
  "bench_striplen"
  "bench_striplen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_striplen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
