# Empty dependencies file for bench_striplen.
# This may be replaced when dependencies are built.
