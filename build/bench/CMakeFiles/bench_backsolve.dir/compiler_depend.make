# Empty compiler generated dependencies file for bench_backsolve.
# This may be replaced when dependencies are built.
