file(REMOVE_RECURSE
  "CMakeFiles/bench_backsolve.dir/bench_backsolve.cpp.o"
  "CMakeFiles/bench_backsolve.dir/bench_backsolve.cpp.o.d"
  "bench_backsolve"
  "bench_backsolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backsolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
