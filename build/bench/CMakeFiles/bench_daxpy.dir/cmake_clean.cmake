file(REMOVE_RECURSE
  "CMakeFiles/bench_daxpy.dir/bench_daxpy.cpp.o"
  "CMakeFiles/bench_daxpy.dir/bench_daxpy.cpp.o.d"
  "bench_daxpy"
  "bench_daxpy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_daxpy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
