# Empty dependencies file for bench_daxpy.
# This may be replaced when dependencies are built.
