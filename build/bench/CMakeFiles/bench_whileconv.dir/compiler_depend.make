# Empty compiler generated dependencies file for bench_whileconv.
# This may be replaced when dependencies are built.
