file(REMOVE_RECURSE
  "CMakeFiles/bench_whileconv.dir/bench_whileconv.cpp.o"
  "CMakeFiles/bench_whileconv.dir/bench_whileconv.cpp.o.d"
  "bench_whileconv"
  "bench_whileconv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whileconv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
