file(REMOVE_RECURSE
  "CMakeFiles/bench_constprop.dir/bench_constprop.cpp.o"
  "CMakeFiles/bench_constprop.dir/bench_constprop.cpp.o.d"
  "bench_constprop"
  "bench_constprop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_constprop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
