file(REMOVE_RECURSE
  "CMakeFiles/test_titan.dir/TitanTest.cpp.o"
  "CMakeFiles/test_titan.dir/TitanTest.cpp.o.d"
  "test_titan"
  "test_titan.pdb"
  "test_titan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_titan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
