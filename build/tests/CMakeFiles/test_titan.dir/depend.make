# Empty dependencies file for test_titan.
# This may be replaced when dependencies are built.
