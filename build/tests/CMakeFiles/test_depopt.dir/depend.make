# Empty dependencies file for test_depopt.
# This may be replaced when dependencies are built.
