file(REMOVE_RECURSE
  "CMakeFiles/test_depopt.dir/DepOptTest.cpp.o"
  "CMakeFiles/test_depopt.dir/DepOptTest.cpp.o.d"
  "test_depopt"
  "test_depopt.pdb"
  "test_depopt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
