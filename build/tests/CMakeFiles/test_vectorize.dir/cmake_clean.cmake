file(REMOVE_RECURSE
  "CMakeFiles/test_vectorize.dir/VectorizeTest.cpp.o"
  "CMakeFiles/test_vectorize.dir/VectorizeTest.cpp.o.d"
  "test_vectorize"
  "test_vectorize.pdb"
  "test_vectorize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vectorize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
