# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_lexer[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_il[1]_include.cmake")
include("/root/repo/build/tests/test_lower[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_scalar[1]_include.cmake")
include("/root/repo/build/tests/test_dependence[1]_include.cmake")
include("/root/repo/build/tests/test_vectorize[1]_include.cmake")
include("/root/repo/build/tests/test_execution[1]_include.cmake")
include("/root/repo/build/tests/test_inliner[1]_include.cmake")
include("/root/repo/build/tests/test_depopt[1]_include.cmake")
include("/root/repo/build/tests/test_titan[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
