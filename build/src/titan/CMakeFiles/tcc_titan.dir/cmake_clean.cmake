file(REMOVE_RECURSE
  "CMakeFiles/tcc_titan.dir/TitanMachine.cpp.o"
  "CMakeFiles/tcc_titan.dir/TitanMachine.cpp.o.d"
  "libtcc_titan.a"
  "libtcc_titan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_titan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
