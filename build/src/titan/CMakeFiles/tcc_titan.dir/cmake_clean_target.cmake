file(REMOVE_RECURSE
  "libtcc_titan.a"
)
