# Empty compiler generated dependencies file for tcc_titan.
# This may be replaced when dependencies are built.
