# Empty dependencies file for tcc_parser.
# This may be replaced when dependencies are built.
