file(REMOVE_RECURSE
  "CMakeFiles/tcc_parser.dir/Parser.cpp.o"
  "CMakeFiles/tcc_parser.dir/Parser.cpp.o.d"
  "libtcc_parser.a"
  "libtcc_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
