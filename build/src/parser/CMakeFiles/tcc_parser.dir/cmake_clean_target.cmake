file(REMOVE_RECURSE
  "libtcc_parser.a"
)
