file(REMOVE_RECURSE
  "libtcc_types.a"
)
