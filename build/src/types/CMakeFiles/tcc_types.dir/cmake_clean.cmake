file(REMOVE_RECURSE
  "CMakeFiles/tcc_types.dir/Type.cpp.o"
  "CMakeFiles/tcc_types.dir/Type.cpp.o.d"
  "libtcc_types.a"
  "libtcc_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
