# Empty dependencies file for tcc_types.
# This may be replaced when dependencies are built.
