# Empty compiler generated dependencies file for tcc_analysis.
# This may be replaced when dependencies are built.
