file(REMOVE_RECURSE
  "CMakeFiles/tcc_analysis.dir/CFG.cpp.o"
  "CMakeFiles/tcc_analysis.dir/CFG.cpp.o.d"
  "CMakeFiles/tcc_analysis.dir/CallGraph.cpp.o"
  "CMakeFiles/tcc_analysis.dir/CallGraph.cpp.o.d"
  "CMakeFiles/tcc_analysis.dir/UseDef.cpp.o"
  "CMakeFiles/tcc_analysis.dir/UseDef.cpp.o.d"
  "libtcc_analysis.a"
  "libtcc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
