file(REMOVE_RECURSE
  "libtcc_analysis.a"
)
