# Empty dependencies file for tcc_support.
# This may be replaced when dependencies are built.
