file(REMOVE_RECURSE
  "libtcc_support.a"
)
