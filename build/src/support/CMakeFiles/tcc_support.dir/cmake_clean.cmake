file(REMOVE_RECURSE
  "CMakeFiles/tcc_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/tcc_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/tcc_support.dir/SourceLoc.cpp.o"
  "CMakeFiles/tcc_support.dir/SourceLoc.cpp.o.d"
  "CMakeFiles/tcc_support.dir/StringExtras.cpp.o"
  "CMakeFiles/tcc_support.dir/StringExtras.cpp.o.d"
  "libtcc_support.a"
  "libtcc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
