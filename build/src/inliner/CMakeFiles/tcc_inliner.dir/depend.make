# Empty dependencies file for tcc_inliner.
# This may be replaced when dependencies are built.
