file(REMOVE_RECURSE
  "CMakeFiles/tcc_inliner.dir/Inliner.cpp.o"
  "CMakeFiles/tcc_inliner.dir/Inliner.cpp.o.d"
  "libtcc_inliner.a"
  "libtcc_inliner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_inliner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
