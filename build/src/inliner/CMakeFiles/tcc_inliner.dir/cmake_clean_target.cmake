file(REMOVE_RECURSE
  "libtcc_inliner.a"
)
