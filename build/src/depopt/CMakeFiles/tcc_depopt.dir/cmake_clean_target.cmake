file(REMOVE_RECURSE
  "libtcc_depopt.a"
)
