file(REMOVE_RECURSE
  "CMakeFiles/tcc_depopt.dir/DepOpt.cpp.o"
  "CMakeFiles/tcc_depopt.dir/DepOpt.cpp.o.d"
  "libtcc_depopt.a"
  "libtcc_depopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_depopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
