# Empty compiler generated dependencies file for tcc_depopt.
# This may be replaced when dependencies are built.
