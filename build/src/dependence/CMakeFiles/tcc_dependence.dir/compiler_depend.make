# Empty compiler generated dependencies file for tcc_dependence.
# This may be replaced when dependencies are built.
