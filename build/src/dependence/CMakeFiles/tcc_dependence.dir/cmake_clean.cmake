file(REMOVE_RECURSE
  "CMakeFiles/tcc_dependence.dir/DependenceGraph.cpp.o"
  "CMakeFiles/tcc_dependence.dir/DependenceGraph.cpp.o.d"
  "CMakeFiles/tcc_dependence.dir/MemRef.cpp.o"
  "CMakeFiles/tcc_dependence.dir/MemRef.cpp.o.d"
  "libtcc_dependence.a"
  "libtcc_dependence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
