file(REMOVE_RECURSE
  "libtcc_dependence.a"
)
