file(REMOVE_RECURSE
  "CMakeFiles/tcc_codegen.dir/Codegen.cpp.o"
  "CMakeFiles/tcc_codegen.dir/Codegen.cpp.o.d"
  "libtcc_codegen.a"
  "libtcc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
