file(REMOVE_RECURSE
  "libtcc_codegen.a"
)
