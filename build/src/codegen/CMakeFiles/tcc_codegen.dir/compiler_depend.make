# Empty compiler generated dependencies file for tcc_codegen.
# This may be replaced when dependencies are built.
