file(REMOVE_RECURSE
  "CMakeFiles/tcc_vector.dir/Vectorize.cpp.o"
  "CMakeFiles/tcc_vector.dir/Vectorize.cpp.o.d"
  "libtcc_vector.a"
  "libtcc_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
