file(REMOVE_RECURSE
  "libtcc_vector.a"
)
