# Empty compiler generated dependencies file for tcc_vector.
# This may be replaced when dependencies are built.
