file(REMOVE_RECURSE
  "libtcc_lexer.a"
)
