file(REMOVE_RECURSE
  "CMakeFiles/tcc_lexer.dir/Lexer.cpp.o"
  "CMakeFiles/tcc_lexer.dir/Lexer.cpp.o.d"
  "libtcc_lexer.a"
  "libtcc_lexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
