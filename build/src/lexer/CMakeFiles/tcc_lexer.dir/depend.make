# Empty dependencies file for tcc_lexer.
# This may be replaced when dependencies are built.
