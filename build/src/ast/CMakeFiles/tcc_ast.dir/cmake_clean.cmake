file(REMOVE_RECURSE
  "CMakeFiles/tcc_ast.dir/Ast.cpp.o"
  "CMakeFiles/tcc_ast.dir/Ast.cpp.o.d"
  "libtcc_ast.a"
  "libtcc_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
