# Empty dependencies file for tcc_ast.
# This may be replaced when dependencies are built.
