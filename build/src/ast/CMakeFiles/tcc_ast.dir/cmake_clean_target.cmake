file(REMOVE_RECURSE
  "libtcc_ast.a"
)
