file(REMOVE_RECURSE
  "CMakeFiles/tcc_scalar.dir/ConstProp.cpp.o"
  "CMakeFiles/tcc_scalar.dir/ConstProp.cpp.o.d"
  "CMakeFiles/tcc_scalar.dir/DeadCode.cpp.o"
  "CMakeFiles/tcc_scalar.dir/DeadCode.cpp.o.d"
  "CMakeFiles/tcc_scalar.dir/Fold.cpp.o"
  "CMakeFiles/tcc_scalar.dir/Fold.cpp.o.d"
  "CMakeFiles/tcc_scalar.dir/InductionVarSub.cpp.o"
  "CMakeFiles/tcc_scalar.dir/InductionVarSub.cpp.o.d"
  "CMakeFiles/tcc_scalar.dir/LinearValues.cpp.o"
  "CMakeFiles/tcc_scalar.dir/LinearValues.cpp.o.d"
  "CMakeFiles/tcc_scalar.dir/WhileToDo.cpp.o"
  "CMakeFiles/tcc_scalar.dir/WhileToDo.cpp.o.d"
  "libtcc_scalar.a"
  "libtcc_scalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_scalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
