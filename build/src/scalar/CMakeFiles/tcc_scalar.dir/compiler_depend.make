# Empty compiler generated dependencies file for tcc_scalar.
# This may be replaced when dependencies are built.
