file(REMOVE_RECURSE
  "libtcc_scalar.a"
)
