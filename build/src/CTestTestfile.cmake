# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("types")
subdirs("lexer")
subdirs("ast")
subdirs("parser")
subdirs("il")
subdirs("frontend")
subdirs("analysis")
subdirs("scalar")
subdirs("dependence")
subdirs("vector")
subdirs("titan")
subdirs("codegen")
subdirs("inliner")
subdirs("depopt")
subdirs("driver")
