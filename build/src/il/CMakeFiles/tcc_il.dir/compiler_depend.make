# Empty compiler generated dependencies file for tcc_il.
# This may be replaced when dependencies are built.
