file(REMOVE_RECURSE
  "CMakeFiles/tcc_il.dir/IL.cpp.o"
  "CMakeFiles/tcc_il.dir/IL.cpp.o.d"
  "CMakeFiles/tcc_il.dir/ILPrinter.cpp.o"
  "CMakeFiles/tcc_il.dir/ILPrinter.cpp.o.d"
  "CMakeFiles/tcc_il.dir/ILSerializer.cpp.o"
  "CMakeFiles/tcc_il.dir/ILSerializer.cpp.o.d"
  "libtcc_il.a"
  "libtcc_il.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_il.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
