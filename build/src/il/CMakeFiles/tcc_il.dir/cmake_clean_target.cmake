file(REMOVE_RECURSE
  "libtcc_il.a"
)
