file(REMOVE_RECURSE
  "CMakeFiles/tcc_frontend.dir/Lower.cpp.o"
  "CMakeFiles/tcc_frontend.dir/Lower.cpp.o.d"
  "libtcc_frontend.a"
  "libtcc_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
