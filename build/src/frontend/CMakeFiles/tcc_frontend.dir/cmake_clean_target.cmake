file(REMOVE_RECURSE
  "libtcc_frontend.a"
)
