# Empty compiler generated dependencies file for tcc_frontend.
# This may be replaced when dependencies are built.
