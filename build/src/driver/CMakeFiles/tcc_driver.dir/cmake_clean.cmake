file(REMOVE_RECURSE
  "CMakeFiles/tcc_driver.dir/Compiler.cpp.o"
  "CMakeFiles/tcc_driver.dir/Compiler.cpp.o.d"
  "libtcc_driver.a"
  "libtcc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
