file(REMOVE_RECURSE
  "libtcc_driver.a"
)
