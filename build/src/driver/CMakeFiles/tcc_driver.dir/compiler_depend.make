# Empty compiler generated dependencies file for tcc_driver.
# This may be replaced when dependencies are built.
