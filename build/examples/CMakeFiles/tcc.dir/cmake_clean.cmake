file(REMOVE_RECURSE
  "CMakeFiles/tcc.dir/tcc_main.cpp.o"
  "CMakeFiles/tcc.dir/tcc_main.cpp.o.d"
  "tcc"
  "tcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
