# Empty dependencies file for tcc.
# This may be replaced when dependencies are built.
