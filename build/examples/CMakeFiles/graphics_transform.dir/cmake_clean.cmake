file(REMOVE_RECURSE
  "CMakeFiles/graphics_transform.dir/graphics_transform.cpp.o"
  "CMakeFiles/graphics_transform.dir/graphics_transform.cpp.o.d"
  "graphics_transform"
  "graphics_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphics_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
