# Empty compiler generated dependencies file for blas_catalog.
# This may be replaced when dependencies are built.
