file(REMOVE_RECURSE
  "CMakeFiles/blas_catalog.dir/blas_catalog.cpp.o"
  "CMakeFiles/blas_catalog.dir/blas_catalog.cpp.o.d"
  "blas_catalog"
  "blas_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blas_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
