# Empty compiler generated dependencies file for backsolve_demo.
# This may be replaced when dependencies are built.
