file(REMOVE_RECURSE
  "CMakeFiles/backsolve_demo.dir/backsolve_demo.cpp.o"
  "CMakeFiles/backsolve_demo.dir/backsolve_demo.cpp.o.d"
  "backsolve_demo"
  "backsolve_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backsolve_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
