
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/tcc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/tcc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/titan/CMakeFiles/tcc_titan.dir/DependInfo.cmake"
  "/root/repo/build/src/inliner/CMakeFiles/tcc_inliner.dir/DependInfo.cmake"
  "/root/repo/build/src/depopt/CMakeFiles/tcc_depopt.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/tcc_vector.dir/DependInfo.cmake"
  "/root/repo/build/src/dependence/CMakeFiles/tcc_dependence.dir/DependInfo.cmake"
  "/root/repo/build/src/scalar/CMakeFiles/tcc_scalar.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tcc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/tcc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/tcc_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/il/CMakeFiles/tcc_il.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/tcc_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/tcc_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/tcc_types.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
