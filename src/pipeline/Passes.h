//===----------------------------------------------------------------------===//
///
/// \file
/// The built-in passes: every optimization phase of the paper's pipeline
/// wrapped behind the Pass interface, plus the IL verifier as a pass.
///
/// Registered names (also the stage-capture keys):
///   inline     — cross-file inline expansion (Section 7)
///   whiletodo  — while→DO conversion with incremental use-def patching
///                (Section 5.2); the only pass that *preserves* use-def
///   ivsub      — induction-variable substitution (Section 8)
///   constprop  — constant propagation ⨝ unreachable-code elimination
///   dce        — dead-code elimination
///   spread     — outer-loop multiprocessor spreading with call-safety
///                summaries (Section 9); runs before vectorize so the
///                outer loop takes the parallel region and inner loops
///                still vectorize
///   vectorize  — Allen–Kennedy vectorization + strip-mining +
///                multiprocessor spreading (Sections 5 and 9)
///   depopt     — dependence-driven optimization: scalar replacement,
///                conflict-free load marking, strength reduction
///                (Section 6)
///   verify     — the ILVerifier as an explicitly schedulable pass
///
//===----------------------------------------------------------------------===//

#ifndef TCC_PIPELINE_PASSES_H
#define TCC_PIPELINE_PASSES_H

#include "pipeline/Pass.h"

#include <memory>

namespace tcc {
namespace pipeline {

std::unique_ptr<Pass> createInlinePass();
std::unique_ptr<Pass> createWhileToDoPass();
std::unique_ptr<Pass> createIVSubPass();
std::unique_ptr<Pass> createConstPropPass();
std::unique_ptr<Pass> createDCEPass();
std::unique_ptr<Pass> createSpreadPass();
std::unique_ptr<Pass> createVectorizePass();
std::unique_ptr<Pass> createDepOptPass();
std::unique_ptr<Pass> createVerifyPass();

} // namespace pipeline
} // namespace tcc

#endif // TCC_PIPELINE_PASSES_H
