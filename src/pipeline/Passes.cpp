#include "pipeline/Passes.h"

#include "dependence/DependenceGraph.h"
#include "parallel/CallSafety.h"
#include "pipeline/AnalysisContext.h"
#include "pipeline/ILVerifier.h"

using namespace tcc;
using namespace tcc::pipeline;

namespace {

//===----------------------------------------------------------------------===//
// inline
//===----------------------------------------------------------------------===//

/// Module pass: inline expansion works over the call graph and splices
/// one function's body into another, so it cannot be scheduled
/// function-at-a-time.
class InlinePass : public ModulePass {
public:
  std::string name() const override { return "inline"; }

  remarks::StatGroup run(PassContext &Ctx) override {
    auto S = inliner::inlineCalls(Ctx.Program, Ctx.Diags,
                                  Ctx.Options.Inline, Ctx.Options.Catalog);
    auto &Acc = Ctx.Stats.Inline;
    Acc.CallsInlined += S.CallsInlined;
    Acc.CallsLeft += S.CallsLeft;
    Acc.RecursionSkipped += S.RecursionSkipped;
    Acc.StaticsDemoted += S.StaticsDemoted;
    Acc.StaticsExternalized += S.StaticsExternalized;
    Acc.RowArgsPromoted += S.RowArgsPromoted;

    remarks::StatGroup SG(name());
    SG.set("calls.inlined", S.CallsInlined);
    SG.set("calls.left", S.CallsLeft);
    SG.set("recursion.skipped", S.RecursionSkipped);
    SG.set("statics.demoted", S.StaticsDemoted);
    SG.set("statics.externalized", S.StaticsExternalized);
    SG.set("rowargs.promoted", S.RowArgsPromoted);
    if (S.CallsLeft)
      Ctx.Remarks.missed(name(), SourceLoc(),
                         std::to_string(S.CallsLeft) +
                             " call site(s) left unexpanded");
    return SG;
  }
};

//===----------------------------------------------------------------------===//
// whiletodo
//===----------------------------------------------------------------------===//

class WhileToDoPass : public FunctionPass {
public:
  std::string name() const override { return "whiletodo"; }

  // Converted loops patch the use-def chains incrementally (paper
  // Section 5.2), so those stay valid.  The memory-dependence analyses
  // do not survive the loop restructuring and are rebuilt on demand.
  PreservedSet preservedAnalyses() const override {
    return PreservedSet::none().preserve(AnalysisKind::UseDef);
  }

  remarks::StatGroup runOnFunction(il::Function &F,
                                   PassContext &Ctx) override {
    auto &UD = Ctx.Analyses.useDef(F);
    auto S = scalar::convertWhileLoops(F, &UD);
    Ctx.Stats.WhileToDo.Attempted += S.Attempted;
    Ctx.Stats.WhileToDo.Converted += S.Converted;

    remarks::StatGroup SG(name());
    SG.set("loops.attempted", S.Attempted);
    SG.set("loops.converted", S.Converted);
    return SG;
  }
};

//===----------------------------------------------------------------------===//
// ivsub
//===----------------------------------------------------------------------===//

class IVSubPass : public FunctionPass {
public:
  std::string name() const override { return "ivsub"; }

  remarks::StatGroup runOnFunction(il::Function &F,
                                   PassContext &Ctx) override {
    auto S = scalar::substituteInductionVariables(F, Ctx.Options.IVSub);
    auto &Acc = Ctx.Stats.IVSub;
    Acc.LoopsProcessed += S.LoopsProcessed;
    Acc.FamilyMembers += S.FamilyMembers;
    Acc.UsesRewritten += S.UsesRewritten;
    Acc.Substitutions += S.Substitutions;
    Acc.Blocked += S.Blocked;
    Acc.Backtracks += S.Backtracks;
    Acc.Passes += S.Passes;

    remarks::StatGroup SG(name());
    SG.set("loops.processed", S.LoopsProcessed);
    SG.set("ivs.recognized", S.FamilyMembers);
    SG.set("uses.rewritten", S.UsesRewritten);
    SG.set("stmts.substituted", S.Substitutions);
    SG.set("stmts.blocked", S.Blocked);
    SG.set("backtracks", S.Backtracks);
    SG.set("passes", S.Passes);
    return SG;
  }
};

//===----------------------------------------------------------------------===//
// constprop
//===----------------------------------------------------------------------===//

class ConstPropPass : public FunctionPass {
public:
  std::string name() const override { return "constprop"; }

  remarks::StatGroup runOnFunction(il::Function &F,
                                   PassContext &Ctx) override {
    auto S = scalar::propagateConstants(F, Ctx.Options.ConstProp);
    auto &Acc = Ctx.Stats.ConstProp;
    Acc.UsesReplaced += S.UsesReplaced;
    Acc.BranchesFolded += S.BranchesFolded;
    Acc.LoopsDeleted += S.LoopsDeleted;
    Acc.StmtsRemoved += S.StmtsRemoved;
    Acc.Requeues += S.Requeues;
    Acc.PostpassRemoved += S.PostpassRemoved;

    remarks::StatGroup SG(name());
    SG.set("uses.replaced", S.UsesReplaced);
    SG.set("branches.folded", S.BranchesFolded);
    SG.set("loops.deleted", S.LoopsDeleted);
    SG.set("stmts.removed", S.StmtsRemoved);
    SG.set("requeues", S.Requeues);
    SG.set("postpass.removed", S.PostpassRemoved);
    return SG;
  }
};

//===----------------------------------------------------------------------===//
// dce
//===----------------------------------------------------------------------===//

class DCEPass : public FunctionPass {
public:
  std::string name() const override { return "dce"; }

  remarks::StatGroup runOnFunction(il::Function &F,
                                   PassContext &Ctx) override {
    auto S = scalar::eliminateDeadCode(F);
    auto &Acc = Ctx.Stats.DCE;
    Acc.AssignsRemoved += S.AssignsRemoved;
    Acc.EmptyControlRemoved += S.EmptyControlRemoved;
    Acc.LabelsRemoved += S.LabelsRemoved;

    remarks::StatGroup SG(name());
    SG.set("assigns.removed", S.AssignsRemoved);
    SG.set("controls.removed", S.EmptyControlRemoved);
    SG.set("labels.removed", S.LabelsRemoved);
    return SG;
  }
};

//===----------------------------------------------------------------------===//
// vectorize
//===----------------------------------------------------------------------===//

class VectorizePass : public FunctionPass {
public:
  std::string name() const override { return "vectorize"; }

  remarks::StatGroup runOnFunction(il::Function &F,
                                   PassContext &Ctx) override {
    vec::VectorizeOptions Opts = Ctx.Options.Vectorize;
    Opts.Remarks = &Ctx.Remarks; // source-located loop remarks
    // Borrow the cached analyses for the selected dependence stack.  The
    // memssa graph was built over the current body (any earlier mutation
    // invalidated it); statements the vectorizer has not reached yet keep
    // their identities, so the graph stays valid across the rewrite.
    const analysis::PointsToInfo *PT = nullptr;
    const analysis::MemorySSA *MSSA = nullptr;
    if (Ctx.Options.DepAnalysis == dep::DepAnalysisKind::MemSSA) {
      PT = &Ctx.Analyses.pointsTo(Ctx.Program);
      MSSA = &Ctx.Analyses.memorySSA(F);
    }
    dep::DependenceAnalysis DA(Ctx.Options.DepAnalysis, PT, MSSA);
    Opts.DepAnalysis = &DA;
    auto S = vec::vectorizeLoops(F, Opts);
    auto &Acc = Ctx.Stats.Vectorize;
    Acc.LoopsConsidered += S.LoopsConsidered;
    Acc.LoopsVectorized += S.LoopsVectorized;
    Acc.LoopsDistributed += S.LoopsDistributed;
    Acc.VectorStmts += S.VectorStmts;
    Acc.SerialLoops += S.SerialLoops;
    Acc.SpreadSerialLoops += S.SpreadSerialLoops;
    Acc.ParallelLoops += S.ParallelLoops;
    Acc.StripLoops += S.StripLoops;
    Acc.UnstripedVectorStmts += S.UnstripedVectorStmts;

    remarks::StatGroup SG(name());
    SG.set("loops.considered", S.LoopsConsidered);
    SG.set("loops.vectorized", S.LoopsVectorized);
    SG.set("loops.distributed", S.LoopsDistributed);
    SG.set("loops.stripmined", S.StripLoops);
    SG.set("vector.stmts", S.VectorStmts);
    SG.set("serial.loops", S.SerialLoops);
    SG.set("parallel.loops", S.ParallelLoops);
    return SG;
  }
};

//===----------------------------------------------------------------------===//
// spread
//===----------------------------------------------------------------------===//

/// Module pass: the call-safety summaries read every callee's body, so
/// scheduling it function-at-a-time would break the function-pass
/// contract (and the per-function compile cache) the moment another
/// function's IL changed between runs.
class SpreadPass : public ModulePass {
public:
  std::string name() const override { return "spread"; }

  // Only DoLoop Parallel bits flip; no IL the cached analyses model is
  // touched.
  PreservedSet preservedAnalyses() const override {
    return PreservedSet::all();
  }

  remarks::StatGroup run(PassContext &Ctx) override {
    par::SpreadStats Total;
    if (Ctx.Options.Spread.Processors > 1) {
      par::CallSafetyAnalysis CallSafety(Ctx.Program);
      for (const auto &FPtr : Ctx.Program.getFunctions()) {
        il::Function &F = *FPtr;
        par::SpreadOptions Opts = Ctx.Options.Spread;
        Opts.Remarks = &Ctx.Remarks;
        Opts.CallSafety = &CallSafety;
        Opts.FortranPointerSemantics =
            Ctx.Options.Vectorize.FortranPointerSemantics ||
            F.hasFortranPointerSemantics();
        const analysis::PointsToInfo *PT = nullptr;
        const analysis::MemorySSA *MSSA = nullptr;
        if (Ctx.Options.DepAnalysis == dep::DepAnalysisKind::MemSSA) {
          PT = &Ctx.Analyses.pointsTo(Ctx.Program);
          MSSA = &Ctx.Analyses.memorySSA(F);
        }
        dep::DependenceAnalysis DA(Ctx.Options.DepAnalysis, PT, MSSA);
        Opts.DepAnalysis = &DA;
        par::SpreadStats S = par::spreadFunction(F, Opts);
        Total.LoopsConsidered += S.LoopsConsidered;
        Total.LoopsSpread += S.LoopsSpread;
        Total.Reductions += S.Reductions;
        Total.RejectedDependence += S.RejectedDependence;
        Total.RejectedCalls += S.RejectedCalls;
        Total.RejectedScalars += S.RejectedScalars;
        Total.RejectedStructure += S.RejectedStructure;
        Total.RejectedUnprofitable += S.RejectedUnprofitable;
      }
    }
    auto &Acc = Ctx.Stats.Spread;
    Acc.LoopsConsidered += Total.LoopsConsidered;
    Acc.LoopsSpread += Total.LoopsSpread;
    Acc.Reductions += Total.Reductions;
    Acc.RejectedDependence += Total.RejectedDependence;
    Acc.RejectedCalls += Total.RejectedCalls;
    Acc.RejectedScalars += Total.RejectedScalars;
    Acc.RejectedStructure += Total.RejectedStructure;
    Acc.RejectedUnprofitable += Total.RejectedUnprofitable;

    remarks::StatGroup SG(name());
    SG.set("loops.considered", Total.LoopsConsidered);
    SG.set("loops.spread", Total.LoopsSpread);
    SG.set("reductions", Total.Reductions);
    SG.set("rejected.dependence", Total.RejectedDependence);
    SG.set("rejected.calls", Total.RejectedCalls);
    SG.set("rejected.scalars", Total.RejectedScalars);
    SG.set("rejected.structure", Total.RejectedStructure);
    SG.set("rejected.unprofitable", Total.RejectedUnprofitable);
    return SG;
  }
};

//===----------------------------------------------------------------------===//
// depopt
//===----------------------------------------------------------------------===//

class DepOptPass : public FunctionPass {
public:
  std::string name() const override { return "depopt"; }

  remarks::StatGroup runOnFunction(il::Function &F,
                                   PassContext &Ctx) override {
    depopt::ScalarReplaceStats SR;
    depopt::StrengthReduceStats STR;
    // Scalar replacement first: it removes the loop-carried loads, after
    // which the remaining loads are conflict-free.  Conflict-free marking
    // runs before strength reduction rewrites the address forms the
    // dependence analysis reads.  Each stage prepares its own facade over
    // the cached points-to result: the previous stage rewrote the body,
    // so the per-function graph is rebuilt rather than borrowed.
    const analysis::PointsToInfo *PT = nullptr;
    if (Ctx.Options.DepAnalysis == dep::DepAnalysisKind::MemSSA)
      PT = &Ctx.Analyses.pointsTo(Ctx.Program);
    if (Ctx.Options.EnableScalarReplacement) {
      dep::DependenceAnalysis DA(Ctx.Options.DepAnalysis, PT);
      DA.prepare(F);
      auto S = depopt::applyScalarReplacement(F, &DA);
      SR.LoopsApplied += S.LoopsApplied;
      SR.LoadsEliminated += S.LoadsEliminated;
    }
    if (Ctx.Options.EnableDepScheduling) {
      dep::DependenceAnalysis DA(Ctx.Options.DepAnalysis, PT);
      DA.prepare(F);
      dep::markConflictFreeLoads(F, &DA);
    }
    if (Ctx.Options.EnableStrengthReduction) {
      auto S = depopt::applyStrengthReduction(F);
      STR.LoopsApplied += S.LoopsApplied;
      STR.AddressTemps += S.AddressTemps;
      STR.RefsRewritten += S.RefsRewritten;
      STR.InvariantsHoisted += S.InvariantsHoisted;
      STR.SharedTemps += S.SharedTemps;
    }
    auto &AccSR = Ctx.Stats.ScalarReplace;
    AccSR.LoopsApplied += SR.LoopsApplied;
    AccSR.LoadsEliminated += SR.LoadsEliminated;
    auto &AccST = Ctx.Stats.StrengthReduce;
    AccST.LoopsApplied += STR.LoopsApplied;
    AccST.AddressTemps += STR.AddressTemps;
    AccST.RefsRewritten += STR.RefsRewritten;
    AccST.InvariantsHoisted += STR.InvariantsHoisted;
    AccST.SharedTemps += STR.SharedTemps;

    remarks::StatGroup SG(name());
    SG.set("scalarrepl.loops", SR.LoopsApplied);
    SG.set("scalarrepl.loads", SR.LoadsEliminated);
    SG.set("strength.loops", STR.LoopsApplied);
    SG.set("strength.temps", STR.AddressTemps);
    SG.set("strength.refs", STR.RefsRewritten);
    SG.set("strength.hoisted", STR.InvariantsHoisted);
    SG.set("strength.cse", STR.SharedTemps);
    return SG;
  }
};

//===----------------------------------------------------------------------===//
// verify
//===----------------------------------------------------------------------===//

/// Module pass: the explicitly scheduled verifier checks cross-function
/// invariants (duplicate function names, global ownership), not just one
/// body.
class VerifyPass : public ModulePass {
public:
  std::string name() const override { return "verify"; }

  PreservedSet preservedAnalyses() const override {
    return PreservedSet::all();
  }

  remarks::StatGroup run(PassContext &Ctx) override {
    VerifierReport Report = verifyProgram(Ctx.Program);
    for (const std::string &E : Report.Errors)
      Ctx.Diags.error(SourceLoc(), "IL verifier: " + E);

    remarks::StatGroup SG(name());
    SG.set("functions.checked", Ctx.Program.getFunctions().size());
    SG.set("errors", Report.Errors.size());
    return SG;
  }
};

} // namespace

std::unique_ptr<Pass> pipeline::createInlinePass() {
  return std::make_unique<InlinePass>();
}
std::unique_ptr<Pass> pipeline::createWhileToDoPass() {
  return std::make_unique<WhileToDoPass>();
}
std::unique_ptr<Pass> pipeline::createIVSubPass() {
  return std::make_unique<IVSubPass>();
}
std::unique_ptr<Pass> pipeline::createConstPropPass() {
  return std::make_unique<ConstPropPass>();
}
std::unique_ptr<Pass> pipeline::createDCEPass() {
  return std::make_unique<DCEPass>();
}
std::unique_ptr<Pass> pipeline::createVectorizePass() {
  return std::make_unique<VectorizePass>();
}
std::unique_ptr<Pass> pipeline::createSpreadPass() {
  return std::make_unique<SpreadPass>();
}
std::unique_ptr<Pass> pipeline::createDepOptPass() {
  return std::make_unique<DepOptPass>();
}
std::unique_ptr<Pass> pipeline::createVerifyPass() {
  return std::make_unique<VerifyPass>();
}
