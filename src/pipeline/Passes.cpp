#include "pipeline/Passes.h"

#include "dependence/DependenceGraph.h"
#include "pipeline/AnalysisContext.h"
#include "pipeline/ILVerifier.h"

using namespace tcc;
using namespace tcc::pipeline;

namespace {

//===----------------------------------------------------------------------===//
// inline
//===----------------------------------------------------------------------===//

class InlinePass : public Pass {
public:
  std::string name() const override { return "inline"; }

  remarks::StatGroup run(PassContext &Ctx) override {
    auto S = inliner::inlineCalls(Ctx.Program, Ctx.Diags,
                                  Ctx.Options.Inline, Ctx.Options.Catalog);
    auto &Acc = Ctx.Stats.Inline;
    Acc.CallsInlined += S.CallsInlined;
    Acc.CallsLeft += S.CallsLeft;
    Acc.RecursionSkipped += S.RecursionSkipped;
    Acc.StaticsDemoted += S.StaticsDemoted;
    Acc.StaticsExternalized += S.StaticsExternalized;
    Acc.RowArgsPromoted += S.RowArgsPromoted;

    remarks::StatGroup SG(name());
    SG.set("calls.inlined", S.CallsInlined);
    SG.set("calls.left", S.CallsLeft);
    SG.set("recursion.skipped", S.RecursionSkipped);
    SG.set("statics.demoted", S.StaticsDemoted);
    SG.set("statics.externalized", S.StaticsExternalized);
    SG.set("rowargs.promoted", S.RowArgsPromoted);
    if (S.CallsLeft)
      Ctx.Remarks.missed(name(), SourceLoc(),
                         std::to_string(S.CallsLeft) +
                             " call site(s) left unexpanded");
    return SG;
  }
};

//===----------------------------------------------------------------------===//
// whiletodo
//===----------------------------------------------------------------------===//

class WhileToDoPass : public Pass {
public:
  std::string name() const override { return "whiletodo"; }

  // Converted loops patch the chains incrementally (paper Section 5.2).
  bool preservesUseDef() const override { return true; }

  remarks::StatGroup run(PassContext &Ctx) override {
    scalar::WhileToDoStats Total;
    for (const auto &F : Ctx.Program.getFunctions()) {
      auto &UD = Ctx.Analyses.useDef(*F);
      auto S = scalar::convertWhileLoops(*F, &UD);
      Total.Attempted += S.Attempted;
      Total.Converted += S.Converted;
    }
    Ctx.Stats.WhileToDo.Attempted += Total.Attempted;
    Ctx.Stats.WhileToDo.Converted += Total.Converted;

    remarks::StatGroup SG(name());
    SG.set("loops.attempted", Total.Attempted);
    SG.set("loops.converted", Total.Converted);
    return SG;
  }
};

//===----------------------------------------------------------------------===//
// ivsub
//===----------------------------------------------------------------------===//

class IVSubPass : public Pass {
public:
  std::string name() const override { return "ivsub"; }

  remarks::StatGroup run(PassContext &Ctx) override {
    scalar::IVSubStats Total;
    for (const auto &F : Ctx.Program.getFunctions()) {
      auto S = scalar::substituteInductionVariables(*F, Ctx.Options.IVSub);
      Total.LoopsProcessed += S.LoopsProcessed;
      Total.FamilyMembers += S.FamilyMembers;
      Total.UsesRewritten += S.UsesRewritten;
      Total.Substitutions += S.Substitutions;
      Total.Blocked += S.Blocked;
      Total.Backtracks += S.Backtracks;
      Total.Passes += S.Passes;
    }
    auto &Acc = Ctx.Stats.IVSub;
    Acc.LoopsProcessed += Total.LoopsProcessed;
    Acc.FamilyMembers += Total.FamilyMembers;
    Acc.UsesRewritten += Total.UsesRewritten;
    Acc.Substitutions += Total.Substitutions;
    Acc.Blocked += Total.Blocked;
    Acc.Backtracks += Total.Backtracks;
    Acc.Passes += Total.Passes;

    remarks::StatGroup SG(name());
    SG.set("loops.processed", Total.LoopsProcessed);
    SG.set("ivs.recognized", Total.FamilyMembers);
    SG.set("uses.rewritten", Total.UsesRewritten);
    SG.set("stmts.substituted", Total.Substitutions);
    SG.set("stmts.blocked", Total.Blocked);
    SG.set("backtracks", Total.Backtracks);
    SG.set("passes", Total.Passes);
    return SG;
  }
};

//===----------------------------------------------------------------------===//
// constprop
//===----------------------------------------------------------------------===//

class ConstPropPass : public Pass {
public:
  std::string name() const override { return "constprop"; }

  remarks::StatGroup run(PassContext &Ctx) override {
    scalar::ConstPropStats Total;
    for (const auto &F : Ctx.Program.getFunctions()) {
      auto S = scalar::propagateConstants(*F, Ctx.Options.ConstProp);
      Total.UsesReplaced += S.UsesReplaced;
      Total.BranchesFolded += S.BranchesFolded;
      Total.LoopsDeleted += S.LoopsDeleted;
      Total.StmtsRemoved += S.StmtsRemoved;
      Total.Requeues += S.Requeues;
      Total.PostpassRemoved += S.PostpassRemoved;
    }
    auto &Acc = Ctx.Stats.ConstProp;
    Acc.UsesReplaced += Total.UsesReplaced;
    Acc.BranchesFolded += Total.BranchesFolded;
    Acc.LoopsDeleted += Total.LoopsDeleted;
    Acc.StmtsRemoved += Total.StmtsRemoved;
    Acc.Requeues += Total.Requeues;
    Acc.PostpassRemoved += Total.PostpassRemoved;

    remarks::StatGroup SG(name());
    SG.set("uses.replaced", Total.UsesReplaced);
    SG.set("branches.folded", Total.BranchesFolded);
    SG.set("loops.deleted", Total.LoopsDeleted);
    SG.set("stmts.removed", Total.StmtsRemoved);
    SG.set("requeues", Total.Requeues);
    SG.set("postpass.removed", Total.PostpassRemoved);
    return SG;
  }
};

//===----------------------------------------------------------------------===//
// dce
//===----------------------------------------------------------------------===//

class DCEPass : public Pass {
public:
  std::string name() const override { return "dce"; }

  remarks::StatGroup run(PassContext &Ctx) override {
    scalar::DCEStats Total;
    for (const auto &F : Ctx.Program.getFunctions()) {
      auto S = scalar::eliminateDeadCode(*F);
      Total.AssignsRemoved += S.AssignsRemoved;
      Total.EmptyControlRemoved += S.EmptyControlRemoved;
      Total.LabelsRemoved += S.LabelsRemoved;
    }
    auto &Acc = Ctx.Stats.DCE;
    Acc.AssignsRemoved += Total.AssignsRemoved;
    Acc.EmptyControlRemoved += Total.EmptyControlRemoved;
    Acc.LabelsRemoved += Total.LabelsRemoved;

    remarks::StatGroup SG(name());
    SG.set("assigns.removed", Total.AssignsRemoved);
    SG.set("controls.removed", Total.EmptyControlRemoved);
    SG.set("labels.removed", Total.LabelsRemoved);
    return SG;
  }
};

//===----------------------------------------------------------------------===//
// vectorize
//===----------------------------------------------------------------------===//

class VectorizePass : public Pass {
public:
  std::string name() const override { return "vectorize"; }

  remarks::StatGroup run(PassContext &Ctx) override {
    vec::VectorizeStats Total;
    vec::VectorizeOptions Opts = Ctx.Options.Vectorize;
    Opts.Remarks = &Ctx.Remarks; // source-located loop remarks
    for (const auto &F : Ctx.Program.getFunctions()) {
      auto S = vec::vectorizeLoops(*F, Opts);
      Total.LoopsConsidered += S.LoopsConsidered;
      Total.LoopsVectorized += S.LoopsVectorized;
      Total.LoopsDistributed += S.LoopsDistributed;
      Total.VectorStmts += S.VectorStmts;
      Total.SerialLoops += S.SerialLoops;
      Total.SpreadSerialLoops += S.SpreadSerialLoops;
      Total.ParallelLoops += S.ParallelLoops;
      Total.StripLoops += S.StripLoops;
      Total.UnstripedVectorStmts += S.UnstripedVectorStmts;
    }
    auto &Acc = Ctx.Stats.Vectorize;
    Acc.LoopsConsidered += Total.LoopsConsidered;
    Acc.LoopsVectorized += Total.LoopsVectorized;
    Acc.LoopsDistributed += Total.LoopsDistributed;
    Acc.VectorStmts += Total.VectorStmts;
    Acc.SerialLoops += Total.SerialLoops;
    Acc.SpreadSerialLoops += Total.SpreadSerialLoops;
    Acc.ParallelLoops += Total.ParallelLoops;
    Acc.StripLoops += Total.StripLoops;
    Acc.UnstripedVectorStmts += Total.UnstripedVectorStmts;

    remarks::StatGroup SG(name());
    SG.set("loops.considered", Total.LoopsConsidered);
    SG.set("loops.vectorized", Total.LoopsVectorized);
    SG.set("loops.distributed", Total.LoopsDistributed);
    SG.set("loops.stripmined", Total.StripLoops);
    SG.set("vector.stmts", Total.VectorStmts);
    SG.set("serial.loops", Total.SerialLoops);
    SG.set("parallel.loops", Total.ParallelLoops);
    return SG;
  }
};

//===----------------------------------------------------------------------===//
// depopt
//===----------------------------------------------------------------------===//

class DepOptPass : public Pass {
public:
  std::string name() const override { return "depopt"; }

  remarks::StatGroup run(PassContext &Ctx) override {
    depopt::ScalarReplaceStats SR;
    depopt::StrengthReduceStats STR;
    // Scalar replacement first: it removes the loop-carried loads, after
    // which the remaining loads are conflict-free.  Conflict-free marking
    // runs before strength reduction rewrites the address forms the
    // dependence analysis reads.
    for (const auto &F : Ctx.Program.getFunctions()) {
      if (Ctx.Options.EnableScalarReplacement) {
        auto S = depopt::applyScalarReplacement(*F);
        SR.LoopsApplied += S.LoopsApplied;
        SR.LoadsEliminated += S.LoadsEliminated;
      }
    }
    if (Ctx.Options.EnableDepScheduling)
      for (const auto &F : Ctx.Program.getFunctions())
        dep::markConflictFreeLoads(*F);
    for (const auto &F : Ctx.Program.getFunctions()) {
      if (Ctx.Options.EnableStrengthReduction) {
        auto S = depopt::applyStrengthReduction(*F);
        STR.LoopsApplied += S.LoopsApplied;
        STR.AddressTemps += S.AddressTemps;
        STR.RefsRewritten += S.RefsRewritten;
        STR.InvariantsHoisted += S.InvariantsHoisted;
        STR.SharedTemps += S.SharedTemps;
      }
    }
    auto &AccSR = Ctx.Stats.ScalarReplace;
    AccSR.LoopsApplied += SR.LoopsApplied;
    AccSR.LoadsEliminated += SR.LoadsEliminated;
    auto &AccST = Ctx.Stats.StrengthReduce;
    AccST.LoopsApplied += STR.LoopsApplied;
    AccST.AddressTemps += STR.AddressTemps;
    AccST.RefsRewritten += STR.RefsRewritten;
    AccST.InvariantsHoisted += STR.InvariantsHoisted;
    AccST.SharedTemps += STR.SharedTemps;

    remarks::StatGroup SG(name());
    SG.set("scalarrepl.loops", SR.LoopsApplied);
    SG.set("scalarrepl.loads", SR.LoadsEliminated);
    SG.set("strength.loops", STR.LoopsApplied);
    SG.set("strength.temps", STR.AddressTemps);
    SG.set("strength.refs", STR.RefsRewritten);
    SG.set("strength.hoisted", STR.InvariantsHoisted);
    SG.set("strength.cse", STR.SharedTemps);
    return SG;
  }
};

//===----------------------------------------------------------------------===//
// verify
//===----------------------------------------------------------------------===//

class VerifyPass : public Pass {
public:
  std::string name() const override { return "verify"; }
  bool preservesUseDef() const override { return true; }

  remarks::StatGroup run(PassContext &Ctx) override {
    VerifierReport Report = verifyProgram(Ctx.Program);
    for (const std::string &E : Report.Errors)
      Ctx.Diags.error(SourceLoc(), "IL verifier: " + E);

    remarks::StatGroup SG(name());
    SG.set("functions.checked", Ctx.Program.getFunctions().size());
    SG.set("errors", Report.Errors.size());
    return SG;
  }
};

} // namespace

std::unique_ptr<Pass> pipeline::createInlinePass() {
  return std::make_unique<InlinePass>();
}
std::unique_ptr<Pass> pipeline::createWhileToDoPass() {
  return std::make_unique<WhileToDoPass>();
}
std::unique_ptr<Pass> pipeline::createIVSubPass() {
  return std::make_unique<IVSubPass>();
}
std::unique_ptr<Pass> pipeline::createConstPropPass() {
  return std::make_unique<ConstPropPass>();
}
std::unique_ptr<Pass> pipeline::createDCEPass() {
  return std::make_unique<DCEPass>();
}
std::unique_ptr<Pass> pipeline::createVectorizePass() {
  return std::make_unique<VectorizePass>();
}
std::unique_ptr<Pass> pipeline::createDepOptPass() {
  return std::make_unique<DepOptPass>();
}
std::unique_ptr<Pass> pipeline::createVerifyPass() {
  return std::make_unique<VerifyPass>();
}
