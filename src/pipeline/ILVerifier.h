//===----------------------------------------------------------------------===//
///
/// \file
/// Structural IL invariant checking between passes.
///
/// Every transformation in the pipeline rewrites the statement tree in
/// place; a bug in one pass typically surfaces as a mysterious
/// miscompile several passes later.  The verifier checks the invariants
/// the IL design promises (see il/IL.h) after any pass, so a broken
/// invariant is reported naming the pass that broke it:
///
///  - statement structure: no null statements, and no statement object
///    appearing in two blocks (aliasing a Stmt* across blocks breaks
///    every in-place rewrite);
///  - control flow: every goto targets a label that exists in the same
///    function, label names are unique;
///  - DO loops: index variable and bounds present, bounds are *pure*
///    scalar expressions — no vector triplets, no volatile reads (DO
///    bounds are evaluated once at loop entry, so a volatile read there
///    would be a miscompile);
///  - vector form: triplets appear only inside assignment statements
///    (subscript / address positions), never in conditions, bounds, call
///    arguments, or return values, and never nested in another triplet;
///  - symbols: every referenced symbol is owned by the enclosing function
///    or the program (a foreign Symbol* means a broken inliner remap);
///  - type consistency: every expression carries a type, a variable
///    reference's type matches its symbol's declared type, comparisons
///    yield int, arithmetic results agree with the operands' common
///    type (with the pointer-arithmetic exceptions), dereferences see
///    pointers, assignments store a value of the target's type, and DO
///    index/bound and subscript/triplet expressions are integers;
///  - use-def consistency: freshly built chains agree with the statement
///    list — every reaching definition is a statement present in the body
///    that strongly defines the symbol.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_PIPELINE_ILVERIFIER_H
#define TCC_PIPELINE_ILVERIFIER_H

#include "il/IL.h"

#include <string>
#include <vector>

namespace tcc {
namespace pipeline {

struct VerifierOptions {
  /// Rebuild use-def chains and cross-check them against the statement
  /// list (the most expensive check; still cheap at these program sizes).
  bool CheckUseDef = true;
  /// Check expression result types against symbol/declared types (see
  /// the type-consistency bullet above).
  bool CheckTypes = true;
};

struct VerifierReport {
  std::vector<std::string> Errors;

  bool ok() const { return Errors.empty(); }
  /// All errors, one per line.
  std::string str() const;
};

/// Verifies one function.
VerifierReport verifyFunction(il::Function &F,
                              const VerifierOptions &Opts = {});

/// Verifies every function of \p P (errors are prefixed with the function
/// name).
VerifierReport verifyProgram(il::Program &P, const VerifierOptions &Opts = {});

} // namespace pipeline
} // namespace tcc

#endif // TCC_PIPELINE_ILVERIFIER_H
