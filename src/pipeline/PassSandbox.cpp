#include "pipeline/PassSandbox.h"

#include "il/ILSerializer.h"
#include "pipeline/AnalysisContext.h"
#include "pipeline/ILVerifier.h"
#include "pipeline/PassRegistry.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::pipeline;

namespace {

using Clock = std::chrono::steady_clock;

double millisSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

uint64_t countStmts(const Function &F) {
  uint64_t N = 0;
  forEachStmt(F.getBody(), [&N](const Stmt *) { ++N; });
  return N;
}

std::string joinErrors(const std::vector<std::string> &Errors) {
  std::string Out;
  for (const std::string &E : Errors) {
    if (!Out.empty())
      Out += "; ";
    Out += E;
  }
  return Out;
}

std::string oneLine(std::string S) {
  for (char &C : S)
    if (C == '\n' || C == '\r')
      C = ' ';
  return S;
}

std::string fileSafe(const std::string &Name) {
  std::string Out;
  for (char C : Name)
    Out += (std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
            C == '-')
               ? C
               : '_';
  return Out.empty() ? std::string("anon") : Out;
}

std::string formatMs(double Ms) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", Ms);
  return Buf;
}

} // namespace

PassSandbox::Result PassSandbox::run(FunctionPass &FP, Function &F,
                                     PassContext &Ctx, bool VerifyEach) {
  Result R;
  R.F = &F;
  R.Stats = remarks::StatGroup(FP.name());

  if (isQuarantined(FP.name(), F.getName())) {
    R.Skipped = true;
    return R;
  }

  // The rollback point.  Serialization round-trips are a fixed point and
  // symbols stay densely numbered throughout the pipeline, so restoring
  // this snapshot is indistinguishable from never having run the pass.
  // The id/name counters are not part of the IL text, so they are saved
  // on the side: without them, passes running after a rollback would
  // mint temp names a never-faulted compile would not.
  const std::string Snapshot = serializeFunction(F);
  const Function::Counters SavedCounters = F.counters();
  const uint64_t StmtsBefore = countStmts(F);
  const FaultSpec *Injected =
      Policy.Faults ? Policy.Faults->arm(FP.name(), F.getName()) : nullptr;

  std::string Kind, Description;
  auto Start = Clock::now();
  try {
    if (Injected)
      throwInjectedFault(*Injected); // throw / oom raise; others return
    R.Stats = FP.runOnFunction(F, Ctx);
    if (Injected && Injected->Kind == FaultKind::CorruptIL)
      F.getBody().Stmts.push_back(
          F.create<GotoStmt>(SourceLoc(), "__tcc_injected_corruption"));
    if (Injected &&
        (Injected->Kind == FaultKind::Slow ||
         Injected->Kind == FaultKind::Stall) &&
        Policy.PassBudgetMs > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(
          static_cast<long>(Policy.PassBudgetMs) + 25));
  } catch (const std::exception &E) {
    Kind = "exception";
    Description = oneLine(E.what());
  } catch (...) {
    Kind = "exception";
    Description = "unknown exception escaped the pass body";
  }
  const double Millis = millisSince(Start);

  // An injected corrupt-il must be detected even without -verify-each,
  // otherwise the harness would depend on an unrelated flag to prove the
  // verifier containment path works.
  const bool Verify =
      Kind.empty() &&
      (VerifyEach || (Injected && Injected->Kind == FaultKind::CorruptIL));
  if (Verify) {
    VerifierReport Report = verifyFunction(F);
    if (!Report.ok()) {
      Kind = "verifier";
      Description = joinErrors(Report.Errors);
    }
  }

  if (Kind.empty() && Policy.StmtGrowthFactor) {
    const uint64_t Limit =
        StmtsBefore * Policy.StmtGrowthFactor + Policy.StmtGrowthSlack;
    const uint64_t StmtsAfter = countStmts(F);
    if (StmtsAfter > Limit) {
      Kind = "stmt-budget";
      Description = "statement growth " + std::to_string(StmtsBefore) +
                    " -> " + std::to_string(StmtsAfter) +
                    " exceeds budget " + std::to_string(Limit);
    }
  }

  if (Kind.empty() && Policy.PassBudgetMs > 0 &&
      Millis > Policy.PassBudgetMs) {
    Kind = "time-budget";
    Description = "pass ran " + formatMs(Millis) +
                  " ms against a budget of " + formatMs(Policy.PassBudgetMs) +
                  " ms";
  }

  if (Kind.empty())
    return R; // Healthy invocation.

  // Containment.  The pass may have died mid-mutation, so the live
  // function is untrusted: rebuild it from the snapshot and splice the
  // replacement into the program at the same position.
  DiagnosticEngine Scratch;
  Function *Restored = deserializeFunction(Snapshot, Ctx.Program, Scratch);
  if (!Restored) {
    // Cannot happen for IL we serialized ourselves; if it does, the
    // sandbox must not pretend to have contained anything.
    Ctx.Diags.error(SourceLoc(),
                    "pass '" + FP.name() + "' failed on function '" +
                        F.getName() + "' (" + Kind + ": " + Description +
                        ") and the rollback snapshot would not restore: " +
                        Scratch.str());
    R.Faulted = true;
    return R;
  }
  Restored->setCounters(SavedCounters);
  Ctx.Analyses.forget(F);
  Ctx.Program.replaceFunction(&F, Restored);
  R.F = Restored;
  R.Faulted = true;
  R.Stats = remarks::StatGroup(FP.name()); // Partial counters are untrusted.

  Quarantine.insert({FP.name(), Restored->getName()});

  SandboxFault Fault;
  Fault.Pass = FP.name();
  Fault.Function = Restored->getName();
  Fault.Kind = Kind;
  Fault.Description = Description;
  Fault.ReproFile = writeReproBundle(Fault, Snapshot, Injected, VerifyEach, Ctx);
  FaultLog.push_back(Fault);

  Ctx.Remarks.missed(FP.name(), SourceLoc(),
                     "pass quarantined on function '" + Fault.Function +
                         "' (" + Kind + ": " + Description +
                         "); function rolled back to its pre-pass IL");
  std::string Warning = "pass '" + FP.name() + "' failed on function '" +
                        Fault.Function + "' (" + Kind + ": " + Description +
                        "); continuing with that pass skipped";
  if (!Fault.ReproFile.empty())
    Warning += " (reproducer: " + Fault.ReproFile + ")";
  Ctx.Diags.warning(SourceLoc(), Warning);
  return R;
}

//===----------------------------------------------------------------------===//
// Reproducer bundles
//===----------------------------------------------------------------------===//

std::string PassSandbox::writeReproBundle(const SandboxFault &Fault,
                                          const std::string &SnapshotIL,
                                          const FaultSpec *Injected,
                                          bool VerifyEach, PassContext &Ctx) {
  if (Policy.ReproDir.empty())
    return "";

  std::error_code EC;
  std::filesystem::create_directories(Policy.ReproDir, EC);
  if (EC) {
    Ctx.Diags.warning(SourceLoc(), "cannot create reproducer directory '" +
                                       Policy.ReproDir +
                                       "': " + EC.message());
    return "";
  }

  const std::string Path = Policy.ReproDir + "/" + fileSafe(Fault.Pass) +
                           "-" + fileSafe(Fault.Function) + "-" +
                           std::to_string(BundleSeq++) + ".repro";
  const std::string Temp = Path + ".tmp";
  {
    std::ofstream OS(Temp, std::ios::binary | std::ios::trunc);
    if (!OS) {
      Ctx.Diags.warning(SourceLoc(),
                        "cannot write reproducer bundle '" + Temp + "'");
      return "";
    }
    char Budget[32];
    std::snprintf(Budget, sizeof(Budget), "%g", Policy.PassBudgetMs);
    OS << "tcc-repro v1\n";
    OS << "pass " << Fault.Pass << '\n';
    OS << "function \"" << Fault.Function << "\"\n";
    OS << "kind " << Fault.Kind << '\n';
    OS << "inject " << (Injected ? Injected->str() : std::string("-"))
       << '\n';
    OS << "policy " << (VerifyEach ? 1 : 0) << ' ' << Budget << ' '
       << Policy.StmtGrowthFactor << ' ' << Policy.StmtGrowthSlack << '\n';
    OS << "config " << ConfigFingerprint << '\n';
    OS << "description " << oneLine(Fault.Description) << '\n';
    OS << "il " << SnapshotIL.size() << '\n';
    OS << SnapshotIL << '\n';
    OS.flush();
    if (!OS) {
      Ctx.Diags.warning(SourceLoc(),
                        "cannot write reproducer bundle '" + Temp + "'");
      std::remove(Temp.c_str());
      return "";
    }
  }
  if (std::rename(Temp.c_str(), Path.c_str()) != 0) {
    Ctx.Diags.warning(SourceLoc(), "cannot finalize reproducer bundle '" +
                                       Path + "'");
    std::remove(Temp.c_str());
    return "";
  }
  return Path;
}

namespace {

/// "key rest-of-line" splitter for the bundle's line-oriented header.
bool splitKeyed(const std::string &Line, const char *Key, std::string &Rest) {
  const size_t N = std::strlen(Key);
  if (Line.compare(0, N, Key) != 0)
    return false;
  if (Line.size() == N) {
    Rest.clear();
    return true;
  }
  if (Line[N] != ' ')
    return false;
  Rest = Line.substr(N + 1);
  return true;
}

} // namespace

bool pipeline::loadReproBundle(const std::string &Path, ReproBundle &Out,
                               DiagnosticEngine &Diags) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Diags.error(SourceLoc(), "cannot open reproducer bundle '" + Path + "'");
    return false;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  const std::string Text = Buffer.str();

  size_t Pos = 0;
  uint32_t Line = 0;
  auto ReadLine = [&](std::string &L) {
    if (Pos >= Text.size())
      return false;
    size_t NL = Text.find('\n', Pos);
    if (NL == std::string::npos)
      NL = Text.size();
    L = Text.substr(Pos, NL - Pos);
    Pos = NL + 1;
    ++Line;
    return true;
  };
  auto Fail = [&](const std::string &Msg) {
    Diags.error(SourceLoc(Line, 1), "reproducer bundle: " + Msg);
    return false;
  };

  std::string L;
  if (!ReadLine(L) || L != "tcc-repro v1")
    return Fail("bad magic '" + L + "' (expected 'tcc-repro v1')");

  Out = ReproBundle();
  while (ReadLine(L)) {
    std::string Rest;
    if (splitKeyed(L, "pass", Rest)) {
      Out.Pass = Rest;
    } else if (splitKeyed(L, "function", Rest)) {
      if (Rest.size() < 2 || Rest.front() != '"' || Rest.back() != '"')
        return Fail("malformed function line '" + L + "'");
      Out.Function = Rest.substr(1, Rest.size() - 2);
    } else if (splitKeyed(L, "kind", Rest)) {
      Out.Kind = Rest;
    } else if (splitKeyed(L, "inject", Rest)) {
      Out.InjectSpec = Rest;
    } else if (splitKeyed(L, "policy", Rest)) {
      int Verify = 0;
      double Budget = 0;
      unsigned long long Factor = 0, Slack = 0;
      if (std::sscanf(Rest.c_str(), "%d %lf %llu %llu", &Verify, &Budget,
                      &Factor, &Slack) != 4)
        return Fail("malformed policy line '" + L + "'");
      Out.VerifyEach = Verify != 0;
      Out.PassBudgetMs = Budget;
      Out.StmtGrowthFactor = Factor;
      Out.StmtGrowthSlack = Slack;
    } else if (splitKeyed(L, "config", Rest)) {
      Out.Config = Rest;
    } else if (splitKeyed(L, "description", Rest)) {
      Out.Description = Rest;
    } else if (splitKeyed(L, "oracle", Rest)) {
      Out.Oracle = Rest;
    } else if (splitKeyed(L, "spec", Rest)) {
      Out.VariantSpec = Rest;
    } else if (splitKeyed(L, "csource", Rest)) {
      size_t Bytes = 0;
      for (char C : Rest) {
        if (C < '0' || C > '9' || Bytes > Text.size())
          return Fail("malformed csource length '" + Rest + "'");
        Bytes = Bytes * 10 + static_cast<size_t>(C - '0');
      }
      if (Bytes > Text.size() || Pos > Text.size() - Bytes)
        return Fail("truncated csource payload (wants " +
                    std::to_string(Bytes) + " bytes)");
      Out.CSource = Text.substr(Pos, Bytes);
      Pos += Bytes;
      // Skip the newline the writer appends after the payload.
      if (Pos < Text.size() && Text[Pos] == '\n') {
        ++Pos;
        ++Line;
      }
    } else if (splitKeyed(L, "il", Rest)) {
      size_t Bytes = 0;
      for (char C : Rest) {
        if (C < '0' || C > '9' || Bytes > Text.size())
          return Fail("malformed il length '" + Rest + "'");
        Bytes = Bytes * 10 + static_cast<size_t>(C - '0');
      }
      if (Bytes > Text.size() || Pos > Text.size() - Bytes)
        return Fail("truncated il payload (wants " + std::to_string(Bytes) +
                    " bytes)");
      Out.IL = Text.substr(Pos, Bytes);
      Pos += Bytes;
      break; // The payload is the last record.
    } else {
      return Fail("unknown bundle line '" + L + "'");
    }
  }

  if (Out.Pass.empty() || Out.IL.empty())
    return Fail("bundle is missing its pass name or IL payload");
  return true;
}

ReplayResult pipeline::replayBundle(const ReproBundle &B,
                                    const PipelineOptions &Options,
                                    DiagnosticEngine &Diags) {
  ReplayResult R;

  auto Created = PassRegistry::instance().create(B.Pass);
  if (!Created) {
    Diags.error(SourceLoc(), "reproducer bundle names unknown pass '" +
                                 B.Pass + "'; known passes: " +
                                 PassRegistry::instance().namesJoined());
    return R;
  }
  if (Created->getKind() != Pass::FunctionPassKind) {
    Diags.error(SourceLoc(), "pass '" + B.Pass +
                                 "' is not a function pass; only "
                                 "function-pass faults are replayable");
    return R;
  }

  Program Prog;
  Function *F = deserializeFunction(B.IL, Prog, Diags);
  if (!F)
    return R;

  FaultInjector Injector;
  if (!B.InjectSpec.empty() && B.InjectSpec != "-" &&
      !Injector.addSpecs(B.InjectSpec, Diags))
    return R;

  SandboxPolicy Policy;
  Policy.Enabled = true;
  Policy.PassBudgetMs = B.PassBudgetMs;
  Policy.StmtGrowthFactor = B.StmtGrowthFactor;
  Policy.StmtGrowthSlack = B.StmtGrowthSlack;
  Policy.ReproDir = ""; // A replay never writes new bundles.
  Policy.Faults = Injector.empty() ? nullptr : &Injector;

  PassSandbox SB(Policy, B.Config);
  AnalysisContext Analyses;
  remarks::RemarkCollector Remarks;
  PipelineStats Stats;
  DiagnosticEngine RunDiags;
  PassContext Ctx{Prog, RunDiags, Options, Analyses, Remarks, Stats};

  auto SR = SB.run(static_cast<FunctionPass &>(*Created), *F, Ctx,
                   B.VerifyEach);
  R.Ran = true;
  if (SR.Faulted && !SB.faults().empty()) {
    const SandboxFault &Fault = SB.faults().back();
    R.Kind = Fault.Kind;
    R.Description = Fault.Description;
    R.Reproduced = Fault.Kind == B.Kind;
  }
  return R;
}
