#include "pipeline/PassRegistry.h"

#include "pipeline/Passes.h"

#include <algorithm>

using namespace tcc;
using namespace tcc::pipeline;

PassRegistry &PassRegistry::instance() {
  // Built lazily on first use: no static-initialization-order concerns.
  static PassRegistry R = [] {
    PassRegistry Reg;
    Reg.registerPass("inline", createInlinePass);
    Reg.registerPass("whiletodo", createWhileToDoPass);
    Reg.registerPass("ivsub", createIVSubPass);
    Reg.registerPass("constprop", createConstPropPass);
    Reg.registerPass("dce", createDCEPass);
    Reg.registerPass("spread", createSpreadPass);
    Reg.registerPass("vectorize", createVectorizePass);
    Reg.registerPass("depopt", createDepOptPass);
    Reg.registerPass("verify", createVerifyPass);
    return Reg;
  }();
  return R;
}

void PassRegistry::registerPass(const std::string &Name,
                                PassFactory Factory) {
  // Replace in place: the name keeps its original pipeline position and
  // Factories never holds two entries for one name (names() would
  // otherwise hand duplicate ablation units to spec enumerators).
  for (auto &[N, F] : Factories)
    if (N == Name) {
      F = std::move(Factory);
      return;
    }
  Factories.emplace_back(Name, std::move(Factory));
}

bool PassRegistry::contains(const std::string &Name) const {
  for (const auto &[N, F] : Factories)
    if (N == Name)
      return true;
  return false;
}

std::unique_ptr<Pass> PassRegistry::create(const std::string &Name) const {
  // Scan back-to-front: with registerPass's replace-in-place invariant
  // the direction is unobservable, but if a duplicate ever slips in, the
  // latest registration must still win (the documented contract).
  for (auto It = Factories.rbegin(); It != Factories.rend(); ++It)
    if (It->first == Name)
      return It->second();
  return nullptr;
}

std::vector<std::string> PassRegistry::names() const {
  std::vector<std::string> Out;
  Out.reserve(Factories.size());
  for (const auto &[N, F] : Factories)
    if (std::find(Out.begin(), Out.end(), N) == Out.end())
      Out.push_back(N);
  return Out;
}

std::string PassRegistry::namesJoined() const {
  std::string Out;
  for (const std::string &N : names()) {
    if (!Out.empty())
      Out += ", ";
    Out += N;
  }
  return Out;
}

std::vector<std::vector<std::string>>
pipeline::leaveOneOutSpecs(const std::vector<std::string> &Passes) {
  std::vector<std::vector<std::string>> Out;
  Out.reserve(Passes.size());
  for (size_t Skip = 0; Skip < Passes.size(); ++Skip) {
    std::vector<std::string> Spec;
    Spec.reserve(Passes.size() - 1);
    for (size_t I = 0; I < Passes.size(); ++I)
      if (I != Skip)
        Spec.push_back(Passes[I]);
    Out.push_back(std::move(Spec));
  }
  return Out;
}

std::vector<std::vector<std::string>>
pipeline::prefixSpecs(const std::vector<std::string> &Passes) {
  std::vector<std::vector<std::string>> Out;
  Out.reserve(Passes.size() + 1);
  for (size_t Len = 0; Len <= Passes.size(); ++Len)
    Out.emplace_back(Passes.begin(), Passes.begin() + Len);
  return Out;
}

std::string pipeline::joinSpec(const std::vector<std::string> &Passes) {
  std::string Out;
  for (const std::string &P : Passes) {
    if (!Out.empty())
      Out += ',';
    Out += P;
  }
  return Out;
}

std::vector<std::string> pipeline::splitSpec(const std::string &Spec) {
  std::vector<std::string> Out;
  if (Spec.empty())
    return Out;
  size_t Start = 0;
  while (true) {
    size_t Comma = Spec.find(',', Start);
    std::string Tok = Spec.substr(
        Start, Comma == std::string::npos ? std::string::npos : Comma - Start);
    while (!Tok.empty() && (Tok.front() == ' ' || Tok.front() == '\t'))
      Tok.erase(Tok.begin());
    while (!Tok.empty() && (Tok.back() == ' ' || Tok.back() == '\t'))
      Tok.pop_back();
    Out.push_back(std::move(Tok));
    if (Comma == std::string::npos)
      break;
    Start = Comma + 1;
  }
  return Out;
}
