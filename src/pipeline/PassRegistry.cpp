#include "pipeline/PassRegistry.h"

#include "pipeline/Passes.h"

using namespace tcc;
using namespace tcc::pipeline;

PassRegistry &PassRegistry::instance() {
  // Built lazily on first use: no static-initialization-order concerns.
  static PassRegistry R = [] {
    PassRegistry Reg;
    Reg.registerPass("inline", createInlinePass);
    Reg.registerPass("whiletodo", createWhileToDoPass);
    Reg.registerPass("ivsub", createIVSubPass);
    Reg.registerPass("constprop", createConstPropPass);
    Reg.registerPass("dce", createDCEPass);
    Reg.registerPass("vectorize", createVectorizePass);
    Reg.registerPass("depopt", createDepOptPass);
    Reg.registerPass("verify", createVerifyPass);
    return Reg;
  }();
  return R;
}

void PassRegistry::registerPass(const std::string &Name,
                                PassFactory Factory) {
  for (auto &[N, F] : Factories)
    if (N == Name) {
      F = std::move(Factory);
      return;
    }
  Factories.emplace_back(Name, std::move(Factory));
}

bool PassRegistry::contains(const std::string &Name) const {
  for (const auto &[N, F] : Factories)
    if (N == Name)
      return true;
  return false;
}

std::unique_ptr<Pass> PassRegistry::create(const std::string &Name) const {
  for (const auto &[N, F] : Factories)
    if (N == Name)
      return F();
  return nullptr;
}

std::vector<std::string> PassRegistry::names() const {
  std::vector<std::string> Out;
  Out.reserve(Factories.size());
  for (const auto &[N, F] : Factories)
    Out.push_back(N);
  return Out;
}

std::string PassRegistry::namesJoined() const {
  std::string Out;
  for (const auto &[N, F] : Factories) {
    if (!Out.empty())
      Out += ", ";
    Out += N;
  }
  return Out;
}
