//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function cached analyses with preserved-set invalidation.
///
/// The paper drives several optimizations off the use-def graph and
/// patches it incrementally through while→DO conversion rather than
/// rebuilding (Section 5.2).  The AnalysisContext generalizes that: the
/// cache is keyed by (function, analysis kind), a pass asks for the
/// chains of a function and either gets the cached copy or a fresh build,
/// and after a pass runs on a function the PassManager drops exactly the
/// kinds the pass did *not* declare preserved — for that function only.
/// Analyses of untouched functions stay live across the whole pipeline,
/// which is what makes function-at-a-time scheduling cheap: one function's
/// rebuild cost never globalizes.  Build/reuse counts surface in the
/// telemetry, so the cost of analysis recomputation is visible per pass.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_PIPELINE_ANALYSISCONTEXT_H
#define TCC_PIPELINE_ANALYSISCONTEXT_H

#include "analysis/UseDef.h"
#include "il/IL.h"
#include "pipeline/Pass.h"

#include <map>
#include <memory>

namespace tcc {
namespace pipeline {

class AnalysisContext {
public:
  /// Use-def chains for \p F: cached when valid, rebuilt otherwise.
  analysis::UseDefChains &useDef(il::Function &F);

  bool hasCachedUseDef(const il::Function &F) const {
    return UseDefCache.count(&F) != 0;
  }

  /// Drops \p F's cached analyses of every kind not in \p Preserved
  /// (called after a function pass ran on \p F).
  void invalidate(const il::Function &F, const PreservedSet &Preserved);

  /// Drops every function's analyses of every kind not in \p Preserved
  /// (called after a module pass, which may have touched anything).
  void invalidate(const PreservedSet &Preserved);

  /// Drops everything cached for \p F regardless of preservation — the
  /// function object is being replaced (cache-hit body swap), so cached
  /// pointers into it are about to dangle.
  void forget(const il::Function &F);

  /// Telemetry: chains built / served from cache since the last
  /// resetCounters().
  unsigned buildCount() const { return Built; }
  unsigned reuseCount() const { return Reused; }
  void resetCounters() { Built = Reused = 0; }

private:
  std::map<const il::Function *, std::unique_ptr<analysis::UseDefChains>>
      UseDefCache;
  unsigned Built = 0;
  unsigned Reused = 0;
};

} // namespace pipeline
} // namespace tcc

#endif // TCC_PIPELINE_ANALYSISCONTEXT_H
