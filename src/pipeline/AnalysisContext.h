//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function cached analyses with preserved-set invalidation.
///
/// The paper drives several optimizations off the use-def graph and
/// patches it incrementally through while→DO conversion rather than
/// rebuilding (Section 5.2).  The AnalysisContext generalizes that: the
/// cache is keyed by (function, analysis kind), a pass asks for the
/// chains of a function and either gets the cached copy or a fresh build,
/// and after a pass runs on a function the PassManager drops exactly the
/// kinds the pass did *not* declare preserved — for that function only.
/// Analyses of untouched functions stay live across the whole pipeline,
/// which is what makes function-at-a-time scheduling cheap: one function's
/// rebuild cost never globalizes.  Build/reuse counts surface in the
/// telemetry, so the cost of analysis recomputation is visible per pass.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_PIPELINE_ANALYSISCONTEXT_H
#define TCC_PIPELINE_ANALYSISCONTEXT_H

#include "analysis/MemorySSA.h"
#include "analysis/PointsTo.h"
#include "analysis/UseDef.h"
#include "il/IL.h"
#include "pipeline/Pass.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace tcc {
namespace pipeline {

/// Process-wide immutable analysis results, keyed by the content hash of
/// the function's serialized IL.  The compile server hangs one of these
/// off the daemon so concurrent requests compiling byte-identical
/// functions share a single use-def build: the exports stored here are
/// position-independent snapshots (analysis::UseDefExport) and are never
/// mutated after publication, so readers need no lock beyond the map's.
///
/// Keying on the IL text hash alone — not the pass spec — is sound
/// because use-def chains depend only on the function body; two requests
/// with different pass pipelines still share the analysis of the same
/// input body.
class SharedAnalysisCache {
public:
  /// The export stored under \p ILHash, or null.
  std::shared_ptr<const analysis::UseDefExport>
  lookup(const std::string &ILHash) {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Exports.find(ILHash);
    if (It == Exports.end()) {
      ++Misses;
      return nullptr;
    }
    ++Hits;
    return It->second;
  }

  /// Publishes \p E under \p ILHash.  First writer wins; a concurrent
  /// duplicate build of the same hash is discarded (the results are
  /// equivalent by construction).
  void store(const std::string &ILHash,
             std::shared_ptr<const analysis::UseDefExport> E) {
    std::lock_guard<std::mutex> Lock(M);
    if (Exports.emplace(ILHash, std::move(E)).second)
      ++Stores;
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Exports.size();
  }
  uint64_t hitCount() const {
    std::lock_guard<std::mutex> Lock(M);
    return Hits;
  }
  uint64_t missCount() const {
    std::lock_guard<std::mutex> Lock(M);
    return Misses;
  }
  uint64_t storeCount() const {
    std::lock_guard<std::mutex> Lock(M);
    return Stores;
  }

private:
  mutable std::mutex M;
  std::map<std::string, std::shared_ptr<const analysis::UseDefExport>>
      Exports;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Stores = 0;
};

class AnalysisContext {
public:
  /// Use-def chains for \p F: cached when valid, rebuilt otherwise.
  analysis::UseDefChains &useDef(il::Function &F);

  bool hasCachedUseDef(const il::Function &F) const {
    return UseDefCache.count(&F) != 0;
  }

  /// The program-scoped Andersen points-to solution: cached when valid,
  /// recomputed otherwise.  Program-scoped because any function's stores
  /// can change any pointer's targets; one mutation drops the whole
  /// result (see invalidate).
  const analysis::PointsToInfo &pointsTo(const il::Program &P);

  /// \p F's read/write graph over the cached points-to result.
  const analysis::MemorySSA &memorySSA(const il::Function &F);

  bool hasCachedPointsTo() const { return PointsToCache != nullptr; }
  bool hasCachedMemorySSA(const il::Function &F) const {
    return MemorySSACache.count(&F) != 0;
  }

  /// Drops \p F's cached analyses of every kind not in \p Preserved
  /// (called after a function pass ran on \p F).
  void invalidate(const il::Function &F, const PreservedSet &Preserved);

  /// Drops every function's analyses of every kind not in \p Preserved
  /// (called after a module pass, which may have touched anything).
  void invalidate(const PreservedSet &Preserved);

  /// Drops everything cached for \p F regardless of preservation — the
  /// function object is being replaced (cache-hit body swap), so cached
  /// pointers into it are about to dangle.
  void forget(const il::Function &F);

  /// Attaches the process-wide shared cache (may be null).  The context
  /// then serves first builds from shared exports when the function's IL
  /// hash is known, and publishes fresh builds back.
  void setShared(SharedAnalysisCache *S) { Shared = S; }

  /// Declares that \p F's serialized IL currently hashes to \p ILHash.
  /// Valid only until the first pass mutates \p F — every invalidation or
  /// forget of \p F drops the expectation, because the body no longer
  /// matches the hashed text.  The PassManager calls this right after
  /// serializing the function for its own result-cache key, so the hash
  /// is free.
  void expectFunction(const il::Function &F, const std::string &ILHash) {
    if (Shared)
      Hashes[&F] = ILHash;
  }

  /// Telemetry: chains built / served from cache since the last
  /// resetCounters().
  unsigned buildCount() const { return Built; }
  unsigned reuseCount() const { return Reused; }
  /// Builds avoided by importing a shared export instead.
  unsigned sharedImportCount() const { return SharedImported; }
  /// Andersen solves / per-function graph builds since the last reset.
  unsigned pointsToBuildCount() const { return PointsToBuilt; }
  unsigned memorySSABuildCount() const { return MemorySSABuilt; }
  void resetCounters() {
    Built = Reused = SharedImported = PointsToBuilt = MemorySSABuilt = 0;
  }

private:
  std::map<const il::Function *, std::unique_ptr<analysis::UseDefChains>>
      UseDefCache;
  /// Program-scoped; null when invalid.
  std::unique_ptr<analysis::PointsToInfo> PointsToCache;
  std::map<const il::Function *, std::unique_ptr<analysis::MemorySSA>>
      MemorySSACache;
  /// IL-text hashes for functions whose bodies are still pristine
  /// (pre-first-pass); keys into the shared cache.
  std::map<const il::Function *, std::string> Hashes;
  SharedAnalysisCache *Shared = nullptr;
  unsigned Built = 0;
  unsigned Reused = 0;
  unsigned SharedImported = 0;
  unsigned PointsToBuilt = 0;
  unsigned MemorySSABuilt = 0;
};

} // namespace pipeline
} // namespace tcc

#endif // TCC_PIPELINE_ANALYSISCONTEXT_H
