//===----------------------------------------------------------------------===//
///
/// \file
/// Cached analyses with explicit invalidation.
///
/// The paper drives several optimizations off the use-def graph and
/// patches it incrementally through while→DO conversion rather than
/// rebuilding (Section 5.2).  The AnalysisContext generalizes that: a
/// pass asks for the chains of a function and either gets the cached copy
/// (when every pass since the build declared it preserved them) or a
/// fresh build.  The PassManager invalidates the cache after every
/// non-preserving pass and reports build/reuse counts in the telemetry,
/// so the cost of analysis recomputation is visible per pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_PIPELINE_ANALYSISCONTEXT_H
#define TCC_PIPELINE_ANALYSISCONTEXT_H

#include "analysis/UseDef.h"
#include "il/IL.h"

#include <map>
#include <memory>

namespace tcc {
namespace pipeline {

class AnalysisContext {
public:
  /// Use-def chains for \p F: cached when valid, rebuilt otherwise.
  analysis::UseDefChains &useDef(il::Function &F);

  bool hasCachedUseDef(const il::Function &F) const {
    return UseDefCache.count(&F) != 0;
  }

  /// Drops every cached analysis (called after a non-preserving pass).
  void invalidateAll() { UseDefCache.clear(); }

  /// Telemetry: chains built / served from cache since the last
  /// resetCounters().
  unsigned buildCount() const { return Built; }
  unsigned reuseCount() const { return Reused; }
  void resetCounters() { Built = Reused = 0; }

private:
  std::map<const il::Function *, std::unique_ptr<analysis::UseDefChains>>
      UseDefCache;
  unsigned Built = 0;
  unsigned Reused = 0;
};

} // namespace pipeline
} // namespace tcc

#endif // TCC_PIPELINE_ANALYSISCONTEXT_H
