#include "pipeline/AnalysisContext.h"

using namespace tcc;
using namespace tcc::pipeline;

analysis::UseDefChains &AnalysisContext::useDef(il::Function &F) {
  auto It = UseDefCache.find(&F);
  if (It != UseDefCache.end()) {
    ++Reused;
    return *It->second;
  }
  ++Built;
  auto &Slot = UseDefCache[&F];
  Slot = std::make_unique<analysis::UseDefChains>(F);
  return *Slot;
}

void AnalysisContext::invalidate(const il::Function &F,
                                 const PreservedSet &Preserved) {
  if (!Preserved.preserves(AnalysisKind::UseDef))
    UseDefCache.erase(&F);
}

void AnalysisContext::invalidate(const PreservedSet &Preserved) {
  if (!Preserved.preserves(AnalysisKind::UseDef))
    UseDefCache.clear();
}

void AnalysisContext::forget(const il::Function &F) { UseDefCache.erase(&F); }
