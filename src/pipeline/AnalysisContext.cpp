#include "pipeline/AnalysisContext.h"

using namespace tcc;
using namespace tcc::pipeline;

analysis::UseDefChains &AnalysisContext::useDef(il::Function &F) {
  auto It = UseDefCache.find(&F);
  if (It != UseDefCache.end()) {
    ++Reused;
    return *It->second;
  }

  auto &Slot = UseDefCache[&F];

  // First build for a pristine function body: try the shared export pool
  // before paying for an iterative dataflow solve.  An import that fails
  // to resolve falls back to a fresh build.
  auto HashIt = Hashes.find(&F);
  if (Shared && HashIt != Hashes.end()) {
    if (auto Export = Shared->lookup(HashIt->second)) {
      if (auto Imported = analysis::UseDefChains::importChains(F, *Export)) {
        ++SharedImported;
        Slot = std::move(Imported);
        return *Slot;
      }
    }
  }

  ++Built;
  Slot = std::make_unique<analysis::UseDefChains>(F);

  // Publish the fresh build so the next request over a byte-identical
  // body imports instead of rebuilding.
  if (Shared && HashIt != Hashes.end()) {
    auto Export = std::make_shared<analysis::UseDefExport>();
    if (Slot->exportChains(F, *Export))
      Shared->store(HashIt->second, std::move(Export));
  }
  return *Slot;
}

const analysis::PointsToInfo &AnalysisContext::pointsTo(const il::Program &P) {
  if (!PointsToCache) {
    ++PointsToBuilt;
    PointsToCache = std::make_unique<analysis::PointsToInfo>(
        analysis::computePointsTo(P));
  }
  return *PointsToCache;
}

const analysis::MemorySSA &AnalysisContext::memorySSA(const il::Function &F) {
  auto It = MemorySSACache.find(&F);
  if (It != MemorySSACache.end())
    return *It->second;
  const analysis::PointsToInfo &PT = pointsTo(F.getProgram());
  ++MemorySSABuilt;
  auto &Slot = MemorySSACache[&F];
  Slot = std::make_unique<analysis::MemorySSA>(F, PT);
  return *Slot;
}

void AnalysisContext::invalidate(const il::Function &F,
                                 const PreservedSet &Preserved) {
  if (!Preserved.preserves(AnalysisKind::UseDef))
    UseDefCache.erase(&F);
  // The Andersen result is program-scoped: one function's mutation can
  // change any pointer's targets, so it drops whole.  Every MemorySSA
  // graph resolved its accesses through that result, so they go with it
  // (their may-touch sets are copies, but copies of stale facts).
  if (!Preserved.preserves(AnalysisKind::PointsTo)) {
    PointsToCache.reset();
    MemorySSACache.clear();
  } else if (!Preserved.preserves(AnalysisKind::MemorySSA)) {
    MemorySSACache.erase(&F);
  }
  // A pass ran over F, preserving or not: the body may differ from the
  // text the hash was taken over, so the shared-cache key is stale.
  Hashes.erase(&F);
}

void AnalysisContext::invalidate(const PreservedSet &Preserved) {
  if (!Preserved.preserves(AnalysisKind::UseDef))
    UseDefCache.clear();
  if (!Preserved.preserves(AnalysisKind::PointsTo)) {
    PointsToCache.reset();
    MemorySSACache.clear();
  } else if (!Preserved.preserves(AnalysisKind::MemorySSA)) {
    MemorySSACache.clear();
  }
  Hashes.clear();
}

void AnalysisContext::forget(const il::Function &F) {
  UseDefCache.erase(&F);
  // The function object is being replaced: its symbols may appear in the
  // program-scoped points-to sets and in other functions' may-touch
  // sets, so everything built on them goes.
  PointsToCache.reset();
  MemorySSACache.clear();
  Hashes.erase(&F);
}
