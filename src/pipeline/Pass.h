//===----------------------------------------------------------------------===//
///
/// \file
/// The Pass interface of the pipeline subsystem.
///
/// The paper's compiler is an ordered pipeline (parse → lower → inline →
/// while→DO → IV-sub → constprop ⨝ unreachable → DCE → vectorize →
/// dep-opt → codegen); this module makes that pipeline a first-class,
/// reorderable object instead of hardwired calls in the driver.  Each
/// optimization phase is wrapped as a named Pass that runs over the whole
/// program, reports a generic StatGroup for telemetry, and declares which
/// cached analyses it preserves so the PassManager can decide between
/// use-def reuse and rebuild (the paper's Section 5.2 incremental
/// patching is exactly the "preserves" case for while→DO conversion).
///
//===----------------------------------------------------------------------===//

#ifndef TCC_PIPELINE_PASS_H
#define TCC_PIPELINE_PASS_H

#include "depopt/DepOpt.h"
#include "il/IL.h"
#include "inliner/Inliner.h"
#include "remarks/Remarks.h"
#include "scalar/ConstProp.h"
#include "scalar/DeadCode.h"
#include "scalar/InductionVarSub.h"
#include "scalar/WhileToDo.h"
#include "support/Diagnostics.h"
#include "vector/Vectorize.h"

#include <string>

namespace tcc {
namespace pipeline {

class AnalysisContext;

/// Per-pass configuration shared by every pass in one pipeline.  The
/// driver translates its user-facing options into this bag; passes read
/// from it at run time, so one registry of stateless factories serves
/// every configuration.
struct PipelineOptions {
  // Inlining (paper Section 7).
  inliner::InlineOptions Inline;
  const inliner::ProcedureCatalog *Catalog = nullptr;

  // Scalar optimization (Sections 5 and 8).
  scalar::IVSubOptions IVSub;
  scalar::ConstPropOptions ConstProp;

  // Vectorization and parallelization (Sections 5 and 9).
  vec::VectorizeOptions Vectorize;

  // Sub-phases of the dependence-driven optimization pass (Section 6).
  bool EnableScalarReplacement = true;
  bool EnableDepScheduling = true;
  bool EnableStrengthReduction = true;
};

/// Typed per-module statistics accumulated across the whole pipeline run
/// (the driver re-exports this as PhaseStats).  The generic StatGroup
/// each pass returns is derived from the same numbers.
struct PipelineStats {
  inliner::InlineStats Inline;
  scalar::WhileToDoStats WhileToDo;
  scalar::IVSubStats IVSub;
  scalar::ConstPropStats ConstProp;
  scalar::DCEStats DCE;
  vec::VectorizeStats Vectorize;
  depopt::ScalarReplaceStats ScalarReplace;
  depopt::StrengthReduceStats StrengthReduce;
};

/// Everything a pass may touch while running.
struct PassContext {
  il::Program &Program;
  DiagnosticEngine &Diags;
  const PipelineOptions &Options;
  AnalysisContext &Analyses;
  remarks::RemarkCollector &Remarks;
  PipelineStats &Stats;
};

/// One named transformation (or check) over a whole IL program.
class Pass {
public:
  virtual ~Pass() = default;

  /// The registered name; also the pipeline-spec token and the stage-
  /// capture key (single source of truth for both).
  virtual std::string name() const = 0;

  /// Runs over the program and reports what happened.  Recoverable
  /// failures go through Ctx.Diags; the PassManager stops the pipeline
  /// when a pass leaves errors behind.
  virtual remarks::StatGroup run(PassContext &Ctx) = 0;

  /// True when cached use-def chains remain valid after this pass (the
  /// pass either mutated nothing or patched the chains incrementally).
  virtual bool preservesUseDef() const { return false; }
};

} // namespace pipeline
} // namespace tcc

#endif // TCC_PIPELINE_PASS_H
