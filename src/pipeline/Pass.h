//===----------------------------------------------------------------------===//
///
/// \file
/// The Pass interfaces of the pipeline subsystem.
///
/// The paper's compiler is an ordered pipeline (parse → lower → inline →
/// while→DO → IV-sub → constprop ⨝ unreachable → DCE → vectorize →
/// dep-opt → codegen); this module makes that pipeline a first-class,
/// reorderable object instead of hardwired calls in the driver.
///
/// The unit of scheduling is a *function*: every optimization in Sections
/// 5–8 builds and consumes its analyses one procedure at a time, so those
/// phases are FunctionPasses (whiletodo, ivsub, constprop, dce, vectorize,
/// depopt).  Only phases that genuinely need the whole program — inline
/// expansion over the call graph, the schedulable verifier — are
/// ModulePasses.  Each pass declares the cached analyses it *preserves*
/// per function (a PreservedSet over AnalysisKind), which is how the
/// paper's Section 5.2 incremental use-def patching survives pass
/// boundaries: while→DO preserves everything, so the chains it patched
/// stay live for the next consumer instead of being rebuilt.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_PIPELINE_PASS_H
#define TCC_PIPELINE_PASS_H

#include "dependence/DependenceAnalysis.h"
#include "depopt/DepOpt.h"
#include "il/IL.h"
#include "inliner/Inliner.h"
#include "parallel/Spread.h"
#include "remarks/Remarks.h"
#include "scalar/ConstProp.h"
#include "scalar/DeadCode.h"
#include "scalar/InductionVarSub.h"
#include "scalar/WhileToDo.h"
#include "support/Diagnostics.h"
#include "vector/Vectorize.h"

#include <string>

namespace tcc {
namespace pipeline {

class AnalysisContext;

/// The analyses the AnalysisContext can cache per function.  Every kind
/// is a (function, kind) key in the cache; passes declare which kinds
/// they keep valid.
enum class AnalysisKind : uint8_t {
  UseDef = 0,    ///< analysis::UseDefChains (paper Section 5.2).
  PointsTo = 1,  ///< analysis::PointsToInfo — program-scoped Andersen
                 ///< solution; invalidating it on any function drops the
                 ///< whole result (and every MemorySSA graph built on it).
  MemorySSA = 2, ///< analysis::MemorySSA — per-function read/write graph.
};

/// The set of analysis kinds a pass leaves valid on the function it just
/// transformed.  `none()` is the safe default (the pass mutated the IL
/// arbitrarily); `all()` is for passes that either change nothing or
/// patch every cached analysis incrementally.
class PreservedSet {
public:
  static PreservedSet none() { return PreservedSet(); }
  static PreservedSet all() {
    PreservedSet S;
    S.Mask = ~0u;
    return S;
  }

  PreservedSet &preserve(AnalysisKind K) {
    Mask |= bit(K);
    return *this;
  }
  bool preserves(AnalysisKind K) const { return (Mask & bit(K)) != 0; }
  bool preservesAll() const { return Mask == ~0u; }

private:
  static unsigned bit(AnalysisKind K) {
    return 1u << static_cast<unsigned>(K);
  }
  unsigned Mask = 0;
};

/// Per-pass configuration shared by every pass in one pipeline.  The
/// driver translates its user-facing options into this bag; passes read
/// from it at run time, so one registry of stateless factories serves
/// every configuration.
struct PipelineOptions {
  // Inlining (paper Section 7).
  inliner::InlineOptions Inline;
  const inliner::ProcedureCatalog *Catalog = nullptr;

  // Scalar optimization (Sections 5 and 8).
  scalar::IVSubOptions IVSub;
  scalar::ConstPropOptions ConstProp;

  // Vectorization and parallelization (Sections 5 and 9).
  vec::VectorizeOptions Vectorize;
  par::SpreadOptions Spread;

  /// Which memory-dependence stack disambiguates different-base pairs in
  /// the vectorizer and depopt (`-depanalysis=`): the reachdef baseline
  /// or the Andersen points-to + MemorySSA stack (default).
  dep::DepAnalysisKind DepAnalysis = dep::DepAnalysisKind::MemSSA;

  // Sub-phases of the dependence-driven optimization pass (Section 6).
  bool EnableScalarReplacement = true;
  bool EnableDepScheduling = true;
  bool EnableStrengthReduction = true;
};

/// Typed per-module statistics accumulated across the whole pipeline run
/// (the driver re-exports this as PhaseStats).  The generic StatGroup
/// each pass returns is derived from the same numbers.
struct PipelineStats {
  inliner::InlineStats Inline;
  scalar::WhileToDoStats WhileToDo;
  scalar::IVSubStats IVSub;
  scalar::ConstPropStats ConstProp;
  scalar::DCEStats DCE;
  vec::VectorizeStats Vectorize;
  par::SpreadStats Spread;
  depopt::ScalarReplaceStats ScalarReplace;
  depopt::StrengthReduceStats StrengthReduce;
};

/// Everything a pass may touch while running.
struct PassContext {
  il::Program &Program;
  DiagnosticEngine &Diags;
  const PipelineOptions &Options;
  AnalysisContext &Analyses;
  remarks::RemarkCollector &Remarks;
  PipelineStats &Stats;
};

/// One named transformation (or check).  Abstract base of FunctionPass
/// and ModulePass; the PassManager schedules by kind.
class Pass {
public:
  enum PassKind : uint8_t {
    FunctionPassKind,
    ModulePassKind,
  };

  virtual ~Pass() = default;

  PassKind getKind() const { return TheKind; }

  /// The registered name; also the pipeline-spec token and the stage-
  /// capture key (single source of truth for both).
  virtual std::string name() const = 0;

  /// The cached analyses still valid on a function after this pass ran on
  /// it (for a ModulePass: on every function).  Defaults to none.
  virtual PreservedSet preservedAnalyses() const {
    return PreservedSet::none();
  }

protected:
  explicit Pass(PassKind K) : TheKind(K) {}

private:
  PassKind TheKind;
};

/// A transformation over one function at a time.  The PassManager decides
/// the iteration order (function-at-a-time segments by default); the pass
/// must touch only \p F — never another function's body or symbols — which
/// is exactly what makes the two execution orders byte-identical.
class FunctionPass : public Pass {
public:
  FunctionPass() : Pass(FunctionPassKind) {}

  /// Runs over \p F and reports what happened.  Recoverable failures go
  /// through Ctx.Diags; the PassManager stops the pipeline when a pass
  /// leaves errors behind.
  virtual remarks::StatGroup runOnFunction(il::Function &F,
                                           PassContext &Ctx) = 0;

  static bool classof(const Pass *P) {
    return P->getKind() == FunctionPassKind;
  }
};

/// A transformation that needs the whole program at once (inline
/// expansion over the call graph, the schedulable verifier).
class ModulePass : public Pass {
public:
  ModulePass() : Pass(ModulePassKind) {}

  /// Runs over the program and reports what happened.
  virtual remarks::StatGroup run(PassContext &Ctx) = 0;

  static bool classof(const Pass *P) {
    return P->getKind() == ModulePassKind;
  }
};

} // namespace pipeline
} // namespace tcc

#endif // TCC_PIPELINE_PASS_H
