//===----------------------------------------------------------------------===//
///
/// \file
/// The registry of named passes.  Pass names registered here are the
/// single source of truth for pipeline-spec tokens and for the driver's
/// stage-capture keys — adding a pass makes it schedulable, printable,
/// and snapshot-able in one step.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_PIPELINE_PASSREGISTRY_H
#define TCC_PIPELINE_PASSREGISTRY_H

#include "pipeline/Pass.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace tcc {
namespace pipeline {

using PassFactory = std::function<std::unique_ptr<Pass>()>;

class PassRegistry {
public:
  /// The process-wide registry, pre-populated with the built-in passes
  /// (see Passes.h).
  static PassRegistry &instance();

  /// Registers a factory; later registrations of the same name win
  /// (tests can shadow a built-in).  The shadowed name keeps its original
  /// registration position, so shadowing never reorders the pipeline.
  void registerPass(const std::string &Name, PassFactory Factory);

  bool contains(const std::string &Name) const;

  /// Instantiates the named pass; null when unknown.  Always the latest
  /// registration of the name.
  std::unique_ptr<Pass> create(const std::string &Name) const;

  /// Registered names, in registration order (the default pipeline order
  /// for the built-ins).  Never contains duplicates: spec enumerators
  /// (tcc-ablate) treat each name as one ablation unit.
  std::vector<std::string> names() const;

  /// "inline, whiletodo, ..." for diagnostics.
  std::string namesJoined() const;

private:
  std::vector<std::pair<std::string, PassFactory>> Factories;
};

//===----------------------------------------------------------------------===//
// Pipeline-spec enumeration (ablation sweeps)
//===----------------------------------------------------------------------===//

/// The leave-one-out family of \p Passes: one spec per pass, identical to
/// \p Passes with that single pass removed, in pipeline order.  Measuring
/// each against the full spec yields the pass's last-position marginal
/// contribution.
std::vector<std::vector<std::string>>
leaveOneOutSpecs(const std::vector<std::string> &Passes);

/// The prefix chain of \p Passes: specs of length 0..N in pipeline order
/// (the empty spec is the unoptimized baseline).  Consecutive differences
/// yield each pass's in-order marginal contribution.
std::vector<std::vector<std::string>>
prefixSpecs(const std::vector<std::string> &Passes);

/// Joins a spec token list into the comma-separated -passes= form.
std::string joinSpec(const std::vector<std::string> &Passes);

/// Splits a comma-separated -passes= spec into trimmed tokens (empty
/// segments preserved so callers can diagnose them).
std::vector<std::string> splitSpec(const std::string &Spec);

} // namespace pipeline
} // namespace tcc

#endif // TCC_PIPELINE_PASSREGISTRY_H
