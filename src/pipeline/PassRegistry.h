//===----------------------------------------------------------------------===//
///
/// \file
/// The registry of named passes.  Pass names registered here are the
/// single source of truth for pipeline-spec tokens and for the driver's
/// stage-capture keys — adding a pass makes it schedulable, printable,
/// and snapshot-able in one step.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_PIPELINE_PASSREGISTRY_H
#define TCC_PIPELINE_PASSREGISTRY_H

#include "pipeline/Pass.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace tcc {
namespace pipeline {

using PassFactory = std::function<std::unique_ptr<Pass>()>;

class PassRegistry {
public:
  /// The process-wide registry, pre-populated with the built-in passes
  /// (see Passes.h).
  static PassRegistry &instance();

  /// Registers a factory; later registrations of the same name win
  /// (tests can shadow a built-in).
  void registerPass(const std::string &Name, PassFactory Factory);

  bool contains(const std::string &Name) const;

  /// Instantiates the named pass; null when unknown.
  std::unique_ptr<Pass> create(const std::string &Name) const;

  /// Registered names, in registration order (the default pipeline order
  /// for the built-ins).
  std::vector<std::string> names() const;

  /// "inline, whiletodo, ..." for diagnostics.
  std::string namesJoined() const;

private:
  std::vector<std::pair<std::string, PassFactory>> Factories;
};

} // namespace pipeline
} // namespace tcc

#endif // TCC_PIPELINE_PASSREGISTRY_H
