//===----------------------------------------------------------------------===//
///
/// \file
/// The PassManager: executes a pipeline parsed from a string spec,
/// owns per-function analysis invalidation, and records per-pass and
/// per-function telemetry.
///
/// A pipeline spec is a comma-separated list of registered pass names,
/// e.g. "inline,whiletodo,ivsub,constprop,dce,vectorize,depopt".  An
/// entirely blank spec is a valid no-op pipeline (the -O0 baseline); a
/// spec with an empty segment ("dce,,vectorize") or an unknown name is
/// rejected with a diagnostic located at the offending column.
///
/// The unit of scheduling is a function.  The manager splits the
/// pipeline into segments — each ModulePass alone, each maximal run of
/// FunctionPasses together — and, in the default FunctionAtATime mode,
/// drives every function through a whole function-pass segment before
/// touching the next function.  Because function passes only mutate the
/// function they are given, this produces byte-identical serialized IL
/// to the classic pass-major order (WholeProgram mode, kept for stage
/// capture and differential testing).
///
/// Function-at-a-time scheduling is what makes compilation incremental:
/// with a cache manifest configured, each function's pre-segment
/// serialized IL is hashed together with the pipeline fingerprint, and a
/// manifest hit swaps in the previously optimized body instead of
/// re-running the segment.  Serialization round-trips are a fixed point,
/// so warm output is byte-identical to cold output.
///
/// For every executed pass the manager records wall-clock time, IL shape
/// counters before/after (the IL-delta), the pass's own StatGroup, and
/// use-def cache build/reuse counts; function segments additionally
/// yield one FunctionRecord per function (hash, millis, IL-delta, cache
/// hit/miss).  With VerifyEach set, the ILVerifier runs after every pass
/// — per function inside function segments — and a violation hard-fails
/// the pipeline with a diagnostic naming the offending pass (and
/// function).
///
//===----------------------------------------------------------------------===//

#ifndef TCC_PIPELINE_PASSMANAGER_H
#define TCC_PIPELINE_PASSMANAGER_H

#include "pipeline/AnalysisContext.h"
#include "pipeline/Pass.h"
#include "pipeline/PassSandbox.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace tcc {
namespace pipeline {

/// How the manager orders the (pass × function) iteration space.
enum class PipelineMode : uint8_t {
  /// Function-major: each function runs through a whole segment of
  /// function passes before the next function starts.  Enables the
  /// compile cache and per-function telemetry.  The default.
  FunctionAtATime,
  /// Pass-major: every pass runs over all functions before the next
  /// pass.  The intermediate whole-program states exist, so
  /// -print-after-all stage capture uses this mode.
  WholeProgram,
};

/// Hot in-memory store for optimized function bodies, shared across
/// concurrent compilations (the compile server hangs one off the daemon).
/// Keys are the same content hashes the .tcc-cache manifest uses — the
/// serialized input IL folded with the configuration fingerprint and the
/// segment's pass spec — so a hit is byte-identical to recompiling.
///
/// The contract is single-flight: acquire() either returns a finished
/// body (Hit) or makes the caller the owner of that computation (Own),
/// blocking while another thread owns it.  An owner must call exactly one
/// of publish() (body computed) or abandon() (compilation failed or
/// faulted); abandon wakes one waiter, which becomes the new owner, so a
/// crashed request never wedges the queue.  Implementations live in
/// src/server; the PassManager only consumes the interface.
class FunctionResultCache {
public:
  virtual ~FunctionResultCache() = default;

  enum class Acquire : uint8_t {
    Hit, ///< \p Text holds the optimized serialized body.
    Own, ///< Caller computes; must publish() or abandon() this hash.
  };

  /// \p Key is the manifest key ("name#segment"), \p Hash the content
  /// hash.  May block while another thread computes the same hash.
  virtual Acquire acquire(const std::string &Key, const std::string &Hash,
                          std::string &Text) = 0;
  /// Completes an owned computation with the optimized body.
  virtual void publish(const std::string &Key, const std::string &Hash,
                       std::string Text) = 0;
  /// Releases an owned computation without a result.
  virtual void abandon(const std::string &Key, const std::string &Hash) = 0;
};

struct PassManagerConfig {
  /// Run the ILVerifier after every pass; a violation stops the pipeline
  /// with a diagnostic naming the pass that broke the invariant.  With
  /// the sandbox enabled, a per-function violation is instead *contained*:
  /// the function rolls back and the (pass, function) pair is quarantined.
  bool VerifyEach = false;

  /// Fault containment around function-pass invocations (PassSandbox.h).
  /// With Sandbox.Enabled, a pass that throws, corrupts the IL (under
  /// VerifyEach), or blows a budget is quarantined per function: the
  /// function rolls back to its pre-pass IL and the pipeline continues.
  /// Module passes cannot roll back cross-function mutation, so their
  /// escaped exceptions become clean diagnostic errors instead.
  SandboxPolicy Sandbox;

  PipelineMode Mode = PipelineMode::FunctionAtATime;

  /// Path of the .tcc-cache manifest.  Empty disables incremental
  /// recompilation.  Only consulted in FunctionAtATime mode.
  std::string CacheFile;

  /// Fingerprint of every option that affects codegen (the driver folds
  /// its PipelineOptions in here); part of each function's content hash
  /// so a cache built under one configuration never serves another.
  std::string CacheConfig;

  /// Hot in-memory function-result store with single-flight dedupe
  /// (compile server).  May be null.  Composes with CacheFile: a hot miss
  /// that owns the computation still consults the manifest before
  /// recompiling, and publishes whatever it finds.
  FunctionResultCache *ResultCache = nullptr;

  /// Process-wide shared analysis exports keyed by IL text hash (compile
  /// server).  May be null.  Only consulted for functions whose bodies
  /// are pristine (pre-first-pass), where the hash is known to match.
  SharedAnalysisCache *SharedAnalyses = nullptr;

  /// Invoked after each pass completes (and verifies, when enabled) —
  /// the -print-after-all / stage-capture hook.  The pass's registered
  /// name is the snapshot key.  Inside a function-at-a-time segment the
  /// hook fires at segment end (the per-pass intermediate program state
  /// does not exist in that order); use WholeProgram mode for faithful
  /// per-pass snapshots.
  std::function<void(const Pass &, il::Program &)> AfterPass;
};

class PassManager {
public:
  explicit PassManager(PipelineOptions Options = {},
                       PassManagerConfig Config = {});

  /// Splits a spec on commas, trimming whitespace and dropping empty
  /// tokens.  Display/token helper only — addPipeline validates.
  static std::vector<std::string> tokenizeSpec(const std::string &Spec);

  /// Appends the passes named in \p Spec.  An entirely blank spec is a
  /// valid empty pipeline.  An empty segment between commas or an
  /// unknown pass name emits a diagnostic located at the offending
  /// column (line 1) and returns false; no passes are added.
  bool addPipeline(const std::string &Spec, DiagnosticEngine &Diags);

  /// Appends one pass instance.
  void addPass(std::unique_ptr<Pass> P);

  const std::vector<std::unique_ptr<Pass>> &passes() const { return Passes; }

  /// Executes the pipeline over \p P.  Stops early when a pass reports a
  /// diagnostic error or (with VerifyEach) the verifier fails.  Typed
  /// per-module statistics accumulate into \p Stats; remarks into
  /// \p Remarks.  Returns the full telemetry record — per-pass records,
  /// per-function records (FunctionAtATime mode), and remarks.
  remarks::CompilationTelemetry run(il::Program &P, DiagnosticEngine &Diags,
                                    remarks::RemarkCollector &Remarks,
                                    PipelineStats &Stats);

  /// Structural counters of a program (exposed for tests/tools).
  static remarks::ILCounts countIL(const il::Program &P);
  /// One function's contribution to countIL (its symbols and the shape
  /// of its body); summing over functions plus the global base
  /// reconstructs the program counts.
  static remarks::ILCounts countFunction(const il::Function &F);

private:
  PipelineOptions Options;
  PassManagerConfig Config;
  std::vector<std::unique_ptr<Pass>> Passes;
  AnalysisContext Analyses;
};

} // namespace pipeline
} // namespace tcc

#endif // TCC_PIPELINE_PASSMANAGER_H
