//===----------------------------------------------------------------------===//
///
/// \file
/// The PassManager: executes a pipeline parsed from a string spec,
/// owns analysis invalidation, and records per-pass telemetry.
///
/// A pipeline spec is a comma-separated list of registered pass names,
/// e.g. "inline,whiletodo,ivsub,constprop,dce,vectorize,depopt".  An
/// empty spec is a valid no-op pipeline (the -O0 baseline).  Unknown
/// names produce a diagnostic listing the registered passes.
///
/// For every executed pass the manager records wall-clock time, IL shape
/// counters before/after (the IL-delta), the pass's own StatGroup, and
/// use-def cache build/reuse counts.  With VerifyEach set, the ILVerifier
/// runs after every pass and a violation hard-fails the pipeline with a
/// diagnostic naming the offending pass.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_PIPELINE_PASSMANAGER_H
#define TCC_PIPELINE_PASSMANAGER_H

#include "pipeline/AnalysisContext.h"
#include "pipeline/Pass.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace tcc {
namespace pipeline {

struct PassManagerConfig {
  /// Run the ILVerifier after every pass; a violation stops the pipeline
  /// with a diagnostic naming the pass that broke the invariant.
  bool VerifyEach = false;

  /// Invoked after each pass completes (and verifies, when enabled) —
  /// the -print-after-all / stage-capture hook.  The pass's registered
  /// name is the snapshot key.
  std::function<void(const Pass &, il::Program &)> AfterPass;
};

class PassManager {
public:
  explicit PassManager(PipelineOptions Options = {},
                       PassManagerConfig Config = {});

  /// Splits a spec on commas, trimming whitespace and dropping empty
  /// tokens (so "" and " " are valid empty pipelines).  No validation.
  static std::vector<std::string> tokenizeSpec(const std::string &Spec);

  /// Appends the passes named in \p Spec.  An unknown name emits a
  /// diagnostic naming the known passes and returns false (no passes are
  /// added in that case).
  bool addPipeline(const std::string &Spec, DiagnosticEngine &Diags);

  /// Appends one pass instance.
  void addPass(std::unique_ptr<Pass> P);

  const std::vector<std::unique_ptr<Pass>> &passes() const { return Passes; }

  /// Executes the pipeline over \p P.  Stops early when a pass reports a
  /// diagnostic error or (with VerifyEach) the verifier fails.  Typed
  /// per-module statistics accumulate into \p Stats; remarks into
  /// \p Remarks.  Returns the full telemetry record, remarks included.
  remarks::CompilationTelemetry run(il::Program &P, DiagnosticEngine &Diags,
                                    remarks::RemarkCollector &Remarks,
                                    PipelineStats &Stats);

  /// Structural counters of a program (exposed for tests/tools).
  static remarks::ILCounts countIL(const il::Program &P);

private:
  PipelineOptions Options;
  PassManagerConfig Config;
  std::vector<std::unique_ptr<Pass>> Passes;
  AnalysisContext Analyses;
};

} // namespace pipeline
} // namespace tcc

#endif // TCC_PIPELINE_PASSMANAGER_H
