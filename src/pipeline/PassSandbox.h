//===----------------------------------------------------------------------===//
///
/// \file
/// Fault containment around function-pass invocations.
///
/// The paper's optimizations all *refine* correct scalar code (Sections
/// 5-6, 9): any single pass can be abandoned without losing correctness,
/// only performance.  The PassSandbox exploits that structure.  Every
/// function-pass invocation runs inside it:
///
///   1. the function's serialized IL is snapshotted before the pass;
///   2. the pass body runs under a try/catch, a per-pass statement-growth
///      budget, and a wall-clock budget; with -verify-each the ILVerifier
///      checks the result;
///   3. on any failure — escaped exception, verifier rejection, budget
///      overrun — the function is rolled back to the snapshot (round-trips
///      are a fixed point, so the rollback is byte-identical to never
///      having run the pass), the (pass, function) pair is quarantined,
///      a replayable crash-reproducer bundle is written, and the pipeline
///      continues.  Worst case the function ships with fewer
///      optimizations; the compile never drops.
///
/// A reproducer bundle is one file under the repro directory holding the
/// pre-pass IL, the pass name, the option fingerprint, the containment
/// policy, the injected-fault spec (when injection caused it), and the
/// fault description.  `tcc -replay=<bundle>` re-runs exactly that pass
/// on that IL through replayBundle() and reports whether the same fault
/// reproduces.
///
/// Fault injection (support/FaultInjection.h) drives every containment
/// path deterministically: throw/oom raise before the pass body, a
/// corrupt-il injection appends a verifier-rejected statement after it,
/// and slow burns past the wall-clock budget.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_PIPELINE_PASSSANDBOX_H
#define TCC_PIPELINE_PASSSANDBOX_H

#include "pipeline/Pass.h"
#include "support/FaultInjection.h"

#include <set>
#include <string>
#include <utility>
#include <vector>

namespace tcc {
namespace pipeline {

/// What the sandbox enforces around each function-pass invocation.
struct SandboxPolicy {
  /// Master switch.  Off restores the pre-containment behavior: pass
  /// exceptions escape and -verify-each violations fail the pipeline.
  bool Enabled = true;

  /// Wall-clock budget per pass invocation, in milliseconds; an overrun
  /// quarantines the invocation (checked after the pass returns — the
  /// sandbox cannot preempt, it detects and contains).  0 disables.
  double PassBudgetMs = 1000.0;

  /// Statement-growth budget: a pass leaving more than
  /// Before * StmtGrowthFactor + StmtGrowthSlack statements is treated as
  /// runaway and quarantined.  Factor 0 disables.
  uint64_t StmtGrowthFactor = 8;
  uint64_t StmtGrowthSlack = 512;

  /// Directory for crash-reproducer bundles; empty disables writing them.
  std::string ReproDir;

  /// Deterministic fault injection; null injects nothing.
  FaultInjector *Faults = nullptr;
};

/// One contained failure, as recorded in telemetry and remarks.
struct SandboxFault {
  std::string Pass;
  std::string Function;
  std::string Kind;        ///< "exception", "verifier", "stmt-budget", "time-budget".
  std::string Description; ///< What was caught / which budget by how much.
  std::string ReproFile;   ///< Written bundle path; empty if disabled/failed.
};

/// Per-pipeline-run containment state: the quarantine set and the fault
/// log.  The PassManager owns one per run() and routes every function-pass
/// invocation through it when the policy is enabled.
class PassSandbox {
public:
  PassSandbox(const SandboxPolicy &Policy, std::string ConfigFingerprint)
      : Policy(Policy), ConfigFingerprint(std::move(ConfigFingerprint)) {}

  struct Result {
    il::Function *F = nullptr; ///< The function after the invocation —
                               ///< the rolled-back replacement on fault.
    remarks::StatGroup Stats;
    bool Faulted = false; ///< Contained a failure this invocation.
    bool Skipped = false; ///< Quarantined earlier; the pass did not run.
  };

  /// Runs \p FP over \p F with full containment.  Never throws; never
  /// leaves errors in Ctx.Diags for contained faults (a warning and a
  /// missed-remark are emitted instead).  \p VerifyEach additionally
  /// treats an ILVerifier rejection of the result as a fault.
  Result run(FunctionPass &FP, il::Function &F, PassContext &Ctx,
             bool VerifyEach);

  bool isQuarantined(const std::string &Pass,
                     const std::string &Function) const {
    return Quarantine.count({Pass, Function}) != 0;
  }

  const std::vector<SandboxFault> &faults() const { return FaultLog; }

private:
  std::string writeReproBundle(const SandboxFault &Fault,
                               const std::string &SnapshotIL,
                               const FaultSpec *Injected, bool VerifyEach,
                               PassContext &Ctx);

  SandboxPolicy Policy;
  std::string ConfigFingerprint;
  std::set<std::pair<std::string, std::string>> Quarantine;
  std::vector<SandboxFault> FaultLog;
  unsigned BundleSeq = 0;
};

//===----------------------------------------------------------------------===//
// Crash-reproducer bundles
//===----------------------------------------------------------------------===//

/// A parsed reproducer bundle: everything needed to re-run exactly one
/// pass invocation on exactly the IL it faulted on.
struct ReproBundle {
  std::string Pass;
  std::string Function;
  std::string Kind;        ///< Fault kind recorded at containment time.
  std::string Description;
  std::string Config;      ///< Option fingerprint of the original compile.
  std::string InjectSpec;  ///< Fault-injection spec to re-arm; "-" = none.
  std::string IL;          ///< Pre-pass serialized function IL.

  // Differential-fuzzing extension (src/fuzz).  Bundles written by the
  // sandbox itself leave these empty; the fuzz campaign augments its
  // findings with the oracle class ("output-divergence", "verifier",
  // "quarantine"), the -passes= variant spec that diverged, and the
  // reduced C source, so `tcc -replay=` can re-run the *whole-program*
  // differential check instead of a single pass invocation.
  std::string Oracle;      ///< Divergence class name; empty = plain bundle.
  std::string VariantSpec; ///< The -passes= spec the oracle flagged.
  std::string CSource;     ///< Reduced C program (the oracle's input).
  bool VerifyEach = false;
  double PassBudgetMs = 0.0;
  uint64_t StmtGrowthFactor = 0;
  uint64_t StmtGrowthSlack = 0;
};

/// Reads a bundle file; located diagnostics and false on malformed input.
bool loadReproBundle(const std::string &Path, ReproBundle &Out,
                     DiagnosticEngine &Diags);

struct ReplayResult {
  bool Ran = false;        ///< Bundle was executable (pass known, IL valid).
  bool Reproduced = false; ///< A fault of the recorded kind occurred again.
  std::string Kind;        ///< Fault kind observed during replay, if any.
  std::string Description;
};

/// Re-runs the bundle's pass on the bundle's IL under the recorded
/// containment policy (re-arming the recorded fault injection).  The
/// whole point of a bundle: a contained fault reproduces deterministically
/// outside the original compile.
ReplayResult replayBundle(const ReproBundle &B,
                          const PipelineOptions &Options,
                          DiagnosticEngine &Diags);

} // namespace pipeline
} // namespace tcc

#endif // TCC_PIPELINE_PASSSANDBOX_H
