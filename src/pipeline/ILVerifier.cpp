#include "pipeline/ILVerifier.h"

#include "analysis/UseDef.h"
#include "il/ILPrinter.h"

#include <algorithm>
#include <set>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::pipeline;

namespace {

class FunctionVerifier {
public:
  FunctionVerifier(Function &F, const VerifierOptions &Opts,
                   VerifierReport &Report)
      : F(F), Opts(Opts), Report(Report) {}

  void run() {
    collectOwnedSymbols();
    checkStructure(F.getBody());
    checkLabels();
    if (Opts.CheckUseDef && Report.ok())
      checkUseDef();
  }

private:
  void error(const Stmt *S, const std::string &Msg) {
    std::string Where;
    if (S && S->getLoc().isValid())
      Where = " at line " + std::to_string(S->getLoc().Line);
    Report.Errors.push_back(F.getName() + Where + ": " + Msg);
  }

  void collectOwnedSymbols() {
    for (const auto &S : F.getSymbols())
      Owned.insert(S.get());
    for (Symbol *S : F.getParams())
      Owned.insert(S);
    for (const auto &G : F.getProgram().getGlobals())
      Owned.insert(G.get());
  }

  //===--------------------------------------------------------------------===//
  // Statement structure, symbols, triplet placement
  //===--------------------------------------------------------------------===//

  void checkStructure(Block &B) {
    for (Stmt *S : B.Stmts) {
      if (!S) {
        error(nullptr, "null statement in block");
        continue;
      }
      if (!Seen.insert(S).second) {
        error(S, "statement appears in more than one block: " +
                     firstLine(il::printStmt(S)));
        continue; // don't recurse twice
      }
      checkStmt(S);
      switch (S->getKind()) {
      case Stmt::IfKind:
        checkStructure(static_cast<IfStmt *>(S)->getThen());
        checkStructure(static_cast<IfStmt *>(S)->getElse());
        break;
      case Stmt::WhileKind:
        checkStructure(static_cast<WhileStmt *>(S)->getBody());
        break;
      case Stmt::DoLoopKind:
        checkStructure(static_cast<DoLoopStmt *>(S)->getBody());
        break;
      default:
        break;
      }
    }
  }

  void checkStmt(Stmt *S) {
    switch (S->getKind()) {
    case Stmt::AssignKind: {
      auto *A = static_cast<AssignStmt *>(S);
      if (!A->getLHS() || !A->getRHS()) {
        error(S, "assignment with null operand");
        return;
      }
      // A vector assignment carries its triplets nested inside memory
      // references, never as the top-level value.
      if (A->getLHS()->getKind() == Expr::TripletKind ||
          A->getRHS()->getKind() == Expr::TripletKind)
        error(S, "top-level triplet outside a memory reference");
      checkExpr(S, A->getLHS(), /*TripletOk=*/true);
      checkExpr(S, A->getRHS(), /*TripletOk=*/true);
      Expr *L = A->getLHS();
      if (L->getKind() != Expr::VarRefKind &&
          L->getKind() != Expr::DerefKind && L->getKind() != Expr::IndexKind)
        error(S, "assignment target is not an lvalue");
      break;
    }
    case Stmt::CallKind: {
      auto *C = static_cast<CallStmt *>(S);
      if (C->getResult() && !Owned.count(C->getResult()))
        error(S, "call result symbol not owned by function or program");
      for (Expr *Arg : C->getArgs())
        checkExpr(S, Arg, /*TripletOk=*/false);
      break;
    }
    case Stmt::IfKind:
      checkExpr(S, static_cast<IfStmt *>(S)->getCond(), /*TripletOk=*/false);
      break;
    case Stmt::WhileKind:
      checkExpr(S, static_cast<WhileStmt *>(S)->getCond(),
                /*TripletOk=*/false);
      break;
    case Stmt::DoLoopKind:
      checkDoLoop(static_cast<DoLoopStmt *>(S));
      break;
    case Stmt::GotoKind:
      Gotos.push_back(static_cast<GotoStmt *>(S));
      break;
    case Stmt::LabelKind: {
      auto *L = static_cast<LabelStmt *>(S);
      if (!Labels.insert(L->getName()).second)
        error(S, "duplicate label '" + L->getName() + "'");
      break;
    }
    case Stmt::ReturnKind:
      if (Expr *V = static_cast<ReturnStmt *>(S)->getValue())
        checkExpr(S, V, /*TripletOk=*/false);
      break;
    }
  }

  void checkDoLoop(DoLoopStmt *D) {
    if (!D->getIndexVar()) {
      error(D, "DO loop with no index variable");
      return;
    }
    if (!Owned.count(D->getIndexVar()))
      error(D, "DO loop index symbol not owned by function or program");
    struct BoundDesc {
      const char *Name;
      Expr *E;
    } Bounds[] = {{"init", D->getInit()},
                  {"limit", D->getLimit()},
                  {"step", D->getStep()}};
    for (const auto &[Name, E] : Bounds) {
      if (!E) {
        error(D, std::string("DO loop with null ") + Name + " bound");
        continue;
      }
      // Bounds are evaluated once at loop entry; they must be pure scalar
      // expressions.
      if (exprHasTriplet(E))
        error(D, std::string("DO loop ") + Name +
                     " bound contains a vector triplet");
      if (exprReadsVolatile(E))
        error(D, std::string("impure DO loop ") + Name +
                     " bound: reads a volatile symbol");
      checkExpr(D, E, /*TripletOk=*/false);
    }
  }

  /// Walks an expression tree checking symbol ownership and triplet
  /// placement.  \p TripletOk permits triplets in this statement at all
  /// (assignments only); nesting a triplet inside another triplet's
  /// bounds is always an error.
  void checkExpr(Stmt *S, Expr *E, bool TripletOk, bool InTriplet = false) {
    if (!E) {
      error(S, "null expression operand");
      return;
    }
    switch (E->getKind()) {
    case Expr::VarRefKind: {
      Symbol *Sym = static_cast<VarRefExpr *>(E)->getSymbol();
      if (!Sym)
        error(S, "variable reference with null symbol");
      else if (!Owned.count(Sym))
        error(S, "symbol '" + Sym->getName() +
                     "' not owned by function or program");
      break;
    }
    case Expr::TripletKind: {
      auto *T = static_cast<TripletExpr *>(E);
      if (!TripletOk)
        error(S, "vector triplet outside an assignment statement");
      if (InTriplet)
        error(S, "triplet nested inside another triplet");
      checkExpr(S, T->getLo(), TripletOk, /*InTriplet=*/true);
      checkExpr(S, T->getHi(), TripletOk, /*InTriplet=*/true);
      checkExpr(S, T->getStride(), TripletOk, /*InTriplet=*/true);
      break;
    }
    case Expr::BinaryKind:
      checkExpr(S, static_cast<BinaryExpr *>(E)->getLHS(), TripletOk,
                InTriplet);
      checkExpr(S, static_cast<BinaryExpr *>(E)->getRHS(), TripletOk,
                InTriplet);
      break;
    case Expr::UnaryKind:
      checkExpr(S, static_cast<UnaryExpr *>(E)->getOperand(), TripletOk,
                InTriplet);
      break;
    case Expr::DerefKind:
      checkExpr(S, static_cast<DerefExpr *>(E)->getAddr(), TripletOk,
                InTriplet);
      break;
    case Expr::AddrOfKind:
      checkExpr(S, static_cast<AddrOfExpr *>(E)->getLValue(), TripletOk,
                InTriplet);
      break;
    case Expr::IndexKind: {
      auto *I = static_cast<IndexExpr *>(E);
      checkExpr(S, I->getBase(), TripletOk, InTriplet);
      for (Expr *Sub : I->getSubscripts())
        checkExpr(S, Sub, TripletOk, InTriplet);
      break;
    }
    case Expr::CastKind:
      checkExpr(S, static_cast<CastExpr *>(E)->getOperand(), TripletOk,
                InTriplet);
      break;
    case Expr::ConstIntKind:
    case Expr::ConstFloatKind:
      break;
    }
  }

  //===--------------------------------------------------------------------===//
  // Control flow
  //===--------------------------------------------------------------------===//

  void checkLabels() {
    for (GotoStmt *G : Gotos)
      if (!Labels.count(G->getTarget()))
        error(G, "goto to undefined label '" + G->getTarget() + "'");
  }

  //===--------------------------------------------------------------------===//
  // Use-def consistency
  //===--------------------------------------------------------------------===//

  void checkUseDef() {
    analysis::UseDefChains UD(F);
    unsigned Reported = 0;
    for (const Stmt *S : Seen) {
      for (Symbol *Sym : analysis::usedScalars(S)) {
        for (const Stmt *Def : UD.defsReaching(S, Sym)) {
          if (!Def)
            continue; // value on entry to the function
          if (Reported >= 8)
            return; // a systemic breakage repeats per use; cap the noise
          if (!Seen.count(const_cast<Stmt *>(Def))) {
            error(S, "use-def chain for '" + Sym->getName() +
                         "' references a statement not in the body");
            ++Reported;
            continue;
          }
          auto Defs = analysis::strongDefs(Def);
          if (std::find(Defs.begin(), Defs.end(), Sym) == Defs.end()) {
            error(S, "use-def chain for '" + Sym->getName() +
                         "' references a statement that does not define it");
            ++Reported;
          }
        }
      }
    }
  }

  static std::string firstLine(const std::string &S) {
    auto Pos = S.find('\n');
    return Pos == std::string::npos ? S : S.substr(0, Pos);
  }

  Function &F;
  const VerifierOptions &Opts;
  VerifierReport &Report;
  std::set<Symbol *> Owned;
  std::set<Stmt *> Seen;
  std::set<std::string> Labels;
  std::vector<GotoStmt *> Gotos;
};

} // namespace

std::string VerifierReport::str() const {
  std::string Out;
  for (const std::string &E : Errors) {
    Out += E;
    Out += '\n';
  }
  return Out;
}

VerifierReport pipeline::verifyFunction(Function &F,
                                        const VerifierOptions &Opts) {
  VerifierReport Report;
  FunctionVerifier(F, Opts, Report).run();
  return Report;
}

VerifierReport pipeline::verifyProgram(Program &P,
                                       const VerifierOptions &Opts) {
  VerifierReport Report;
  for (const auto &F : P.getFunctions())
    FunctionVerifier(*F, Opts, Report).run();
  return Report;
}
