#include "pipeline/ILVerifier.h"

#include "analysis/UseDef.h"
#include "il/ILPrinter.h"

#include <algorithm>
#include <set>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::pipeline;

namespace {

class FunctionVerifier {
public:
  FunctionVerifier(Function &F, const VerifierOptions &Opts,
                   VerifierReport &Report)
      : F(F), Opts(Opts), Report(Report) {}

  void run() {
    collectOwnedSymbols();
    checkStructure(F.getBody());
    checkLabels();
    if (Opts.CheckUseDef && Report.ok())
      checkUseDef();
  }

private:
  void error(const Stmt *S, const std::string &Msg) {
    std::string Where;
    if (S && S->getLoc().isValid())
      Where = " at line " + std::to_string(S->getLoc().Line);
    Report.Errors.push_back(F.getName() + Where + ": " + Msg);
  }

  void collectOwnedSymbols() {
    for (const auto &S : F.getSymbols())
      Owned.insert(S.get());
    for (Symbol *S : F.getParams())
      Owned.insert(S);
    for (const auto &G : F.getProgram().getGlobals())
      Owned.insert(G.get());
  }

  //===--------------------------------------------------------------------===//
  // Statement structure, symbols, triplet placement
  //===--------------------------------------------------------------------===//

  void checkStructure(Block &B) {
    for (Stmt *S : B.Stmts) {
      if (!S) {
        error(nullptr, "null statement in block");
        continue;
      }
      if (!Seen.insert(S).second) {
        error(S, "statement appears in more than one block: " +
                     firstLine(il::printStmt(S)));
        continue; // don't recurse twice
      }
      checkStmt(S);
      switch (S->getKind()) {
      case Stmt::IfKind:
        checkStructure(static_cast<IfStmt *>(S)->getThen());
        checkStructure(static_cast<IfStmt *>(S)->getElse());
        break;
      case Stmt::WhileKind:
        checkStructure(static_cast<WhileStmt *>(S)->getBody());
        break;
      case Stmt::DoLoopKind:
        checkStructure(static_cast<DoLoopStmt *>(S)->getBody());
        break;
      default:
        break;
      }
    }
  }

  void checkStmt(Stmt *S) {
    switch (S->getKind()) {
    case Stmt::AssignKind: {
      auto *A = static_cast<AssignStmt *>(S);
      if (!A->getLHS() || !A->getRHS()) {
        error(S, "assignment with null operand");
        return;
      }
      // A vector assignment carries its triplets nested inside memory
      // references, never as the top-level value.
      if (A->getLHS()->getKind() == Expr::TripletKind ||
          A->getRHS()->getKind() == Expr::TripletKind)
        error(S, "top-level triplet outside a memory reference");
      checkExpr(S, A->getLHS(), /*TripletOk=*/true);
      checkExpr(S, A->getRHS(), /*TripletOk=*/true);
      Expr *L = A->getLHS();
      if (L->getKind() != Expr::VarRefKind &&
          L->getKind() != Expr::DerefKind && L->getKind() != Expr::IndexKind)
        error(S, "assignment target is not an lvalue");
      if (Opts.CheckTypes)
        checkAssignTypes(A);
      break;
    }
    case Stmt::CallKind: {
      auto *C = static_cast<CallStmt *>(S);
      if (C->getResult() && !Owned.count(C->getResult()))
        error(S, "call result symbol not owned by function or program");
      for (Expr *Arg : C->getArgs())
        checkExpr(S, Arg, /*TripletOk=*/false);
      break;
    }
    case Stmt::IfKind:
      checkExpr(S, static_cast<IfStmt *>(S)->getCond(), /*TripletOk=*/false);
      break;
    case Stmt::WhileKind:
      checkExpr(S, static_cast<WhileStmt *>(S)->getCond(),
                /*TripletOk=*/false);
      break;
    case Stmt::DoLoopKind:
      checkDoLoop(static_cast<DoLoopStmt *>(S));
      break;
    case Stmt::GotoKind:
      Gotos.push_back(static_cast<GotoStmt *>(S));
      break;
    case Stmt::LabelKind: {
      auto *L = static_cast<LabelStmt *>(S);
      if (!Labels.insert(L->getName()).second)
        error(S, "duplicate label '" + L->getName() + "'");
      break;
    }
    case Stmt::ReturnKind:
      if (Expr *V = static_cast<ReturnStmt *>(S)->getValue())
        checkExpr(S, V, /*TripletOk=*/false);
      break;
    }
  }

  void checkDoLoop(DoLoopStmt *D) {
    if (!D->getIndexVar()) {
      error(D, "DO loop with no index variable");
      return;
    }
    if (!Owned.count(D->getIndexVar()))
      error(D, "DO loop index symbol not owned by function or program");
    if (Opts.CheckTypes && D->getIndexVar()->getType() &&
        !D->getIndexVar()->getType()->isInteger())
      error(D, "type mismatch: DO loop index '" +
                   D->getIndexVar()->getName() + "' has non-integer type " +
                   D->getIndexVar()->getType()->str());
    struct BoundDesc {
      const char *Name;
      Expr *E;
    } Bounds[] = {{"init", D->getInit()},
                  {"limit", D->getLimit()},
                  {"step", D->getStep()}};
    for (const auto &[Name, E] : Bounds) {
      if (!E) {
        error(D, std::string("DO loop with null ") + Name + " bound");
        continue;
      }
      // Bounds are evaluated once at loop entry; they must be pure scalar
      // expressions.
      if (exprHasTriplet(E))
        error(D, std::string("DO loop ") + Name +
                     " bound contains a vector triplet");
      if (exprReadsVolatile(E))
        error(D, std::string("impure DO loop ") + Name +
                     " bound: reads a volatile symbol");
      if (Opts.CheckTypes && E->getType() && !E->getType()->isInteger())
        error(D, std::string("type mismatch: DO loop ") + Name +
                     " bound has non-integer type " + E->getType()->str());
      checkExpr(D, E, /*TripletOk=*/false);
    }
  }

  /// Walks an expression tree checking symbol ownership and triplet
  /// placement.  \p TripletOk permits triplets in this statement at all
  /// (assignments only); nesting a triplet inside another triplet's
  /// bounds is always an error.
  void checkExpr(Stmt *S, Expr *E, bool TripletOk, bool InTriplet = false) {
    if (!E) {
      error(S, "null expression operand");
      return;
    }
    switch (E->getKind()) {
    case Expr::VarRefKind: {
      Symbol *Sym = static_cast<VarRefExpr *>(E)->getSymbol();
      if (!Sym)
        error(S, "variable reference with null symbol");
      else if (!Owned.count(Sym))
        error(S, "symbol '" + Sym->getName() +
                     "' not owned by function or program");
      break;
    }
    case Expr::TripletKind: {
      auto *T = static_cast<TripletExpr *>(E);
      if (!TripletOk)
        error(S, "vector triplet outside an assignment statement");
      if (InTriplet)
        error(S, "triplet nested inside another triplet");
      checkExpr(S, T->getLo(), TripletOk, /*InTriplet=*/true);
      checkExpr(S, T->getHi(), TripletOk, /*InTriplet=*/true);
      checkExpr(S, T->getStride(), TripletOk, /*InTriplet=*/true);
      break;
    }
    case Expr::BinaryKind:
      checkExpr(S, static_cast<BinaryExpr *>(E)->getLHS(), TripletOk,
                InTriplet);
      checkExpr(S, static_cast<BinaryExpr *>(E)->getRHS(), TripletOk,
                InTriplet);
      break;
    case Expr::UnaryKind:
      checkExpr(S, static_cast<UnaryExpr *>(E)->getOperand(), TripletOk,
                InTriplet);
      break;
    case Expr::DerefKind:
      checkExpr(S, static_cast<DerefExpr *>(E)->getAddr(), TripletOk,
                InTriplet);
      break;
    case Expr::AddrOfKind:
      checkExpr(S, static_cast<AddrOfExpr *>(E)->getLValue(), TripletOk,
                InTriplet);
      break;
    case Expr::IndexKind: {
      auto *I = static_cast<IndexExpr *>(E);
      checkExpr(S, I->getBase(), TripletOk, InTriplet);
      for (Expr *Sub : I->getSubscripts())
        checkExpr(S, Sub, TripletOk, InTriplet);
      break;
    }
    case Expr::CastKind:
      checkExpr(S, static_cast<CastExpr *>(E)->getOperand(), TripletOk,
                InTriplet);
      break;
    case Expr::ConstIntKind:
    case Expr::ConstFloatKind:
      break;
    }
    if (Opts.CheckTypes)
      checkExprType(S, E);
  }

  //===--------------------------------------------------------------------===//
  // Type consistency
  //===--------------------------------------------------------------------===//

  static bool hasTripletOperand(const Expr *E) {
    switch (E->getKind()) {
    case Expr::BinaryKind:
      return static_cast<const BinaryExpr *>(E)->getLHS()->getKind() ==
                 Expr::TripletKind ||
             static_cast<const BinaryExpr *>(E)->getRHS()->getKind() ==
                 Expr::TripletKind;
    case Expr::UnaryKind:
      return static_cast<const UnaryExpr *>(E)->getOperand()->getKind() ==
             Expr::TripletKind;
    default:
      return false;
    }
  }

  /// An assignment stores the value as-is (conversions are explicit Cast
  /// nodes inserted by Lower), so target and value types must agree.
  void checkAssignTypes(AssignStmt *A) {
    const Type *L = A->getLHS() ? A->getLHS()->getType() : nullptr;
    const Type *R = A->getRHS() ? A->getRHS()->getType() : nullptr;
    if (L && R && L != R)
      error(A, "type mismatch: assignment to " + L->str() +
                   " from a value of type " + R->str());
  }

  /// Checks one node's result type against its operands' types.  The
  /// typing discipline (established by Lower, maintained by every pass):
  /// operands of an arithmetic operation are coerced to the common
  /// arithmetic type via explicit casts, comparisons and logical ops
  /// yield int, pointer arithmetic Add/Sub(ptr, int) yields the pointer
  /// type, and a memory reference's type is the referenced element type.
  void checkExprType(Stmt *S, Expr *E) {
    const Type *Ty = E->getType();
    if (!Ty) {
      error(S, "type mismatch: expression carries no type");
      return;
    }
    switch (E->getKind()) {
    case Expr::VarRefKind: {
      Symbol *Sym = static_cast<VarRefExpr *>(E)->getSymbol();
      if (Sym && Sym->getType() && Ty != Sym->getType())
        error(S, "type mismatch: reference to '" + Sym->getName() +
                     "' has type " + Ty->str() +
                     " but the symbol is declared " + Sym->getType()->str());
      break;
    }
    case Expr::BinaryKind: {
      auto *B = static_cast<BinaryExpr *>(E);
      if (!B->getLHS() || !B->getRHS() || hasTripletOperand(B))
        break;
      const Type *L = B->getLHS()->getType();
      const Type *R = B->getRHS()->getType();
      if (!L || !R)
        break; // reported on the operand itself
      if (isComparisonOp(B->getOp())) {
        if (!Ty->isInteger())
          error(S, std::string("type mismatch: '") +
                       opCodeSpelling(B->getOp()) +
                       "' yields non-integer type " + Ty->str());
        break;
      }
      // Pointer arithmetic: Add/Sub(ptr, int) -> ptr; Sub(ptr, ptr) -> int.
      if (L->isPointer() || R->isPointer()) {
        if (B->getOp() == OpCode::Sub && L->isPointer() && R->isPointer()) {
          if (!Ty->isInteger())
            error(S, "type mismatch: pointer difference has non-integer "
                     "type " +
                         Ty->str());
        } else if (B->getOp() == OpCode::Add || B->getOp() == OpCode::Sub) {
          const Type *PtrTy = L->isPointer() ? L : R;
          // Arithmetic on a pointer-to-array may flatten the addressing
          // and yield a pointer to a nested element type (a 2-D row
          // pointer decays to the element pointer).
          bool Ok = Ty == PtrTy;
          if (!Ok && Ty->isPointer())
            for (const Type *Elem = PtrTy->getElementType();
                 Elem && Elem->isArray(); Elem = Elem->getElementType())
              if (Ty->getElementType() == Elem->getElementType()) {
                Ok = true;
                break;
              }
          if (!Ok)
            error(S, "type mismatch: pointer arithmetic yields " +
                         Ty->str() + " but the pointer operand has type " +
                         PtrTy->str());
        }
        break;
      }
      if (L->isArithmetic() && R->isArithmetic()) {
        const Type *Common =
            F.getProgram().getTypes().getCommonArithmeticType(L, R);
        if (Ty != Common)
          error(S, std::string("type mismatch: '") +
                       opCodeSpelling(B->getOp()) + "' on " + L->str() +
                       " and " + R->str() + " yields " + Ty->str() +
                       " instead of " + Common->str());
      }
      break;
    }
    case Expr::UnaryKind: {
      auto *U = static_cast<UnaryExpr *>(E);
      if (!U->getOperand() || hasTripletOperand(U))
        break;
      const Type *Op = U->getOperand()->getType();
      if (!Op)
        break;
      if (U->getOp() == OpCode::LogNot) {
        if (!Ty->isInteger())
          error(S, "type mismatch: '!' yields non-integer type " +
                       Ty->str());
      } else if (Op->isArithmetic() && Ty != Op) {
        error(S, std::string("type mismatch: '") +
                     opCodeSpelling(U->getOp()) + "' on " + Op->str() +
                     " yields " + Ty->str());
      }
      break;
    }
    case Expr::DerefKind: {
      auto *D = static_cast<DerefExpr *>(E);
      if (!D->getAddr() || !D->getAddr()->getType())
        break;
      const Type *Addr = D->getAddr()->getType();
      if (!Addr->isPointer()) {
        error(S, "type mismatch: dereference of non-pointer type " +
                     Addr->str());
        break;
      }
      if (Addr->getElementType() && Ty != Addr->getElementType())
        error(S, "type mismatch: dereference of " + Addr->str() +
                     " yields " + Ty->str());
      break;
    }
    case Expr::IndexKind: {
      auto *I = static_cast<IndexExpr *>(E);
      for (Expr *Sub : I->getSubscripts()) {
        if (!Sub || Sub->getKind() == Expr::TripletKind)
          continue; // triplet bounds are checked as their own nodes
        if (Sub->getType() && !Sub->getType()->isInteger())
          error(S, "type mismatch: array subscript has non-integer type " +
                       Sub->getType()->str());
      }
      break;
    }
    case Expr::TripletKind: {
      auto *T = static_cast<TripletExpr *>(E);
      // Bounds are integers in subscript position; the vectorizer also
      // builds pointer-valued triplets (base : limit : stride) directly.
      for (Expr *Part : {T->getLo(), T->getHi(), T->getStride()})
        if (Part && Part->getType() && !Part->getType()->isInteger() &&
            !Part->getType()->isPointer())
          error(S, "type mismatch: triplet bound has non-integer type " +
                       Part->getType()->str());
      break;
    }
    default:
      break;
    }
  }

  //===--------------------------------------------------------------------===//
  // Control flow
  //===--------------------------------------------------------------------===//

  void checkLabels() {
    for (GotoStmt *G : Gotos)
      if (!Labels.count(G->getTarget()))
        error(G, "goto to undefined label '" + G->getTarget() + "'");
  }

  //===--------------------------------------------------------------------===//
  // Use-def consistency
  //===--------------------------------------------------------------------===//

  void checkUseDef() {
    analysis::UseDefChains UD(F);
    // The analysis records weak (may-) defs too: calls and pointer stores
    // clobber address-taken scalars and globals.  Mirror that rule here so
    // a legitimate clobber site is not flagged.
    std::set<Symbol *> Clobberable = analysis::computeAddressTakenScalars(F);
    auto IsWeakDefSite = [&Clobberable](const Stmt *Def, Symbol *Sym) {
      if (!Clobberable.count(Sym) && !Sym->isGlobal())
        return false;
      if (Def->getKind() == Stmt::CallKind)
        return static_cast<const CallStmt *>(Def)->getResult() != Sym;
      return Def->getKind() == Stmt::AssignKind &&
             static_cast<const AssignStmt *>(Def)->getLHS()->getKind() !=
                 Expr::VarRefKind;
    };
    unsigned Reported = 0;
    for (const Stmt *S : Seen) {
      for (Symbol *Sym : analysis::usedScalars(S)) {
        for (const Stmt *Def : UD.defsReaching(S, Sym)) {
          if (!Def)
            continue; // value on entry to the function
          if (Reported >= 8)
            return; // a systemic breakage repeats per use; cap the noise
          if (!Seen.count(const_cast<Stmt *>(Def))) {
            error(S, "use-def chain for '" + Sym->getName() +
                         "' references a statement not in the body");
            ++Reported;
            continue;
          }
          auto Defs = analysis::strongDefs(Def);
          if (std::find(Defs.begin(), Defs.end(), Sym) == Defs.end() &&
              !IsWeakDefSite(Def, Sym)) {
            error(S, "use-def chain for '" + Sym->getName() +
                         "' references a statement that does not define it");
            ++Reported;
          }
        }
      }
    }
  }

  static std::string firstLine(const std::string &S) {
    auto Pos = S.find('\n');
    return Pos == std::string::npos ? S : S.substr(0, Pos);
  }

  Function &F;
  const VerifierOptions &Opts;
  VerifierReport &Report;
  std::set<Symbol *> Owned;
  std::set<Stmt *> Seen;
  std::set<std::string> Labels;
  std::vector<GotoStmt *> Gotos;
};

} // namespace

std::string VerifierReport::str() const {
  std::string Out;
  for (const std::string &E : Errors) {
    Out += E;
    Out += '\n';
  }
  return Out;
}

VerifierReport pipeline::verifyFunction(Function &F,
                                        const VerifierOptions &Opts) {
  VerifierReport Report;
  FunctionVerifier(F, Opts, Report).run();
  return Report;
}

VerifierReport pipeline::verifyProgram(Program &P,
                                       const VerifierOptions &Opts) {
  VerifierReport Report;
  for (const auto &F : P.getFunctions())
    FunctionVerifier(*F, Opts, Report).run();
  return Report;
}
