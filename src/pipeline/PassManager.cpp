#include "pipeline/PassManager.h"

#include "il/ILSerializer.h"
#include "pipeline/ILVerifier.h"
#include "pipeline/PassRegistry.h"
#include "support/CompileCache.h"

#include <chrono>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::pipeline;

PassManager::PassManager(PipelineOptions Options, PassManagerConfig Config)
    : Options(std::move(Options)), Config(std::move(Config)) {}

std::vector<std::string> PassManager::tokenizeSpec(const std::string &Spec) {
  std::vector<std::string> Out;
  std::string Token;
  auto Flush = [&] {
    // Trim surrounding whitespace.
    size_t B = Token.find_first_not_of(" \t");
    size_t E = Token.find_last_not_of(" \t");
    if (B != std::string::npos)
      Out.push_back(Token.substr(B, E - B + 1));
    Token.clear();
  };
  for (char C : Spec) {
    if (C == ',')
      Flush();
    else
      Token += C;
  }
  Flush();
  return Out;
}

bool PassManager::addPipeline(const std::string &Spec,
                              DiagnosticEngine &Diags) {
  // An entirely blank spec is the valid -O0 no-op pipeline.
  if (Spec.find_first_not_of(" \t") == std::string::npos)
    return true;

  PassRegistry &Reg = PassRegistry::instance();
  std::vector<std::unique_ptr<Pass>> Staged;

  // Walk comma-separated segments, keeping each segment's start offset so
  // rejections point at the offending column (a spec is one line; columns
  // are 1-based).
  size_t SegStart = 0;
  while (SegStart <= Spec.size()) {
    size_t Comma = Spec.find(',', SegStart);
    size_t SegEnd = (Comma == std::string::npos) ? Spec.size() : Comma;
    const std::string Raw = Spec.substr(SegStart, SegEnd - SegStart);

    size_t B = Raw.find_first_not_of(" \t");
    if (B == std::string::npos) {
      Diags.error(SourceLoc(1, static_cast<uint32_t>(SegStart) + 1),
                  "empty pass name in pipeline spec '" + Spec + "'");
      return false;
    }
    size_t E = Raw.find_last_not_of(" \t");
    const std::string Name = Raw.substr(B, E - B + 1);

    auto P = Reg.create(Name);
    if (!P) {
      Diags.error(SourceLoc(1, static_cast<uint32_t>(SegStart + B) + 1),
                  "unknown pass '" + Name +
                      "' in pipeline spec; known passes: " +
                      Reg.namesJoined());
      return false;
    }
    Staged.push_back(std::move(P));

    if (Comma == std::string::npos)
      break;
    SegStart = Comma + 1;
  }

  for (auto &P : Staged)
    Passes.push_back(std::move(P));
  return true;
}

void PassManager::addPass(std::unique_ptr<Pass> P) {
  Passes.push_back(std::move(P));
}

remarks::ILCounts PassManager::countFunction(const Function &F) {
  remarks::ILCounts C;
  C.Functions = 1;
  C.Symbols = F.getSymbols().size();
  forEachStmt(F.getBody(), [&C](const Stmt *S) {
    ++C.Stmts;
    switch (S->getKind()) {
    case Stmt::AssignKind: {
      ++C.Assigns;
      auto *A = static_cast<const AssignStmt *>(S);
      if (exprHasTriplet(A->getLHS()) || exprHasTriplet(A->getRHS()))
        ++C.VectorAssigns;
      break;
    }
    case Stmt::CallKind:
      ++C.Calls;
      break;
    case Stmt::WhileKind:
      ++C.WhileLoops;
      break;
    case Stmt::DoLoopKind:
      ++C.DoLoops;
      if (static_cast<const DoLoopStmt *>(S)->isParallel())
        ++C.ParallelLoops;
      break;
    default:
      break;
    }
  });
  return C;
}

namespace {

void addCounts(remarks::ILCounts &Acc, const remarks::ILCounts &C) {
  Acc.Functions += C.Functions;
  Acc.Stmts += C.Stmts;
  Acc.Assigns += C.Assigns;
  Acc.Calls += C.Calls;
  Acc.WhileLoops += C.WhileLoops;
  Acc.DoLoops += C.DoLoops;
  Acc.ParallelLoops += C.ParallelLoops;
  Acc.VectorAssigns += C.VectorAssigns;
  Acc.Symbols += C.Symbols;
}

/// Sums \p SG's counters into \p Acc (same counter names across
/// functions, so per-pass totals equal the whole-program numbers).
void mergeStats(remarks::StatGroup &Acc, const remarks::StatGroup &SG) {
  if (Acc.Pass.empty())
    Acc.Pass = SG.Pass;
  for (const auto &[Name, Value] : SG.Counters)
    Acc.set(Name, Acc.get(Name) + Value);
}

using Clock = std::chrono::steady_clock;

double millisSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

} // namespace

remarks::ILCounts PassManager::countIL(const Program &P) {
  remarks::ILCounts C;
  C.Symbols = P.getGlobals().size();
  for (const auto &F : P.getFunctions())
    addCounts(C, countFunction(*F));
  return C;
}

remarks::CompilationTelemetry
PassManager::run(Program &P, DiagnosticEngine &Diags,
                 remarks::RemarkCollector &Remarks, PipelineStats &Stats) {
  remarks::CompilationTelemetry Telemetry;
  const bool FunctionMode = Config.Mode == PipelineMode::FunctionAtATime;
  // Two result stores compose: the on-disk manifest (incremental rebuild
  // across process runs) and the daemon's hot cache (sharing across
  // concurrent requests).  Either one puts the segment loop into hashing
  // mode.
  const bool UseManifest = FunctionMode && !Config.CacheFile.empty();
  const bool UseHot = FunctionMode && Config.ResultCache != nullptr;
  const bool UseCache = UseManifest || UseHot;

  Analyses.setShared(Config.SharedAnalyses);

  CompileCache Cache;
  if (UseManifest)
    // A damaged manifest degrades to a cold cache (warning already
    // emitted, Cache left empty and dirty so the rewrite replaces it);
    // it never fails the compile.
    CompileCache::load(Config.CacheFile, Cache, Diags);

  const bool Sandboxed = Config.Sandbox.Enabled;
  PassSandbox SB(Config.Sandbox, Config.CacheConfig);

  PassContext Ctx{P, Diags, Options, Analyses, Remarks, Stats};

  // Split the pipeline into segments: each ModulePass alone, each maximal
  // run of FunctionPasses together.  In WholeProgram mode function
  // segments degenerate to pass-major execution below.
  std::vector<std::vector<Pass *>> Segments;
  auto isFunctionPass = [](const Pass &P) {
    return P.getKind() == Pass::FunctionPassKind;
  };
  for (const auto &PassPtr : Passes) {
    if (isFunctionPass(*PassPtr) && !Segments.empty() &&
        isFunctionPass(*Segments.back().front()))
      Segments.back().push_back(PassPtr.get());
    else
      Segments.push_back({PassPtr.get()});
  }

  bool Failed = false;
  unsigned FunctionSegmentOrdinal = 0;

  // Runs one pass whole-program (pass-major): a ModulePass natively, or a
  // FunctionPass iterated over every function (WholeProgram mode).
  auto runWholeProgram = [&](Pass &PassRef) {
    remarks::PassRecord Record;
    Record.Pass = PassRef.name();
    Record.Before = countIL(P);
    Record.PreservedUseDef =
        PassRef.preservedAnalyses().preserves(AnalysisKind::UseDef);

    Analyses.resetCounters();
    auto Start = Clock::now();
    if (PassRef.getKind() == Pass::ModulePassKind) {
      auto &MP = static_cast<ModulePass &>(PassRef);
      if (Sandboxed) {
        // A module pass may have mutated several functions before dying,
        // so there is no snapshot to roll back to.  The containment here
        // is weaker but still real: an escaped exception becomes a clean
        // compile failure instead of a process crash.
        const FaultSpec *Injected =
            Config.Sandbox.Faults ? Config.Sandbox.Faults->arm(MP.name(), "")
                                  : nullptr;
        try {
          if (Injected)
            throwInjectedFault(*Injected);
          Record.Stats = MP.run(Ctx);
        } catch (const std::exception &E) {
          Diags.error(SourceLoc(),
                      "module pass '" + MP.name() + "' failed: " +
                          std::string(E.what()) +
                          " (cross-function mutation cannot be rolled "
                          "back; compilation stopped)");
        } catch (...) {
          Diags.error(SourceLoc(),
                      "module pass '" + MP.name() +
                          "' failed with an unknown exception "
                          "(cross-function mutation cannot be rolled "
                          "back; compilation stopped)");
        }
      } else {
        Record.Stats = MP.run(Ctx);
      }
      Analyses.invalidate(MP.preservedAnalyses());
    } else {
      auto &FP = static_cast<FunctionPass &>(PassRef);
      // A contained fault swaps the function object in place, so iterate
      // a pointer snapshot, not the owning list.
      std::vector<Function *> Worklist;
      for (const auto &F : P.getFunctions())
        Worklist.push_back(F.get());
      for (Function *F : Worklist) {
        if (Sandboxed) {
          auto SR = SB.run(FP, *F, Ctx, Config.VerifyEach);
          mergeStats(Record.Stats, SR.Stats);
          Analyses.invalidate(*SR.F, FP.preservedAnalyses());
        } else {
          mergeStats(Record.Stats, FP.runOnFunction(*F, Ctx));
          Analyses.invalidate(*F, FP.preservedAnalyses());
        }
        if (Diags.hasErrors())
          break;
      }
    }
    Record.Millis = millisSince(Start);
    Record.UseDefBuilt = Analyses.buildCount();
    Record.UseDefReused = Analyses.reuseCount();
    Record.After = countIL(P);
    Telemetry.TotalMillis += Record.Millis;

    Failed = Diags.hasErrors();
    if (!Failed && Config.VerifyEach && PassRef.name() != "verify") {
      VerifierReport Report = verifyProgram(P);
      if (!Report.ok()) {
        for (const std::string &E : Report.Errors)
          Diags.error(SourceLoc(), "IL verifier failed after pass '" +
                                       PassRef.name() + "': " + E);
        Failed = true;
      } else {
        Record.Verified = true;
      }
    }

    Telemetry.Passes.push_back(std::move(Record));
    if (!Failed && Config.AfterPass)
      Config.AfterPass(PassRef, P);
  };

  // Runs one function-pass segment function-major, with the compile cache
  // short-circuiting functions whose optimized form is already known.
  auto runFunctionSegment = [&](const std::vector<Pass *> &Segment) {
    const unsigned Ordinal = FunctionSegmentOrdinal++;

    // The pipeline fingerprint folded into every content hash: the
    // passes this segment would run plus the configuration fingerprint.
    std::string SegmentSpec;
    for (const Pass *PassPtr : Segment) {
      if (!SegmentSpec.empty())
        SegmentSpec += ',';
      SegmentSpec += PassPtr->name();
    }

    // One record per pass; Before/After accumulate per-function counts,
    // and the global base (globals; function list) is added afterwards so
    // the sums equal the pass-major whole-program numbers.
    std::vector<remarks::PassRecord> Records(Segment.size());
    for (size_t I = 0; I < Segment.size(); ++I) {
      Records[I].Pass = Segment[I]->name();
      Records[I].PreservedUseDef =
          Segment[I]->preservedAnalyses().preserves(AnalysisKind::UseDef);
      Records[I].Verified = Config.VerifyEach;
    }

    // The function list may be swapped in place on cache hits but never
    // grows or reorders, so snapshot the raw pointers up front.
    std::vector<Function *> Worklist;
    for (const auto &F : P.getFunctions())
      Worklist.push_back(F.get());

    for (Function *F : Worklist) {
      // A contained fault rolls the function back by swapping in a fresh
      // object; Cur always names the live one.
      Function *Cur = F;
      remarks::FunctionRecord FR;
      FR.Function = F->getName();
      FR.Before = countFunction(*F);

      std::string InputText;
      std::string Key;
      std::string Hash;
      if (UseCache) {
        InputText = serializeFunction(*F);
        Hash = cacheHash(InputText + "\n" + Config.CacheConfig + "\n" +
                         SegmentSpec);
        FR.Hash = Hash;
        Key = F->getName() + "#" + std::to_string(Ordinal);
        // The IL-only hash keys the shared analysis pool: use-def chains
        // depend on the body alone, not on the pass spec or configuration,
        // so requests with different pipelines still share them.
        Analyses.expectFunction(*F, cacheHash(InputText));
      }

      // Swap-in of a previously optimized body (from either store).
      // Returns false when the payload does not deserialize — never the
      // case for hot-cache text, possible for a damaged manifest.
      auto restoreFromText = [&](const std::string &Text) {
        auto Start = Clock::now();
        Function *Restored = deserializeFunction(Text, P, Diags);
        if (!Restored)
          return false;
        Analyses.forget(*F);
        P.replaceFunction(F, Restored);
        FR.Millis = millisSince(Start);
        FR.After = countFunction(*Restored);
        FR.CacheHit = true;
        Telemetry.TotalMillis += FR.Millis;
        // The per-pass intermediate shapes of a cached function are
        // unknown; attribute its input to every Before and its
        // output to every After so segment totals stay exact.
        for (auto &R : Records) {
          addCounts(R.Before, FR.Before);
          addCounts(R.After, FR.After);
        }
        Telemetry.Functions.push_back(std::move(FR));
        return true;
      };

      // Single-flight admission to the hot cache: a Hit is another
      // request's finished body; Own obliges this thread to either
      // publish or abandon this hash.  The guard below turns every
      // non-publishing exit — verifier failure, contained fault, an
      // exception unwinding through run() — into an abandon, which
      // promotes one waiter to owner, so a dying request never wedges
      // the other clients queued on the same function.
      bool OwnsHot = false;
      if (UseHot) {
        std::string HotText;
        if (Config.ResultCache->acquire(Key, Hash, HotText) ==
            FunctionResultCache::Acquire::Hit) {
          if (restoreFromText(HotText))
            continue;
          Diags.note(SourceLoc(),
                     "ignoring unreadable hot-cache entry for '" +
                         F->getName() + "'");
        } else {
          OwnsHot = true;
        }
      }
      struct HotRelease {
        FunctionResultCache *RC;
        const std::string &Key;
        const std::string &Hash;
        bool &Owns;
        ~HotRelease() {
          if (Owns)
            RC->abandon(Key, Hash);
        }
      } Release{Config.ResultCache, Key, Hash, OwnsHot};

      if (UseManifest) {
        if (const auto *Entry = Cache.findFunction(Key, Hash)) {
          const std::string Text = Entry->Text;
          if (restoreFromText(Text)) {
            // Seed the owned hot slot from the manifest: later requests
            // hit in memory without touching disk.
            if (OwnsHot) {
              Config.ResultCache->publish(Key, Hash, Text);
              OwnsHot = false;
            }
            continue;
          }
          // A stale/undeserializable payload is not fatal: fall through
          // and recompile the function.
          Diags.note(SourceLoc(), "ignoring unreadable cache entry for '" +
                                      F->getName() + "'");
        }
      }

      bool FunctionFaulted = false;
      auto FuncStart = Clock::now();
      for (size_t I = 0; I < Segment.size(); ++I) {
        auto &FP = static_cast<FunctionPass &>(*Segment[I]);
        addCounts(Records[I].Before, countFunction(*Cur));

        Analyses.resetCounters();
        auto Start = Clock::now();
        if (Sandboxed) {
          auto SR = SB.run(FP, *Cur, Ctx, Config.VerifyEach);
          Cur = SR.F;
          mergeStats(Records[I].Stats, SR.Stats);
          FunctionFaulted |= SR.Faulted;
        } else {
          mergeStats(Records[I].Stats, FP.runOnFunction(*Cur, Ctx));
        }
        Records[I].Millis += millisSince(Start);
        Records[I].UseDefBuilt += Analyses.buildCount();
        Records[I].UseDefReused += Analyses.reuseCount();
        Analyses.invalidate(*Cur, FP.preservedAnalyses());

        addCounts(Records[I].After, countFunction(*Cur));

        Failed = Diags.hasErrors();
        if (!Failed && !Sandboxed && Config.VerifyEach) {
          VerifierReport Report = verifyFunction(*Cur);
          if (!Report.ok()) {
            for (const std::string &E : Report.Errors)
              Diags.error(SourceLoc(),
                          "IL verifier failed after pass '" + FP.name() +
                              "' on function '" + Cur->getName() +
                              "': " + E);
            Failed = true;
          }
        }
        if (Failed) {
          for (auto &R : Records)
            R.Verified = false;
          break;
        }
      }
      FR.Millis = millisSince(FuncStart);
      FR.After = countFunction(*Cur);
      Telemetry.Functions.push_back(std::move(FR));
      if (Failed)
        break;

      // A faulted function's output is the degraded (pass-skipped) form;
      // caching it would make the fault sticky across warm runs — and, in
      // the daemon, leak one request's injected fault into every other
      // client's byte stream.  Faulted owners abandon (via the guard),
      // promoting one waiter to recompute cleanly.
      if (UseCache && !FunctionFaulted) {
        std::string OutText = serializeFunction(*Cur);
        if (UseManifest)
          Cache.storeFunction(Key, Hash, OutText);
        if (OwnsHot) {
          Config.ResultCache->publish(Key, Hash, std::move(OutText));
          OwnsHot = false;
        }
      }
    }

    // Fold in the global base so Before/After match countIL of the
    // corresponding pass-major states.
    remarks::ILCounts GlobalBase;
    GlobalBase.Symbols = P.getGlobals().size();
    for (auto &R : Records) {
      addCounts(R.Before, GlobalBase);
      addCounts(R.After, GlobalBase);
      Telemetry.TotalMillis += R.Millis;
      Telemetry.Passes.push_back(std::move(R));
    }

    if (!Failed && Config.AfterPass)
      for (Pass *PassPtr : Segment)
        Config.AfterPass(*PassPtr, P);
  };

  for (const auto &Segment : Segments) {
    if (Failed)
      break;
    if (!FunctionMode || !isFunctionPass(*Segment.front())) {
      for (Pass *PassPtr : Segment) {
        runWholeProgram(*PassPtr);
        if (Failed)
          break;
      }
    } else {
      runFunctionSegment(Segment);
    }
  }

  // writeBack, not save: concurrent compiles sharing one manifest merge
  // their function entries instead of clobbering each other's.
  if (UseManifest && !Failed && Cache.dirty())
    Cache.writeBack(Config.CacheFile, Diags);

  for (const SandboxFault &F : SB.faults())
    Telemetry.Faults.push_back(
        {F.Pass, F.Function, F.Kind, F.Description, F.ReproFile});
  Telemetry.Remarks = Remarks.remarks();
  return Telemetry;
}
