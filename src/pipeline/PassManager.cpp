#include "pipeline/PassManager.h"

#include "pipeline/ILVerifier.h"
#include "pipeline/PassRegistry.h"

#include <chrono>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::pipeline;

PassManager::PassManager(PipelineOptions Options, PassManagerConfig Config)
    : Options(std::move(Options)), Config(std::move(Config)) {}

std::vector<std::string> PassManager::tokenizeSpec(const std::string &Spec) {
  std::vector<std::string> Out;
  std::string Token;
  auto Flush = [&] {
    // Trim surrounding whitespace.
    size_t B = Token.find_first_not_of(" \t");
    size_t E = Token.find_last_not_of(" \t");
    if (B != std::string::npos)
      Out.push_back(Token.substr(B, E - B + 1));
    Token.clear();
  };
  for (char C : Spec) {
    if (C == ',')
      Flush();
    else
      Token += C;
  }
  Flush();
  return Out;
}

bool PassManager::addPipeline(const std::string &Spec,
                              DiagnosticEngine &Diags) {
  PassRegistry &Reg = PassRegistry::instance();
  std::vector<std::unique_ptr<Pass>> Staged;
  for (const std::string &Name : tokenizeSpec(Spec)) {
    auto P = Reg.create(Name);
    if (!P) {
      Diags.error(SourceLoc(), "unknown pass '" + Name +
                                   "' in pipeline spec; known passes: " +
                                   Reg.namesJoined());
      return false;
    }
    Staged.push_back(std::move(P));
  }
  for (auto &P : Staged)
    Passes.push_back(std::move(P));
  return true;
}

void PassManager::addPass(std::unique_ptr<Pass> P) {
  Passes.push_back(std::move(P));
}

remarks::ILCounts PassManager::countIL(const Program &P) {
  remarks::ILCounts C;
  C.Functions = P.getFunctions().size();
  C.Symbols = P.getGlobals().size();
  for (const auto &F : P.getFunctions()) {
    C.Symbols += F->getSymbols().size();
    forEachStmt(F->getBody(), [&C](const Stmt *S) {
      ++C.Stmts;
      switch (S->getKind()) {
      case Stmt::AssignKind: {
        ++C.Assigns;
        auto *A = static_cast<const AssignStmt *>(S);
        if (exprHasTriplet(A->getLHS()) || exprHasTriplet(A->getRHS()))
          ++C.VectorAssigns;
        break;
      }
      case Stmt::CallKind:
        ++C.Calls;
        break;
      case Stmt::WhileKind:
        ++C.WhileLoops;
        break;
      case Stmt::DoLoopKind:
        ++C.DoLoops;
        if (static_cast<const DoLoopStmt *>(S)->isParallel())
          ++C.ParallelLoops;
        break;
      default:
        break;
      }
    });
  }
  return C;
}

remarks::CompilationTelemetry
PassManager::run(Program &P, DiagnosticEngine &Diags,
                 remarks::RemarkCollector &Remarks, PipelineStats &Stats) {
  remarks::CompilationTelemetry Telemetry;
  using Clock = std::chrono::steady_clock;

  PassContext Ctx{P, Diags, Options, Analyses, Remarks, Stats};
  for (const auto &Pass : Passes) {
    remarks::PassRecord Record;
    Record.Pass = Pass->name();
    Record.Before = countIL(P);
    Record.PreservedUseDef = Pass->preservesUseDef();

    Analyses.resetCounters();
    auto Start = Clock::now();
    Record.Stats = Pass->run(Ctx);
    Record.Millis =
        std::chrono::duration<double, std::milli>(Clock::now() - Start)
            .count();
    Record.UseDefBuilt = Analyses.buildCount();
    Record.UseDefReused = Analyses.reuseCount();

    if (!Pass->preservesUseDef())
      Analyses.invalidateAll();

    Record.After = countIL(P);
    Telemetry.TotalMillis += Record.Millis;

    bool Failed = Diags.hasErrors();
    if (!Failed && Config.VerifyEach && Pass->name() != "verify") {
      VerifierReport Report = verifyProgram(P);
      if (!Report.ok()) {
        for (const std::string &E : Report.Errors)
          Diags.error(SourceLoc(), "IL verifier failed after pass '" +
                                       Pass->name() + "': " + E);
        Failed = true;
      } else {
        Record.Verified = true;
      }
    }

    Telemetry.Passes.push_back(std::move(Record));
    if (Failed)
      break;
    if (Config.AfterPass)
      Config.AfterPass(*Pass, P);
  }

  Telemetry.Remarks = Remarks.remarks();
  return Telemetry;
}
