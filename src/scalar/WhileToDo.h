//===----------------------------------------------------------------------===//
///
/// \file
/// While→DO conversion (paper Section 5.2).
///
/// The C front end represents every for loop as a while loop; this pass
/// recovers Fortran-style DO loops so the vectorizer can reason about trip
/// counts.  Following the paper, conversion happens immediately after
/// use-def chains are built, the loop body is left untouched (the original
/// control variable keeps being updated inside; induction-variable
/// substitution and dead-code elimination clean it up later), and the
/// use-def chains are patched incrementally rather than rebuilt.
///
/// A while loop converts when:
///  - no branch enters the body and the body has no goto/label/return
///    (irregular flow defeats per-iteration reasoning);
///  - the condition has the form `i`, `i != 0`, or `i relop bound` with
///    `bound` invariant in the body;
///  - the control variable `i` is a non-volatile scalar whose net
///    per-iteration change is a known loop-invariant amount (detected by
///    linear symbolic evaluation, so the `temp = i; i = temp - s` shape
///    from the paper is recognized).
///
/// The result is a *normalized* DO loop `do temp_i = 0, trip-1, 1`, the
/// same shape the paper's Section 9 listing shows (`do fortran temp_i =
/// 0, n-1, 1`).
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SCALAR_WHILETODO_H
#define TCC_SCALAR_WHILETODO_H

#include "analysis/UseDef.h"
#include "il/IL.h"

namespace tcc {
namespace scalar {

struct WhileToDoStats {
  unsigned Attempted = 0;
  unsigned Converted = 0;
};

/// Converts convertible while loops in \p F to normalized DO loops.  When
/// \p UD is non-null, chains are patched incrementally for each converted
/// loop (paper Section 5.2).
WhileToDoStats convertWhileLoops(il::Function &F,
                                 analysis::UseDefChains *UD = nullptr);

} // namespace scalar
} // namespace tcc

#endif // TCC_SCALAR_WHILETODO_H
