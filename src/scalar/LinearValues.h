//===----------------------------------------------------------------------===//
///
/// \file
/// Linear symbolic evaluation of loop bodies.
///
/// Both while→DO conversion (paper Section 5.2) and induction-variable
/// substitution (Section 5.3) need to know how scalars evolve across one
/// iteration of a loop body: which variables advance by a loop-invariant
/// amount each trip (induction variables), what the value of a scalar is at
/// a given statement relative to iteration entry, and which variables are
/// untouched (invariant).
///
/// Values are tracked as linear forms `c0 + Σ ci · Entry(si)` over the
/// values scalars had on entry to the iteration, plus address-constant
/// terms `&array` (the paper notes the vectorizer "is safe in propagating
/// address constants").
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SCALAR_LINEARVALUES_H
#define TCC_SCALAR_LINEARVALUES_H

#include "il/IL.h"

#include <map>
#include <set>
#include <vector>

namespace tcc {
namespace scalar {

/// One linear term: the iteration-entry value of a scalar symbol, or the
/// (invariant) byte address of a symbol.
struct LinTerm {
  il::Symbol *Sym = nullptr;
  bool IsAddr = false;

  bool operator<(const LinTerm &RHS) const {
    // Order by stable symbol id, not pointer: Coeffs iteration order is
    // visible in materialized expressions (linToExpr).
    if (Sym != RHS.Sym)
      return il::SymbolOrder()(Sym, RHS.Sym);
    return IsAddr < RHS.IsAddr;
  }
  bool operator==(const LinTerm &RHS) const {
    return Sym == RHS.Sym && IsAddr == RHS.IsAddr;
  }
};

/// A linear form over iteration-entry values, or Unknown.
struct LinExpr {
  bool Known = false;
  int64_t C0 = 0;
  std::map<LinTerm, int64_t> Coeffs;

  static LinExpr unknown() { return LinExpr(); }
  static LinExpr constant(int64_t C) {
    LinExpr E;
    E.Known = true;
    E.C0 = C;
    return E;
  }
  static LinExpr entry(il::Symbol *Sym) {
    LinExpr E;
    E.Known = true;
    E.Coeffs[{Sym, false}] = 1;
    return E;
  }
  static LinExpr addr(il::Symbol *Sym) {
    LinExpr E;
    E.Known = true;
    E.Coeffs[{Sym, true}] = 1;
    return E;
  }

  LinExpr add(const LinExpr &RHS) const;
  LinExpr sub(const LinExpr &RHS) const;
  LinExpr mulConst(int64_t C) const;
  LinExpr neg() const { return mulConst(-1); }

  bool isConstant() const { return Known && Coeffs.empty(); }
  bool isZero() const { return isConstant() && C0 == 0; }
  /// True if this is exactly `Entry(Sym)`.
  bool isEntryOf(il::Symbol *Sym) const;
  /// The coefficient on Entry(Sym) (0 if absent).
  int64_t coeffOfEntry(il::Symbol *Sym) const;
};

/// Materializes a linear form as an IL expression of type \p Ty.  Entry
/// terms become VarRefs of their symbols (so this is only meaningful where
/// those symbols still hold their entry values); address terms become
/// `&sym` (decayed to the element pointer for arrays).
il::Expr *linToExpr(il::Function &F, const LinExpr &L, const Type *Ty);

/// Linear symbolic execution over the top-level statements of a block.
class BodyLinearState {
public:
  BodyLinearState(il::Function &F, il::Block &Body);

  /// True if the body contains gotos, labels, or returns anywhere — the
  /// loop may exit or jump mid-iteration, so per-iteration reasoning is
  /// unsafe.
  bool hasIrregularFlow() const { return IrregularFlow; }

  /// Value of \p Sym on entry to top-level statement \p I (0-based), as a
  /// linear form over iteration-entry values.
  LinExpr valueBefore(size_t I, il::Symbol *Sym) const;

  /// Value of \p Sym after the whole body.
  LinExpr valueAtEnd(il::Symbol *Sym) const;

  /// Net per-iteration change of \p Sym, valid only when every symbol it
  /// mentions is invariant in the body: returns Unknown otherwise.  A
  /// result of Known means `Sym_next = Sym + delta` with delta evaluable at
  /// loop entry.
  LinExpr deltaOf(il::Symbol *Sym) const;

  /// Scalars assigned anywhere in the body (any nesting).
  const std::set<il::Symbol *> &touched() const { return Touched; }

  /// True if \p Sym is never assigned in the body.
  bool isInvariant(il::Symbol *Sym) const { return !Touched.count(Sym); }

  /// Evaluates an arbitrary expression in the environment holding before
  /// top-level statement \p I.
  LinExpr evalAt(size_t I, il::Expr *E) const;

  size_t numTopLevelStmts() const { return Snapshots.size(); }

private:
  using Env = std::map<il::Symbol *, LinExpr>;

  LinExpr evalExpr(const Env &E, il::Expr *Expression) const;
  LinExpr lookup(const Env &E, il::Symbol *Sym) const;
  void invalidateClobbered(Env &E) const;

  il::Function &F;
  std::vector<Env> Snapshots; ///< Environment before each top-level stmt.
  Env Final;                  ///< Environment after the body.
  std::set<il::Symbol *> Touched;
  std::set<il::Symbol *> Clobberable; ///< Address-taken scalars + globals.
  bool IrregularFlow = false;
};

} // namespace scalar
} // namespace tcc

#endif // TCC_SCALAR_LINEARVALUES_H
