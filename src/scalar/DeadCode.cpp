#include "scalar/DeadCode.h"

#include "analysis/UseDef.h"

#include <set>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::scalar;

namespace {

class Eliminator {
public:
  explicit Eliminator(Function &F) : F(F) {}

  DCEStats run() {
    bool Changed = true;
    while (Changed) {
      Changed = sweepOnce();
    }
    removeUnusedLabels();
    F.removeUnusedSymbols();
    return Stats;
  }

private:
  bool isRootLive(const Stmt *S, const std::set<Symbol *> &AddrTaken) {
    switch (S->getKind()) {
    case Stmt::CallKind:
    case Stmt::ReturnKind:
    case Stmt::GotoKind:
    case Stmt::LabelKind:
      return true;
    case Stmt::AssignKind: {
      const auto *A = static_cast<const AssignStmt *>(S);
      // Stores to memory are observable.
      if (A->getLHS()->getKind() != Expr::VarRefKind)
        return true;
      Symbol *Sym = static_cast<VarRefExpr *>(A->getLHS())->getSymbol();
      if (Sym->isVolatile() || Sym->isGlobal() || AddrTaken.count(Sym))
        return true;
      // Reading volatile storage is itself an effect.
      if (exprReadsVolatile(A->getRHS()))
        return true;
      return false;
    }
    case Stmt::IfKind:
      return exprReadsVolatile(static_cast<const IfStmt *>(S)->getCond());
    case Stmt::WhileKind:
      // A while loop is never removed by the sweep (it may spin on
      // purpose), so its condition is evaluated at run time no matter
      // what happens to the body: the defs reaching it — including the
      // increments *inside* the body, via the back edge — must stay
      // live, or a terminating loop silently becomes an infinite one
      // once its body is emptied.
      return true;
    case Stmt::DoLoopKind:
      return false;
    }
    return true;
  }

  bool sweepOnce() {
    analysis::UseDefChains UD(F);
    std::set<Symbol *> AddrTaken = analysis::computeAddressTakenScalars(F);

    // Mark.
    std::set<const Stmt *> Live;
    std::vector<const Stmt *> Worklist;
    forEachStmt(F.getBody(), [&](Stmt *S) {
      if (isRootLive(S, AddrTaken)) {
        Live.insert(S);
        Worklist.push_back(S);
      }
    });
    while (!Worklist.empty()) {
      const Stmt *S = Worklist.back();
      Worklist.pop_back();
      for (Symbol *Sym : analysis::usedScalars(S)) {
        for (const Stmt *Def : UD.defsReaching(S, Sym)) {
          if (Def && Live.insert(Def).second)
            Worklist.push_back(Def);
        }
      }
      // A live statement inside a loop needs the loop's bounds/condition:
      // handled structurally in the sweep (the loop statement survives if
      // it contains live statements), but the *bound* uses of a DO header
      // must mark their defs too.  Loop headers whose bodies contain live
      // code are added below during the structural check, which re-runs
      // the chain marking via this worklist when first marked.
    }
    // Structural closure: a loop/if containing a live statement is live,
    // and its condition's reaching defs become live.  Iterate to fixpoint.
    bool Grew = true;
    while (Grew) {
      Grew = false;
      forEachStmt(F.getBody(), [&](Stmt *S) {
        if (Live.count(S))
          return;
        bool ContainsLive = false;
        auto CheckBlock = [&](const Block &B) {
          forEachStmt(B, [&](const Stmt *Sub) {
            if (Live.count(Sub))
              ContainsLive = true;
          });
        };
        switch (S->getKind()) {
        case Stmt::IfKind: {
          auto *I = static_cast<IfStmt *>(S);
          CheckBlock(I->getThen());
          CheckBlock(I->getElse());
          break;
        }
        case Stmt::WhileKind:
          CheckBlock(static_cast<WhileStmt *>(S)->getBody());
          break;
        case Stmt::DoLoopKind:
          CheckBlock(static_cast<DoLoopStmt *>(S)->getBody());
          break;
        default:
          return;
        }
        if (!ContainsLive)
          return;
        Live.insert(S);
        Grew = true;
        // Mark the defs its condition/bounds use.
        std::vector<const Stmt *> Inner{S};
        while (!Inner.empty()) {
          const Stmt *Cur = Inner.back();
          Inner.pop_back();
          for (Symbol *Sym : analysis::usedScalars(Cur))
            for (const Stmt *Def : UD.defsReaching(Cur, Sym))
              if (Def && Live.insert(Def).second)
                Inner.push_back(Def);
        }
      });
    }

    // Sweep.
    return sweepBlock(F.getBody(), Live, UD);
  }

  bool sweepBlock(Block &B, const std::set<const Stmt *> &Live,
                  analysis::UseDefChains &UD) {
    bool Changed = false;
    for (size_t I = 0; I < B.Stmts.size();) {
      Stmt *S = B.Stmts[I];
      switch (S->getKind()) {
      case Stmt::AssignKind:
        if (!Live.count(S)) {
          B.Stmts.erase(B.Stmts.begin() + static_cast<long>(I));
          ++Stats.AssignsRemoved;
          Changed = true;
          continue;
        }
        break;
      case Stmt::IfKind: {
        auto *If = static_cast<IfStmt *>(S);
        Changed |= sweepBlock(If->getThen(), Live, UD);
        Changed |= sweepBlock(If->getElse(), Live, UD);
        if (If->getThen().empty() && If->getElse().empty() &&
            !exprReadsVolatile(If->getCond())) {
          B.Stmts.erase(B.Stmts.begin() + static_cast<long>(I));
          ++Stats.EmptyControlRemoved;
          Changed = true;
          continue;
        }
        break;
      }
      case Stmt::WhileKind: {
        auto *W = static_cast<WhileStmt *>(S);
        Changed |= sweepBlock(W->getBody(), Live, UD);
        // An empty while loop cannot be removed in general (it may spin on
        // purpose); constant propagation removes the provably zero-trip
        // ones.
        break;
      }
      case Stmt::DoLoopKind: {
        auto *D = static_cast<DoLoopStmt *>(S);
        Changed |= sweepBlock(D->getBody(), Live, UD);
        if (D->getBody().empty()) {
          // A DO loop has a known finite trip; removable when its index is
          // dead afterwards.
          if (UD.usesOf(D).empty()) {
            B.Stmts.erase(B.Stmts.begin() + static_cast<long>(I));
            ++Stats.EmptyControlRemoved;
            Changed = true;
            continue;
          }
        }
        break;
      }
      default:
        break;
      }
      ++I;
    }
    return Changed;
  }

  void removeUnusedLabels() {
    std::set<std::string> Targets;
    forEachStmt(F.getBody(), [&Targets](Stmt *S) {
      if (S->getKind() == Stmt::GotoKind)
        Targets.insert(static_cast<GotoStmt *>(S)->getTarget());
    });
    std::function<void(Block &)> Sweep = [&](Block &B) {
      for (size_t I = 0; I < B.Stmts.size();) {
        Stmt *S = B.Stmts[I];
        if (S->getKind() == Stmt::LabelKind &&
            !Targets.count(static_cast<LabelStmt *>(S)->getName())) {
          B.Stmts.erase(B.Stmts.begin() + static_cast<long>(I));
          ++Stats.LabelsRemoved;
          continue;
        }
        switch (S->getKind()) {
        case Stmt::IfKind: {
          auto *If = static_cast<IfStmt *>(S);
          Sweep(If->getThen());
          Sweep(If->getElse());
          break;
        }
        case Stmt::WhileKind:
          Sweep(static_cast<WhileStmt *>(S)->getBody());
          break;
        case Stmt::DoLoopKind:
          Sweep(static_cast<DoLoopStmt *>(S)->getBody());
          break;
        default:
          break;
        }
        ++I;
      }
    };
    Sweep(F.getBody());
  }

  Function &F;
  DCEStats Stats;
};

} // namespace

DCEStats scalar::eliminateDeadCode(Function &F) { return Eliminator(F).run(); }
