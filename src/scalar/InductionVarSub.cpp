#include "scalar/InductionVarSub.h"

#include "analysis/UseDef.h"
#include "scalar/Fold.h"
#include "scalar/LinearValues.h"

#include <algorithm>
#include <map>
#include <set>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::scalar;

namespace {

/// Replaces every *use* of \p Sym in \p S (rvalue positions, including
/// address computations of stores, and nested statements) with a fresh
/// expression produced by \p Make.  The LHS of a direct assignment to
/// \p Sym is a definition and is left alone.  Returns the number of uses
/// replaced.
unsigned replaceUses(Function &F, Stmt *S, Symbol *Sym,
                     const std::function<Expr *()> &Make) {
  unsigned Count = 0;
  auto ReplaceInSlot = [&](Expr *&Slot) {
    forEachValueUseSlot(Slot, [&](Expr *&Sub) {
      if (static_cast<VarRefExpr *>(Sub)->getSymbol() == Sym) {
        Sub = Make();
        ++Count;
      }
    });
  };

  std::function<void(Stmt *)> Visit = [&](Stmt *Cur) {
    if (Cur->getKind() == Stmt::AssignKind) {
      auto *A = static_cast<AssignStmt *>(Cur);
      // Direct definition: skip the top-level LHS VarRef, but replace uses
      // inside a Deref/Index lvalue.
      if (A->getLHS()->getKind() != Expr::VarRefKind)
        ReplaceInSlot(A->lhsSlot());
      ReplaceInSlot(A->rhsSlot());
      return;
    }
    forEachExprSlot(Cur, ReplaceInSlot);
    switch (Cur->getKind()) {
    case Stmt::IfKind: {
      auto *I = static_cast<IfStmt *>(Cur);
      for (Stmt *Sub : I->getThen().Stmts)
        Visit(Sub);
      for (Stmt *Sub : I->getElse().Stmts)
        Visit(Sub);
      break;
    }
    case Stmt::WhileKind:
      for (Stmt *Sub : static_cast<WhileStmt *>(Cur)->getBody().Stmts)
        Visit(Sub);
      break;
    case Stmt::DoLoopKind:
      for (Stmt *Sub : static_cast<DoLoopStmt *>(Cur)->getBody().Stmts)
        Visit(Sub);
      break;
    default:
      break;
    }
  };
  Visit(S);
  return Count;
}

/// True if \p S (including nested statements) uses the value of \p Sym.
bool usesSymbol(const Stmt *S, Symbol *Sym) {
  bool Found = false;
  auto Check = [&](const Stmt *Cur) {
    for (Symbol *Used : analysis::usedScalars(Cur))
      if (Used == Sym)
        Found = true;
  };
  Check(S);
  switch (S->getKind()) {
  case Stmt::IfKind: {
    const auto *I = static_cast<const IfStmt *>(S);
    forEachStmt(I->getThen(), Check);
    forEachStmt(I->getElse(), Check);
    break;
  }
  case Stmt::WhileKind:
    forEachStmt(static_cast<const WhileStmt *>(S)->getBody(), Check);
    break;
  case Stmt::DoLoopKind:
    forEachStmt(static_cast<const DoLoopStmt *>(S)->getBody(), Check);
    break;
  default:
    break;
  }
  return Found;
}

/// True if \p S (including nested statements) may define \p Sym:
/// a strong def, or a clobber via call / pointer store when \p Sym is in
/// \p Clobberable.
bool definesSymbol(const Stmt *S, Symbol *Sym,
                   const std::set<Symbol *> &Clobberable) {
  bool Found = false;
  auto Check = [&](const Stmt *Cur) {
    for (Symbol *Def : analysis::strongDefs(Cur))
      if (Def == Sym)
        Found = true;
    if (!Clobberable.count(Sym))
      return;
    if (Cur->getKind() == Stmt::CallKind)
      Found = true;
    if (Cur->getKind() == Stmt::AssignKind &&
        static_cast<const AssignStmt *>(Cur)->getLHS()->getKind() !=
            Expr::VarRefKind)
      Found = true;
  };
  Check(S);
  switch (S->getKind()) {
  case Stmt::IfKind: {
    const auto *I = static_cast<const IfStmt *>(S);
    forEachStmt(I->getThen(), Check);
    forEachStmt(I->getElse(), Check);
    break;
  }
  case Stmt::WhileKind:
    forEachStmt(static_cast<const WhileStmt *>(S)->getBody(), Check);
    break;
  case Stmt::DoLoopKind:
    forEachStmt(static_cast<const DoLoopStmt *>(S)->getBody(), Check);
    break;
  default:
    break;
  }
  return Found;
}

class LoopSubstituter {
public:
  LoopSubstituter(Function &F, DoLoopStmt *D, Block &Parent,
                  IVSubStats &Stats, const IVSubOptions &Opts)
      : F(F), D(D), Parent(Parent), Stats(Stats), Opts(Opts),
        Clobberable(analysis::computeAddressTakenScalars(F)) {
    for (const auto &G : F.getProgram().getGlobals())
      if (G->getType()->isScalar())
        Clobberable.insert(G.get());
    for (const auto &S : F.getSymbols())
      if (S->getStorage() == StorageKind::Static &&
          S->getType()->isScalar())
        Clobberable.insert(S.get());
  }

  void run() {
    if (!isNormalized())
      return;
    ++Stats.LoopsProcessed;
    for (unsigned Pass = 0; Pass < Opts.MaxPassesPerLoop; ++Pass) {
      ++Stats.Passes;
      bool Changed = forwardSubstituteSweep();
      Changed |= rewriteFamilies();
      if (!Changed)
        break;
    }
  }

private:
  Block &body() { return D->getBody(); }

  bool isNormalized() const {
    auto IsConst = [](Expr *E, int64_t V) {
      return E->getKind() == Expr::ConstIntKind &&
             static_cast<ConstIntExpr *>(E)->getValue() == V;
    };
    return IsConst(D->getInit(), 0) && IsConst(D->getStep(), 1);
  }

  /// Is \p S a candidate for forward substitution: `t = E` with t a plain
  /// non-volatile local/temp scalar and E pure and memory-free?
  bool isCandidate(Stmt *S, Symbol *&T, Expr *&E) {
    if (S->getKind() != Stmt::AssignKind)
      return false;
    auto *A = static_cast<AssignStmt *>(S);
    if (A->getLHS()->getKind() != Expr::VarRefKind)
      return false;
    T = static_cast<VarRefExpr *>(A->getLHS())->getSymbol();
    if (T->isVolatile() || !T->getType()->isScalar())
      return false;
    if (T->getStorage() != StorageKind::Temp &&
        T->getStorage() != StorageKind::Local)
      return false;
    if (Clobberable.count(T))
      return false;
    E = A->getRHS();
    if (exprTouchesMemory(E) || exprReadsVolatile(E) || exprHasTriplet(E))
      return false;
    return true;
  }

  /// One in-order forward-substitution sweep (paper Section 5.3).
  bool forwardSubstituteSweep() {
    bool Changed = false;
    for (size_t I = 0; I < body().Stmts.size(); ++I)
      Changed |= trySubstituteFrom(I);
    return Changed;
  }

  /// Attempts to substitute the candidate at position \p I forward into
  /// later uses.  Records blocking when the only obstacle is a later
  /// redefinition of a variable the candidate's RHS uses.
  bool trySubstituteFrom(size_t I) {
    Symbol *T;
    Expr *E;
    Stmt *S = body().Stmts[I];
    if (!isCandidate(S, T, E))
      return false;

    std::vector<Symbol *> RhsVars;
    {
      std::vector<VarRefExpr *> Refs;
      collectVarRefs(E, Refs);
      for (VarRefExpr *R : Refs)
        if (std::find(RhsVars.begin(), RhsVars.end(), R->getSymbol()) ==
            RhsVars.end())
          RhsVars.push_back(R->getSymbol());
    }

    bool Changed = false;
    for (size_t J = I + 1; J < body().Stmts.size(); ++J) {
      Stmt *U = body().Stmts[J];
      // A redefinition of T ends this candidate's reach.  (The use of T on
      // U's own RHS still refers to our definition, so check uses first.)
      bool UsesT = usesSymbol(U, T);
      if (UsesT) {
        // Is some RHS variable redefined strictly between I and J?
        Stmt *Blocker = nullptr;
        for (size_t K = I + 1; K < J && !Blocker; ++K)
          for (Symbol *V : RhsVars)
            if (definesSymbol(body().Stmts[K], V, Clobberable)) {
              Blocker = body().Stmts[K];
              break;
            }
        if (Blocker) {
          std::vector<Stmt *> &Q = Blocked[Blocker];
          if (std::find(Q.begin(), Q.end(), S) == Q.end())
            Q.push_back(S);
          ++Stats.Blocked;
          break;
        }
        // Do not substitute into nested bodies unless T is not redefined
        // inside (value at region entry holds throughout).
        if (U->getKind() == Stmt::IfKind || U->getKind() == Stmt::WhileKind ||
            U->getKind() == Stmt::DoLoopKind) {
          if (definesSymbol(U, T, Clobberable))
            break;
        }
        unsigned N =
            replaceUses(F, U, T, [&]() { return F.cloneExpr(E); });
        if (N) {
          Stats.Substitutions += N;
          Changed = true;
        }
      }
      if (definesSymbol(U, T, Clobberable))
        break;
    }
    return Changed;
  }

  /// A use of a family member and its closed form.
  struct ClosedForm {
    LinExpr Base; ///< Over invariants / family pre-values / addresses.
    LinExpr Coef; ///< Coefficient of the loop index.
  };

  /// Detects the IV family and rewrites every finalizable member's uses
  /// into closed form, deleting the in-loop updates and appending final
  /// values after the loop.  Returns true if anything changed.
  bool rewriteFamilies() {
    BodyLinearState BLS(F, body());
    if (BLS.hasIrregularFlow())
      return false;

    // Family detection.  Symbol-keyed containers here are iterated when
    // emitting final-value stores, so order by stable id, not pointer.
    std::map<Symbol *, LinExpr, SymbolOrder> Family;
    for (Symbol *V : BLS.touched()) {
      if (V == D->getIndexVar() || V->isVolatile())
        continue;
      if (!V->getType()->isInteger() && !V->getType()->isPointer())
        continue;
      if (V->getStorage() == StorageKind::Global ||
          V->getStorage() == StorageKind::Static)
        continue;
      if (Clobberable.count(V))
        continue;
      LinExpr Delta = BLS.deltaOf(V);
      if (!Delta.Known || Delta.isZero())
        continue;
      // The delta must be the same every iteration: a term in the loop's
      // own index variable means the increment varies per trip (e.g. the
      // accumulator of `s += n` where n is itself an induction variable).
      if (Delta.coeffOfEntry(D->getIndexVar()) != 0)
        continue;
      Family[V] = Delta;
    }
    if (Family.empty())
      return false;

    // Build a rewrite plan per member; a member is viable when every use
    // of it in the body has a closed form over invariants and family
    // members.
    struct MemberPlan {
      bool Viable = true;
      /// (top-level index, closed form) for each use site; uses are
      /// re-found at application time.
      std::vector<std::pair<size_t, ClosedForm>> Uses;
      std::set<Symbol *> FamilyRefs; ///< Other members the forms mention.
    };
    std::map<Symbol *, MemberPlan, SymbolOrder> Plans;

    for (auto &[V, Delta] : Family) {
      MemberPlan &Plan = Plans[V];
      for (size_t I = 0; I < body().Stmts.size() && Plan.Viable; ++I) {
        Stmt *S = body().Stmts[I];
        bool IsOwnUpdate =
            S->getKind() == Stmt::AssignKind &&
            static_cast<AssignStmt *>(S)->getLHS()->getKind() ==
                Expr::VarRefKind &&
            static_cast<VarRefExpr *>(
                static_cast<AssignStmt *>(S)->getLHS())
                    ->getSymbol() == V;
        // Count uses of V in this statement (updates get deleted whole,
        // so their internal uses don't need rewriting).
        if (IsOwnUpdate)
          continue;
        if (!usesSymbol(S, V))
          continue;
        // Uses inside nested regions require V to be stable there.
        if ((S->getKind() == Stmt::IfKind ||
             S->getKind() == Stmt::WhileKind ||
             S->getKind() == Stmt::DoLoopKind) &&
            definesSymbol(S, V, Clobberable)) {
          Plan.Viable = false;
          break;
        }
        LinExpr Val = BLS.valueBefore(I, V);
        ClosedForm CF;
        if (!closeOver(BLS, Val, Family, CF, Plan.FamilyRefs)) {
          Plan.Viable = false;
          break;
        }
        Plan.Uses.push_back({I, CF});
      }
    }

    // Fixpoint: a member is finalizable only if the members its forms
    // reference are finalizable too (their updates get deleted as well,
    // making the pre-value references valid).
    std::set<Symbol *, SymbolOrder> Finalizable;
    for (auto &[V, Plan] : Plans)
      if (Plan.Viable)
        Finalizable.insert(V);
    bool Shrunk = true;
    while (Shrunk) {
      Shrunk = false;
      for (auto It = Finalizable.begin(); It != Finalizable.end();) {
        const MemberPlan &Plan = Plans[*It];
        bool Ok = true;
        for (Symbol *Ref : Plan.FamilyRefs)
          if (!Finalizable.count(Ref))
            Ok = false;
        if (!Ok) {
          It = Finalizable.erase(It);
          Shrunk = true;
        } else {
          ++It;
        }
      }
    }
    if (Finalizable.empty())
      return false;

    // Apply: rewrite uses, delete updates, emit final values.
    TypeContext &Types = F.getProgram().getTypes();
    const Type *IntTy = Types.getIntType();
    std::vector<Stmt *> Deleted;

    for (Symbol *V : Finalizable) {
      MemberPlan &Plan = Plans[V];
      for (auto &[I, CF] : Plan.Uses) {
        Stmt *S = body().Stmts[I];
        ClosedForm &Form = CF;
        unsigned N = replaceUses(F, S, V, [&]() {
          return materializeClosed(Form, V->getType());
        });
        Stats.UsesRewritten += N;
        foldStmt(S);
      }
    }
    // Delete updates (after all rewrites so positions stay valid).
    for (Symbol *V : Finalizable) {
      auto &Stmts = body().Stmts;
      for (size_t I = 0; I < Stmts.size();) {
        Stmt *S = Stmts[I];
        if (S->getKind() == Stmt::AssignKind &&
            static_cast<AssignStmt *>(S)->getLHS()->getKind() ==
                Expr::VarRefKind &&
            static_cast<VarRefExpr *>(
                static_cast<AssignStmt *>(S)->getLHS())
                    ->getSymbol() == V) {
          Deleted.push_back(S);
          Stmts.erase(Stmts.begin() + static_cast<long>(I));
        } else {
          ++I;
        }
      }
    }
    // Final values after the loop: v = v + delta * trip, with
    // trip = max(0, Limit + 1) for the normalized loop.
    size_t LoopPos = findLoopInParent();
    Expr *Trip = F.makeBinary(
        OpCode::Max, F.makeIntConst(IntTy, 0),
        F.makeBinary(OpCode::Add, F.cloneExpr(D->getLimit()),
                     F.makeIntConst(IntTy, 1), IntTy),
        IntTy);
    Trip = foldExpr(F, Trip);
    size_t InsertAt = LoopPos + 1;
    for (Symbol *V : Finalizable) {
      Expr *DeltaE = linToExpr(F, Family[V], IntTy);
      Expr *Total = foldExpr(
          F, F.makeBinary(OpCode::Mul, DeltaE, F.cloneExpr(Trip), IntTy));
      Expr *NewVal = F.makeBinary(OpCode::Add, F.makeVarRef(V), Total,
                                  V->getType());
      Parent.Stmts.insert(Parent.Stmts.begin() + static_cast<long>(InsertAt++),
                          F.create<AssignStmt>(D->getLoc(),
                                               F.makeVarRef(V), NewVal));
    }
    Stats.FamilyMembers += static_cast<unsigned>(Finalizable.size());

    // Backtracking: re-examine statements that were blocked by a deleted
    // update (the paper's heuristic).
    if (Opts.EnableBacktracking) {
      for (Stmt *B : Deleted) {
        auto It = Blocked.find(B);
        if (It == Blocked.end())
          continue;
        for (Stmt *S : It->second) {
          auto Pos = std::find(body().Stmts.begin(), body().Stmts.end(), S);
          if (Pos == body().Stmts.end())
            continue;
          ++Stats.Backtracks;
          trySubstituteFrom(
              static_cast<size_t>(Pos - body().Stmts.begin()));
        }
        Blocked.erase(It);
      }
    }
    return true;
  }

  /// Expands an entry-value linear form into Base + Coef·index by
  /// expanding family members via their deltas.  Fails when the form
  /// mentions a non-invariant, non-family symbol.
  bool closeOver(const BodyLinearState &BLS, const LinExpr &Val,
                 const std::map<Symbol *, LinExpr, SymbolOrder> &Family,
                 ClosedForm &Out, std::set<Symbol *> &FamilyRefs) {
    if (!Val.Known)
      return false;
    Out.Base = LinExpr::constant(Val.C0);
    Out.Coef = LinExpr::constant(0);
    for (const auto &[Term, Coeff] : Val.Coeffs) {
      if (Term.IsAddr) {
        LinExpr T = LinExpr::addr(Term.Sym).mulConst(Coeff);
        Out.Base = Out.Base.add(T);
        continue;
      }
      auto FamIt = Family.find(Term.Sym);
      if (FamIt != Family.end()) {
        // Entry_k(sym) = sym + k*delta.
        Out.Base = Out.Base.add(LinExpr::entry(Term.Sym).mulConst(Coeff));
        Out.Coef = Out.Coef.add(FamIt->second.mulConst(Coeff));
        FamilyRefs.insert(Term.Sym);
        continue;
      }
      if (Term.Sym == D->getIndexVar()) {
        // The index itself: contributes Coeff to Coef (index advances by
        // one per iteration under normalization) with base 0.
        Out.Coef = Out.Coef.add(LinExpr::constant(Coeff));
        continue;
      }
      // Must be invariant.
      if (BLS.isInvariant(Term.Sym)) {
        Out.Base = Out.Base.add(LinExpr::entry(Term.Sym).mulConst(Coeff));
        continue;
      }
      return false;
    }
    return true;
  }

  Expr *materializeClosed(const ClosedForm &CF, const Type *UseTy) {
    const Type *IntTy = F.getProgram().getTypes().getIntType();
    Expr *Base = linToExpr(F, CF.Base, UseTy);
    if (CF.Coef.isZero())
      return foldExpr(F, Base);
    Expr *Coef = linToExpr(F, CF.Coef, IntTy);
    Expr *Term = F.makeBinary(OpCode::Mul, Coef,
                              F.makeVarRef(D->getIndexVar()), IntTy);
    return foldExpr(F, F.makeBinary(OpCode::Add, Base, Term, UseTy));
  }

  void foldStmt(Stmt *S) {
    forEachExprSlot(S, [this](Expr *&Slot) { Slot = foldExpr(F, Slot); });
  }

  size_t findLoopInParent() const {
    for (size_t I = 0; I < Parent.Stmts.size(); ++I)
      if (Parent.Stmts[I] == D)
        return I;
    assert(false && "loop not found in its parent block");
    return 0;
  }

  Function &F;
  DoLoopStmt *D;
  Block &Parent;
  IVSubStats &Stats;
  const IVSubOptions &Opts;
  std::set<Symbol *> Clobberable;
  /// Blocked statements per blocker, in discovery order (a set of Stmt*
  /// would retry them in address order, which is not deterministic).
  std::map<Stmt *, std::vector<Stmt *>> Blocked;
};

void visitLoops(Function &F, Block &B, IVSubStats &Stats,
                const IVSubOptions &Opts) {
  for (Stmt *S : std::vector<Stmt *>(B.Stmts)) {
    switch (S->getKind()) {
    case Stmt::IfKind: {
      auto *I = static_cast<IfStmt *>(S);
      visitLoops(F, I->getThen(), Stats, Opts);
      visitLoops(F, I->getElse(), Stats, Opts);
      break;
    }
    case Stmt::WhileKind:
      visitLoops(F, static_cast<WhileStmt *>(S)->getBody(), Stats, Opts);
      break;
    case Stmt::DoLoopKind: {
      auto *D = static_cast<DoLoopStmt *>(S);
      // Inner loops first.
      visitLoops(F, D->getBody(), Stats, Opts);
      LoopSubstituter(F, D, B, Stats, Opts).run();
      break;
    }
    default:
      break;
    }
  }
}

} // namespace

IVSubStats scalar::substituteInductionVariables(Function &F,
                                                const IVSubOptions &Opts) {
  IVSubStats Stats;
  visitLoops(F, F.getBody(), Stats, Opts);
  return Stats;
}
