//===----------------------------------------------------------------------===//
///
/// \file
/// Constant propagation fused with unreachable-code elimination (paper
/// Section 8).
///
/// After inlining, "the information provided by the specific parameters at
/// a call site permits a large amount of optimization": constants flow
/// into guards, guards fold, whole branches die, and their deaths expose
/// more constants.  Rather than IF-conversion, basic-block rebuilding, or
/// Wegman-Zadeck (all considered and rejected by the paper), this pass
/// implements the paper's heuristic:
///
///   During constant propagation the compiler eliminates code detected as
///   unreachable (if conditions simplified to false/true, loops with zero
///   iterations).  When a statement is eliminated, all statements its
///   definition reaches are noted, and all constant assignments whose
///   definitions reach any of those statements are re-added to the heap
///   for another round of propagation.
///
/// A separate postpass removes code following always-taken branches up to
/// the next label (the paper notes this case is hard to catch during
/// propagation and handles it exactly this way).
///
/// Address constants (`p = &a`) are propagated as well — the paper:
/// "the vectorizer is safe in propagating address constants ... because
/// it knows that strength reduction and subexpression elimination will
/// undo any damage it has done".
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SCALAR_CONSTPROP_H
#define TCC_SCALAR_CONSTPROP_H

#include "il/IL.h"

namespace tcc {
namespace scalar {

struct ConstPropStats {
  unsigned UsesReplaced = 0;
  unsigned BranchesFolded = 0;
  unsigned LoopsDeleted = 0;
  unsigned StmtsRemoved = 0;
  unsigned Requeues = 0;        ///< Worklist re-adds from the heuristic.
  unsigned PostpassRemoved = 0; ///< Always-taken-branch postpass removals.
};

struct ConstPropOptions {
  /// When false, statements deleted as unreachable do not re-queue
  /// constants (ablation for E6); a later full rerun of the pass would be
  /// needed to catch the exposed constants.
  bool EnableUnreachableHeuristic = true;
  /// The always-taken-branch postpass (paper: invoked when inlining is
  /// enabled).
  bool EnableAlwaysTakenPostpass = true;
  /// Propagate `&array` address constants.
  bool PropagateAddressConstants = true;
};

ConstPropStats propagateConstants(il::Function &F,
                                  const ConstPropOptions &Opts = {});

} // namespace scalar
} // namespace tcc

#endif // TCC_SCALAR_CONSTPROP_H
