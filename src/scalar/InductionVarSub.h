//===----------------------------------------------------------------------===//
///
/// \file
/// Induction-variable substitution with the paper's blocking/backtracking
/// heuristic (Section 5.3).
///
/// For each normalized DO loop, the pass:
///  1. Detects the induction-variable family: scalars whose net
///     per-iteration change is a known loop-invariant amount (via linear
///     symbolic evaluation, which sees through the `temp = v; v = temp+4`
///     chains the front end emits for `v++`).
///  2. Forward-substitutes pure temporary assignments into later uses.  A
///     statement rejected *only because a later statement redefines a
///     variable it uses* is recorded as blocked by that statement; when
///     the blocker is removed (its induction variable was substituted),
///     the blocked statement is re-examined.  This is exactly the paper's
///     heuristic: "backtracking is never done unless it is guaranteed to
///     give some substitution".
///  3. Rewrites all remaining uses of each family member into the closed
///     form `v + delta·index`, removes the in-loop updates, and places
///     the final value `v = v + delta·trip` after the loop (the
///     `in_x = in_x + 400` statements in the paper's Section 9 listing).
///
/// The worst case is n passes over the loop (n = number of statements);
/// in practice one pass plus targeted backtracking suffices, and the
/// Stats structure exposes both counters so the claim is measurable
/// (experiment E5).
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SCALAR_INDUCTIONVARSUB_H
#define TCC_SCALAR_INDUCTIONVARSUB_H

#include "il/IL.h"

namespace tcc {
namespace scalar {

struct IVSubStats {
  unsigned LoopsProcessed = 0;
  unsigned FamilyMembers = 0;   ///< Induction variables recognized.
  unsigned UsesRewritten = 0;   ///< Uses replaced by closed forms.
  unsigned Substitutions = 0;   ///< Forward substitutions performed.
  unsigned Blocked = 0;         ///< Substitutions initially blocked.
  unsigned Backtracks = 0;      ///< Blocked statements re-examined.
  unsigned Passes = 0;          ///< Full passes over loop bodies.
};

struct IVSubOptions {
  /// When false, blocked statements are not re-examined when their blocker
  /// is removed; they wait for the next full pass (the E5 ablation).
  bool EnableBacktracking = true;
  /// Safety valve for the paper's worst case.
  unsigned MaxPassesPerLoop = 64;
};

/// Runs induction-variable substitution on every DO loop in \p F.
IVSubStats substituteInductionVariables(il::Function &F,
                                        const IVSubOptions &Opts = {});

} // namespace scalar
} // namespace tcc

#endif // TCC_SCALAR_INDUCTIONVARSUB_H
