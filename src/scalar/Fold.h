//===----------------------------------------------------------------------===//
///
/// \file
/// Constant folding and algebraic simplification of pure IL expressions.
/// Used by constant propagation (to expose unreachable branches), by the
/// vectorizer's bound computations, and by strength reduction.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SCALAR_FOLD_H
#define TCC_SCALAR_FOLD_H

#include "il/IL.h"

namespace tcc {
namespace scalar {

/// Recursively folds constants and applies safe algebraic identities
/// (x+0, x*1, x*0, x-x, folding of comparisons and casts of constants).
/// Returns the (possibly unchanged) simplified expression; never mutates
/// the input nodes, creating replacements in \p F's arena instead.
il::Expr *foldExpr(il::Function &F, il::Expr *E);

/// If \p E folds to an integer constant, sets \p Out and returns true.
bool evaluatesToInt(il::Function &F, il::Expr *E, int64_t &Out);

} // namespace scalar
} // namespace tcc

#endif // TCC_SCALAR_FOLD_H
