#include "scalar/Fold.h"

using namespace tcc;
using namespace tcc::il;
using namespace tcc::scalar;

namespace {

bool isIntConst(const Expr *E, int64_t &Out) {
  if (E->getKind() == Expr::ConstIntKind) {
    Out = static_cast<const ConstIntExpr *>(E)->getValue();
    return true;
  }
  return false;
}

bool isFloatConst(const Expr *E, double &Out) {
  if (E->getKind() == Expr::ConstFloatKind) {
    Out = static_cast<const ConstFloatExpr *>(E)->getValue();
    return true;
  }
  return false;
}

/// Truncation of an int constant to its type's width (char is signed
/// 8-bit, int is 32-bit on the Titan).
int64_t truncateToType(int64_t V, const Type *Ty) {
  if (Ty->isChar())
    return static_cast<int8_t>(V);
  if (Ty->isInt() || Ty->isPointer())
    return static_cast<int32_t>(V);
  return V;
}

Expr *foldBinary(Function &F, BinaryExpr *B, Expr *L, Expr *R) {
  const Type *Ty = B->getType();
  OpCode Op = B->getOp();

  int64_t LI, RI;
  double LD, RD;
  bool LIsInt = isIntConst(L, LI);
  bool RIsInt = isIntConst(R, RI);
  bool LIsFloat = isFloatConst(L, LD);
  bool RIsFloat = isFloatConst(R, RD);

  // Integer constant folding.
  if (LIsInt && RIsInt) {
    int64_t V;
    bool Folded = true;
    switch (Op) {
    case OpCode::Add:
      V = LI + RI;
      break;
    case OpCode::Sub:
      V = LI - RI;
      break;
    case OpCode::Mul:
      V = LI * RI;
      break;
    case OpCode::Div:
      if (RI == 0)
        return B;
      V = LI / RI;
      break;
    case OpCode::Rem:
      if (RI == 0)
        return B;
      V = LI % RI;
      break;
    case OpCode::Shl:
      V = LI << (RI & 31);
      break;
    case OpCode::Shr:
      V = LI >> (RI & 31);
      break;
    case OpCode::Lt:
      V = LI < RI;
      break;
    case OpCode::Gt:
      V = LI > RI;
      break;
    case OpCode::Le:
      V = LI <= RI;
      break;
    case OpCode::Ge:
      V = LI >= RI;
      break;
    case OpCode::Eq:
      V = LI == RI;
      break;
    case OpCode::Ne:
      V = LI != RI;
      break;
    case OpCode::BitAnd:
      V = LI & RI;
      break;
    case OpCode::BitOr:
      V = LI | RI;
      break;
    case OpCode::BitXor:
      V = LI ^ RI;
      break;
    case OpCode::Min:
      V = LI < RI ? LI : RI;
      break;
    case OpCode::Max:
      V = LI > RI ? LI : RI;
      break;
    default:
      Folded = false;
      V = 0;
      break;
    }
    if (Folded)
      return F.makeIntConst(Ty->isFloating() ? Ty : Ty,
                            truncateToType(V, Ty));
  }

  // Floating constant folding.
  if (LIsFloat && RIsFloat) {
    double V;
    bool Folded = true;
    bool IsCmp = false;
    int64_t CmpV = 0;
    switch (Op) {
    case OpCode::Add:
      V = LD + RD;
      break;
    case OpCode::Sub:
      V = LD - RD;
      break;
    case OpCode::Mul:
      V = LD * RD;
      break;
    case OpCode::Div:
      if (RD == 0.0)
        return B;
      V = LD / RD;
      break;
    case OpCode::Min:
      V = LD < RD ? LD : RD;
      break;
    case OpCode::Max:
      V = LD > RD ? LD : RD;
      break;
    case OpCode::Lt:
      IsCmp = true;
      CmpV = LD < RD;
      V = 0;
      break;
    case OpCode::Gt:
      IsCmp = true;
      CmpV = LD > RD;
      V = 0;
      break;
    case OpCode::Le:
      IsCmp = true;
      CmpV = LD <= RD;
      V = 0;
      break;
    case OpCode::Ge:
      IsCmp = true;
      CmpV = LD >= RD;
      V = 0;
      break;
    case OpCode::Eq:
      IsCmp = true;
      CmpV = LD == RD;
      V = 0;
      break;
    case OpCode::Ne:
      IsCmp = true;
      CmpV = LD != RD;
      V = 0;
      break;
    default:
      Folded = false;
      V = 0;
      break;
    }
    if (Folded) {
      if (IsCmp)
        return F.makeIntConst(Ty, CmpV);
      // The comparison result type is int; arithmetic keeps Ty.
      if (Ty->isFloating())
        return F.makeFloatConst(Ty, V);
      return F.makeIntConst(Ty, static_cast<int64_t>(V));
    }
  }

  // Mixed: comparison of a float constant against an int constant happens
  // after coercion in lowering, so no mixed case is needed here.

  // Algebraic identities (safe for ints; x*0 is also safe for pure IL
  // expressions since they have no side effects; for floats we avoid
  // identities that change NaN behaviour except the trivial +0/*1 cases,
  // which 1988-era compilers applied freely).
  auto isZero = [](Expr *E) {
    int64_t I;
    double D;
    return (isIntConst(E, I) && I == 0) || (isFloatConst(E, D) && D == 0.0);
  };
  auto isOne = [](Expr *E) {
    int64_t I;
    double D;
    return (isIntConst(E, I) && I == 1) || (isFloatConst(E, D) && D == 1.0);
  };

  switch (Op) {
  case OpCode::Add:
    if (isZero(L))
      return R;
    if (isZero(R))
      return L;
    break;
  case OpCode::Sub:
    if (isZero(R))
      return L;
    if (exprEquals(L, R) && Ty->isInteger())
      return F.makeIntConst(Ty, 0);
    break;
  case OpCode::Mul:
    if (isOne(L))
      return R;
    if (isOne(R))
      return L;
    if (Ty->isInteger() && (isZero(L) || isZero(R)))
      return F.makeIntConst(Ty, 0);
    break;
  case OpCode::Div:
    if (isOne(R))
      return L;
    break;
  default:
    break;
  }

  if (L != B->getLHS() || R != B->getRHS())
    return F.create<BinaryExpr>(Ty, Op, L, R);
  return B;
}

} // namespace

Expr *scalar::foldExpr(Function &F, Expr *E) {
  switch (E->getKind()) {
  case Expr::ConstIntKind:
  case Expr::ConstFloatKind:
  case Expr::VarRefKind:
    return E;
  case Expr::BinaryKind: {
    auto *B = static_cast<BinaryExpr *>(E);
    Expr *L = foldExpr(F, B->getLHS());
    Expr *R = foldExpr(F, B->getRHS());
    return foldBinary(F, B, L, R);
  }
  case Expr::UnaryKind: {
    auto *U = static_cast<UnaryExpr *>(E);
    Expr *Operand = foldExpr(F, U->getOperand());
    int64_t I;
    double D;
    switch (U->getOp()) {
    case OpCode::Neg:
      if (isIntConst(Operand, I))
        return F.makeIntConst(U->getType(), -I);
      if (isFloatConst(Operand, D))
        return F.makeFloatConst(U->getType(), -D);
      break;
    case OpCode::LogNot:
      if (isIntConst(Operand, I))
        return F.makeIntConst(U->getType(), I == 0);
      if (isFloatConst(Operand, D))
        return F.makeIntConst(U->getType(), D == 0.0);
      break;
    case OpCode::BitNot:
      if (isIntConst(Operand, I))
        return F.makeIntConst(U->getType(), truncateToType(~I, U->getType()));
      break;
    default:
      break;
    }
    if (Operand != U->getOperand())
      return F.create<UnaryExpr>(U->getType(), U->getOp(), Operand);
    return U;
  }
  case Expr::CastKind: {
    auto *C = static_cast<CastExpr *>(E);
    Expr *Operand = foldExpr(F, C->getOperand());
    const Type *To = C->getType();
    int64_t I;
    double D;
    if (isIntConst(Operand, I)) {
      if (To->isFloating())
        return F.makeFloatConst(To, static_cast<double>(I));
      if (To->isInteger() || To->isPointer())
        return F.makeIntConst(To, truncateToType(I, To));
    }
    if (isFloatConst(Operand, D)) {
      if (To->isFloating()) {
        if (To->isFloat())
          return F.makeFloatConst(To, static_cast<float>(D));
        return F.makeFloatConst(To, D);
      }
      if (To->isInteger())
        return F.makeIntConst(To, truncateToType(static_cast<int64_t>(D),
                                                 To));
    }
    if (Operand->getType() == To)
      return Operand;
    if (Operand != C->getOperand())
      return F.create<CastExpr>(To, Operand);
    return C;
  }
  case Expr::DerefKind: {
    auto *Dr = static_cast<DerefExpr *>(E);
    Expr *Addr = foldExpr(F, Dr->getAddr());
    if (Addr != Dr->getAddr())
      return F.create<DerefExpr>(Dr->getType(), Addr);
    return Dr;
  }
  case Expr::AddrOfKind: {
    auto *A = static_cast<AddrOfExpr *>(E);
    Expr *LV = foldExpr(F, A->getLValue());
    if (LV != A->getLValue())
      return F.create<AddrOfExpr>(A->getType(), LV);
    return A;
  }
  case Expr::IndexKind: {
    auto *I = static_cast<IndexExpr *>(E);
    bool Changed = false;
    std::vector<Expr *> Subs;
    for (Expr *Sub : I->getSubscripts()) {
      Expr *NewSub = foldExpr(F, Sub);
      Changed |= NewSub != Sub;
      Subs.push_back(NewSub);
    }
    Expr *Base = foldExpr(F, I->getBase());
    Changed |= Base != I->getBase();
    if (Changed)
      return F.create<IndexExpr>(I->getType(), Base, std::move(Subs));
    return I;
  }
  case Expr::TripletKind: {
    auto *T = static_cast<TripletExpr *>(E);
    Expr *Lo = foldExpr(F, T->getLo());
    Expr *Hi = foldExpr(F, T->getHi());
    Expr *Stride = foldExpr(F, T->getStride());
    if (Lo != T->getLo() || Hi != T->getHi() || Stride != T->getStride())
      return F.create<TripletExpr>(T->getType(), Lo, Hi, Stride);
    return T;
  }
  }
  return E;
}

bool scalar::evaluatesToInt(Function &F, Expr *E, int64_t &Out) {
  Expr *Folded = foldExpr(F, E);
  if (Folded->getKind() == Expr::ConstIntKind) {
    Out = static_cast<ConstIntExpr *>(Folded)->getValue();
    return true;
  }
  return false;
}
