#include "scalar/LinearValues.h"

#include "analysis/UseDef.h"

using namespace tcc;
using namespace tcc::il;
using namespace tcc::scalar;

//===----------------------------------------------------------------------===//
// LinExpr arithmetic
//===----------------------------------------------------------------------===//

LinExpr LinExpr::add(const LinExpr &RHS) const {
  if (!Known || !RHS.Known)
    return unknown();
  LinExpr Out = *this;
  Out.C0 += RHS.C0;
  for (const auto &[Term, Coeff] : RHS.Coeffs) {
    Out.Coeffs[Term] += Coeff;
    if (Out.Coeffs[Term] == 0)
      Out.Coeffs.erase(Term);
  }
  return Out;
}

LinExpr LinExpr::sub(const LinExpr &RHS) const { return add(RHS.neg()); }

LinExpr LinExpr::mulConst(int64_t C) const {
  if (!Known)
    return unknown();
  LinExpr Out;
  Out.Known = true;
  Out.C0 = C0 * C;
  if (C != 0)
    for (const auto &[Term, Coeff] : Coeffs)
      Out.Coeffs[Term] = Coeff * C;
  return Out;
}

bool LinExpr::isEntryOf(Symbol *Sym) const {
  return Known && C0 == 0 && Coeffs.size() == 1 &&
         Coeffs.begin()->first == LinTerm{Sym, false} &&
         Coeffs.begin()->second == 1;
}

int64_t LinExpr::coeffOfEntry(Symbol *Sym) const {
  auto It = Coeffs.find({Sym, false});
  return It == Coeffs.end() ? 0 : It->second;
}

Expr *scalar::linToExpr(Function &F, const LinExpr &L, const Type *Ty) {
  assert(L.Known && "cannot materialize an unknown linear form");
  TypeContext &Types = F.getProgram().getTypes();
  const Type *IntTy = Types.getIntType();

  Expr *Acc = nullptr;
  auto addTerm = [&](Expr *Term) {
    if (!Acc) {
      Acc = Term;
      return;
    }
    Acc = F.makeBinary(OpCode::Add, Acc, Term, Ty);
  };

  for (const auto &[Term, Coeff] : L.Coeffs) {
    Expr *Base;
    if (Term.IsAddr) {
      const Type *SymTy = Term.Sym->getType();
      const Type *PtrTy = SymTy->isArray()
                              ? Types.getPointerType(SymTy->getElementType())
                              : Types.getPointerType(SymTy);
      Base = F.create<AddrOfExpr>(PtrTy, F.makeVarRef(Term.Sym));
    } else {
      Base = F.makeVarRef(Term.Sym);
    }
    if (Coeff == 1) {
      addTerm(Base);
    } else if (Coeff == -1) {
      addTerm(F.create<UnaryExpr>(IntTy, OpCode::Neg, Base));
    } else {
      addTerm(F.makeBinary(OpCode::Mul, F.makeIntConst(IntTy, Coeff), Base,
                           IntTy));
    }
  }
  if (L.C0 != 0 || !Acc)
    addTerm(F.makeIntConst(Ty->isPointer() ? IntTy : Ty, L.C0));
  return Acc;
}

//===----------------------------------------------------------------------===//
// BodyLinearState
//===----------------------------------------------------------------------===//

namespace {

/// The primary nested block of a structured statement (then-block for ifs,
/// body for loops).
Block &primaryBlockOf(Stmt *S) {
  switch (S->getKind()) {
  case Stmt::IfKind:
    return static_cast<IfStmt *>(S)->getThen();
  case Stmt::WhileKind:
    return static_cast<WhileStmt *>(S)->getBody();
  case Stmt::DoLoopKind:
    return static_cast<DoLoopStmt *>(S)->getBody();
  default:
    assert(false && "statement has no block");
    static Block Empty;
    return Empty;
  }
}

} // namespace

BodyLinearState::BodyLinearState(Function &F, Block &Body) : F(F) {
  // Irregular flow: any goto/label/return in the body.
  forEachStmt(Body, [this](Stmt *S) {
    switch (S->getKind()) {
    case Stmt::GotoKind:
    case Stmt::LabelKind:
    case Stmt::ReturnKind:
      IrregularFlow = true;
      break;
    default:
      break;
    }
  });

  // Touched scalars: strong defs anywhere in the body.
  forEachStmt(Body, [this](Stmt *S) {
    for (Symbol *Sym : analysis::strongDefs(S))
      Touched.insert(Sym);
  });

  // Clobberable scalars: address-taken in the whole function, plus any
  // global/static scalar (a pointer store or call can hit them).
  Clobberable = analysis::computeAddressTakenScalars(F);
  forEachStmt(F.getBody(), [this](Stmt *S) {
    auto NoteGlobals = [this](Expr *E) {
      Expr *Slot = E;
      forEachSubExprSlot(Slot, [this](Expr *&Sub) {
        if (Sub->getKind() == Expr::VarRefKind) {
          Symbol *Sym = static_cast<VarRefExpr *>(Sub)->getSymbol();
          if (Sym->isGlobal() && Sym->getType()->isScalar())
            Clobberable.insert(Sym);
        }
      });
    };
    forEachExprSlot(S, [&NoteGlobals](Expr *&Slot) { NoteGlobals(Slot); });
  });

  // Symbolic walk of the top-level statements.
  Env Cur;
  for (Stmt *S : Body.Stmts) {
    Snapshots.push_back(Cur);
    switch (S->getKind()) {
    case Stmt::AssignKind: {
      auto *A = static_cast<AssignStmt *>(S);
      if (A->getLHS()->getKind() == Expr::VarRefKind) {
        Symbol *Target = static_cast<VarRefExpr *>(A->getLHS())->getSymbol();
        if (Target->getType()->isScalar())
          Cur[Target] = Target->isVolatile() ? LinExpr::unknown()
                                             : evalExpr(Cur, A->getRHS());
      } else {
        // Store through pointer/array: clobber aliased scalars.
        invalidateClobbered(Cur);
      }
      break;
    }
    case Stmt::CallKind: {
      auto *C = static_cast<CallStmt *>(S);
      invalidateClobbered(Cur);
      if (C->getResult())
        Cur[C->getResult()] = LinExpr::unknown();
      break;
    }
    case Stmt::IfKind:
    case Stmt::WhileKind:
    case Stmt::DoLoopKind: {
      // Conditionally (or repeatedly) executed: every scalar defined
      // inside becomes unknown, as does anything clobberable if the region
      // stores through pointers or calls.
      bool HasSideEntry = false;
      forEachStmt(primaryBlockOf(S), [&](Stmt *Sub) {
        for (Symbol *Sym : analysis::strongDefs(Sub))
          Cur[Sym] = LinExpr::unknown();
        if (Sub->getKind() == Stmt::CallKind)
          HasSideEntry = true;
        if (Sub->getKind() == Stmt::AssignKind &&
            static_cast<AssignStmt *>(Sub)->getLHS()->getKind() !=
                Expr::VarRefKind)
          HasSideEntry = true;
      });
      if (S->getKind() == Stmt::IfKind) {
        auto *I = static_cast<IfStmt *>(S);
        forEachStmt(I->getElse(), [&](Stmt *Sub) {
          for (Symbol *Sym : analysis::strongDefs(Sub))
            Cur[Sym] = LinExpr::unknown();
          if (Sub->getKind() == Stmt::CallKind)
            HasSideEntry = true;
          if (Sub->getKind() == Stmt::AssignKind &&
              static_cast<AssignStmt *>(Sub)->getLHS()->getKind() !=
                  Expr::VarRefKind)
            HasSideEntry = true;
        });
      }
      if (HasSideEntry)
        invalidateClobbered(Cur);
      break;
    }
    case Stmt::LabelKind:
    case Stmt::GotoKind:
    case Stmt::ReturnKind:
      // Tracked via IrregularFlow.
      break;
    }
  }
  Final = std::move(Cur);
}

LinExpr BodyLinearState::lookup(const Env &E, Symbol *Sym) const {
  auto It = E.find(Sym);
  if (It != E.end())
    return It->second;
  if (Sym->isVolatile())
    return LinExpr::unknown();
  return LinExpr::entry(Sym);
}

void BodyLinearState::invalidateClobbered(Env &E) const {
  for (Symbol *Sym : Clobberable)
    E[Sym] = LinExpr::unknown();
}

LinExpr BodyLinearState::evalExpr(const Env &E, Expr *Expression) const {
  switch (Expression->getKind()) {
  case Expr::ConstIntKind:
    return LinExpr::constant(
        static_cast<ConstIntExpr *>(Expression)->getValue());
  case Expr::ConstFloatKind:
    return LinExpr::unknown();
  case Expr::VarRefKind: {
    Symbol *Sym = static_cast<VarRefExpr *>(Expression)->getSymbol();
    if (!Sym->getType()->isScalar() || Sym->getType()->isFloating())
      return LinExpr::unknown();
    return lookup(E, Sym);
  }
  case Expr::BinaryKind: {
    auto *B = static_cast<BinaryExpr *>(Expression);
    LinExpr L = evalExpr(E, B->getLHS());
    LinExpr R = evalExpr(E, B->getRHS());
    switch (B->getOp()) {
    case OpCode::Add:
      return L.add(R);
    case OpCode::Sub:
      return L.sub(R);
    case OpCode::Mul:
      if (L.isConstant())
        return R.mulConst(L.C0);
      if (R.isConstant())
        return L.mulConst(R.C0);
      return LinExpr::unknown();
    default:
      return LinExpr::unknown();
    }
  }
  case Expr::UnaryKind: {
    auto *U = static_cast<UnaryExpr *>(Expression);
    if (U->getOp() == OpCode::Neg)
      return evalExpr(E, U->getOperand()).neg();
    return LinExpr::unknown();
  }
  case Expr::CastKind: {
    auto *C = static_cast<CastExpr *>(Expression);
    const Type *From = C->getOperand()->getType();
    const Type *To = C->getType();
    // int↔pointer casts preserve the byte value; char truncation and
    // float conversions do not.
    bool FromWide = From->isInt() || From->isPointer();
    bool ToWide = To->isInt() || To->isPointer();
    if (FromWide && ToWide)
      return evalExpr(E, C->getOperand());
    return LinExpr::unknown();
  }
  case Expr::AddrOfKind: {
    auto *A = static_cast<AddrOfExpr *>(Expression);
    if (A->getLValue()->getKind() == Expr::VarRefKind)
      return LinExpr::addr(
          static_cast<VarRefExpr *>(A->getLValue())->getSymbol());
    return LinExpr::unknown();
  }
  case Expr::DerefKind:
  case Expr::IndexKind:
  case Expr::TripletKind:
    return LinExpr::unknown();
  }
  return LinExpr::unknown();
}

LinExpr BodyLinearState::valueBefore(size_t I, Symbol *Sym) const {
  assert(I < Snapshots.size() && "statement index out of range");
  return lookup(Snapshots[I], Sym);
}

LinExpr BodyLinearState::valueAtEnd(Symbol *Sym) const {
  return lookup(Final, Sym);
}

LinExpr BodyLinearState::deltaOf(Symbol *Sym) const {
  LinExpr End = valueAtEnd(Sym);
  if (!End.Known)
    return LinExpr::unknown();
  LinExpr Delta = End.sub(LinExpr::entry(Sym));
  // Every remaining entry term must be invariant in the body.
  for (const auto &[Term, Coeff] : Delta.Coeffs) {
    if (Term.IsAddr)
      continue;
    if (Touched.count(Term.Sym))
      return LinExpr::unknown();
  }
  return Delta;
}

LinExpr BodyLinearState::evalAt(size_t I, Expr *E) const {
  assert(I < Snapshots.size() && "statement index out of range");
  return evalExpr(Snapshots[I], E);
}
