#include "scalar/ConstProp.h"

#include "analysis/UseDef.h"
#include "scalar/Fold.h"

#include <algorithm>
#include <deque>
#include <set>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::scalar;

namespace {

class Propagator {
public:
  Propagator(Function &F, const ConstPropOptions &Opts)
      : F(F), Opts(Opts), UD(F) {}

  ConstPropStats run() {
    // Initial folding sweep and worklist seeding.
    forEachStmt(F.getBody(), [this](Stmt *S) {
      foldStmt(S);
      if (isConstAssign(S))
        push(static_cast<AssignStmt *>(S));
    });

    while (!Worklist.empty()) {
      AssignStmt *Def = Worklist.front();
      Worklist.pop_front();
      InList.erase(Def);
      if (Removed.count(Def))
        continue;
      propagateFrom(Def);
    }

    structuralSimplify(F.getBody());

    if (Opts.EnableAlwaysTakenPostpass)
      alwaysTakenPostpass(F.getBody());

    return Stats;
  }

private:
  //===--------------------------------------------------------------------===//
  // Constant-like values
  //===--------------------------------------------------------------------===//

  /// True for `&sym` and `&arr[c0][c1]...` with constant subscripts —
  /// frame-invariant address constants.
  static bool isAddressConstant(Expr *E) {
    if (E->getKind() != Expr::AddrOfKind)
      return false;
    Expr *LV = static_cast<AddrOfExpr *>(E)->getLValue();
    if (LV->getKind() == Expr::VarRefKind)
      return true;
    if (LV->getKind() != Expr::IndexKind)
      return false;
    auto *I = static_cast<IndexExpr *>(LV);
    if (I->getBase()->getKind() != Expr::VarRefKind)
      return false;
    for (Expr *Sub : I->getSubscripts())
      if (Sub->getKind() != Expr::ConstIntKind)
        return false;
    return true;
  }

  /// A propagatable RHS: an int/float constant, or (optionally) an address
  /// constant `&sym` / `&arr[c]` / `&sym ± c`.
  bool isConstLike(Expr *E) const {
    switch (E->getKind()) {
    case Expr::ConstIntKind:
    case Expr::ConstFloatKind:
      return true;
    case Expr::AddrOfKind:
      return Opts.PropagateAddressConstants && isAddressConstant(E);
    case Expr::BinaryKind: {
      if (!Opts.PropagateAddressConstants)
        return false;
      auto *B = static_cast<BinaryExpr *>(E);
      if (B->getOp() != OpCode::Add && B->getOp() != OpCode::Sub)
        return false;
      return B->getRHS()->getKind() == Expr::ConstIntKind &&
             isAddressConstant(B->getLHS());
    }
    default:
      return false;
    }
  }

  bool isConstAssign(Stmt *S) const {
    if (S->getKind() != Stmt::AssignKind)
      return false;
    auto *A = static_cast<AssignStmt *>(S);
    if (A->getLHS()->getKind() != Expr::VarRefKind)
      return false;
    Symbol *Sym = static_cast<VarRefExpr *>(A->getLHS())->getSymbol();
    if (Sym->isVolatile() || !Sym->getType()->isScalar())
      return false;
    return isConstLike(A->getRHS());
  }

  void push(AssignStmt *S) {
    if (InList.insert(S).second)
      Worklist.push_back(S);
  }

  //===--------------------------------------------------------------------===//
  // Propagation
  //===--------------------------------------------------------------------===//

  void propagateFrom(AssignStmt *Def) {
    Symbol *Sym = static_cast<VarRefExpr *>(Def->getLHS())->getSymbol();
    Expr *Value = Def->getRHS();

    for (auto &[User, UsedSym] : UD.usesOf(Def)) {
      if (UsedSym != Sym || Removed.count(User))
        continue;
      // Every reaching definition must carry the same constant.
      bool AllSame = true;
      for (const Stmt *Other : UD.defsReaching(User, Sym)) {
        if (!Other) {
          AllSame = false; // entry value may differ
          break;
        }
        if (Other->getKind() != Stmt::AssignKind ||
            static_cast<const AssignStmt *>(Other)->getLHS()->getKind() !=
                Expr::VarRefKind) {
          AllSame = false; // may-def (call / pointer store)
          break;
        }
        auto *OtherA = static_cast<const AssignStmt *>(Other);
        if (!exprEquals(OtherA->getRHS(), Value)) {
          AllSame = false;
          break;
        }
      }
      if (!AllSame)
        continue;

      Stmt *U = const_cast<Stmt *>(User);
      unsigned N = replaceUsesIn(U, Sym, Value);
      if (!N)
        continue;
      Stats.UsesReplaced += N;
      foldStmt(U);
      if (isConstAssign(U))
        push(static_cast<AssignStmt *>(U));
      // Control statements with folded conditions are handled in the
      // structural pass; but fold eagerly so nested constants flow.
      maybeFoldControl(U);
    }
  }

  unsigned replaceUsesIn(Stmt *S, Symbol *Sym, Expr *Value) {
    unsigned Count = 0;
    auto ReplaceInSlot = [&](Expr *&Slot) {
      // Only *value* uses may be replaced: `&x` names x's storage and
      // must survive constant propagation of x.
      forEachValueUseSlot(Slot, [&](Expr *&Sub) {
        if (static_cast<VarRefExpr *>(Sub)->getSymbol() == Sym) {
          Sub = F.cloneExpr(Value);
          ++Count;
        }
      });
    };
    if (S->getKind() == Stmt::AssignKind) {
      auto *A = static_cast<AssignStmt *>(S);
      if (A->getLHS()->getKind() != Expr::VarRefKind)
        ReplaceInSlot(A->lhsSlot());
      ReplaceInSlot(A->rhsSlot());
      return Count;
    }
    forEachExprSlot(S, ReplaceInSlot);
    return Count;
  }

  void foldStmt(Stmt *S) {
    forEachExprSlot(S, [this](Expr *&Slot) { Slot = foldExpr(F, Slot); });
  }

  /// If \p S is an If/While/DoLoop whose condition folded to a constant,
  /// remember it for the structural pass (we cannot splice here because we
  /// do not know the parent block).
  void maybeFoldControl(Stmt *S) {
    // Nothing to record: structuralSimplify re-scans; this hook exists so
    // the scan logic lives in one place.
    (void)S;
  }

  //===--------------------------------------------------------------------===//
  // Unreachable-code elimination (structural)
  //===--------------------------------------------------------------------===//

  /// Collects \p S and everything nested in it into Removed, updating the
  /// chains and re-queueing constants per the paper's heuristic.
  void removeTree(Stmt *S) {
    std::vector<Stmt *> All;
    All.push_back(S);
    switch (S->getKind()) {
    case Stmt::IfKind: {
      auto *I = static_cast<IfStmt *>(S);
      forEachStmt(I->getThen(), [&All](Stmt *Sub) { All.push_back(Sub); });
      forEachStmt(I->getElse(), [&All](Stmt *Sub) { All.push_back(Sub); });
      break;
    }
    case Stmt::WhileKind:
      forEachStmt(static_cast<WhileStmt *>(S)->getBody(),
                  [&All](Stmt *Sub) { All.push_back(Sub); });
      break;
    case Stmt::DoLoopKind:
      forEachStmt(static_cast<DoLoopStmt *>(S)->getBody(),
                  [&All](Stmt *Sub) { All.push_back(Sub); });
      break;
    default:
      break;
    }
    for (Stmt *Dead : All) {
      Removed.insert(Dead);
      ++Stats.StmtsRemoved;
      auto Affected = UD.removeStmt(Dead);
      if (!Opts.EnableUnreachableHeuristic)
        continue;
      // The heuristic: constant assignments whose definitions reach a
      // statement that just lost a definition go back on the heap.
      for (auto &[User, Sym] : Affected) {
        if (Removed.count(User))
          continue;
        for (const Stmt *DefC : UD.defsReaching(User, Sym)) {
          if (!DefC || Removed.count(DefC))
            continue;
          if (isConstAssign(const_cast<Stmt *>(DefC))) {
            push(static_cast<AssignStmt *>(const_cast<Stmt *>(DefC)));
            ++Stats.Requeues;
          }
        }
      }
    }
  }

  /// Rewrites blocks bottom-up: folds If(const), deletes While(0) and
  /// zero-trip DO loops, then continues propagation rounds triggered by
  /// the removals.
  void structuralSimplify(Block &B) {
    for (size_t I = 0; I < B.Stmts.size();) {
      Stmt *S = B.Stmts[I];
      switch (S->getKind()) {
      case Stmt::IfKind: {
        auto *If = static_cast<IfStmt *>(S);
        structuralSimplify(If->getThen());
        structuralSimplify(If->getElse());
        int64_t C;
        if (evaluatesToInt(F, If->getCond(), C)) {
          Block &Taken = C ? If->getThen() : If->getElse();
          Block &Dead = C ? If->getElse() : If->getThen();
          // Remove the dead branch with the heuristic, then splice the
          // taken branch into the parent.
          for (Stmt *DeadStmt : Dead.Stmts)
            removeTree(DeadStmt);
          Removed.insert(If);
          UD.removeStmt(If);
          ++Stats.BranchesFolded;
          std::vector<Stmt *> TakenStmts = std::move(Taken.Stmts);
          B.Stmts.erase(B.Stmts.begin() + static_cast<long>(I));
          B.Stmts.insert(B.Stmts.begin() + static_cast<long>(I),
                         TakenStmts.begin(), TakenStmts.end());
          drainWorklist();
          continue; // revisit position I
        }
        ++I;
        break;
      }
      case Stmt::WhileKind: {
        auto *W = static_cast<WhileStmt *>(S);
        structuralSimplify(W->getBody());
        int64_t C;
        if (evaluatesToInt(F, W->getCond(), C) && C == 0) {
          removeTree(W);
          B.Stmts.erase(B.Stmts.begin() + static_cast<long>(I));
          ++Stats.LoopsDeleted;
          drainWorklist();
          continue;
        }
        ++I;
        break;
      }
      case Stmt::DoLoopKind: {
        auto *D = static_cast<DoLoopStmt *>(S);
        structuralSimplify(D->getBody());
        // Normalized zero-trip: limit < init with positive step.
        int64_t Init, Limit, Step;
        if (evaluatesToInt(F, D->getInit(), Init) &&
            evaluatesToInt(F, D->getLimit(), Limit) &&
            evaluatesToInt(F, D->getStep(), Step) &&
            ((Step > 0 && Limit < Init) || (Step < 0 && Limit > Init))) {
          removeTree(D);
          B.Stmts.erase(B.Stmts.begin() + static_cast<long>(I));
          ++Stats.LoopsDeleted;
          drainWorklist();
          continue;
        }
        ++I;
        break;
      }
      default:
        ++I;
        break;
      }
    }
  }

  void drainWorklist() {
    while (!Worklist.empty()) {
      AssignStmt *Def = Worklist.front();
      Worklist.pop_front();
      InList.erase(Def);
      if (Removed.count(Def))
        continue;
      propagateFrom(Def);
    }
  }

  //===--------------------------------------------------------------------===//
  // Always-taken-branch postpass
  //===--------------------------------------------------------------------===//

  void alwaysTakenPostpass(Block &B) {
    for (size_t I = 0; I < B.Stmts.size(); ++I) {
      Stmt *S = B.Stmts[I];
      switch (S->getKind()) {
      case Stmt::IfKind: {
        auto *If = static_cast<IfStmt *>(S);
        alwaysTakenPostpass(If->getThen());
        alwaysTakenPostpass(If->getElse());
        break;
      }
      case Stmt::WhileKind:
        alwaysTakenPostpass(static_cast<WhileStmt *>(S)->getBody());
        break;
      case Stmt::DoLoopKind:
        alwaysTakenPostpass(static_cast<DoLoopStmt *>(S)->getBody());
        break;
      case Stmt::GotoKind:
      case Stmt::ReturnKind: {
        // Everything after an unconditional transfer, up to the next
        // label, is unreachable.
        size_t J = I + 1;
        while (J < B.Stmts.size() &&
               B.Stmts[J]->getKind() != Stmt::LabelKind) {
          removeTree(B.Stmts[J]);
          ++Stats.PostpassRemoved;
          B.Stmts.erase(B.Stmts.begin() + static_cast<long>(J));
        }
        break;
      }
      default:
        break;
      }
    }
  }

  Function &F;
  const ConstPropOptions &Opts;
  analysis::UseDefChains UD;
  std::deque<AssignStmt *> Worklist;
  std::set<const Stmt *> InList;
  std::set<const Stmt *> Removed;
  ConstPropStats Stats;
};

} // namespace

ConstPropStats scalar::propagateConstants(Function &F,
                                          const ConstPropOptions &Opts) {
  return Propagator(F, Opts).run();
}
