#include "scalar/WhileToDo.h"

#include "analysis/CFG.h"
#include "scalar/Fold.h"
#include "scalar/LinearValues.h"

using namespace tcc;
using namespace tcc::il;
using namespace tcc::scalar;

namespace {

class Converter {
public:
  Converter(Function &F, analysis::UseDefChains *UD) : F(F), UD(UD) {}

  WhileToDoStats run() {
    visitBlock(F.getBody());
    return Stats;
  }

private:
  /// Post-order: convert inner loops first.
  void visitBlock(Block &B) {
    for (size_t I = 0; I < B.Stmts.size(); ++I) {
      Stmt *S = B.Stmts[I];
      switch (S->getKind()) {
      case Stmt::IfKind: {
        auto *If = static_cast<IfStmt *>(S);
        visitBlock(If->getThen());
        visitBlock(If->getElse());
        break;
      }
      case Stmt::DoLoopKind:
        visitBlock(static_cast<DoLoopStmt *>(S)->getBody());
        break;
      case Stmt::WhileKind: {
        auto *W = static_cast<WhileStmt *>(S);
        visitBlock(W->getBody());
        ++Stats.Attempted;
        if (DoLoopStmt *NewDo = tryConvert(W)) {
          B.Stmts[I] = NewDo;
          ++Stats.Converted;
          if (UD)
            UD->patchAfterWhileConversion(W, NewDo);
        }
        break;
      }
      default:
        break;
      }
    }
  }

  /// The recognized condition shapes.
  struct CondShape {
    Symbol *ControlVar = nullptr;
    enum Kind { NonZero, Lt, Le, Gt, Ge } Relation = NonZero;
    Expr *Bound = nullptr; ///< Null for NonZero.
  };

  bool matchCondition(Expr *Cond, CondShape &Out) {
    // `i`
    if (Cond->getKind() == Expr::VarRefKind) {
      Out.ControlVar = static_cast<VarRefExpr *>(Cond)->getSymbol();
      Out.Relation = CondShape::NonZero;
      return true;
    }
    if (Cond->getKind() != Expr::BinaryKind)
      return false;
    auto *B = static_cast<BinaryExpr *>(Cond);
    Expr *L = B->getLHS();
    Expr *R = B->getRHS();

    auto asVar = [](Expr *E) -> Symbol * {
      if (E->getKind() == Expr::VarRefKind)
        return static_cast<VarRefExpr *>(E)->getSymbol();
      return nullptr;
    };
    auto isZero = [](Expr *E) {
      return E->getKind() == Expr::ConstIntKind &&
             static_cast<ConstIntExpr *>(E)->getValue() == 0;
    };

    switch (B->getOp()) {
    case OpCode::Ne:
      // i != 0 or 0 != i.
      if (Symbol *V = asVar(L); V && isZero(R)) {
        Out.ControlVar = V;
        Out.Relation = CondShape::NonZero;
        return true;
      }
      if (Symbol *V = asVar(R); V && isZero(L)) {
        Out.ControlVar = V;
        Out.Relation = CondShape::NonZero;
        return true;
      }
      return false;
    case OpCode::Lt:
    case OpCode::Le:
    case OpCode::Gt:
    case OpCode::Ge: {
      CondShape::Kind Kind;
      if (Symbol *V = asVar(L)) {
        Out.ControlVar = V;
        Out.Bound = R;
        Kind = B->getOp() == OpCode::Lt   ? CondShape::Lt
               : B->getOp() == OpCode::Le ? CondShape::Le
               : B->getOp() == OpCode::Gt ? CondShape::Gt
                                          : CondShape::Ge;
        Out.Relation = Kind;
        return true;
      }
      if (Symbol *V = asVar(R)) {
        // Mirror: n > i is i < n, etc.
        Out.ControlVar = V;
        Out.Bound = L;
        Kind = B->getOp() == OpCode::Lt   ? CondShape::Gt
               : B->getOp() == OpCode::Le ? CondShape::Ge
               : B->getOp() == OpCode::Gt ? CondShape::Lt
                                          : CondShape::Le;
        Out.Relation = Kind;
        return true;
      }
      return false;
    }
    default:
      return false;
    }
  }

  /// True if every scalar mentioned by \p E is invariant in the body per
  /// \p BLS and non-volatile.
  bool exprInvariantInBody(Expr *E, const BodyLinearState &BLS) {
    bool Ok = true;
    Expr *Slot = E;
    forEachSubExprSlot(Slot, [&](Expr *&Sub) {
      if (Sub->getKind() == Expr::DerefKind ||
          Sub->getKind() == Expr::IndexKind)
        Ok = false; // memory loads may change across iterations
      if (Sub->getKind() == Expr::VarRefKind) {
        Symbol *Sym = static_cast<VarRefExpr *>(Sub)->getSymbol();
        if (Sym->isVolatile() || !BLS.isInvariant(Sym))
          Ok = false;
      }
    });
    return Ok;
  }

  DoLoopStmt *tryConvert(WhileStmt *W) {
    Block &Body = W->getBody();
    if (Body.empty())
      return nullptr;

    CondShape Shape;
    if (!matchCondition(W->getCond(), Shape))
      return nullptr;
    Symbol *I = Shape.ControlVar;
    if (I->isVolatile() || !I->getType()->isScalar() ||
        I->getType()->isFloating())
      return nullptr;

    BodyLinearState BLS(F, Body);
    if (BLS.hasIrregularFlow())
      return nullptr;
    if (analysis::CFG::hasBranchIntoBlock(F, Body))
      return nullptr;

    LinExpr Delta = BLS.deltaOf(I);
    if (!Delta.Known || Delta.isZero())
      return nullptr;
    if (Shape.Bound && !exprInvariantInBody(Shape.Bound, BLS))
      return nullptr;

    TypeContext &Types = F.getProgram().getTypes();
    const Type *IntTy = Types.getIntType();
    auto c = [&](int64_t V) { return F.makeIntConst(IntTy, V); };
    auto sub = [&](Expr *A, Expr *B) {
      return F.makeBinary(OpCode::Sub, A, B, IntTy);
    };
    auto divE = [&](Expr *A, Expr *B) {
      return F.makeBinary(OpCode::Div, A, B, IntTy);
    };

    // The control variable's value at loop entry.
    auto entryVal = [&]() -> Expr * {
      Expr *V = F.makeVarRef(I);
      if (I->getType()->isPointer())
        return F.create<CastExpr>(IntTy, V);
      return V;
    };
    auto boundVal = [&]() -> Expr * {
      Expr *V = F.cloneExpr(Shape.Bound);
      if (V->getType()->isPointer())
        return F.create<CastExpr>(IntTy, V);
      return V;
    };

    // Compute trip-1 (the limit of the normalized DO loop).
    Expr *TripM1 = nullptr;
    if (Shape.Relation == CondShape::NonZero) {
      // while (i != 0) with i advancing by Delta each trip: the loop runs
      // i0 / (-Delta) times (the paper's `DO dummy = n, 1, -s` case).
      Expr *NegDelta = linToExpr(F, Delta.neg(), IntTy);
      TripM1 = sub(divE(entryVal(), NegDelta), c(1));
    } else {
      // Relational conditions need a known step direction.
      if (!Delta.isConstant())
        return nullptr;
      int64_t Step = Delta.C0;
      switch (Shape.Relation) {
      case CondShape::Lt:
        if (Step <= 0)
          return nullptr;
        TripM1 = divE(sub(sub(boundVal(), c(1)), entryVal()), c(Step));
        break;
      case CondShape::Le:
        if (Step <= 0)
          return nullptr;
        TripM1 = divE(sub(boundVal(), entryVal()), c(Step));
        break;
      case CondShape::Gt:
        if (Step >= 0)
          return nullptr;
        TripM1 = divE(sub(sub(entryVal(), c(1)), boundVal()), c(-Step));
        break;
      case CondShape::Ge:
        if (Step >= 0)
          return nullptr;
        TripM1 = divE(sub(entryVal(), boundVal()), c(-Step));
        break;
      case CondShape::NonZero:
        break;
      }
    }
    TripM1 = foldExpr(F, TripM1);

    // Build the normalized DO loop; the body moves over unchanged (the
    // paper keeps the original updates and lets IV substitution + DCE
    // clean them up).
    Symbol *Index = F.createTemp(IntTy, "temp_i");
    auto *NewDo =
        F.create<DoLoopStmt>(W->getLoc(), Index, c(0), TripM1, c(1));
    NewDo->setSafeVectorPragma(W->hasSafeVectorPragma());
    NewDo->getBody().Stmts = std::move(Body.Stmts);
    return NewDo;
  }

  Function &F;
  analysis::UseDefChains *UD;
  WhileToDoStats Stats;
};

} // namespace

WhileToDoStats scalar::convertWhileLoops(Function &F,
                                         analysis::UseDefChains *UD) {
  return Converter(F, UD).run();
}
