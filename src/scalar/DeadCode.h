//===----------------------------------------------------------------------===//
///
/// \file
/// Dead-code elimination driven by use-def chains (paper Sections 3 and
/// 8: "dead code is common" once inlining and induction-variable
/// substitution have run, and the high-level IL makes removing it cheap).
///
/// Liveness roots: stores to memory, calls, returns, control transfers,
/// assignments to volatile/global/static/address-taken symbols, and loop
/// or branch conditions that read volatile storage (the paper's
/// `while(!keyboard_status);` must survive).  An assignment to a plain
/// scalar is live only if some live statement's use-def chain reaches it.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SCALAR_DEADCODE_H
#define TCC_SCALAR_DEADCODE_H

#include "il/IL.h"

namespace tcc {
namespace scalar {

struct DCEStats {
  unsigned AssignsRemoved = 0;
  unsigned EmptyControlRemoved = 0;
  unsigned LabelsRemoved = 0;
};

/// Repeats mark-and-sweep until no statement dies.
DCEStats eliminateDeadCode(il::Function &F);

} // namespace scalar
} // namespace tcc

#endif // TCC_SCALAR_DEADCODE_H
