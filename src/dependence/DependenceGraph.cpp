#include "dependence/DependenceGraph.h"

#include "analysis/UseDef.h"
#include "il/ILPrinter.h"
#include "scalar/Fold.h"

#include <algorithm>
#include <functional>
#include <numeric>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::dep;
using tcc::scalar::LinExpr;

//===----------------------------------------------------------------------===//
// Pairwise dependence testing
//===----------------------------------------------------------------------===//

DepResult dep::testRefs(const MemRef &A, const MemRef &B, Symbol *Idx,
                        int64_t TripCount) {
  DepResult Conservative; // dependent, carried, independent, no distance
  if (!A.Addr.Valid || !B.Addr.Valid)
    return Conservative;

  // Outer/other loop indices must have matching coefficients to cancel.
  for (const auto &[Sym, Coeff] : A.Addr.IdxCoeffs)
    if (Sym != Idx && B.Addr.coeffOf(Sym) != Coeff)
      return Conservative;
  for (const auto &[Sym, Coeff] : B.Addr.IdxCoeffs)
    if (Sym != Idx && A.Addr.coeffOf(Sym) != Coeff)
      return Conservative;

  LinExpr Delta = B.Addr.Offset.sub(A.Addr.Offset);
  if (!Delta.Known || !Delta.Coeffs.empty())
    return Conservative; // symbolic difference

  int64_t D0 = Delta.C0;
  int64_t CA = A.Addr.coeffOf(Idx);
  int64_t CB = B.Addr.coeffOf(Idx);
  int64_t SizeA = A.Size > 0 ? A.Size : 1;
  int64_t SizeB = B.Size > 0 ? B.Size : 1;

  auto overlapsAt = [&](int64_t Diff) {
    // Access A at [0, SizeA), access B at [Diff, Diff+SizeB).
    return Diff > -SizeB && Diff < SizeA;
  };

  if (CA == CB) {
    if (CA == 0) {
      // ZIV: constant addresses.
      DepResult R;
      if (!overlapsAt(D0)) {
        R.Dependent = false;
        R.Carried = false;
        R.LoopIndependent = false;
        return R;
      }
      R.Dependent = true;
      R.Carried = true; // the same location every iteration
      R.LoopIndependent = true;
      return R;
    }
    // Strong SIV: B at iteration x+k touches A's location from iteration
    // x when CA·(x+k) + offB = CA·x + offA, i.e. k = -D0/CA.
    if (D0 % CA == 0) {
      int64_t K = -D0 / CA;
      DepResult R;
      if (TripCount >= 0 && (K >= TripCount || K <= -TripCount)) {
        R.Dependent = false;
        R.Carried = false;
        R.LoopIndependent = false;
        return R;
      }
      R.Dependent = true;
      R.DistanceKnown = true;
      R.Distance = K;
      R.Carried = K != 0;
      R.LoopIndependent = K == 0;
      return R;
    }
    // Misaligned: if the stride exceeds both sizes and the remainder
    // cannot produce byte overlap, the refs are independent.
    int64_t AbsC = CA > 0 ? CA : -CA;
    int64_t R0 = ((D0 % AbsC) + AbsC) % AbsC;
    if (R0 >= SizeA && AbsC - R0 >= SizeB) {
      DepResult R;
      R.Dependent = false;
      R.Carried = false;
      R.LoopIndependent = false;
      return R;
    }
    return Conservative;
  }

  // General (weak SIV / MIV collapsed to one level): B at iteration y,
  // A at iteration x, dependence iff CB*y - CA*x = -D0 ... equivalently
  // CA*x - CB*y = D0 has a solution in bounds.
  int64_t G = std::gcd(CA < 0 ? -CA : CA, CB < 0 ? -CB : CB);
  if (G != 0) {
    bool AnyByteAligned = false;
    for (int64_t Slack = -(SizeB - 1); Slack <= SizeA - 1; ++Slack)
      if ((D0 + Slack) % G == 0)
        AnyByteAligned = true;
    if (!AnyByteAligned) {
      DepResult R;
      R.Dependent = false;
      R.Carried = false;
      R.LoopIndependent = false;
      return R;
    }
  }
  // Banerjee bounds on CA*x - CB*y for x, y in [0, T-1].
  if (TripCount >= 1) {
    int64_t T = TripCount - 1;
    int64_t LB = (CA < 0 ? CA * T : 0) - (CB > 0 ? CB * T : 0);
    int64_t UB = (CA > 0 ? CA * T : 0) - (CB < 0 ? CB * T : 0);
    if (D0 + SizeA - 1 < LB || D0 - (SizeB - 1) > UB) {
      DepResult R;
      R.Dependent = false;
      R.Carried = false;
      R.LoopIndependent = false;
      return R;
    }
  }
  return Conservative;
}

//===----------------------------------------------------------------------===//
// Conflict-free load marking
//===----------------------------------------------------------------------===//

unsigned dep::markConflictFreeLoads(Function &F,
                                    const DependenceAnalysis *DA) {
  unsigned Marked = 0;
  std::function<void(Block &)> Visit = [&](Block &B) {
    for (Stmt *S : B.Stmts) {
      switch (S->getKind()) {
      case Stmt::IfKind: {
        auto *I = static_cast<IfStmt *>(S);
        Visit(I->getThen());
        Visit(I->getElse());
        break;
      }
      case Stmt::WhileKind:
        Visit(static_cast<WhileStmt *>(S)->getBody());
        break;
      case Stmt::DoLoopKind: {
        auto *D = static_cast<DoLoopStmt *>(S);
        bool Innermost = true;
        forEachStmt(D->getBody(), [&Innermost](const Stmt *Sub) {
          if (Sub->getKind() == Stmt::DoLoopKind ||
              Sub->getKind() == Stmt::WhileKind)
            Innermost = false;
        });
        if (!Innermost) {
          Visit(D->getBody());
          break;
        }
        DepGraphOptions Opts;
        Opts.Analysis = DA;
        LoopDependenceGraph G(F, D, Opts);
        for (unsigned N = 0; N < G.statements().size(); ++N) {
          if (G.statements()[N]->getKind() != Stmt::AssignKind)
            continue;
          bool HasIncomingMemDep = false;
          for (const DepEdge &E : G.edges())
            if (E.Dst == N && (E.Kind == DepKind::Flow ||
                               E.Kind == DepKind::Barrier))
              HasIncomingMemDep = true;
          if (!HasIncomingMemDep) {
            static_cast<AssignStmt *>(G.statements()[N])
                ->setLoadsConflictFree(true);
            ++Marked;
          }
        }
        break;
      }
      default:
        break;
      }
    }
  };
  Visit(F.getBody());
  return Marked;
}

//===----------------------------------------------------------------------===//
// Graph construction
//===----------------------------------------------------------------------===//

LoopDependenceGraph::LoopDependenceGraph(Function &F, DoLoopStmt *Loop,
                                         const DepGraphOptions &Opts)
    : F(F), Loop(Loop), Nest(buildNestContext(F, Loop)) {
  // Trip count for a normalized loop with constant bounds.
  int64_t Init, Limit, Step;
  if (scalar::evaluatesToInt(F, Loop->getInit(), Init) &&
      scalar::evaluatesToInt(F, Loop->getLimit(), Limit) &&
      scalar::evaluatesToInt(F, Loop->getStep(), Step) && Step == 1 &&
      Init == 0)
    Trip = Limit + 1 >= 0 ? Limit + 1 : 0;

  Stmts = Loop->getBody().Stmts;
  Refs.resize(Stmts.size());
  IsBarrier.assign(Stmts.size(), false);
  for (size_t I = 0; I < Stmts.size(); ++I) {
    Refs[I] = collectMemRefs(Stmts[I], Nest);
    if (Stmts[I]->getKind() != Stmt::AssignKind)
      IsBarrier[I] = true;
  }

  buildBarrierEdges();
  buildMemoryEdges(Opts);
  buildScalarEdges();
}

void LoopDependenceGraph::addEdge(unsigned Src, unsigned Dst, DepKind Kind,
                                  bool Carried, bool DistanceKnown,
                                  int64_t Distance) {
  for (const DepEdge &E : Edges)
    if (E.Src == Src && E.Dst == Dst && E.Kind == Kind &&
        E.Carried == Carried)
      return;
  Edges.push_back({Src, Dst, Kind, Carried, DistanceKnown, Distance});
}

void LoopDependenceGraph::buildBarrierEdges() {
  for (unsigned I = 0; I < Stmts.size(); ++I) {
    if (!IsBarrier[I])
      continue;
    addEdge(I, I, DepKind::Barrier, /*Carried=*/true);
    for (unsigned J = 0; J < Stmts.size(); ++J) {
      if (J == I)
        continue;
      addEdge(I, J, DepKind::Barrier, /*Carried=*/true);
      addEdge(J, I, DepKind::Barrier, /*Carried=*/true);
    }
  }
}

void LoopDependenceGraph::buildMemoryEdges(const DepGraphOptions &Opts) {
  AliasContext Ctx;
  Ctx.FortranPointerSemantics =
      Opts.FortranPointerSemantics || F.hasFortranPointerSemantics();
  Ctx.SafeVectorPragma = Opts.SafeVectorPragma || Loop->hasSafeVectorPragma();

  // Route different-base pairs through the facade; build a baseline one
  // when the caller did not supply any (preserves pre-split behavior).
  DependenceAnalysis Baseline(DepAnalysisKind::ReachDef);
  const DependenceAnalysis &DA = Opts.Analysis ? *Opts.Analysis : Baseline;
  AnalysisName = DA.implName();

  for (unsigned I = 0; I < Stmts.size(); ++I) {
    for (unsigned J = I; J < Stmts.size(); ++J) {
      for (const MemRef &RA : Refs[I]) {
        for (const MemRef &RB : Refs[J]) {
          if (!RA.IsWrite && !RB.IsWrite)
            continue;
          if (I == J && &RA == &RB)
            continue;

          DepKind Kind = RA.IsWrite && RB.IsWrite ? DepKind::Output
                         : RA.IsWrite            ? DepKind::Flow
                                                 : DepKind::Anti;

          // Base disambiguation.
          bool SameBase = RA.Addr.Valid && RB.Addr.Valid &&
                          RA.Addr.Base == RB.Addr.Base;
          if (!SameBase) {
            if (DA.alias(RA, RB, Ctx) == AliasVerdict::NoAlias)
              continue; // independent
            // Record the blocking pair for remarks before giving up.
            BlockedPair P;
            P.LocA = RA.S->getLoc();
            P.LocB = RB.S->getLoc();
            if (RA.Site)
              P.RefA = il::printExpr(RA.Site);
            if (RB.Site)
              P.RefB = il::printExpr(RB.Site);
            P.KindA = baseKindName(RA);
            P.KindB = baseKindName(RB);
            P.Impl = DA.implName();
            BlockedPairs.push_back(std::move(P));
            // Conservative: unordered dependence both ways.
            addEdge(I, J, Kind, /*Carried=*/true);
            if (I != J)
              addEdge(J, I, Kind, /*Carried=*/true);
            continue;
          }

          DepResult R = testRefs(RA, RB, Loop->getIndexVar(), Trip);
          if (!R.Dependent)
            continue;
          if (R.DistanceKnown) {
            if (R.Distance > 0)
              addEdge(I, J, Kind, /*Carried=*/true, true, R.Distance);
            else if (R.Distance < 0)
              addEdge(J, I, Kind, /*Carried=*/true, true, -R.Distance);
            else if (I < J)
              addEdge(I, J, Kind, /*Carried=*/false, true, 0);
            else if (J < I)
              addEdge(J, I, Kind, /*Carried=*/false, true, 0);
            // I == J with distance 0: within-statement ordering, no
            // constraint.
          } else {
            // Unknown distance: both directions when carried.
            if (R.Carried) {
              addEdge(I, J, Kind, /*Carried=*/true);
              if (I != J)
                addEdge(J, I, Kind, /*Carried=*/true);
            } else if (R.LoopIndependent && I < J) {
              addEdge(I, J, Kind, /*Carried=*/false);
            } else if (R.LoopIndependent && J < I) {
              addEdge(J, I, Kind, /*Carried=*/false);
            }
          }
        }
      }
    }
  }
}

void LoopDependenceGraph::buildScalarEdges() {
  // Per-statement defs and uses (including nested regions).
  std::vector<std::set<Symbol *>> Defs(Stmts.size());
  std::vector<std::set<Symbol *>> Uses(Stmts.size());
  for (unsigned I = 0; I < Stmts.size(); ++I) {
    auto Note = [&](const Stmt *S) {
      for (Symbol *D : analysis::strongDefs(S))
        Defs[I].insert(D);
      for (Symbol *U : analysis::usedScalars(S))
        Uses[I].insert(U);
    };
    Note(Stmts[I]);
    switch (Stmts[I]->getKind()) {
    case Stmt::IfKind: {
      auto *If = static_cast<IfStmt *>(Stmts[I]);
      forEachStmt(If->getThen(), Note);
      forEachStmt(If->getElse(), Note);
      break;
    }
    case Stmt::WhileKind:
      forEachStmt(static_cast<WhileStmt *>(Stmts[I])->getBody(), Note);
      break;
    case Stmt::DoLoopKind:
      forEachStmt(static_cast<DoLoopStmt *>(Stmts[I])->getBody(), Note);
      break;
    default:
      break;
    }
  }

  Symbol *Idx = Loop->getIndexVar();
  std::set<Symbol *> DefinedInLoop;
  for (auto &D : Defs)
    DefinedInLoop.insert(D.begin(), D.end());
  DefinedInLoop.erase(Idx);

  for (Symbol *V : DefinedInLoop) {
    for (unsigned I = 0; I < Stmts.size(); ++I) {
      for (unsigned J = 0; J < Stmts.size(); ++J) {
        bool DefI = Defs[I].count(V);
        bool UseJ = Uses[J].count(V);
        bool DefJ = Defs[J].count(V);
        if (DefI && UseJ) {
          if (I < J)
            addEdge(I, J, DepKind::Scalar, /*Carried=*/false); // flow
          else
            addEdge(I, J, DepKind::Scalar, /*Carried=*/true); // next iter
        }
        if (UseJ && DefI && I > J) {
          // anti within an iteration: read at J, write at I later.
          addEdge(J, I, DepKind::Scalar, /*Carried=*/false);
        }
        if (DefI && DefJ && I < J) {
          addEdge(I, J, DepKind::Scalar, /*Carried=*/false); // output
          addEdge(J, I, DepKind::Scalar, /*Carried=*/true);
        }
      }
    }
    // Volatile scalars serialize every statement touching them.
    if (V->isVolatile())
      for (unsigned I = 0; I < Stmts.size(); ++I)
        if (Defs[I].count(V) || Uses[I].count(V))
          addEdge(I, I, DepKind::Scalar, /*Carried=*/true);
  }
}

//===----------------------------------------------------------------------===//
// SCC decomposition (Tarjan)
//===----------------------------------------------------------------------===//

std::vector<std::vector<unsigned>>
LoopDependenceGraph::sccsInTopologicalOrder() const {
  unsigned N = static_cast<unsigned>(Stmts.size());
  std::vector<std::vector<unsigned>> Adj(N);
  for (const DepEdge &E : Edges)
    Adj[E.Src].push_back(E.Dst);

  std::vector<int> Index(N, -1), Low(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<unsigned> Stack;
  std::vector<std::vector<unsigned>> Sccs;
  int Counter = 0;

  std::function<void(unsigned)> Strongconnect = [&](unsigned V) {
    Index[V] = Low[V] = Counter++;
    Stack.push_back(V);
    OnStack[V] = true;
    for (unsigned W : Adj[V]) {
      if (Index[W] < 0) {
        Strongconnect(W);
        Low[V] = std::min(Low[V], Low[W]);
      } else if (OnStack[W]) {
        Low[V] = std::min(Low[V], Index[W]);
      }
    }
    if (Low[V] == Index[V]) {
      std::vector<unsigned> Scc;
      unsigned W;
      do {
        W = Stack.back();
        Stack.pop_back();
        OnStack[W] = false;
        Scc.push_back(W);
      } while (W != V);
      std::sort(Scc.begin(), Scc.end());
      Sccs.push_back(std::move(Scc));
    }
  };
  for (unsigned V = 0; V < N; ++V)
    if (Index[V] < 0)
      Strongconnect(V);

  // Tarjan emits components after all their successors: reverse for
  // topological (sources-first) order.
  std::reverse(Sccs.begin(), Sccs.end());
  return Sccs;
}

bool LoopDependenceGraph::sccIsCyclic(const std::vector<unsigned> &Scc) const {
  if (Scc.size() > 1)
    return true;
  for (const DepEdge &E : Edges)
    if (E.Src == Scc[0] && E.Dst == Scc[0])
      return true;
  return false;
}

bool LoopDependenceGraph::hasCarriedDependence(unsigned N) const {
  for (const DepEdge &E : Edges)
    if (E.Carried && (E.Src == N || E.Dst == N))
      return true;
  return false;
}

bool LoopDependenceGraph::hasAnyCarriedDependence() const {
  for (const DepEdge &E : Edges)
    if (E.Carried)
      return true;
  return false;
}
