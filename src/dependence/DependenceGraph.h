//===----------------------------------------------------------------------===//
///
/// \file
/// Data dependence testing and the loop dependence graph.
///
/// Given two normalized references with the same base, dependence is
/// decided with the classic battery: ZIV (constant difference), strong
/// SIV (equal coefficients → exact distance), and the GCD plus Banerjee
/// bound tests for the general case [Bane 76, Alle 83, Wolf 82 in the
/// paper's citations].  Unknown bases and possibly-aliasing pointer bases
/// are conservatively dependent — unless the function carries Fortran
/// pointer semantics or the loop carries a safety pragma, reproducing the
/// paper's Section 9 aliasing discussion.
///
/// The graph's nodes are the top-level statements of a DO loop body; its
/// edges carry kind (flow/anti/output/scalar/barrier), whether the
/// dependence is loop-carried at this level, and the distance when known.
/// Tarjan's algorithm yields the strongly connected components in
/// topological order — the decomposition Allen-Kennedy loop distribution
/// consumes.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_DEPENDENCE_DEPENDENCEGRAPH_H
#define TCC_DEPENDENCE_DEPENDENCEGRAPH_H

#include "dependence/DependenceAnalysis.h"
#include "dependence/MemRef.h"
#include "il/IL.h"

#include <string>
#include <vector>

namespace tcc {
namespace dep {

/// Result of a pairwise dependence test.
struct DepResult {
  bool Dependent = true;
  bool Carried = true;        ///< Loop-carried at the tested level.
  bool LoopIndependent = true;///< Also holds within one iteration.
  bool DistanceKnown = false;
  int64_t Distance = 0; ///< Iterations from source to sink (>0).
};

/// Tests \p A against \p B (same base) at loop level \p Idx whose trip
/// count is \p TripCount (negative when unknown).  Distances are reported
/// from the lexically-earlier access.
DepResult testRefs(const MemRef &A, const MemRef &B, il::Symbol *Idx,
                   int64_t TripCount);

enum class DepKind : uint8_t { Flow, Anti, Output, Scalar, Barrier };

struct DepEdge {
  unsigned Src = 0;
  unsigned Dst = 0;
  DepKind Kind = DepKind::Flow;
  bool Carried = false;
  bool DistanceKnown = false;
  int64_t Distance = 0;
};

struct DepGraphOptions {
  /// Pointer parameters do not alias each other (paper Section 9's
  /// compiler option).
  bool FortranPointerSemantics = false;
  /// The loop carries `#pragma safe`: all memory references in it are
  /// assumed independent unless provably overlapping on the same base.
  bool SafeVectorPragma = false;
  /// The disambiguation facade for different-base reference pairs.  When
  /// null the graph builds its own baseline (reachdef) facade, which
  /// reproduces the pre-split behavior exactly.
  const DependenceAnalysis *Analysis = nullptr;
};

/// A different-base reference pair the facade could not disambiguate —
/// the payload of aliasing "not vectorized" remarks: both source-located
/// sites, their classified base kinds, and which impl blocked.
struct BlockedPair {
  SourceLoc LocA, LocB;
  std::string RefA, RefB;     ///< Printed access expressions.
  const char *KindA = "unknown"; ///< Classified base kinds ("array",
  const char *KindB = "unknown"; ///< "pointer", "unknown").
  const char *Impl = "reachdef"; ///< Which impl answered MayAlias.
};

/// Marks every assignment in an innermost DO loop of \p F whose loads
/// have no incoming flow/barrier dependence: the code generator lets
/// those loads bypass the store queue (paper Section 6).  Returns the
/// number of statements marked.  Run after vectorization and before the
/// depopt rewrites (which preserve the marks but obscure the address
/// forms the analysis needs).  Disambiguates through \p DA when given.
unsigned markConflictFreeLoads(il::Function &F,
                               const DependenceAnalysis *DA = nullptr);

class LoopDependenceGraph {
public:
  LoopDependenceGraph(il::Function &F, il::DoLoopStmt *Loop,
                      const DepGraphOptions &Opts = {});

  const std::vector<il::Stmt *> &statements() const { return Stmts; }
  const std::vector<DepEdge> &edges() const { return Edges; }

  /// Strongly connected components in topological order (sources first).
  /// Each component lists node indices in original statement order.
  std::vector<std::vector<unsigned>> sccsInTopologicalOrder() const;

  /// True if the component has an internal (necessarily carried) edge.
  bool sccIsCyclic(const std::vector<unsigned> &Scc) const;

  /// True if statement \p N participates in any loop-carried dependence.
  bool hasCarriedDependence(unsigned N) const;

  /// True if any edge anywhere in the graph is loop-carried.
  bool hasAnyCarriedDependence() const;

  /// The memory references of statement \p N (for dependence-driven
  /// optimizations).
  const std::vector<MemRef> &refsOf(unsigned N) const { return Refs[N]; }

  const NestContext &nest() const { return Nest; }
  int64_t tripCount() const { return Trip; } ///< -1 when unknown.

  /// The different-base pairs the facade answered MayAlias on — the
  /// aliasing blockers behind any conservative edges, for remarks.
  const std::vector<BlockedPair> &blockedPairs() const {
    return BlockedPairs;
  }

  /// The impl name that answered the alias queries ("reachdef",
  /// "memssa").
  const char *analysisName() const { return AnalysisName; }

private:
  void addEdge(unsigned Src, unsigned Dst, DepKind Kind, bool Carried,
               bool DistanceKnown = false, int64_t Distance = 0);
  void buildMemoryEdges(const DepGraphOptions &Opts);
  void buildScalarEdges();
  void buildBarrierEdges();

  il::Function &F;
  il::DoLoopStmt *Loop;
  NestContext Nest;
  int64_t Trip = -1;
  std::vector<il::Stmt *> Stmts;
  std::vector<std::vector<MemRef>> Refs;
  std::vector<DepEdge> Edges;
  std::vector<bool> IsBarrier;
  std::vector<BlockedPair> BlockedPairs;
  const char *AnalysisName = "reachdef";
};

} // namespace dep
} // namespace tcc

#endif // TCC_DEPENDENCE_DEPENDENCEGRAPH_H
