#include "dependence/DependenceAnalysis.h"

#include "analysis/MemorySSA.h"
#include "analysis/PointsTo.h"

using namespace tcc;
using namespace tcc::il;
using namespace tcc::dep;

const char *dep::depAnalysisKindName(DepAnalysisKind K) {
  switch (K) {
  case DepAnalysisKind::ReachDef:
    return "reachdef";
  case DepAnalysisKind::MemSSA:
    return "memssa";
  }
  return "memssa";
}

bool dep::parseDepAnalysisKind(const std::string &Name,
                               DepAnalysisKind &Out) {
  if (Name == "reachdef") {
    Out = DepAnalysisKind::ReachDef;
    return true;
  }
  if (Name == "memssa") {
    Out = DepAnalysisKind::MemSSA;
    return true;
  }
  return false;
}

const char *dep::baseKindName(const MemRef &R) {
  if (!R.Addr.Valid)
    return "unknown";
  switch (R.Addr.Base.K) {
  case BaseKey::Array:
    return "array";
  case BaseKey::Pointer:
    return "pointer";
  case BaseKey::Unknown:
    return "unknown";
  }
  return "unknown";
}

AliasVerdict dep::reachDefAlias(const MemRef &A, const MemRef &B,
                                const AliasContext &Ctx) {
  bool BothValid = A.Addr.Valid && B.Addr.Valid;
  if (BothValid) {
    const BaseKey &BA = A.Addr.Base;
    const BaseKey &BB = B.Addr.Base;
    bool DistinctArrays = BA.K == BaseKey::Array && BB.K == BaseKey::Array &&
                          BA.Sym != BB.Sym;
    bool DistinctPointers =
        BA.K == BaseKey::Pointer && BB.K == BaseKey::Pointer &&
        BA.Sym != BB.Sym &&
        (Ctx.FortranPointerSemantics || Ctx.SafeVectorPragma);
    bool Mixed = BA.K != BB.K && Ctx.SafeVectorPragma;
    if (DistinctArrays || DistinctPointers || Mixed)
      return AliasVerdict::NoAlias;
  } else if (Ctx.SafeVectorPragma) {
    return AliasVerdict::NoAlias;
  }
  return AliasVerdict::MayAlias;
}

namespace {

class ReachDefImpl : public DependenceAnalysisImpl {
public:
  const char *name() const override { return "reachdef"; }
  AliasVerdict alias(const MemRef &A, const MemRef &B,
                     const AliasContext &Ctx) const override {
    return reachDefAlias(A, B, Ctx);
  }
};

class MemSSAImpl : public DependenceAnalysisImpl {
public:
  MemSSAImpl(const analysis::PointsToInfo *PT,
             const analysis::MemorySSA *MSSA)
      : PT(PT), MSSA(MSSA) {}

  const char *name() const override { return "memssa"; }

  AliasVerdict alias(const MemRef &A, const MemRef &B,
                     const AliasContext &Ctx) const override {
    if (resolveDisjoint(A, B))
      return AliasVerdict::NoAlias;
    // The sets proved nothing: the baseline rules (Fortran semantics,
    // safety pragmas) still apply, so memssa is never less precise.
    return reachDefAlias(A, B, Ctx);
  }

private:
  bool resolveDisjoint(const MemRef &A, const MemRef &B) const {
    // Prefer the read/write-graph accesses when both sites are in it —
    // their may-touch sets already went through the full address
    // resolution — and fall back to resolving the classified bases
    // through the points-to result.
    analysis::PointsToSet SA, SB;
    if (!mayTouch(A, SA) || !mayTouch(B, SB))
      return false;
    return analysis::PointsToSet::provablyDisjoint(SA, SB);
  }

  bool mayTouch(const MemRef &R, analysis::PointsToSet &Out) const {
    if (MSSA && R.Site) {
      if (const analysis::MemorySSA::Access *A =
              MSSA->accessAt(R.Site, R.IsWrite)) {
        Out = A->MayTouch;
        return true;
      }
    }
    if (!R.Addr.Valid || !PT)
      return false;
    const BaseKey &Base = R.Addr.Base;
    if (Base.K == BaseKey::Array) {
      Out.Objects.insert(Base.Sym);
      return true;
    }
    if (Base.K == BaseKey::Pointer) {
      Out = PT->pointsTo(Base.Sym);
      return true;
    }
    return false;
  }

  const analysis::PointsToInfo *PT;
  const analysis::MemorySSA *MSSA;
};

} // namespace

DependenceAnalysis::DependenceAnalysis(DepAnalysisKind K) : Kind(K) {
  rebuildImpl();
}

DependenceAnalysis::DependenceAnalysis(DepAnalysisKind K,
                                       const analysis::PointsToInfo *PT,
                                       const analysis::MemorySSA *MSSA)
    : Kind(K), PT(PT), MSSA(MSSA) {
  rebuildImpl();
}

DependenceAnalysis::~DependenceAnalysis() = default;
DependenceAnalysis::DependenceAnalysis(DependenceAnalysis &&) noexcept =
    default;
DependenceAnalysis &
DependenceAnalysis::operator=(DependenceAnalysis &&) noexcept = default;

void DependenceAnalysis::rebuildImpl() {
  if (Kind == DepAnalysisKind::MemSSA)
    Impl = std::make_unique<MemSSAImpl>(PT, MSSA);
  else
    Impl = std::make_unique<ReachDefImpl>();
}

const char *DependenceAnalysis::implName() const { return Impl->name(); }

void DependenceAnalysis::prepare(const il::Function &F) {
  if (Kind != DepAnalysisKind::MemSSA)
    return;
  if (!PT) {
    OwnedPT = std::make_unique<analysis::PointsToInfo>(
        analysis::computePointsTo(F.getProgram()));
    PT = OwnedPT.get();
    PreparedFor = nullptr; // any previously built MemorySSA used no PT
  }
  if (OwnedMSSA == nullptr || PreparedFor != &F) {
    // Only (re)build the per-function graph when we own it; a borrowed
    // graph is the caller's responsibility to match the function.
    if (!MSSA || OwnedMSSA) {
      OwnedMSSA = std::make_unique<analysis::MemorySSA>(F, *PT);
      MSSA = OwnedMSSA.get();
      PreparedFor = &F;
    }
  }
  rebuildImpl();
}

AliasVerdict DependenceAnalysis::alias(const MemRef &A, const MemRef &B,
                                       const AliasContext &Ctx) const {
  return Impl->alias(A, B, Ctx);
}
