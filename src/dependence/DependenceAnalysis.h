//===----------------------------------------------------------------------===//
///
/// \file
/// The client-facing memory-dependence facade (DESIGN.md §11).
///
/// Every dependence client — the vectorizer, the depopt rewrites, the
/// conflict-free-load marker — asks one question about a pair of
/// references with *different* bases: can they touch the same memory?
/// (Same-base pairs go to the subscript tester, `dep::testRefs`.)  Two
/// implementations answer it, selectable per compile with
/// `-depanalysis={reachdef,memssa}`:
///
///   reachdef   The baseline: syntactic base classification only.
///              Distinct named arrays never alias; distinct pointers and
///              mixed kinds alias unless Fortran pointer semantics or a
///              safety pragma say otherwise.  Exactly the rules the loop
///              dependence graph applied before the split.
///
///   memssa     The precise stack: Andersen points-to sets resolved
///              through the MemorySSA read/write graph.  A pointer base
///              touches only its points-to set, so two pointers into
///              provably different objects are NoAlias even without
///              pragmas or Fortran semantics.  Falls back to the
///              reachdef rules whenever the sets prove nothing, so it is
///              sound whenever reachdef is and never less precise.
///
/// Soundness bar: the two implementations may disagree about *precision*
/// (memssa vectorizes more), never about *results* — the differential
/// suite compiles every corpus program and bench kernel under both and
/// requires byte-identical simulator memory.
///
/// The facade is modeled on dg's DataDependenceAnalysis →
/// DataDependenceAnalysisImpl switch: construction picks the impl, and
/// clients never see which one is behind the call.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_DEPENDENCE_DEPENDENCEANALYSIS_H
#define TCC_DEPENDENCE_DEPENDENCEANALYSIS_H

#include "dependence/MemRef.h"
#include "il/IL.h"

#include <memory>
#include <string>

namespace tcc {
namespace analysis {
class PointsToInfo;
class MemorySSA;
} // namespace analysis

namespace dep {

/// Which DependenceAnalysisImpl answers alias queries.
enum class DepAnalysisKind : uint8_t {
  ReachDef, ///< Baseline syntactic base classification.
  MemSSA,   ///< Points-to + MemorySSA stack (default).
};

/// Stable names: "reachdef" / "memssa".
const char *depAnalysisKindName(DepAnalysisKind K);

/// Parses a `-depanalysis=` value; false on unknown input.
bool parseDepAnalysisKind(const std::string &Name, DepAnalysisKind &Out);

enum class AliasVerdict : uint8_t { NoAlias, MayAlias };

/// The per-query context: the aliasing promises in force at the querying
/// loop (the function's Fortran pointer semantics and the loop's safety
/// pragma, already folded together by the caller).
struct AliasContext {
  bool FortranPointerSemantics = false;
  bool SafeVectorPragma = false;
};

/// One implementation of the pairwise base-disambiguation query.
class DependenceAnalysisImpl {
public:
  virtual ~DependenceAnalysisImpl() = default;

  /// The stable implementation name used in remarks ("reachdef",
  /// "memssa").
  virtual const char *name() const = 0;

  /// May references \p A and \p B (with different bases) touch common
  /// memory?  NoAlias must be a proof; MayAlias is the safe default.
  virtual AliasVerdict alias(const MemRef &A, const MemRef &B,
                             const AliasContext &Ctx) const = 0;
};

/// The facade clients hold.  Owns its analyses on the standalone path
/// (lazily computed per program) or borrows them from the pipeline's
/// AnalysisContext caches.
class DependenceAnalysis {
public:
  /// Standalone: analyses are computed on first \c prepare().
  explicit DependenceAnalysis(DepAnalysisKind K = DepAnalysisKind::MemSSA);

  /// Pipeline path: borrow an already-computed points-to result (and
  /// optionally the current function's MemorySSA).  Both may be null for
  /// ReachDef, which needs neither.
  DependenceAnalysis(DepAnalysisKind K, const analysis::PointsToInfo *PT,
                     const analysis::MemorySSA *MSSA = nullptr);

  ~DependenceAnalysis();
  DependenceAnalysis(DependenceAnalysis &&) noexcept;
  DependenceAnalysis &operator=(DependenceAnalysis &&) noexcept;

  DepAnalysisKind kind() const { return Kind; }
  const char *implName() const;

  /// Ensures the underlying analyses cover \p F's program.  On the
  /// standalone path this computes points-to (whole program) and the
  /// function's MemorySSA once; with borrowed analyses it is a no-op.
  void prepare(const il::Function &F);

  /// The pairwise query; see DependenceAnalysisImpl::alias.
  AliasVerdict alias(const MemRef &A, const MemRef &B,
                     const AliasContext &Ctx) const;

  /// The borrowed or owned analyses (null when not built / ReachDef).
  const analysis::PointsToInfo *pointsTo() const { return PT; }
  const analysis::MemorySSA *memorySSA() const { return MSSA; }

private:
  void rebuildImpl();

  DepAnalysisKind Kind;
  const analysis::PointsToInfo *PT = nullptr;
  const analysis::MemorySSA *MSSA = nullptr;
  std::unique_ptr<analysis::PointsToInfo> OwnedPT;
  std::unique_ptr<analysis::MemorySSA> OwnedMSSA;
  const il::Function *PreparedFor = nullptr;
  std::unique_ptr<DependenceAnalysisImpl> Impl;
};

/// The baseline disambiguation rules, shared by both impls (memssa falls
/// back to them when points-to proves nothing).
AliasVerdict reachDefAlias(const MemRef &A, const MemRef &B,
                           const AliasContext &Ctx);

/// Human-readable base-kind name for remarks: "array", "pointer",
/// "unknown".
const char *baseKindName(const MemRef &R);

} // namespace dep
} // namespace tcc

#endif // TCC_DEPENDENCE_DEPENDENCEANALYSIS_H
