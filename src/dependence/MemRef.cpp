#include "dependence/MemRef.h"

#include "analysis/UseDef.h"

using namespace tcc;
using namespace tcc::il;
using namespace tcc::dep;
using tcc::scalar::LinExpr;

namespace {

/// Linear form over invariants plus loop-index terms.
struct Lin2 {
  bool Valid = false;
  LinExpr Inv = LinExpr::constant(0);
  std::map<Symbol *, int64_t> Idx;

  static Lin2 invalid() { return Lin2(); }
  static Lin2 constant(int64_t C) {
    Lin2 L;
    L.Valid = true;
    L.Inv = LinExpr::constant(C);
    return L;
  }

  Lin2 add(const Lin2 &RHS) const {
    if (!Valid || !RHS.Valid)
      return invalid();
    Lin2 Out;
    Out.Valid = true;
    Out.Inv = Inv.add(RHS.Inv);
    Out.Idx = Idx;
    for (auto &[Sym, C] : RHS.Idx) {
      Out.Idx[Sym] += C;
      if (Out.Idx[Sym] == 0)
        Out.Idx.erase(Sym);
    }
    return Out;
  }
  Lin2 mulConst(int64_t C) const {
    if (!Valid)
      return invalid();
    Lin2 Out;
    Out.Valid = true;
    Out.Inv = Inv.mulConst(C);
    if (C != 0)
      for (auto &[Sym, Coeff] : Idx)
        Out.Idx[Sym] = Coeff * C;
    return Out;
  }
  Lin2 neg() const { return mulConst(-1); }
  bool isConstant(int64_t &Out) const {
    if (!Valid || !Idx.empty() || !Inv.isConstant())
      return false;
    Out = Inv.C0;
    return true;
  }
};

Lin2 evalIndexAddress(IndexExpr *I, const NestContext &Nest);

Lin2 evalLinear(Expr *E, const NestContext &Nest) {
  switch (E->getKind()) {
  case Expr::ConstIntKind:
    return Lin2::constant(static_cast<ConstIntExpr *>(E)->getValue());
  case Expr::VarRefKind: {
    Symbol *Sym = static_cast<VarRefExpr *>(E)->getSymbol();
    if (Sym->isVolatile())
      return Lin2::invalid();
    Lin2 Out;
    Out.Valid = true;
    if (Nest.isIndex(Sym)) {
      Out.Idx[Sym] = 1;
      return Out;
    }
    if (!Nest.isInvariant(Sym))
      return Lin2::invalid();
    if (Sym->getType()->isFloating())
      return Lin2::invalid();
    Out.Inv = LinExpr::entry(Sym);
    return Out;
  }
  case Expr::BinaryKind: {
    auto *B = static_cast<BinaryExpr *>(E);
    Lin2 L = evalLinear(B->getLHS(), Nest);
    Lin2 R = evalLinear(B->getRHS(), Nest);
    switch (B->getOp()) {
    case OpCode::Add:
      return L.add(R);
    case OpCode::Sub:
      return L.add(R.neg());
    case OpCode::Mul: {
      int64_t C;
      if (L.isConstant(C))
        return R.mulConst(C);
      if (R.isConstant(C))
        return L.mulConst(C);
      return Lin2::invalid();
    }
    default:
      return Lin2::invalid();
    }
  }
  case Expr::UnaryKind: {
    auto *U = static_cast<UnaryExpr *>(E);
    if (U->getOp() == OpCode::Neg)
      return evalLinear(U->getOperand(), Nest).neg();
    return Lin2::invalid();
  }
  case Expr::CastKind: {
    auto *C = static_cast<CastExpr *>(E);
    bool FromWide = C->getOperand()->getType()->isInt() ||
                    C->getOperand()->getType()->isPointer();
    bool ToWide = C->getType()->isInt() || C->getType()->isPointer();
    if (FromWide && ToWide)
      return evalLinear(C->getOperand(), Nest);
    return Lin2::invalid();
  }
  case Expr::AddrOfKind: {
    auto *A = static_cast<AddrOfExpr *>(E);
    Expr *LV = A->getLValue();
    if (LV->getKind() == Expr::VarRefKind) {
      Symbol *Sym = static_cast<VarRefExpr *>(LV)->getSymbol();
      if (Sym->isVolatile())
        return Lin2::invalid();
      Lin2 Out;
      Out.Valid = true;
      Out.Inv = LinExpr::addr(Sym);
      return Out;
    }
    // &arr[e...]: the element's byte address.
    if (LV->getKind() == Expr::IndexKind)
      return evalIndexAddress(static_cast<IndexExpr *>(LV), Nest);
    // &*(p + e): taking the address of a dereference is the address
    // expression itself (lowering produces this for &p[i] on pointers).
    if (LV->getKind() == Expr::DerefKind)
      return evalLinear(static_cast<DerefExpr *>(LV)->getAddr(), Nest);
    return Lin2::invalid();
  }
  default:
    return Lin2::invalid();
  }
}

/// Byte strides for each subscript of an array type, outermost first.
std::vector<int64_t> arrayStrides(const Type *ArrTy, size_t NumSubs) {
  std::vector<int64_t> Strides(NumSubs, 0);
  const Type *Cur = ArrTy;
  for (size_t I = 0; I < NumSubs; ++I) {
    if (!Cur->isArray())
      return {};
    Strides[I] = Cur->getElementType()->isArray() ||
                         !Cur->getElementType()->isVoid()
                     ? Cur->getElementType()->getSizeInBytes()
                     : 0;
    Cur = Cur->getElementType();
  }
  return Strides;
}

/// Computes the byte address of an Index expression as a Lin2 form.
Lin2 evalIndexAddress(IndexExpr *I, const NestContext &Nest) {
  Expr *Base = I->getBase();
  Lin2 BaseAddr;
  const Type *BaseTy = Base->getType();
  if (Base->getKind() == Expr::VarRefKind && BaseTy->isArray()) {
    Symbol *Arr = static_cast<VarRefExpr *>(Base)->getSymbol();
    if (Arr->isVolatile())
      return Lin2::invalid();
    BaseAddr.Valid = true;
    BaseAddr.Inv = LinExpr::addr(Arr);
  } else if (Base->getKind() == Expr::DerefKind && BaseTy->isArray()) {
    BaseAddr = evalLinear(static_cast<DerefExpr *>(Base)->getAddr(), Nest);
  } else {
    return Lin2::invalid();
  }
  std::vector<int64_t> Strides =
      arrayStrides(BaseTy, I->getSubscripts().size());
  if (Strides.empty())
    return Lin2::invalid();
  Lin2 Out = BaseAddr;
  for (size_t K = 0; K < I->getSubscripts().size(); ++K) {
    Lin2 Sub = evalLinear(I->getSubscripts()[K], Nest);
    Out = Out.add(Sub.mulConst(Strides[K]));
  }
  return Out;
}

/// Classifies the base object out of the invariant part.
AddrForm classify(Lin2 L) {
  AddrForm Out;
  if (!L.Valid) {
    Out.Valid = false;
    return Out;
  }
  // Exactly one address-of term with coefficient 1 → named array base.
  scalar::LinTerm BaseTerm;
  int AddrTerms = 0;
  int PtrTerms = 0;
  scalar::LinTerm PtrTerm;
  for (const auto &[Term, Coeff] : L.Inv.Coeffs) {
    if (Term.IsAddr) {
      ++AddrTerms;
      if (Coeff == 1)
        BaseTerm = Term;
      else
        AddrTerms = 99; // disqualify
    } else if (Term.Sym->getType()->isPointer()) {
      ++PtrTerms;
      if (Coeff == 1)
        PtrTerm = Term;
      else
        PtrTerms = 99;
    }
  }
  if (AddrTerms == 1 && PtrTerms == 0) {
    Out.Valid = true;
    Out.Base.K = BaseKey::Array;
    Out.Base.Sym = BaseTerm.Sym;
    Out.Offset = L.Inv;
    Out.Offset.Coeffs.erase(BaseTerm);
    Out.IdxCoeffs = std::move(L.Idx);
    return Out;
  }
  if (PtrTerms == 1 && AddrTerms == 0) {
    Out.Valid = true;
    Out.Base.K = BaseKey::Pointer;
    Out.Base.Sym = PtrTerm.Sym;
    Out.Offset = L.Inv;
    Out.Offset.Coeffs.erase(PtrTerm);
    Out.IdxCoeffs = std::move(L.Idx);
    return Out;
  }
  Out.Valid = false;
  return Out;
}

void collectFromExpr(Stmt *S, Expr *E, bool IsStoreTarget,
                     const NestContext &Nest, std::vector<MemRef> &Out) {
  switch (E->getKind()) {
  case Expr::DerefKind: {
    auto *D = static_cast<DerefExpr *>(E);
    // Subscript/address loads first (they are reads even under a store).
    collectFromExpr(S, D->getAddr(), /*IsStoreTarget=*/false, Nest, Out);
    MemRef Ref;
    Ref.S = S;
    Ref.Site = E;
    Ref.IsWrite = IsStoreTarget;
    Ref.Size = D->getType()->isArray() ? 0 : D->getType()->getSizeInBytes();
    Ref.Addr = classify(evalLinear(D->getAddr(), Nest));
    if (D->getType()->isArray())
      Ref.Addr.Valid = false; // row address, not an element access
    else
      Out.push_back(Ref);
    return;
  }
  case Expr::IndexKind: {
    auto *I = static_cast<IndexExpr *>(E);
    for (Expr *Sub : I->getSubscripts())
      collectFromExpr(S, Sub, /*IsStoreTarget=*/false, Nest, Out);
    if (I->getBase()->getKind() == Expr::DerefKind)
      collectFromExpr(S, static_cast<DerefExpr *>(I->getBase())->getAddr(),
                      false, Nest, Out);
    MemRef Ref;
    Ref.S = S;
    Ref.Site = E;
    Ref.IsWrite = IsStoreTarget;
    Ref.Size = I->getType()->getSizeInBytes();
    Ref.Addr = classify(evalIndexAddress(I, Nest));
    Out.push_back(Ref);
    return;
  }
  case Expr::BinaryKind: {
    auto *B = static_cast<BinaryExpr *>(E);
    collectFromExpr(S, B->getLHS(), false, Nest, Out);
    collectFromExpr(S, B->getRHS(), false, Nest, Out);
    return;
  }
  case Expr::UnaryKind:
    collectFromExpr(S, static_cast<UnaryExpr *>(E)->getOperand(), false,
                    Nest, Out);
    return;
  case Expr::CastKind:
    collectFromExpr(S, static_cast<CastExpr *>(E)->getOperand(), false, Nest,
                    Out);
    return;
  case Expr::AddrOfKind: {
    // Taking an address is not an access, but subscripts inside are reads.
    Expr *LV = static_cast<AddrOfExpr *>(E)->getLValue();
    if (LV->getKind() == Expr::IndexKind)
      for (Expr *Sub : static_cast<IndexExpr *>(LV)->getSubscripts())
        collectFromExpr(S, Sub, false, Nest, Out);
    return;
  }
  case Expr::TripletKind: {
    auto *T = static_cast<TripletExpr *>(E);
    collectFromExpr(S, T->getLo(), false, Nest, Out);
    collectFromExpr(S, T->getHi(), false, Nest, Out);
    collectFromExpr(S, T->getStride(), false, Nest, Out);
    return;
  }
  case Expr::ConstIntKind:
  case Expr::ConstFloatKind:
  case Expr::VarRefKind:
    return;
  }
}

} // namespace

NestContext dep::buildNestContext(Function &F, DoLoopStmt *Loop,
                                  const std::vector<DoLoopStmt *> &Enclosing) {
  NestContext Nest;
  for (DoLoopStmt *Outer : Enclosing)
    Nest.IndexVars.push_back(Outer->getIndexVar());
  Nest.IndexVars.push_back(Loop->getIndexVar());

  // Scalars mutated inside the *outermost* analyzed region.
  Block &Region = Enclosing.empty() ? Loop->getBody()
                                    : Enclosing.front()->getBody();
  forEachStmt(Region, [&Nest](Stmt *S) {
    for (Symbol *Sym : analysis::strongDefs(S))
      Nest.MutatedScalars.insert(Sym);
  });
  for (Symbol *Idx : Nest.IndexVars)
    Nest.MutatedScalars.erase(Idx);
  return Nest;
}

AddrForm dep::normalizeAddress(Expr *Addr, const NestContext &Nest) {
  return classify(evalLinear(Addr, Nest));
}

std::vector<MemRef> dep::collectMemRefs(Stmt *S, const NestContext &Nest) {
  std::vector<MemRef> Out;
  switch (S->getKind()) {
  case Stmt::AssignKind: {
    auto *A = static_cast<AssignStmt *>(S);
    if (A->getLHS()->getKind() == Expr::VarRefKind) {
      // Scalar target: only RHS loads.
    } else {
      collectFromExpr(S, A->getLHS(), /*IsStoreTarget=*/true, Nest, Out);
    }
    collectFromExpr(S, A->getRHS(), false, Nest, Out);
    return Out;
  }
  default:
    forEachExprSlot(S, [&](Expr *&Slot) {
      collectFromExpr(S, Slot, false, Nest, Out);
    });
    return Out;
  }
}
