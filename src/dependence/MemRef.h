//===----------------------------------------------------------------------===//
///
/// \file
/// Memory-reference normalization for dependence analysis.
///
/// C programs reference memory through explicit subscripts (`a[i]`), star
/// expressions over pointers (`*(p + 4*i)`), and address constants
/// (`*(&a + 4*i)`); the paper notes that handling the star forms "did
/// require some special tuning in the vectorizer".  This module normalizes
/// every reference in a loop nest to
///
///     base  +  invariant-offset  +  Σ coeff_i · index_i      (bytes)
///
/// where base identifies the memory object (a named array, or a
/// loop-invariant pointer), the invariant offset is a linear form over
/// loop-invariant scalars, and each enclosing loop index gets an integer
/// byte coefficient.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_DEPENDENCE_MEMREF_H
#define TCC_DEPENDENCE_MEMREF_H

#include "il/IL.h"
#include "scalar/LinearValues.h"

#include <map>
#include <set>
#include <vector>

namespace tcc {
namespace dep {

/// Identity of the referenced memory object.
struct BaseKey {
  enum Kind {
    Array,   ///< A named array symbol (direct or through `&arr + ...`).
    Pointer, ///< A loop-invariant pointer variable.
    Unknown, ///< Could not be classified; aliases everything.
  };
  Kind K = Unknown;
  il::Symbol *Sym = nullptr;

  bool operator==(const BaseKey &RHS) const {
    return K == RHS.K && Sym == RHS.Sym;
  }
};

/// A normalized address: base + Offset + Σ IdxCoeffs[i]·i (bytes).
struct AddrForm {
  bool Valid = false;
  BaseKey Base;
  scalar::LinExpr Offset; ///< Invariant part (no base, no index terms).
  std::map<il::Symbol *, int64_t> IdxCoeffs;

  int64_t coeffOf(il::Symbol *Idx) const {
    auto It = IdxCoeffs.find(Idx);
    return It == IdxCoeffs.end() ? 0 : It->second;
  }
};

/// One memory reference inside a statement.
struct MemRef {
  il::Stmt *S = nullptr;
  const il::Expr *Site = nullptr; ///< The Deref/Index expression itself.
  bool IsWrite = false;
  int64_t Size = 0; ///< Element size in bytes.
  AddrForm Addr;
};

/// The analysis context for a loop nest: which symbols are loop indices
/// and which are invariant.
struct NestContext {
  std::vector<il::Symbol *> IndexVars;    ///< Outermost first.
  std::set<il::Symbol *> MutatedScalars;  ///< Assigned inside the nest.

  bool isIndex(il::Symbol *Sym) const {
    for (il::Symbol *I : IndexVars)
      if (I == Sym)
        return true;
    return false;
  }
  bool isInvariant(il::Symbol *Sym) const {
    return !isIndex(Sym) && !MutatedScalars.count(Sym);
  }
};

/// Builds the nest context for \p Loop (and its enclosing loops, if the
/// caller passes them in \p Enclosing, outermost first).
NestContext buildNestContext(il::Function &F, il::DoLoopStmt *Loop,
                             const std::vector<il::DoLoopStmt *> &Enclosing =
                                 {});

/// Normalizes the address expression \p Addr (a pointer-typed expression)
/// into an AddrForm.  Returns Valid=false when the address is not linear
/// in the nest's indices and invariants.
AddrForm normalizeAddress(il::Expr *Addr, const NestContext &Nest);

/// Collects every memory reference (Deref and Index, loads and the store)
/// in \p S.  References that cannot be normalized get Valid=false with
/// Base Unknown.
std::vector<MemRef> collectMemRefs(il::Stmt *S, const NestContext &Nest);

} // namespace dep
} // namespace tcc

#endif // TCC_DEPENDENCE_MEMREF_H
