#include "vector/Vectorize.h"

#include "analysis/UseDef.h"
#include "dependence/DependenceGraph.h"
#include "scalar/Fold.h"
#include "scalar/LinearValues.h"

#include <algorithm>
#include <set>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::vec;
using tcc::dep::BaseKey;
using tcc::dep::BlockedPair;
using tcc::dep::DepGraphOptions;
using tcc::dep::LoopDependenceGraph;
using tcc::dep::MemRef;

namespace {

class Vectorizer {
public:
  Vectorizer(Function &F, const VectorizeOptions &Opts)
      : F(F), Opts(Opts), IntTy(F.getProgram().getTypes().getIntType()) {}

  VectorizeStats run() {
    visitBlock(F.getBody());
    return Stats;
  }

private:
  //===--------------------------------------------------------------------===//
  // Traversal
  //===--------------------------------------------------------------------===//

  void visitBlock(Block &B) {
    for (size_t I = 0; I < B.Stmts.size(); ++I) {
      Stmt *S = B.Stmts[I];
      switch (S->getKind()) {
      case Stmt::IfKind: {
        auto *If = static_cast<IfStmt *>(S);
        visitBlock(If->getThen());
        visitBlock(If->getElse());
        break;
      }
      case Stmt::WhileKind:
        visitBlock(static_cast<WhileStmt *>(S)->getBody());
        break;
      case Stmt::DoLoopKind: {
        auto *D = static_cast<DoLoopStmt *>(S);
        if (containsLoop(D->getBody())) {
          // Descending into a parallel region (e.g. a spread outer
          // loop): inner loops still vectorize, but must not open a
          // nested parallel region — the simulator's PARBEGIN stack
          // would shrink the same cycles twice.
          if (D->isParallel())
            ++ParallelDepth;
          visitBlock(D->getBody());
          if (D->isParallel())
            --ParallelDepth;
          break;
        }
        // Innermost loop: attempt vectorization.
        std::vector<Stmt *> Replacement;
        if (vectorizeInnermost(D, Replacement)) {
          B.Stmts.erase(B.Stmts.begin() + static_cast<long>(I));
          B.Stmts.insert(B.Stmts.begin() + static_cast<long>(I),
                         Replacement.begin(), Replacement.end());
          I += Replacement.size() - 1;
        }
        break;
      }
      default:
        break;
      }
    }
  }

  /// Parallel marks are allowed only outside any enclosing parallel
  /// loop.  The loop currently being *replaced* is not its own ancestor:
  /// a spread innermost loop that vectorizes hands its mark to the strip
  /// loop that takes its place.
  bool allowParallel() const { return Opts.EnableParallel && ParallelDepth == 0; }

  static bool containsLoop(const Block &B) {
    bool Found = false;
    forEachStmt(B, [&Found](const Stmt *S) {
      if (S->getKind() == Stmt::DoLoopKind || S->getKind() == Stmt::WhileKind)
        Found = true;
    });
    return Found;
  }

  //===--------------------------------------------------------------------===//
  // Innermost loop vectorization
  //===--------------------------------------------------------------------===//

  bool isNormalized(DoLoopStmt *D) const {
    auto IsConst = [](Expr *E, int64_t V) {
      return E->getKind() == Expr::ConstIntKind &&
             static_cast<ConstIntExpr *>(E)->getValue() == V;
    };
    return IsConst(D->getInit(), 0) && IsConst(D->getStep(), 1);
  }

  void remarkMissed(DoLoopStmt *D, const std::string &Reason) {
    if (Opts.Remarks)
      Opts.Remarks->missed("vectorize", D->getLoc(),
                           "not vectorized: " + Reason);
  }

  /// The structured payload of an aliasing miss: the conflicting access
  /// pair closest to \p Loc among the graph's blocked pairs (both sites
  /// source-located and classified by base kind), plus which dependence
  /// analysis impl answered MayAlias.  Empty when nothing was blocked by
  /// aliasing.
  static std::vector<std::pair<std::string, std::string>>
  aliasArgs(const LoopDependenceGraph &Graph, SourceLoc Loc) {
    const auto &Pairs = Graph.blockedPairs();
    if (Pairs.empty())
      return {};
    const BlockedPair *Best = &Pairs.front();
    for (const BlockedPair &P : Pairs)
      if (P.LocA == Loc || P.LocB == Loc) {
        Best = &P;
        break;
      }
    return {{"impl", Best->Impl},       {"refA", Best->RefA},
            {"kindA", Best->KindA},     {"locA", Best->LocA.str()},
            {"refB", Best->RefB},       {"kindB", Best->KindB},
            {"locB", Best->LocB.str()}};
  }

  bool vectorizeInnermost(DoLoopStmt *D, std::vector<Stmt *> &Out) {
    ++Stats.LoopsConsidered;
    if (!isNormalized(D) || D->getBody().empty()) {
      remarkMissed(D, D->getBody().empty()
                          ? "loop body is empty"
                          : "loop is not in normalized DO form");
      return false;
    }

    DepGraphOptions DepOpts;
    DepOpts.FortranPointerSemantics = Opts.FortranPointerSemantics;
    DepOpts.Analysis = Opts.DepAnalysis;
    LoopDependenceGraph Graph(F, D, DepOpts);

    auto Sccs = Graph.sccsInTopologicalOrder();

    // Which statements can become vector statements?
    std::set<Symbol *> DefinedInLoop;
    forEachStmt(D->getBody(), [&DefinedInLoop](Stmt *S) {
      for (Symbol *Sym : analysis::strongDefs(S))
        DefinedInLoop.insert(Sym);
    });
    DefinedInLoop.erase(D->getIndexVar());

    // Value uses of the loop index must map onto vector operations:
    // +, -, *, / and negation/casts over affine pieces.  `i % 4` or
    // `i << 1` as a value has no vector form here.
    std::function<bool(Expr *, Symbol *)> UsesIdx = [&](Expr *E,
                                                        Symbol *Idx) {
      bool Found = false;
      Expr *Slot = E;
      forEachSubExprSlot(Slot, [&](Expr *&Sub) {
        if (Sub->getKind() == Expr::VarRefKind &&
            static_cast<VarRefExpr *>(Sub)->getSymbol() == Idx)
          Found = true;
      });
      return Found;
    };
    std::function<bool(Expr *, Symbol *)> ValueVectorizable =
        [&](Expr *E, Symbol *Idx) -> bool {
      if (!UsesIdx(E, Idx))
        return true; // broadcast scalar
      switch (E->getKind()) {
      case Expr::VarRefKind:
        return true; // the index itself: iota
      case Expr::DerefKind:
      case Expr::IndexKind:
        return true; // affine address already validated via MemRef
      case Expr::BinaryKind: {
        auto *B = static_cast<BinaryExpr *>(E);
        switch (B->getOp()) {
        case OpCode::Add:
        case OpCode::Sub:
        case OpCode::Mul:
        case OpCode::Div:
          return ValueVectorizable(B->getLHS(), Idx) &&
                 ValueVectorizable(B->getRHS(), Idx);
        default:
          return false;
        }
      }
      case Expr::UnaryKind: {
        auto *U = static_cast<UnaryExpr *>(E);
        return U->getOp() == OpCode::Neg &&
               ValueVectorizable(U->getOperand(), Idx);
      }
      case Expr::CastKind:
        return ValueVectorizable(static_cast<CastExpr *>(E)->getOperand(),
                                 Idx);
      default:
        return false;
      }
    };

    // Why a single acyclic statement cannot become a vector statement;
    // empty when it can.  The reasons feed the optimization remarks.
    auto WhyNotVectorizable = [&](unsigned N) -> std::string {
      Stmt *S = Graph.statements()[N];
      if (S->getKind() != Stmt::AssignKind)
        return "statement is not an assignment";
      auto *A = static_cast<AssignStmt *>(S);
      // The target must be a memory reference varying with the index.
      if (A->getLHS()->getKind() == Expr::VarRefKind)
        return "assigns scalar '" +
               static_cast<VarRefExpr *>(A->getLHS())->getSymbol()->getName() +
               "'";
      const auto &Refs = Graph.refsOf(N);
      for (const MemRef &R : Refs)
        if (!R.Addr.Valid)
          return "memory reference is not affine in the loop index "
                 "(possible aliasing)";
      bool LhsVaries = false;
      for (const MemRef &R : Refs)
        if (R.IsWrite && R.Addr.coeffOf(D->getIndexVar()) != 0)
          LhsVaries = true;
      if (!LhsVaries)
        return "store does not vary with the loop index";
      // No scalar flowing from other statements in the loop (would need
      // scalar expansion), and no volatile access.
      for (Symbol *Used : analysis::usedScalars(S))
        if (DefinedInLoop.count(Used))
          return "scalar '" + Used->getName() +
                 "' assigned in the loop flows into the statement";
      if (exprReadsVolatile(A->getRHS()) || exprReadsVolatile(A->getLHS()))
        return "volatile access";
      if (!ValueVectorizable(A->getRHS(), D->getIndexVar()))
        return "value use of the loop index has no vector form";
      return {};
    };

    // Names the recurrence that keeps an SCC cyclic, preferring a scalar
    // (the paper's `s` in the backsolve example) over an array base.
    auto CyclicReason = [&](const std::vector<unsigned> &Scc) -> std::string {
      for (unsigned N : Scc)
        for (Symbol *Def : analysis::strongDefs(Graph.statements()[N]))
          if (Def != D->getIndexVar())
            return "cyclic dependence on '" + Def->getName() + "'";
      for (unsigned N : Scc)
        for (const MemRef &R : Graph.refsOf(N))
          if (R.IsWrite && R.Addr.Base.K == BaseKey::Array && R.Addr.Base.Sym)
            return "cyclic dependence on '" + R.Addr.Base.Sym->getName() +
                   "'";
      return "cyclic dependence between statements";
    };

    // Plan: each SCC is either a vector statement or part of a serial run.
    struct Piece {
      bool Vector = false;
      std::vector<unsigned> Nodes; ///< Serial pieces may merge SCCs.
    };
    std::vector<Piece> Pieces;
    // (loc, reason) per serial SCC, for the remarks.
    std::vector<std::pair<SourceLoc, std::string>> SerialReasons;
    for (const auto &Scc : Sccs) {
      std::string Why;
      if (Graph.sccIsCyclic(Scc) || Scc.size() != 1)
        Why = CyclicReason(Scc);
      else
        Why = WhyNotVectorizable(Scc[0]);
      bool Vector = Why.empty();
      if (!Vector)
        SerialReasons.emplace_back(Graph.statements()[Scc[0]]->getLoc(),
                                   Why);
      if (Vector) {
        Pieces.push_back({true, Scc});
      } else if (!Pieces.empty() && !Pieces.back().Vector) {
        // Merge consecutive serial components (order is topological, so
        // concatenation preserves all dependences).
        Pieces.back().Nodes.insert(Pieces.back().Nodes.end(), Scc.begin(),
                                   Scc.end());
      } else {
        Pieces.push_back({false, Scc});
      }
    }

    bool AnyVector = false;
    for (const Piece &P : Pieces)
      AnyVector |= P.Vector;
    if (!AnyVector) {
      // Nothing vectorizes; the loop may still spread across processors
      // when no dependence is carried between iterations (paper
      // Section 2's multiprocessor spreading).  Scalars assigned inside
      // are per-iteration values (the paper allocates such variables "to
      // local memory within parallel loops"); the machine privatizes
      // them by construction.
      if (allowParallel() && !D->isParallel()) {
        bool Spreadable = true;
        for (unsigned N = 0; N < Graph.statements().size(); ++N)
          if (Graph.statements()[N]->getKind() != Stmt::AssignKind ||
              Graph.hasCarriedDependence(N))
            Spreadable = false;
        if (Spreadable && !Graph.statements().empty()) {
          D->setParallel(true);
          ++Stats.SpreadSerialLoops;
          ++Stats.ParallelLoops;
          if (Opts.Remarks)
            Opts.Remarks->applied("vectorize", D->getLoc(),
                                  "loop spread across processors (no "
                                  "dependence carried between iterations)");
        }
      }
      if (Opts.Remarks) {
        std::string Reason = SerialReasons.empty()
                                 ? "no vectorizable statement"
                                 : SerialReasons.front().second;
        SourceLoc ArgLoc = SerialReasons.empty() ? D->getLoc()
                                                 : SerialReasons.front().first;
        Opts.Remarks->missed("vectorize", D->getLoc(),
                             "not vectorized: " + Reason,
                             aliasArgs(Graph, ArgLoc));
      }
      return false; // structure unchanged
    }

    ++Stats.LoopsVectorized;
    if (Pieces.size() > 1)
      ++Stats.LoopsDistributed;

    if (Opts.Remarks) {
      unsigned NVec = 0;
      for (const Piece &P : Pieces)
        NVec += P.Vector;
      int64_t Trip = Graph.tripCount();
      bool Strip =
          Opts.StripLength > 0 && (Trip < 0 || Trip > Opts.StripLength);
      int64_t VL = Strip ? Opts.StripLength : Trip;
      std::string Msg = "loop vectorized";
      if (Pieces.size() > 1)
        Msg += " (distributed: " + std::to_string(NVec) + " vector, " +
               std::to_string(Pieces.size() - NVec) + " serial piece(s))";
      if (VL > 0)
        Msg += ", VL=" + std::to_string(VL);
      Opts.Remarks->applied("vectorize", D->getLoc(), Msg);
      // The statements left behind in serial pieces, each with its
      // blocking reason.
      for (const auto &[Loc, Why] : SerialReasons)
        Opts.Remarks->missed("vectorize", Loc,
                             "statement not vectorized: " + Why,
                             aliasArgs(Graph, Loc));
    }

    for (const Piece &P : Pieces) {
      if (!P.Vector) {
        // Serial piece: a DO loop over the same range with these
        // statements in original order.
        auto *Serial = F.create<DoLoopStmt>(
            D->getLoc(), D->getIndexVar(), F.cloneExpr(D->getInit()),
            F.cloneExpr(D->getLimit()), F.cloneExpr(D->getStep()));
        std::vector<unsigned> Ordered = P.Nodes;
        std::sort(Ordered.begin(), Ordered.end());
        for (unsigned N : Ordered)
          Serial->getBody().Stmts.push_back(Graph.statements()[N]);
        // Scalar spreading (paper Section 2): a piece that failed to
        // vectorize for *operational* reasons (a value computation with
        // no vector form) but carries no dependence between iterations
        // can still be spread across processors.
        if (allowParallel()) {
          bool Spreadable = true;
          for (unsigned N : Ordered) {
            Stmt *S = Graph.statements()[N];
            if (S->getKind() != Stmt::AssignKind ||
                Graph.hasCarriedDependence(N))
              Spreadable = false;
          }
          if (Spreadable) {
            Serial->setParallel(true);
            ++Stats.SpreadSerialLoops;
            ++Stats.ParallelLoops;
          }
        }
        Out.push_back(Serial);
        ++Stats.SerialLoops;
        continue;
      }
      emitVectorPiece(D, static_cast<AssignStmt *>(
                             Graph.statements()[P.Nodes[0]]),
                      Graph, P.Nodes[0], Out);
    }
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Vector statement emission
  //===--------------------------------------------------------------------===//

  /// Rewrites 1-D named-array references in \p S into explicit subscript
  /// form `arr[linear(index)]` so the vector statement prints and executes
  /// in the paper's colon notation.
  void canonicalizeRefs(AssignStmt *S, DoLoopStmt *D,
                        const dep::NestContext &Nest) {
    auto Rewrite = [&](Expr *&Slot) {
      forEachSubExprSlot(Slot, [&](Expr *&Sub) {
        if (Sub->getKind() != Expr::DerefKind)
          return;
        auto *Dr = static_cast<DerefExpr *>(Sub);
        dep::AddrForm Addr = dep::normalizeAddress(Dr->getAddr(), Nest);
        if (!Addr.Valid || Addr.Base.K != BaseKey::Array)
          return;
        Symbol *Arr = Addr.Base.Sym;
        const Type *ArrTy = Arr->getType();
        if (!ArrTy->isArray() || ArrTy->getElementType()->isArray())
          return; // only 1-D arrays canonicalize
        int64_t ES = ArrTy->getElementType()->getSizeInBytes();
        if (Addr.Offset.C0 % ES != 0)
          return;
        for (const auto &[Term, Coeff] : Addr.Offset.Coeffs)
          if (Coeff % ES != 0)
            return;
        for (const auto &[Idx, Coeff] : Addr.IdxCoeffs)
          if (Coeff % ES != 0)
            return;
        // subscript = Offset/ES + Σ (coeff/ES)·idx.
        scalar::LinExpr Scaled = Addr.Offset;
        Scaled.C0 /= ES;
        for (auto &[Term, Coeff] : Scaled.Coeffs)
          Coeff /= ES;
        Expr *SubExpr = scalar::linToExpr(F, Scaled, IntTy);
        for (const auto &[Idx, Coeff] : Addr.IdxCoeffs) {
          Expr *TermE = F.makeVarRef(Idx);
          if (Coeff / ES != 1)
            TermE = F.makeBinary(OpCode::Mul,
                                 F.makeIntConst(IntTy, Coeff / ES), TermE,
                                 IntTy);
          SubExpr = F.makeBinary(OpCode::Add, SubExpr, TermE, IntTy);
        }
        SubExpr = scalar::foldExpr(F, SubExpr);
        Sub = F.create<IndexExpr>(Dr->getType(), F.makeVarRef(Arr),
                                  std::vector<Expr *>{SubExpr});
      });
    };
    Rewrite(S->lhsSlot());
    Rewrite(S->rhsSlot());
  }

  /// Bubbles triplets outward through affine arithmetic so each vector
  /// memory reference carries a single top-level triplet:
  /// `1 + vi:vr:1` becomes `1+vi : 1+vr : 1`, and `p + 4*(vi:vr:1)`
  /// becomes `p+4vi : p+4vr : 4`.
  Expr *bubble(Expr *E) {
    switch (E->getKind()) {
    case Expr::BinaryKind: {
      auto *B = static_cast<BinaryExpr *>(E);
      Expr *L = bubble(B->getLHS());
      Expr *R = bubble(B->getRHS());
      bool LT = L->getKind() == Expr::TripletKind;
      bool RT = R->getKind() == Expr::TripletKind;
      OpCode Op = B->getOp();
      auto mk = [&](Expr *Lo, Expr *Hi, Expr *Stride) {
        return F.create<TripletExpr>(B->getType(),
                                     scalar::foldExpr(F, Lo),
                                     scalar::foldExpr(F, Hi),
                                     scalar::foldExpr(F, Stride));
      };
      auto bin = [&](Expr *A2, Expr *B2) {
        return F.makeBinary(Op, A2, B2, B->getType());
      };
      if ((Op == OpCode::Add || Op == OpCode::Sub || Op == OpCode::Mul) &&
          (LT || RT)) {
        if (LT && RT) {
          auto *TL = static_cast<TripletExpr *>(L);
          auto *TR = static_cast<TripletExpr *>(R);
          if (Op == OpCode::Add || Op == OpCode::Sub)
            return mk(bin(TL->getLo(), TR->getLo()),
                      bin(TL->getHi(), TR->getHi()),
                      bin(TL->getStride(), TR->getStride()));
        } else if (LT) {
          auto *T = static_cast<TripletExpr *>(L);
          Expr *Stride = T->getStride();
          if (Op == OpCode::Mul)
            Stride = bin(Stride, F.cloneExpr(R));
          return mk(bin(T->getLo(), F.cloneExpr(R)),
                    bin(T->getHi(), F.cloneExpr(R)), Stride);
        } else {
          auto *T = static_cast<TripletExpr *>(R);
          Expr *Stride = T->getStride();
          if (Op == OpCode::Mul)
            Stride = bin(F.cloneExpr(L), Stride);
          else if (Op == OpCode::Sub)
            Stride = F.create<UnaryExpr>(IntTy, OpCode::Neg, Stride);
          return mk(bin(F.cloneExpr(L), T->getLo()),
                    bin(F.cloneExpr(L), T->getHi()), Stride);
        }
      }
      if (L != B->getLHS() || R != B->getRHS())
        return F.makeBinary(Op, L, R, B->getType());
      return B;
    }
    case Expr::DerefKind: {
      auto *D = static_cast<DerefExpr *>(E);
      Expr *Addr = bubble(D->getAddr());
      if (Addr != D->getAddr())
        return F.create<DerefExpr>(D->getType(), Addr);
      return D;
    }
    case Expr::IndexKind: {
      auto *I = static_cast<IndexExpr *>(E);
      bool Changed = false;
      std::vector<Expr *> Subs;
      for (Expr *Sub : I->getSubscripts()) {
        Expr *NewSub = bubble(Sub);
        Changed |= NewSub != Sub;
        Subs.push_back(NewSub);
      }
      if (Changed)
        return F.create<IndexExpr>(I->getType(), I->getBase(),
                                   std::move(Subs));
      return I;
    }
    case Expr::CastKind: {
      auto *C = static_cast<CastExpr *>(E);
      Expr *Operand = bubble(C->getOperand());
      if (Operand != C->getOperand())
        return F.create<CastExpr>(C->getType(), Operand);
      return C;
    }
    case Expr::UnaryKind: {
      auto *U = static_cast<UnaryExpr *>(E);
      Expr *Operand = bubble(U->getOperand());
      if (Operand->getKind() == Expr::TripletKind &&
          U->getOp() == OpCode::Neg) {
        auto *T = static_cast<TripletExpr *>(Operand);
        auto Neg = [&](Expr *X) {
          return scalar::foldExpr(
              F, F.create<UnaryExpr>(U->getType(), OpCode::Neg, X));
        };
        return F.create<TripletExpr>(U->getType(), Neg(T->getLo()),
                                     Neg(T->getHi()), Neg(T->getStride()));
      }
      if (Operand != U->getOperand())
        return F.create<UnaryExpr>(U->getType(), U->getOp(), Operand);
      return U;
    }
    default:
      return E;
    }
  }

  /// Replaces occurrences of the loop index in \p S with a triplet, then
  /// bubbles the triplets outward through the affine arithmetic.
  void substituteTriplet(AssignStmt *S, Symbol *Idx, Expr *Lo, Expr *Hi) {
    auto Substitute = [&](Expr *&Slot) {
      forEachSubExprSlot(Slot, [&](Expr *&Sub) {
        if (Sub->getKind() == Expr::VarRefKind &&
            static_cast<VarRefExpr *>(Sub)->getSymbol() == Idx)
          Sub = F.create<TripletExpr>(IntTy, F.cloneExpr(Lo),
                                      F.cloneExpr(Hi),
                                      F.makeIntConst(IntTy, 1));
      });
      Slot = bubble(Slot);
    };
    Substitute(S->lhsSlot());
    Substitute(S->rhsSlot());
  }

  void emitVectorPiece(DoLoopStmt *D, AssignStmt *S,
                       LoopDependenceGraph &Graph, unsigned Node,
                       std::vector<Stmt *> &Out) {
    canonicalizeRefs(S, D, Graph.nest());

    int64_t Trip = Graph.tripCount();
    bool NeedStrip = Opts.StripLength > 0 &&
                     (Trip < 0 || Trip > Opts.StripLength);

    if (!NeedStrip) {
      // Whole range in one vector statement (short graphics-style loop).
      auto *VecStmt = static_cast<AssignStmt *>(F.cloneStmtRemap(
          S, [](Symbol *Sym) { return Sym; },
          [](const std::string &L) { return L; }));
      substituteTriplet(VecStmt, D->getIndexVar(),
                        F.makeIntConst(IntTy, 0), F.cloneExpr(D->getLimit()));
      Out.push_back(VecStmt);
      ++Stats.VectorStmts;
      ++Stats.UnstripedVectorStmts;
      return;
    }

    // Strip loop: do [parallel] vi = 0, Limit, VL
    //               { vr = min(Limit, vi+VL-1); a[vi:vr:1] = ...; }
    Symbol *Vi = F.createTemp(IntTy, "vi");
    Symbol *Vr = F.createTemp(IntTy, "vr");
    auto *Strip = F.create<DoLoopStmt>(
        D->getLoc(), Vi, F.makeIntConst(IntTy, 0),
        F.cloneExpr(D->getLimit()),
        F.makeIntConst(IntTy, Opts.StripLength));
    bool Parallel = allowParallel();
    Strip->setParallel(Parallel);

    Expr *HiVal = F.makeBinary(
        OpCode::Min, F.cloneExpr(D->getLimit()),
        F.makeBinary(OpCode::Add, F.makeVarRef(Vi),
                     F.makeIntConst(IntTy, Opts.StripLength - 1), IntTy),
        IntTy);
    Strip->getBody().Stmts.push_back(
        F.create<AssignStmt>(D->getLoc(), F.makeVarRef(Vr), HiVal));

    auto *VecStmt = static_cast<AssignStmt *>(F.cloneStmtRemap(
        S, [](Symbol *Sym) { return Sym; },
        [](const std::string &L) { return L; }));
    substituteTriplet(VecStmt, D->getIndexVar(), F.makeVarRef(Vi),
                      F.makeVarRef(Vr));
    Strip->getBody().Stmts.push_back(VecStmt);

    Out.push_back(Strip);
    ++Stats.VectorStmts;
    ++Stats.StripLoops;
    if (Parallel)
      ++Stats.ParallelLoops;
  }

  Function &F;
  const VectorizeOptions &Opts;
  const Type *IntTy;
  VectorizeStats Stats;
  int ParallelDepth = 0; ///< Enclosing parallel loops during traversal.
};

} // namespace

VectorizeStats vec::vectorizeLoops(Function &F, const VectorizeOptions &Opts) {
  return Vectorizer(F, Opts).run();
}
