//===----------------------------------------------------------------------===//
///
/// \file
/// The vectorizer: Allen–Kennedy codegen over the loop dependence graph
/// (paper Sections 5 and 9).
///
/// For each innermost normalized DO loop:
///   1. Build the dependence graph of the body statements.
///   2. Decompose into strongly connected components, topologically
///      ordered (Tarjan), and distribute the loop: cyclic components stay
///      in serial DO loops (consecutive ones are merged to avoid loop
///      proliferation); acyclic single-statement assignments become
///      vector statements.
///   3. A vector statement's references are canonicalized to the array
///      form when the base is a named 1-D array (`a[lo:hi:s]`, the
///      paper's colon notation); pointer-based references keep the star
///      form with an embedded triplet.
///   4. Vector statements are strip-mined to the configured strip length
///      (the paper's listing uses 32-element strips: `vr = min(99,
///      vi+31)`), unless the trip count is a known constant that fits in
///      one strip — the graphics 4×4 case the paper calls out.  Strip
///      loops become `do parallel` when multiprocessor spreading is
///      enabled.
///
/// Aliasing follows Section 9: pointer-based references vectorize only
/// under `#pragma safe` or Fortran pointer semantics; inlining that turns
/// pointers into named arrays removes the problem.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_VECTOR_VECTORIZE_H
#define TCC_VECTOR_VECTORIZE_H

#include "il/IL.h"
#include "remarks/Remarks.h"

namespace tcc {
namespace dep {
class DependenceAnalysis;
} // namespace dep
namespace vec {

struct VectorizeOptions {
  bool EnableParallel = false; ///< Emit `do parallel` strip loops.
  /// Elements per strip; 0 disables strip-mining (whole-range vector
  /// statements).  The Titan's vector register file holds 8192 elements,
  /// but the paper's examples spread 32-element strips across processors.
  int64_t StripLength = 32;
  bool FortranPointerSemantics = false;
  /// When set, the vectorizer reports a source-located remark for every
  /// loop it considers: vectorized (with the vector length), or refused
  /// with the blocking reason ("cyclic dependence on 's'", ...).
  remarks::RemarkCollector *Remarks = nullptr;
  /// Disambiguation facade for different-base reference pairs (see
  /// dependence/DependenceAnalysis.h).  Null falls back to the graph's
  /// built-in reachdef baseline; the pipeline always provides one,
  /// defaulting to the memssa stack.  Must be prepared for the function
  /// being vectorized.
  const dep::DependenceAnalysis *DepAnalysis = nullptr;
};

struct VectorizeStats {
  unsigned LoopsConsidered = 0;
  unsigned LoopsVectorized = 0; ///< At least one vector statement emitted.
  unsigned LoopsDistributed = 0;///< Split into >1 piece.
  unsigned VectorStmts = 0;
  unsigned SerialLoops = 0;     ///< Cyclic components left sequential.
  unsigned SpreadSerialLoops = 0; ///< Serial loops spread over processors.
  unsigned ParallelLoops = 0;
  unsigned StripLoops = 0;
  unsigned UnstripedVectorStmts = 0; ///< Short constant trip, no strip loop.
};

/// Vectorizes every innermost DO loop of \p F in place.
VectorizeStats vectorizeLoops(il::Function &F,
                              const VectorizeOptions &Opts = {});

} // namespace vec
} // namespace tcc

#endif // TCC_VECTOR_VECTORIZE_H
