//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal streaming JSON writer for telemetry and bench output.  No
/// external dependency: the writer tracks the open object/array stack and
/// inserts commas, indentation, and string escaping so callers only state
/// structure.  Output is deterministic (keys appear in emission order),
/// which keeps telemetry files diffable across runs.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SUPPORT_JSONWRITER_H
#define TCC_SUPPORT_JSONWRITER_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace tcc {
namespace json {

/// Escapes \p S for inclusion in a JSON string literal (quotes not
/// included).
std::string escape(const std::string &S);

/// Appends \p Line plus a trailing newline to the JSON-Lines file at
/// \p Path in a single O_APPEND write, so concurrent appenders (ctest -j
/// running several bench binaries, the ablation sweep's worker pool)
/// cannot interleave partial rows.  Returns false on I/O failure.
bool appendJsonLine(const std::string &Path, const std::string &Line);

/// Streaming writer.  Usage:
///
///   JSONWriter W(OS);
///   W.beginObject();
///   W.key("name").value("inline");
///   W.key("counters").beginArray();
///   ...
///   W.endArray();
///   W.endObject();
///
/// Misnesting (ending an array while an object is open, a value with no
/// pending key inside an object) asserts in debug builds.
///
/// IndentWidth 0 selects compact single-line output (JSON Lines rows).
class JSONWriter {
public:
  explicit JSONWriter(std::ostream &OS, unsigned IndentWidth = 2)
      : OS(OS), IndentWidth(IndentWidth) {}

  JSONWriter &beginObject();
  JSONWriter &endObject();
  JSONWriter &beginArray();
  JSONWriter &endArray();

  /// Emits `"K":` and leaves the writer expecting exactly one value.
  JSONWriter &key(const std::string &K);

  JSONWriter &value(const std::string &V);
  JSONWriter &value(const char *V);
  JSONWriter &value(int64_t V);
  JSONWriter &value(uint64_t V);
  JSONWriter &value(unsigned V) { return value(static_cast<uint64_t>(V)); }
  JSONWriter &value(int V) { return value(static_cast<int64_t>(V)); }
  JSONWriter &value(double V);
  JSONWriter &value(bool V);

  /// key(K) + value(V) in one call.
  template <typename T> JSONWriter &keyValue(const std::string &K, T V) {
    key(K);
    return value(V);
  }

private:
  struct Scope {
    bool IsArray = false;
    unsigned Count = 0; ///< Values emitted at this level.
  };

  void beforeValue(); ///< Comma/newline/indent bookkeeping.
  void newlineIndent(unsigned Depth);

  std::ostream &OS;
  unsigned IndentWidth;
  std::vector<Scope> Stack;
  bool PendingKey = false;
};

} // namespace json
} // namespace tcc

#endif // TCC_SUPPORT_JSONWRITER_H
