#include "support/StringExtras.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>

using namespace tcc;

std::string tcc::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Size = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Out;
  if (Size > 0) {
    Out.resize(static_cast<size_t>(Size) + 1);
    std::vsnprintf(Out.data(), Out.size(), Fmt, ArgsCopy);
    Out.resize(static_cast<size_t>(Size));
  }
  va_end(ArgsCopy);
  return Out;
}

std::string tcc::formatDouble(double Value) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
  // Ensure the result is visibly floating-point.
  if (!std::strpbrk(Buf, ".eEni"))
    std::strcat(Buf, ".0");
  return Buf;
}

bool tcc::startsWith(const std::string &Str, const std::string &Prefix) {
  return Str.size() >= Prefix.size() &&
         Str.compare(0, Prefix.size(), Prefix) == 0;
}

uint64_t tcc::fnv1a64(const std::string &Bytes) {
  uint64_t Hash = 0xcbf29ce484222325ull;
  for (unsigned char C : Bytes) {
    Hash ^= C;
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

std::string tcc::toHex64(uint64_t Value) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(Value));
  return Buf;
}
