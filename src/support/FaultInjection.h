//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the pass pipeline and the catalog
/// builder.
///
/// Containment code is only trustworthy if every one of its paths can be
/// driven on demand, without waiting for a real bug.  A FaultInjector
/// holds a list of specs of the form
///
///   site:unit:kind[:nth]
///
/// (comma-separated; `site` is a registered pass name or "catalog",
/// `unit` is a function name or translation-unit label, `*` matches any,
/// `nth` is the 1-based matching invocation that fires, default 1).  The
/// kinds model the classic ways a pass dies:
///
///   throw       an escaped std::runtime_error from the pass body
///   corrupt-il  the pass returns but leaves verifier-rejected IL behind
///   oom         an escaped std::bad_alloc
///   slow        the pass wildly overruns its wall-clock budget
///   stall       the invocation wedges until cancelled: at the daemon's
///               `server` site it parks until the per-request deadline
///               watchdog kills it (the deterministic "stuck request");
///               inside the pass sandbox it behaves like `slow`
///
/// Each spec fires exactly once (on its nth match), so a run's fault set
/// is a deterministic function of the spec string and the compilation —
/// CI can assert "this exact fault was injected, contained, and produced
/// this exact degraded output" on every run.  The spec string comes from
/// `-fault-inject=` or the TCC_FAULT_INJECT environment variable.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SUPPORT_FAULTINJECTION_H
#define TCC_SUPPORT_FAULTINJECTION_H

#include "support/Diagnostics.h"

#include <mutex>
#include <string>
#include <vector>

namespace tcc {

enum class FaultKind : uint8_t { Throw, CorruptIL, OOM, Slow, Stall };

/// The spec token for a kind ("throw", "corrupt-il", "oom", "slow",
/// "stall").
const char *faultKindName(FaultKind K);

/// One armed fault: fire \p Kind on the \p Nth invocation matching
/// (\p Site, \p Unit).
struct FaultSpec {
  std::string Site; ///< Pass name or "catalog"; "*" matches any.
  std::string Unit; ///< Function name or TU label; "*" matches any.
  FaultKind Kind = FaultKind::Throw;
  unsigned Nth = 1; ///< 1-based matching invocation that fires.

  /// Renders back to "site:unit:kind:nth" (the repro-bundle form).
  std::string str() const;
};

/// Holds armed faults and decides, per invocation, whether one fires.
/// Thread-safe: catalog workers consult it concurrently.
class FaultInjector {
public:
  /// Parses a comma-separated spec list and arms every fault.  A
  /// malformed spec emits a diagnostic located at the offending column
  /// (line 1) and returns false; nothing is armed.
  bool addSpecs(const std::string &Text, DiagnosticEngine &Diags);

  /// Called once per (site, unit) invocation.  Returns the spec to fire
  /// — consuming it — or null.  At most one fault fires per invocation;
  /// each spec fires at most once per injector lifetime.
  const FaultSpec *arm(const std::string &Site, const std::string &Unit);

  bool empty() const { return Entries.empty(); }

  /// Specs that have fired so far (for "-stats" style summaries).
  unsigned firedCount() const;

private:
  struct Entry {
    FaultSpec Spec;
    unsigned Seen = 0;
    bool Fired = false;
  };
  std::vector<Entry> Entries;
  mutable std::mutex M;
};

/// Raises the exception kinds at an armed site: Throw becomes a
/// std::runtime_error, OOM a std::bad_alloc; CorruptIL and Slow return
/// (they are meaningful only inside the pass sandbox, which mutates IL or
/// burns the wall-clock budget respectively).
void throwInjectedFault(const FaultSpec &Spec);

} // namespace tcc

#endif // TCC_SUPPORT_FAULTINJECTION_H
