//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers shared across the compiler: printf-style formatting
/// into std::string and number rendering that round-trips floating-point
/// constants.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SUPPORT_STRINGEXTRAS_H
#define TCC_SUPPORT_STRINGEXTRAS_H

#include <cstdint>
#include <string>

namespace tcc {

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a double so that it reads back to the same value and always
/// contains a '.', 'e' or "inf"/"nan" marker (so it cannot be confused with
/// an integer literal in the IL serializer).
std::string formatDouble(double Value);

/// True if \p Str starts with \p Prefix.
bool startsWith(const std::string &Str, const std::string &Prefix);

/// 64-bit FNV-1a over \p Bytes.  Stable across platforms and runs — the
/// compile-cache manifest persists these values to disk.
uint64_t fnv1a64(const std::string &Bytes);

/// \p Value as 16 lowercase hex digits (the manifest's on-disk hash form).
std::string toHex64(uint64_t Value);

} // namespace tcc

#endif // TCC_SUPPORT_STRINGEXTRAS_H
