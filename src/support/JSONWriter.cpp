#include "support/JSONWriter.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#ifdef _WIN32
#include <fstream>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

using namespace tcc;
using namespace tcc::json;

std::string json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

bool json::appendJsonLine(const std::string &Path, const std::string &Line) {
  std::string Row = Line;
  Row += '\n';
#ifdef _WIN32
  // Portability fallback: one buffered write of the whole row.
  std::ofstream OS(Path, std::ios::app | std::ios::binary);
  if (!OS)
    return false;
  OS.write(Row.data(), static_cast<std::streamsize>(Row.size()));
  return static_cast<bool>(OS);
#else
  // O_APPEND positions and writes atomically, so rows from concurrent
  // processes/threads land whole instead of interleaved.
  int FD = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (FD < 0)
    return false;
  size_t Off = 0;
  bool Ok = true;
  while (Off < Row.size()) {
    ssize_t N = ::write(FD, Row.data() + Off, Row.size() - Off);
    if (N < 0) {
      Ok = false;
      break;
    }
    Off += static_cast<size_t>(N);
  }
  ::close(FD);
  return Ok && Off == Row.size();
#endif
}

void JSONWriter::newlineIndent(unsigned Depth) {
  if (!IndentWidth)
    return; // compact mode
  OS << '\n';
  for (unsigned I = 0; I < Depth * IndentWidth; ++I)
    OS << ' ';
}

void JSONWriter::beforeValue() {
  if (Stack.empty())
    return; // top-level value
  if (PendingKey) {
    PendingKey = false;
    return; // key() already positioned us
  }
  assert(Stack.back().IsArray && "object member requires key()");
  if (Stack.back().Count)
    OS << ',';
  newlineIndent(static_cast<unsigned>(Stack.size()));
  ++Stack.back().Count;
}

JSONWriter &JSONWriter::key(const std::string &K) {
  assert(!Stack.empty() && !Stack.back().IsArray && "key() outside object");
  assert(!PendingKey && "two keys in a row");
  if (Stack.back().Count)
    OS << ',';
  newlineIndent(static_cast<unsigned>(Stack.size()));
  ++Stack.back().Count;
  OS << '"' << escape(K) << "\": ";
  PendingKey = true;
  return *this;
}

JSONWriter &JSONWriter::beginObject() {
  beforeValue();
  OS << '{';
  Stack.push_back({false, 0});
  return *this;
}

JSONWriter &JSONWriter::endObject() {
  assert(!Stack.empty() && !Stack.back().IsArray);
  bool HadMembers = Stack.back().Count > 0;
  Stack.pop_back();
  if (HadMembers)
    newlineIndent(static_cast<unsigned>(Stack.size()));
  OS << '}';
  return *this;
}

JSONWriter &JSONWriter::beginArray() {
  beforeValue();
  OS << '[';
  Stack.push_back({true, 0});
  return *this;
}

JSONWriter &JSONWriter::endArray() {
  assert(!Stack.empty() && Stack.back().IsArray);
  bool HadMembers = Stack.back().Count > 0;
  Stack.pop_back();
  if (HadMembers)
    newlineIndent(static_cast<unsigned>(Stack.size()));
  OS << ']';
  return *this;
}

JSONWriter &JSONWriter::value(const std::string &V) {
  beforeValue();
  OS << '"' << escape(V) << '"';
  return *this;
}

JSONWriter &JSONWriter::value(const char *V) {
  return value(std::string(V));
}

JSONWriter &JSONWriter::value(int64_t V) {
  beforeValue();
  OS << V;
  return *this;
}

JSONWriter &JSONWriter::value(uint64_t V) {
  beforeValue();
  OS << V;
  return *this;
}

JSONWriter &JSONWriter::value(double V) {
  beforeValue();
  if (!std::isfinite(V)) {
    OS << "null"; // JSON has no inf/nan
    return *this;
  }
  char Buf[64];
  // Integral values print exactly as integers: cycle counts above ~1e6
  // must survive the round trip bit-for-bit, because downstream differs
  // (the ablation sweep) subtract them.  2^53 bounds the integers a
  // double represents exactly.
  if (std::nearbyint(V) == V && std::fabs(V) <= 9007199254740992.0) {
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
    OS << Buf;
    return *this;
  }
  // Non-integral: the shortest decimal form that parses back to the same
  // double (try increasing precision up to the %.17g round-trip bound).
  for (int Precision = 6; Precision <= 17; ++Precision) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Precision, V);
    if (std::strtod(Buf, nullptr) == V)
      break;
  }
  OS << Buf;
  return *this;
}

JSONWriter &JSONWriter::value(bool V) {
  beforeValue();
  OS << (V ? "true" : "false");
  return *this;
}
