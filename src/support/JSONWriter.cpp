#include "support/JSONWriter.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace tcc;
using namespace tcc::json;

std::string json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

void JSONWriter::newlineIndent(unsigned Depth) {
  if (!IndentWidth)
    return; // compact mode
  OS << '\n';
  for (unsigned I = 0; I < Depth * IndentWidth; ++I)
    OS << ' ';
}

void JSONWriter::beforeValue() {
  if (Stack.empty())
    return; // top-level value
  if (PendingKey) {
    PendingKey = false;
    return; // key() already positioned us
  }
  assert(Stack.back().IsArray && "object member requires key()");
  if (Stack.back().Count)
    OS << ',';
  newlineIndent(static_cast<unsigned>(Stack.size()));
  ++Stack.back().Count;
}

JSONWriter &JSONWriter::key(const std::string &K) {
  assert(!Stack.empty() && !Stack.back().IsArray && "key() outside object");
  assert(!PendingKey && "two keys in a row");
  if (Stack.back().Count)
    OS << ',';
  newlineIndent(static_cast<unsigned>(Stack.size()));
  ++Stack.back().Count;
  OS << '"' << escape(K) << "\": ";
  PendingKey = true;
  return *this;
}

JSONWriter &JSONWriter::beginObject() {
  beforeValue();
  OS << '{';
  Stack.push_back({false, 0});
  return *this;
}

JSONWriter &JSONWriter::endObject() {
  assert(!Stack.empty() && !Stack.back().IsArray);
  bool HadMembers = Stack.back().Count > 0;
  Stack.pop_back();
  if (HadMembers)
    newlineIndent(static_cast<unsigned>(Stack.size()));
  OS << '}';
  return *this;
}

JSONWriter &JSONWriter::beginArray() {
  beforeValue();
  OS << '[';
  Stack.push_back({true, 0});
  return *this;
}

JSONWriter &JSONWriter::endArray() {
  assert(!Stack.empty() && Stack.back().IsArray);
  bool HadMembers = Stack.back().Count > 0;
  Stack.pop_back();
  if (HadMembers)
    newlineIndent(static_cast<unsigned>(Stack.size()));
  OS << ']';
  return *this;
}

JSONWriter &JSONWriter::value(const std::string &V) {
  beforeValue();
  OS << '"' << escape(V) << '"';
  return *this;
}

JSONWriter &JSONWriter::value(const char *V) {
  return value(std::string(V));
}

JSONWriter &JSONWriter::value(int64_t V) {
  beforeValue();
  OS << V;
  return *this;
}

JSONWriter &JSONWriter::value(uint64_t V) {
  beforeValue();
  OS << V;
  return *this;
}

JSONWriter &JSONWriter::value(double V) {
  beforeValue();
  if (!std::isfinite(V)) {
    OS << "null"; // JSON has no inf/nan
    return *this;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  OS << Buf;
  return *this;
}

JSONWriter &JSONWriter::value(bool V) {
  beforeValue();
  OS << (V ? "true" : "false");
  return *this;
}
