//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic collection for the compiler.  Library code never prints or
/// exits; it records diagnostics into a DiagnosticEngine that tools and
/// tests inspect.  This follows the recoverable-error discipline: malformed
/// user input produces diagnostics, while internal invariant violations use
/// assert.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SUPPORT_DIAGNOSTICS_H
#define TCC_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace tcc {

enum class DiagKind { Error, Warning, Note };

/// One reported problem: severity, position, and message text.  Messages
/// follow the style "lowercase first word, no trailing period".
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  /// Renders "error: 3:7: message".
  std::string str() const;
};

/// Accumulates diagnostics during a compilation.  Cheap to pass by
/// reference through every phase.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors > 0; }
  unsigned errorCount() const { return NumErrors; }
  unsigned warningCount() const { return NumWarnings; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Concatenates all diagnostics, one per line, for test assertions and
  /// tool output.
  std::string str() const;

  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
};

} // namespace tcc

#endif // TCC_SUPPORT_DIAGNOSTICS_H
