//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations for diagnostics.  The Titan C compiler reproduction
/// tracks line/column pairs through the lexer, parser and front-end lowering
/// so that every diagnostic points at the offending source text.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SUPPORT_SOURCELOC_H
#define TCC_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace tcc {

/// A (line, column) position in a compiled source buffer.  Lines and columns
/// are 1-based; a default-constructed location is "unknown" (0, 0).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &RHS) const {
    return Line == RHS.Line && Col == RHS.Col;
  }
  bool operator!=(const SourceLoc &RHS) const { return !(*this == RHS); }

  /// Renders "line:col", or "<unknown>" for an invalid location.
  std::string str() const;
};

} // namespace tcc

#endif // TCC_SUPPORT_SOURCELOC_H
