#include "support/WorkerPool.h"

#include <atomic>

using namespace tcc;

unsigned tcc::resolveWorkerCount(unsigned Requested, size_t JobCount) {
  unsigned Workers =
      Requested ? Requested : std::thread::hardware_concurrency();
  if (Workers == 0)
    Workers = 1;
  if (JobCount && Workers > JobCount)
    Workers = static_cast<unsigned>(JobCount);
  return Workers;
}

void tcc::runIndexed(size_t Count, unsigned Workers,
                     const std::function<void(size_t)> &Job) {
  if (Count == 0)
    return;
  Workers = resolveWorkerCount(Workers, Count);

  std::atomic<size_t> Next{0};
  auto Work = [&] {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Count)
        return;
      Job(I);
    }
  };
  if (Workers <= 1) {
    Work();
    return;
  }
  std::vector<std::thread> Pool;
  Pool.reserve(Workers);
  for (unsigned W = 0; W < Workers; ++W)
    Pool.emplace_back(Work);
  for (std::thread &T : Pool)
    T.join();
}

TaskQueue::TaskQueue(unsigned Workers) {
  Workers = resolveWorkerCount(Workers, /*JobCount=*/0);
  Threads.reserve(Workers);
  for (unsigned W = 0; W < Workers; ++W)
    Threads.emplace_back([this] { workerLoop(); });
}

TaskQueue::~TaskQueue() { shutdown(); }

bool TaskQueue::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (ShuttingDown)
      return false;
    Tasks.push_back(std::move(Task));
  }
  Ready.notify_one();
  return true;
}

void TaskQueue::shutdown() {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (ShuttingDown && Threads.empty())
      return;
    ShuttingDown = true;
  }
  Ready.notify_all();
  for (std::thread &T : Threads)
    T.join();
  Threads.clear();
}

size_t TaskQueue::pending() const {
  std::lock_guard<std::mutex> Lock(M);
  return Tasks.size();
}

unsigned TaskQueue::active() const {
  std::lock_guard<std::mutex> Lock(M);
  return Active;
}

void TaskQueue::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(M);
      Ready.wait(Lock, [this] { return ShuttingDown || !Tasks.empty(); });
      if (Tasks.empty())
        return; // Shutting down and drained.
      Task = std::move(Tasks.front());
      Tasks.pop_front();
      ++Active;
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(M);
      --Active;
    }
  }
}
