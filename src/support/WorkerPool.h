//===----------------------------------------------------------------------===//
///
/// \file
/// The shared worker pools.
///
/// Two shapes of parallelism recur across the codebase:
///
///  - **indexed sweeps** (catalog shards, ablation cells): N independent
///    jobs known up front, each writing only its own slot of a pre-sized
///    result vector.  A shared atomic cursor hands out indices; workers
///    race over *which* job they build but never over *where* the result
///    lands, so the filled vector is deterministic — byte-identical for
///    every worker count — without any locking.  runIndexed() is that
///    pattern, extracted from the catalog builder and the ablation sweep
///    so the two (and the compile server's batch paths) cannot drift.
///
///  - **request admission** (the compile daemon): tasks arrive over time
///    and must be executed by a bounded set of long-lived workers.
///    TaskQueue is a classic mutex+condvar queue; submit() never blocks,
///    the destructor drains and joins.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SUPPORT_WORKERPOOL_H
#define TCC_SUPPORT_WORKERPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tcc {

/// The worker-count convention every -j flag shares: 0 means "all
/// hardware threads", the count never exceeds the job count, and at
/// least one worker always runs.
unsigned resolveWorkerCount(unsigned Requested, size_t JobCount);

/// Runs Job(0) .. Job(Count-1) on up to \p Workers threads (resolved via
/// resolveWorkerCount).  Jobs are handed out through a shared atomic
/// cursor; each job must confine its writes to its own index's state so
/// the by-index result fill is deterministic across worker counts.
/// Exceptions must not escape \p Job — an exception leaving a worker
/// thread terminates the process (same contract the catalog builder has
/// always had; its jobs contain their own failures).
void runIndexed(size_t Count, unsigned Workers,
                const std::function<void(size_t)> &Job);

/// A bounded pool of long-lived workers consuming a FIFO task queue —
/// the compile daemon's admission layer.  Tasks are arbitrary closures;
/// submit() enqueues and returns immediately.  Tasks must contain their
/// own failures (an escaped exception terminates the process).
class TaskQueue {
public:
  explicit TaskQueue(unsigned Workers);
  ~TaskQueue(); ///< Drains pending tasks, then joins every worker.

  TaskQueue(const TaskQueue &) = delete;
  TaskQueue &operator=(const TaskQueue &) = delete;

  /// Enqueues \p Task; a worker picks it up in FIFO order.  Returns false
  /// when the queue is shutting down (the task is dropped).
  bool submit(std::function<void()> Task);

  /// Stops accepting tasks, finishes everything already queued, and joins
  /// the workers.  Idempotent; the destructor calls it.
  void shutdown();

  unsigned workerCount() const { return static_cast<unsigned>(Threads.size()); }

  /// Tasks submitted but not yet picked up by a worker — the admission
  /// queue depth the daemon's load shedding decides on.
  size_t pending() const;

  /// Tasks currently executing on a worker.
  unsigned active() const;

private:
  void workerLoop();

  mutable std::mutex M;
  std::condition_variable Ready;
  std::deque<std::function<void()>> Tasks;
  bool ShuttingDown = false;
  unsigned Active = 0;
  std::vector<std::thread> Threads;
};

} // namespace tcc

#endif // TCC_SUPPORT_WORKERPOOL_H
