#include "support/CompileCache.h"

#include "support/StringExtras.h"

#include <fstream>
#include <sstream>

using namespace tcc;

std::string tcc::cacheHash(const std::string &Payload) {
  return toHex64(fnv1a64(Payload));
}

const CompileCache::FunctionEntry *
CompileCache::findFunction(const std::string &Function,
                           const std::string &Hash) const {
  auto It = Functions.find(Function);
  if (It == Functions.end() || It->second.Hash != Hash)
    return nullptr;
  return &It->second;
}

void CompileCache::storeFunction(const std::string &Function,
                                 const std::string &Hash, std::string Text) {
  FunctionEntry &E = Functions[Function];
  if (E.Hash == Hash && E.Text == Text)
    return;
  E.Hash = Hash;
  E.Text = std::move(Text);
  Dirty = true;
}

const CompileCache::ShardEntry *
CompileCache::findShard(const std::string &File,
                        const std::string &Hash) const {
  auto It = Shards.find(File);
  if (It == Shards.end() || It->second.Hash != Hash)
    return nullptr;
  return &It->second;
}

void CompileCache::storeShard(
    const std::string &File, const std::string &Hash,
    std::vector<std::pair<std::string, std::string>> Procs) {
  ShardEntry &E = Shards[File];
  if (E.Hash == Hash && E.Procs == Procs)
    return;
  E.Hash = Hash;
  E.Procs = std::move(Procs);
  Dirty = true;
}

namespace {

/// Line-oriented manifest reader tracking the current line for located
/// diagnostics.
class ManifestReader {
public:
  ManifestReader(const std::string &Text, DiagnosticEngine &Diags)
      : Text(Text), Diags(Diags) {}

  bool atEnd() const { return Pos >= Text.size(); }
  uint32_t line() const { return Line; }

  /// Reads one whole line (without the newline).
  std::string readLine() {
    LastLine = Line;
    std::string Out;
    while (Pos < Text.size() && Text[Pos] != '\n')
      Out += Text[Pos++];
    if (Pos < Text.size())
      ++Pos; // consume '\n'
    ++Line;
    return Out;
  }

  /// Reads exactly \p N payload bytes plus the trailing newline.
  bool readPayload(size_t N, std::string &Out) {
    if (Pos + N > Text.size()) {
      error("truncated payload (wants " + std::to_string(N) + " bytes)");
      return false;
    }
    Out = Text.substr(Pos, N);
    Pos += N;
    for (char C : Out)
      if (C == '\n')
        ++Line;
    if (Pos < Text.size() && Text[Pos] == '\n') {
      ++Pos;
      ++Line;
    }
    return true;
  }

  /// Reports at the line the last readLine() started on, so a malformed
  /// header is located at the header itself.
  void error(const std::string &Msg) {
    Diags.error(SourceLoc(LastLine, 1), "compile-cache manifest: " + Msg);
  }

private:
  const std::string &Text;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t LastLine = 1;
};

/// Parses `"name"` at \p Cursor of \p Header; advances past it.
bool parseQuoted(const std::string &Header, size_t &Cursor,
                 std::string &Out) {
  while (Cursor < Header.size() && Header[Cursor] == ' ')
    ++Cursor;
  if (Cursor >= Header.size() || Header[Cursor] != '"')
    return false;
  size_t End = Header.find('"', Cursor + 1);
  if (End == std::string::npos)
    return false;
  Out = Header.substr(Cursor + 1, End - Cursor - 1);
  Cursor = End + 1;
  return true;
}

bool parseWord(const std::string &Header, size_t &Cursor, std::string &Out) {
  while (Cursor < Header.size() && Header[Cursor] == ' ')
    ++Cursor;
  size_t Start = Cursor;
  while (Cursor < Header.size() && Header[Cursor] != ' ')
    ++Cursor;
  Out = Header.substr(Start, Cursor - Start);
  return !Out.empty();
}

bool parseCount(const std::string &Header, size_t &Cursor, size_t &Out) {
  std::string Word;
  if (!parseWord(Header, Cursor, Word))
    return false;
  Out = 0;
  for (char C : Word) {
    if (C < '0' || C > '9')
      return false;
    Out = Out * 10 + static_cast<size_t>(C - '0');
  }
  return true;
}

void writeQuoted(std::ostream &OS, const std::string &Name) {
  OS << '"' << Name << '"';
}

} // namespace

bool CompileCache::load(const std::string &Path, CompileCache &Out,
                        DiagnosticEngine &Diags) {
  Out = CompileCache();
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return true; // No manifest yet: a valid empty cache.
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  const std::string Text = Buffer.str();

  ManifestReader R(Text, Diags);
  std::string Magic = R.readLine();
  if (Magic != "tcc-cache v1") {
    R.error("bad magic '" + Magic + "' (expected 'tcc-cache v1')");
    Out = CompileCache();
    return false;
  }

  while (!R.atEnd()) {
    std::string Header = R.readLine();
    if (Header.empty())
      continue;
    size_t Cursor = 0;
    std::string Kind;
    parseWord(Header, Cursor, Kind);
    if (Kind == "func") {
      std::string Name, Hash;
      size_t Bytes = 0;
      if (!parseQuoted(Header, Cursor, Name) ||
          !parseWord(Header, Cursor, Hash) ||
          !parseCount(Header, Cursor, Bytes)) {
        R.error("malformed func header '" + Header + "'");
        Out = CompileCache();
        return false;
      }
      std::string Payload;
      if (!R.readPayload(Bytes, Payload)) {
        Out = CompileCache();
        return false;
      }
      Out.Functions[Name] = {std::move(Hash), std::move(Payload)};
    } else if (Kind == "shard") {
      std::string File, Hash;
      size_t Count = 0;
      if (!parseQuoted(Header, Cursor, File) ||
          !parseWord(Header, Cursor, Hash) ||
          !parseCount(Header, Cursor, Count)) {
        R.error("malformed shard header '" + Header + "'");
        Out = CompileCache();
        return false;
      }
      ShardEntry E;
      E.Hash = std::move(Hash);
      for (size_t I = 0; I < Count; ++I) {
        std::string ProcHeader = R.readLine();
        size_t PC = 0;
        std::string ProcKind, ProcName;
        size_t Bytes = 0;
        parseWord(ProcHeader, PC, ProcKind);
        if (ProcKind != "proc" || !parseQuoted(ProcHeader, PC, ProcName) ||
            !parseCount(ProcHeader, PC, Bytes)) {
          R.error("malformed proc header '" + ProcHeader + "'");
          Out = CompileCache();
          return false;
        }
        std::string Payload;
        if (!R.readPayload(Bytes, Payload)) {
          Out = CompileCache();
          return false;
        }
        E.Procs.emplace_back(std::move(ProcName), std::move(Payload));
      }
      Out.Shards[File] = std::move(E);
    } else {
      R.error("unknown record kind '" + Kind + "'");
      Out = CompileCache();
      return false;
    }
  }
  return true;
}

bool CompileCache::save(const std::string &Path,
                        DiagnosticEngine &Diags) const {
  std::ofstream OS(Path, std::ios::binary);
  if (!OS) {
    Diags.error(SourceLoc(), "cannot write compile cache '" + Path + "'");
    return false;
  }
  OS << "tcc-cache v1\n";
  for (const auto &[Name, E] : Functions) {
    OS << "func ";
    writeQuoted(OS, Name);
    OS << ' ' << E.Hash << ' ' << E.Text.size() << '\n';
    OS << E.Text << '\n';
  }
  for (const auto &[File, E] : Shards) {
    OS << "shard ";
    writeQuoted(OS, File);
    OS << ' ' << E.Hash << ' ' << E.Procs.size() << '\n';
    for (const auto &[Name, Text] : E.Procs) {
      OS << "proc ";
      writeQuoted(OS, Name);
      OS << ' ' << Text.size() << '\n';
      OS << Text << '\n';
    }
  }
  return static_cast<bool>(OS);
}
