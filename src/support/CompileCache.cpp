#include "support/CompileCache.h"

#include "support/StringExtras.h"

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

using namespace tcc;

namespace {

/// RAII advisory lock on the manifest's sidecar `<Path>.lock` file.  The
/// sidecar (not the manifest itself) is locked because save() renames a
/// fresh file into the manifest path — a lock taken on the old inode
/// would not exclude anybody.  flock(2) locks are per open file
/// description, so concurrent threads of one process exclude each other
/// exactly like separate processes do.  Lock acquisition failure (e.g. an
/// unwritable directory) degrades to running unlocked: the cache is an
/// accelerator, and the pre-locking behavior is the worst case.
class ManifestLock {
public:
  ManifestLock(const std::string &ManifestPath, bool Exclusive) {
    FD = ::open((ManifestPath + ".lock").c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                0666);
    if (FD < 0)
      return;
    // Retry on signal interruption; block until the lock is granted.
    while (::flock(FD, Exclusive ? LOCK_EX : LOCK_SH) != 0) {
      if (errno != EINTR) {
        ::close(FD);
        FD = -1;
        return;
      }
    }
  }
  ~ManifestLock() {
    if (FD >= 0)
      ::close(FD); // Releases the flock.
  }
  ManifestLock(const ManifestLock &) = delete;
  ManifestLock &operator=(const ManifestLock &) = delete;

private:
  int FD = -1;
};

} // namespace

std::string tcc::cacheHash(const std::string &Payload) {
  return toHex64(fnv1a64(Payload));
}

const CompileCache::FunctionEntry *
CompileCache::findFunction(const std::string &Function,
                           const std::string &Hash) const {
  auto It = Functions.find(Function);
  if (It == Functions.end() || It->second.Hash != Hash)
    return nullptr;
  return &It->second;
}

void CompileCache::storeFunction(const std::string &Function,
                                 const std::string &Hash, std::string Text) {
  FunctionEntry &E = Functions[Function];
  if (E.Hash == Hash && E.Text == Text)
    return;
  E.Hash = Hash;
  E.Text = std::move(Text);
  Dirty = true;
}

const CompileCache::ShardEntry *
CompileCache::findShard(const std::string &File,
                        const std::string &Hash) const {
  auto It = Shards.find(File);
  if (It == Shards.end() || It->second.Hash != Hash)
    return nullptr;
  return &It->second;
}

void CompileCache::storeShard(
    const std::string &File, const std::string &Hash,
    std::vector<std::pair<std::string, std::string>> Procs) {
  ShardEntry &E = Shards[File];
  if (E.Hash == Hash && E.Procs == Procs)
    return;
  E.Hash = Hash;
  E.Procs = std::move(Procs);
  Dirty = true;
}

namespace {

/// Line-oriented manifest reader tracking the current line for located
/// diagnostics.  Malformation is a *warning* — a damaged manifest
/// degrades the cache to cold, it never fails the compile.
class ManifestReader {
public:
  ManifestReader(const std::string &Text, DiagnosticEngine &Diags)
      : Text(Text), Diags(Diags) {}

  bool atEnd() const { return Pos >= Text.size(); }
  uint32_t line() const { return Line; }

  /// Reads one whole line (without the newline).
  std::string readLine() {
    LastLine = Line;
    std::string Out;
    while (Pos < Text.size() && Text[Pos] != '\n')
      Out += Text[Pos++];
    if (Pos < Text.size())
      ++Pos; // consume '\n'
    ++Line;
    return Out;
  }

  /// Reads exactly \p N payload bytes plus the trailing newline.  The
  /// length was parsed from untrusted input, so it is checked against the
  /// bytes actually remaining — a partial trailing record can never read
  /// past the buffer.
  bool readPayload(size_t N, std::string &Out) {
    if (N > Text.size() || Pos > Text.size() - N) {
      error("truncated payload (wants " + std::to_string(N) +
            " bytes, has " + std::to_string(Text.size() - Pos) + ")");
      return false;
    }
    Out = Text.substr(Pos, N);
    Pos += N;
    for (char C : Out)
      if (C == '\n')
        ++Line;
    if (Pos < Text.size() && Text[Pos] == '\n') {
      ++Pos;
      ++Line;
    }
    return true;
  }

  /// Reports at the line the last readLine() started on, so a malformed
  /// header is located at the header itself.  A warning, not an error:
  /// the caller degrades to a cold cache and rebuilds.
  void error(const std::string &Msg) {
    Diags.warning(SourceLoc(LastLine, 1),
                  "compile-cache manifest: " + Msg +
                      "; ignoring cache and recompiling");
  }

private:
  const std::string &Text;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t LastLine = 1;
};

/// Parses `"name"` at \p Cursor of \p Header; advances past it.
bool parseQuoted(const std::string &Header, size_t &Cursor,
                 std::string &Out) {
  while (Cursor < Header.size() && Header[Cursor] == ' ')
    ++Cursor;
  if (Cursor >= Header.size() || Header[Cursor] != '"')
    return false;
  size_t End = Header.find('"', Cursor + 1);
  if (End == std::string::npos)
    return false;
  Out = Header.substr(Cursor + 1, End - Cursor - 1);
  Cursor = End + 1;
  return true;
}

bool parseWord(const std::string &Header, size_t &Cursor, std::string &Out) {
  while (Cursor < Header.size() && Header[Cursor] == ' ')
    ++Cursor;
  size_t Start = Cursor;
  while (Cursor < Header.size() && Header[Cursor] != ' ')
    ++Cursor;
  Out = Header.substr(Start, Cursor - Start);
  return !Out.empty();
}

/// Parses a decimal count, rejecting non-digits and anything above
/// \p Max — a manifest length can never legitimately exceed the manifest
/// file it came from, so an out-of-range value is corruption, caught here
/// before any allocation or buffer arithmetic uses it.
bool parseCount(const std::string &Header, size_t &Cursor, size_t &Out,
                size_t Max) {
  std::string Word;
  if (!parseWord(Header, Cursor, Word))
    return false;
  Out = 0;
  for (char C : Word) {
    if (C < '0' || C > '9')
      return false;
    if (Out > Max / 10)
      return false;
    Out = Out * 10 + static_cast<size_t>(C - '0');
    if (Out > Max)
      return false;
  }
  return true;
}

void writeQuoted(std::ostream &OS, const std::string &Name) {
  OS << '"' << Name << '"';
}

} // namespace

bool CompileCache::load(const std::string &Path, CompileCache &Out,
                        DiagnosticEngine &Diags) {
  Out = CompileCache();
  const std::string Text = [&Path] {
    // Shared lock while reading: a concurrent writeBack() holds the
    // exclusive lock across its read-merge-rename, so readers see either
    // the old or the new complete manifest, never a torn merge.
    ManifestLock Lock(Path, /*Exclusive=*/false);
    std::ifstream In(Path, std::ios::binary);
    std::stringstream Buffer;
    if (In)
      Buffer << In.rdbuf();
    return Buffer.str();
  }();
  if (Text.empty() && !std::ifstream(Path))
    return true; // No manifest yet: a valid empty cache.
  return loadText(Text, Out, Diags);
}

bool CompileCache::loadText(const std::string &Text, CompileCache &Out,
                            DiagnosticEngine &Diags) {
  // Every rejection below takes the same exit: warn (ManifestReader
  // locates the line), leave the cache empty, and report degradation —
  // a damaged manifest costs a cold rebuild, never the compile.
  ManifestReader R(Text, Diags);
  auto Degrade = [&Out] {
    Out = CompileCache();
    // A cold start must rewrite the manifest even if nothing new is
    // learned, so the damaged bytes on disk get replaced.
    Out.Dirty = true;
    return false;
  };

  std::string Magic = R.readLine();
  if (Magic != "tcc-cache v1") {
    R.error("unsupported version or bad magic '" + Magic +
            "' (expected 'tcc-cache v1')");
    return Degrade();
  }

  while (!R.atEnd()) {
    std::string Header = R.readLine();
    if (Header.empty())
      continue;
    size_t Cursor = 0;
    std::string Kind;
    parseWord(Header, Cursor, Kind);
    if (Kind == "func") {
      std::string Name, Hash;
      size_t Bytes = 0;
      if (!parseQuoted(Header, Cursor, Name) ||
          !parseWord(Header, Cursor, Hash) ||
          !parseCount(Header, Cursor, Bytes, Text.size())) {
        R.error("malformed func header '" + Header + "'");
        return Degrade();
      }
      std::string Payload;
      if (!R.readPayload(Bytes, Payload))
        return Degrade();
      Out.Functions[Name] = {std::move(Hash), std::move(Payload)};
    } else if (Kind == "shard") {
      std::string File, Hash;
      size_t Count = 0;
      // Each recorded procedure needs at least one manifest line, so a
      // count beyond the remaining text is corruption, not a big shard.
      if (!parseQuoted(Header, Cursor, File) ||
          !parseWord(Header, Cursor, Hash) ||
          !parseCount(Header, Cursor, Count, Text.size())) {
        R.error("malformed shard header '" + Header + "'");
        return Degrade();
      }
      ShardEntry E;
      E.Hash = std::move(Hash);
      for (size_t I = 0; I < Count; ++I) {
        if (R.atEnd()) {
          R.error("shard '" + File + "' promises " + std::to_string(Count) +
                  " procs but the manifest ends after " + std::to_string(I));
          return Degrade();
        }
        std::string ProcHeader = R.readLine();
        size_t PC = 0;
        std::string ProcKind, ProcName;
        size_t Bytes = 0;
        parseWord(ProcHeader, PC, ProcKind);
        if (ProcKind != "proc" || !parseQuoted(ProcHeader, PC, ProcName) ||
            !parseCount(ProcHeader, PC, Bytes, Text.size())) {
          R.error("malformed proc header '" + ProcHeader + "'");
          return Degrade();
        }
        std::string Payload;
        if (!R.readPayload(Bytes, Payload))
          return Degrade();
        E.Procs.emplace_back(std::move(ProcName), std::move(Payload));
      }
      Out.Shards[File] = std::move(E);
    } else {
      R.error("unknown record kind '" + Kind + "'");
      return Degrade();
    }
  }
  return true;
}

bool CompileCache::save(const std::string &Path,
                        DiagnosticEngine &Diags) const {
  ManifestLock Lock(Path, /*Exclusive=*/true);
  return saveLocked(Path, Diags);
}

void CompileCache::mergeMissingFrom(const CompileCache &Other) {
  for (const auto &[Name, E] : Other.Functions)
    if (Functions.emplace(Name, E).second)
      Dirty = true;
  for (const auto &[File, E] : Other.Shards)
    if (Shards.emplace(File, E).second)
      Dirty = true;
}

bool CompileCache::writeBack(const std::string &Path,
                             DiagnosticEngine &Diags) {
  ManifestLock Lock(Path, /*Exclusive=*/true);

  // Re-read under the lock and adopt whatever other writers published
  // since our load: per-key merge, our entries winning, so a lost update
  // can only be a *stale duplicate* of work someone else finished first —
  // never a dropped result.
  std::ifstream In(Path, std::ios::binary);
  if (In) {
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    CompileCache Disk;
    // Damage warnings were already emitted by the initial load() in the
    // common case; a manifest damaged *between* load and write-back is
    // simply replaced wholesale.
    DiagnosticEngine Ignored;
    loadText(Buffer.str(), Disk, Ignored);
    mergeMissingFrom(Disk);
  }

  if (!saveLocked(Path, Diags))
    return false;
  Dirty = false;
  return true;
}

bool CompileCache::saveLocked(const std::string &Path,
                              DiagnosticEngine &Diags) const {
  // Write-to-temp + rename: readers of Path only ever observe the old
  // complete manifest or the new complete manifest, never a prefix.
  const std::string Temp = Path + ".tmp";
  {
    std::ofstream OS(Temp, std::ios::binary | std::ios::trunc);
    if (!OS) {
      Diags.error(SourceLoc(), "cannot write compile cache '" + Temp + "'");
      return false;
    }
    OS << "tcc-cache v1\n";
    for (const auto &[Name, E] : Functions) {
      OS << "func ";
      writeQuoted(OS, Name);
      OS << ' ' << E.Hash << ' ' << E.Text.size() << '\n';
      OS << E.Text << '\n';
    }
    for (const auto &[File, E] : Shards) {
      OS << "shard ";
      writeQuoted(OS, File);
      OS << ' ' << E.Hash << ' ' << E.Procs.size() << '\n';
      for (const auto &[Name, Text] : E.Procs) {
        OS << "proc ";
        writeQuoted(OS, Name);
        OS << ' ' << Text.size() << '\n';
        OS << Text << '\n';
      }
    }
    OS.flush();
    if (!OS) {
      Diags.error(SourceLoc(), "cannot write compile cache '" + Temp + "'");
      std::remove(Temp.c_str());
      return false;
    }
  }
  if (std::rename(Temp.c_str(), Path.c_str()) != 0) {
    Diags.error(SourceLoc(), "cannot rename '" + Temp + "' to '" + Path +
                                 "' while saving compile cache");
    std::remove(Temp.c_str());
    return false;
  }
  return true;
}
