#include "support/FaultInjection.h"

#include <new>
#include <stdexcept>

using namespace tcc;

const char *tcc::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::Throw:
    return "throw";
  case FaultKind::CorruptIL:
    return "corrupt-il";
  case FaultKind::OOM:
    return "oom";
  case FaultKind::Slow:
    return "slow";
  case FaultKind::Stall:
    return "stall";
  }
  return "throw";
}

std::string FaultSpec::str() const {
  return Site + ":" + Unit + ":" + faultKindName(Kind) + ":" +
         std::to_string(Nth);
}

namespace {

bool parseKind(const std::string &Word, FaultKind &Out) {
  for (FaultKind K : {FaultKind::Throw, FaultKind::CorruptIL, FaultKind::OOM,
                      FaultKind::Slow, FaultKind::Stall})
    if (Word == faultKindName(K)) {
      Out = K;
      return true;
    }
  return false;
}

} // namespace

bool FaultInjector::addSpecs(const std::string &Text,
                             DiagnosticEngine &Diags) {
  // An entirely blank list arms nothing — the valid injection-off state.
  if (Text.find_first_not_of(" \t") == std::string::npos)
    return true;

  std::vector<Entry> Staged;

  // Comma-separated specs; each spec is colon-separated fields.  Track
  // offsets so rejections point at the offending column (1-based, one
  // line).
  size_t SpecStart = 0;
  while (SpecStart <= Text.size()) {
    size_t Comma = Text.find(',', SpecStart);
    size_t SpecEnd = (Comma == std::string::npos) ? Text.size() : Comma;
    const std::string Raw = Text.substr(SpecStart, SpecEnd - SpecStart);

    auto Reject = [&](size_t Offset, const std::string &Msg) {
      Diags.error(SourceLoc(1, static_cast<uint32_t>(SpecStart + Offset) + 1),
                  "fault-injection spec: " + Msg);
      return false;
    };

    // Split the spec on colons.
    std::vector<std::string> Fields;
    std::vector<size_t> Offsets;
    size_t FieldStart = 0;
    for (;;) {
      size_t Colon = Raw.find(':', FieldStart);
      size_t FieldEnd = (Colon == std::string::npos) ? Raw.size() : Colon;
      Fields.push_back(Raw.substr(FieldStart, FieldEnd - FieldStart));
      Offsets.push_back(FieldStart);
      if (Colon == std::string::npos)
        break;
      FieldStart = Colon + 1;
    }

    if (Fields.size() < 3 || Fields.size() > 4)
      return Reject(0, "expected site:unit:kind[:nth], got '" + Raw + "'");
    if (Fields[0].empty())
      return Reject(Offsets[0], "empty site in '" + Raw + "'");
    if (Fields[1].empty())
      return Reject(Offsets[1], "empty unit in '" + Raw + "'");

    Entry E;
    E.Spec.Site = Fields[0];
    E.Spec.Unit = Fields[1];
    if (!parseKind(Fields[2], E.Spec.Kind))
      return Reject(Offsets[2],
                    "unknown fault kind '" + Fields[2] +
                        "' (known: throw, corrupt-il, oom, slow, stall)");
    if (Fields.size() == 4) {
      const std::string &N = Fields[3];
      unsigned Value = 0;
      bool Valid = !N.empty();
      for (char C : N) {
        if (C < '0' || C > '9' || Value > 100000000) {
          Valid = false;
          break;
        }
        Value = Value * 10 + static_cast<unsigned>(C - '0');
      }
      if (!Valid || Value == 0)
        return Reject(Offsets[3],
                      "nth must be a positive integer, got '" + N + "'");
      E.Spec.Nth = Value;
    }
    Staged.push_back(std::move(E));

    if (Comma == std::string::npos)
      break;
    SpecStart = Comma + 1;
  }

  for (auto &E : Staged)
    Entries.push_back(std::move(E));
  return true;
}

const FaultSpec *FaultInjector::arm(const std::string &Site,
                                    const std::string &Unit) {
  std::lock_guard<std::mutex> Lock(M);
  for (Entry &E : Entries) {
    if (E.Fired)
      continue;
    if (E.Spec.Site != "*" && E.Spec.Site != Site)
      continue;
    if (E.Spec.Unit != "*" && E.Spec.Unit != Unit)
      continue;
    if (++E.Seen < E.Spec.Nth)
      continue;
    E.Fired = true;
    return &E.Spec;
  }
  return nullptr;
}

unsigned FaultInjector::firedCount() const {
  std::lock_guard<std::mutex> Lock(M);
  unsigned N = 0;
  for (const Entry &E : Entries)
    if (E.Fired)
      ++N;
  return N;
}

void tcc::throwInjectedFault(const FaultSpec &Spec) {
  switch (Spec.Kind) {
  case FaultKind::Throw:
    throw std::runtime_error("injected fault: throw");
  case FaultKind::OOM:
    throw std::bad_alloc();
  case FaultKind::CorruptIL:
  case FaultKind::Slow:
  case FaultKind::Stall:
    break; // Handled by the sandbox / server watchdog, not by raising.
  }
}
