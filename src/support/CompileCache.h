//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent compile-cache manifest (`.tcc-cache`).
///
/// Incremental recompilation needs one durable fact per unit of work: "for
/// this exact input, here is the finished output."  The manifest records
/// two unit kinds:
///
///  - **function entries** — keyed by function name and a content hash
///    over (serialized input IL + pipeline spec + option fingerprint); the
///    payload is the *optimized* serialized IL, so a hit replaces the
///    function body without re-running any pass (the PassManager's
///    function-at-a-time mode consumes these);
///  - **shard entries** — keyed by translation-unit label and a hash of
///    the raw source text; the payload is the list of serialized
///    procedures the TU contributed, so a warm `tcc-catalog` build skips
///    the whole lex→parse→lower→serialize job for unchanged files.
///
/// The on-disk form is line-oriented text with length-prefixed payloads:
///
///   tcc-cache v1
///   func "name" <16-hex-digit-hash> <payload-bytes>
///   <payload>
///   shard "file.c" <16-hex-digit-hash> <proc-count>
///   proc "name" <payload-bytes>
///   <payload>
///   ...
///
/// Entries are stored name-sorted (std::map), so saving the same cache
/// state always produces byte-identical manifests.  The cache is an
/// accelerator, never a correctness dependency, so no manifest state may
/// fail a compile: a missing file is an empty cache, and a truncated,
/// corrupt, or version-skewed manifest degrades to a *cold* cache with a
/// located warning — the run rebuilds everything and rewrites the
/// manifest.  Saving goes through a temp file renamed into place, so an
/// interrupted run can never leave a half-written manifest that poisons
/// the next warm run.
///
/// One manifest may be shared by concurrent writers — several `tcc`
/// processes, `tcc-catalog` shards, and the `tccd` daemon all pointed at
/// the same stem.  Every load/save takes an advisory lock on a sidecar
/// `<Path>.lock` file (flock(2); shared for reads, exclusive for writes),
/// so readers never observe a rename mid-flight and writers serialize.
/// Writers that may race use writeBack() instead of save(): under the
/// exclusive lock it re-reads the manifest, merges the in-memory entries
/// over it (in-memory wins per key), and renames the merged result into
/// place — concurrent processes interleave by *entry*, never by byte, and
/// nobody's results are lost to a whole-file clobber.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SUPPORT_COMPILECACHE_H
#define TCC_SUPPORT_COMPILECACHE_H

#include "support/Diagnostics.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace tcc {

/// Hex content hash of an arbitrary payload (the manifest key form).
std::string cacheHash(const std::string &Payload);

class CompileCache {
public:
  struct FunctionEntry {
    std::string Hash; ///< Input hash the payload was produced from.
    std::string Text; ///< Optimized serialized IL.
  };

  struct ShardEntry {
    std::string Hash; ///< Hash of the TU's source text.
    /// (procedure name, serialized IL) in definition order.
    std::vector<std::pair<std::string, std::string>> Procs;
  };

  /// The cached optimized IL for \p Function, or null when absent or
  /// recorded under a different input hash (a stale entry is a miss).
  const FunctionEntry *findFunction(const std::string &Function,
                                    const std::string &Hash) const;
  void storeFunction(const std::string &Function, const std::string &Hash,
                     std::string Text);

  /// The cached procedures of shard \p File, or null when absent or built
  /// from different source text.
  const ShardEntry *findShard(const std::string &File,
                              const std::string &Hash) const;
  void storeShard(const std::string &File, const std::string &Hash,
                  std::vector<std::pair<std::string, std::string>> Procs);

  bool empty() const { return Functions.empty() && Shards.empty(); }
  size_t functionCount() const { return Functions.size(); }
  size_t shardCount() const { return Shards.size(); }

  /// True when a store() changed the cache since load()/save(); callers
  /// skip rewriting the manifest after all-hit runs.
  bool dirty() const { return Dirty; }

  /// Reads \p Path (under a shared advisory lock).  A missing file yields
  /// an empty cache.  Truncated, corrupt, or version-skewed content (bad
  /// magic, out-of-range counts or payload lengths, partial trailing
  /// records) yields an empty cache too, with a warning located by
  /// manifest line — never an error, so a damaged manifest degrades a
  /// warm run to a cold one instead of failing the compile.  Returns
  /// false exactly when such degradation happened (callers may ignore
  /// it; Out is always usable).
  static bool load(const std::string &Path, CompileCache &Out,
                   DiagnosticEngine &Diags);

  /// Writes the manifest to \p Path (name-sorted, byte-stable), holding
  /// the exclusive advisory lock.  The write is atomic: content goes to
  /// "<Path>.tmp" and is renamed into place, so a crash mid-save leaves
  /// the previous manifest intact.  Clobbers concurrent writers' entries;
  /// racing writers use writeBack().
  bool save(const std::string &Path, DiagnosticEngine &Diags) const;

  /// The concurrent-writer persistence path: under the exclusive lock,
  /// re-reads \p Path, merges this cache's entries over the on-disk ones
  /// (this cache wins per key; entries only it or only the disk knows
  /// survive), adopts the merged state in memory, and renames it into
  /// place.  A damaged on-disk manifest degrades to "nothing to merge
  /// with" (warning emitted) and is replaced wholesale.  Clears dirty()
  /// on success.
  bool writeBack(const std::string &Path, DiagnosticEngine &Diags);

  /// Folds \p Other's entries into this cache; existing entries win.
  void mergeMissingFrom(const CompileCache &Other);

private:
  static bool loadText(const std::string &Text, CompileCache &Out,
                       DiagnosticEngine &Diags);
  bool saveLocked(const std::string &Path, DiagnosticEngine &Diags) const;

  std::map<std::string, FunctionEntry> Functions;
  std::map<std::string, ShardEntry> Shards;
  bool Dirty = false;
};

} // namespace tcc

#endif // TCC_SUPPORT_COMPILECACHE_H
