#include "il/IL.h"

#include <set>

using namespace tcc;
using namespace tcc::il;

const char *il::opCodeSpelling(OpCode Op) {
  switch (Op) {
  case OpCode::Add:
    return "+";
  case OpCode::Sub:
    return "-";
  case OpCode::Mul:
    return "*";
  case OpCode::Div:
    return "/";
  case OpCode::Rem:
    return "%";
  case OpCode::Shl:
    return "<<";
  case OpCode::Shr:
    return ">>";
  case OpCode::Lt:
    return "<";
  case OpCode::Gt:
    return ">";
  case OpCode::Le:
    return "<=";
  case OpCode::Ge:
    return ">=";
  case OpCode::Eq:
    return "==";
  case OpCode::Ne:
    return "!=";
  case OpCode::BitAnd:
    return "&";
  case OpCode::BitOr:
    return "|";
  case OpCode::BitXor:
    return "^";
  case OpCode::Min:
    return "min";
  case OpCode::Max:
    return "max";
  case OpCode::Neg:
    return "-";
  case OpCode::LogNot:
    return "!";
  case OpCode::BitNot:
    return "~";
  }
  return "?";
}

bool il::isComparisonOp(OpCode Op) {
  switch (Op) {
  case OpCode::Lt:
  case OpCode::Gt:
  case OpCode::Le:
  case OpCode::Ge:
  case OpCode::Eq:
  case OpCode::Ne:
    return true;
  default:
    return false;
  }
}

bool il::isCommutativeOp(OpCode Op) {
  switch (Op) {
  case OpCode::Add:
  case OpCode::Mul:
  case OpCode::Eq:
  case OpCode::Ne:
  case OpCode::BitAnd:
  case OpCode::BitOr:
  case OpCode::BitXor:
  case OpCode::Min:
  case OpCode::Max:
    return true;
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

Function::Function(std::string Name, const Type *ReturnType, Program &Parent)
    : Name(std::move(Name)), ReturnType(ReturnType), Parent(Parent) {}

Symbol *Function::createSymbol(std::string SymName, const Type *Ty,
                               StorageKind Storage, bool IsVolatile) {
  Symbols.push_back(std::make_unique<Symbol>(NextSymbolId++,
                                             std::move(SymName), Ty, Storage,
                                             IsVolatile));
  return Symbols.back().get();
}

Symbol *Function::createTemp(const Type *Ty, const std::string &Prefix) {
  std::string TempName = Prefix + "_" + std::to_string(NextTempId++);
  return createSymbol(std::move(TempName), Ty, StorageKind::Temp);
}

std::string Function::createLabelName(const std::string &Prefix) {
  return Prefix + "_" + std::to_string(NextLabelId++);
}

unsigned Function::removeUnusedSymbols() {
  std::set<const Symbol *> Referenced;
  for (const Symbol *P : Params)
    Referenced.insert(P);
  forEachStmt(Body, [&Referenced](Stmt *S) {
    if (S->getKind() == Stmt::DoLoopKind)
      Referenced.insert(static_cast<DoLoopStmt *>(S)->getIndexVar());
    if (S->getKind() == Stmt::CallKind &&
        static_cast<CallStmt *>(S)->getResult())
      Referenced.insert(static_cast<CallStmt *>(S)->getResult());
    forEachExprSlot(S, [&Referenced](Expr *&Slot) {
      forEachSubExprSlot(Slot, [&Referenced](Expr *&Sub) {
        if (Sub->getKind() == Expr::VarRefKind)
          Referenced.insert(static_cast<VarRefExpr *>(Sub)->getSymbol());
      });
    });
  });
  unsigned Removed = 0;
  for (auto It = Symbols.begin(); It != Symbols.end();) {
    if (!Referenced.count(It->get())) {
      It = Symbols.erase(It);
      ++Removed;
    } else {
      ++It;
    }
  }
  return Removed;
}

Symbol *Function::findSymbol(const std::string &SymName) const {
  for (const auto &S : Symbols)
    if (S->getName() == SymName)
      return S.get();
  return nullptr;
}

Symbol *Function::findSymbolById(unsigned Id) const {
  for (const auto &S : Symbols)
    if (S->getId() == Id)
      return S.get();
  return nullptr;
}

Expr *Function::cloneExpr(const Expr *E) {
  return cloneExprRemap(E, [](Symbol *S) { return S; });
}

Expr *Function::cloneExprRemap(const Expr *E,
                               const std::function<Symbol *(Symbol *)> &Map) {
  switch (E->getKind()) {
  case Expr::ConstIntKind: {
    const auto *C = static_cast<const ConstIntExpr *>(E);
    return makeIntConst(C->getType(), C->getValue());
  }
  case Expr::ConstFloatKind: {
    const auto *C = static_cast<const ConstFloatExpr *>(E);
    return makeFloatConst(C->getType(), C->getValue());
  }
  case Expr::VarRefKind: {
    const auto *V = static_cast<const VarRefExpr *>(E);
    return makeVarRef(Map(V->getSymbol()));
  }
  case Expr::BinaryKind: {
    const auto *B = static_cast<const BinaryExpr *>(E);
    return create<BinaryExpr>(B->getType(), B->getOp(),
                              cloneExprRemap(B->getLHS(), Map),
                              cloneExprRemap(B->getRHS(), Map));
  }
  case Expr::UnaryKind: {
    const auto *U = static_cast<const UnaryExpr *>(E);
    return create<UnaryExpr>(U->getType(), U->getOp(),
                             cloneExprRemap(U->getOperand(), Map));
  }
  case Expr::DerefKind: {
    const auto *D = static_cast<const DerefExpr *>(E);
    return create<DerefExpr>(D->getType(), cloneExprRemap(D->getAddr(), Map));
  }
  case Expr::AddrOfKind: {
    const auto *A = static_cast<const AddrOfExpr *>(E);
    return create<AddrOfExpr>(A->getType(),
                              cloneExprRemap(A->getLValue(), Map));
  }
  case Expr::IndexKind: {
    const auto *I = static_cast<const IndexExpr *>(E);
    std::vector<Expr *> Subs;
    Subs.reserve(I->getSubscripts().size());
    for (Expr *S : I->getSubscripts())
      Subs.push_back(cloneExprRemap(S, Map));
    return create<IndexExpr>(I->getType(), cloneExprRemap(I->getBase(), Map),
                             std::move(Subs));
  }
  case Expr::CastKind: {
    const auto *C = static_cast<const CastExpr *>(E);
    return create<CastExpr>(C->getType(), cloneExprRemap(C->getOperand(), Map));
  }
  case Expr::TripletKind: {
    const auto *T = static_cast<const TripletExpr *>(E);
    return create<TripletExpr>(T->getType(), cloneExprRemap(T->getLo(), Map),
                               cloneExprRemap(T->getHi(), Map),
                               cloneExprRemap(T->getStride(), Map));
  }
  }
  assert(false && "unknown expression kind in clone");
  return nullptr;
}

Stmt *Function::cloneStmtRemap(
    const Stmt *S, const std::function<Symbol *(Symbol *)> &SymMap,
    const std::function<std::string(const std::string &)> &LabelMap) {
  switch (S->getKind()) {
  case Stmt::AssignKind: {
    const auto *A = static_cast<const AssignStmt *>(S);
    auto *New = create<AssignStmt>(A->getLoc(),
                                   cloneExprRemap(A->getLHS(), SymMap),
                                   cloneExprRemap(A->getRHS(), SymMap));
    New->setLoadsConflictFree(A->loadsConflictFree());
    return New;
  }
  case Stmt::CallKind: {
    const auto *C = static_cast<const CallStmt *>(S);
    std::vector<Expr *> Args;
    for (Expr *Arg : C->getArgs())
      Args.push_back(cloneExprRemap(Arg, SymMap));
    Symbol *Result = C->getResult() ? SymMap(C->getResult()) : nullptr;
    return create<CallStmt>(C->getLoc(), Result, C->getCallee(),
                            std::move(Args));
  }
  case Stmt::IfKind: {
    const auto *I = static_cast<const IfStmt *>(S);
    auto *New = create<IfStmt>(I->getLoc(),
                               cloneExprRemap(I->getCond(), SymMap));
    for (const Stmt *Sub : I->getThen().Stmts)
      New->getThen().Stmts.push_back(cloneStmtRemap(Sub, SymMap, LabelMap));
    for (const Stmt *Sub : I->getElse().Stmts)
      New->getElse().Stmts.push_back(cloneStmtRemap(Sub, SymMap, LabelMap));
    return New;
  }
  case Stmt::WhileKind: {
    const auto *W = static_cast<const WhileStmt *>(S);
    auto *New = create<WhileStmt>(W->getLoc(),
                                  cloneExprRemap(W->getCond(), SymMap));
    New->setSafeVectorPragma(W->hasSafeVectorPragma());
    for (const Stmt *Sub : W->getBody().Stmts)
      New->getBody().Stmts.push_back(cloneStmtRemap(Sub, SymMap, LabelMap));
    return New;
  }
  case Stmt::DoLoopKind: {
    const auto *D = static_cast<const DoLoopStmt *>(S);
    auto *New = create<DoLoopStmt>(D->getLoc(), SymMap(D->getIndexVar()),
                                   cloneExprRemap(D->getInit(), SymMap),
                                   cloneExprRemap(D->getLimit(), SymMap),
                                   cloneExprRemap(D->getStep(), SymMap));
    New->setParallel(D->isParallel());
    New->setSafeVectorPragma(D->hasSafeVectorPragma());
    for (const Stmt *Sub : D->getBody().Stmts)
      New->getBody().Stmts.push_back(cloneStmtRemap(Sub, SymMap, LabelMap));
    return New;
  }
  case Stmt::LabelKind: {
    const auto *L = static_cast<const LabelStmt *>(S);
    return create<LabelStmt>(L->getLoc(), LabelMap(L->getName()));
  }
  case Stmt::GotoKind: {
    const auto *G = static_cast<const GotoStmt *>(S);
    return create<GotoStmt>(G->getLoc(), LabelMap(G->getTarget()));
  }
  case Stmt::ReturnKind: {
    const auto *R = static_cast<const ReturnStmt *>(S);
    Expr *Value =
        R->getValue() ? cloneExprRemap(R->getValue(), SymMap) : nullptr;
    return create<ReturnStmt>(R->getLoc(), Value);
  }
  }
  assert(false && "unknown statement kind in clone");
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

Program::Program() : Types(std::make_unique<TypeContext>()) {}

Function *Program::createFunction(std::string Name, const Type *ReturnType) {
  Functions.push_back(
      std::make_unique<Function>(std::move(Name), ReturnType, *this));
  return Functions.back().get();
}

Function *Program::findFunction(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->getName() == Name)
      return F.get();
  return nullptr;
}

void Program::removeFunction(Function *F) {
  for (auto It = Functions.begin(); It != Functions.end(); ++It) {
    if (It->get() == F) {
      Functions.erase(It);
      return;
    }
  }
  assert(false && "function is not part of this program");
}

void Program::replaceFunction(Function *Old, Function *New) {
  auto OldIt = Functions.end(), NewIt = Functions.end();
  for (auto It = Functions.begin(); It != Functions.end(); ++It) {
    if (It->get() == Old)
      OldIt = It;
    else if (It->get() == New)
      NewIt = It;
  }
  assert(OldIt != Functions.end() && NewIt != Functions.end() &&
         "both functions must belong to this program");
  *OldIt = std::move(*NewIt); // destroys Old, moves New into its slot
  Functions.erase(NewIt);
}

Symbol *Program::createGlobal(std::string Name, const Type *Ty,
                              bool IsVolatile) {
  Globals.push_back(std::make_unique<Symbol>(
      NextGlobalId++, std::move(Name), Ty, StorageKind::Global, IsVolatile));
  return Globals.back().get();
}

Symbol *Program::findGlobal(const std::string &Name) const {
  for (const auto &G : Globals)
    if (G->getName() == Name)
      return G.get();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Traversal utilities
//===----------------------------------------------------------------------===//

void il::forEachExprSlot(Stmt *S, const std::function<void(Expr *&)> &Fn) {
  switch (S->getKind()) {
  case Stmt::AssignKind: {
    auto *A = static_cast<AssignStmt *>(S);
    Fn(A->lhsSlot());
    Fn(A->rhsSlot());
    return;
  }
  case Stmt::CallKind: {
    auto *C = static_cast<CallStmt *>(S);
    for (Expr *&Arg : C->argSlots())
      Fn(Arg);
    return;
  }
  case Stmt::IfKind:
    Fn(static_cast<IfStmt *>(S)->condSlot());
    return;
  case Stmt::WhileKind:
    Fn(static_cast<WhileStmt *>(S)->condSlot());
    return;
  case Stmt::DoLoopKind: {
    auto *D = static_cast<DoLoopStmt *>(S);
    Fn(D->initSlot());
    Fn(D->limitSlot());
    Fn(D->stepSlot());
    return;
  }
  case Stmt::ReturnKind: {
    auto *R = static_cast<ReturnStmt *>(S);
    if (R->valueSlot())
      Fn(R->valueSlot());
    return;
  }
  case Stmt::LabelKind:
  case Stmt::GotoKind:
    return;
  }
}

void il::forEachSubExprSlot(Expr *&Slot,
                            const std::function<void(Expr *&)> &Fn) {
  switch (Slot->getKind()) {
  case Expr::ConstIntKind:
  case Expr::ConstFloatKind:
  case Expr::VarRefKind:
    break;
  case Expr::BinaryKind: {
    auto *B = static_cast<BinaryExpr *>(Slot);
    forEachSubExprSlot(B->lhsSlot(), Fn);
    forEachSubExprSlot(B->rhsSlot(), Fn);
    break;
  }
  case Expr::UnaryKind:
    forEachSubExprSlot(static_cast<UnaryExpr *>(Slot)->operandSlot(), Fn);
    break;
  case Expr::DerefKind:
    forEachSubExprSlot(static_cast<DerefExpr *>(Slot)->addrSlot(), Fn);
    break;
  case Expr::AddrOfKind:
    forEachSubExprSlot(static_cast<AddrOfExpr *>(Slot)->lvalueSlot(), Fn);
    break;
  case Expr::IndexKind: {
    auto *I = static_cast<IndexExpr *>(Slot);
    forEachSubExprSlot(I->baseSlot(), Fn);
    for (Expr *&Sub : I->subscriptSlots())
      forEachSubExprSlot(Sub, Fn);
    break;
  }
  case Expr::CastKind:
    forEachSubExprSlot(static_cast<CastExpr *>(Slot)->operandSlot(), Fn);
    break;
  case Expr::TripletKind: {
    auto *T = static_cast<TripletExpr *>(Slot);
    forEachSubExprSlot(T->loSlot(), Fn);
    forEachSubExprSlot(T->hiSlot(), Fn);
    forEachSubExprSlot(T->strideSlot(), Fn);
    break;
  }
  }
  Fn(Slot);
}

void il::forEachValueUseSlot(Expr *&Slot,
                             const std::function<void(Expr *&)> &Fn) {
  switch (Slot->getKind()) {
  case Expr::ConstIntKind:
  case Expr::ConstFloatKind:
    return;
  case Expr::VarRefKind:
    Fn(Slot);
    return;
  case Expr::BinaryKind: {
    auto *B = static_cast<BinaryExpr *>(Slot);
    forEachValueUseSlot(B->lhsSlot(), Fn);
    forEachValueUseSlot(B->rhsSlot(), Fn);
    return;
  }
  case Expr::UnaryKind:
    forEachValueUseSlot(static_cast<UnaryExpr *>(Slot)->operandSlot(), Fn);
    return;
  case Expr::DerefKind:
    forEachValueUseSlot(static_cast<DerefExpr *>(Slot)->addrSlot(), Fn);
    return;
  case Expr::AddrOfKind: {
    // The addressed object is not a value use, but subscripts inside it
    // are.
    Expr *&LV = static_cast<AddrOfExpr *>(Slot)->lvalueSlot();
    if (LV->getKind() == Expr::IndexKind) {
      auto *I = static_cast<IndexExpr *>(LV);
      for (Expr *&Sub : I->subscriptSlots())
        forEachValueUseSlot(Sub, Fn);
    } else if (LV->getKind() == Expr::DerefKind) {
      forEachValueUseSlot(static_cast<DerefExpr *>(LV)->addrSlot(), Fn);
    }
    return;
  }
  case Expr::IndexKind: {
    auto *I = static_cast<IndexExpr *>(Slot);
    // The base names an array object; subscripts are values.
    if (I->getBase()->getKind() == Expr::DerefKind)
      forEachValueUseSlot(
          static_cast<DerefExpr *>(I->baseSlot())->addrSlot(), Fn);
    for (Expr *&Sub : I->subscriptSlots())
      forEachValueUseSlot(Sub, Fn);
    return;
  }
  case Expr::CastKind:
    forEachValueUseSlot(static_cast<CastExpr *>(Slot)->operandSlot(), Fn);
    return;
  case Expr::TripletKind: {
    auto *T = static_cast<TripletExpr *>(Slot);
    forEachValueUseSlot(T->loSlot(), Fn);
    forEachValueUseSlot(T->hiSlot(), Fn);
    forEachValueUseSlot(T->strideSlot(), Fn);
    return;
  }
  }
}

void il::forEachStmt(Block &B, const std::function<void(Stmt *)> &Fn) {
  for (Stmt *S : B.Stmts) {
    Fn(S);
    switch (S->getKind()) {
    case Stmt::IfKind: {
      auto *I = static_cast<IfStmt *>(S);
      forEachStmt(I->getThen(), Fn);
      forEachStmt(I->getElse(), Fn);
      break;
    }
    case Stmt::WhileKind:
      forEachStmt(static_cast<WhileStmt *>(S)->getBody(), Fn);
      break;
    case Stmt::DoLoopKind:
      forEachStmt(static_cast<DoLoopStmt *>(S)->getBody(), Fn);
      break;
    default:
      break;
    }
  }
}

void il::forEachStmt(const Block &B,
                     const std::function<void(const Stmt *)> &Fn) {
  for (const Stmt *S : B.Stmts) {
    Fn(S);
    switch (S->getKind()) {
    case Stmt::IfKind: {
      const auto *I = static_cast<const IfStmt *>(S);
      forEachStmt(I->getThen(), Fn);
      forEachStmt(I->getElse(), Fn);
      break;
    }
    case Stmt::WhileKind:
      forEachStmt(static_cast<const WhileStmt *>(S)->getBody(), Fn);
      break;
    case Stmt::DoLoopKind:
      forEachStmt(static_cast<const DoLoopStmt *>(S)->getBody(), Fn);
      break;
    default:
      break;
    }
  }
}

void il::collectVarRefs(Expr *E, std::vector<VarRefExpr *> &Out) {
  Expr *Slot = E;
  forEachSubExprSlot(Slot, [&Out](Expr *&Sub) {
    if (auto *V = static_cast<VarRefExpr *>(Sub);
        Sub->getKind() == Expr::VarRefKind)
      Out.push_back(V);
  });
}

bool il::exprEquals(const Expr *A, const Expr *B) {
  if (A == B)
    return true;
  if (A->getKind() != B->getKind())
    return false;
  switch (A->getKind()) {
  case Expr::ConstIntKind:
    return static_cast<const ConstIntExpr *>(A)->getValue() ==
           static_cast<const ConstIntExpr *>(B)->getValue();
  case Expr::ConstFloatKind:
    return static_cast<const ConstFloatExpr *>(A)->getValue() ==
           static_cast<const ConstFloatExpr *>(B)->getValue();
  case Expr::VarRefKind:
    return static_cast<const VarRefExpr *>(A)->getSymbol() ==
           static_cast<const VarRefExpr *>(B)->getSymbol();
  case Expr::BinaryKind: {
    const auto *BA = static_cast<const BinaryExpr *>(A);
    const auto *BB = static_cast<const BinaryExpr *>(B);
    return BA->getOp() == BB->getOp() &&
           exprEquals(BA->getLHS(), BB->getLHS()) &&
           exprEquals(BA->getRHS(), BB->getRHS());
  }
  case Expr::UnaryKind: {
    const auto *UA = static_cast<const UnaryExpr *>(A);
    const auto *UB = static_cast<const UnaryExpr *>(B);
    return UA->getOp() == UB->getOp() &&
           exprEquals(UA->getOperand(), UB->getOperand());
  }
  case Expr::DerefKind:
    return exprEquals(static_cast<const DerefExpr *>(A)->getAddr(),
                      static_cast<const DerefExpr *>(B)->getAddr());
  case Expr::AddrOfKind:
    return exprEquals(static_cast<const AddrOfExpr *>(A)->getLValue(),
                      static_cast<const AddrOfExpr *>(B)->getLValue());
  case Expr::IndexKind: {
    const auto *IA = static_cast<const IndexExpr *>(A);
    const auto *IB = static_cast<const IndexExpr *>(B);
    if (!exprEquals(IA->getBase(), IB->getBase()))
      return false;
    if (IA->getSubscripts().size() != IB->getSubscripts().size())
      return false;
    for (size_t I = 0; I < IA->getSubscripts().size(); ++I)
      if (!exprEquals(IA->getSubscripts()[I], IB->getSubscripts()[I]))
        return false;
    return true;
  }
  case Expr::CastKind:
    return A->getType() == B->getType() &&
           exprEquals(static_cast<const CastExpr *>(A)->getOperand(),
                      static_cast<const CastExpr *>(B)->getOperand());
  case Expr::TripletKind: {
    const auto *TA = static_cast<const TripletExpr *>(A);
    const auto *TB = static_cast<const TripletExpr *>(B);
    return exprEquals(TA->getLo(), TB->getLo()) &&
           exprEquals(TA->getHi(), TB->getHi()) &&
           exprEquals(TA->getStride(), TB->getStride());
  }
  }
  return false;
}

bool il::exprReadsVolatile(const Expr *E) {
  bool Found = false;
  Expr *Slot = const_cast<Expr *>(E);
  forEachSubExprSlot(Slot, [&Found](Expr *&Sub) {
    if (Sub->getKind() == Expr::VarRefKind &&
        static_cast<VarRefExpr *>(Sub)->getSymbol()->isVolatile())
      Found = true;
  });
  return Found;
}

bool il::exprTouchesMemory(const Expr *E) {
  bool Found = false;
  Expr *Slot = const_cast<Expr *>(E);
  forEachSubExprSlot(Slot, [&Found](Expr *&Sub) {
    if (Sub->getKind() == Expr::DerefKind ||
        Sub->getKind() == Expr::IndexKind)
      Found = true;
  });
  return Found;
}

bool il::exprHasTriplet(const Expr *E) {
  bool Found = false;
  Expr *Slot = const_cast<Expr *>(E);
  forEachSubExprSlot(Slot, [&Found](Expr *&Sub) {
    if (Sub->getKind() == Expr::TripletKind)
      Found = true;
  });
  return Found;
}
