//===----------------------------------------------------------------------===//
///
/// \file
/// Pointer-free serialization of IL functions.
///
/// The paper (Section 7) eliminates all hard pointers from the IL so that
/// parsed procedures can be saved in catalogs ("math libraries can be
/// 'compiled' into databases and used as a base for inlining").  This
/// module is that facility: a function round-trips through a text
/// S-expression form in which symbols are referenced by integer id and
/// types are spelled structurally.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_IL_ILSERIALIZER_H
#define TCC_IL_ILSERIALIZER_H

#include "il/IL.h"
#include "support/Diagnostics.h"

#include <string>

namespace tcc {
namespace il {

/// Serializes \p F to the catalog text form.
std::string serializeFunction(const Function &F);

/// Reconstructs a function from catalog text into \p P.  Returns null and
/// reports a diagnostic (located within \p Text) on malformed input; a
/// failed read leaves no partial function in \p P.  Global symbols
/// referenced by the function are resolved by name in \p P and created if
/// missing.
Function *deserializeFunction(const std::string &Text, Program &P,
                              DiagnosticEngine &Diags);

/// Checks that \p Text is a syntactically well-formed serialized function
/// (a complete S-expression whose head is `function` with a quoted name)
/// without building any IL.  On success fills \p OutName; on failure
/// reports a diagnostic located within \p Text.  Catalog loaders use this
/// to validate entries cheaply at parse time; semantic problems inside a
/// body (bad opcodes, unknown symbol ids) are still caught when the entry
/// is materialized.
bool validateFunctionText(const std::string &Text, std::string &OutName,
                          DiagnosticEngine &Diags);

} // namespace il
} // namespace tcc

#endif // TCC_IL_ILSERIALIZER_H
