//===----------------------------------------------------------------------===//
///
/// \file
/// Pointer-free serialization of IL functions.
///
/// The paper (Section 7) eliminates all hard pointers from the IL so that
/// parsed procedures can be saved in catalogs ("math libraries can be
/// 'compiled' into databases and used as a base for inlining").  This
/// module is that facility: a function round-trips through a text
/// S-expression form in which symbols are referenced by integer id and
/// types are spelled structurally.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_IL_ILSERIALIZER_H
#define TCC_IL_ILSERIALIZER_H

#include "il/IL.h"
#include "support/Diagnostics.h"

#include <string>

namespace tcc {
namespace il {

/// Serializes \p F to the catalog text form.
std::string serializeFunction(const Function &F);

/// Reconstructs a function from catalog text into \p P.  Returns null and
/// reports a diagnostic on malformed input.  Global symbols referenced by
/// the function are resolved by name in \p P and created if missing.
Function *deserializeFunction(const std::string &Text, Program &P,
                              DiagnosticEngine &Diags);

} // namespace il
} // namespace tcc

#endif // TCC_IL_ILSERIALIZER_H
