#include "il/ILPrinter.h"

#include "support/StringExtras.h"

using namespace tcc;
using namespace tcc::il;

namespace {

/// Precedence for parenthesization when printing.
int printPrecedence(const Expr *E) {
  switch (E->getKind()) {
  case Expr::ConstIntKind:
  case Expr::ConstFloatKind:
  case Expr::VarRefKind:
  case Expr::IndexKind:
    return 100;
  case Expr::TripletKind:
    // Triplets always parenthesize inside operators: *(lo:hi:s).
    return 1;
  case Expr::DerefKind:
  case Expr::AddrOfKind:
  case Expr::UnaryKind:
  case Expr::CastKind:
    return 50;
  case Expr::BinaryKind: {
    switch (static_cast<const BinaryExpr *>(E)->getOp()) {
    case OpCode::Mul:
    case OpCode::Div:
    case OpCode::Rem:
      return 40;
    case OpCode::Add:
    case OpCode::Sub:
      return 39;
    case OpCode::Shl:
    case OpCode::Shr:
      return 38;
    case OpCode::Lt:
    case OpCode::Gt:
    case OpCode::Le:
    case OpCode::Ge:
      return 37;
    case OpCode::Eq:
    case OpCode::Ne:
      return 36;
    case OpCode::BitAnd:
      return 35;
    case OpCode::BitXor:
      return 34;
    case OpCode::BitOr:
      return 33;
    case OpCode::Min:
    case OpCode::Max:
      return 100; // printed as calls
    default:
      return 30;
    }
  }
  }
  return 0;
}

std::string printParen(const Expr *E, int ParentPrec) {
  std::string S = printExpr(E);
  if (printPrecedence(E) < ParentPrec)
    return "(" + S + ")";
  return S;
}

} // namespace

std::string il::printExpr(const Expr *E) {
  switch (E->getKind()) {
  case Expr::ConstIntKind:
    return std::to_string(static_cast<const ConstIntExpr *>(E)->getValue());
  case Expr::ConstFloatKind:
    return formatDouble(static_cast<const ConstFloatExpr *>(E)->getValue());
  case Expr::VarRefKind:
    return static_cast<const VarRefExpr *>(E)->getSymbol()->getName();
  case Expr::BinaryKind: {
    const auto *B = static_cast<const BinaryExpr *>(E);
    if (B->getOp() == OpCode::Min || B->getOp() == OpCode::Max)
      return std::string(opCodeSpelling(B->getOp())) + "(" +
             printExpr(B->getLHS()) + ", " + printExpr(B->getRHS()) + ")";
    int Prec = printPrecedence(B);
    return printParen(B->getLHS(), Prec) + " " + opCodeSpelling(B->getOp()) +
           " " + printParen(B->getRHS(), Prec + 1);
  }
  case Expr::UnaryKind: {
    const auto *U = static_cast<const UnaryExpr *>(E);
    return std::string(opCodeSpelling(U->getOp())) +
           printParen(U->getOperand(), 50);
  }
  case Expr::DerefKind:
    return "*" + printParen(static_cast<const DerefExpr *>(E)->getAddr(), 50);
  case Expr::AddrOfKind:
    return "&" +
           printParen(static_cast<const AddrOfExpr *>(E)->getLValue(), 50);
  case Expr::IndexKind: {
    const auto *I = static_cast<const IndexExpr *>(E);
    std::string Out = printParen(I->getBase(), 100);
    for (const Expr *Sub : I->getSubscripts())
      Out += "[" + printExpr(Sub) + "]";
    return Out;
  }
  case Expr::CastKind: {
    const auto *C = static_cast<const CastExpr *>(E);
    return "(" + C->getType()->str() + ")" +
           printParen(C->getOperand(), 50);
  }
  case Expr::TripletKind: {
    const auto *T = static_cast<const TripletExpr *>(E);
    return printExpr(T->getLo()) + ":" + printExpr(T->getHi()) + ":" +
           printExpr(T->getStride());
  }
  }
  return "<bad-expr>";
}

std::string il::printStmt(const Stmt *S, unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  switch (S->getKind()) {
  case Stmt::AssignKind: {
    const auto *A = static_cast<const AssignStmt *>(S);
    return Pad + printExpr(A->getLHS()) + " = " + printExpr(A->getRHS()) +
           ";\n";
  }
  case Stmt::CallKind: {
    const auto *C = static_cast<const CallStmt *>(S);
    std::string Out = Pad;
    if (C->getResult())
      Out += C->getResult()->getName() + " = ";
    Out += C->getCallee() + "(";
    for (size_t I = 0; I < C->getArgs().size(); ++I) {
      if (I)
        Out += ", ";
      Out += printExpr(C->getArgs()[I]);
    }
    Out += ");\n";
    return Out;
  }
  case Stmt::IfKind: {
    const auto *I = static_cast<const IfStmt *>(S);
    std::string Out =
        Pad + "if (" + printExpr(I->getCond()) + ") {\n";
    Out += printBlock(I->getThen(), Indent + 1);
    if (!I->getElse().empty()) {
      Out += Pad + "} else {\n";
      Out += printBlock(I->getElse(), Indent + 1);
    }
    Out += Pad + "}\n";
    return Out;
  }
  case Stmt::WhileKind: {
    const auto *W = static_cast<const WhileStmt *>(S);
    std::string Out = Pad + "while (" + printExpr(W->getCond()) + ") {\n";
    Out += printBlock(W->getBody(), Indent + 1);
    Out += Pad + "}\n";
    return Out;
  }
  case Stmt::DoLoopKind: {
    const auto *D = static_cast<const DoLoopStmt *>(S);
    std::string Out = Pad + (D->isParallel() ? "do parallel " : "do ");
    Out += D->getIndexVar()->getName() + " = " + printExpr(D->getInit()) +
           ", " + printExpr(D->getLimit()) + ", " + printExpr(D->getStep()) +
           " {\n";
    Out += printBlock(D->getBody(), Indent + 1);
    Out += Pad + "}\n";
    return Out;
  }
  case Stmt::LabelKind:
    return Pad + static_cast<const LabelStmt *>(S)->getName() + ":;\n";
  case Stmt::GotoKind:
    return Pad + "goto " + static_cast<const GotoStmt *>(S)->getTarget() +
           ";\n";
  case Stmt::ReturnKind: {
    const auto *R = static_cast<const ReturnStmt *>(S);
    if (R->getValue())
      return Pad + "return " + printExpr(R->getValue()) + ";\n";
    return Pad + "return;\n";
  }
  }
  return Pad + "<bad-stmt>\n";
}

std::string il::printBlock(const Block &B, unsigned Indent) {
  std::string Out;
  for (const Stmt *S : B.Stmts)
    Out += printStmt(S, Indent);
  return Out;
}

std::string il::printFunction(const Function &F) {
  std::string Out = "function " + F.getName() + "(";
  for (size_t I = 0; I < F.getParams().size(); ++I) {
    if (I)
      Out += ", ";
    Out += F.getParams()[I]->getName() + ": " +
           F.getParams()[I]->getType()->str();
  }
  Out += ") -> " + F.getReturnType()->str() + " {\n";
  // Declarations for non-param symbols.
  for (const auto &S : F.getSymbols()) {
    if (S->getStorage() == StorageKind::Param)
      continue;
    Out += "  decl " + S->getName() + ": " + S->getType()->str();
    if (S->isVolatile())
      Out += " volatile";
    if (S->getStorage() == StorageKind::Static)
      Out += " static";
    Out += ";\n";
  }
  Out += printBlock(F.getBody(), 1);
  Out += "}\n";
  return Out;
}

std::string il::printProgram(const Program &P) {
  std::string Out;
  for (const auto &G : P.getGlobals()) {
    Out += "global " + G->getName() + ": " + G->getType()->str();
    if (G->isVolatile())
      Out += " volatile";
    if (G->hasInit()) {
      const GlobalInit &Init = G->getInit();
      if (Init.IsFloat)
        Out += " = " + formatDouble(Init.FloatValue);
      else
        Out += " = " + std::to_string(Init.IntValue);
    }
    Out += ";\n";
  }
  for (const auto &F : P.getFunctions()) {
    Out += printFunction(*F);
    Out += "\n";
  }
  return Out;
}
