#include "il/ILSerializer.h"

#include "support/StringExtras.h"

#include <cassert>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <map>

using namespace tcc;
using namespace tcc::il;

//===----------------------------------------------------------------------===//
// Writing
//===----------------------------------------------------------------------===//

namespace {

const char *opCodeToken(OpCode Op) {
  switch (Op) {
  case OpCode::Add:
    return "add";
  case OpCode::Sub:
    return "sub";
  case OpCode::Mul:
    return "mul";
  case OpCode::Div:
    return "div";
  case OpCode::Rem:
    return "rem";
  case OpCode::Shl:
    return "shl";
  case OpCode::Shr:
    return "shr";
  case OpCode::Lt:
    return "lt";
  case OpCode::Gt:
    return "gt";
  case OpCode::Le:
    return "le";
  case OpCode::Ge:
    return "ge";
  case OpCode::Eq:
    return "eq";
  case OpCode::Ne:
    return "ne";
  case OpCode::BitAnd:
    return "band";
  case OpCode::BitOr:
    return "bor";
  case OpCode::BitXor:
    return "bxor";
  case OpCode::Min:
    return "min";
  case OpCode::Max:
    return "max";
  case OpCode::Neg:
    return "neg";
  case OpCode::LogNot:
    return "lognot";
  case OpCode::BitNot:
    return "bitnot";
  }
  return "?";
}

bool opCodeFromToken(const std::string &Tok, OpCode &Out) {
  static const std::map<std::string, OpCode> Table = {
      {"add", OpCode::Add},       {"sub", OpCode::Sub},
      {"mul", OpCode::Mul},       {"div", OpCode::Div},
      {"rem", OpCode::Rem},       {"shl", OpCode::Shl},
      {"shr", OpCode::Shr},       {"lt", OpCode::Lt},
      {"gt", OpCode::Gt},         {"le", OpCode::Le},
      {"ge", OpCode::Ge},         {"eq", OpCode::Eq},
      {"ne", OpCode::Ne},         {"band", OpCode::BitAnd},
      {"bor", OpCode::BitOr},     {"bxor", OpCode::BitXor},
      {"min", OpCode::Min},       {"max", OpCode::Max},
      {"neg", OpCode::Neg},       {"lognot", OpCode::LogNot},
      {"bitnot", OpCode::BitNot},
  };
  auto It = Table.find(Tok);
  if (It == Table.end())
    return false;
  Out = It->second;
  return true;
}

const char *storageToken(StorageKind K) {
  switch (K) {
  case StorageKind::Global:
    return "global";
  case StorageKind::Static:
    return "static";
  case StorageKind::Local:
    return "local";
  case StorageKind::Param:
    return "param";
  case StorageKind::Temp:
    return "temp";
  }
  return "?";
}

bool storageFromToken(const std::string &Tok, StorageKind &Out) {
  if (Tok == "global")
    Out = StorageKind::Global;
  else if (Tok == "static")
    Out = StorageKind::Static;
  else if (Tok == "local")
    Out = StorageKind::Local;
  else if (Tok == "param")
    Out = StorageKind::Param;
  else if (Tok == "temp")
    Out = StorageKind::Temp;
  else
    return false;
  return true;
}

void writeType(const Type *Ty, std::string &Out) {
  switch (Ty->getKind()) {
  case Type::VoidKind:
    Out += "void";
    return;
  case Type::CharKind:
    Out += "char";
    return;
  case Type::IntKind:
    Out += "int";
    return;
  case Type::FloatKind:
    Out += "float";
    return;
  case Type::DoubleKind:
    Out += "double";
    return;
  case Type::PointerKind:
    Out += "(ptr ";
    writeType(Ty->getElementType(), Out);
    Out += ")";
    return;
  case Type::ArrayKind:
    Out += "(arr " + std::to_string(Ty->getArraySize()) + " ";
    writeType(Ty->getElementType(), Out);
    Out += ")";
    return;
  case Type::FunctionKind:
    assert(false && "function types are not serialized");
    return;
  }
}

void writeQuoted(const std::string &S, std::string &Out) {
  Out += '"';
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += '"';
}

class Writer {
public:
  explicit Writer(const Function &F) : F(F) {}

  std::string run() {
    // Symbols are renumbered densely (1..N in declaration order) on every
    // write.  In-memory ids can have gaps (removeUnusedSymbols) or
    // arbitrary numbering; writing them verbatim would make
    // serialize(deserialize(text)) differ from text, because
    // deserialization always re-creates symbols with fresh sequential
    // ids.  Dense ids make serialization a fixed point under round-trips.
    unsigned NextDense = 1;
    for (const auto &S : F.getSymbols())
      DenseIds[S.get()] = NextDense++;

    Out += "(function ";
    writeQuoted(F.getName(), Out);
    Out += " (ret ";
    writeType(F.getReturnType(), Out);
    Out += ") (fortran-pointers ";
    Out += F.hasFortranPointerSemantics() ? "1" : "0";
    Out += ")\n (symbols\n";
    for (const auto &S : F.getSymbols()) {
      Out += "  (sym " + std::to_string(denseId(S.get())) + " ";
      writeQuoted(S->getName(), Out);
      Out += " ";
      writeType(S->getType(), Out);
      Out += " ";
      Out += storageToken(S->getStorage());
      Out += S->isVolatile() ? " 1" : " 0";
      if (S->hasInit()) {
        const GlobalInit &Init = S->getInit();
        if (Init.IsFloat)
          Out += " (init f " + formatDouble(Init.FloatValue) + ")";
        else
          Out += " (init i " + std::to_string(Init.IntValue) + ")";
      }
      Out += ")\n";
    }
    Out += " )\n (params";
    for (const Symbol *P : F.getParams())
      Out += " " + std::to_string(denseId(P));
    Out += ")\n (body\n";
    writeBlock(F.getBody(), 2);
    Out += " ))\n";
    return std::move(Out);
  }

private:
  void writeExpr(const Expr *E) {
    switch (E->getKind()) {
    case Expr::ConstIntKind: {
      const auto *C = static_cast<const ConstIntExpr *>(E);
      Out += "(cint ";
      writeType(C->getType(), Out);
      Out += " " + std::to_string(C->getValue()) + ")";
      return;
    }
    case Expr::ConstFloatKind: {
      const auto *C = static_cast<const ConstFloatExpr *>(E);
      Out += "(cfloat ";
      writeType(C->getType(), Out);
      Out += " " + formatDouble(C->getValue()) + ")";
      return;
    }
    case Expr::VarRefKind: {
      const Symbol *S = static_cast<const VarRefExpr *>(E)->getSymbol();
      if (S->getStorage() == StorageKind::Global) {
        Out += "(gvar ";
        writeQuoted(S->getName(), Out);
        Out += " ";
        writeType(S->getType(), Out);
        Out += S->isVolatile() ? " 1" : " 0";
        Out += ")";
      } else {
        Out += "(var " + std::to_string(denseId(S)) + ")";
      }
      return;
    }
    case Expr::BinaryKind: {
      const auto *B = static_cast<const BinaryExpr *>(E);
      Out += "(binop ";
      Out += opCodeToken(B->getOp());
      Out += " ";
      writeType(B->getType(), Out);
      Out += " ";
      writeExpr(B->getLHS());
      Out += " ";
      writeExpr(B->getRHS());
      Out += ")";
      return;
    }
    case Expr::UnaryKind: {
      const auto *U = static_cast<const UnaryExpr *>(E);
      Out += "(unop ";
      Out += opCodeToken(U->getOp());
      Out += " ";
      writeType(U->getType(), Out);
      Out += " ";
      writeExpr(U->getOperand());
      Out += ")";
      return;
    }
    case Expr::DerefKind: {
      const auto *D = static_cast<const DerefExpr *>(E);
      Out += "(deref ";
      writeType(D->getType(), Out);
      Out += " ";
      writeExpr(D->getAddr());
      Out += ")";
      return;
    }
    case Expr::AddrOfKind: {
      const auto *A = static_cast<const AddrOfExpr *>(E);
      Out += "(addrof ";
      writeType(A->getType(), Out);
      Out += " ";
      writeExpr(A->getLValue());
      Out += ")";
      return;
    }
    case Expr::IndexKind: {
      const auto *I = static_cast<const IndexExpr *>(E);
      Out += "(index ";
      writeType(I->getType(), Out);
      Out += " ";
      writeExpr(I->getBase());
      for (const Expr *Sub : I->getSubscripts()) {
        Out += " ";
        writeExpr(Sub);
      }
      Out += ")";
      return;
    }
    case Expr::CastKind: {
      const auto *C = static_cast<const CastExpr *>(E);
      Out += "(cast ";
      writeType(C->getType(), Out);
      Out += " ";
      writeExpr(C->getOperand());
      Out += ")";
      return;
    }
    case Expr::TripletKind: {
      const auto *T = static_cast<const TripletExpr *>(E);
      Out += "(triplet ";
      writeType(T->getType(), Out);
      Out += " ";
      writeExpr(T->getLo());
      Out += " ";
      writeExpr(T->getHi());
      Out += " ";
      writeExpr(T->getStride());
      Out += ")";
      return;
    }
    }
  }

  void writeBlock(const Block &B, unsigned Indent) {
    for (const Stmt *S : B.Stmts)
      writeStmt(S, Indent);
  }

  void writeStmt(const Stmt *S, unsigned Indent) {
    Out += std::string(Indent, ' ');
    switch (S->getKind()) {
    case Stmt::AssignKind: {
      const auto *A = static_cast<const AssignStmt *>(S);
      Out += "(assign ";
      Out += A->loadsConflictFree() ? "1 " : "0 ";
      writeExpr(A->getLHS());
      Out += " ";
      writeExpr(A->getRHS());
      Out += ")\n";
      return;
    }
    case Stmt::CallKind: {
      const auto *C = static_cast<const CallStmt *>(S);
      Out += "(call ";
      Out += C->getResult() ? std::to_string(denseId(C->getResult())) : "0";
      Out += " ";
      writeQuoted(C->getCallee(), Out);
      for (const Expr *Arg : C->getArgs()) {
        Out += " ";
        writeExpr(Arg);
      }
      Out += ")\n";
      return;
    }
    case Stmt::IfKind: {
      const auto *I = static_cast<const IfStmt *>(S);
      Out += "(if ";
      writeExpr(I->getCond());
      Out += " (block\n";
      writeBlock(I->getThen(), Indent + 1);
      Out += std::string(Indent, ' ') + ") (block\n";
      writeBlock(I->getElse(), Indent + 1);
      Out += std::string(Indent, ' ') + "))\n";
      return;
    }
    case Stmt::WhileKind: {
      const auto *W = static_cast<const WhileStmt *>(S);
      Out += "(while ";
      Out += W->hasSafeVectorPragma() ? "1 " : "0 ";
      writeExpr(W->getCond());
      Out += " (block\n";
      writeBlock(W->getBody(), Indent + 1);
      Out += std::string(Indent, ' ') + "))\n";
      return;
    }
    case Stmt::DoLoopKind: {
      const auto *D = static_cast<const DoLoopStmt *>(S);
      Out += "(do " + std::to_string(denseId(D->getIndexVar())) + " ";
      Out += D->isParallel() ? "1 " : "0 ";
      Out += D->hasSafeVectorPragma() ? "1 " : "0 ";
      writeExpr(D->getInit());
      Out += " ";
      writeExpr(D->getLimit());
      Out += " ";
      writeExpr(D->getStep());
      Out += " (block\n";
      writeBlock(D->getBody(), Indent + 1);
      Out += std::string(Indent, ' ') + "))\n";
      return;
    }
    case Stmt::LabelKind:
      Out += "(label ";
      writeQuoted(static_cast<const LabelStmt *>(S)->getName(), Out);
      Out += ")\n";
      return;
    case Stmt::GotoKind:
      Out += "(goto ";
      writeQuoted(static_cast<const GotoStmt *>(S)->getTarget(), Out);
      Out += ")\n";
      return;
    case Stmt::ReturnKind: {
      const auto *R = static_cast<const ReturnStmt *>(S);
      if (R->getValue()) {
        Out += "(return ";
        writeExpr(R->getValue());
        Out += ")\n";
      } else {
        Out += "(return)\n";
      }
      return;
    }
    }
  }

  unsigned denseId(const Symbol *S) const {
    auto It = DenseIds.find(S);
    assert(It != DenseIds.end() && "reference to symbol outside function");
    return It == DenseIds.end() ? 0 : It->second;
  }

  const Function &F;
  std::map<const Symbol *, unsigned> DenseIds;
  std::string Out;
};

} // namespace

std::string il::serializeFunction(const Function &F) {
  return Writer(F).run();
}

//===----------------------------------------------------------------------===//
// Reading
//===----------------------------------------------------------------------===//

namespace {

/// A parsed S-expression: an atom (number, word, quoted string) or a list.
/// Out-of-range element access yields a shared empty sentinel atom instead
/// of undefined behavior, so malformed (truncated) input degrades into a
/// located "unexpected form" diagnostic rather than a crash.
struct SExpr {
  bool IsAtom = true;
  bool WasQuoted = false;
  std::string Atom;
  std::vector<SExpr> List;
  SourceLoc Loc; ///< Position of this value in the catalog text.

  static const SExpr &sentinel() {
    static const SExpr Empty;
    return Empty;
  }

  const SExpr &at(size_t I) const {
    return I < List.size() ? List[I] : sentinel();
  }
  size_t size() const { return List.size(); }
  const std::string &head() const { return at(0).Atom; }
};

class SExprParser {
public:
  SExprParser(const std::string &Text, DiagnosticEngine &Diags)
      : Text(Text), Diags(Diags) {}

  bool parse(SExpr &Out) {
    if (!parseValue(Out))
      return false;
    skipWs();
    if (Pos < Text.size()) {
      fail("trailing text after catalog entry");
      return false;
    }
    return true;
  }

  bool Failed = false;

private:
  void advance() {
    if (Text[Pos] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++Pos;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      advance();
  }

  SourceLoc here() const { return SourceLoc(Line, Col); }

  bool parseValue(SExpr &Out) {
    skipWs();
    if (Pos >= Text.size()) {
      fail("unexpected end of catalog text");
      return false;
    }
    Out.Loc = here();
    char C = Text[Pos];
    if (C == '(') {
      advance();
      Out.IsAtom = false;
      for (;;) {
        skipWs();
        if (Pos >= Text.size()) {
          fail(Out.Loc, "unterminated list in catalog text");
          return false;
        }
        if (Text[Pos] == ')') {
          advance();
          return true;
        }
        SExpr Child;
        if (!parseValue(Child))
          return false;
        Out.List.push_back(std::move(Child));
      }
    }
    if (C == '"') {
      advance();
      Out.IsAtom = true;
      Out.WasQuoted = true;
      while (Pos < Text.size() && Text[Pos] != '"') {
        if (Text[Pos] == '\\' && Pos + 1 < Text.size())
          advance();
        Out.Atom += Text[Pos];
        advance();
      }
      if (Pos >= Text.size()) {
        fail(Out.Loc, "unterminated string in catalog text");
        return false;
      }
      advance(); // closing quote
      return true;
    }
    // Plain atom.
    Out.IsAtom = true;
    size_t Start = Pos;
    while (Pos < Text.size() && !std::isspace((unsigned char)Text[Pos]) &&
           Text[Pos] != '(' && Text[Pos] != ')')
      advance();
    Out.Atom = Text.substr(Start, Pos - Start);
    if (Out.Atom.empty()) {
      fail("empty atom in catalog text");
      return false;
    }
    return true;
  }

  void fail(const char *Msg) { fail(here(), Msg); }
  void fail(SourceLoc Loc, const char *Msg) {
    if (!Failed)
      Diags.error(Loc, Msg);
    Failed = true;
  }

  const std::string &Text;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

class Reader {
public:
  Reader(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  Function *run(const SExpr &Root) {
    if (Root.IsAtom || Root.size() < 7 || Root.head() != "function")
      return fail(Root, "catalog entry is not a function");
    if (!Root.at(1).WasQuoted)
      return fail(Root.at(1), "missing function name in catalog entry");
    const std::string &Name = Root.at(1).Atom;
    const SExpr &RetForm = Root.at(2);
    if (RetForm.IsAtom || RetForm.head() != "ret")
      return fail(RetForm, "missing (ret ...) in catalog entry");
    const Type *RetTy = readType(RetForm.at(1));
    if (!RetTy)
      return nullptr;
    F = P.createFunction(Name, RetTy);

    const SExpr &FP = Root.at(3);
    if (!FP.IsAtom && FP.head() == "fortran-pointers")
      F->setFortranPointerSemantics(FP.at(1).Atom == "1");

    const SExpr &Syms = Root.at(4);
    if (Syms.IsAtom || Syms.head() != "symbols")
      return fail(Syms, "missing (symbols ...) in catalog entry");
    for (size_t I = 1; I < Syms.size(); ++I) {
      const SExpr &SF = Syms.at(I);
      if (SF.IsAtom || SF.size() < 6 || SF.head() != "sym")
        return fail(SF, "malformed symbol in catalog entry");
      unsigned Id;
      if (!readUnsigned(SF.at(1), Id))
        return nullptr;
      const Type *Ty = readType(SF.at(3));
      if (!Ty)
        return nullptr;
      StorageKind Storage;
      if (!storageFromToken(SF.at(4).Atom, Storage))
        return fail(SF.at(4), "bad storage class in catalog entry");
      Symbol *S = F->createSymbol(SF.at(2).Atom, Ty, Storage,
                                  SF.at(5).Atom == "1");
      if (SF.size() > 6) {
        const SExpr &InitForm = SF.at(6);
        if (InitForm.IsAtom || InitForm.size() < 3 ||
            InitForm.head() != "init")
          return fail(InitForm, "malformed symbol init in catalog entry");
        GlobalInit Init;
        if (InitForm.at(1).Atom == "f") {
          Init.IsFloat = true;
          if (!readDouble(InitForm.at(2), Init.FloatValue))
            return nullptr;
        } else if (!readInt64(InitForm.at(2), Init.IntValue)) {
          return nullptr;
        }
        S->setInit(Init);
      }
      SymbolsById[Id] = S;
    }

    const SExpr &Params = Root.at(5);
    if (Params.IsAtom || Params.head() != "params")
      return fail(Params, "missing (params ...) in catalog entry");
    for (size_t I = 1; I < Params.size(); ++I) {
      Symbol *S = readSymbolRef(Params.at(I));
      if (!S)
        return nullptr;
      F->addParam(S);
    }

    const SExpr &Body = Root.at(6);
    if (Body.IsAtom || Body.head() != "body")
      return fail(Body, "missing (body ...) in catalog entry");
    for (size_t I = 1; I < Body.size(); ++I) {
      Stmt *S = readStmt(Body.at(I));
      if (!S)
        return nullptr;
      F->getBody().Stmts.push_back(S);
    }
    return Failed ? nullptr : F;
  }

  /// The function created before a failure (if any), so the caller can
  /// drop the half-built definition from the program.
  Function *created() const { return F; }

private:
  Function *fail(const SExpr &At, const char *Msg) {
    if (!Failed)
      Diags.error(At.Loc, Msg);
    Failed = true;
    return nullptr;
  }

  /// Strict decimal parsing; std::stoul-style conversion throws on
  /// malformed text, which a catalog reader must never do.
  bool readUnsigned(const SExpr &E, unsigned &Out) {
    unsigned long V = 0;
    if (!E.IsAtom || E.WasQuoted || E.Atom.empty() ||
        !std::isdigit(static_cast<unsigned char>(E.Atom[0]))) {
      fail(E, "expected unsigned integer in catalog entry");
      return false;
    }
    errno = 0;
    char *End = nullptr;
    V = std::strtoul(E.Atom.c_str(), &End, 10);
    if (errno != 0 || End == E.Atom.c_str() || *End != '\0' ||
        V > std::numeric_limits<unsigned>::max()) {
      fail(E, "expected unsigned integer in catalog entry");
      return false;
    }
    Out = static_cast<unsigned>(V);
    return true;
  }

  bool readInt64(const SExpr &E, int64_t &Out) {
    if (!E.IsAtom || E.WasQuoted || E.Atom.empty()) {
      fail(E, "expected integer in catalog entry");
      return false;
    }
    errno = 0;
    char *End = nullptr;
    long long V = std::strtoll(E.Atom.c_str(), &End, 10);
    if (errno != 0 || End == E.Atom.c_str() || *End != '\0') {
      fail(E, "expected integer in catalog entry");
      return false;
    }
    Out = V;
    return true;
  }

  bool readDouble(const SExpr &E, double &Out) {
    if (!E.IsAtom || E.WasQuoted || E.Atom.empty()) {
      fail(E, "expected number in catalog entry");
      return false;
    }
    errno = 0;
    char *End = nullptr;
    double V = std::strtod(E.Atom.c_str(), &End);
    if (End == E.Atom.c_str() || *End != '\0') {
      fail(E, "expected number in catalog entry");
      return false;
    }
    Out = V;
    return true;
  }

  Symbol *readSymbolRef(const SExpr &E) {
    unsigned Id;
    if (!readUnsigned(E, Id))
      return nullptr;
    auto It = SymbolsById.find(Id);
    if (It == SymbolsById.end()) {
      fail(E, "reference to unknown symbol id in catalog entry");
      return nullptr;
    }
    return It->second;
  }

  const Type *readType(const SExpr &E) {
    TypeContext &Types = P.getTypes();
    if (E.IsAtom) {
      if (E.Atom == "void")
        return Types.getVoidType();
      if (E.Atom == "char")
        return Types.getCharType();
      if (E.Atom == "int")
        return Types.getIntType();
      if (E.Atom == "float")
        return Types.getFloatType();
      if (E.Atom == "double")
        return Types.getDoubleType();
      fail(E, "unknown type atom in catalog entry");
      return nullptr;
    }
    if (E.head() == "ptr") {
      const Type *Inner = readType(E.at(1));
      return Inner ? Types.getPointerType(Inner) : nullptr;
    }
    if (E.head() == "arr") {
      int64_t Size;
      if (!readInt64(E.at(1), Size))
        return nullptr;
      const Type *Inner = readType(E.at(2));
      return Inner ? Types.getArrayType(Inner, Size) : nullptr;
    }
    fail(E, "unknown type form in catalog entry");
    return nullptr;
  }

  Expr *readExpr(const SExpr &E) {
    if (E.IsAtom) {
      fail(E, "expected expression form in catalog entry");
      return nullptr;
    }
    const std::string &H = E.head();
    if (H == "cint") {
      const Type *Ty = readType(E.at(1));
      int64_t Value;
      if (!Ty || !readInt64(E.at(2), Value))
        return nullptr;
      return F->makeIntConst(Ty, Value);
    }
    if (H == "cfloat") {
      const Type *Ty = readType(E.at(1));
      double Value;
      if (!Ty || !readDouble(E.at(2), Value))
        return nullptr;
      return F->makeFloatConst(Ty, Value);
    }
    if (H == "var") {
      Symbol *S = readSymbolRef(E.at(1));
      return S ? F->makeVarRef(S) : nullptr;
    }
    if (H == "gvar") {
      const Type *Ty = readType(E.at(2));
      if (!Ty)
        return nullptr;
      Symbol *G = P.findGlobal(E.at(1).Atom);
      if (!G)
        G = P.createGlobal(E.at(1).Atom, Ty, E.at(3).Atom == "1");
      return F->makeVarRef(G);
    }
    if (H == "binop") {
      OpCode Op;
      if (!opCodeFromToken(E.at(1).Atom, Op)) {
        fail(E, "unknown binary opcode in catalog entry");
        return nullptr;
      }
      const Type *Ty = readType(E.at(2));
      Expr *L = readExpr(E.at(3));
      Expr *R = readExpr(E.at(4));
      return (Ty && L && R) ? F->create<BinaryExpr>(Ty, Op, L, R) : nullptr;
    }
    if (H == "unop") {
      OpCode Op;
      if (!opCodeFromToken(E.at(1).Atom, Op)) {
        fail(E, "unknown unary opcode in catalog entry");
        return nullptr;
      }
      const Type *Ty = readType(E.at(2));
      Expr *Operand = readExpr(E.at(3));
      return (Ty && Operand) ? F->create<UnaryExpr>(Ty, Op, Operand) : nullptr;
    }
    if (H == "deref") {
      const Type *Ty = readType(E.at(1));
      Expr *Addr = readExpr(E.at(2));
      return (Ty && Addr) ? F->create<DerefExpr>(Ty, Addr) : nullptr;
    }
    if (H == "addrof") {
      const Type *Ty = readType(E.at(1));
      Expr *LValue = readExpr(E.at(2));
      return (Ty && LValue) ? F->create<AddrOfExpr>(Ty, LValue) : nullptr;
    }
    if (H == "index") {
      const Type *Ty = readType(E.at(1));
      Expr *Base = readExpr(E.at(2));
      if (!Ty || !Base)
        return nullptr;
      std::vector<Expr *> Subs;
      for (size_t I = 3; I < E.size(); ++I) {
        Expr *Sub = readExpr(E.at(I));
        if (!Sub)
          return nullptr;
        Subs.push_back(Sub);
      }
      return F->create<IndexExpr>(Ty, Base, std::move(Subs));
    }
    if (H == "cast") {
      const Type *Ty = readType(E.at(1));
      Expr *Operand = readExpr(E.at(2));
      return (Ty && Operand) ? F->create<CastExpr>(Ty, Operand) : nullptr;
    }
    if (H == "triplet") {
      const Type *Ty = readType(E.at(1));
      Expr *Lo = readExpr(E.at(2));
      Expr *Hi = readExpr(E.at(3));
      Expr *Stride = readExpr(E.at(4));
      return (Ty && Lo && Hi && Stride)
                 ? F->create<TripletExpr>(Ty, Lo, Hi, Stride)
                 : nullptr;
    }
    fail(E, "unknown expression form in catalog entry");
    return nullptr;
  }

  bool readBlock(const SExpr &E, Block &Out) {
    if (E.IsAtom || E.head() != "block") {
      fail(E, "expected (block ...) in catalog entry");
      return false;
    }
    for (size_t I = 1; I < E.size(); ++I) {
      Stmt *S = readStmt(E.at(I));
      if (!S)
        return false;
      Out.Stmts.push_back(S);
    }
    return true;
  }

  Stmt *readStmt(const SExpr &E) {
    if (E.IsAtom) {
      fail(E, "expected statement form in catalog entry");
      return nullptr;
    }
    const std::string &H = E.head();
    SourceLoc Loc;
    if (H == "assign") {
      // Current form carries the conflict-free-loads mark positionally
      // like `do`/`while` flags; entries written before the mark existed
      // start directly with the LHS list and default it to off.
      bool HasFlag = E.at(1).IsAtom;
      bool ConflictFree = HasFlag && E.at(1).Atom == "1";
      Expr *L = readExpr(E.at(HasFlag ? 2 : 1));
      Expr *R = readExpr(E.at(HasFlag ? 3 : 2));
      if (!L || !R)
        return nullptr;
      auto *S = F->create<AssignStmt>(Loc, L, R);
      S->setLoadsConflictFree(ConflictFree);
      return S;
    }
    if (H == "call") {
      Symbol *Result = nullptr;
      unsigned Id;
      if (!readUnsigned(E.at(1), Id))
        return nullptr;
      if (Id != 0) {
        Result = readSymbolRef(E.at(1));
        if (!Result)
          return nullptr;
      }
      std::vector<Expr *> Args;
      for (size_t I = 3; I < E.size(); ++I) {
        Expr *Arg = readExpr(E.at(I));
        if (!Arg)
          return nullptr;
        Args.push_back(Arg);
      }
      return F->create<CallStmt>(Loc, Result, E.at(2).Atom, std::move(Args));
    }
    if (H == "if") {
      Expr *Cond = readExpr(E.at(1));
      if (!Cond)
        return nullptr;
      auto *S = F->create<IfStmt>(Loc, Cond);
      if (!readBlock(E.at(2), S->getThen()) ||
          !readBlock(E.at(3), S->getElse()))
        return nullptr;
      return S;
    }
    if (H == "while") {
      Expr *Cond = readExpr(E.at(2));
      if (!Cond)
        return nullptr;
      auto *S = F->create<WhileStmt>(Loc, Cond);
      S->setSafeVectorPragma(E.at(1).Atom == "1");
      if (!readBlock(E.at(3), S->getBody()))
        return nullptr;
      return S;
    }
    if (H == "do") {
      Symbol *Idx = readSymbolRef(E.at(1));
      Expr *Init = readExpr(E.at(4));
      Expr *Limit = readExpr(E.at(5));
      Expr *Step = readExpr(E.at(6));
      if (!Idx || !Init || !Limit || !Step)
        return nullptr;
      auto *S = F->create<DoLoopStmt>(Loc, Idx, Init, Limit, Step);
      S->setParallel(E.at(2).Atom == "1");
      S->setSafeVectorPragma(E.at(3).Atom == "1");
      if (!readBlock(E.at(7), S->getBody()))
        return nullptr;
      return S;
    }
    if (H == "label")
      return F->create<LabelStmt>(Loc, E.at(1).Atom);
    if (H == "goto")
      return F->create<GotoStmt>(Loc, E.at(1).Atom);
    if (H == "return") {
      Expr *Value = nullptr;
      if (E.size() > 1) {
        Value = readExpr(E.at(1));
        if (!Value)
          return nullptr;
      }
      return F->create<ReturnStmt>(Loc, Value);
    }
    fail(E, "unknown statement form in catalog entry");
    return nullptr;
  }

  Program &P;
  DiagnosticEngine &Diags;
  Function *F = nullptr;
  std::map<unsigned, Symbol *> SymbolsById;
  bool Failed = false;
};

} // namespace

bool il::validateFunctionText(const std::string &Text, std::string &OutName,
                              DiagnosticEngine &Diags) {
  SExprParser Parser(Text, Diags);
  SExpr Root;
  if (!Parser.parse(Root))
    return false;
  if (Root.IsAtom || Root.head() != "function") {
    Diags.error(Root.Loc, "catalog entry is not a function");
    return false;
  }
  if (!Root.at(1).WasQuoted) {
    Diags.error(Root.at(1).Loc, "missing function name in catalog entry");
    return false;
  }
  OutName = Root.at(1).Atom;
  return true;
}

Function *il::deserializeFunction(const std::string &Text, Program &P,
                                  DiagnosticEngine &Diags) {
  SExprParser Parser(Text, Diags);
  SExpr Root;
  if (!Parser.parse(Root))
    return nullptr;
  Reader R(P, Diags);
  Function *Result = R.run(Root);
  // A failed read must not leave a half-built definition behind: later
  // Program::findFunction lookups would treat it as a real body.
  if (!Result && R.created())
    P.removeFunction(R.created());
  return Result;
}
