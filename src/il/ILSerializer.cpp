#include "il/ILSerializer.h"

#include "support/StringExtras.h"

#include <cctype>
#include <map>

using namespace tcc;
using namespace tcc::il;

//===----------------------------------------------------------------------===//
// Writing
//===----------------------------------------------------------------------===//

namespace {

const char *opCodeToken(OpCode Op) {
  switch (Op) {
  case OpCode::Add:
    return "add";
  case OpCode::Sub:
    return "sub";
  case OpCode::Mul:
    return "mul";
  case OpCode::Div:
    return "div";
  case OpCode::Rem:
    return "rem";
  case OpCode::Shl:
    return "shl";
  case OpCode::Shr:
    return "shr";
  case OpCode::Lt:
    return "lt";
  case OpCode::Gt:
    return "gt";
  case OpCode::Le:
    return "le";
  case OpCode::Ge:
    return "ge";
  case OpCode::Eq:
    return "eq";
  case OpCode::Ne:
    return "ne";
  case OpCode::BitAnd:
    return "band";
  case OpCode::BitOr:
    return "bor";
  case OpCode::BitXor:
    return "bxor";
  case OpCode::Min:
    return "min";
  case OpCode::Max:
    return "max";
  case OpCode::Neg:
    return "neg";
  case OpCode::LogNot:
    return "lognot";
  case OpCode::BitNot:
    return "bitnot";
  }
  return "?";
}

bool opCodeFromToken(const std::string &Tok, OpCode &Out) {
  static const std::map<std::string, OpCode> Table = {
      {"add", OpCode::Add},       {"sub", OpCode::Sub},
      {"mul", OpCode::Mul},       {"div", OpCode::Div},
      {"rem", OpCode::Rem},       {"shl", OpCode::Shl},
      {"shr", OpCode::Shr},       {"lt", OpCode::Lt},
      {"gt", OpCode::Gt},         {"le", OpCode::Le},
      {"ge", OpCode::Ge},         {"eq", OpCode::Eq},
      {"ne", OpCode::Ne},         {"band", OpCode::BitAnd},
      {"bor", OpCode::BitOr},     {"bxor", OpCode::BitXor},
      {"min", OpCode::Min},       {"max", OpCode::Max},
      {"neg", OpCode::Neg},       {"lognot", OpCode::LogNot},
      {"bitnot", OpCode::BitNot},
  };
  auto It = Table.find(Tok);
  if (It == Table.end())
    return false;
  Out = It->second;
  return true;
}

const char *storageToken(StorageKind K) {
  switch (K) {
  case StorageKind::Global:
    return "global";
  case StorageKind::Static:
    return "static";
  case StorageKind::Local:
    return "local";
  case StorageKind::Param:
    return "param";
  case StorageKind::Temp:
    return "temp";
  }
  return "?";
}

bool storageFromToken(const std::string &Tok, StorageKind &Out) {
  if (Tok == "global")
    Out = StorageKind::Global;
  else if (Tok == "static")
    Out = StorageKind::Static;
  else if (Tok == "local")
    Out = StorageKind::Local;
  else if (Tok == "param")
    Out = StorageKind::Param;
  else if (Tok == "temp")
    Out = StorageKind::Temp;
  else
    return false;
  return true;
}

void writeType(const Type *Ty, std::string &Out) {
  switch (Ty->getKind()) {
  case Type::VoidKind:
    Out += "void";
    return;
  case Type::CharKind:
    Out += "char";
    return;
  case Type::IntKind:
    Out += "int";
    return;
  case Type::FloatKind:
    Out += "float";
    return;
  case Type::DoubleKind:
    Out += "double";
    return;
  case Type::PointerKind:
    Out += "(ptr ";
    writeType(Ty->getElementType(), Out);
    Out += ")";
    return;
  case Type::ArrayKind:
    Out += "(arr " + std::to_string(Ty->getArraySize()) + " ";
    writeType(Ty->getElementType(), Out);
    Out += ")";
    return;
  case Type::FunctionKind:
    assert(false && "function types are not serialized");
    return;
  }
}

void writeQuoted(const std::string &S, std::string &Out) {
  Out += '"';
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += '"';
}

class Writer {
public:
  explicit Writer(const Function &F) : F(F) {}

  std::string run() {
    Out += "(function ";
    writeQuoted(F.getName(), Out);
    Out += " (ret ";
    writeType(F.getReturnType(), Out);
    Out += ") (fortran-pointers ";
    Out += F.hasFortranPointerSemantics() ? "1" : "0";
    Out += ")\n (symbols\n";
    for (const auto &S : F.getSymbols()) {
      Out += "  (sym " + std::to_string(S->getId()) + " ";
      writeQuoted(S->getName(), Out);
      Out += " ";
      writeType(S->getType(), Out);
      Out += " ";
      Out += storageToken(S->getStorage());
      Out += S->isVolatile() ? " 1" : " 0";
      if (S->hasInit()) {
        const GlobalInit &Init = S->getInit();
        if (Init.IsFloat)
          Out += " (init f " + formatDouble(Init.FloatValue) + ")";
        else
          Out += " (init i " + std::to_string(Init.IntValue) + ")";
      }
      Out += ")\n";
    }
    Out += " )\n (params";
    for (const Symbol *P : F.getParams())
      Out += " " + std::to_string(P->getId());
    Out += ")\n (body\n";
    writeBlock(F.getBody(), 2);
    Out += " ))\n";
    return std::move(Out);
  }

private:
  void writeExpr(const Expr *E) {
    switch (E->getKind()) {
    case Expr::ConstIntKind: {
      const auto *C = static_cast<const ConstIntExpr *>(E);
      Out += "(cint ";
      writeType(C->getType(), Out);
      Out += " " + std::to_string(C->getValue()) + ")";
      return;
    }
    case Expr::ConstFloatKind: {
      const auto *C = static_cast<const ConstFloatExpr *>(E);
      Out += "(cfloat ";
      writeType(C->getType(), Out);
      Out += " " + formatDouble(C->getValue()) + ")";
      return;
    }
    case Expr::VarRefKind: {
      const Symbol *S = static_cast<const VarRefExpr *>(E)->getSymbol();
      if (S->getStorage() == StorageKind::Global) {
        Out += "(gvar ";
        writeQuoted(S->getName(), Out);
        Out += " ";
        writeType(S->getType(), Out);
        Out += S->isVolatile() ? " 1" : " 0";
        Out += ")";
      } else {
        Out += "(var " + std::to_string(S->getId()) + ")";
      }
      return;
    }
    case Expr::BinaryKind: {
      const auto *B = static_cast<const BinaryExpr *>(E);
      Out += "(binop ";
      Out += opCodeToken(B->getOp());
      Out += " ";
      writeType(B->getType(), Out);
      Out += " ";
      writeExpr(B->getLHS());
      Out += " ";
      writeExpr(B->getRHS());
      Out += ")";
      return;
    }
    case Expr::UnaryKind: {
      const auto *U = static_cast<const UnaryExpr *>(E);
      Out += "(unop ";
      Out += opCodeToken(U->getOp());
      Out += " ";
      writeType(U->getType(), Out);
      Out += " ";
      writeExpr(U->getOperand());
      Out += ")";
      return;
    }
    case Expr::DerefKind: {
      const auto *D = static_cast<const DerefExpr *>(E);
      Out += "(deref ";
      writeType(D->getType(), Out);
      Out += " ";
      writeExpr(D->getAddr());
      Out += ")";
      return;
    }
    case Expr::AddrOfKind: {
      const auto *A = static_cast<const AddrOfExpr *>(E);
      Out += "(addrof ";
      writeType(A->getType(), Out);
      Out += " ";
      writeExpr(A->getLValue());
      Out += ")";
      return;
    }
    case Expr::IndexKind: {
      const auto *I = static_cast<const IndexExpr *>(E);
      Out += "(index ";
      writeType(I->getType(), Out);
      Out += " ";
      writeExpr(I->getBase());
      for (const Expr *Sub : I->getSubscripts()) {
        Out += " ";
        writeExpr(Sub);
      }
      Out += ")";
      return;
    }
    case Expr::CastKind: {
      const auto *C = static_cast<const CastExpr *>(E);
      Out += "(cast ";
      writeType(C->getType(), Out);
      Out += " ";
      writeExpr(C->getOperand());
      Out += ")";
      return;
    }
    case Expr::TripletKind: {
      const auto *T = static_cast<const TripletExpr *>(E);
      Out += "(triplet ";
      writeType(T->getType(), Out);
      Out += " ";
      writeExpr(T->getLo());
      Out += " ";
      writeExpr(T->getHi());
      Out += " ";
      writeExpr(T->getStride());
      Out += ")";
      return;
    }
    }
  }

  void writeBlock(const Block &B, unsigned Indent) {
    for (const Stmt *S : B.Stmts)
      writeStmt(S, Indent);
  }

  void writeStmt(const Stmt *S, unsigned Indent) {
    Out += std::string(Indent, ' ');
    switch (S->getKind()) {
    case Stmt::AssignKind: {
      const auto *A = static_cast<const AssignStmt *>(S);
      Out += "(assign ";
      writeExpr(A->getLHS());
      Out += " ";
      writeExpr(A->getRHS());
      Out += ")\n";
      return;
    }
    case Stmt::CallKind: {
      const auto *C = static_cast<const CallStmt *>(S);
      Out += "(call ";
      Out += C->getResult() ? std::to_string(C->getResult()->getId()) : "0";
      Out += " ";
      writeQuoted(C->getCallee(), Out);
      for (const Expr *Arg : C->getArgs()) {
        Out += " ";
        writeExpr(Arg);
      }
      Out += ")\n";
      return;
    }
    case Stmt::IfKind: {
      const auto *I = static_cast<const IfStmt *>(S);
      Out += "(if ";
      writeExpr(I->getCond());
      Out += " (block\n";
      writeBlock(I->getThen(), Indent + 1);
      Out += std::string(Indent, ' ') + ") (block\n";
      writeBlock(I->getElse(), Indent + 1);
      Out += std::string(Indent, ' ') + "))\n";
      return;
    }
    case Stmt::WhileKind: {
      const auto *W = static_cast<const WhileStmt *>(S);
      Out += "(while ";
      Out += W->hasSafeVectorPragma() ? "1 " : "0 ";
      writeExpr(W->getCond());
      Out += " (block\n";
      writeBlock(W->getBody(), Indent + 1);
      Out += std::string(Indent, ' ') + "))\n";
      return;
    }
    case Stmt::DoLoopKind: {
      const auto *D = static_cast<const DoLoopStmt *>(S);
      Out += "(do " + std::to_string(D->getIndexVar()->getId()) + " ";
      Out += D->isParallel() ? "1 " : "0 ";
      Out += D->hasSafeVectorPragma() ? "1 " : "0 ";
      writeExpr(D->getInit());
      Out += " ";
      writeExpr(D->getLimit());
      Out += " ";
      writeExpr(D->getStep());
      Out += " (block\n";
      writeBlock(D->getBody(), Indent + 1);
      Out += std::string(Indent, ' ') + "))\n";
      return;
    }
    case Stmt::LabelKind:
      Out += "(label ";
      writeQuoted(static_cast<const LabelStmt *>(S)->getName(), Out);
      Out += ")\n";
      return;
    case Stmt::GotoKind:
      Out += "(goto ";
      writeQuoted(static_cast<const GotoStmt *>(S)->getTarget(), Out);
      Out += ")\n";
      return;
    case Stmt::ReturnKind: {
      const auto *R = static_cast<const ReturnStmt *>(S);
      if (R->getValue()) {
        Out += "(return ";
        writeExpr(R->getValue());
        Out += ")\n";
      } else {
        Out += "(return)\n";
      }
      return;
    }
    }
  }

  const Function &F;
  std::string Out;
};

} // namespace

std::string il::serializeFunction(const Function &F) {
  return Writer(F).run();
}

//===----------------------------------------------------------------------===//
// Reading
//===----------------------------------------------------------------------===//

namespace {

/// A parsed S-expression: an atom (number, word, quoted string) or a list.
struct SExpr {
  bool IsAtom = true;
  bool WasQuoted = false;
  std::string Atom;
  std::vector<SExpr> List;

  const SExpr &at(size_t I) const {
    assert(I < List.size() && "S-expression index out of range");
    return List[I];
  }
  size_t size() const { return List.size(); }
  const std::string &head() const { return at(0).Atom; }
};

class SExprParser {
public:
  SExprParser(const std::string &Text, DiagnosticEngine &Diags)
      : Text(Text), Diags(Diags) {}

  bool parse(SExpr &Out) {
    skipWs();
    return parseValue(Out);
  }

  bool Failed = false;

private:
  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool parseValue(SExpr &Out) {
    skipWs();
    if (Pos >= Text.size()) {
      fail("unexpected end of catalog text");
      return false;
    }
    char C = Text[Pos];
    if (C == '(') {
      ++Pos;
      Out.IsAtom = false;
      for (;;) {
        skipWs();
        if (Pos >= Text.size()) {
          fail("unterminated list in catalog text");
          return false;
        }
        if (Text[Pos] == ')') {
          ++Pos;
          return true;
        }
        SExpr Child;
        if (!parseValue(Child))
          return false;
        Out.List.push_back(std::move(Child));
      }
    }
    if (C == '"') {
      ++Pos;
      Out.IsAtom = true;
      Out.WasQuoted = true;
      while (Pos < Text.size() && Text[Pos] != '"') {
        if (Text[Pos] == '\\' && Pos + 1 < Text.size())
          ++Pos;
        Out.Atom += Text[Pos++];
      }
      if (Pos >= Text.size()) {
        fail("unterminated string in catalog text");
        return false;
      }
      ++Pos; // closing quote
      return true;
    }
    // Plain atom.
    Out.IsAtom = true;
    size_t Start = Pos;
    while (Pos < Text.size() && !std::isspace((unsigned char)Text[Pos]) &&
           Text[Pos] != '(' && Text[Pos] != ')')
      ++Pos;
    Out.Atom = Text.substr(Start, Pos - Start);
    if (Out.Atom.empty()) {
      fail("empty atom in catalog text");
      return false;
    }
    return true;
  }

  void fail(const char *Msg) {
    if (!Failed)
      Diags.error(SourceLoc(), Msg);
    Failed = true;
  }

  const std::string &Text;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

class Reader {
public:
  Reader(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  Function *run(const SExpr &Root) {
    if (Root.IsAtom || Root.size() < 6 || Root.head() != "function")
      return fail("catalog entry is not a function");
    const std::string &Name = Root.at(1).Atom;
    const SExpr &RetForm = Root.at(2);
    if (RetForm.IsAtom || RetForm.head() != "ret")
      return fail("missing (ret ...) in catalog entry");
    const Type *RetTy = readType(RetForm.at(1));
    if (!RetTy)
      return nullptr;
    F = P.createFunction(Name, RetTy);

    const SExpr &FP = Root.at(3);
    if (!FP.IsAtom && FP.head() == "fortran-pointers")
      F->setFortranPointerSemantics(FP.at(1).Atom == "1");

    const SExpr &Syms = Root.at(4);
    if (Syms.IsAtom || Syms.head() != "symbols")
      return fail("missing (symbols ...) in catalog entry");
    for (size_t I = 1; I < Syms.size(); ++I) {
      const SExpr &SF = Syms.at(I);
      if (SF.IsAtom || SF.size() < 6 || SF.head() != "sym")
        return fail("malformed symbol in catalog entry");
      unsigned Id = std::stoul(SF.at(1).Atom);
      const Type *Ty = readType(SF.at(3));
      if (!Ty)
        return nullptr;
      StorageKind Storage;
      if (!storageFromToken(SF.at(4).Atom, Storage))
        return fail("bad storage class in catalog entry");
      Symbol *S = F->createSymbol(SF.at(2).Atom, Ty, Storage,
                                  SF.at(5).Atom == "1");
      if (SF.size() > 6) {
        const SExpr &InitForm = SF.at(6);
        if (InitForm.IsAtom || InitForm.head() != "init")
          return fail("malformed symbol init in catalog entry");
        GlobalInit Init;
        if (InitForm.at(1).Atom == "f") {
          Init.IsFloat = true;
          Init.FloatValue = std::stod(InitForm.at(2).Atom);
        } else {
          Init.IntValue = std::stoll(InitForm.at(2).Atom);
        }
        S->setInit(Init);
      }
      SymbolsById[Id] = S;
    }

    const SExpr &Params = Root.at(5);
    if (Params.IsAtom || Params.head() != "params")
      return fail("missing (params ...) in catalog entry");
    for (size_t I = 1; I < Params.size(); ++I) {
      Symbol *S = lookupSymbol(std::stoul(Params.at(I).Atom));
      if (!S)
        return nullptr;
      F->addParam(S);
    }

    const SExpr &Body = Root.at(6);
    if (Body.IsAtom || Body.head() != "body")
      return fail("missing (body ...) in catalog entry");
    for (size_t I = 1; I < Body.size(); ++I) {
      Stmt *S = readStmt(Body.at(I));
      if (!S)
        return nullptr;
      F->getBody().Stmts.push_back(S);
    }
    return Failed ? nullptr : F;
  }

private:
  Function *fail(const char *Msg) {
    if (!Failed)
      Diags.error(SourceLoc(), Msg);
    Failed = true;
    return nullptr;
  }

  const Type *readType(const SExpr &E) {
    TypeContext &Types = P.getTypes();
    if (E.IsAtom) {
      if (E.Atom == "void")
        return Types.getVoidType();
      if (E.Atom == "char")
        return Types.getCharType();
      if (E.Atom == "int")
        return Types.getIntType();
      if (E.Atom == "float")
        return Types.getFloatType();
      if (E.Atom == "double")
        return Types.getDoubleType();
      fail("unknown type atom in catalog entry");
      return nullptr;
    }
    if (E.head() == "ptr") {
      const Type *Inner = readType(E.at(1));
      return Inner ? Types.getPointerType(Inner) : nullptr;
    }
    if (E.head() == "arr") {
      const Type *Inner = readType(E.at(2));
      return Inner ? Types.getArrayType(Inner, std::stoll(E.at(1).Atom))
                   : nullptr;
    }
    fail("unknown type form in catalog entry");
    return nullptr;
  }

  Symbol *lookupSymbol(unsigned Id) {
    auto It = SymbolsById.find(Id);
    if (It == SymbolsById.end()) {
      fail("reference to unknown symbol id in catalog entry");
      return nullptr;
    }
    return It->second;
  }

  Expr *readExpr(const SExpr &E) {
    if (E.IsAtom) {
      fail("expected expression form in catalog entry");
      return nullptr;
    }
    const std::string &H = E.head();
    if (H == "cint") {
      const Type *Ty = readType(E.at(1));
      return Ty ? F->makeIntConst(Ty, std::stoll(E.at(2).Atom)) : nullptr;
    }
    if (H == "cfloat") {
      const Type *Ty = readType(E.at(1));
      return Ty ? F->makeFloatConst(Ty, std::stod(E.at(2).Atom)) : nullptr;
    }
    if (H == "var") {
      Symbol *S = lookupSymbol(std::stoul(E.at(1).Atom));
      return S ? F->makeVarRef(S) : nullptr;
    }
    if (H == "gvar") {
      const Type *Ty = readType(E.at(2));
      if (!Ty)
        return nullptr;
      Symbol *G = P.findGlobal(E.at(1).Atom);
      if (!G)
        G = P.createGlobal(E.at(1).Atom, Ty, E.at(3).Atom == "1");
      return F->makeVarRef(G);
    }
    if (H == "binop") {
      OpCode Op;
      if (!opCodeFromToken(E.at(1).Atom, Op)) {
        fail("unknown binary opcode in catalog entry");
        return nullptr;
      }
      const Type *Ty = readType(E.at(2));
      Expr *L = readExpr(E.at(3));
      Expr *R = readExpr(E.at(4));
      return (Ty && L && R) ? F->create<BinaryExpr>(Ty, Op, L, R) : nullptr;
    }
    if (H == "unop") {
      OpCode Op;
      if (!opCodeFromToken(E.at(1).Atom, Op)) {
        fail("unknown unary opcode in catalog entry");
        return nullptr;
      }
      const Type *Ty = readType(E.at(2));
      Expr *Operand = readExpr(E.at(3));
      return (Ty && Operand) ? F->create<UnaryExpr>(Ty, Op, Operand) : nullptr;
    }
    if (H == "deref") {
      const Type *Ty = readType(E.at(1));
      Expr *Addr = readExpr(E.at(2));
      return (Ty && Addr) ? F->create<DerefExpr>(Ty, Addr) : nullptr;
    }
    if (H == "addrof") {
      const Type *Ty = readType(E.at(1));
      Expr *LValue = readExpr(E.at(2));
      return (Ty && LValue) ? F->create<AddrOfExpr>(Ty, LValue) : nullptr;
    }
    if (H == "index") {
      const Type *Ty = readType(E.at(1));
      Expr *Base = readExpr(E.at(2));
      if (!Ty || !Base)
        return nullptr;
      std::vector<Expr *> Subs;
      for (size_t I = 3; I < E.size(); ++I) {
        Expr *Sub = readExpr(E.at(I));
        if (!Sub)
          return nullptr;
        Subs.push_back(Sub);
      }
      return F->create<IndexExpr>(Ty, Base, std::move(Subs));
    }
    if (H == "cast") {
      const Type *Ty = readType(E.at(1));
      Expr *Operand = readExpr(E.at(2));
      return (Ty && Operand) ? F->create<CastExpr>(Ty, Operand) : nullptr;
    }
    if (H == "triplet") {
      const Type *Ty = readType(E.at(1));
      Expr *Lo = readExpr(E.at(2));
      Expr *Hi = readExpr(E.at(3));
      Expr *Stride = readExpr(E.at(4));
      return (Ty && Lo && Hi && Stride)
                 ? F->create<TripletExpr>(Ty, Lo, Hi, Stride)
                 : nullptr;
    }
    fail("unknown expression form in catalog entry");
    return nullptr;
  }

  bool readBlock(const SExpr &E, Block &Out) {
    if (E.IsAtom || E.head() != "block") {
      fail("expected (block ...) in catalog entry");
      return false;
    }
    for (size_t I = 1; I < E.size(); ++I) {
      Stmt *S = readStmt(E.at(I));
      if (!S)
        return false;
      Out.Stmts.push_back(S);
    }
    return true;
  }

  Stmt *readStmt(const SExpr &E) {
    if (E.IsAtom) {
      fail("expected statement form in catalog entry");
      return nullptr;
    }
    const std::string &H = E.head();
    SourceLoc Loc;
    if (H == "assign") {
      Expr *L = readExpr(E.at(1));
      Expr *R = readExpr(E.at(2));
      return (L && R) ? F->create<AssignStmt>(Loc, L, R) : nullptr;
    }
    if (H == "call") {
      Symbol *Result = nullptr;
      unsigned Id = std::stoul(E.at(1).Atom);
      if (Id != 0) {
        Result = lookupSymbol(Id);
        if (!Result)
          return nullptr;
      }
      std::vector<Expr *> Args;
      for (size_t I = 3; I < E.size(); ++I) {
        Expr *Arg = readExpr(E.at(I));
        if (!Arg)
          return nullptr;
        Args.push_back(Arg);
      }
      return F->create<CallStmt>(Loc, Result, E.at(2).Atom, std::move(Args));
    }
    if (H == "if") {
      Expr *Cond = readExpr(E.at(1));
      if (!Cond)
        return nullptr;
      auto *S = F->create<IfStmt>(Loc, Cond);
      if (!readBlock(E.at(2), S->getThen()) ||
          !readBlock(E.at(3), S->getElse()))
        return nullptr;
      return S;
    }
    if (H == "while") {
      Expr *Cond = readExpr(E.at(2));
      if (!Cond)
        return nullptr;
      auto *S = F->create<WhileStmt>(Loc, Cond);
      S->setSafeVectorPragma(E.at(1).Atom == "1");
      if (!readBlock(E.at(3), S->getBody()))
        return nullptr;
      return S;
    }
    if (H == "do") {
      Symbol *Idx = lookupSymbol(std::stoul(E.at(1).Atom));
      Expr *Init = readExpr(E.at(4));
      Expr *Limit = readExpr(E.at(5));
      Expr *Step = readExpr(E.at(6));
      if (!Idx || !Init || !Limit || !Step)
        return nullptr;
      auto *S = F->create<DoLoopStmt>(Loc, Idx, Init, Limit, Step);
      S->setParallel(E.at(2).Atom == "1");
      S->setSafeVectorPragma(E.at(3).Atom == "1");
      if (!readBlock(E.at(7), S->getBody()))
        return nullptr;
      return S;
    }
    if (H == "label")
      return F->create<LabelStmt>(Loc, E.at(1).Atom);
    if (H == "goto")
      return F->create<GotoStmt>(Loc, E.at(1).Atom);
    if (H == "return") {
      Expr *Value = nullptr;
      if (E.size() > 1) {
        Value = readExpr(E.at(1));
        if (!Value)
          return nullptr;
      }
      return F->create<ReturnStmt>(Loc, Value);
    }
    fail("unknown statement form in catalog entry");
    return nullptr;
  }

  Program &P;
  DiagnosticEngine &Diags;
  Function *F = nullptr;
  std::map<unsigned, Symbol *> SymbolsById;
  bool Failed = false;
};

} // namespace

Function *il::deserializeFunction(const std::string &Text, Program &P,
                                  DiagnosticEngine &Diags) {
  SExprParser Parser(Text, Diags);
  SExpr Root;
  if (!Parser.parse(Root))
    return nullptr;
  return Reader(P, Diags).run(Root);
}
