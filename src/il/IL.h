//===----------------------------------------------------------------------===//
///
/// \file
/// The high-level intermediate language of the Titan C compiler
/// reproduction (paper Section 3).
///
/// Design points taken from the paper:
///  - The IL has an assignment *statement* but no assignment *operator*;
///    every operation that changes memory is an explicit statement.  IL
///    expressions are pure: no calls, no ++/--, no ?:/&&/|| survive
///    lowering.
///  - Loops are explicit (While and DO statements), not goto webs, because
///    "a vectorizer lives or dies by its ability to analyze loops".
///  - Volatile accesses stay visible: volatility is a symbol property that
///    every phase can consult.
///  - There are no hard pointers in the *serialized* form (see
///    ILSerializer.h): symbols are referenced by integer ids so procedures
///    can be stored in catalogs and inlined across files.
///
/// Vector form: after vectorization, subscripts may contain Triplet
/// expressions `lo:hi:stride`, and DO loops may be marked parallel,
/// matching the paper's colon notation and `do parallel` construct.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_IL_IL_H
#define TCC_IL_IL_H

#include "support/SourceLoc.h"
#include "types/Type.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace tcc {
namespace il {

class Function;
class Program;

//===----------------------------------------------------------------------===//
// Symbols
//===----------------------------------------------------------------------===//

/// Where a symbol lives.
enum class StorageKind : uint8_t {
  Global, ///< Program-level variable.
  Static, ///< Function-local static (externalized by the inliner).
  Local,  ///< Automatic local.
  Param,  ///< Formal parameter.
  Temp,   ///< Compiler temporary (candidates for register allocation).
};

/// Constant initial value for a global or static symbol.
struct GlobalInit {
  bool IsFloat = false;
  int64_t IntValue = 0;
  double FloatValue = 0.0;
};

/// A named storage location.  Symbols are owned by their Function (or by
/// the Program for globals) and referenced by pointer everywhere else.
class Symbol {
public:
  Symbol(unsigned Id, std::string Name, const Type *Ty, StorageKind Storage,
         bool IsVolatile)
      : Id(Id), Name(std::move(Name)), Ty(Ty), Storage(Storage),
        IsVolatile(IsVolatile) {}

  unsigned getId() const { return Id; }
  const std::string &getName() const { return Name; }
  const Type *getType() const { return Ty; }
  StorageKind getStorage() const { return Storage; }
  bool isVolatile() const { return IsVolatile; }
  bool isGlobal() const {
    return Storage == StorageKind::Global || Storage == StorageKind::Static;
  }

  void setStorage(StorageKind K) { Storage = K; }
  void setName(std::string N) { Name = std::move(N); }

  /// Globals and statics may carry a constant initial value applied when
  /// the simulated machine image is laid out.
  bool hasInit() const { return HasInit; }
  const GlobalInit &getInit() const { return Init; }
  void setInit(GlobalInit I) {
    Init = I;
    HasInit = true;
  }

private:
  unsigned Id;
  std::string Name;
  const Type *Ty;
  StorageKind Storage;
  bool IsVolatile;
  GlobalInit Init;
  bool HasInit = false;
};

/// Deterministic ordering for Symbol-keyed containers whose iteration
/// order is observable in emitted IL.  Raw pointer order varies with
/// allocation history (and so with pipeline scheduling mode); ids are
/// assigned in creation order and are stable.  Locals and globals draw
/// ids from separate counters, so the pool is the primary key.
struct SymbolOrder {
  bool operator()(const Symbol *A, const Symbol *B) const {
    if (A == B)
      return false;
    if (A->isGlobal() != B->isGlobal())
      return B->isGlobal();
    if (A->getId() != B->getId())
      return A->getId() < B->getId();
    if (A->getName() != B->getName())
      return A->getName() < B->getName();
    return A < B; // unreachable for symbols of one program; keeps the
                  // order strict-weak regardless
  }
};

//===----------------------------------------------------------------------===//
// Expressions (pure)
//===----------------------------------------------------------------------===//

/// Operation codes for Binary/Unary expressions.  Min/Max exist for
/// strip-mine bound computation (`vr = min(99, vi+31)` in the paper).
enum class OpCode : uint8_t {
  // Binary.
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  Lt,
  Gt,
  Le,
  Ge,
  Eq,
  Ne,
  BitAnd,
  BitOr,
  BitXor,
  Min,
  Max,
  // Unary.
  Neg,
  LogNot,
  BitNot,
};

const char *opCodeSpelling(OpCode Op);
bool isComparisonOp(OpCode Op);
bool isCommutativeOp(OpCode Op);

class Expr {
public:
  enum ExprKind : uint8_t {
    ConstIntKind,
    ConstFloatKind,
    VarRefKind,
    BinaryKind,
    UnaryKind,
    DerefKind,
    AddrOfKind,
    IndexKind,
    CastKind,
    TripletKind,
  };

  ExprKind getKind() const { return TheKind; }
  const Type *getType() const { return Ty; }
  void setType(const Type *T) { Ty = T; }

protected:
  Expr(ExprKind K, const Type *Ty) : TheKind(K), Ty(Ty) {}

private:
  ExprKind TheKind;
  const Type *Ty;
};

class ConstIntExpr : public Expr {
public:
  ConstIntExpr(const Type *Ty, int64_t Value)
      : Expr(ConstIntKind, Ty), Value(Value) {}
  int64_t getValue() const { return Value; }
  static bool classof(const Expr *E) { return E->getKind() == ConstIntKind; }

private:
  int64_t Value;
};

class ConstFloatExpr : public Expr {
public:
  ConstFloatExpr(const Type *Ty, double Value)
      : Expr(ConstFloatKind, Ty), Value(Value) {}
  double getValue() const { return Value; }
  static bool classof(const Expr *E) { return E->getKind() == ConstFloatKind; }

private:
  double Value;
};

class VarRefExpr : public Expr {
public:
  explicit VarRefExpr(Symbol *Sym)
      : Expr(VarRefKind, Sym->getType()), Sym(Sym) {}
  Symbol *getSymbol() const { return Sym; }
  void setSymbol(Symbol *S) {
    Sym = S;
    setType(S->getType());
  }
  static bool classof(const Expr *E) { return E->getKind() == VarRefKind; }

private:
  Symbol *Sym;
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(const Type *Ty, OpCode Op, Expr *LHS, Expr *RHS)
      : Expr(BinaryKind, Ty), Op(Op), LHS(LHS), RHS(RHS) {}
  OpCode getOp() const { return Op; }
  Expr *getLHS() const { return LHS; }
  Expr *getRHS() const { return RHS; }
  Expr *&lhsSlot() { return LHS; }
  Expr *&rhsSlot() { return RHS; }
  static bool classof(const Expr *E) { return E->getKind() == BinaryKind; }

private:
  OpCode Op;
  Expr *LHS;
  Expr *RHS;
};

class UnaryExpr : public Expr {
public:
  UnaryExpr(const Type *Ty, OpCode Op, Expr *Operand)
      : Expr(UnaryKind, Ty), Op(Op), Operand(Operand) {}
  OpCode getOp() const { return Op; }
  Expr *getOperand() const { return Operand; }
  Expr *&operandSlot() { return Operand; }
  static bool classof(const Expr *E) { return E->getKind() == UnaryKind; }

private:
  OpCode Op;
  Expr *Operand;
};

/// Load (or, as an assignment LHS, store) through a pointer-valued address
/// expression: `*Addr`.
class DerefExpr : public Expr {
public:
  DerefExpr(const Type *Ty, Expr *Addr) : Expr(DerefKind, Ty), Addr(Addr) {}
  Expr *getAddr() const { return Addr; }
  Expr *&addrSlot() { return Addr; }
  static bool classof(const Expr *E) { return E->getKind() == DerefKind; }

private:
  Expr *Addr;
};

/// `&lvalue` where the lvalue is a VarRef, Index, or Deref.
class AddrOfExpr : public Expr {
public:
  AddrOfExpr(const Type *Ty, Expr *LValue)
      : Expr(AddrOfKind, Ty), LValue(LValue) {}
  Expr *getLValue() const { return LValue; }
  Expr *&lvalueSlot() { return LValue; }
  static bool classof(const Expr *E) { return E->getKind() == AddrOfKind; }

private:
  Expr *LValue;
};

/// Array element access `base[s0][s1]...` where base names a declared array
/// symbol.  Subscripts may be Triplet expressions after vectorization.
class IndexExpr : public Expr {
public:
  IndexExpr(const Type *Ty, Expr *Base, std::vector<Expr *> Subscripts)
      : Expr(IndexKind, Ty), Base(Base), Subscripts(std::move(Subscripts)) {}
  Expr *getBase() const { return Base; }
  Expr *&baseSlot() { return Base; }
  const std::vector<Expr *> &getSubscripts() const { return Subscripts; }
  std::vector<Expr *> &subscriptSlots() { return Subscripts; }
  static bool classof(const Expr *E) { return E->getKind() == IndexKind; }

private:
  Expr *Base;
  std::vector<Expr *> Subscripts;
};

class CastExpr : public Expr {
public:
  CastExpr(const Type *Ty, Expr *Operand) : Expr(CastKind, Ty), Operand(Operand) {}
  Expr *getOperand() const { return Operand; }
  Expr *&operandSlot() { return Operand; }
  static bool classof(const Expr *E) { return E->getKind() == CastKind; }

private:
  Expr *Operand;
};

/// Vector section `lo:hi:stride` (paper's colon notation).  Appears only in
/// subscript or pointer-offset positions of vector assignments.
class TripletExpr : public Expr {
public:
  TripletExpr(const Type *Ty, Expr *Lo, Expr *Hi, Expr *Stride)
      : Expr(TripletKind, Ty), Lo(Lo), Hi(Hi), Stride(Stride) {}
  Expr *getLo() const { return Lo; }
  Expr *getHi() const { return Hi; }
  Expr *getStride() const { return Stride; }
  Expr *&loSlot() { return Lo; }
  Expr *&hiSlot() { return Hi; }
  Expr *&strideSlot() { return Stride; }
  static bool classof(const Expr *E) { return E->getKind() == TripletKind; }

private:
  Expr *Lo;
  Expr *Hi;
  Expr *Stride;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt;

/// An ordered list of statements.  Blocks are owned by their enclosing
/// statement (or by the Function for the body).
struct Block {
  std::vector<Stmt *> Stmts;

  bool empty() const { return Stmts.empty(); }
  size_t size() const { return Stmts.size(); }
};

class Stmt {
public:
  enum StmtKind : uint8_t {
    AssignKind,
    CallKind,
    IfKind,
    WhileKind,
    DoLoopKind,
    LabelKind,
    GotoKind,
    ReturnKind,
  };

  StmtKind getKind() const { return TheKind; }
  SourceLoc getLoc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

protected:
  Stmt(StmtKind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  StmtKind TheKind;
  SourceLoc Loc;
};

/// `LHS = RHS` where LHS is a VarRef, Deref, or Index lvalue.  The only way
/// memory changes in the IL (besides calls).  A vector assignment is an
/// Assign whose lvalue/rvalue contain Triplets.
class AssignStmt : public Stmt {
public:
  AssignStmt(SourceLoc Loc, Expr *LHS, Expr *RHS)
      : Stmt(AssignKind, Loc), LHS(LHS), RHS(RHS) {}
  Expr *getLHS() const { return LHS; }
  Expr *getRHS() const { return RHS; }
  Expr *&lhsSlot() { return LHS; }
  Expr *&rhsSlot() { return RHS; }

  /// Dependence analysis proved this statement's loads conflict with no
  /// store in flight (paper Section 6's dependence-driven scheduling);
  /// the code generator lets such loads bypass the store queue.  The
  /// depopt rewrites preserve the flag across statement splitting.
  bool loadsConflictFree() const { return ConflictFreeLoads; }
  void setLoadsConflictFree(bool V) { ConflictFreeLoads = V; }

  static bool classof(const Stmt *S) { return S->getKind() == AssignKind; }

private:
  Expr *LHS;
  Expr *RHS;
  bool ConflictFreeLoads = false;
};

/// `result = callee(args)` or `callee(args)`.  Calls are statements, never
/// expressions.
class CallStmt : public Stmt {
public:
  CallStmt(SourceLoc Loc, Symbol *Result, std::string Callee,
           std::vector<Expr *> Args)
      : Stmt(CallKind, Loc), Result(Result), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  Symbol *getResult() const { return Result; } // may be null
  const std::string &getCallee() const { return Callee; }
  const std::vector<Expr *> &getArgs() const { return Args; }
  std::vector<Expr *> &argSlots() { return Args; }
  static bool classof(const Stmt *S) { return S->getKind() == CallKind; }

private:
  Symbol *Result;
  std::string Callee;
  std::vector<Expr *> Args;
};

class IfStmt : public Stmt {
public:
  IfStmt(SourceLoc Loc, Expr *Cond) : Stmt(IfKind, Loc), Cond(Cond) {}
  Expr *getCond() const { return Cond; }
  Expr *&condSlot() { return Cond; }
  Block &getThen() { return Then; }
  Block &getElse() { return Else; }
  const Block &getThen() const { return Then; }
  const Block &getElse() const { return Else; }
  static bool classof(const Stmt *S) { return S->getKind() == IfKind; }

private:
  Expr *Cond;
  Block Then;
  Block Else;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLoc Loc, Expr *Cond)
      : Stmt(WhileKind, Loc), Cond(Cond) {}
  Expr *getCond() const { return Cond; }
  Expr *&condSlot() { return Cond; }
  Block &getBody() { return Body; }
  const Block &getBody() const { return Body; }
  bool hasSafeVectorPragma() const { return SafeVector; }
  void setSafeVectorPragma(bool V) { SafeVector = V; }
  static bool classof(const Stmt *S) { return S->getKind() == WhileKind; }

private:
  Expr *Cond;
  Block Body;
  bool SafeVector = false;
};

/// A Fortran-style DO loop: `for (V = Init; Step>0 ? V<=Limit : V>=Limit;
/// V += Step)`.  Init/Limit/Step are evaluated once on entry.  A parallel
/// DO loop additionally promises that iterations may run concurrently
/// (paper's `do parallel`).
class DoLoopStmt : public Stmt {
public:
  DoLoopStmt(SourceLoc Loc, Symbol *IndexVar, Expr *Init, Expr *Limit,
             Expr *Step)
      : Stmt(DoLoopKind, Loc), IndexVar(IndexVar), Init(Init), Limit(Limit),
        Step(Step) {}
  Symbol *getIndexVar() const { return IndexVar; }
  Expr *getInit() const { return Init; }
  Expr *getLimit() const { return Limit; }
  Expr *getStep() const { return Step; }
  Expr *&initSlot() { return Init; }
  Expr *&limitSlot() { return Limit; }
  Expr *&stepSlot() { return Step; }
  Block &getBody() { return Body; }
  const Block &getBody() const { return Body; }
  bool isParallel() const { return Parallel; }
  void setParallel(bool P) { Parallel = P; }
  bool hasSafeVectorPragma() const { return SafeVector; }
  void setSafeVectorPragma(bool V) { SafeVector = V; }
  static bool classof(const Stmt *S) { return S->getKind() == DoLoopKind; }

private:
  Symbol *IndexVar;
  Expr *Init;
  Expr *Limit;
  Expr *Step;
  Block Body;
  bool Parallel = false;
  bool SafeVector = false;
};

class LabelStmt : public Stmt {
public:
  LabelStmt(SourceLoc Loc, std::string Name)
      : Stmt(LabelKind, Loc), Name(std::move(Name)) {}
  const std::string &getName() const { return Name; }
  static bool classof(const Stmt *S) { return S->getKind() == LabelKind; }

private:
  std::string Name;
};

class GotoStmt : public Stmt {
public:
  GotoStmt(SourceLoc Loc, std::string Target)
      : Stmt(GotoKind, Loc), Target(std::move(Target)) {}
  const std::string &getTarget() const { return Target; }
  void setTarget(std::string T) { Target = std::move(T); }
  static bool classof(const Stmt *S) { return S->getKind() == GotoKind; }

private:
  std::string Target;
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(SourceLoc Loc, Expr *Value) : Stmt(ReturnKind, Loc), Value(Value) {}
  Expr *getValue() const { return Value; } // may be null
  Expr *&valueSlot() { return Value; }
  static bool classof(const Stmt *S) { return S->getKind() == ReturnKind; }

private:
  Expr *Value;
};

//===----------------------------------------------------------------------===//
// Function and Program
//===----------------------------------------------------------------------===//

/// One IL function: symbols, parameters, and a body block.  All Expr and
/// Stmt nodes for the function are arena-owned by the function.
class Function {
public:
  Function(std::string Name, const Type *ReturnType, Program &Parent);

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }
  const Type *getReturnType() const { return ReturnType; }
  Program &getProgram() { return Parent; }
  const Program &getProgram() const { return Parent; }

  Block &getBody() { return Body; }
  const Block &getBody() const { return Body; }

  const std::vector<Symbol *> &getParams() const { return Params; }
  void addParam(Symbol *S) { Params.push_back(S); }

  bool hasFortranPointerSemantics() const { return FortranPointers; }
  void setFortranPointerSemantics(bool V) { FortranPointers = V; }

  /// Creates a symbol owned by this function.
  Symbol *createSymbol(std::string SymName, const Type *Ty,
                       StorageKind Storage, bool IsVolatile = false);
  /// Creates a fresh compiler temporary named `temp_N` (or with the given
  /// prefix).
  Symbol *createTemp(const Type *Ty, const std::string &Prefix = "temp");
  /// Creates a fresh label name `lb_N`.
  std::string createLabelName(const std::string &Prefix = "lb");

  const std::vector<std::unique_ptr<Symbol>> &getSymbols() const {
    return Symbols;
  }
  /// Drops non-parameter symbols that are no longer referenced anywhere in
  /// the body (after dead-code elimination).  Returns the number removed.
  unsigned removeUnusedSymbols();

  /// Looks up a local symbol by name; null if absent.
  Symbol *findSymbol(const std::string &SymName) const;
  /// Looks up a local symbol by id; null if absent.
  Symbol *findSymbolById(unsigned Id) const;

  /// The id/name generation counters.  Serialization does not record them
  /// (they are invisible in the IL text), so anything that restores a
  /// function from its serialized form and intends to keep transforming
  /// it — the pass sandbox's rollback path — must capture and reinstate
  /// them explicitly, or later passes would mint temp/label names that
  /// diverge from a never-rolled-back compile.
  struct Counters {
    unsigned NextSymbolId = 1;
    unsigned NextTempId = 1;
    unsigned NextLabelId = 1;
  };
  Counters counters() const { return {NextSymbolId, NextTempId, NextLabelId}; }
  void setCounters(const Counters &C) {
    NextSymbolId = C.NextSymbolId;
    NextTempId = C.NextTempId;
    NextLabelId = C.NextLabelId;
  }

  // Expression factories (arena-owned).
  template <typename T, typename... Args> T *create(Args &&...CtorArgs) {
    T *Ptr = new T(std::forward<Args>(CtorArgs)...);
    Arena.emplace_back(Ptr, [](void *P) { delete static_cast<T *>(P); });
    return Ptr;
  }

  ConstIntExpr *makeIntConst(const Type *Ty, int64_t Value) {
    return create<ConstIntExpr>(Ty, Value);
  }
  ConstFloatExpr *makeFloatConst(const Type *Ty, double Value) {
    return create<ConstFloatExpr>(Ty, Value);
  }
  VarRefExpr *makeVarRef(Symbol *Sym) { return create<VarRefExpr>(Sym); }
  BinaryExpr *makeBinary(OpCode Op, Expr *LHS, Expr *RHS, const Type *Ty) {
    return create<BinaryExpr>(Ty, Op, LHS, RHS);
  }

  /// Deep-clones an expression tree (within this function's arena).
  Expr *cloneExpr(const Expr *E);
  /// Deep-clones an expression, remapping symbols through \p Map (used by
  /// the inliner); symbols absent from the map are kept.
  Expr *cloneExprRemap(const Expr *E,
                       const std::function<Symbol *(Symbol *)> &Map);
  /// Deep-clones a statement (and nested blocks) with symbol and label
  /// remapping hooks.
  Stmt *cloneStmtRemap(const Stmt *S,
                       const std::function<Symbol *(Symbol *)> &SymMap,
                       const std::function<std::string(const std::string &)>
                           &LabelMap);

private:
  std::string Name;
  const Type *ReturnType;
  Program &Parent;
  std::vector<Symbol *> Params;
  std::vector<std::unique_ptr<Symbol>> Symbols;
  Block Body;
  std::vector<std::unique_ptr<void, void (*)(void *)>> Arena;
  unsigned NextSymbolId = 1;
  unsigned NextTempId = 1;
  unsigned NextLabelId = 1;
  bool FortranPointers = false;
};

/// A whole IL program: globals and functions.  Owns the TypeContext used by
/// every type in the program.
class Program {
public:
  Program();
  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;

  TypeContext &getTypes() { return *Types; }

  Function *createFunction(std::string Name, const Type *ReturnType);
  Function *findFunction(const std::string &Name) const;
  /// Removes a function (used when replacing a body via catalogs).
  void removeFunction(Function *F);
  /// Swaps \p New into \p Old's position in the function list and
  /// destroys \p Old.  Both must belong to this program.  Keeps the
  /// serialization order stable when the compile cache restores an
  /// optimized body (which deserializeFunction appended at the end).
  void replaceFunction(Function *Old, Function *New);
  const std::vector<std::unique_ptr<Function>> &getFunctions() const {
    return Functions;
  }

  Symbol *createGlobal(std::string Name, const Type *Ty, bool IsVolatile);
  Symbol *findGlobal(const std::string &Name) const;
  const std::vector<std::unique_ptr<Symbol>> &getGlobals() const {
    return Globals;
  }

private:
  std::unique_ptr<TypeContext> Types;
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<std::unique_ptr<Symbol>> Globals;
  unsigned NextGlobalId = 1;
};

//===----------------------------------------------------------------------===//
// Traversal utilities
//===----------------------------------------------------------------------===//

/// Invokes \p Fn on every top-level expression slot of \p S (cond, lhs/rhs,
/// args, bounds...).  The reference allows in-place replacement.
void forEachExprSlot(Stmt *S, const std::function<void(Expr *&)> &Fn);

/// Invokes \p Fn on \p Slot and all nested sub-expression slots, bottom-up.
void forEachSubExprSlot(Expr *&Slot, const std::function<void(Expr *&)> &Fn);

/// Invokes \p Fn on every VarRef slot that is a *value* use within the
/// tree: the directly-addressed lvalue of an AddrOf (and an Index base) is
/// skipped — `&x` names x's storage, not its value — while subscripts
/// inside an AddrOf are still value uses.
void forEachValueUseSlot(Expr *&Slot, const std::function<void(Expr *&)> &Fn);

/// Invokes \p Fn on every statement in \p B and nested blocks, pre-order.
void forEachStmt(Block &B, const std::function<void(Stmt *)> &Fn);
void forEachStmt(const Block &B, const std::function<void(const Stmt *)> &Fn);

/// Collects every VarRef in an expression tree.
void collectVarRefs(Expr *E, std::vector<VarRefExpr *> &Out);

/// Structural expression equality (same shape, same symbols, same
/// constants).
bool exprEquals(const Expr *A, const Expr *B);

/// True if the expression reads any volatile symbol or dereferences
/// memory (conservatively treated as possibly volatile only if the symbol
/// is volatile; plain Deref/Index are not volatile).
bool exprReadsVolatile(const Expr *E);

/// True if \p E contains any Deref or Index (i.e. touches memory).
bool exprTouchesMemory(const Expr *E);

/// True if \p E contains a Triplet anywhere (vector expression).
bool exprHasTriplet(const Expr *E);

} // namespace il
} // namespace tcc

#endif // TCC_IL_IL_H
