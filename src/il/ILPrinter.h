//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable printing of the IL in a C-like syntax with the paper's
/// notation: `do i = lo, hi, step` for DO loops, `do parallel` for
/// multiprocessor loops, and colon triplets `lo:hi:s` for vector sections.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_IL_ILPRINTER_H
#define TCC_IL_ILPRINTER_H

#include "il/IL.h"

#include <string>

namespace tcc {
namespace il {

/// Renders one expression.
std::string printExpr(const Expr *E);

/// Renders one statement (with trailing newline), indented by \p Indent
/// levels of two spaces.
std::string printStmt(const Stmt *S, unsigned Indent = 0);

/// Renders a whole block.
std::string printBlock(const Block &B, unsigned Indent = 0);

/// Renders a function: header, declarations, body.
std::string printFunction(const Function &F);

/// Renders the whole program.
std::string printProgram(const Program &P);

} // namespace il
} // namespace tcc

#endif // TCC_IL_ILPRINTER_H
