//===----------------------------------------------------------------------===//
///
/// \file
/// Interprocedural call-safety summaries for multiprocessor spreading
/// (paper Section 9; DESIGN.md §12).
///
/// A loop that contains a call can only be spread across processors when
/// every callee reachable from the body is provably safe to run once per
/// iteration, concurrently: it must write only through pointer parameters
/// whose per-call footprints the caller can prove disjoint across
/// iterations, or write nothing at all.  This module computes, bottom-up
/// over the program call graph (the ThreadRegions idea from the dg repo,
/// reduced to the paper's structured-loop world), one summary per
/// function:
///
///   - the sets of global symbols the function (transitively) reads and
///     writes by name,
///   - for each pointer parameter, a bounded byte window `[Lo, Hi)` of
///     offsets the function may read / write through that parameter
///     (composed transitively through calls that pass `param + const`),
///   - whether anything escaped the analysis (writes through untracked
///     pointers, calls to externs, recursion) — in which case the
///     function is simply unsafe to spread around.
///
/// Summaries over-approximate: every reference syntactically present is
/// counted regardless of control flow, so "safe" is a proof and "unsafe"
/// is the default.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_PARALLEL_CALLSAFETY_H
#define TCC_PARALLEL_CALLSAFETY_H

#include "il/IL.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace tcc {
namespace par {

/// A bounded byte window of offsets accessed through one pointer
/// parameter, relative to the pointer value passed at the call site.
struct ParamWindow {
  bool Accessed = false; ///< Any access through this parameter at all.
  bool Bounded = false;  ///< The window below covers every access.
  int64_t Lo = 0;        ///< Inclusive start (bytes).
  int64_t Hi = 0;        ///< Exclusive end (bytes).

  /// Grows the window to cover [WLo, WHi).
  void cover(int64_t WLo, int64_t WHi);
  /// Marks the parameter accessed with no provable bound.
  void unbounded();
};

/// What one function may do to memory, transitively.
struct CalleeSummary {
  bool HasBody = false;   ///< Defined in this program (externs are not).
  bool Recursive = false; ///< Participates in a call-graph cycle.
  /// A write escaped the analysis: through a non-parameter pointer, an
  /// unbounded parameter window on an untracked argument shape, or a
  /// call to an extern / recursive function.
  bool UnknownWrites = false;
  /// A read escaped the analysis the same way.  Unknown reads block
  /// spreading only when the loop writes anything at all.
  bool UnknownReads = false;
  std::set<std::string> GlobalWrites; ///< Global/static symbols stored to.
  std::set<std::string> GlobalReads;  ///< Global/static symbols loaded.
  /// Per-parameter windows, aligned with Function::getParams().  Scalar
  /// (non-pointer) parameters keep Accessed=false.
  std::vector<ParamWindow> ParamReads;
  std::vector<ParamWindow> ParamWrites;

  /// True when the function provably writes nothing: no global writes,
  /// no parameter write windows, nothing unknown.
  bool pure() const;
};

/// Bottom-up call-safety analysis over a whole program.  Construction
/// computes every summary; lookups are by function name.
class CallSafetyAnalysis {
public:
  explicit CallSafetyAnalysis(const il::Program &P);

  /// The summary for \p Callee; null for names with no definition in the
  /// program (externs — always unsafe).
  const CalleeSummary *summary(const std::string &Callee) const;

private:
  void summarize(const il::Function &F, bool Recursive);

  std::map<std::string, CalleeSummary> Summaries;
};

} // namespace par
} // namespace tcc

#endif // TCC_PARALLEL_CALLSAFETY_H
