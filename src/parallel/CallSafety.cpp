#include "parallel/CallSafety.h"

#include "analysis/CallGraph.h"
#include "dependence/MemRef.h"

#include <algorithm>
#include <functional>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::par;

void ParamWindow::cover(int64_t WLo, int64_t WHi) {
  if (!Accessed) {
    Accessed = true;
    Bounded = true;
    Lo = WLo;
    Hi = WHi;
    return;
  }
  if (!Bounded)
    return;
  Lo = std::min(Lo, WLo);
  Hi = std::max(Hi, WHi);
}

void ParamWindow::unbounded() {
  Accessed = true;
  Bounded = false;
}

bool CalleeSummary::pure() const {
  if (UnknownWrites || !GlobalWrites.empty())
    return false;
  for (const ParamWindow &W : ParamWrites)
    if (W.Accessed)
      return false;
  return true;
}

namespace {

/// The inclusive value range of a DO loop's index when the bounds are
/// integer constants; false otherwise.  Over-approximates (uses the raw
/// limit rather than the last value actually hit).
bool indexRange(const DoLoopStmt *D, int64_t &Lo, int64_t &Hi) {
  auto AsConst = [](const Expr *E, int64_t &V) {
    if (E->getKind() != Expr::ConstIntKind)
      return false;
    V = static_cast<const ConstIntExpr *>(E)->getValue();
    return true;
  };
  int64_t Init = 0, Limit = 0, Step = 0;
  if (!AsConst(D->getInit(), Init) || !AsConst(D->getLimit(), Limit) ||
      !AsConst(D->getStep(), Step) || Step == 0)
    return false;
  Lo = std::min(Init, Limit);
  Hi = std::max(Init, Limit);
  return true;
}

/// Byte interval [Lo, Hi) of a normalized address' variable part over its
/// enclosing loop ranges: the invariant offset must be a constant and
/// every index coefficient must range over a known loop.  \p Ranges maps
/// index symbols to their inclusive value ranges.
bool addrInterval(const dep::AddrForm &Addr, int64_t Size,
                  const std::map<Symbol *, std::pair<int64_t, int64_t>> &Ranges,
                  int64_t &Lo, int64_t &Hi) {
  if (!Addr.Offset.Known || !Addr.Offset.isConstant())
    return false;
  Lo = Addr.Offset.C0;
  Hi = Addr.Offset.C0 + Size;
  for (const auto &[Sym, Coeff] : Addr.IdxCoeffs) {
    if (Coeff == 0)
      continue;
    auto It = Ranges.find(Sym);
    if (It == Ranges.end())
      return false;
    int64_t A = Coeff * It->second.first;
    int64_t B = Coeff * It->second.second;
    Lo += std::min(A, B);
    Hi += std::max(A, B);
  }
  return true;
}

} // namespace

CallSafetyAnalysis::CallSafetyAnalysis(const il::Program &P) {
  analysis::CallGraph CG(P);
  // Bottom-up: callees summarized before their callers, so composition
  // only ever looks up finished summaries.  Functions in recursive
  // cycles are summarized as unknown without inspecting their bodies.
  for (const std::string &Name : CG.bottomUpOrder()) {
    const Function *F = P.findFunction(Name);
    if (!F)
      continue;
    summarize(*F, CG.isRecursive(Name));
  }
  // Functions unreachable from the call graph roots (bottomUpOrder covers
  // everything with a body, but be safe for isolated functions).
  for (const auto &FPtr : P.getFunctions())
    if (!Summaries.count(FPtr->getName()))
      summarize(*FPtr, CG.isRecursive(FPtr->getName()));
}

const CalleeSummary *
CallSafetyAnalysis::summary(const std::string &Callee) const {
  auto It = Summaries.find(Callee);
  return It == Summaries.end() ? nullptr : &It->second;
}

void CallSafetyAnalysis::summarize(const il::Function &F, bool Recursive) {
  CalleeSummary &S = Summaries[F.getName()];
  S.HasBody = true;
  S.Recursive = Recursive;
  S.ParamReads.assign(F.getParams().size(), {});
  S.ParamWrites.assign(F.getParams().size(), {});
  if (Recursive) {
    // Iteration-per-processor reasoning cannot bound a recursive callee's
    // footprint; one summary marks the whole cycle unsafe.
    S.UnknownWrites = true;
    S.UnknownReads = true;
    return;
  }

  std::map<Symbol *, size_t> ParamIndex;
  for (size_t I = 0; I < F.getParams().size(); ++I)
    ParamIndex[F.getParams()[I]] = I;

  // The traversal only reads the IL; MemRef normalization takes mutable
  // handles because its clients are transformation passes.
  Function &MutF = const_cast<Function &>(F);

  std::map<Symbol *, std::pair<int64_t, int64_t>> Ranges;

  auto RecordRef = [&](const dep::MemRef &R) {
    if (!R.Addr.Valid || R.Addr.Base.K == dep::BaseKey::Unknown) {
      (R.IsWrite ? S.UnknownWrites : S.UnknownReads) = true;
      return;
    }
    Symbol *Base = R.Addr.Base.Sym;
    if (R.Addr.Base.K == dep::BaseKey::Array) {
      if (Base && Base->isGlobal())
        (R.IsWrite ? S.GlobalWrites : S.GlobalReads).insert(Base->getName());
      // A local array is this invocation's private frame storage: calls
      // from concurrent loop iterations each get their own copy.
      return;
    }
    // Pointer base: only loop-invariant parameter pointers are tracked.
    auto It = Base ? ParamIndex.find(Base) : ParamIndex.end();
    if (It == ParamIndex.end()) {
      (R.IsWrite ? S.UnknownWrites : S.UnknownReads) = true;
      return;
    }
    ParamWindow &W =
        (R.IsWrite ? S.ParamWrites : S.ParamReads)[It->second];
    int64_t Lo = 0, Hi = 0;
    if (addrInterval(R.Addr, R.Size, Ranges, Lo, Hi))
      W.cover(Lo, Hi);
    else
      W.unbounded();
  };

  auto RecordScalarReads = [&](Expr *E) {
    std::vector<VarRefExpr *> Refs;
    collectVarRefs(E, Refs);
    for (VarRefExpr *V : Refs)
      if (V->getSymbol()->isGlobal())
        S.GlobalReads.insert(V->getSymbol()->getName());
  };

  // Walk with the enclosing DO chain so references inside callee loops
  // get index coefficients (and thus bounded windows) instead of falling
  // to "unbounded" immediately.
  std::vector<DoLoopStmt *> Chain;
  auto NestHere = [&]() {
    dep::NestContext Nest;
    if (!Chain.empty())
      Nest = dep::buildNestContext(
          MutF, Chain.back(),
          std::vector<DoLoopStmt *>(Chain.begin(), Chain.end() - 1));
    return Nest;
  };
  // Memory accesses in a statement's own expressions: assignment sides,
  // call arguments, If/While conditions, return values.  Everything but
  // an assignment's store target is a read.
  auto RecordStmtRefs = [&](Stmt *St) {
    dep::NestContext Nest = NestHere();
    for (const dep::MemRef &R : dep::collectMemRefs(St, Nest))
      RecordRef(R);
  };
  std::function<void(Block &)> Walk = [&](Block &B) {
    for (Stmt *St : B.Stmts) {
      switch (St->getKind()) {
      case Stmt::AssignKind: {
        auto *A = static_cast<AssignStmt *>(St);
        if (A->getLHS()->getKind() == Expr::VarRefKind) {
          Symbol *Target =
              static_cast<VarRefExpr *>(A->getLHS())->getSymbol();
          if (Target->isGlobal())
            S.GlobalWrites.insert(Target->getName());
        }
        RecordScalarReads(A->getRHS());
        if (A->getLHS()->getKind() != Expr::VarRefKind)
          RecordScalarReads(A->getLHS());
        RecordStmtRefs(St);
        break;
      }
      case Stmt::CallKind: {
        auto *C = static_cast<CallStmt *>(St);
        for (Expr *Arg : C->argSlots())
          RecordScalarReads(Arg);
        RecordStmtRefs(St);
        const CalleeSummary *Callee = nullptr;
        auto It = Summaries.find(C->getCallee());
        if (It != Summaries.end())
          Callee = &It->second;
        if (!Callee || !Callee->HasBody || Callee->Recursive ||
            Callee->UnknownWrites)
          S.UnknownWrites = true;
        if (!Callee || !Callee->HasBody || Callee->Recursive ||
            Callee->UnknownReads)
          S.UnknownReads = true;
        if (!Callee || !Callee->HasBody || Callee->Recursive)
          break;
        S.GlobalWrites.insert(Callee->GlobalWrites.begin(),
                              Callee->GlobalWrites.end());
        S.GlobalReads.insert(Callee->GlobalReads.begin(),
                             Callee->GlobalReads.end());
        // Propagate the callee's parameter windows onto whatever this
        // function passed at the site.
        dep::NestContext Nest;
        if (!Chain.empty())
          Nest = dep::buildNestContext(
              MutF, Chain.back(),
              std::vector<DoLoopStmt *>(Chain.begin(), Chain.end() - 1));
        size_t NArgs =
            std::min(C->getArgs().size(), Callee->ParamWrites.size());
        for (size_t K = 0; K < Callee->ParamWrites.size(); ++K) {
          for (bool IsWrite : {false, true}) {
            const ParamWindow &CW =
                (IsWrite ? Callee->ParamWrites : Callee->ParamReads)[K];
            if (!CW.Accessed)
              continue;
            bool *Unknown = IsWrite ? &S.UnknownWrites : &S.UnknownReads;
            if (K >= NArgs) {
              *Unknown = true;
              continue;
            }
            dep::AddrForm Arg =
                dep::normalizeAddress(C->argSlots()[K], Nest);
            if (!Arg.Valid || Arg.Base.K == dep::BaseKey::Unknown) {
              *Unknown = true;
              continue;
            }
            if (Arg.Base.K == dep::BaseKey::Array) {
              if (Arg.Base.Sym && Arg.Base.Sym->isGlobal())
                (IsWrite ? S.GlobalWrites : S.GlobalReads)
                    .insert(Arg.Base.Sym->getName());
              continue; // local arrays: private frame storage
            }
            auto PIt = ParamIndex.find(Arg.Base.Sym);
            if (PIt == ParamIndex.end()) {
              *Unknown = true;
              continue;
            }
            ParamWindow &W =
                (IsWrite ? S.ParamWrites : S.ParamReads)[PIt->second];
            int64_t Lo = 0, Hi = 0;
            if (CW.Bounded &&
                addrInterval(Arg, /*Size=*/0, Ranges, Lo, Hi))
              W.cover(Lo + CW.Lo, Hi + CW.Hi);
            else
              W.unbounded();
          }
        }
        break;
      }
      case Stmt::IfKind: {
        auto *If = static_cast<IfStmt *>(St);
        RecordScalarReads(If->getCond());
        RecordStmtRefs(St);
        Walk(If->getThen());
        Walk(If->getElse());
        break;
      }
      case Stmt::WhileKind: {
        auto *W = static_cast<WhileStmt *>(St);
        RecordScalarReads(W->getCond());
        RecordStmtRefs(St);
        Walk(W->getBody());
        break;
      }
      case Stmt::DoLoopKind: {
        auto *D = static_cast<DoLoopStmt *>(St);
        int64_t Lo = 0, Hi = 0;
        bool Known = indexRange(D, Lo, Hi);
        if (Known)
          Ranges[D->getIndexVar()] = {Lo, Hi};
        else
          Ranges.erase(D->getIndexVar());
        Chain.push_back(D);
        Walk(D->getBody());
        Chain.pop_back();
        break;
      }
      case Stmt::ReturnKind: {
        auto *R = static_cast<ReturnStmt *>(St);
        if (R->getValue()) {
          RecordScalarReads(R->getValue());
          RecordStmtRefs(St);
        }
        break;
      }
      case Stmt::LabelKind:
      case Stmt::GotoKind:
        break;
      }
    }
  };
  Walk(MutF.getBody());
}
