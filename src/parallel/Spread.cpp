#include "parallel/Spread.h"

#include "analysis/UseDef.h"
#include "dependence/DependenceAnalysis.h"
#include "dependence/MemRef.h"
#include "parallel/CallSafety.h"
#include "remarks/Remarks.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::par;

namespace {

using RemarkArgs = std::vector<std::pair<std::string, std::string>>;

bool constOf(const Expr *E, int64_t &V) {
  if (E->getKind() != Expr::ConstIntKind)
    return false;
  V = static_cast<const ConstIntExpr *>(E)->getValue();
  return true;
}

/// One reference the legality test reasons about: a direct load/store
/// from the body, or a synthetic window a callee may touch through a
/// pointer argument.  The footprint at one iteration is
/// `addr(Addr) + [ExtLo, ExtHi)` bytes.
struct SRef {
  dep::MemRef M;
  int64_t ExtLo = 0;
  int64_t ExtHi = 0;
  bool Synthetic = false;
  SourceLoc Loc;
  std::string Desc;
};

/// Static per-trip cycle estimates against the Titan model — the same
/// order of magnitude the paper's Section 9 profitability argument uses,
/// not a precise schedule.
constexpr int64_t AssignCost = 12;
constexpr int64_t CallCost = 60;
constexpr int64_t IfCost = 4;
constexpr int64_t LoopOverheadCost = 6;
constexpr int64_t UnknownTripGuess = 8;

int64_t estimateBlock(const Block &B);

int64_t estimateStmt(const Stmt *S) {
  switch (S->getKind()) {
  case Stmt::AssignKind:
    return AssignCost;
  case Stmt::CallKind:
    return CallCost;
  case Stmt::IfKind: {
    auto *If = static_cast<const IfStmt *>(S);
    return IfCost +
           std::max(estimateBlock(If->getThen()), estimateBlock(If->getElse()));
  }
  case Stmt::DoLoopKind: {
    auto *D = static_cast<const DoLoopStmt *>(S);
    int64_t Init = 0, Limit = 0, Step = 0, Trip = UnknownTripGuess;
    if (constOf(D->getInit(), Init) && constOf(D->getLimit(), Limit) &&
        constOf(D->getStep(), Step) && Step != 0)
      Trip = std::max<int64_t>(0, (Limit - Init) / Step + 1);
    return LoopOverheadCost + Trip * estimateBlock(D->getBody());
  }
  case Stmt::WhileKind:
    return LoopOverheadCost +
           UnknownTripGuess *
               estimateBlock(static_cast<const WhileStmt *>(S)->getBody());
  default:
    return 2;
  }
}

int64_t estimateBlock(const Block &B) {
  int64_t Sum = 0;
  for (const Stmt *S : B.Stmts)
    Sum += estimateStmt(S);
  return Sum;
}

class SpreadDriver {
public:
  SpreadDriver(Function &F, const SpreadOptions &Opts)
      : F(F), Opts(Opts),
        AddressTaken(analysis::computeAddressTakenScalars(F)) {}

  SpreadStats run() {
    visitBlock(F.getBody(), {});
    return Stats;
  }

private:
  Function &F;
  const SpreadOptions &Opts;
  std::set<Symbol *> AddressTaken;
  SpreadStats Stats;

  //===--------------------------------------------------------------------===//
  // Traversal: outermost loops first; a spread loop closes its nest.
  //===--------------------------------------------------------------------===//

  void visitBlock(Block &B, const std::vector<DoLoopStmt *> &Enclosing) {
    for (Stmt *S : B.Stmts) {
      switch (S->getKind()) {
      case Stmt::IfKind: {
        auto *If = static_cast<IfStmt *>(S);
        visitBlock(If->getThen(), Enclosing);
        visitBlock(If->getElse(), Enclosing);
        break;
      }
      case Stmt::WhileKind:
        visitBlock(static_cast<WhileStmt *>(S)->getBody(), Enclosing);
        break;
      case Stmt::DoLoopKind: {
        auto *D = static_cast<DoLoopStmt *>(S);
        if (D->isParallel())
          break; // already a parallel region; nothing nested may join it
        if (trySpread(D, Enclosing))
          break; // one parallel region per nest
        std::vector<DoLoopStmt *> Inner = Enclosing;
        Inner.push_back(D);
        visitBlock(D->getBody(), Inner);
        break;
      }
      default:
        break;
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Remarks
  //===--------------------------------------------------------------------===//

  void remarkMissed(DoLoopStmt *D, const std::string &Reason,
                    RemarkArgs Args = {}) {
    if (Opts.Remarks)
      Opts.Remarks->missed("spread", D->getLoc(), "not spread: " + Reason,
                           std::move(Args));
  }

  static RemarkArgs pairArgs(const std::string &Impl, const SRef &A,
                             const SRef &B) {
    return {{"impl", Impl},
            {"refA", A.Desc},
            {"kindA", dep::baseKindName(A.M)},
            {"locA", A.Loc.str()},
            {"refB", B.Desc},
            {"kindB", dep::baseKindName(B.M)},
            {"locB", B.Loc.str()}};
  }

  //===--------------------------------------------------------------------===//
  // The per-loop attempt
  //===--------------------------------------------------------------------===//

  bool trySpread(DoLoopStmt *D, const std::vector<DoLoopStmt *> &Enclosing) {
    if (Opts.Processors <= 1)
      return false;
    ++Stats.LoopsConsidered;

    int64_t Step = 0;
    if (!constOf(D->getStep(), Step) || Step == 0) {
      ++Stats.RejectedStructure;
      remarkMissed(D, "step is not a nonzero constant");
      return false;
    }
    Symbol *Idx = D->getIndexVar();
    if (Idx->isGlobal() || Idx->isVolatile() || AddressTaken.count(Idx)) {
      ++Stats.RejectedStructure;
      remarkMissed(D, "index variable '" + Idx->getName() +
                          "' is shared (global, volatile, or address-taken)");
      return false;
    }

    // Structure: the body must be straight structured code.  Irregular
    // flow (goto/label), data-dependent While trips, and early returns
    // have no per-iteration meaning under spreading.
    bool Irregular = false, HasReturn = false;
    forEachStmt(D->getBody(), [&](const Stmt *S) {
      if (S->getKind() == Stmt::GotoKind || S->getKind() == Stmt::LabelKind ||
          S->getKind() == Stmt::WhileKind)
        Irregular = true;
      if (S->getKind() == Stmt::ReturnKind)
        HasReturn = true;
    });
    if (Irregular || HasReturn) {
      ++Stats.RejectedStructure;
      remarkMissed(D, HasReturn ? "body may return out of the loop"
                                : "body has irregular control flow");
      return false;
    }

    // Ranges of every index with constant bounds: the enclosing loops
    // (fixed during one execution of D) and D's inner loops.
    std::map<Symbol *, std::pair<int64_t, int64_t>> Ranges;
    std::set<Symbol *> EnclosingIdx, InnerIdx;
    auto NoteRange = [&Ranges](DoLoopStmt *L) {
      int64_t Init = 0, Limit = 0, S = 0;
      if (constOf(L->getInit(), Init) && constOf(L->getLimit(), Limit) &&
          constOf(L->getStep(), S) && S != 0)
        Ranges[L->getIndexVar()] = {std::min(Init, Limit),
                                    std::max(Init, Limit)};
    };
    for (DoLoopStmt *E : Enclosing) {
      EnclosingIdx.insert(E->getIndexVar());
      NoteRange(E);
    }
    int64_t TripLo = 0, TripHi = 0;
    bool TripKnown = false;
    {
      int64_t Init = 0, Limit = 0;
      if (constOf(D->getInit(), Init) && constOf(D->getLimit(), Limit)) {
        TripKnown = true;
        TripLo = std::min(Init, Limit);
        TripHi = std::max(Init, Limit);
        Ranges[Idx] = {TripLo, TripHi};
      }
    }

    // Collect: direct refs, synthetic callee windows, scalar touches.
    std::vector<SRef> Refs;
    bool UnknownCalleeReads = false;
    std::set<std::string> CalleeGlobalReads;
    std::string CallReject;          // first blocking call reason
    SourceLoc CallRejectLoc;
    std::map<Symbol *, std::vector<Stmt *>> Defs; // scalar -> def stmts
    std::set<Symbol *> Touched;                   // scalar use or def seen
    std::map<Symbol *, size_t> FirstTouch;        // visit ordinal
    std::set<Symbol *> Uncovered; // touched outside any DO defining it
    std::map<Stmt *, size_t> Ord;
    size_t NextOrd = 0;
    bool Volatile = false;

    std::vector<DoLoopStmt *> InnerChain;
    std::function<void(Block &)> Collect = [&](Block &B) {
      for (Stmt *St : B.Stmts) {
        Ord[St] = NextOrd++;
        // A touch of symbol S is "covered" when it sits inside (or at the
        // header of) an inner DO loop whose index is S: such touches only
        // ever see the header's same-iteration definition, so the index
        // is effectively private however deep the nest.  A header whose
        // own bounds read S (`do k = k, ...`) does not cover it.
        auto CoveredTouch = [&](Symbol *S) {
          for (DoLoopStmt *L : InnerChain)
            if (L->getIndexVar() == S)
              return true;
          if (St->getKind() == Stmt::DoLoopKind &&
              static_cast<DoLoopStmt *>(St)->getIndexVar() == S) {
            auto U = analysis::usedScalars(St);
            return std::find(U.begin(), U.end(), S) == U.end();
          }
          return false;
        };
        for (Symbol *S : analysis::usedScalars(St)) {
          Touched.insert(S);
          FirstTouch.emplace(S, Ord[St]);
          if (!CoveredTouch(S))
            Uncovered.insert(S);
          if (S->isVolatile())
            Volatile = true;
        }
        for (Symbol *S : analysis::strongDefs(St)) {
          Touched.insert(S);
          FirstTouch.emplace(S, Ord[St]);
          Defs[S].push_back(St);
          if (!CoveredTouch(S))
            Uncovered.insert(S);
          if (S->isVolatile())
            Volatile = true;
        }

        // The nest context for this statement: every DO from the
        // function's outermost down to the statement's innermost.
        auto NestFor = [&]() {
          std::vector<DoLoopStmt *> Chain = Enclosing;
          Chain.push_back(D);
          Chain.insert(Chain.end(), InnerChain.begin(), InnerChain.end());
          DoLoopStmt *Innermost = Chain.back();
          Chain.pop_back();
          return dep::buildNestContext(F, Innermost, Chain);
        };

        // Memory accesses in this statement's own expressions (assignment
        // sides, If conditions, call arguments); everything but a store
        // target comes back as a read.
        auto CollectStmtRefs = [&]() {
          dep::NestContext Nest = NestFor();
          for (const dep::MemRef &R : dep::collectMemRefs(St, Nest)) {
            SRef Ref;
            Ref.M = R;
            Ref.ExtLo = 0;
            Ref.ExtHi = R.Size;
            Ref.Loc = St->getLoc();
            Ref.Desc = R.Addr.Valid && R.Addr.Base.Sym
                           ? R.Addr.Base.Sym->getName()
                           : "<unknown>";
            if (R.Addr.Valid && R.Addr.Base.Sym &&
                R.Addr.Base.Sym->isVolatile())
              Volatile = true;
            Refs.push_back(std::move(Ref));
          }
        };

        switch (St->getKind()) {
        case Stmt::AssignKind: {
          auto *A = static_cast<AssignStmt *>(St);
          if (exprReadsVolatile(A->getRHS()) || exprReadsVolatile(A->getLHS()))
            Volatile = true;
          CollectStmtRefs();
          break;
        }
        case Stmt::CallKind: {
          auto *C = static_cast<CallStmt *>(St);
          CollectStmtRefs(); // loads inside argument expressions
          collectCall(C, NestFor(), Refs, UnknownCalleeReads,
                      CalleeGlobalReads, CallReject, CallRejectLoc);
          break;
        }
        case Stmt::IfKind: {
          auto *If = static_cast<IfStmt *>(St);
          if (exprReadsVolatile(If->getCond()))
            Volatile = true;
          CollectStmtRefs(); // loads in the condition
          Collect(If->getThen());
          Collect(If->getElse());
          break;
        }
        case Stmt::DoLoopKind: {
          auto *L = static_cast<DoLoopStmt *>(St);
          NoteRange(L);
          InnerIdx.insert(L->getIndexVar());
          InnerChain.push_back(L);
          Collect(L->getBody());
          InnerChain.pop_back();
          break;
        }
        default:
          break;
        }
      }
    };
    Collect(D->getBody());

    if (Volatile) {
      ++Stats.RejectedStructure;
      remarkMissed(D, "body accesses volatile storage");
      return false;
    }
    if (Defs.count(Idx)) {
      ++Stats.RejectedStructure;
      remarkMissed(D, "body reassigns the loop index '" + Idx->getName() +
                          "'");
      return false;
    }
    if (!CallReject.empty()) {
      ++Stats.RejectedCalls;
      remarkMissed(D, CallReject, {{"loc", CallRejectLoc.str()}});
      return false;
    }

    bool AnyWrite = std::any_of(Refs.begin(), Refs.end(),
                                [](const SRef &R) { return R.M.IsWrite; });
    if (UnknownCalleeReads && AnyWrite) {
      ++Stats.RejectedCalls;
      remarkMissed(D, "a callee reads through unanalyzable pointers while "
                      "the loop writes memory");
      return false;
    }
    if (!CalleeGlobalReads.empty()) {
      for (const SRef &R : Refs) {
        if (!R.M.IsWrite || !R.M.Addr.Valid || !R.M.Addr.Base.Sym)
          continue;
        if (R.M.Addr.Base.Sym->isGlobal() &&
            CalleeGlobalReads.count(R.M.Addr.Base.Sym->getName())) {
          ++Stats.RejectedCalls;
          remarkMissed(D, "iterations write '" +
                              R.M.Addr.Base.Sym->getName() +
                              "', which a callee reads");
          return false;
        }
      }
      for (const auto &[Sym, Stmts] : Defs)
        if (Sym->isGlobal() && CalleeGlobalReads.count(Sym->getName())) {
          ++Stats.RejectedCalls;
          remarkMissed(D, "iterations write '" + Sym->getName() +
                              "', which a callee reads");
          return false;
        }
    }

    // Scalars: every scalar the body assigns must be privatizable (each
    // iteration writes it before reading) or a recognized reduction.
    uint64_t Reductions = 0;
    for (const auto &[Sym, DefStmts] : Defs) {
      if (AddressTaken.count(Sym)) {
        ++Stats.RejectedScalars;
        remarkMissed(D, "scalar '" + Sym->getName() +
                            "' is address-taken and assigned in the loop");
        return false;
      }
      if (InnerIdx.count(Sym) && !Uncovered.count(Sym))
        continue; // index lives entirely inside its own DO subtree
      if (!Sym->isGlobal() && privatizable(Sym, D, Ord, FirstTouch))
        continue;
      if (isReduction(Sym, DefStmts, D)) {
        ++Reductions;
        if (Opts.Remarks)
          Opts.Remarks->note("spread", DefStmts.front()->getLoc(),
                             "reduction on '" + Sym->getName() +
                                 "' recognized");
        continue;
      }
      ++Stats.RejectedScalars;
      remarkMissed(D, "scalar '" + Sym->getName() +
                          "' carries a value across iterations");
      return false;
    }
    // Address-taken scalars merely *read* in the body can still be the
    // target of an untracked pointer write; the ref pair tests below see
    // pointer writes but not the scalar, so refuse the combination.
    if (AnyWrite)
      for (Symbol *S : Touched)
        if (AddressTaken.count(S)) {
          bool PointerWrite = std::any_of(
              Refs.begin(), Refs.end(), [](const SRef &R) {
                return R.M.IsWrite &&
                       (!R.M.Addr.Valid ||
                        R.M.Addr.Base.K != dep::BaseKey::Array);
              });
          if (PointerWrite) {
            ++Stats.RejectedScalars;
            remarkMissed(D, "address-taken scalar '" + S->getName() +
                                "' may alias a pointer store in the body");
            return false;
          }
        }

    // Memory legality: every (write, any) pair — including a write
    // against itself in another iteration — must be disjoint across
    // iterations.
    if (!D->hasSafeVectorPragma()) {
      for (const SRef &R : Refs) {
        if (R.M.Addr.Valid && R.M.Addr.Base.K != dep::BaseKey::Unknown)
          continue;
        if (R.M.IsWrite || AnyWrite) {
          ++Stats.RejectedDependence;
          remarkMissed(D,
                       "unanalyzable " +
                           std::string(R.M.IsWrite ? "store" : "load") +
                           " at " + R.Loc.str(),
                       {{"refA", R.Desc}, {"locA", R.Loc.str()}});
          return false;
        }
      }
      for (size_t I = 0; I < Refs.size(); ++I) {
        for (size_t J = I; J < Refs.size(); ++J) {
          const SRef &A = Refs[I], &B = Refs[J];
          if (!A.M.IsWrite && !B.M.IsWrite)
            continue;
          if (I == J && !A.M.IsWrite)
            continue;
          if (!A.M.Addr.Valid || !B.M.Addr.Valid)
            continue; // handled above (read-only loop)
          std::string Impl;
          if (!pairDisjoint(A, B, D, Step, Ranges, EnclosingIdx, TripKnown,
                            Impl)) {
            ++Stats.RejectedDependence;
            remarkMissed(D,
                         "loop-carried dependence between '" + A.Desc +
                             "' and '" + B.Desc + "'",
                         pairArgs(Impl, A, B));
            return false;
          }
        }
      }
    }

    // Profitability against the Titan model: enough chunks to feed every
    // processor, and enough work per trip that the parallel win
    // (Est·Trip·(P-1)/P cycles) beats the PAREND barrier.
    int64_t Trip =
        TripKnown ? std::max<int64_t>(
                        0, (TripHi - TripLo) / std::max<int64_t>(
                                                   1, Step > 0 ? Step : -Step) +
                               1)
                  : UnknownTripGuess;
    if (TripKnown && Trip < Opts.Processors) {
      ++Stats.RejectedUnprofitable;
      remarkMissed(D, "trip count " + std::to_string(Trip) +
                          " is below the processor count " +
                          std::to_string(Opts.Processors));
      return false;
    }
    int64_t Est = estimateBlock(D->getBody());
    int64_t Saved = Est * Trip * (Opts.Processors - 1) / Opts.Processors;
    if (Saved <= Opts.BarrierCycles) {
      ++Stats.RejectedUnprofitable;
      remarkMissed(D, "estimated win " + std::to_string(Saved) +
                          " cycles does not amortize the " +
                          std::to_string(Opts.BarrierCycles) +
                          "-cycle barrier");
      return false;
    }

    D->setParallel(true);
    ++Stats.LoopsSpread;
    Stats.Reductions += Reductions;
    if (Opts.Remarks)
      Opts.Remarks->applied(
          "spread", D->getLoc(),
          "loop spread across " + std::to_string(Opts.Processors) +
              " processors" +
              (TripKnown ? " (trip " + std::to_string(Trip) + ")" : ""));
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Calls
  //===--------------------------------------------------------------------===//

  void collectCall(CallStmt *C, const dep::NestContext &Nest,
                   std::vector<SRef> &Refs, bool &UnknownCalleeReads,
                   std::set<std::string> &CalleeGlobalReads,
                   std::string &CallReject, SourceLoc &CallRejectLoc) {
    if (!CallReject.empty())
      return;
    auto Reject = [&](const std::string &Why) {
      CallReject = "call to '" + C->getCallee() + "' blocks spreading: " + Why;
      CallRejectLoc = C->getLoc();
    };
    const CalleeSummary *Sum =
        Opts.CallSafety ? Opts.CallSafety->summary(C->getCallee()) : nullptr;
    if (!Sum || !Sum->HasBody)
      return Reject("no body to analyze (extern)");
    if (Sum->Recursive)
      return Reject("callee is recursive");
    if (Sum->UnknownWrites)
      return Reject("callee writes through unanalyzable pointers");
    if (!Sum->GlobalWrites.empty())
      return Reject("callee writes global '" + *Sum->GlobalWrites.begin() +
                    "'");
    if (Sum->UnknownReads)
      UnknownCalleeReads = true;
    CalleeGlobalReads.insert(Sum->GlobalReads.begin(),
                             Sum->GlobalReads.end());

    for (size_t K = 0; K < Sum->ParamWrites.size(); ++K) {
      for (bool IsWrite : {true, false}) {
        const ParamWindow &W =
            (IsWrite ? Sum->ParamWrites : Sum->ParamReads)[K];
        if (!W.Accessed)
          continue;
        if (K >= C->getArgs().size()) {
          if (IsWrite)
            return Reject("argument count mismatch");
          UnknownCalleeReads = true;
          continue;
        }
        if (!W.Bounded) {
          if (IsWrite)
            return Reject("unbounded writes through parameter " +
                          std::to_string(K));
          UnknownCalleeReads = true;
          continue;
        }
        dep::AddrForm Addr = dep::normalizeAddress(C->argSlots()[K], Nest);
        if (!Addr.Valid || Addr.Base.K == dep::BaseKey::Unknown) {
          if (IsWrite)
            return Reject("unanalyzable pointer argument " +
                          std::to_string(K));
          UnknownCalleeReads = true;
          continue;
        }
        SRef Ref;
        Ref.M.S = C;
        Ref.M.IsWrite = IsWrite;
        Ref.M.Size = 0; // extent carried by the window below
        Ref.M.Addr = Addr;
        Ref.ExtLo = W.Lo;
        Ref.ExtHi = W.Hi;
        Ref.Synthetic = true;
        Ref.Loc = C->getLoc();
        Ref.Desc = C->getCallee() + "(" +
                   (Addr.Base.Sym ? Addr.Base.Sym->getName() : "?") + ")";
        Refs.push_back(std::move(Ref));
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Scalars
  //===--------------------------------------------------------------------===//

  /// A scalar is privatizable when the first statement (in collection
  /// order) that touches it is a top-level statement of \p D's body that
  /// strongly defines it without using it: every iteration then writes
  /// its own copy before any read.
  bool privatizable(Symbol *Sym, DoLoopStmt *D,
                    const std::map<Stmt *, size_t> &Ord,
                    const std::map<Symbol *, size_t> &FirstTouch) {
    auto FT = FirstTouch.find(Sym);
    if (FT == FirstTouch.end())
      return false;
    for (Stmt *Top : D->getBody().Stmts) {
      auto It = Ord.find(Top);
      if (It == Ord.end() || It->second != FT->second)
        continue;
      auto SD = analysis::strongDefs(Top);
      if (std::find(SD.begin(), SD.end(), Sym) == SD.end())
        return false;
      auto Used = analysis::usedScalars(Top);
      return std::find(Used.begin(), Used.end(), Sym) == Used.end();
    }
    return false; // first touch is nested inside an If or inner loop
  }

  /// `s = s op e` (or `s = e op s` for commutative op) as the loop's only
  /// touch of `s`: a spreadable reduction (each processor accumulates a
  /// partial; the simulator's sequential execution keeps the exact
  /// sequential result).
  bool isReduction(Symbol *Sym, const std::vector<Stmt *> &DefStmts,
                   DoLoopStmt *D) {
    if (Sym->isVolatile() || DefStmts.size() != 1)
      return false;
    Stmt *T = DefStmts.front();
    if (std::find(D->getBody().Stmts.begin(), D->getBody().Stmts.end(), T) ==
        D->getBody().Stmts.end())
      return false; // conditional or nested update
    if (T->getKind() != Stmt::AssignKind)
      return false;
    auto *A = static_cast<AssignStmt *>(T);
    if (A->getLHS()->getKind() != Expr::VarRefKind ||
        static_cast<VarRefExpr *>(A->getLHS())->getSymbol() != Sym)
      return false;
    if (A->getRHS()->getKind() != Expr::BinaryKind)
      return false;
    auto *Bin = static_cast<BinaryExpr *>(A->getRHS());
    OpCode Op = Bin->getOp();
    bool Commutative = Op == OpCode::Add || Op == OpCode::Mul ||
                       Op == OpCode::Min || Op == OpCode::Max;
    if (!Commutative && Op != OpCode::Sub)
      return false;
    auto UsesSym = [&](Expr *E) {
      std::vector<VarRefExpr *> VR;
      collectVarRefs(E, VR);
      size_t N = 0;
      for (VarRefExpr *V : VR)
        if (V->getSymbol() == Sym)
          ++N;
      return N;
    };
    Expr *L = Bin->getLHS(), *R = Bin->getRHS();
    bool LIsSym = L->getKind() == Expr::VarRefKind &&
                  static_cast<VarRefExpr *>(L)->getSymbol() == Sym;
    bool RIsSym = R->getKind() == Expr::VarRefKind &&
                  static_cast<VarRefExpr *>(R)->getSymbol() == Sym;
    if (LIsSym && UsesSym(R) == 0)
      ; // s = s op e
    else if (RIsSym && Commutative && UsesSym(L) == 0)
      ; // s = e op s
    else
      return false;
    // The update must be the scalar's only appearance in the whole body.
    size_t Uses = 0;
    forEachStmt(D->getBody(), [&](Stmt *S) {
      for (Symbol *U : analysis::usedScalars(S))
        if (U == Sym)
          ++Uses;
    });
    return Uses == 1;
  }

  //===--------------------------------------------------------------------===//
  // The footprint-interval dependence test
  //===--------------------------------------------------------------------===//

  /// Interval of `Coeff · sym` over \p Ranges; false when unknown.
  static bool coeffInterval(
      int64_t Coeff, Symbol *Sym,
      const std::map<Symbol *, std::pair<int64_t, int64_t>> &Ranges,
      int64_t &Lo, int64_t &Hi) {
    if (Coeff == 0) {
      Lo = Hi = 0;
      return true;
    }
    auto It = Ranges.find(Sym);
    if (It == Ranges.end())
      return false;
    int64_t A = Coeff * It->second.first;
    int64_t B = Coeff * It->second.second;
    Lo = std::min(A, B);
    Hi = std::max(A, B);
    return true;
  }

  /// Absolute byte interval of one ref's footprint over the whole
  /// iteration space (every index ranged); false when not computable.
  static bool
  absInterval(const SRef &R,
              const std::map<Symbol *, std::pair<int64_t, int64_t>> &Ranges,
              int64_t &Lo, int64_t &Hi) {
    if (!R.M.Addr.Offset.Known || !R.M.Addr.Offset.isConstant())
      return false;
    Lo = R.M.Addr.Offset.C0 + R.ExtLo;
    Hi = R.M.Addr.Offset.C0 + R.ExtHi;
    for (const auto &[Sym, Coeff] : R.M.Addr.IdxCoeffs) {
      int64_t CLo = 0, CHi = 0;
      if (!coeffInterval(Coeff, Sym, Ranges, CLo, CHi))
        return false;
      Lo += CLo;
      Hi += CHi;
    }
    return true;
  }

  /// Can \p A (in iteration k1) and \p B (in iteration k2 != k1) of \p D
  /// ever touch a common byte?  Returns true when provably not.
  ///
  /// Same-base pairs use interval arithmetic on the normalized address
  /// difference Δ = G·m + V (G = index coefficient times step, m = k1-k2,
  /// V the interval of everything else): the footprints are disjoint for
  /// all |m| >= 1 when |G| >= max(Hi*-Vlo, Vhi-Lo*) against the extent
  /// window (Lo*, Hi*).  Note dep::testRefs is NOT reusable here: it
  /// cancels equal coefficients of non-tested indices, which is unsound
  /// across outer-loop iterations where inner indices differ.
  bool pairDisjoint(
      const SRef &A, const SRef &B, DoLoopStmt *D, int64_t Step,
      const std::map<Symbol *, std::pair<int64_t, int64_t>> &Ranges,
      const std::set<Symbol *> &EnclosingIdx, bool TripKnown,
      std::string &Impl) {
    Symbol *Idx = D->getIndexVar();
    bool SameBase = A.M.Addr.Base == B.M.Addr.Base &&
                    A.M.Addr.Base.K != dep::BaseKey::Unknown;
    if (!SameBase) {
      // Different bases: the facade answers (points-to through MemorySSA
      // when selected).  Synthetic refs have no Site for the graph to
      // resolve, so they take the conservative baseline rules.
      dep::AliasContext Ctx;
      Ctx.FortranPointerSemantics = Opts.FortranPointerSemantics;
      Ctx.SafeVectorPragma = D->hasSafeVectorPragma();
      dep::AliasVerdict V;
      if (A.Synthetic || B.Synthetic || !Opts.DepAnalysis) {
        V = dep::reachDefAlias(A.M, B.M, Ctx);
        Impl = "reachdef";
      } else {
        V = Opts.DepAnalysis->alias(A.M, B.M, Ctx);
        Impl = Opts.DepAnalysis->implName();
      }
      return V == dep::AliasVerdict::NoAlias;
    }

    Impl = "footprint";
    int64_t GA = A.M.Addr.coeffOf(Idx) * Step;
    int64_t GB = B.M.Addr.coeffOf(Idx) * Step;

    if (GA != GB) {
      // Unequal strides: fall back to whole-footprint disjointness over
      // the full iteration space (needs every range, including D's).
      int64_t ALo = 0, AHi = 0, BLo = 0, BHi = 0;
      if (!TripKnown || !absInterval(A, Ranges, ALo, AHi) ||
          !absInterval(B, Ranges, BLo, BHi))
        return false;
      return AHi <= BLo || BHi <= ALo;
    }

    // Equal strides: bound V = Off_A - Off_B + enclosing + inner terms.
    scalar::LinExpr Diff = A.M.Addr.Offset.sub(B.M.Addr.Offset);
    if (!Diff.Known || !Diff.isConstant())
      return false;
    int64_t VLo = Diff.C0, VHi = Diff.C0;
    std::set<Symbol *> Syms;
    for (const auto &[S, C] : A.M.Addr.IdxCoeffs)
      Syms.insert(S);
    for (const auto &[S, C] : B.M.Addr.IdxCoeffs)
      Syms.insert(S);
    for (Symbol *S : Syms) {
      if (S == Idx)
        continue;
      int64_t CA = A.M.Addr.coeffOf(S);
      int64_t CB = B.M.Addr.coeffOf(S);
      if (EnclosingIdx.count(S)) {
        // Fixed (same value for both refs) during one execution of D:
        // equal coefficients cancel exactly; otherwise range the
        // difference over the enclosing loop's bounds.
        int64_t Lo = 0, Hi = 0;
        if (!coeffInterval(CA - CB, S, Ranges, Lo, Hi))
          return false;
        VLo += Lo;
        VHi += Hi;
      } else {
        // An inner loop's index takes its values independently in the
        // two iterations: no cancellation, even for the same symbol.
        int64_t Lo = 0, Hi = 0;
        if (!coeffInterval(CA, S, Ranges, Lo, Hi))
          return false;
        VLo += Lo;
        VHi += Hi;
        if (!coeffInterval(-CB, S, Ranges, Lo, Hi))
          return false;
        VLo += Lo;
        VHi += Hi;
      }
    }

    // Footprints overlap iff Δ ∈ (Lo*, Hi*).
    int64_t LoStar = B.ExtLo - A.ExtHi;
    int64_t HiStar = B.ExtHi - A.ExtLo;
    if (GA == 0)
      return VHi <= LoStar || VLo >= HiStar;
    int64_t G = GA > 0 ? GA : -GA;
    return G >= std::max(HiStar - VLo, VHi - LoStar);
  }
};

} // namespace

SpreadStats par::spreadFunction(il::Function &F, const SpreadOptions &Opts) {
  return SpreadDriver(F, Opts).run();
}
