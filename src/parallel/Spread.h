//===----------------------------------------------------------------------===//
///
/// \file
/// Outer-loop multiprocessor spreading (paper Section 9; DESIGN.md §12).
///
/// The paper: "spreading loop iterations among multiple processors can
/// provide significant speedups".  This pass marks outer DO loops
/// `do parallel` — the mark the code generator turns into a
/// PARBEGIN(chunks)/PAREND region that the simulated Titan divides among
/// its processors at BarrierCycles of join cost — when spreading is
///
///   legal:       no loop-carried memory dependence between iterations
///                (a footprint-interval test over normalized addresses,
///                plus the DependenceAnalysis facade for different-base
///                pairs), every assigned scalar privatizable or a
///                recognized reduction, and every callee covered by a
///                [[CallSafetyAnalysis]] summary proving its writes
///                disjoint across iterations;
///
///   profitable:  enough iterations to feed the processors and enough
///                work per trip to amortize the barrier, from a static
///                cost estimate against the TitanMachine model.
///
/// Loops that fail get a `missedParallel` remark carrying the blocking
/// reason — for dependence rejections, the access pair — mirroring the
/// vectorizer's missed-vectorize payloads.  Spreading composes with
/// vectorization: this pass runs first and takes the outermost legal
/// loop; the vectorizer then vectorizes inner loops without adding a
/// nested parallel mark (nested PARBEGIN regions would double-count the
/// speedup in the simulator).
///
//===----------------------------------------------------------------------===//

#ifndef TCC_PARALLEL_SPREAD_H
#define TCC_PARALLEL_SPREAD_H

#include "il/IL.h"

#include <cstdint>

namespace tcc {
namespace dep {
class DependenceAnalysis;
} // namespace dep
namespace remarks {
class RemarkCollector;
} // namespace remarks

namespace par {

class CallSafetyAnalysis;

/// Configuration for the spread pass.  The value fields participate in
/// the compile-cache configFingerprint; the pointers are wired by the
/// pass wrapper per compilation.
struct SpreadOptions {
  /// Effective processor count to spread for.  <= 1 disables the pass.
  int Processors = 1;
  /// Modeled cost of the PAREND join, for the profitability estimate.
  /// Mirrors titan::TitanConfig::BarrierCycles.
  int64_t BarrierCycles = 60;
  /// The `-fortran-pointers` promise: distinct pointer parameters never
  /// overlap (forwarded into the alias context).
  bool FortranPointerSemantics = false;

  remarks::RemarkCollector *Remarks = nullptr;       ///< May be null.
  dep::DependenceAnalysis *DepAnalysis = nullptr;    ///< Required.
  const CallSafetyAnalysis *CallSafety = nullptr;    ///< Required.
};

/// What the pass did to one function (accumulated per module).
struct SpreadStats {
  uint64_t LoopsConsidered = 0;
  uint64_t LoopsSpread = 0;
  uint64_t Reductions = 0;            ///< Reduction scalars recognized.
  uint64_t RejectedDependence = 0;    ///< Loop-carried memory dependence.
  uint64_t RejectedCalls = 0;         ///< Unsafe / unknown callee.
  uint64_t RejectedScalars = 0;       ///< Non-privatizable scalar.
  uint64_t RejectedStructure = 0;     ///< Irregular flow, bad bounds.
  uint64_t RejectedUnprofitable = 0;  ///< Cost model said no.
};

/// Marks spreadable outer loops in \p F `do parallel`.  Once a loop is
/// spread, loops nested inside it are not considered (one parallel
/// region per nest).
SpreadStats spreadFunction(il::Function &F, const SpreadOptions &Opts);

} // namespace par
} // namespace tcc

#endif // TCC_PARALLEL_SPREAD_H
