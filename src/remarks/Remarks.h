//===----------------------------------------------------------------------===//
///
/// \file
/// Optimization telemetry: source-located remarks, per-pass counter
/// groups, IL-delta counters, and per-pass wall-clock timings — the
/// machine-readable record of what the pipeline did to a program and why.
///
/// The paper's evaluation (Sections 6 and 9) is a narrative of exactly
/// this data: which loop vectorized, which did not and for what reason,
/// how many statements each phase removed.  This module makes that record
/// first-class so benches, tests, and external tools (ablation sweeps,
/// learned pass ordering à la NeuroVectorizer) can consume it as JSON
/// instead of scraping stdout.
///
/// Layering: depends only on tcc_support.  Optimization modules may emit
/// remarks through a RemarkCollector*; the pipeline subsystem assembles
/// the full CompilationTelemetry.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_REMARKS_REMARKS_H
#define TCC_REMARKS_REMARKS_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace tcc {
namespace remarks {

//===----------------------------------------------------------------------===//
// Remarks
//===----------------------------------------------------------------------===//

/// What a remark reports, following the opt-remark taxonomy: a transform
/// that fired, a transform that was refused (with the reason), or neutral
/// analysis information.
enum class RemarkKind : uint8_t { Applied, Missed, Note };

const char *remarkKindName(RemarkKind K);

/// One source-located observation from a pass, e.g.
///   applied  vectorize 9:7   "loop vectorized, VL=32"
///   missed   vectorize 12:3  "not vectorized: cyclic dependence on 's'"
struct Remark {
  RemarkKind Kind = RemarkKind::Note;
  std::string Pass;
  SourceLoc Loc; ///< May be invalid for program-level remarks.
  std::string Message;
  /// Structured payload serialized as an "args" object in the JSON —
  /// machine-readable detail beyond the message (e.g. the blocking
  /// access pair of an aliasing miss).  Ordered; keys should be unique.
  std::vector<std::pair<std::string, std::string>> Args;

  /// The value for \p Key; empty string when absent.
  const std::string &arg(const std::string &Key) const;

  /// Renders "vectorize:12:3: missed: not vectorized: ...".
  std::string str() const;
};

/// Accumulates remarks across a compilation.  Cheap to pass by pointer;
/// every emission site tolerates a null collector.
class RemarkCollector {
public:
  void applied(std::string Pass, SourceLoc Loc, std::string Message) {
    add(RemarkKind::Applied, std::move(Pass), Loc, std::move(Message));
  }
  void missed(std::string Pass, SourceLoc Loc, std::string Message) {
    add(RemarkKind::Missed, std::move(Pass), Loc, std::move(Message));
  }
  /// Missed remark with a structured args payload.
  void missed(std::string Pass, SourceLoc Loc, std::string Message,
              std::vector<std::pair<std::string, std::string>> Args) {
    add(RemarkKind::Missed, std::move(Pass), Loc, std::move(Message),
        std::move(Args));
  }
  void note(std::string Pass, SourceLoc Loc, std::string Message) {
    add(RemarkKind::Note, std::move(Pass), Loc, std::move(Message));
  }

  const std::vector<Remark> &remarks() const { return All; }
  bool empty() const { return All.empty(); }

  /// Remarks emitted by one pass (for tests and filtered output).
  std::vector<Remark> forPass(const std::string &Pass) const;

private:
  void add(RemarkKind K, std::string Pass, SourceLoc Loc,
           std::string Message,
           std::vector<std::pair<std::string, std::string>> Args = {}) {
    All.push_back({K, std::move(Pass), Loc, std::move(Message),
                   std::move(Args)});
  }
  std::vector<Remark> All;
};

//===----------------------------------------------------------------------===//
// Per-pass counters
//===----------------------------------------------------------------------===//

/// A named group of counters a pass reports after running — the generic
/// face of the typed per-module Stats structs.  Counter order is the
/// emission order (stable across runs).
struct StatGroup {
  std::string Pass;
  std::vector<std::pair<std::string, uint64_t>> Counters;

  StatGroup() = default;
  explicit StatGroup(std::string Pass) : Pass(std::move(Pass)) {}

  /// Appends (or overwrites, if present) a counter.
  void set(const std::string &Name, uint64_t Value);
  /// 0 when absent.
  uint64_t get(const std::string &Name) const;
};

//===----------------------------------------------------------------------===//
// IL shape counters and per-pass records
//===----------------------------------------------------------------------===//

/// Structural counts of an IL program, taken before and after each pass so
/// the per-pass delta is explicit in the telemetry.
struct ILCounts {
  uint64_t Functions = 0;
  uint64_t Stmts = 0;
  uint64_t Assigns = 0;
  uint64_t Calls = 0;
  uint64_t WhileLoops = 0;
  uint64_t DoLoops = 0;
  uint64_t ParallelLoops = 0;
  uint64_t VectorAssigns = 0; ///< Assigns containing a triplet.
  uint64_t Symbols = 0;
};

/// Everything recorded about one executed pass.
struct PassRecord {
  std::string Pass;
  double Millis = 0.0;
  ILCounts Before;
  ILCounts After;
  StatGroup Stats;
  bool Verified = false;      ///< ILVerifier ran (and passed) after this pass.
  bool PreservedUseDef = false;
  unsigned UseDefBuilt = 0;   ///< Analyses rebuilt during this pass.
  unsigned UseDefReused = 0;  ///< Analyses served from cache.

  int64_t stmtsDelta() const {
    return static_cast<int64_t>(After.Stmts) -
           static_cast<int64_t>(Before.Stmts);
  }
};

/// Everything recorded about one function's trip through the pipeline
/// under function-at-a-time scheduling: its content hash (the compile-
/// cache key), wall-clock time across all function passes, the IL-delta,
/// and whether the optimized body came from the cache instead of being
/// recompiled.
struct FunctionRecord {
  std::string Function;
  std::string Hash; ///< Content hash: serialized IL + pipeline fingerprint.
  double Millis = 0.0;
  ILCounts Before;
  ILCounts After;
  bool CacheHit = false; ///< Body restored from the .tcc-cache manifest.
};

/// One failure the pass sandbox contained: the pass kept running the rest
/// of the pipeline, this function simply shipped without that pass.
struct FaultRecord {
  std::string Pass;
  std::string Function;
  std::string Kind; ///< "exception", "verifier", "stmt-budget", "time-budget".
  std::string Description;
  std::string ReproFile; ///< Replayable bundle path; empty if none written.
};

/// The full telemetry of one compilation: the executed pipeline with
/// per-pass records, per-function records (when scheduled function-at-a-
/// time), contained faults, plus all remarks.
struct CompilationTelemetry {
  std::vector<PassRecord> Passes;
  std::vector<FunctionRecord> Functions;
  std::vector<FaultRecord> Faults;
  std::vector<Remark> Remarks;
  double TotalMillis = 0.0;

  const PassRecord *find(const std::string &Pass) const;
  const FunctionRecord *findFunction(const std::string &Function) const;
  const FaultRecord *findFault(const std::string &Pass,
                               const std::string &Function) const;

  /// Cache hits among the per-function records.
  uint64_t cacheHits() const;

  /// Serializes the whole record as a JSON document.
  void writeJSON(std::ostream &OS) const;
};

} // namespace remarks
} // namespace tcc

#endif // TCC_REMARKS_REMARKS_H
