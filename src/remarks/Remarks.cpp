#include "remarks/Remarks.h"

#include "support/JSONWriter.h"

using namespace tcc;
using namespace tcc::remarks;

const char *remarks::remarkKindName(RemarkKind K) {
  switch (K) {
  case RemarkKind::Applied:
    return "applied";
  case RemarkKind::Missed:
    return "missed";
  case RemarkKind::Note:
    return "note";
  }
  return "note";
}

const std::string &Remark::arg(const std::string &Key) const {
  static const std::string Empty;
  for (const auto &[K, V] : Args)
    if (K == Key)
      return V;
  return Empty;
}

std::string Remark::str() const {
  std::string Out = Pass;
  if (Loc.isValid())
    Out += ":" + std::to_string(Loc.Line) + ":" + std::to_string(Loc.Col);
  Out += ": ";
  Out += remarkKindName(Kind);
  Out += ": ";
  Out += Message;
  return Out;
}

std::vector<Remark> RemarkCollector::forPass(const std::string &Pass) const {
  std::vector<Remark> Out;
  for (const Remark &R : All)
    if (R.Pass == Pass)
      Out.push_back(R);
  return Out;
}

void StatGroup::set(const std::string &Name, uint64_t Value) {
  for (auto &[N, V] : Counters)
    if (N == Name) {
      V = Value;
      return;
    }
  Counters.emplace_back(Name, Value);
}

uint64_t StatGroup::get(const std::string &Name) const {
  for (const auto &[N, V] : Counters)
    if (N == Name)
      return V;
  return 0;
}

const PassRecord *CompilationTelemetry::find(const std::string &Pass) const {
  for (const PassRecord &R : Passes)
    if (R.Pass == Pass)
      return &R;
  return nullptr;
}

const FunctionRecord *
CompilationTelemetry::findFunction(const std::string &Function) const {
  for (const FunctionRecord &R : Functions)
    if (R.Function == Function)
      return &R;
  return nullptr;
}

const FaultRecord *
CompilationTelemetry::findFault(const std::string &Pass,
                                const std::string &Function) const {
  for (const FaultRecord &R : Faults)
    if (R.Pass == Pass && R.Function == Function)
      return &R;
  return nullptr;
}

uint64_t CompilationTelemetry::cacheHits() const {
  uint64_t Hits = 0;
  for (const FunctionRecord &R : Functions)
    if (R.CacheHit)
      ++Hits;
  return Hits;
}

namespace {

void writeCounts(json::JSONWriter &W, const char *Key, const ILCounts &C) {
  W.key(Key).beginObject();
  W.keyValue("functions", C.Functions);
  W.keyValue("stmts", C.Stmts);
  W.keyValue("assigns", C.Assigns);
  W.keyValue("calls", C.Calls);
  W.keyValue("whileLoops", C.WhileLoops);
  W.keyValue("doLoops", C.DoLoops);
  W.keyValue("parallelLoops", C.ParallelLoops);
  W.keyValue("vectorAssigns", C.VectorAssigns);
  W.keyValue("symbols", C.Symbols);
  W.endObject();
}

} // namespace

void CompilationTelemetry::writeJSON(std::ostream &OS) const {
  json::JSONWriter W(OS);
  W.beginObject();
  W.keyValue("totalMillis", TotalMillis);

  W.key("passes").beginArray();
  for (const PassRecord &R : Passes) {
    W.beginObject();
    W.keyValue("name", R.Pass);
    W.keyValue("millis", R.Millis);
    writeCounts(W, "before", R.Before);
    writeCounts(W, "after", R.After);
    W.key("delta").beginObject();
    W.keyValue("stmts", R.stmtsDelta());
    W.keyValue("doLoops", static_cast<int64_t>(R.After.DoLoops) -
                              static_cast<int64_t>(R.Before.DoLoops));
    W.keyValue("whileLoops",
               static_cast<int64_t>(R.After.WhileLoops) -
                   static_cast<int64_t>(R.Before.WhileLoops));
    W.keyValue("vectorAssigns",
               static_cast<int64_t>(R.After.VectorAssigns) -
                   static_cast<int64_t>(R.Before.VectorAssigns));
    W.keyValue("parallelLoops",
               static_cast<int64_t>(R.After.ParallelLoops) -
                   static_cast<int64_t>(R.Before.ParallelLoops));
    W.endObject();
    W.key("counters").beginObject();
    for (const auto &[Name, Value] : R.Stats.Counters)
      W.keyValue(Name, Value);
    W.endObject();
    W.keyValue("verified", R.Verified);
    W.keyValue("useDefBuilt", R.UseDefBuilt);
    W.keyValue("useDefReused", R.UseDefReused);
    W.endObject();
  }
  W.endArray();

  W.key("functions").beginArray();
  for (const FunctionRecord &R : Functions) {
    W.beginObject();
    W.keyValue("name", R.Function);
    W.keyValue("hash", R.Hash);
    W.keyValue("millis", R.Millis);
    W.keyValue("cacheHit", R.CacheHit);
    writeCounts(W, "before", R.Before);
    writeCounts(W, "after", R.After);
    W.endObject();
  }
  W.endArray();

  // Always present, usually empty: consumers can assert "no faults" by
  // reading the array instead of special-casing a missing key.
  W.key("faults").beginArray();
  for (const FaultRecord &R : Faults) {
    W.beginObject();
    W.keyValue("pass", R.Pass);
    W.keyValue("function", R.Function);
    W.keyValue("kind", R.Kind);
    W.keyValue("description", R.Description);
    W.keyValue("reproFile", R.ReproFile);
    W.endObject();
  }
  W.endArray();

  W.key("remarks").beginArray();
  for (const Remark &R : Remarks) {
    W.beginObject();
    W.keyValue("pass", R.Pass);
    W.keyValue("kind", remarkKindName(R.Kind));
    W.keyValue("line", R.Loc.Line);
    W.keyValue("col", R.Loc.Col);
    W.keyValue("message", R.Message);
    if (!R.Args.empty()) {
      W.key("args").beginObject();
      for (const auto &[Key, Value] : R.Args)
        W.keyValue(Key, Value);
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();

  W.endObject();
  OS << '\n';
}
