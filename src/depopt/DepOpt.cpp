#include "depopt/DepOpt.h"

#include "dependence/DependenceGraph.h"
#include "scalar/Fold.h"
#include "scalar/LinearValues.h"

#include <functional>
#include <map>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::depopt;
using tcc::dep::AddrForm;
using tcc::dep::BaseKey;
using tcc::dep::MemRef;
using tcc::scalar::LinExpr;

namespace {

bool isNormalizedLoop(Function &F, DoLoopStmt *D) {
  auto IsConst = [](Expr *E, int64_t V) {
    return E->getKind() == Expr::ConstIntKind &&
           static_cast<ConstIntExpr *>(E)->getValue() == V;
  };
  return IsConst(D->getInit(), 0) && IsConst(D->getStep(), 1);
}

bool isInnermostSerial(DoLoopStmt *D) {
  if (D->isParallel())
    return false;
  bool Ok = true;
  forEachStmt(D->getBody(), [&Ok](const Stmt *S) {
    if (S->getKind() == Stmt::DoLoopKind || S->getKind() == Stmt::WhileKind)
      Ok = false;
    // Vector statements are already optimal.
    if (S->getKind() == Stmt::AssignKind) {
      const auto *A = static_cast<const AssignStmt *>(S);
      if (exprHasTriplet(A->getLHS()) || exprHasTriplet(A->getRHS()))
        Ok = false;
    }
  });
  return Ok;
}

void collectLoops(Block &B, std::vector<std::pair<DoLoopStmt *, Block *>>
                               &Out) {
  for (Stmt *S : B.Stmts) {
    switch (S->getKind()) {
    case Stmt::IfKind: {
      auto *If = static_cast<IfStmt *>(S);
      collectLoops(If->getThen(), Out);
      collectLoops(If->getElse(), Out);
      break;
    }
    case Stmt::WhileKind:
      collectLoops(static_cast<WhileStmt *>(S)->getBody(), Out);
      break;
    case Stmt::DoLoopKind: {
      auto *D = static_cast<DoLoopStmt *>(S);
      collectLoops(D->getBody(), Out);
      Out.push_back({D, &B});
      break;
    }
    default:
      break;
    }
  }
}

/// Visits every DO loop exactly once (inner loops first), resilient to
/// the callback inserting statements around the loop in its parent block.
void visitLoops(Function &F, Block &Root,
                const std::function<void(DoLoopStmt *, Block &, size_t)>
                    &Fn) {
  std::vector<std::pair<DoLoopStmt *, Block *>> Loops;
  collectLoops(Root, Loops);
  for (auto &[D, Parent] : Loops) {
    auto It = std::find(Parent->Stmts.begin(), Parent->Stmts.end(), D);
    if (It == Parent->Stmts.end())
      continue; // removed by an earlier callback
    Fn(D, *Parent, static_cast<size_t>(It - Parent->Stmts.begin()));
  }
  (void)F;
}

/// Structural key for address-form grouping: base + invariant offset +
/// index coefficient.
struct AddrKey {
  BaseKey Base;
  LinExpr Offset;
  int64_t Coeff;

  bool operator<(const AddrKey &RHS) const {
    if (Base.K != RHS.Base.K)
      return Base.K < RHS.Base.K;
    // Stable-id order: plan iteration emits the preheader inits and
    // per-iteration bumps, so pointer order would leak into the IL.
    if (Base.Sym != RHS.Base.Sym)
      return SymbolOrder()(Base.Sym, RHS.Base.Sym);
    if (Coeff != RHS.Coeff)
      return Coeff < RHS.Coeff;
    if (Offset.C0 != RHS.Offset.C0)
      return Offset.C0 < RHS.Offset.C0;
    return Offset.Coeffs < RHS.Offset.Coeffs;
  }
};

/// Invokes \p Fn on every Deref/Index slot that is an actual memory
/// access (not the lvalue of an AddrOf — `&x[1]` computes an address, it
/// does not load).  Subscripts and pointer expressions inside are visited
/// first.
void forEachMemAccessSlot(Expr *&Slot,
                          const std::function<void(Expr *&)> &Fn) {
  switch (Slot->getKind()) {
  case Expr::DerefKind:
    forEachMemAccessSlot(static_cast<DerefExpr *>(Slot)->addrSlot(), Fn);
    Fn(Slot);
    return;
  case Expr::IndexKind: {
    auto *I = static_cast<IndexExpr *>(Slot);
    for (Expr *&Sub : I->subscriptSlots())
      forEachMemAccessSlot(Sub, Fn);
    Fn(Slot);
    return;
  }
  case Expr::AddrOfKind: {
    Expr *&LV = static_cast<AddrOfExpr *>(Slot)->lvalueSlot();
    if (LV->getKind() == Expr::IndexKind) {
      for (Expr *&Sub : static_cast<IndexExpr *>(LV)->subscriptSlots())
        forEachMemAccessSlot(Sub, Fn);
    } else if (LV->getKind() == Expr::DerefKind) {
      forEachMemAccessSlot(static_cast<DerefExpr *>(LV)->addrSlot(), Fn);
    }
    return;
  }
  case Expr::BinaryKind: {
    auto *B = static_cast<BinaryExpr *>(Slot);
    forEachMemAccessSlot(B->lhsSlot(), Fn);
    forEachMemAccessSlot(B->rhsSlot(), Fn);
    return;
  }
  case Expr::UnaryKind:
    forEachMemAccessSlot(static_cast<UnaryExpr *>(Slot)->operandSlot(), Fn);
    return;
  case Expr::CastKind:
    forEachMemAccessSlot(static_cast<CastExpr *>(Slot)->operandSlot(), Fn);
    return;
  case Expr::TripletKind: {
    auto *T = static_cast<TripletExpr *>(Slot);
    forEachMemAccessSlot(T->loSlot(), Fn);
    forEachMemAccessSlot(T->hiSlot(), Fn);
    forEachMemAccessSlot(T->strideSlot(), Fn);
    return;
  }
  default:
    return;
  }
}

/// Rebuilds the byte-address expression of an AddrForm at a given index
/// value expression (or nullptr for "just base+offset").
Expr *materializeAddress(Function &F, const AddrForm &Addr, Symbol *Idx,
                         Expr *IdxValue, const Type *PtrTy) {
  TypeContext &Types = F.getProgram().getTypes();
  const Type *IntTy = Types.getIntType();

  Expr *Base;
  if (Addr.Base.K == BaseKey::Array) {
    const Type *ArrTy = Addr.Base.Sym->getType();
    const Type *ElemPtr =
        ArrTy->isArray() ? Types.getPointerType(ArrTy->getElementType())
                         : Types.getPointerType(ArrTy);
    Base = F.create<AddrOfExpr>(ElemPtr, F.makeVarRef(Addr.Base.Sym));
  } else {
    Base = F.makeVarRef(Addr.Base.Sym);
  }
  Expr *Out = Base;
  if (!Addr.Offset.isZero()) {
    Expr *Off = scalar::linToExpr(F, Addr.Offset, IntTy);
    Out = F.makeBinary(OpCode::Add, Out, Off, PtrTy);
  }
  // Other (outer) index terms stay symbolic.
  for (const auto &[Sym, Coeff] : Addr.IdxCoeffs) {
    if (Sym == Idx)
      continue;
    Expr *Term = F.makeBinary(OpCode::Mul, F.makeIntConst(IntTy, Coeff),
                              F.makeVarRef(Sym), IntTy);
    Out = F.makeBinary(OpCode::Add, Out, Term, PtrTy);
  }
  int64_t C = Addr.coeffOf(Idx);
  if (C != 0 && IdxValue) {
    Expr *Term = F.makeBinary(OpCode::Mul, F.makeIntConst(IntTy, C),
                              IdxValue, IntTy);
    Out = F.makeBinary(OpCode::Add, Out, Term, PtrTy);
  }
  return scalar::foldExpr(F, Out);
}

} // namespace

//===----------------------------------------------------------------------===//
// Scalar replacement
//===----------------------------------------------------------------------===//

namespace tcc {
namespace depopt {
bool applyOneReplacement(Function &F, DoLoopStmt *D, Block &Parent,
                         size_t Pos, AssignStmt *StoreStmt,
                         AssignStmt *LoadStmt, const MemRef &Store,
                         const MemRef &Load, ScalarReplaceStats &Stats);
} // namespace depopt
} // namespace tcc

ScalarReplaceStats
depopt::applyScalarReplacement(Function &F,
                               const dep::DependenceAnalysis *DA) {
  ScalarReplaceStats Stats;

  visitLoops(F, F.getBody(), [&](DoLoopStmt *D, Block &Parent, size_t Pos) {
    if (!isNormalizedLoop(F, D) || !isInnermostSerial(D))
      return;
    dep::DepGraphOptions GOpts;
    GOpts.Analysis = DA;
    dep::LoopDependenceGraph G(F, D, GOpts);
    Symbol *Idx = D->getIndexVar();

    // Find a store ref and a load ref on the same base at distance one.
    for (unsigned SN = 0; SN < G.statements().size(); ++SN) {
      for (const MemRef &Store : G.refsOf(SN)) {
        if (!Store.IsWrite || !Store.Addr.Valid)
          continue;
        int64_t C = Store.Addr.coeffOf(Idx);
        if (C == 0)
          continue;
        for (unsigned LN = 0; LN < G.statements().size(); ++LN) {
          for (const MemRef &Load : G.refsOf(LN)) {
            if (Load.IsWrite || !Load.Addr.Valid)
              continue;
            if (!(Load.Addr.Base == Store.Addr.Base))
              continue;
            if (Load.Addr.coeffOf(Idx) != C)
              continue;
            LinExpr Diff = Store.Addr.Offset.sub(Load.Addr.Offset);
            if (!Diff.isConstant() || Diff.C0 != C)
              continue; // not distance one
            if (Load.Size != Store.Size)
              continue;
            // Both statements must be top-level assigns, store not after
            // load... the load reads last iteration's store, so any
            // relative position works; require distinct or same stmt.
            Stmt *StoreStmt = G.statements()[SN];
            Stmt *LoadStmt = G.statements()[LN];
            if (StoreStmt->getKind() != Stmt::AssignKind ||
                LoadStmt->getKind() != Stmt::AssignKind)
              continue;
            // Exactly one store to this base in the loop (avoid clobber
            // hazards).
            unsigned StoresToBase = 0;
            for (unsigned K = 0; K < G.statements().size(); ++K)
              for (const MemRef &R : G.refsOf(K))
                if (R.IsWrite && R.Addr.Valid &&
                    R.Addr.Base == Store.Addr.Base)
                  ++StoresToBase;
            if (StoresToBase != 1)
              continue;

            if (applyOneReplacement(F, D, Parent, Pos,
                                    static_cast<AssignStmt *>(StoreStmt),
                                    static_cast<AssignStmt *>(LoadStmt),
                                    Store, Load, Stats))
              return; // one replacement per loop pass
          }
        }
      }
    }
  });
  return Stats;
}

namespace {

/// Replaces sub-expressions in \p Slot that are memory refs matching
/// \p Target's address form with \p Replacement.  Matching is structural
/// on the normalized form.
unsigned replaceMatchingRefs(Function &F, Expr *&Slot,
                             const dep::NestContext &Nest,
                             const AddrForm &Target, int64_t Size,
                             const std::function<Expr *()> &Replacement) {
  unsigned Count = 0;
  forEachMemAccessSlot(Slot, [&](Expr *&Sub) {
    if (Sub->getKind() != Expr::DerefKind && Sub->getKind() != Expr::IndexKind)
      return;
    if (static_cast<int64_t>(Sub->getType()->getSizeInBytes()) != Size)
      return;
    AddrForm A;
    if (Sub->getKind() == Expr::DerefKind)
      A = dep::normalizeAddress(static_cast<DerefExpr *>(Sub)->getAddr(),
                                Nest);
    else {
      // Recompute through the shared collector for Index refs.
      std::vector<MemRef> Refs;
      // Build a tiny fake statement-free normalization via normalizeAddress
      // of a synthesized address: reuse collectMemRefs on a wrapper is
      // heavyweight; instead use the Index path in MemRef via an AddrOf.
      const Type *PtrTy = F.getProgram().getTypes().getPointerType(
          Sub->getType());
      Expr *AddrExpr = F.create<AddrOfExpr>(PtrTy, Sub);
      A = dep::normalizeAddress(AddrExpr, Nest);
    }
    if (!A.Valid || !(A.Base == Target.Base))
      return;
    if (A.IdxCoeffs != Target.IdxCoeffs)
      return;
    LinExpr Diff = A.Offset.sub(Target.Offset);
    if (!Diff.isZero())
      return;
    Sub = Replacement();
    ++Count;
  });
  return Count;
}

} // namespace

namespace tcc {
namespace depopt {

/// Applies one distance-1 scalar replacement in \p D.
bool applyOneReplacement(Function &F, DoLoopStmt *D, Block &Parent,
                         size_t Pos, AssignStmt *StoreStmt,
                         AssignStmt *LoadStmt, const MemRef &Store,
                         const MemRef &Load, ScalarReplaceStats &Stats) {
  TypeContext &Types = F.getProgram().getTypes();
  dep::NestContext Nest = dep::buildNestContext(F, D);

  // Element type from the store target.
  const Type *ValTy = StoreStmt->getLHS()->getType();
  Symbol *Reg = F.createTemp(ValTy, "f_reg");

  // Preheader: f_reg = load-ref at iteration 0 (i.e. index = 0).
  const Type *PtrTy = Types.getPointerType(ValTy);
  Expr *PreAddr = materializeAddress(F, Load.Addr, D->getIndexVar(),
                                     F.makeIntConst(Types.getIntType(), 0),
                                     PtrTy);
  Stmt *Preload = F.create<AssignStmt>(
      D->getLoc(), F.makeVarRef(Reg),
      F.create<DerefExpr>(ValTy, PreAddr));
  Parent.Stmts.insert(Parent.Stmts.begin() + static_cast<long>(Pos),
                      Preload);

  // Replace matching loads with the register.
  unsigned Replaced = 0;
  forEachStmt(D->getBody(), [&](Stmt *S) {
    if (S->getKind() != Stmt::AssignKind)
      return;
    auto *A = static_cast<AssignStmt *>(S);
    Replaced += replaceMatchingRefs(F, A->rhsSlot(), Nest, Load.Addr,
                                    Load.Size,
                                    [&]() { return F.makeVarRef(Reg); });
    if (A->getLHS()->getKind() != Expr::VarRefKind)
      Replaced += replaceMatchingRefs(F, A->lhsSlot(), Nest, Load.Addr,
                                      Load.Size,
                                      [&]() { return F.makeVarRef(Reg); });
  });
  if (!Replaced) {
    // Nothing matched (shapes differed); drop the preload again.
    Parent.Stmts.erase(Parent.Stmts.begin() + static_cast<long>(Pos));
    return false;
  }

  // Split the store: t = RHS; x[i] = f_reg after f_reg = RHS.
  Block &Body = D->getBody();
  for (size_t I = 0; I < Body.Stmts.size(); ++I) {
    if (Body.Stmts[I] != StoreStmt)
      continue;
    auto *NewCompute = F.create<AssignStmt>(
        StoreStmt->getLoc(), F.makeVarRef(Reg), StoreStmt->getRHS());
    auto *NewStore = F.create<AssignStmt>(StoreStmt->getLoc(),
                                          StoreStmt->getLHS(),
                                          F.makeVarRef(Reg));
    NewCompute->setLoadsConflictFree(StoreStmt->loadsConflictFree());
    NewStore->setLoadsConflictFree(StoreStmt->loadsConflictFree());
    Body.Stmts[I] = NewCompute;
    Body.Stmts.insert(Body.Stmts.begin() + static_cast<long>(I) + 1,
                      NewStore);
    break;
  }

  ++Stats.LoopsApplied;
  Stats.LoadsEliminated += Replaced;
  return true;
}

} // namespace depopt
} // namespace tcc

//===----------------------------------------------------------------------===//
// Strength reduction
//===----------------------------------------------------------------------===//

StrengthReduceStats depopt::applyStrengthReduction(Function &F) {
  StrengthReduceStats Stats;
  TypeContext &Types = F.getProgram().getTypes();
  const Type *IntTy = Types.getIntType();

  visitLoops(F, F.getBody(), [&](DoLoopStmt *D, Block &Parent, size_t Pos) {
    if (!isNormalizedLoop(F, D) || !isInnermostSerial(D))
      return;
    dep::NestContext Nest = dep::buildNestContext(F, D);
    Symbol *Idx = D->getIndexVar();

    // Plan: collect every rewritable memory reference slot.
    struct Plan {
      Symbol *Temp = nullptr;
      AddrForm Addr;
      int64_t Coeff = 0;
      const Type *ElemTy = nullptr;
      unsigned Count = 0;
    };
    std::map<AddrKey, Plan> Plans;
    bool Applied = false;

    auto RewriteSlot = [&](Expr *&Slot) {
      forEachMemAccessSlot(Slot, [&](Expr *&Sub) {
        AddrForm A;
        const Type *ElemTy = Sub->getType();
        if (Sub->getKind() == Expr::DerefKind) {
          A = dep::normalizeAddress(static_cast<DerefExpr *>(Sub)->getAddr(),
                                    Nest);
        } else if (Sub->getKind() == Expr::IndexKind) {
          const Type *PtrTy = Types.getPointerType(ElemTy);
          Expr *AddrExpr = F.create<AddrOfExpr>(PtrTy, Sub);
          A = dep::normalizeAddress(AddrExpr, Nest);
        } else {
          return;
        }
        if (!A.Valid || !ElemTy->isScalar())
          return;
        AddrKey Key{A.Base, A.Offset, A.coeffOf(Idx)};
        auto It = Plans.find(Key);
        if (It == Plans.end()) {
          Plan P;
          P.Addr = A;
          P.Coeff = A.coeffOf(Idx);
          P.ElemTy = ElemTy;
          P.Temp = F.createTemp(Types.getPointerType(ElemTy), "temp_p");
          It = Plans.emplace(Key, P).first;
          ++Stats.AddressTemps;
          if (P.Coeff == 0)
            ++Stats.InvariantsHoisted;
        } else {
          ++Stats.SharedTemps;
        }
        Sub = F.create<DerefExpr>(ElemTy, F.makeVarRef(It->second.Temp));
        ++It->second.Count;
        ++Stats.RefsRewritten;
        Applied = true;
      });
    };

    forEachStmt(D->getBody(), [&](Stmt *S) {
      if (S->getKind() != Stmt::AssignKind)
        return;
      auto *A = static_cast<AssignStmt *>(S);
      RewriteSlot(A->rhsSlot());
      if (A->getLHS()->getKind() != Expr::VarRefKind)
        RewriteSlot(A->lhsSlot());
    });

    if (!Applied)
      return;
    ++Stats.LoopsApplied;

    // Preheader initializations and per-iteration bumps.
    size_t Insert = Pos;
    for (auto &[Key, P] : Plans) {
      const Type *PtrTy = Types.getPointerType(P.ElemTy);
      Expr *Init = materializeAddress(F, P.Addr, Idx,
                                      F.makeIntConst(IntTy, 0), PtrTy);
      Parent.Stmts.insert(Parent.Stmts.begin() + static_cast<long>(Insert++),
                          F.create<AssignStmt>(
                              D->getLoc(), F.makeVarRef(P.Temp), Init));
      if (P.Coeff != 0) {
        D->getBody().Stmts.push_back(F.create<AssignStmt>(
            D->getLoc(), F.makeVarRef(P.Temp),
            F.makeBinary(OpCode::Add, F.makeVarRef(P.Temp),
                         F.makeIntConst(IntTy, P.Coeff), PtrTy)));
      }
    }
  });
  return Stats;
}
