//===----------------------------------------------------------------------===//
///
/// \file
/// Dependence-driven optimizations for non-vector code (paper Section 6).
///
/// "There are probably far more C programs that do not vectorize than
/// do"; the dependence graph still pays for itself on them:
///
///  - Scalar replacement: a loop-carried flow dependence with constant
///    distance 1 (the backsolve recurrence `p[i] = z[i]*(y[i]-p[i-1])`)
///    means the loaded value is exactly the value stored one iteration
///    ago, so it can live in an FP register, eliminating the load and —
///    crucially — the store→load serialization that blocks instruction
///    overlap.
///
///  - Strength reduction off the dependence graph: address computations
///    `base + c·i` become pointer temporaries bumped by `c` each
///    iteration (removing the integer multiplies), loop-invariant
///    addresses hoist out, and references with identical address forms
///    share one temporary (the combined strength-reduction /
///    invariant-removal / CSE the paper describes).  This also undoes the
///    "deoptimization" induction-variable substitution inflicts on loops
///    that fail to vectorize.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_DEPOPT_DEPOPT_H
#define TCC_DEPOPT_DEPOPT_H

#include "il/IL.h"

namespace tcc {
namespace dep {
class DependenceAnalysis;
} // namespace dep
namespace depopt {

struct ScalarReplaceStats {
  unsigned LoopsApplied = 0;
  unsigned LoadsEliminated = 0;
};

struct StrengthReduceStats {
  unsigned LoopsApplied = 0;
  unsigned AddressTemps = 0;
  unsigned RefsRewritten = 0;
  unsigned InvariantsHoisted = 0; ///< coeff-0 address computations hoisted.
  unsigned SharedTemps = 0;       ///< CSE hits: refs reusing a temp.
};

/// Replaces distance-1 loop-carried loads with register temporaries in
/// serial innermost DO loops.  Memory disambiguation for different-base
/// pairs goes through \p DA when given (must be prepared for \p F);
/// null uses the dependence graph's reachdef baseline.
ScalarReplaceStats
applyScalarReplacement(il::Function &F,
                       const dep::DependenceAnalysis *DA = nullptr);

/// Strength-reduces address arithmetic in serial innermost DO loops.
StrengthReduceStats applyStrengthReduction(il::Function &F);

} // namespace depopt
} // namespace tcc

#endif // TCC_DEPOPT_DEPOPT_H
