//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle: one generated program, compiled at -O0 and
/// under N sampled pass pipelines, every variant run on the Titan
/// simulator, all global memory compared word-for-word.
///
/// The machine's contract ("functional execution is sequential and
/// deterministic regardless of the timing options") plus the generator's
/// exactness discipline make -O0 memory the unique admissible answer, so
/// any variant that produces different bytes is a miscompile by
/// definition.  The single sanctioned exception: a float word may differ
/// between -0.0 and +0.0 (constant folding normalizes the sign of zero,
/// and the two are numerically equal); generated integers are masked far
/// below INT_MIN so the exemption cannot hide an integer difference.  Contained sandbox faults and verifier rejections are
/// divergences in their own right even when the rollback keeps memory
/// identical — a pass that had to be quarantined on generated input is a
/// bug worth a bundle.
///
/// Classification, most severe first:
///   OutputDivergence  variant ran but global memory differs from -O0
///   VerifierFault     a sandboxed pass was rejected by the ILVerifier
///   Quarantine        a sandboxed pass was contained for any other kind
///   CompileError      the variant failed to compile (the -O0 build works)
///   RunError          the variant compiled but its run failed or tripped
///                     the instruction cap
///   Ok                byte-identical memory, no faults
///
//===----------------------------------------------------------------------===//

#ifndef TCC_FUZZ_ORACLE_H
#define TCC_FUZZ_ORACLE_H

#include "driver/Compiler.h"
#include "fuzz/Generator.h"

#include <memory>
#include <string>
#include <vector>

namespace tcc {
namespace fuzz {

enum class DivergenceClass {
  Ok,
  RunError,
  CompileError,
  Quarantine,
  VerifierFault,
  OutputDivergence,
};

/// Stable class names ("ok", "run-error", "compile-error", "quarantine",
/// "verifier", "output-divergence") — the vocabulary used in bundles,
/// BENCH_fuzz.json, and -replay= output.
const char *divergenceClassName(DivergenceClass C);

/// Parses a class name; Ok on unknown input (callers validate separately).
DivergenceClass divergenceClassFromName(const std::string &Name);

/// How the oracle compiles and samples variants.
struct OracleOptions {
  /// Optimized variants per program.  Variant 0 is always the full
  /// default pipeline; the rest are seeded samples.
  unsigned Variants = 5;

  /// Sample arbitrary pass permutations instead of order-preserving
  /// subsequences of the registered pipeline.  Off by default: the
  /// registered order is the one the pipeline promises to be sound
  /// under, so CI campaigns stay subsequence-only and wild orders are
  /// an explicit exploration mode.
  bool WildOrders = false;

  /// Seed for variant sampling (mixed with nothing else — the campaign
  /// passes the program seed so program and variants pair up stably).
  uint64_t SampleSeed = 0;

  /// Processor-differential mode: every sampled spec additionally runs
  /// as `@P4:<spec>` — the same pass list with outer-loop spreading and
  /// the vectorizer's parallel strip marks armed at four processors —
  /// plus the full `parallel(4)` pipeline as its own variant.  The
  /// machine contract makes processor count timing-only, so any memory
  /// difference against the -O0 reference is a spread or parallel-
  /// codegen miscompile.  The `@P<k>:` prefix flows through bundles,
  /// replay, and bisection unchanged.
  bool PDifferential = false;

  /// Forwarded into every optimized compile (-fault-inject= / -repro-dir=
  /// semantics); the -O0 reference never takes injection.
  std::string FaultInject;
  std::string ReproDir;

  /// Instruction cap per simulated run.  Generated loops are structurally
  /// bounded, so the cap only trips on genuinely runaway optimized code.
  uint64_t MaxInstructions = 32u * 1000 * 1000;
};

/// One optimized variant's verdict.
struct VariantResult {
  std::string Spec;       ///< The -passes= spec this variant compiled under.
  DivergenceClass Class = DivergenceClass::Ok;
  std::string Detail;     ///< Human-readable: what diverged / what faulted.
  std::string FaultPass;  ///< Pass named by the first sandbox fault, if any.
  std::string FaultKind;  ///< Sandbox fault kind ("verifier", "exception"...).
  std::string ReproFile;  ///< Sandbox-written bundle path, if any.
};

/// The whole program's verdict.
struct OracleResult {
  bool RefOk = false;     ///< -O0 compiled and ran clean.
  std::string RefError;   ///< Why not, when !RefOk (a generator bug).
  std::vector<VariantResult> Variants;

  /// The most severe variant class (Ok when all variants agree).
  DivergenceClass worst() const;
  /// First variant at the worst class; null when all Ok.
  const VariantResult *firstBad() const;
};

/// The exact CompilerOptions the oracle compiles a variant under —
/// exposed so bundles can record the true configuration fingerprint and
/// `tcc -replay=` can re-run a finding identically.
driver::CompilerOptions oracleVariantOptions(const std::string &Spec,
                                             const OracleOptions &Opts);

/// The sampled variant specs for \p SampleSeed: element 0 is the full
/// default pipeline, the rest seeded subsequences (or permutations under
/// \p Wild).  Pure function of its arguments.
std::vector<std::string> sampleVariantSpecs(uint64_t SampleSeed,
                                            unsigned Count, bool Wild);

/// Compiles and runs \p Source at -O0, then under every sampled variant,
/// comparing global memory and classifying each variant.
OracleResult runOracle(const std::string &Source, const OracleOptions &Opts);

/// Re-checks a single (source, spec) pair against -O0 — the reducer's
/// interestingness test.  A source that no longer compiles at -O0 comes
/// back as CompileError with Detail "reference: ...", which reducers must
/// treat as "not interesting".
VariantResult checkVariant(const std::string &Source, const std::string &Spec,
                           const OracleOptions &Opts);

/// Finds the culprit prefix of \p Spec: the shortest leading subsequence
/// whose last pass flips the verdict from clean to \p Class.  Returns the
/// culprit pass name ("" when even the empty pipeline misbehaves, which
/// means codegen) and fills \p PrefixSpec with the full failing prefix.
std::string bisectCulprit(const std::string &Source, const std::string &Spec,
                          DivergenceClass Class, const OracleOptions &Opts,
                          std::string *PrefixSpec = nullptr);

/// Serialized IL of \p Source's whole program after running \p Spec
/// (possibly empty) — the bundle payload for divergence findings: the IL
/// immediately *before* the culprit pass runs.
std::string serializeProgramAfter(const std::string &Source,
                                  const std::string &Spec);

} // namespace fuzz
} // namespace tcc

#endif // TCC_FUZZ_ORACLE_H
