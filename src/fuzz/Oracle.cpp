#include "fuzz/Oracle.h"

#include "il/ILSerializer.h"
#include "pipeline/PassRegistry.h"
#include "titan/TitanMachine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace tcc;
using namespace tcc::fuzz;

const char *fuzz::divergenceClassName(DivergenceClass C) {
  switch (C) {
  case DivergenceClass::Ok:
    return "ok";
  case DivergenceClass::RunError:
    return "run-error";
  case DivergenceClass::CompileError:
    return "compile-error";
  case DivergenceClass::Quarantine:
    return "quarantine";
  case DivergenceClass::VerifierFault:
    return "verifier";
  case DivergenceClass::OutputDivergence:
    return "output-divergence";
  }
  return "ok";
}

DivergenceClass fuzz::divergenceClassFromName(const std::string &Name) {
  for (DivergenceClass C :
       {DivergenceClass::RunError, DivergenceClass::CompileError,
        DivergenceClass::Quarantine, DivergenceClass::VerifierFault,
        DivergenceClass::OutputDivergence})
    if (Name == divergenceClassName(C))
      return C;
  return DivergenceClass::Ok;
}

DivergenceClass OracleResult::worst() const {
  DivergenceClass W = DivergenceClass::Ok;
  for (const VariantResult &V : Variants)
    if (static_cast<int>(V.Class) > static_cast<int>(W))
      W = V.Class;
  return W;
}

const VariantResult *OracleResult::firstBad() const {
  DivergenceClass W = worst();
  if (W == DivergenceClass::Ok)
    return nullptr;
  for (const VariantResult &V : Variants)
    if (V.Class == W)
      return &V;
  return nullptr;
}

namespace {

std::string firstError(const DiagnosticEngine &Diags) {
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Kind == DiagKind::Error)
      return D.Message;
  return "unknown error";
}

/// Registered pass names minus the no-op "verify" marker (VerifyEach
/// already covers it, and keeping it out makes every sampled token a
/// transformation).
std::vector<std::string> transformPasses() {
  std::vector<std::string> Names = pipeline::PassRegistry::instance().names();
  Names.erase(std::remove(Names.begin(), Names.end(), "verify"),
              Names.end());
  return Names;
}

//===----------------------------------------------------------------------===//
// Memory comparison
//===----------------------------------------------------------------------===//

/// One global's extent in a linked program.
struct GlobalExtent {
  std::string Name;
  int64_t Addr = 0;
  int64_t Bytes = 0;
};

std::vector<GlobalExtent> globalExtents(const titan::TitanProgram &P) {
  std::vector<GlobalExtent> Out;
  for (const auto &KV : P.GlobalAddresses)
    Out.push_back({KV.first, KV.second, 0});
  std::sort(Out.begin(), Out.end(),
            [](const GlobalExtent &A, const GlobalExtent &B) {
              return A.Addr < B.Addr;
            });
  for (size_t I = 0; I < Out.size(); ++I) {
    int64_t End = (I + 1 < Out.size()) ? Out[I + 1].Addr : P.GlobalSize;
    Out[I].Bytes = End - Out[I].Addr;
  }
  return Out;
}

/// Word-for-word comparison of every named global.  Layouts may differ
/// between variants; only (name, contents) must agree.
bool compareGlobals(const titan::TitanProgram &RefP,
                    const titan::TitanMachine &RefM,
                    const titan::TitanProgram &VarP,
                    const titan::TitanMachine &VarM, std::string &Detail) {
  for (const GlobalExtent &G : globalExtents(RefP)) {
    auto It = VarP.GlobalAddresses.find(G.Name);
    if (It == VarP.GlobalAddresses.end()) {
      Detail = "global '" + G.Name + "' missing from variant program";
      return false;
    }
    int64_t Words = G.Bytes / 4;
    for (int64_t W = 0; W < Words; ++W) {
      int32_t Ref = RefM.readInt(G.Addr + 4 * W);
      int32_t Var = VarM.readInt(It->second + 4 * W);
      // Signed-zero tolerance: -0.0f and +0.0f (word 0x80000000 vs 0) are
      // numerically equal, and constant folding legitimately normalizes
      // the sign; generated integers are masked far below INT_MIN, so the
      // exemption cannot mask an integer difference.
      if ((Ref == 0 && Var == INT32_MIN) || (Ref == INT32_MIN && Var == 0))
        continue;
      if (Ref != Var) {
        char Buf[160];
        std::snprintf(Buf, sizeof(Buf),
                      "global '%s' word %lld: ref=0x%08x var=0x%08x",
                      G.Name.c_str(), static_cast<long long>(W),
                      static_cast<unsigned>(Ref), static_cast<unsigned>(Var));
        Detail = Buf;
        return false;
      }
    }
  }
  return true;
}

driver::CompilerOptions refOptions() {
  driver::CompilerOptions O = driver::CompilerOptions::noOpt();
  O.ReproDir.clear(); // the reference runs no passes; never write bundles
  return O;
}

/// An empty -passes= spec means "default pipeline" to the driver, but the
/// oracle's empty prefix means "no transformations at all" — substitute
/// the registered no-op "verify" marker, which pins the pipeline to zero
/// transforms while the Enable* toggles (and thus codegen's dependence
/// scheduling) stay identical to every other variant.
void forceEmptyPipeline(driver::CompilerOptions &O) { O.Passes = "verify"; }

/// Splits an optional `@P<k>:` processor prefix off a variant spec.
/// Returns the pass-list remainder; \p Procs is 1 when there is no
/// prefix (or it is malformed, in which case the spec passes through
/// untouched and the driver reports the bad pass name).
std::string splitProcPrefix(const std::string &Spec, int &Procs) {
  Procs = 1;
  if (Spec.rfind("@P", 0) != 0)
    return Spec;
  size_t Colon = Spec.find(':');
  if (Colon == std::string::npos)
    return Spec;
  int N = std::atoi(Spec.substr(2, Colon - 2).c_str());
  if (N < 1)
    return Spec;
  Procs = std::min(N, titan::TitanConfig::MaxProcessors);
  return Spec.substr(Colon + 1);
}

} // namespace

driver::CompilerOptions
fuzz::oracleVariantOptions(const std::string &Spec, const OracleOptions &Opts) {
  int Procs = 1;
  std::string Passes = splitProcPrefix(Spec, Procs);
  driver::CompilerOptions O = driver::CompilerOptions::full();
  if (Procs > 1) {
    // Processor-differential variant: same pass list, but spreading and
    // parallel strip marks are live.  Functional memory must still match
    // the -O0 reference — `do parallel` is a timing annotation.
    O.Vectorize.EnableParallel = true;
    O.Spread.Processors = Procs;
  }
  O.Passes = Passes;
  if (Passes.empty())
    forceEmptyPipeline(O);
  O.VerifyEach = true; // verifier rejections are first-class findings
  O.SandboxPasses = true;
  O.ReproDir = Opts.ReproDir;
  O.FaultInject = Opts.FaultInject;
  return O;
}

namespace {

titan::TitanConfig runConfig(const OracleOptions &Opts) {
  titan::TitanConfig C;
  C.MaxInstructions = Opts.MaxInstructions;
  return C;
}

/// Classifies one compiled-and-run variant against a clean reference.
VariantResult classify(const std::string &Spec,
                       const driver::RunOutcome &Ref,
                       const driver::RunOutcome &Var) {
  VariantResult R;
  R.Spec = Spec;
  for (const remarks::FaultRecord &F : Var.Compile->Telemetry.Faults) {
    if (R.FaultPass.empty() || F.Kind == "verifier") {
      R.FaultPass = F.Pass;
      R.FaultKind = F.Kind;
      R.ReproFile = F.ReproFile;
    }
    if (F.Kind == "verifier")
      break;
  }
  if (!Var.Compile->ok()) {
    R.Class = DivergenceClass::CompileError;
    R.Detail = firstError(Var.Compile->Diags);
    return R;
  }
  if (!Var.Run.Ok) {
    R.Class = DivergenceClass::RunError;
    R.Detail = Var.Run.Error;
    return R;
  }
  std::string Detail;
  if (!compareGlobals(Ref.Compile->Machine, *Ref.Machine,
                      Var.Compile->Machine, *Var.Machine, Detail)) {
    R.Class = DivergenceClass::OutputDivergence;
    R.Detail = Detail;
    return R;
  }
  for (const remarks::FaultRecord &F : Var.Compile->Telemetry.Faults) {
    bool Verifier = F.Kind == "verifier";
    R.Class = Verifier ? DivergenceClass::VerifierFault
                       : DivergenceClass::Quarantine;
    R.Detail = F.Pass + " on " + F.Function + ": " + F.Description;
    if (Verifier)
      return R;
  }
  return R; // Ok (or the last non-verifier fault found above)
}

} // namespace

std::vector<std::string> fuzz::sampleVariantSpecs(uint64_t SampleSeed,
                                                  unsigned Count, bool Wild) {
  std::vector<std::string> Specs;
  if (Count == 0)
    return Specs;
  Specs.push_back(driver::CompilerOptions::full().pipelineSpec());
  Rng R(SampleSeed ^ 0x5fd1e8a3c0b4f972ull);
  const std::vector<std::string> Names = transformPasses();
  while (Specs.size() < Count) {
    std::vector<std::string> Pick;
    for (const std::string &N : Names)
      if (R.chance(60))
        Pick.push_back(N);
    if (Pick.empty())
      Pick.push_back(Names[R.below(Names.size())]);
    if (Wild) // Fisher-Yates over the subsequence
      for (size_t I = Pick.size(); I > 1; --I)
        std::swap(Pick[I - 1], Pick[R.below(I)]);
    Specs.push_back(pipeline::joinSpec(Pick));
  }
  return Specs;
}

OracleResult fuzz::runOracle(const std::string &Source,
                             const OracleOptions &Opts) {
  OracleResult Out;
  driver::RunOutcome Ref =
      driver::compileAndRun(Source, refOptions(), runConfig(Opts));
  if (!Ref.Compile->ok()) {
    Out.RefError = "reference compile failed: " + firstError(Ref.Compile->Diags);
    return Out;
  }
  if (!Ref.Run.Ok) {
    Out.RefError = "reference run failed: " + Ref.Run.Error;
    return Out;
  }
  Out.RefOk = true;

  std::vector<std::string> Specs =
      sampleVariantSpecs(Opts.SampleSeed, Opts.Variants, Opts.WildOrders);
  if (Opts.PDifferential) {
    // Processor differential: the full parallel pipeline at P=4, plus
    // every sampled subsequence re-run with spreading live.  The sampled
    // specs already draw "spread" from the registry; the prefix is what
    // arms it (Spread.Processors > 1) and the vectorizer's strip marks.
    std::vector<std::string> PSpecs;
    PSpecs.push_back(
        "@P4:" + driver::CompilerOptions::parallel(4).pipelineSpec());
    for (size_t I = 1; I < Specs.size(); ++I)
      PSpecs.push_back("@P4:" + Specs[I]);
    Specs.insert(Specs.end(), PSpecs.begin(), PSpecs.end());
  }
  for (const std::string &Spec : Specs) {
    driver::RunOutcome Var =
        driver::compileAndRun(Source, oracleVariantOptions(Spec, Opts),
                              runConfig(Opts));
    Out.Variants.push_back(classify(Spec, Ref, Var));
  }
  return Out;
}

VariantResult fuzz::checkVariant(const std::string &Source,
                                 const std::string &Spec,
                                 const OracleOptions &Opts) {
  VariantResult R;
  R.Spec = Spec;
  driver::RunOutcome Ref =
      driver::compileAndRun(Source, refOptions(), runConfig(Opts));
  if (!Ref.Compile->ok() || !Ref.Run.Ok) {
    R.Class = DivergenceClass::CompileError;
    R.Detail = "reference: " + (Ref.Compile->ok()
                                    ? Ref.Run.Error
                                    : firstError(Ref.Compile->Diags));
    R.FaultPass = "reference";
    return R;
  }
  driver::RunOutcome Var = driver::compileAndRun(
      Source, oracleVariantOptions(Spec, Opts), runConfig(Opts));
  return classify(Spec, Ref, Var);
}

std::string fuzz::bisectCulprit(const std::string &Source,
                                const std::string &Spec,
                                DivergenceClass Class,
                                const OracleOptions &Opts,
                                std::string *PrefixSpec) {
  int Procs = 1;
  std::string Body = splitProcPrefix(Spec, Procs);
  // A processor prefix rides along on every probed prefix so the culprit
  // reproduces under the same spread configuration.
  std::string Tag = Procs > 1 ? "@P" + std::to_string(Procs) + ":" : "";
  std::vector<std::string> Passes = pipeline::splitSpec(Body);
  for (size_t Len = 0; Len <= Passes.size(); ++Len) {
    std::vector<std::string> Prefix(Passes.begin(), Passes.begin() + Len);
    std::string PSpec = Tag + pipeline::joinSpec(Prefix);
    VariantResult R = checkVariant(Source, PSpec, Opts);
    if (R.Class == Class && R.FaultPass != "reference") {
      if (PrefixSpec)
        *PrefixSpec = PSpec;
      return Len == 0 ? std::string() : Prefix.back();
    }
  }
  // Not prefix-reproducible (an interaction of the full order); blame the
  // last pass so the bundle still names a pipeline position.
  if (PrefixSpec)
    *PrefixSpec = Spec;
  return Passes.empty() ? std::string() : Passes.back();
}

std::string fuzz::serializeProgramAfter(const std::string &Source,
                                        const std::string &Spec) {
  int Procs = 1;
  std::string Passes = splitProcPrefix(Spec, Procs);
  driver::CompilerOptions O = driver::CompilerOptions::full();
  if (Procs > 1) {
    O.Vectorize.EnableParallel = true;
    O.Spread.Processors = Procs;
  }
  O.Passes = Passes;
  if (Passes.empty())
    forceEmptyPipeline(O);
  O.ReproDir.clear();
  std::unique_ptr<driver::CompileResult> R = driver::compileSource(Source, O);
  if (!R->ok() || !R->IL)
    return "";
  il::Function *Main = R->IL->findFunction("main");
  return Main ? il::serializeFunction(*Main) : "";
}
