//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzing fleet: a seeded campaign of generated programs swept
/// through the differential oracle, sharded over support/WorkerPool with
/// per-shard fault isolation, findings deduplicated by signature,
/// shrunk by the reducer, and written as replayable crash bundles.
///
/// Determinism contract: the program set is a pure function of the
/// campaign seed (`programSeed(Seed, Index)` is independent of shard
/// count), shards own static index ranges, every shard writes only its
/// own result slots, and all post-processing (dedup, bisection,
/// reduction, bundle writing) runs sequentially in index order — so a
/// campaign's findings are byte-identical at 1 shard and at 8.
///
/// Fault isolation: a program whose oracle run throws is recorded as
/// crashed and the shard moves on; a whole shard can be quarantined
/// through the deterministic fault injector (site "fuzz", unit
/// "shard<k>"), in which case its range is skipped, the quarantine is
/// reported, and the campaign still exits cleanly — one wedged program
/// (or shard) never kills the fleet.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_FUZZ_CAMPAIGN_H
#define TCC_FUZZ_CAMPAIGN_H

#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reducer.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace tcc {
namespace fuzz {

struct CampaignOptions {
  uint64_t Seed = 1;
  uint64_t Programs = 100;
  /// Shard count (-j convention: 0 = all hardware threads).
  unsigned Shards = 1;

  GenOptions Gen;
  /// Variant sampling and run caps; SampleSeed/FaultInject/ReproDir are
  /// overwritten per program by the campaign.
  OracleOptions Oracle;
  ReduceOptions Reduce;

  /// Shrink findings before bundling.  Off only for triage-speed runs;
  /// an unreduced finding fails a CI campaign.
  bool ReduceFindings = true;

  /// Where finding bundles land; empty disables bundle writing.
  std::string ReproDir = ".tcc-fuzz";

  /// Deterministic fault injection.  Pass-level specs (e.g.
  /// "constprop:*:corrupt-il") are forwarded into every variant compile;
  /// the campaign-level site "fuzz:shard<k>:throw" quarantines shard k.
  std::string FaultInject;

  /// BENCH_fuzz.json path; empty disables the bench row.
  std::string BenchPath;
};

/// One unique bug found by the campaign (deduplicated by signature).
struct Finding {
  uint64_t Seed = 0;          ///< Program seed that first hit it.
  DivergenceClass Class = DivergenceClass::Ok;
  std::string Signature;      ///< class|culprit — the dedup key.
  std::string Spec;           ///< Variant spec that flagged it.
  std::string Detail;
  std::string CulpritPass;    ///< Bisected (divergence) or faulting pass.
  std::string FaultKind;      ///< Sandbox kind for fault classes.
  std::string Source;         ///< Reduced (or original) C program.
  size_t OriginalLines = 0;
  size_t ReducedLines = 0;
  unsigned ReduceChecks = 0;
  bool Reduced = false;       ///< Reduction ran and reached a fixed point.
  unsigned Hits = 1;          ///< Programs that showed this signature.
  std::string BundlePath;     ///< Written crash bundle; empty if disabled.
};

/// Per-shard execution report.
struct ShardReport {
  uint64_t First = 0;
  uint64_t Count = 0;
  bool Quarantined = false;   ///< Injected shard fault; range skipped.
  std::string Error;          ///< What the quarantine caught.
  uint64_t Crashes = 0;       ///< Individual programs whose oracle threw.
};

struct CampaignResult {
  uint64_t Programs = 0;      ///< Requested.
  uint64_t Executed = 0;      ///< Actually swept (quarantine skips some).
  uint64_t RefFailures = 0;   ///< -O0 rejected a generated program.
  uint64_t Divergent = 0;     ///< Programs with any non-Ok variant.
  uint64_t Crashed = 0;       ///< Programs whose oracle run threw.
  std::vector<Finding> Findings;   ///< Unique bugs, discovery order.
  std::vector<ShardReport> Shards;

  double Seconds = 0.0;
  double ProgramsPerSec = 0.0;
  double YieldPer10k = 0.0;        ///< Unique bugs per 10k programs.
  double MeanReductionRatio = 1.0; ///< Mean reduced/original line ratio.

  /// Findings the reducer could not shrink to a fixed point — the CI
  /// campaign's failure condition.
  unsigned unreduced() const;
  bool anyQuarantinedShard() const;
};

/// Runs the campaign.  Diagnostics carry option errors (e.g. a malformed
/// fault-injection spec); a campaign with findings still returns cleanly —
/// findings are data, not errors.
CampaignResult runCampaign(const CampaignOptions &Opts,
                           DiagnosticEngine &Diags);

/// Appends the campaign's JSON-Lines row to \p Path (one atomic append,
/// BENCH_* convention).  Returns false on I/O failure.
bool appendCampaignRow(const std::string &Path, const CampaignOptions &Opts,
                       const CampaignResult &Result);

/// Writes \p F as a replayable crash bundle under \p ReproDir using the
/// PR-4 bundle format extended with oracle/spec/csource records.  Returns
/// the path, or "" on failure (with a warning in \p Diags).
std::string writeFindingBundle(const Finding &F, const std::string &ReproDir,
                               const CampaignOptions &Opts,
                               DiagnosticEngine &Diags);

} // namespace fuzz
} // namespace tcc

#endif // TCC_FUZZ_CAMPAIGN_H
