//===----------------------------------------------------------------------===//
///
/// \file
/// The delta-debugging reducer: shrinks a divergence-triggering program
/// to a small reproducer while preserving the oracle's verdict.
///
/// Two alternating phases run to a fixed point:
///
///  - **statement-level ddmin** over source lines (the generator emits
///    one statement per line, with `{`-suffixed headers and lone `}`
///    footers, so line deletion is statement deletion).  Chunks of
///    halving size are deleted and the oracle re-checked; a candidate
///    that breaks brace balance is rejected before ever reaching the
///    compiler, and one that no longer compiles at -O0 is rejected by
///    the oracle itself (the reference failure is never "interesting").
///
///  - **operand-level simplification**: numeric literals shrink toward
///    0/1 one token at a time, each step re-checked.  Shrinking literals
///    can only tighten the generator's bounds (smaller masks, smaller
///    trip counts), so well-definedness is preserved by construction and
///    the oracle remains the sole arbiter of interestingness.
///
/// The invariant throughout: every intermediate accepted program shows
/// the *same* divergence class on the *same* variant spec as the
/// original finding — a reducer that wanders to a different bug has
/// reduced nothing.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_FUZZ_REDUCER_H
#define TCC_FUZZ_REDUCER_H

#include "fuzz/Oracle.h"

#include <string>

namespace tcc {
namespace fuzz {

struct ReduceOptions {
  /// Ceiling on ddmin+operand rounds (each round is a full sweep); the
  /// reducer almost always reaches a fixed point in 2-4.
  unsigned MaxRounds = 8;
  /// Ceiling on oracle checks across the whole reduction.
  unsigned MaxChecks = 2000;
};

struct ReduceResult {
  std::string Source;    ///< The reduced program (still interesting).
  size_t OriginalLines = 0;
  size_t ReducedLines = 0;
  unsigned Checks = 0;   ///< Oracle invocations spent.
  bool Converged = false; ///< Reached a fixed point within the budgets.

  double ratio() const {
    return OriginalLines == 0
               ? 1.0
               : static_cast<double>(ReducedLines) /
                     static_cast<double>(OriginalLines);
  }
};

/// Shrinks \p Source while checkVariant(result, Spec, Opts) still reports
/// \p Class.  \p Source must be interesting on entry; if it is not, the
/// result echoes it back unchanged with Converged=false.
ReduceResult reduceSource(const std::string &Source, const std::string &Spec,
                          DivergenceClass Class, const OracleOptions &Opts,
                          const ReduceOptions &ROpts = {});

} // namespace fuzz
} // namespace tcc

#endif // TCC_FUZZ_REDUCER_H
