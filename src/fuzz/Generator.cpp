#include "fuzz/Generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

using namespace tcc;
using namespace tcc::fuzz;

namespace {

//===----------------------------------------------------------------------===//
// Exactness bookkeeping
//===----------------------------------------------------------------------===//

/// A conservative description of a float value set: |v| <= Bound and v is
/// an integer multiple of 2^-Gran.  Exactly representable as float when
/// the required mantissa width stays under 24 bits; the generator keeps a
/// safety margin at 22.
struct FBound {
  double Bound = 0.0;
  int Gran = 0;

  int bits() const {
    double B = std::max(Bound, 1.0);
    return static_cast<int>(std::ceil(std::log2(B))) + Gran;
  }
  bool exact() const { return bits() <= 22; }
};

FBound fAdd(FBound A, FBound B) {
  return {A.Bound + B.Bound, std::max(A.Gran, B.Gran)};
}
FBound fMul(FBound A, FBound B) { return {A.Bound * B.Bound, A.Gran + B.Gran}; }
FBound fMax(FBound A, FBound B) {
  return {std::max(A.Bound, B.Bound), std::max(A.Gran, B.Gran)};
}

/// Non-negative integer bound: 0 <= v <= Bound.  Every generated integer
/// expression is masked back under a small bound after each step, so
/// signed overflow is structurally impossible.
struct IBound {
  int64_t Bound = 0;
};

/// A rendered expression plus its value bound.
struct FExpr {
  std::string Text;
  FBound B;
};
struct IExpr {
  std::string Text;
  IBound B;
};

std::string fmtFloat(double V) {
  // Quarter-granularity literals render exactly with two decimals.
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f", V);
  return Buf;
}

//===----------------------------------------------------------------------===//
// Program model
//===----------------------------------------------------------------------===//

struct ArrayInfo {
  std::string Name;
  int Size = 0;     ///< Elements (total for 2D); always a power of two.
  int Cols = 0;     ///< 2D arrays: columns (power of two); 0 = 1D.
  bool IsFloat = true;
  FBound FB;        ///< Float arrays: current value bound.
  IBound IB;        ///< Int arrays: current value bound.
};

struct ScalarInfo {
  std::string Name;
  bool IsFloat = true;
  FBound FB;
  IBound IB;
};

struct LeafInfo {
  std::string Name;
  bool IsFloat = true;
  FBound ParamFB; ///< Caller obligation per float parameter.
  FBound RetFB;   ///< Guaranteed result bound.
  int64_t ParamIB = 0;
  IBound RetIB;
};

/// Everything the statement generators share.
struct GenState {
  Rng R;
  GenOptions Opts;
  std::vector<std::string> Lines;
  std::vector<ArrayInfo> Arrays;
  std::vector<ScalarInfo> Scalars;
  std::vector<LeafInfo> Leaves;
  /// The loop-variable context for expression generation: name and
  /// exclusive upper bound of each live index variable, innermost last.
  std::vector<std::pair<std::string, int>> LoopVars;

  explicit GenState(uint64_t Seed, const GenOptions &O) : R(Seed), Opts(O) {}

  void line(const std::string &S) { Lines.push_back(S); }
};

const int64_t Masks[] = {0xff, 0x3ff, 0xfff, 0xffff};

int64_t pickMask(GenState &G) {
  return Masks[G.R.below(sizeof(Masks) / sizeof(Masks[0]))];
}

//===----------------------------------------------------------------------===//
// Index expressions (always provably in range)
//===----------------------------------------------------------------------===//

/// An index into an array of \p Size elements (power of two).  Uses a
/// live loop variable when its range already fits, otherwise masks.
std::string genIndex(GenState &G, int Size) {
  if (!G.LoopVars.empty()) {
    const auto &LV = G.LoopVars[G.R.below(G.LoopVars.size())];
    if (LV.second <= Size && G.R.chance(60))
      return LV.first;
    switch (G.R.below(3)) {
    case 0:
      return "((" + LV.first + " + " + std::to_string(G.R.range(1, 31)) +
             ") & " + std::to_string(Size - 1) + ")";
    case 1:
      return "((" + LV.first + " * " + std::to_string(G.R.range(2, 5)) +
             ") & " + std::to_string(Size - 1) + ")";
    default:
      return "(" + LV.first + " & " + std::to_string(Size - 1) + ")";
    }
  }
  return std::to_string(G.R.below(static_cast<uint64_t>(Size)));
}

/// An indirect index: an int-array element masked into range.
std::string genIndirectIndex(GenState &G, int Size) {
  for (const ArrayInfo &A : G.Arrays)
    if (!A.IsFloat && A.Cols == 0 && G.R.chance(70))
      return "((" + A.Name + "[" + genIndex(G, A.Size) + "]) & " +
             std::to_string(Size - 1) + ")";
  return genIndex(G, Size);
}

//===----------------------------------------------------------------------===//
// Int expressions
//===----------------------------------------------------------------------===//

IExpr genIntExpr(GenState &G, int Depth);

IExpr genIntAtom(GenState &G) {
  // Collect int sources: literals, scalars, array elements, loop vars.
  switch (G.R.below(4)) {
  case 0: {
    int64_t V = G.R.range(0, 255);
    return {std::to_string(V), {V}};
  }
  case 1: {
    std::vector<const ScalarInfo *> Ints;
    for (const ScalarInfo &S : G.Scalars)
      if (!S.IsFloat)
        Ints.push_back(&S);
    if (!Ints.empty()) {
      const ScalarInfo *S = Ints[G.R.below(Ints.size())];
      return {S->Name, S->IB};
    }
    break;
  }
  case 2: {
    std::vector<const ArrayInfo *> Ints;
    for (const ArrayInfo &A : G.Arrays)
      if (!A.IsFloat && A.Cols == 0)
        Ints.push_back(&A);
    if (!Ints.empty()) {
      const ArrayInfo *A = Ints[G.R.below(Ints.size())];
      return {A->Name + "[" + genIndex(G, A->Size) + "]", A->IB};
    }
    break;
  }
  default:
    if (!G.LoopVars.empty()) {
      const auto &LV = G.LoopVars[G.R.below(G.LoopVars.size())];
      return {LV.first, {LV.second - 1}};
    }
    break;
  }
  int64_t V = G.R.range(1, 63);
  return {std::to_string(V), {V}};
}

IExpr genIntExpr(GenState &G, int Depth) {
  if (Depth <= 0)
    return genIntAtom(G);
  switch (G.R.below(8)) {
  case 0: { // (a + b) & m
    IExpr A = genIntExpr(G, Depth - 1), B = genIntExpr(G, Depth - 1);
    int64_t M = pickMask(G);
    return {"((" + A.Text + " + " + B.Text + ") & " + std::to_string(M) + ")",
            {std::min(A.B.Bound + B.B.Bound, M)}};
  }
  case 1: { // (a - b) & m  — two's-complement wrap, then masked non-negative
    IExpr A = genIntExpr(G, Depth - 1), B = genIntExpr(G, Depth - 1);
    int64_t M = pickMask(G);
    return {"((" + A.Text + " - " + B.Text + ") & " + std::to_string(M) + ")",
            {M}};
  }
  case 2: { // (a * b) & m, with the pre-mask product kept under 2^31
    IExpr A = genIntExpr(G, Depth - 1), B = genIntExpr(G, Depth - 1);
    int64_t M = pickMask(G);
    if (A.B.Bound * B.B.Bound < (int64_t(1) << 31))
      return {"((" + A.Text + " * " + B.Text + ") & " + std::to_string(M) +
                  ")",
              {std::min(A.B.Bound * B.B.Bound, M)}};
    int64_t C = G.R.range(2, 7);
    return {"((" + A.Text + " * " + std::to_string(C) + ") & " +
                std::to_string(M) + ")",
            {std::min(A.B.Bound * C, M)}};
  }
  case 3: { // a ^ b / a | b / a & b
    IExpr A = genIntExpr(G, Depth - 1), B = genIntExpr(G, Depth - 1);
    const char *Op = (const char *[]){" ^ ", " | ", " & "}[G.R.below(3)];
    // Non-negative inputs: result bounded by the next power of two.
    int64_t Bound = 1;
    while (Bound <= std::max(A.B.Bound, B.B.Bound))
      Bound <<= 1;
    return {"(" + A.Text + Op + B.Text + ")", {Bound - 1}};
  }
  case 4: { // (a >> k) or (a << k) & m
    IExpr A = genIntExpr(G, Depth - 1);
    int64_t K = G.R.range(1, 4);
    if (G.R.chance(50))
      return {"(" + A.Text + " >> " + std::to_string(K) + ")",
              {A.B.Bound >> K}};
    int64_t M = pickMask(G);
    if ((A.B.Bound << K) < (int64_t(1) << 30))
      return {"((" + A.Text + " << " + std::to_string(K) + ") & " +
                  std::to_string(M) + ")",
              {std::min(A.B.Bound << K, M)}};
    return A;
  }
  case 5: { // a / nonzero, a % literal
    IExpr A = genIntExpr(G, Depth - 1);
    if (G.R.chance(50)) {
      IExpr D = genIntAtom(G);
      return {"(" + A.Text + " / ((" + D.Text + " & 7) + 1))", {A.B.Bound}};
    }
    int64_t L = G.R.range(2, 31);
    return {"(" + A.Text + " % " + std::to_string(L) + ")", {L - 1}};
  }
  case 6: { // comparison / short-circuit: a 0-or-1 value
    IExpr A = genIntExpr(G, Depth - 1), B = genIntExpr(G, Depth - 1);
    const char *Op = (const char *[]){" < ", " > ", " <= ", " >= ", " == ",
                                      " != ", " && ", " || "}[G.R.below(8)];
    return {"(" + A.Text + Op + B.Text + ")", {1}};
  }
  default: { // conditional expression
    IExpr C = genIntExpr(G, 0);
    IExpr A = genIntExpr(G, Depth - 1), B = genIntExpr(G, Depth - 1);
    return {"((" + C.Text + " & 1) ? " + A.Text + " : " + B.Text + ")",
            {std::max(A.B.Bound, B.B.Bound)}};
  }
  }
}

/// An int-leaf call if one fits, else a plain expression.
IExpr genIntExprOrCall(GenState &G, int Depth) {
  for (const LeafInfo &L : G.Leaves)
    if (!L.IsFloat && G.R.chance(35)) {
      IExpr A = genIntExpr(G, Depth - 1), B = genIntExpr(G, Depth - 1);
      std::string MA = "(" + A.Text + " & " + std::to_string(L.ParamIB) + ")";
      std::string MB = "(" + B.Text + " & " + std::to_string(L.ParamIB) + ")";
      return {L.Name + "(" + MA + ", " + MB + ")", L.RetIB};
    }
  return genIntExpr(G, Depth);
}

//===----------------------------------------------------------------------===//
// Float expressions
//===----------------------------------------------------------------------===//

FExpr genFloatExpr(GenState &G, int Depth);

FExpr genFloatAtom(GenState &G) {
  switch (G.R.below(3)) {
  case 0: {
    std::vector<const ArrayInfo *> Floats;
    for (const ArrayInfo &A : G.Arrays)
      if (A.IsFloat && A.Cols == 0)
        Floats.push_back(&A);
    if (!Floats.empty()) {
      const ArrayInfo *A = Floats[G.R.below(Floats.size())];
      std::string Idx = G.R.chance(20) ? genIndirectIndex(G, A->Size)
                                       : genIndex(G, A->Size);
      return {A->Name + "[" + Idx + "]", A->FB};
    }
    break;
  }
  case 1: {
    std::vector<const ScalarInfo *> Floats;
    for (const ScalarInfo &S : G.Scalars)
      if (S.IsFloat)
        Floats.push_back(&S);
    if (!Floats.empty() && G.R.chance(60)) {
      const ScalarInfo *S = Floats[G.R.below(Floats.size())];
      return {S->Name, S->FB};
    }
    break;
  }
  default:
    break;
  }
  // Quarter-granularity literal in [-8, 8].
  double V = static_cast<double>(G.R.range(-32, 32)) * 0.25;
  return {fmtFloat(V), {std::fabs(V), 2}};
}

FExpr genFloatExpr(GenState &G, int Depth) {
  if (Depth <= 0)
    return genFloatAtom(G);
  switch (G.R.below(6)) {
  case 0:
  case 1: { // addition / subtraction
    FExpr A = genFloatExpr(G, Depth - 1), B = genFloatExpr(G, Depth - 1);
    FBound FB = fAdd(A.B, B.B);
    if (!FB.exact())
      return A;
    const char *Op = G.R.chance(50) ? " + " : " - ";
    return {"(" + A.Text + Op + B.Text + ")", FB};
  }
  case 2: { // product of two tracked values
    FExpr A = genFloatExpr(G, Depth - 1), B = genFloatExpr(G, Depth - 1);
    FBound FB = fMul(A.B, B.B);
    if (FB.exact())
      return {"(" + A.Text + " * " + B.Text + ")", FB};
    // Fall back to a constant scale that fits.
    FBound Scaled = {A.B.Bound * 2.0, A.B.Gran};
    if (Scaled.exact())
      return {"(" + A.Text + " * 2.00)", Scaled};
    return A;
  }
  case 3: { // scale by an exact constant (powers of two divide exactly)
    FExpr A = genFloatExpr(G, Depth - 1);
    struct {
      const char *Text;
      double Mul;
      int GranShift;
    } Consts[] = {{" * 0.50", 0.5, 1}, {" * 0.25", 0.25, 2},
                  {" * 2.00", 2.0, 0}, {" * 4.00", 4.0, 0},
                  {" * 3.00", 3.0, 0}, {" / 2.00", 0.5, 1},
                  {" / 4.00", 0.25, 2}};
    auto &C = Consts[G.R.below(7)];
    FBound FB = {A.B.Bound * C.Mul, A.B.Gran + C.GranShift};
    if (!FB.exact())
      return A;
    return {"(" + A.Text + C.Text + ")", FB};
  }
  case 4: { // guarded by an int condition
    IExpr C = genIntExpr(G, 1);
    FExpr A = genFloatExpr(G, Depth - 1), B = genFloatExpr(G, Depth - 1);
    return {"((" + C.Text + " & 1) ? " + A.Text + " : " + B.Text + ")",
            fMax(A.B, B.B)};
  }
  default: { // negation or pass-through
    FExpr A = genFloatExpr(G, Depth - 1);
    // The operand gets its own parens: a leading '-' in A (a negative
    // literal) would otherwise lex as the '--' operator.
    if (G.R.chance(40))
      return {"(-(" + A.Text + "))", A.B};
    return A;
  }
  }
}

/// A float-leaf call when one fits the operand bounds.
FExpr genFloatExprOrCall(GenState &G, int Depth) {
  for (const LeafInfo &L : G.Leaves)
    if (L.IsFloat && G.R.chance(35)) {
      FExpr A = genFloatExpr(G, Depth - 1), B = genFloatExpr(G, Depth - 1);
      if (A.B.Bound <= L.ParamFB.Bound && A.B.Gran <= L.ParamFB.Gran &&
          B.B.Bound <= L.ParamFB.Bound && B.B.Gran <= L.ParamFB.Gran)
        return {L.Name + "(" + A.Text + ", " + B.Text + ")", L.RetFB};
    }
  return genFloatExpr(G, Depth);
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

void genGlobals(GenState &G) {
  const int Sizes[] = {64, 128, 256};
  unsigned NF = static_cast<unsigned>(G.R.range(2, 3));
  for (unsigned I = 0; I < NF; ++I) {
    ArrayInfo A;
    A.Name = "fa" + std::to_string(I);
    A.Size = Sizes[G.R.below(3)];
    A.IsFloat = true;
    G.Arrays.push_back(A);
    G.line("float " + A.Name + "[" + std::to_string(A.Size) + "];");
  }
  unsigned NI = static_cast<unsigned>(G.R.range(1, 2));
  for (unsigned I = 0; I < NI; ++I) {
    ArrayInfo A;
    A.Name = "ia" + std::to_string(I);
    A.Size = Sizes[G.R.below(2)];
    A.IsFloat = false;
    G.Arrays.push_back(A);
    G.line("int " + A.Name + "[" + std::to_string(A.Size) + "];");
  }
  if (G.R.chance(50)) {
    ArrayInfo A;
    A.Name = "m0";
    A.Cols = 8;
    A.Size = 64;
    A.IsFloat = true;
    G.Arrays.push_back(A);
    G.line("float m0[8][8];");
  }
  for (unsigned I = 0; I < 2; ++I) {
    ScalarInfo S;
    S.Name = "gf" + std::to_string(I);
    S.IsFloat = true;
    G.Scalars.push_back(S);
    G.line("float " + S.Name + ";");
  }
  for (unsigned I = 0; I < 2; ++I) {
    ScalarInfo S;
    S.Name = "gi" + std::to_string(I);
    S.IsFloat = false;
    G.Scalars.push_back(S);
    G.line("int " + S.Name + ";");
  }
}

void genLeaf(GenState &G, unsigned Index) {
  LeafInfo L;
  L.IsFloat = G.R.chance(60);
  if (L.IsFloat) {
    L.Name = "leaf" + std::to_string(Index);
    L.ParamFB = {64.0, 6};
    GenState Body(G.R.next(), G.Opts); // leaf bodies see only their params
    Body.Scalars.push_back({"x", true, L.ParamFB, {}});
    Body.Scalars.push_back({"y", true, L.ParamFB, {}});
    FExpr A = genFloatExpr(Body, 2);
    FExpr B = genFloatExpr(Body, 1);
    L.RetFB = fMax(A.B, B.B);
    G.line("float " + L.Name + "(float x, float y) {");
    G.line("  if (x > y)");
    G.line("    return " + A.Text + ";");
    G.line("  return " + B.Text + ";");
    G.line("}");
  } else {
    L.Name = "ileaf" + std::to_string(Index);
    L.ParamIB = 0xffff;
    GenState Body(G.R.next(), G.Opts);
    Body.Scalars.push_back({"a", false, {}, {L.ParamIB}});
    Body.Scalars.push_back({"b", false, {}, {L.ParamIB}});
    IExpr A = genIntExpr(Body, 2);
    L.RetIB = A.B;
    G.line("int " + L.Name + "(int a, int b) {");
    G.line("  return " + A.Text + ";");
    G.line("}");
  }
  G.Leaves.push_back(L);
}

//===----------------------------------------------------------------------===//
// Statement blocks
//===----------------------------------------------------------------------===//

ArrayInfo *pickArray(GenState &G, bool Float, bool Flat = true) {
  std::vector<ArrayInfo *> Cands;
  for (ArrayInfo &A : G.Arrays)
    if (A.IsFloat == Float && (!Flat || A.Cols == 0))
      Cands.push_back(&A);
  if (Cands.empty())
    return nullptr;
  return Cands[G.R.below(Cands.size())];
}

void genInitLoops(GenState &G) {
  for (ArrayInfo &A : G.Arrays) {
    if (A.Cols != 0) {
      G.line("  for (i = 0; i < 8; i++) {");
      G.line("    for (j = 0; j < 8; j++) {");
      G.line("      m0[i][j] = (i - j) * 0.25;");
      G.line("    }");
      G.line("  }");
      A.FB = {2.0, 2};
      continue;
    }
    std::string N = std::to_string(A.Size);
    if (A.IsFloat) {
      int64_t Mask = 15 + 16 * G.R.below(2); // 15 or 31
      G.line("  for (i = 0; i < " + N + "; i++) {");
      G.line("    " + A.Name + "[i] = (i & " + std::to_string(Mask) +
             ") * 0.25;");
      G.line("  }");
      A.FB = {static_cast<double>(Mask) * 0.25, 2};
    } else {
      int64_t Mul = G.R.range(1, 7);
      int64_t Mask = pickMask(G);
      G.line("  for (i = 0; i < " + N + "; i++) {");
      G.line("    " + A.Name + "[i] = (i * " + std::to_string(Mul) + ") & " +
             std::to_string(Mask) + ";");
      G.line("  }");
      A.IB = {std::min(static_cast<int64_t>(A.Size - 1) * Mul, Mask)};
    }
  }
}

/// Elementwise float loop, optionally guarded, optionally compound-assign.
void genElementwiseFloat(GenState &G) {
  ArrayInfo *Dst = pickArray(G, true);
  if (!Dst)
    return;
  int N = Dst->Size;
  if (G.R.chance(30))
    N = std::min(N, static_cast<int>(G.R.range(8, 64)));
  G.LoopVars.push_back({"i", N});
  FExpr E = genFloatExprOrCall(G, 2);
  bool Guard = G.R.chance(30);
  bool Compound = !Guard && G.R.chance(25);
  G.line("  for (i = 0; i < " + std::to_string(N) + "; i++) {");
  if (Guard) {
    IExpr C = genIntExpr(G, 1);
    G.line("    if (" + C.Text + " & 1) {");
    G.line("      " + Dst->Name + "[i] = " + E.Text + ";");
    G.line("    }");
    Dst->FB = fMax(Dst->FB, E.B);
  } else if (Compound) {
    FBound FB = fAdd(Dst->FB, E.B);
    if (FB.exact()) {
      G.line("    " + Dst->Name + "[i] += " + E.Text + ";");
      Dst->FB = FB;
    } else {
      G.line("    " + Dst->Name + "[i] = " + E.Text + ";");
      Dst->FB = (N >= Dst->Size) ? E.B : fMax(Dst->FB, E.B);
    }
  } else {
    G.line("    " + Dst->Name + "[i] = " + E.Text + ";");
    Dst->FB = (N >= Dst->Size) ? E.B : fMax(Dst->FB, E.B);
  }
  G.line("  }");
  G.LoopVars.pop_back();
}

/// While pointer-walk (the paper's Section 5 conversion shape).
void genPointerWalk(GenState &G) {
  ArrayInfo *Dst = pickArray(G, true);
  ArrayInfo *Src = pickArray(G, true);
  if (!Dst || !Src || Dst == Src)
    return;
  int N = std::min(Dst->Size, Src->Size);
  double C = static_cast<double>(G.R.range(-8, 8)) * 0.25;
  FBound FB = fAdd(Src->FB, {std::fabs(C), 2});
  if (!FB.exact())
    return;
  G.line("  p = " + Dst->Name + ";");
  G.line("  q = " + Src->Name + ";");
  G.line("  n = " + std::to_string(N) + ";");
  bool DoWhile = G.R.chance(30);
  const char *Op = G.R.chance(50) ? " + " : " - ";
  std::string Body = "*p++ = *q++" + std::string(Op) + fmtFloat(C) + ";";
  if (DoWhile) {
    G.line("  do {");
    G.line("    " + Body);
    G.line("    n--;");
    G.line("  } while (n);");
  } else {
    G.line("  while (n) {");
    G.line("    " + Body);
    G.line("    n--;");
    G.line("  }");
  }
  Dst->FB = (N >= Dst->Size) ? FB : fMax(Dst->FB, FB);
}

/// Two pointers into the SAME array, reader offset ahead of the writer:
/// `p = &a[0]; q = &a[k]; *p++ = *q++ + c;` for Size-k steps.  Every read
/// lands on a not-yet-written element, so values stay exact while the
/// dependence analysis has to reason about may-alias pointer pairs.
void genAliasedOffsetWalk(GenState &G) {
  ArrayInfo *A = pickArray(G, true);
  if (!A)
    return;
  int K = static_cast<int>(G.R.range(1, 8));
  int N = A->Size - K;
  double C = static_cast<double>(G.R.range(-8, 8)) * 0.25;
  FBound FB = fAdd(A->FB, {std::fabs(C), 2});
  if (!FB.exact())
    return;
  G.line("  p = &" + A->Name + "[0];");
  G.line("  q = &" + A->Name + "[" + std::to_string(K) + "];");
  G.line("  n = " + std::to_string(N) + ";");
  G.line("  while (n) {");
  G.line("    *p++ = *q++ + " + fmtFloat(C) + ";");
  G.line("    n--;");
  G.line("  }");
  A->FB = fMax(A->FB, FB);
}

/// A pointer bound to one of two arrays by a runtime condition, then an
/// elementwise store loop through it.  The points-to set of `p` carries
/// both arrays, so a sound analysis must treat either as written.
void genPointerSelectLoop(GenState &G) {
  ArrayInfo *A = pickArray(G, true);
  ArrayInfo *B = pickArray(G, true);
  if (!A || !B || A == B)
    return;
  G.LoopVars.push_back({"i", std::min(A->Size, B->Size)});
  FExpr E = genFloatExpr(G, 1);
  G.LoopVars.pop_back();
  int N = std::min(A->Size, B->Size);
  IExpr Cond = genIntExpr(G, 1);
  G.line("  if (" + Cond.Text + " & 1) {");
  G.line("    p = " + A->Name + ";");
  G.line("  } else {");
  G.line("    p = " + B->Name + ";");
  G.line("  }");
  G.line("  for (i = 0; i < " + std::to_string(N) + "; i++) {");
  G.line("    p[i] = " + E.Text + ";");
  G.line("  }");
  // Either array may have been written: widen both bounds.
  A->FB = fMax(A->FB, E.B);
  B->FB = fMax(B->FB, E.B);
}

/// Disjoint halves of one array through two pointers:
/// `p = &a[0]; q = &a[half]; p[i] = q[i] * c;`.  Truly conflict-free,
/// but both pointers share a base object — the shape a points-to
/// analysis alone cannot disambiguate.
void genSplitHalvesWalk(GenState &G) {
  ArrayInfo *A = pickArray(G, true);
  if (!A)
    return;
  int Half = A->Size / 2;
  struct {
    const char *Text;
    double Mul;
    int GranShift;
  } Consts[] = {{" * 0.50", 0.5, 1}, {" * 2.00", 2.0, 0},
                {" * 0.25", 0.25, 2}};
  auto &C = Consts[G.R.below(3)];
  FBound FB = {A->FB.Bound * C.Mul, A->FB.Gran + C.GranShift};
  if (!FB.exact())
    return;
  G.line("  p = &" + A->Name + "[0];");
  G.line("  q = &" + A->Name + "[" + std::to_string(Half) + "];");
  G.line("  for (i = 0; i < " + std::to_string(Half) + "; i++) {");
  G.line("    p[i] = q[i]" + std::string(C.Text) + ";");
  G.line("  }");
  A->FB = fMax(A->FB, FB);
}

/// Masked int reduction into a global scalar (do-while or for).
void genIntReduction(GenState &G) {
  ArrayInfo *Src = pickArray(G, false);
  ScalarInfo *Dst = nullptr;
  for (ScalarInfo &S : G.Scalars)
    if (!S.IsFloat && (!Dst || G.R.chance(50)))
      Dst = &S;
  if (!Src || !Dst)
    return;
  int64_t M = pickMask(G);
  G.line("  t = 0;");
  G.line("  for (i = 0; i < " + std::to_string(Src->Size) + "; i++) {");
  G.line("    t = (t + " + Src->Name + "[i]) & " + std::to_string(M) + ";");
  G.line("  }");
  G.line("  " + Dst->Name + " = t;");
  Dst->IB = {M};
}

/// Float reduction, trip count capped so the sum stays exact.
void genFloatReduction(GenState &G) {
  ArrayInfo *Src = pickArray(G, true);
  ScalarInfo *Dst = nullptr;
  for (ScalarInfo &S : G.Scalars)
    if (S.IsFloat && (!Dst || G.R.chance(50)))
      Dst = &S;
  if (!Src || !Dst)
    return;
  int N = Src->Size;
  FBound Sum = {Src->FB.Bound * N, Src->FB.Gran};
  while (N > 8 && !Sum.exact()) {
    N /= 2;
    Sum = {Src->FB.Bound * N, Src->FB.Gran};
  }
  if (!Sum.exact())
    return;
  G.line("  acc = 0.00;");
  G.line("  for (i = 0; i < " + std::to_string(N) + "; i++) {");
  G.line("    acc = acc + " + Src->Name + "[i];");
  G.line("  }");
  G.line("  " + Dst->Name + " = acc;");
  Dst->FB = Sum;
}

/// Nested loop over the 2D array (array-of-array indexing).
void gen2D(GenState &G) {
  ArrayInfo *M = nullptr;
  for (ArrayInfo &A : G.Arrays)
    if (A.Cols != 0)
      M = &A;
  if (!M)
    return;
  G.LoopVars.push_back({"i", 8});
  G.LoopVars.push_back({"j", 8});
  FExpr E = genFloatExpr(G, 1);
  FBound FB = fAdd(M->FB, E.B);
  G.LoopVars.pop_back();
  G.LoopVars.pop_back();
  if (!FB.exact())
    return;
  G.line("  for (i = 0; i < 8; i++) {");
  G.line("    for (j = 0; j < 8; j++) {");
  G.line("      m0[i][j] = m0[j][i] + " + E.Text + ";");
  G.line("    }");
  G.line("  }");
  M->FB = FB;
}

/// Scalar control flow: if/else with a short-circuit condition.
void genScalarIf(GenState &G) {
  IExpr A = genIntExpr(G, 1), B = genIntExpr(G, 1);
  IExpr V1 = genIntExprOrCall(G, 2), V2 = genIntExpr(G, 2);
  ScalarInfo *Dst = nullptr;
  for (ScalarInfo &S : G.Scalars)
    if (!S.IsFloat && (!Dst || G.R.chance(50)))
      Dst = &S;
  if (!Dst)
    return;
  const char *Join = G.R.chance(50) ? " && " : " || ";
  G.line("  if (" + A.Text + " > 3" + Join + B.Text + " != 0) {");
  G.line("    " + Dst->Name + " = " + V1.Text + ";");
  G.line("  } else {");
  G.line("    " + Dst->Name + " = " + V2.Text + ";");
  G.line("  }");
  Dst->IB = {std::max(V1.B.Bound, V2.B.Bound)};
}

/// Int elementwise loop with break/continue.
void genIntLoop(GenState &G) {
  ArrayInfo *Dst = pickArray(G, false);
  if (!Dst)
    return;
  int N = Dst->Size;
  G.LoopVars.push_back({"i", N});
  IExpr E = genIntExprOrCall(G, 2);
  bool BreakContinue = G.R.chance(40);
  G.line("  for (i = 0; i < " + std::to_string(N) + "; i++) {");
  if (BreakContinue) {
    G.line("    if (" + Dst->Name + "[i] & " +
           std::to_string(1 << G.R.range(0, 3)) + ") {");
    G.line("      continue;");
    G.line("    }");
    G.line("    if (i > " + std::to_string(G.R.range(8, N - 1)) + ") {");
    G.line("      break;");
    G.line("    }");
  }
  G.line("    " + Dst->Name + "[i] = " + E.Text + ";");
  G.line("  }");
  G.LoopVars.pop_back();
  Dst->IB = {std::max(Dst->IB.Bound, E.B.Bound)};
}

/// Leaf-call loop: stores through a generated leaf function.
void genCallLoop(GenState &G) {
  const LeafInfo *L = nullptr;
  for (const LeafInfo &Leaf : G.Leaves)
    if (Leaf.IsFloat && (!L || G.R.chance(50)))
      L = &Leaf;
  ArrayInfo *Dst = pickArray(G, true);
  ArrayInfo *Src = pickArray(G, true);
  if (!L || !Dst || !Src)
    return;
  if (Src->FB.Bound > L->ParamFB.Bound || Src->FB.Gran > L->ParamFB.Gran)
    return;
  int N = std::min(Dst->Size, Src->Size);
  double C = static_cast<double>(G.R.range(0, 16)) * 0.25;
  G.line("  for (i = 0; i < " + std::to_string(N) + "; i++) {");
  G.line("    " + Dst->Name + "[i] = " + L->Name + "(" + Src->Name +
         "[i], " + fmtFloat(C) + ");");
  G.line("  }");
  Dst->FB = (N >= Dst->Size) ? L->RetFB : fMax(Dst->FB, L->RetFB);
}

void genChecksums(GenState &G) {
  // Fold every int array through the masked-accumulate idiom, and pin a
  // couple of float elements into scalars; the oracle compares all of
  // global memory anyway, so these exist to exercise reductions and give
  // a human a one-glance summary.
  bool First = true;
  for (const ArrayInfo &A : G.Arrays) {
    if (A.IsFloat)
      continue;
    G.line(First ? "  t = 0;" : "  t = t;");
    First = false;
    G.line("  for (i = 0; i < " + std::to_string(A.Size) + "; i++) {");
    G.line("    t = (t + " + A.Name + "[i]) & 16777215;");
    G.line("  }");
  }
  if (!First)
    G.line("  gi1 = t;");
  const ArrayInfo *FA = nullptr;
  for (const ArrayInfo &A : G.Arrays)
    if (A.IsFloat && A.Cols == 0) {
      FA = &A;
      break;
    }
  if (FA) {
    FBound FB = fAdd(FA->FB, FA->FB);
    if (FB.exact())
      G.line("  gf1 = " + FA->Name + "[1] + " + FA->Name + "[" +
             std::to_string(FA->Size - 2) + "];");
    else
      G.line("  gf1 = " + FA->Name + "[1];");
  }
}

} // namespace

uint64_t fuzz::programSeed(uint64_t CampaignSeed, uint64_t Index) {
  // One splitmix step over the XOR keeps neighboring indices decorrelated
  // while staying independent of shard partitioning.
  Rng R(CampaignSeed ^ (Index * 0x9e3779b97f4a7c15ull));
  return R.next();
}

GenProgram fuzz::generateProgram(uint64_t Seed, const GenOptions &Opts) {
  GenState G(Seed, Opts);
  G.line("/* tcc-fuzz seed=" + std::to_string(Seed) + " */");
  genGlobals(G);

  unsigned NLeaves = static_cast<unsigned>(
      G.R.below(static_cast<uint64_t>(Opts.MaxLeafFunctions) + 1));
  for (unsigned I = 0; I < NLeaves; ++I)
    genLeaf(G, I);

  G.line("void main() {");
  G.line("  int i; int j; int n; int t;");
  G.line("  float acc;");
  G.line("  float *p; float *q;");
  G.line("  t = " + std::to_string(G.R.range(0, 31)) + ";");
  G.line("  acc = 0.00;");
  G.line("  n = 0;");
  G.line("  j = 0;");
  genInitLoops(G);

  unsigned Blocks = static_cast<unsigned>(
      G.R.range(Opts.MinBlocks, Opts.MaxBlocks));
  for (unsigned I = 0; I < Blocks; ++I) {
    switch (G.R.below(11)) {
    case 0:
      genElementwiseFloat(G);
      break;
    case 1:
      genPointerWalk(G);
      break;
    case 2:
      genIntReduction(G);
      break;
    case 3:
      genFloatReduction(G);
      break;
    case 4:
      gen2D(G);
      break;
    case 5:
      genScalarIf(G);
      break;
    case 6:
      genIntLoop(G);
      break;
    case 7:
      genAliasedOffsetWalk(G);
      break;
    case 8:
      genPointerSelectLoop(G);
      break;
    case 9:
      genSplitHalvesWalk(G);
      break;
    default:
      genCallLoop(G);
      break;
    }
  }

  genChecksums(G);
  G.line("}");

  GenProgram P;
  P.Seed = Seed;
  for (const ArrayInfo &A : G.Arrays)
    P.Globals.push_back(A.Name);
  for (const ScalarInfo &S : G.Scalars)
    P.Globals.push_back(S.Name);
  for (const std::string &L : G.Lines) {
    P.Source += L;
    P.Source += '\n';
  }
  return P;
}
