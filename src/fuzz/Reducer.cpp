#include "fuzz/Reducer.h"

#include <cctype>
#include <vector>

using namespace tcc;
using namespace tcc::fuzz;

namespace {

std::vector<std::string> splitLines(const std::string &S) {
  std::vector<std::string> Lines;
  std::string Cur;
  for (char C : S) {
    if (C == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Lines.push_back(Cur);
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines,
                      const std::vector<bool> &Keep) {
  std::string Out;
  for (size_t I = 0; I < Lines.size(); ++I)
    if (Keep[I]) {
      Out += Lines[I];
      Out += '\n';
    }
  return Out;
}

/// Cheap structural prefilter: braces must stay balanced and never go
/// negative, or the candidate cannot parse and the oracle check would be
/// wasted.
bool bracesBalanced(const std::string &S) {
  int Depth = 0;
  for (char C : S) {
    if (C == '{')
      ++Depth;
    else if (C == '}' && --Depth < 0)
      return false;
  }
  return Depth == 0;
}

/// The reduction driver state: the oracle configuration of the original
/// finding plus the check budget.
struct Shrinker {
  const std::string &Spec;
  DivergenceClass Class;
  const OracleOptions &Opts;
  const ReduceOptions &ROpts;
  unsigned Checks = 0;

  bool budgetLeft() const { return Checks < ROpts.MaxChecks; }

  /// The interestingness test: same class, same spec, reference intact.
  bool interesting(const std::string &Candidate) {
    if (!budgetLeft())
      return false;
    ++Checks;
    VariantResult R = checkVariant(Candidate, Spec, Opts);
    return R.Class == Class && R.FaultPass != "reference";
  }
};

/// Statement-level ddmin over lines: delete chunks of halving size,
/// keeping any deletion that stays interesting.  Returns true when
/// anything was removed.
bool ddminLines(std::vector<std::string> &Lines, Shrinker &S) {
  bool Changed = false;
  std::vector<bool> Keep(Lines.size(), true);
  size_t Live = Lines.size();
  for (size_t Chunk = std::max<size_t>(Live / 2, 1); Chunk >= 1;
       Chunk = (Chunk == 1 ? 0 : Chunk / 2)) {
    bool Removed = true;
    while (Removed && S.budgetLeft()) {
      Removed = false;
      for (size_t Start = 0; Start < Lines.size(); Start += Chunk) {
        if (!S.budgetLeft())
          break;
        // Tentatively drop [Start, Start+Chunk) of the *kept* view.
        std::vector<bool> Trial = Keep;
        bool Any = false;
        for (size_t I = Start; I < std::min(Start + Chunk, Lines.size());
             ++I)
          if (Trial[I]) {
            Trial[I] = false;
            Any = true;
          }
        if (!Any)
          continue;
        std::string Candidate = joinLines(Lines, Trial);
        if (!bracesBalanced(Candidate))
          continue;
        if (S.interesting(Candidate)) {
          Keep = Trial;
          Removed = true;
          Changed = true;
        }
      }
    }
    if (Chunk == 0)
      break;
  }
  std::vector<std::string> Out;
  for (size_t I = 0; I < Lines.size(); ++I)
    if (Keep[I])
      Out.push_back(Lines[I]);
  Lines = Out;
  return Changed;
}

/// Replaces the numeric literal starting at \p Pos in \p Line with \p
/// Repl; returns the new line.
std::string spliceLiteral(const std::string &Line, size_t Pos, size_t Len,
                          const std::string &Repl) {
  return Line.substr(0, Pos) + Repl + Line.substr(Pos + Len);
}

/// Operand-level pass: shrink numeric literals toward 0/1 (floats toward
/// 0.00/0.25), one at a time, re-checking each splice.  Shrinking can
/// only tighten index and trip-count bounds, so candidates stay
/// well-defined.  Returns true when anything changed.
bool shrinkLiterals(std::vector<std::string> &Lines, Shrinker &S) {
  bool Changed = false;
  for (size_t LI = 0; LI < Lines.size() && S.budgetLeft(); ++LI) {
    std::string &Line = Lines[LI];
    for (size_t Pos = 0; Pos < Line.size() && S.budgetLeft();) {
      if (!std::isdigit(static_cast<unsigned char>(Line[Pos])) ||
          (Pos > 0 && (std::isalnum(static_cast<unsigned char>(
                           Line[Pos - 1])) ||
                       Line[Pos - 1] == '_' || Line[Pos - 1] == '.'))) {
        ++Pos;
        continue;
      }
      size_t End = Pos;
      bool IsFloat = false;
      while (End < Line.size() &&
             (std::isdigit(static_cast<unsigned char>(Line[End])) ||
              Line[End] == '.')) {
        if (Line[End] == '.')
          IsFloat = true;
        ++End;
      }
      std::string Tok = Line.substr(Pos, End - Pos);
      const char *Candidates[2];
      if (IsFloat) {
        Candidates[0] = "0.00";
        Candidates[1] = "0.25";
      } else {
        Candidates[0] = "0";
        Candidates[1] = "1";
      }
      bool Replaced = false;
      for (const char *Repl : Candidates) {
        if (Tok == Repl)
          break;
        std::string NewLine = spliceLiteral(Line, Pos, Tok.size(), Repl);
        std::vector<std::string> Trial = Lines;
        Trial[LI] = NewLine;
        std::vector<bool> All(Trial.size(), true);
        if (S.interesting(joinLines(Trial, All))) {
          Line = NewLine;
          Changed = true;
          Replaced = true;
          Pos += std::string(Repl).size();
          break;
        }
      }
      if (!Replaced)
        Pos = End;
    }
  }
  return Changed;
}

} // namespace

ReduceResult fuzz::reduceSource(const std::string &Source,
                                const std::string &Spec,
                                DivergenceClass Class,
                                const OracleOptions &Opts,
                                const ReduceOptions &ROpts) {
  ReduceResult Out;
  std::vector<std::string> Lines = splitLines(Source);
  Out.OriginalLines = Lines.size();

  Shrinker S{Spec, Class, Opts, ROpts};
  if (!S.interesting(Source)) {
    // Not interesting on entry: echo back unreduced.
    Out.Source = Source;
    Out.ReducedLines = Lines.size();
    Out.Checks = S.Checks;
    return Out;
  }

  bool Changed = true;
  unsigned Round = 0;
  while (Changed && Round < ROpts.MaxRounds && S.budgetLeft()) {
    ++Round;
    Changed = false;
    if (ddminLines(Lines, S))
      Changed = true;
    if (shrinkLiterals(Lines, S))
      Changed = true;
  }

  std::vector<bool> All(Lines.size(), true);
  Out.Source = joinLines(Lines, All);
  Out.ReducedLines = Lines.size();
  Out.Checks = S.Checks;
  // A fixed point requires a full sweep that changed nothing AND budget
  // to spare — a sweep aborted by the check budget proves nothing.
  Out.Converged = !Changed && S.budgetLeft();
  return Out;
}
