#include "fuzz/Campaign.h"

#include "pipeline/PassRegistry.h"
#include "support/FaultInjection.h"
#include "support/JSONWriter.h"
#include "support/WorkerPool.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

using namespace tcc;
using namespace tcc::fuzz;

unsigned CampaignResult::unreduced() const {
  unsigned N = 0;
  for (const Finding &F : Findings)
    if (!F.Reduced)
      ++N;
  return N;
}

bool CampaignResult::anyQuarantinedShard() const {
  for (const ShardReport &S : Shards)
    if (S.Quarantined)
      return true;
  return false;
}

namespace {

/// Per-program sweep outcome, written only by the owning shard.
struct RawOutcome {
  bool Skipped = false;  ///< Shard quarantined before reaching it.
  bool Crashed = false;  ///< The oracle run threw.
  bool RefFail = false;  ///< -O0 rejected the generated program.
  bool HasFinding = false;
  uint64_t Seed = 0;
  std::string Source;
  std::string Error;     ///< Crash / reference-failure text.
  VariantResult Bad;     ///< The worst variant, when HasFinding.
};

std::string fileSafe(const std::string &Name) {
  std::string Out;
  for (char C : Name)
    Out += (std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
            C == '-')
               ? C
               : '_';
  return Out.empty() ? std::string("anon") : Out;
}

std::string oneLine(std::string S) {
  for (char &C : S)
    if (C == '\n' || C == '\r')
      C = ' ';
  return S;
}

size_t countLines(const std::string &S) {
  size_t N = 0;
  for (char C : S)
    if (C == '\n')
      ++N;
  return N;
}

} // namespace

CampaignResult fuzz::runCampaign(const CampaignOptions &Opts,
                                 DiagnosticEngine &Diags) {
  CampaignResult Out;
  Out.Programs = Opts.Programs;

  // Campaign-level injector: consulted once per shard (site "fuzz", unit
  // "shard<k>").  Pass-level specs in the same string are armed here too
  // but never match the fuzz site; they reach the compiles through
  // OracleOptions::FaultInject instead.
  FaultInjector ShardFaults;
  if (!Opts.FaultInject.empty() &&
      !ShardFaults.addSpecs(Opts.FaultInject, Diags))
    return Out;

  const uint64_t P = Opts.Programs;
  const unsigned W =
      resolveWorkerCount(Opts.Shards, static_cast<size_t>(std::max<uint64_t>(P, 1)));
  Out.Shards.resize(W);

  std::vector<RawOutcome> Raw(P);
  const auto Start = std::chrono::steady_clock::now();

  runIndexed(W, W, [&](size_t S) {
    ShardReport &Rep = Out.Shards[S];
    Rep.First = P * S / W;
    const uint64_t End = P * (S + 1) / W;
    Rep.Count = End - Rep.First;

    if (const FaultSpec *F =
            ShardFaults.arm("fuzz", "shard" + std::to_string(S))) {
      // Drive the real throw path so the containment below is the one
      // a genuinely wedged shard would exercise.
      Rep.Quarantined = true;
      try {
        throwInjectedFault(*F);
        Rep.Error = "injected " + F->str();
      } catch (const std::exception &E) {
        Rep.Error = oneLine(E.what());
      } catch (...) {
        Rep.Error = "injected non-standard exception";
      }
      for (uint64_t I = Rep.First; I < End; ++I) {
        Raw[I].Skipped = true;
        Raw[I].Seed = programSeed(Opts.Seed, I);
      }
      return;
    }

    for (uint64_t I = Rep.First; I < End; ++I) {
      RawOutcome &R = Raw[I];
      R.Seed = programSeed(Opts.Seed, I);
      try {
        GenProgram Prog = generateProgram(R.Seed, Opts.Gen);
        R.Source = Prog.Source;
        OracleOptions OO = Opts.Oracle;
        OO.SampleSeed = R.Seed;
        OO.FaultInject = Opts.FaultInject;
        OO.ReproDir.clear(); // scan phase never writes sandbox bundles
        OracleResult OR = runOracle(R.Source, OO);
        if (!OR.RefOk) {
          R.RefFail = true;
          R.Error = OR.RefError;
          continue;
        }
        if (const VariantResult *Bad = OR.firstBad()) {
          R.HasFinding = true;
          R.Bad = *Bad;
        }
      } catch (const std::exception &E) {
        R.Crashed = true;
        R.Error = oneLine(E.what());
        ++Rep.Crashes;
      } catch (...) {
        R.Crashed = true;
        R.Error = "non-standard exception";
        ++Rep.Crashes;
      }
    }
  });

  // Sequential post-processing in index order: dedup, bisect, reduce,
  // bundle — identical output for every shard count.
  std::set<std::string> Seen;
  std::vector<size_t> FindingIndex; // signature order -> Findings slot
  for (uint64_t I = 0; I < P; ++I) {
    RawOutcome &R = Raw[I];
    if (R.Skipped)
      continue;
    ++Out.Executed;
    if (R.Crashed) {
      ++Out.Crashed;
      continue;
    }
    if (R.RefFail) {
      ++Out.RefFailures;
      continue;
    }
    if (!R.HasFinding)
      continue;
    ++Out.Divergent;

    OracleOptions OO = Opts.Oracle;
    OO.SampleSeed = R.Seed;
    OO.FaultInject = Opts.FaultInject;
    OO.ReproDir.clear();

    std::string Culprit = R.Bad.FaultPass;
    if (R.Bad.Class == DivergenceClass::OutputDivergence)
      Culprit = bisectCulprit(R.Source, R.Bad.Spec, R.Bad.Class, OO);
    if (Culprit.empty())
      Culprit = "codegen";

    const std::string Sig =
        std::string(divergenceClassName(R.Bad.Class)) + "|" + Culprit;
    auto Inserted = Seen.insert(Sig);
    if (!Inserted.second) {
      for (size_t FI : FindingIndex)
        if (Out.Findings[FI].Signature == Sig) {
          ++Out.Findings[FI].Hits;
          break;
        }
      continue;
    }

    Finding F;
    F.Seed = R.Seed;
    F.Class = R.Bad.Class;
    F.Signature = Sig;
    F.Spec = R.Bad.Spec;
    F.Detail = R.Bad.Detail;
    F.CulpritPass = Culprit;
    F.FaultKind = R.Bad.FaultKind;
    F.Source = R.Source;
    F.OriginalLines = countLines(R.Source);
    F.ReducedLines = F.OriginalLines;

    if (Opts.ReduceFindings) {
      ReduceResult RR =
          reduceSource(R.Source, R.Bad.Spec, R.Bad.Class, OO, Opts.Reduce);
      F.Source = RR.Source;
      F.ReducedLines = RR.ReducedLines;
      F.ReduceChecks = RR.Checks;
      F.Reduced = RR.Converged;
    }

    if (!Opts.ReproDir.empty())
      F.BundlePath = writeFindingBundle(F, Opts.ReproDir, Opts, Diags);

    FindingIndex.push_back(Out.Findings.size());
    Out.Findings.push_back(std::move(F));
  }

  Out.Seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  if (Out.Seconds > 0.0)
    Out.ProgramsPerSec = static_cast<double>(Out.Executed) / Out.Seconds;
  if (Out.Executed > 0)
    Out.YieldPer10k = static_cast<double>(Out.Findings.size()) * 10000.0 /
                      static_cast<double>(Out.Executed);
  if (!Out.Findings.empty()) {
    double Sum = 0.0;
    for (const Finding &F : Out.Findings)
      Sum += F.OriginalLines == 0
                 ? 1.0
                 : static_cast<double>(F.ReducedLines) /
                       static_cast<double>(F.OriginalLines);
    Out.MeanReductionRatio = Sum / static_cast<double>(Out.Findings.size());
  }

  if (!Opts.BenchPath.empty())
    appendCampaignRow(Opts.BenchPath, Opts, Out);
  return Out;
}

std::string fuzz::writeFindingBundle(const Finding &F,
                                     const std::string &ReproDir,
                                     const CampaignOptions &Opts,
                                     DiagnosticEngine &Diags) {
  std::error_code EC;
  std::filesystem::create_directories(ReproDir, EC);
  if (EC) {
    Diags.warning(SourceLoc(), "cannot create fuzz repro directory '" +
                                   ReproDir + "': " + EC.message());
    return "";
  }

  // The bundle payload IL: the whole-program "main" immediately before
  // the culprit pass (re-derived from the reduced source so the bundle
  // is self-consistent).  Falls back to the unoptimized IL.
  OracleOptions OO = Opts.Oracle;
  OO.SampleSeed = F.Seed;
  OO.FaultInject = Opts.FaultInject;
  OO.ReproDir.clear();
  std::string PrefixSpec;
  if (F.Class == DivergenceClass::OutputDivergence)
    bisectCulprit(F.Source, F.Spec, F.Class, OO, &PrefixSpec);
  else {
    // Prefix of the variant spec up to (excluding) the faulting pass.
    std::vector<std::string> Passes = pipeline::splitSpec(F.Spec);
    std::vector<std::string> Prefix;
    for (const std::string &Pass : Passes) {
      if (Pass == F.CulpritPass)
        break;
      Prefix.push_back(Pass);
    }
    PrefixSpec = pipeline::joinSpec(Prefix);
  }
  std::string IL = serializeProgramAfter(F.Source, PrefixSpec);
  if (IL.empty())
    IL = serializeProgramAfter(F.Source, "");
  if (IL.empty()) {
    Diags.warning(SourceLoc(),
                  "cannot serialize IL for fuzz finding " + F.Signature);
    return "";
  }

  const std::string Kind =
      F.Class == DivergenceClass::OutputDivergence
          ? std::string("divergence")
          : (F.FaultKind.empty() ? std::string(divergenceClassName(F.Class))
                                 : F.FaultKind);
  const std::string Path = ReproDir + "/fuzz-" +
                           fileSafe(divergenceClassName(F.Class)) + "-" +
                           fileSafe(F.CulpritPass) + "-" +
                           std::to_string(F.Seed) + ".repro";
  const std::string Temp = Path + ".tmp";
  {
    std::ofstream OS(Temp, std::ios::binary | std::ios::trunc);
    if (!OS) {
      Diags.warning(SourceLoc(),
                    "cannot write fuzz bundle '" + Temp + "'");
      return "";
    }
    driver::CompilerOptions VO = oracleVariantOptions(F.Spec, OO);
    OS << "tcc-repro v1\n";
    OS << "pass " << F.CulpritPass << '\n';
    OS << "function \"main\"\n";
    OS << "kind " << Kind << '\n';
    OS << "inject "
       << (Opts.FaultInject.empty() ? std::string("-") : Opts.FaultInject)
       << '\n';
    OS << "policy 1 " << VO.PassBudgetMs << ' ' << VO.StmtGrowthFactor << ' '
       << VO.StmtGrowthSlack << '\n';
    OS << "config " << driver::configFingerprint(VO) << '\n';
    OS << "description " << oneLine(F.Detail) << '\n';
    OS << "oracle " << divergenceClassName(F.Class) << '\n';
    OS << "spec " << F.Spec << '\n';
    std::string Src = F.Source;
    if (Src.empty() || Src.back() != '\n')
      Src += '\n'; // the loader resumes key parsing right after the payload
    OS << "csource " << Src.size() << '\n';
    OS << Src;
    OS << "il " << IL.size() << '\n';
    OS << IL << '\n';
    OS.flush();
    if (!OS) {
      Diags.warning(SourceLoc(),
                    "cannot write fuzz bundle '" + Temp + "'");
      std::remove(Temp.c_str());
      return "";
    }
  }
  if (std::rename(Temp.c_str(), Path.c_str()) != 0) {
    Diags.warning(SourceLoc(),
                  "cannot finalize fuzz bundle '" + Path + "'");
    std::remove(Temp.c_str());
    return "";
  }
  return Path;
}

bool fuzz::appendCampaignRow(const std::string &Path,
                             const CampaignOptions &Opts,
                             const CampaignResult &R) {
  std::ostringstream Row;
  json::JSONWriter W(Row, 0);
  W.beginObject();
  W.keyValue("bench", "fuzz");
  W.keyValue("seed", Opts.Seed);
  W.keyValue("programs", R.Programs);
  W.keyValue("executed", R.Executed);
  W.keyValue("shards", static_cast<uint64_t>(R.Shards.size()));
  W.keyValue("variants", Opts.Oracle.Variants);
  W.keyValue("wild_orders", Opts.Oracle.WildOrders);
  W.keyValue("seconds", R.Seconds);
  W.keyValue("programs_per_sec", R.ProgramsPerSec);
  W.keyValue("divergent_programs", R.Divergent);
  W.keyValue("unique_bugs", static_cast<uint64_t>(R.Findings.size()));
  W.keyValue("yield_per_10k", R.YieldPer10k);
  W.keyValue("mean_reduction_ratio", R.MeanReductionRatio);
  W.keyValue("unreduced", static_cast<uint64_t>(R.unreduced()));
  W.keyValue("ref_failures", R.RefFailures);
  W.keyValue("crashed_programs", R.Crashed);
  uint64_t Quarantined = 0;
  for (const ShardReport &S : R.Shards)
    if (S.Quarantined)
      ++Quarantined;
  W.keyValue("quarantined_shards", Quarantined);
  W.key("findings").beginArray();
  for (const Finding &F : R.Findings) {
    W.beginObject();
    W.keyValue("signature", F.Signature);
    W.keyValue("class", divergenceClassName(F.Class));
    W.keyValue("culprit", F.CulpritPass);
    W.keyValue("seed", F.Seed);
    W.keyValue("hits", F.Hits);
    W.keyValue("original_lines", static_cast<uint64_t>(F.OriginalLines));
    W.keyValue("reduced_lines", static_cast<uint64_t>(F.ReducedLines));
    W.keyValue("reduced", F.Reduced);
    W.keyValue("bundle", F.BundlePath);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return json::appendJsonLine(Path, Row.str());
}
