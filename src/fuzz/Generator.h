//===----------------------------------------------------------------------===//
///
/// \file
/// The tcc-fuzz program generator: seeded, deterministic generation of
/// well-defined C kernels over the subset the front end accepts.
///
/// Differential testing only works when the reference behavior is the
/// *only* admissible behavior, so every generated program is constructed
/// to have exactly one defined meaning:
///
///  - every integer expression is masked back into a small non-negative
///    range after each arithmetic step (the "defined overflow idiom" —
///    there is no unsigned type in the subset, so the generator never
///    lets a signed intermediate reach overflow);
///  - divisors are forced non-zero by construction (`(e & 7) + 1` or a
///    non-zero literal) and shift counts are literal constants in [0, 8];
///  - every floating-point value the program can compute is an exactly
///    representable dyadic rational: the generator tracks a conservative
///    (magnitude bound, granularity) pair per array and per expression
///    and refuses any operation whose worst case would not fit a float
///    mantissa, so constant folding in any precision, at any pass
///    position, must produce bit-identical memory;
///  - all array indices are literal-bounded loop variables or masked
///    expressions, so there are no out-of-bounds accesses;
///  - all loops have structurally bounded trip counts — a generated
///    program always terminates.
///
/// Shapes exercised (the front end's whole statement surface): for loops
/// over arrays, while/do-while pointer-walk conversion shapes,
/// induction-variable arithmetic, nested loops over array-of-array
/// globals, conditionals (including short-circuit operators), break /
/// continue, and calls into small generated leaf functions that the
/// inliner can expand.
///
/// Generation is a pure function of the seed: the same seed yields a
/// byte-identical program on every platform (the RNG is a fixed
/// splitmix64, never std::rand or libstdc++ distributions).
///
//===----------------------------------------------------------------------===//

#ifndef TCC_FUZZ_GENERATOR_H
#define TCC_FUZZ_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace tcc {
namespace fuzz {

/// The fixed splitmix64 stream: deterministic across platforms and
/// standard-library versions, which is what makes "same seed ->
/// byte-identical program" a testable contract.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, N); N must be non-zero.  Modulo bias is irrelevant
  /// for generation purposes and keeps the stream arithmetic exact.
  uint64_t below(uint64_t N) { return next() % N; }

  /// Uniform in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// True with probability Percent/100.
  bool chance(unsigned Percent) { return below(100) < Percent; }

private:
  uint64_t State;
};

/// Per-program generation knobs.  The defaults are the campaign shape;
/// tests shrink them for speed.
struct GenOptions {
  unsigned MinBlocks = 2; ///< Compute blocks in main, after array init.
  unsigned MaxBlocks = 5;
  unsigned MaxLeafFunctions = 2; ///< Callable leaf functions to generate.
};

/// One generated program plus the metadata the oracle and reducer need.
struct GenProgram {
  uint64_t Seed = 0;
  std::string Source;           ///< The rendered C text, one stmt per line.
  std::vector<std::string> Globals; ///< Observed global names, decl order.
};

/// Generates the program for \p Seed.  Pure: no global state, no clock,
/// no platform dependence.
GenProgram generateProgram(uint64_t Seed, const GenOptions &Opts = {});

/// Derives the per-program seed for campaign program \p Index — a mix of
/// the campaign seed and the index, so the program set is independent of
/// how a campaign is sharded.
uint64_t programSeed(uint64_t CampaignSeed, uint64_t Index);

} // namespace fuzz
} // namespace tcc

#endif // TCC_FUZZ_GENERATOR_H
