//===----------------------------------------------------------------------===//
///
/// \file
/// The ablation sweep: compiles the bench kernels under enumerated
/// pipeline specs (leave-one-out, prefix chain, user-supplied subsets or
/// permutations of the registered pass names), runs each build on the
/// Titan simulator, and attributes cycles / MFLOPS / vector instructions
/// / compile time to individual passes by diffing each ablated spec
/// against the full pipeline.
///
/// Attribution uses a two-sample Shapley estimate.  A pass's
/// leave-one-out marginal (full vs full-minus-pass) measures *necessity*
/// and over-credits enabler passes: removing while->DO conversion also
/// destroys everything vectorization would have bought, so whiletodo's
/// leave-one-out delta absorbs the vectorizer's win.  The prefix
/// marginal (prefix through the pass vs prefix before it) measures the
/// pass's *in-order increment* and under-credits enablers symmetrically.
/// Averaging the two — the pass's marginal contribution in the pipeline
/// permutation and in the permutation where it comes last — assigns the
/// vectorization win to the vectorize pass while still paying enablers
/// their own share, which is what makes the ranking table actionable for
/// pass-order autotuning (the NeuroVectorizer-style search loop the
/// ROADMAP points at).
///
/// Sweeps run (kernel x spec) cells on a worker pool (the catalog
/// builder's shared-cursor pattern), honor the compile cache per cell,
/// and route every compile through the pass sandbox: a faulting spec is
/// reported as a failed cell, not a dead sweep.  Results land in
/// BENCH_ablation.json as JSON Lines (one "cell" row per measurement,
/// one "attribution" row per (kernel, pass)), appended line-atomically
/// with the same conventions as bench/BenchCommon.h.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_ABLATE_ABLATE_H
#define TCC_ABLATE_ABLATE_H

#include "ablate/Kernels.h"
#include "dependence/DependenceAnalysis.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace tcc {
namespace ablate {

/// Which family of pipeline specs the sweep enumerates.
enum class SweepMode : uint8_t {
  /// full + one spec per pass with that pass removed + the prefix chain
  /// (both marginals of the two-sample Shapley estimate).
  LeaveOneOut,
  /// The prefix chain only: specs of length 0..N in pipeline order.
  Prefix,
  /// User-supplied specs, each diffed against the full pipeline.
  Custom,
};

const char *sweepModeName(SweepMode M);

/// One pipeline configuration the sweep compiles.
struct SpecCell {
  std::string Id;   ///< "full", "-vectorize", "prefix:3", "custom:0".
  std::string Spec; ///< Comma-joined -passes= spec ("" = no-opt baseline).
  std::string Ablated; ///< Leave-one-out cells: the removed pass.
  int PrefixLen = -1;  ///< Prefix cells: number of passes included.
};

/// One measured (kernel, spec) cell.
struct CellResult {
  std::string Kernel;
  SpecCell Spec;
  /// The dependence stack the cell compiled under ("reachdef"/"memssa").
  std::string DepAnalysis = "memssa";
  /// Simulated processors the cell compiled for and ran on.
  int Processors = 1;
  bool Ok = false;
  std::string Error; ///< Failed cells: the first diagnostic / run error.
  bool Region = false; ///< titan_tic/titan_toc region was marked.
  double Cycles = 0.0; ///< Region scope when marked, else whole run.
  double Mflops = 0.0; ///< Same scope as Cycles.
  uint64_t VectorInstrs = 0;
  double CompileMillis = 0.0;
  uint64_t ContainedFaults = 0; ///< Sandbox-contained pass faults.
  /// "missed" remark counts per pass ("why not vectorized" and friends).
  std::vector<std::pair<std::string, unsigned>> MissedByPass;

  unsigned missed(const std::string &Pass) const;
};

/// Per-pass attribution on one kernel, diffed against the full pipeline.
struct PassAttribution {
  std::string Pass; ///< Pass name; custom cells: the cell id.
  bool HaveLeaveOneOut = false;
  bool HavePrefix = false;
  // Leave-one-out marginals: what removing the pass costs.
  double MarginalCycles = 0.0;  ///< cycles(full\p) - cycles(full).
  double MflopsDelta = 0.0;     ///< mflops(full) - mflops(full\p).
  int64_t VectorInstrsDelta = 0;///< vinstr(full) - vinstr(full\p).
  double CompileMillisCost = 0.0; ///< compile(full) - compile(full\p).
  // Prefix marginals: what adding the pass (in order) buys.
  double PrefixCyclesDelta = 0.0; ///< cycles(prefix<p) - cycles(prefix<=p).
  double PrefixMflopsDelta = 0.0; ///< mflops(prefix<=p) - mflops(prefix<p).
  /// The ranking key: mean of the available MFLOPS marginals (the
  /// two-sample Shapley estimate when both exist).
  double Contribution = 0.0;
  /// vectorize "missed" remarks in the leave-one-out cell: how many
  /// loops the vectorizer refused (and explained) once this pass was
  /// gone.
  unsigned MissedVectorize = 0;
};

struct KernelAttribution {
  std::string Kernel;
  std::vector<PassAttribution> Passes; ///< Ranked by Contribution, desc.
};

/// One row of BENCH_pipeline.json (the bench binaries' whole-pipeline
/// measurements), cross-referenced into the report.
struct PipelineRow {
  std::string Kernel;
  std::string Variant;
  double Cycles = 0.0;
  double Mflops = 0.0;
  bool Region = false;
};

struct AblateOptions {
  SweepMode Mode = SweepMode::LeaveOneOut;
  /// The pass universe, in pipeline order.  Every name must be
  /// registered.  Empty selects the default full pipeline
  /// (CompilerOptions::full().pipelineSpec()).
  std::vector<std::string> BasePasses;
  /// Kernels to sweep (bench/ names); empty selects the whole suite.
  std::vector<std::string> Kernels;
  /// Custom mode: one -passes= spec string per cell.
  std::vector<std::string> CustomSpecs;
  /// Simulated processor count (tcc-ablate -P): every cell compiles with
  /// multiprocessor spreading targeting this many processors and runs on
  /// a Titan configured with them.  1 (the default) is the uniprocessor
  /// sweep; values are validated and clamped by the tool against
  /// titan::TitanConfig::MaxProcessors.  When > 1 the default pass
  /// universe grows the "spread" pass (CompilerOptions::parallel).
  int NumProcessors = 1;
  /// Worker threads over cells; 0 = hardware concurrency.
  unsigned Workers = 0;
  /// Compile-cache manifest stem; each (kernel, spec) cell gets its own
  /// manifest file `<stem>.<kernel>.<spec-id>` so a re-run sweep serves
  /// unchanged cells from cache without cross-cell write races.
  std::string CacheFile;
  /// Deterministic fault injection, forwarded to every cell compile
  /// (support/FaultInjection.h specs).
  std::string FaultInject;
  /// Which memory-dependence stack every cell compiles under
  /// (tcc-ablate -depanalysis=); folded into each cell's cache manifest
  /// name so the two modes never share compile-cache entries.
  dep::DepAnalysisKind DepAnalysis = dep::DepAnalysisKind::MemSSA;
  /// JSON-Lines output; empty disables writing.
  std::string JsonPath = "BENCH_ablation.json";
  /// BENCH_pipeline.json to cross-reference into the report; rows are
  /// optional context, a missing file is not an error.
  std::string PipelineJsonPath = "BENCH_pipeline.json";
};

struct SweepResult {
  std::vector<SpecCell> Specs;    ///< Enumerated spec set, in order.
  std::vector<CellResult> Cells;  ///< Kernel-major, spec order within.
  std::vector<KernelAttribution> Attribution;
  std::vector<PipelineRow> PipelineRows; ///< Loaded reference rows.
  unsigned FailedCells = 0;
  double TotalMillis = 0.0;
};

/// Enumerates the spec set for \p Opts (pure; no compilation).  Reports
/// unknown pass names / malformed custom specs through \p Diags.
std::vector<SpecCell> enumerateSpecs(const AblateOptions &Opts,
                                     DiagnosticEngine &Diags);

/// Attribution math over one kernel's measured cells (pure, so tests can
/// feed synthetic rows).  \p BasePasses is the pipeline-order universe.
std::vector<PassAttribution>
attributeKernel(const std::vector<CellResult> &Cells,
                const std::vector<std::string> &BasePasses);

/// Runs the whole sweep: enumerate, compile + simulate every (kernel,
/// spec) cell on the worker pool, attribute, and append JSON rows.
/// Infrastructure errors (unknown kernel, bad spec, unwritable JSON)
/// are reported through \p Diags; failed *cells* are not errors.
SweepResult runSweep(const AblateOptions &Opts, DiagnosticEngine &Diags);

/// Parses one BENCH_pipeline.json row (kernel/variant/cycles/mflops/
/// region); false when the line is not a bench row.
bool parsePipelineRow(const std::string &Line, PipelineRow &Out);

/// Loads every parseable row of \p Path; empty when unreadable.
std::vector<PipelineRow> loadPipelineRows(const std::string &Path);

/// One compact JSON object (no trailing newline) per cell / attribution
/// entry — the BENCH_ablation.json row formats.
std::string cellJsonRow(const CellResult &Cell);
std::string attributionJsonRow(const std::string &Kernel,
                               const PassAttribution &A);

/// The human-readable report: per-kernel ranking tables, failed cells,
/// and BENCH_pipeline.json reference rows when available.
std::string renderReport(const SweepResult &R);

} // namespace ablate
} // namespace tcc

#endif // TCC_ABLATE_ABLATE_H
