#include "ablate/Ablate.h"

#include "driver/Compiler.h"
#include "pipeline/PassRegistry.h"
#include "support/JSONWriter.h"
#include "support/WorkerPool.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

using namespace tcc;
using namespace tcc::ablate;

const char *ablate::sweepModeName(SweepMode M) {
  switch (M) {
  case SweepMode::LeaveOneOut:
    return "leave-one-out";
  case SweepMode::Prefix:
    return "prefix";
  case SweepMode::Custom:
    return "custom";
  }
  return "?";
}

unsigned CellResult::missed(const std::string &Pass) const {
  for (const auto &[P, N] : MissedByPass)
    if (P == Pass)
      return N;
  return 0;
}

//===----------------------------------------------------------------------===//
// Spec enumeration
//===----------------------------------------------------------------------===//

namespace {

/// The default pass universe: the full pipeline, growing the spread pass
/// when the sweep targets more than one processor (so -P sweeps ablate
/// spreading like any other pass).
std::vector<std::string> defaultBasePasses(int NumProcessors) {
  driver::CompilerOptions Base =
      NumProcessors > 1 ? driver::CompilerOptions::parallel(NumProcessors)
                        : driver::CompilerOptions::full();
  return pipeline::splitSpec(Base.pipelineSpec());
}

/// Every token must name a registered pass; duplicates within one spec
/// are allowed (permutation experiments may repeat passes deliberately),
/// unknown names are not.
bool validateTokens(const std::vector<std::string> &Tokens,
                    const std::string &What, DiagnosticEngine &Diags) {
  bool Ok = true;
  for (const std::string &T : Tokens) {
    if (T.empty()) {
      Diags.error({}, What + " has an empty pass-name segment");
      Ok = false;
    } else if (!pipeline::PassRegistry::instance().contains(T)) {
      Diags.error({}, What + " names unknown pass '" + T + "' (registered: " +
                          pipeline::PassRegistry::instance().namesJoined() +
                          ")");
      Ok = false;
    }
  }
  return Ok;
}

} // namespace

std::vector<SpecCell> ablate::enumerateSpecs(const AblateOptions &Opts,
                                             DiagnosticEngine &Diags) {
  std::vector<std::string> Base = Opts.BasePasses.empty()
                                      ? defaultBasePasses(Opts.NumProcessors)
                                      : Opts.BasePasses;
  if (!validateTokens(Base, "base pipeline", Diags))
    return {};

  std::vector<SpecCell> Out;
  // Every mode measures the full pipeline: it is the diff baseline.
  Out.push_back({"full", pipeline::joinSpec(Base), "", -1});

  switch (Opts.Mode) {
  case SweepMode::LeaveOneOut: {
    auto LOO = pipeline::leaveOneOutSpecs(Base);
    for (size_t I = 0; I < LOO.size(); ++I)
      Out.push_back(
          {"-" + Base[I], pipeline::joinSpec(LOO[I]), Base[I], -1});
    // The prefix chain supplies the second Shapley sample.  prefix:N
    // would duplicate "full", so the chain stops one short and the
    // attribution uses the full cell as "prefix through the last pass".
    auto Prefixes = pipeline::prefixSpecs(Base);
    for (size_t Len = 0; Len + 1 < Prefixes.size(); ++Len)
      Out.push_back({"prefix:" + std::to_string(Len),
                     pipeline::joinSpec(Prefixes[Len]), "",
                     static_cast<int>(Len)});
    break;
  }
  case SweepMode::Prefix: {
    auto Prefixes = pipeline::prefixSpecs(Base);
    for (size_t Len = 0; Len + 1 < Prefixes.size(); ++Len)
      Out.push_back({"prefix:" + std::to_string(Len),
                     pipeline::joinSpec(Prefixes[Len]), "",
                     static_cast<int>(Len)});
    break;
  }
  case SweepMode::Custom: {
    if (Opts.CustomSpecs.empty())
      Diags.error({}, "custom mode requires at least one -specs= entry");
    for (size_t I = 0; I < Opts.CustomSpecs.size(); ++I) {
      auto Tokens = pipeline::splitSpec(Opts.CustomSpecs[I]);
      if (!validateTokens(Tokens, "custom spec '" + Opts.CustomSpecs[I] + "'",
                          Diags))
        continue;
      Out.push_back({"custom:" + std::to_string(I),
                     pipeline::joinSpec(Tokens), "", -1});
    }
    break;
  }
  }
  if (Diags.hasErrors())
    return {};
  return Out;
}

//===----------------------------------------------------------------------===//
// Attribution
//===----------------------------------------------------------------------===//

namespace {

const CellResult *findCell(const std::vector<CellResult> &Cells,
                           const std::string &Id) {
  for (const CellResult &C : Cells)
    if (C.Spec.Id == Id && C.Ok)
      return &C;
  return nullptr;
}

const CellResult *findPrefixCell(const std::vector<CellResult> &Cells,
                                 int Len, const CellResult *Full,
                                 int BaseLen) {
  if (Len == BaseLen)
    return Full; // the chain's last link is the full pipeline itself
  for (const CellResult &C : Cells)
    if (C.Spec.PrefixLen == Len && C.Ok)
      return &C;
  return nullptr;
}

} // namespace

std::vector<PassAttribution>
ablate::attributeKernel(const std::vector<CellResult> &Cells,
                        const std::vector<std::string> &BasePasses) {
  std::vector<PassAttribution> Out;
  const CellResult *Full = findCell(Cells, "full");
  if (!Full)
    return Out; // nothing to diff against

  int BaseLen = static_cast<int>(BasePasses.size());
  for (int I = 0; I < BaseLen; ++I) {
    const std::string &Pass = BasePasses[I];
    PassAttribution A;
    A.Pass = Pass;

    if (const CellResult *LOO = findCell(Cells, "-" + Pass)) {
      A.HaveLeaveOneOut = true;
      A.MarginalCycles = LOO->Cycles - Full->Cycles;
      A.MflopsDelta = Full->Mflops - LOO->Mflops;
      A.VectorInstrsDelta = static_cast<int64_t>(Full->VectorInstrs) -
                            static_cast<int64_t>(LOO->VectorInstrs);
      A.CompileMillisCost = Full->CompileMillis - LOO->CompileMillis;
      A.MissedVectorize = LOO->missed("vectorize");
    }

    const CellResult *Before = findPrefixCell(Cells, I, Full, BaseLen);
    const CellResult *Through = findPrefixCell(Cells, I + 1, Full, BaseLen);
    if (Before && Through) {
      A.HavePrefix = true;
      A.PrefixCyclesDelta = Before->Cycles - Through->Cycles;
      A.PrefixMflopsDelta = Through->Mflops - Before->Mflops;
    }

    if (A.HaveLeaveOneOut && A.HavePrefix)
      A.Contribution = (A.MflopsDelta + A.PrefixMflopsDelta) / 2.0;
    else if (A.HaveLeaveOneOut)
      A.Contribution = A.MflopsDelta;
    else if (A.HavePrefix)
      A.Contribution = A.PrefixMflopsDelta;
    if (A.HaveLeaveOneOut || A.HavePrefix)
      Out.push_back(std::move(A));
  }

  // Custom cells: each measured spec is its own ablation unit, diffed
  // against the full pipeline.
  for (const CellResult &C : Cells) {
    if (C.Spec.Id.rfind("custom:", 0) != 0 || !C.Ok)
      continue;
    PassAttribution A;
    A.Pass = C.Spec.Id + " (" + (C.Spec.Spec.empty() ? "<empty>" : C.Spec.Spec)
             + ")";
    A.HaveLeaveOneOut = true;
    A.MarginalCycles = C.Cycles - Full->Cycles;
    A.MflopsDelta = Full->Mflops - C.Mflops;
    A.VectorInstrsDelta = static_cast<int64_t>(Full->VectorInstrs) -
                          static_cast<int64_t>(C.VectorInstrs);
    A.CompileMillisCost = Full->CompileMillis - C.CompileMillis;
    A.MissedVectorize = C.missed("vectorize");
    A.Contribution = A.MflopsDelta;
    Out.push_back(std::move(A));
  }

  std::stable_sort(Out.begin(), Out.end(),
                   [](const PassAttribution &L, const PassAttribution &R) {
                     return L.Contribution > R.Contribution;
                   });
  return Out;
}

//===----------------------------------------------------------------------===//
// The sweep
//===----------------------------------------------------------------------===//

namespace {

std::string sanitizeForPath(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S)
    Out += (std::isalnum(static_cast<unsigned char>(C)) || C == '-' ||
            C == '_' || C == ':')
               ? C
               : '-';
  for (char &C : Out)
    if (C == ':')
      C = '_';
  return Out;
}

/// Compiles and simulates one (kernel, spec) cell.  Never throws: any
/// failure — diagnostics, run error, escaped exception — lands in the
/// cell as Ok=false with an explanation.
CellResult measureCell(const BenchKernel &Kernel, const SpecCell &Spec,
                       const AblateOptions &Opts) {
  CellResult Cell;
  Cell.Kernel = Kernel.Name;
  Cell.Spec = Spec;
  Cell.DepAnalysis = dep::depAnalysisKindName(Opts.DepAnalysis);
  Cell.Processors = Opts.NumProcessors > 1 ? Opts.NumProcessors : 1;

  driver::CompilerOptions CO;
  if (Spec.Spec.empty())
    CO = driver::CompilerOptions::noOpt(); // "" would mean default spec
  CO.Passes = Spec.Spec;
  CO.FaultInject = Opts.FaultInject;
  CO.DepAnalysis = Opts.DepAnalysis;
  CO.ReproDir.clear(); // a sweep should not scatter reproducer bundles
  // -P: the spec still decides *whether* spread/vectorize run; these
  // options decide what they target when they do.  configFingerprint
  // folds them in, so -P1 and -P4 sweeps never share cache entries.
  if (Cell.Processors > 1) {
    CO.Vectorize.EnableParallel = true;
    CO.Spread.Processors = Cell.Processors;
  }
  titan::TitanConfig MachineConfig = Kernel.Config;
  MachineConfig.NumProcessors = Cell.Processors;
  if (!Opts.CacheFile.empty())
    CO.CacheFile = Opts.CacheFile + "." + sanitizeForPath(Kernel.Name) + "." +
                   sanitizeForPath(Spec.Id.empty() ? "cell" : Spec.Id) + "." +
                   dep::depAnalysisKindName(Opts.DepAnalysis);

  try {
    auto Out = driver::compileAndRun(Kernel.Source, CO, MachineConfig);
    const auto &Telemetry = Out.Compile->Telemetry;
    Cell.CompileMillis = Telemetry.TotalMillis;
    Cell.ContainedFaults = Telemetry.Faults.size();
    std::map<std::string, unsigned> Missed;
    for (const remarks::Remark &R : Telemetry.Remarks)
      if (R.Kind == remarks::RemarkKind::Missed)
        ++Missed[R.Pass];
    for (const auto &[Pass, N] : Missed)
      Cell.MissedByPass.emplace_back(Pass, N);

    if (!Out.Compile->ok()) {
      Cell.Error = Out.Compile->Diags.diagnostics().empty()
                       ? "compile failed"
                       : Out.Compile->Diags.diagnostics().front().str();
      return Cell;
    }
    if (!Out.Run.Ok) {
      Cell.Error = Out.Run.Error.empty() ? "run failed" : Out.Run.Error;
      return Cell;
    }
    Cell.Ok = true;
    Cell.Region = Out.Run.RegionCycles != 0;
    Cell.Cycles = static_cast<double>(
        Cell.Region ? Out.Run.RegionCycles : Out.Run.Cycles);
    double Flops = static_cast<double>(Cell.Region ? Out.Run.RegionFlops
                                                   : Out.Run.Flops);
    Cell.Mflops =
        Cell.Cycles ? Flops * Kernel.Config.ClockMHz / Cell.Cycles : 0.0;
    Cell.VectorInstrs = Out.Run.VectorInstrs;
  } catch (const std::exception &E) {
    Cell.Error = std::string("unhandled exception: ") + E.what();
  } catch (...) {
    Cell.Error = "unhandled non-standard exception";
  }
  return Cell;
}

} // namespace

SweepResult ablate::runSweep(const AblateOptions &Opts,
                             DiagnosticEngine &Diags) {
  SweepResult R;
  auto Start = std::chrono::steady_clock::now();

  std::vector<std::string> Base = Opts.BasePasses.empty()
                                      ? defaultBasePasses(Opts.NumProcessors)
                                      : Opts.BasePasses;
  R.Specs = enumerateSpecs(Opts, Diags);
  if (Diags.hasErrors())
    return R;

  std::vector<const BenchKernel *> Kernels;
  if (Opts.Kernels.empty()) {
    for (const BenchKernel &K : benchKernels())
      Kernels.push_back(&K);
  } else {
    for (const std::string &Name : Opts.Kernels) {
      const BenchKernel *K = findKernel(Name);
      if (!K) {
        Diags.error({}, "unknown kernel '" + Name + "' (available: " +
                            kernelNamesJoined() + ")");
        return R;
      }
      Kernels.push_back(K);
    }
  }

  // The cell grid, kernel-major; the pool fills results by index so the
  // output order is deterministic regardless of completion order.
  struct CellJob {
    const BenchKernel *Kernel;
    const SpecCell *Spec;
  };
  std::vector<CellJob> Jobs;
  for (const BenchKernel *K : Kernels)
    for (const SpecCell &S : R.Specs)
      Jobs.push_back({K, &S});
  R.Cells.resize(Jobs.size());

  // Deterministic by-index fill over the shared pool (support/WorkerPool.h):
  // each cell writes only R.Cells[I], so the result vector is identical
  // for every worker count.
  runIndexed(Jobs.size(), Opts.Workers, [&](size_t I) {
    R.Cells[I] = measureCell(*Jobs[I].Kernel, *Jobs[I].Spec, Opts);
  });

  for (const CellResult &C : R.Cells)
    if (!C.Ok)
      ++R.FailedCells;

  // Attribution per kernel over that kernel's cells.
  for (const BenchKernel *K : Kernels) {
    std::vector<CellResult> Mine;
    for (const CellResult &C : R.Cells)
      if (C.Kernel == K->Name)
        Mine.push_back(C);
    KernelAttribution KA;
    KA.Kernel = K->Name;
    KA.Passes = attributeKernel(Mine, Base);
    R.Attribution.push_back(std::move(KA));
  }

  if (!Opts.PipelineJsonPath.empty())
    R.PipelineRows = loadPipelineRows(Opts.PipelineJsonPath);

  // JSON Lines output: cells first (measurement record), then the
  // attribution rows computed from them.  Line-atomic appends keep the
  // file parseable even when several sweeps append concurrently.
  if (!Opts.JsonPath.empty()) {
    bool WroteAll = true;
    for (const CellResult &C : R.Cells)
      WroteAll &= json::appendJsonLine(Opts.JsonPath, cellJsonRow(C));
    for (const KernelAttribution &KA : R.Attribution)
      for (const PassAttribution &A : KA.Passes)
        WroteAll &=
            json::appendJsonLine(Opts.JsonPath, attributionJsonRow(KA.Kernel, A));
    if (!WroteAll)
      Diags.error({}, "cannot append to '" + Opts.JsonPath + "'");
  }

  R.TotalMillis = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
  return R;
}

//===----------------------------------------------------------------------===//
// BENCH_pipeline.json consumption
//===----------------------------------------------------------------------===//

namespace {

/// Extracts the value text after `"Key": ` in a compact JSON-Lines row.
/// Good enough for the flat scalar fields the bench writer emits; nested
/// arrays ("passes", "functions") use different key names.
bool findField(const std::string &Line, const std::string &Key,
               std::string &Out) {
  std::string Needle = "\"" + Key + "\":";
  size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return false;
  size_t P = At + Needle.size();
  while (P < Line.size() && Line[P] == ' ')
    ++P;
  if (P >= Line.size())
    return false;
  if (Line[P] == '"') {
    std::string S;
    for (++P; P < Line.size() && Line[P] != '"'; ++P) {
      if (Line[P] == '\\' && P + 1 < Line.size())
        ++P; // skip the escaped char (unescaping quotes is enough here)
      S += Line[P];
    }
    Out = S;
    return true;
  }
  size_t End = Line.find_first_of(",}", P);
  Out = Line.substr(P, End == std::string::npos ? std::string::npos : End - P);
  return !Out.empty();
}

} // namespace

bool ablate::parsePipelineRow(const std::string &Line, PipelineRow &Out) {
  std::string Kernel, Variant, Cycles, Mflops, Region;
  if (!findField(Line, "kernel", Kernel) ||
      !findField(Line, "variant", Variant) ||
      !findField(Line, "cycles", Cycles) || !findField(Line, "mflops", Mflops))
    return false;
  Out.Kernel = Kernel;
  Out.Variant = Variant;
  Out.Cycles = std::strtod(Cycles.c_str(), nullptr);
  Out.Mflops = std::strtod(Mflops.c_str(), nullptr);
  Out.Region = findField(Line, "region", Region) && Region == "true";
  return true;
}

std::vector<PipelineRow> ablate::loadPipelineRows(const std::string &Path) {
  std::vector<PipelineRow> Out;
  std::ifstream IS(Path);
  if (!IS)
    return Out;
  std::string Line;
  while (std::getline(IS, Line)) {
    PipelineRow Row;
    if (parsePipelineRow(Line, Row))
      Out.push_back(std::move(Row));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Output
//===----------------------------------------------------------------------===//

std::string ablate::cellJsonRow(const CellResult &Cell) {
  std::ostringstream OS;
  json::JSONWriter W(OS, /*IndentWidth=*/0);
  W.beginObject();
  W.keyValue("kind", "cell");
  W.keyValue("kernel", Cell.Kernel);
  W.keyValue("specId", Cell.Spec.Id);
  W.keyValue("spec", Cell.Spec.Spec);
  W.keyValue("depanalysis", Cell.DepAnalysis);
  W.keyValue("processors", static_cast<int64_t>(Cell.Processors));
  if (!Cell.Spec.Ablated.empty())
    W.keyValue("ablated", Cell.Spec.Ablated);
  if (Cell.Spec.PrefixLen >= 0)
    W.keyValue("prefixLen", static_cast<int64_t>(Cell.Spec.PrefixLen));
  W.keyValue("ok", Cell.Ok);
  if (!Cell.Ok)
    W.keyValue("error", Cell.Error);
  W.keyValue("region", Cell.Region);
  W.keyValue("cycles", Cell.Cycles);
  W.keyValue("mflops", Cell.Mflops);
  W.keyValue("vectorInstrs", Cell.VectorInstrs);
  W.keyValue("compileMillis", Cell.CompileMillis);
  W.keyValue("containedFaults", Cell.ContainedFaults);
  W.key("missed").beginObject();
  for (const auto &[Pass, N] : Cell.MissedByPass)
    W.keyValue(Pass, static_cast<uint64_t>(N));
  W.endObject();
  W.endObject();
  return OS.str();
}

std::string ablate::attributionJsonRow(const std::string &Kernel,
                                       const PassAttribution &A) {
  std::ostringstream OS;
  json::JSONWriter W(OS, /*IndentWidth=*/0);
  W.beginObject();
  W.keyValue("kind", "attribution");
  W.keyValue("kernel", Kernel);
  W.keyValue("pass", A.Pass);
  W.keyValue("contribution", A.Contribution);
  if (A.HaveLeaveOneOut) {
    W.keyValue("marginalCycles", A.MarginalCycles);
    W.keyValue("mflopsDelta", A.MflopsDelta);
    W.keyValue("vectorInstrsDelta", A.VectorInstrsDelta);
    W.keyValue("compileMillisCost", A.CompileMillisCost);
    W.keyValue("missedVectorize", static_cast<uint64_t>(A.MissedVectorize));
  }
  if (A.HavePrefix) {
    W.keyValue("prefixCyclesDelta", A.PrefixCyclesDelta);
    W.keyValue("prefixMflopsDelta", A.PrefixMflopsDelta);
  }
  W.endObject();
  return OS.str();
}

std::string ablate::renderReport(const SweepResult &R) {
  std::ostringstream OS;
  char Buf[256];

  for (const KernelAttribution &KA : R.Attribution) {
    const CellResult *Full = nullptr;
    for (const CellResult &C : R.Cells)
      if (C.Kernel == KA.Kernel && C.Spec.Id == "full" && C.Ok)
        Full = &C;

    OS << "== " << KA.Kernel << " "
       << std::string(KA.Kernel.size() < 50 ? 50 - KA.Kernel.size() : 1, '=')
       << "\n";
    if (Full) {
      std::snprintf(Buf, sizeof(Buf),
                    "  full pipeline: %.0f cycles, %.3f MFLOPS, %llu vector "
                    "instrs, %.2f ms compile%s\n",
                    Full->Cycles, Full->Mflops,
                    static_cast<unsigned long long>(Full->VectorInstrs),
                    Full->CompileMillis,
                    Full->Region ? "" : " (whole-run scope: no tic/toc region)");
      OS << Buf;
    } else {
      OS << "  full pipeline cell failed; marginals unavailable\n";
    }

    std::snprintf(Buf, sizeof(Buf),
                  "  %-4s %-28s %9s %9s %9s %10s %8s %9s %6s\n", "rank",
                  "pass", "contrib", "loo-dMF", "pre-dMF", "marg-cyc",
                  "dVinstr", "compile", "missed");
    OS << Buf;
    unsigned Rank = 1;
    for (const PassAttribution &A : KA.Passes) {
      std::snprintf(Buf, sizeof(Buf),
                    "  %-4u %-28s %9.3f %9.3f %9.3f %10.0f %8lld %8.2fms "
                    "%6u\n",
                    Rank++, A.Pass.c_str(), A.Contribution,
                    A.HaveLeaveOneOut ? A.MflopsDelta : 0.0,
                    A.HavePrefix ? A.PrefixMflopsDelta : 0.0,
                    A.HaveLeaveOneOut ? A.MarginalCycles : 0.0,
                    static_cast<long long>(A.VectorInstrsDelta),
                    A.CompileMillisCost, A.MissedVectorize);
      OS << Buf;
    }

    // Reference rows from the bench binaries' own measurements, when a
    // BENCH_pipeline.json was found.
    bool Announced = false;
    for (const PipelineRow &P : R.PipelineRows) {
      if (P.Kernel != KA.Kernel)
        continue;
      if (!Announced) {
        OS << "  bench reference rows (BENCH_pipeline.json):\n";
        Announced = true;
      }
      std::snprintf(Buf, sizeof(Buf), "    %-36s %10.0f cycles %8.3f MFLOPS%s\n",
                    P.Variant.c_str(), P.Cycles, P.Mflops,
                    P.Region ? "" : "  [whole-run]");
      OS << Buf;
    }
    OS << "\n";
  }

  if (R.FailedCells) {
    OS << "failed cells (" << R.FailedCells << "):\n";
    for (const CellResult &C : R.Cells)
      if (!C.Ok)
        OS << "  " << C.Kernel << " / " << C.Spec.Id << " ("
           << (C.Spec.Spec.empty() ? "<empty>" : C.Spec.Spec)
           << "): " << C.Error << "\n";
    OS << "\n";
  }

  std::snprintf(Buf, sizeof(Buf),
                "%zu cells (%u failed), %.1f ms total\n", R.Cells.size(),
                R.FailedCells, R.TotalMillis);
  OS << Buf;
  return OS.str();
}
