#include "ablate/Kernels.h"

using namespace tcc;
using namespace tcc::ablate;

namespace {

/// Section 9 daxpy: inlining + while->DO + IV substitution + constant
/// propagation + vectorization all fire on the call in the region.
const char *DaxpySource = R"(
  float a[100], b[100], c[100];
  void titan_tic(void);
  void titan_toc(void);
  void daxpy(float *x, float *y, float *z, float alpha, int n)
  {
    if (n <= 0)
      return;
    if (alpha == 0)
      return;
    for (; n; n--)
      *x++ = *y++ + alpha * *z++;
  }
  void main()
  {
    int i;
    for (i = 0; i < 100; i++) { b[i] = i; c[i] = 1.0; }
    titan_tic();
    daxpy(a, b, c, 1.0, 100);
    titan_toc();
  }
)";

/// Section 6 backsolve: an unvectorizable recurrence where the win comes
/// from dependence-driven scalar replacement / strength reduction /
/// scheduling (the depopt pass), not from vectorization.
const char *BacksolveSource = R"(
  float x[4002], y[4000], z[4000];
  float out;
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    int i; int n;
    float *p; float *q;
    n = 4000;
    x[0] = 1.0;
    for (i = 0; i < n; i++) { y[i] = 1.0; z[i] = 0.5; }
    p = &x[1];
    q = &x[0];
    titan_tic();
    for (i = 0; i < n - 2; i++)
      p[i] = z[i] * (y[i] - q[i]);
    titan_toc();
    out = x[7];
  }
)";

/// Sections 5.2-5.3: the pointer-walk copy loop that only vectorizes
/// after while->DO conversion plus induction-variable substitution.
const char *WhileconvSource = R"(
  float src[4096], dst[4096];
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    int i; float *a; float *b; int n;
    for (i = 0; i < 4096; i++) src[i] = i;
    a = dst;
    b = src;
    n = 4096;
    titan_tic();
    while (n) {
      *a++ = *b++;
      n--;
    }
    titan_toc();
  }
)";

/// Section 5.3: independent pointer walks in one loop, the IV
/// substitution backtracking workload.
const char *IVSubSource = R"(
  float arr0[512]; float arr1[512]; float arr2[512]; float arr3[512];
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    float *p0; float *p1; float *p2; float *p3;
    int n;
    p0 = arr0;
    p1 = arr1;
    p2 = arr2;
    p3 = arr3;
    n = 512;
    titan_tic();
    while (n) {
      *p0++ = 1.0;
      *p1++ = 2.0;
      *p2++ = 3.0;
      *p3++ = 4.0;
      n--;
    }
    titan_toc();
  }
)";

/// Section 5.2: the strip-mined vector add (vector startup
/// amortization).
const char *StriplenSource = R"(
  float a[1024], b[1024], c[1024];
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    int i;
    for (i = 0; i < 1024; i++) { b[i] = i; c[i] = 1.0; }
    titan_tic();
    for (i = 0; i < 1024; i++)
      a[i] = b[i] + c[i];
    titan_toc();
  }
)";

/// Section 8: daxpy with alpha == 0 — after inlining, constant
/// propagation with the unreachable-code heuristic deletes the whole
/// floating-point body.
const char *ConstpropSource = R"(
  float a[2048], b[2048], c[2048];
  void titan_tic(void);
  void titan_toc(void);
  void daxpy(float *x, float *y, float *z, float alpha, int n)
  {
    if (n <= 0) return;
    if (alpha == 0) return;
    for (; n; n--)
      *x++ = *y++ + alpha * *z++;
  }
  void main()
  {
    titan_tic();
    daxpy(a, b, c, 0.0, 2048);
    titan_toc();
  }
)";

/// Section 9: argument aliasing blocks vectorization of the out-of-line
/// daxpy; inlining removes the aliasing question entirely.
const char *AliasingSource = R"(
  float a[4096], b[4096], c[4096];
  void titan_tic(void);
  void titan_toc(void);
  void daxpy(float *x, float *y, float *z, float alpha, int n)
  {
    if (n <= 0) return;
    if (alpha == 0) return;
    for (; n; n--)
      *x++ = *y++ + alpha * *z++;
  }
  void main()
  {
    int i;
    for (i = 0; i < 4096; i++) { b[i] = i; c[i] = 1.0; }
    titan_tic();
    daxpy(a, b, c, 2.0, 4096);
    titan_toc();
  }
)";

} // namespace

const std::vector<BenchKernel> &ablate::benchKernels() {
  static const std::vector<BenchKernel> Kernels = [] {
    titan::TitanConfig Default; // overlap on, one processor
    std::vector<BenchKernel> K;
    K.push_back({"daxpy", DaxpySource, Default});
    K.push_back({"backsolve", BacksolveSource, Default});
    K.push_back({"whileconv", WhileconvSource, Default});
    K.push_back({"ivsub", IVSubSource, Default});
    K.push_back({"striplen", StriplenSource, Default});
    K.push_back({"constprop", ConstpropSource, Default});
    K.push_back({"aliasing", AliasingSource, Default});
    return K;
  }();
  return Kernels;
}

const BenchKernel *ablate::findKernel(const std::string &Name) {
  for (const BenchKernel &K : benchKernels())
    if (K.Name == Name)
      return &K;
  return nullptr;
}

std::string ablate::kernelNamesJoined() {
  std::string Out;
  for (const BenchKernel &K : benchKernels()) {
    if (!Out.empty())
      Out += ", ";
    Out += K.Name;
  }
  return Out;
}
