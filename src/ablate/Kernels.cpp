#include "ablate/Kernels.h"

using namespace tcc;
using namespace tcc::ablate;

namespace {

/// Section 9 daxpy: inlining + while->DO + IV substitution + constant
/// propagation + vectorization all fire on the call in the region.
const char *DaxpySource = R"(
  float a[100], b[100], c[100];
  void titan_tic(void);
  void titan_toc(void);
  void daxpy(float *x, float *y, float *z, float alpha, int n)
  {
    if (n <= 0)
      return;
    if (alpha == 0)
      return;
    for (; n; n--)
      *x++ = *y++ + alpha * *z++;
  }
  void main()
  {
    int i;
    for (i = 0; i < 100; i++) { b[i] = i; c[i] = 1.0; }
    titan_tic();
    daxpy(a, b, c, 1.0, 100);
    titan_toc();
  }
)";

/// Section 6 backsolve: an unvectorizable recurrence where the win comes
/// from dependence-driven scalar replacement / strength reduction /
/// scheduling (the depopt pass), not from vectorization.
const char *BacksolveSource = R"(
  float x[4002], y[4000], z[4000];
  float out;
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    int i; int n;
    float *p; float *q;
    n = 4000;
    x[0] = 1.0;
    for (i = 0; i < n; i++) { y[i] = 1.0; z[i] = 0.5; }
    p = &x[1];
    q = &x[0];
    titan_tic();
    for (i = 0; i < n - 2; i++)
      p[i] = z[i] * (y[i] - q[i]);
    titan_toc();
    out = x[7];
  }
)";

/// Sections 5.2-5.3: the pointer-walk copy loop that only vectorizes
/// after while->DO conversion plus induction-variable substitution.
const char *WhileconvSource = R"(
  float src[4096], dst[4096];
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    int i; float *a; float *b; int n;
    for (i = 0; i < 4096; i++) src[i] = i;
    a = dst;
    b = src;
    n = 4096;
    titan_tic();
    while (n) {
      *a++ = *b++;
      n--;
    }
    titan_toc();
  }
)";

/// Section 5.3: independent pointer walks in one loop, the IV
/// substitution backtracking workload.
const char *IVSubSource = R"(
  float arr0[512]; float arr1[512]; float arr2[512]; float arr3[512];
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    float *p0; float *p1; float *p2; float *p3;
    int n;
    p0 = arr0;
    p1 = arr1;
    p2 = arr2;
    p3 = arr3;
    n = 512;
    titan_tic();
    while (n) {
      *p0++ = 1.0;
      *p1++ = 2.0;
      *p2++ = 3.0;
      *p3++ = 4.0;
      n--;
    }
    titan_toc();
  }
)";

/// Section 5.2: the strip-mined vector add (vector startup
/// amortization).
const char *StriplenSource = R"(
  float a[1024], b[1024], c[1024];
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    int i;
    for (i = 0; i < 1024; i++) { b[i] = i; c[i] = 1.0; }
    titan_tic();
    for (i = 0; i < 1024; i++)
      a[i] = b[i] + c[i];
    titan_toc();
  }
)";

/// Section 8: daxpy with alpha == 0 — after inlining, constant
/// propagation with the unreachable-code heuristic deletes the whole
/// floating-point body.
const char *ConstpropSource = R"(
  float a[2048], b[2048], c[2048];
  void titan_tic(void);
  void titan_toc(void);
  void daxpy(float *x, float *y, float *z, float alpha, int n)
  {
    if (n <= 0) return;
    if (alpha == 0) return;
    for (; n; n--)
      *x++ = *y++ + alpha * *z++;
  }
  void main()
  {
    titan_tic();
    daxpy(a, b, c, 0.0, 2048);
    titan_toc();
  }
)";

/// Section 9: argument aliasing blocks vectorization of the out-of-line
/// daxpy; inlining removes the aliasing question entirely.
const char *AliasingSource = R"(
  float a[4096], b[4096], c[4096];
  void titan_tic(void);
  void titan_toc(void);
  void daxpy(float *x, float *y, float *z, float alpha, int n)
  {
    if (n <= 0) return;
    if (alpha == 0) return;
    for (; n; n--)
      *x++ = *y++ + alpha * *z++;
  }
  void main()
  {
    int i;
    for (i = 0; i < 4096; i++) { b[i] = i; c[i] = 1.0; }
    titan_tic();
    daxpy(a, b, c, 2.0, 4096);
    titan_toc();
  }
)";

//===----------------------------------------------------------------------===//
// The multiprocessor scaling suite (Livermore-style)
//===----------------------------------------------------------------------===//

/// Livermore kernel 1 (hydro fragment): a dependence-free loop — the
/// spread pass marks it, then vectorization strips it, so the strip loop
/// carries the parallel mark and the speedup compounds with the vector
/// win.
const char *HydroSource = R"(
  float x[1024], y[1024], z[1024];
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    int k;
    float q; float r; float t;
    q = 0.5; r = 1.5; t = 0.25;
    for (k = 0; k < 1024; k++) { y[k] = k; z[k] = 0.125 * k; }
    titan_tic();
    for (k = 0; k < 1000; k++)
      x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
    titan_toc();
  }
)";

/// Livermore kernel 3 (inner product): a sum reduction.  The vectorizer
/// refuses (carried dependence on q); the spread pass recognizes the
/// reduction idiom and spreads anyway — sequential functional execution
/// keeps the answer bit-identical.
const char *InnerprodSource = R"(
  float z[2048], x[2048];
  float out;
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    int k;
    float q;
    for (k = 0; k < 2048; k++) { z[k] = 0.5; x[k] = 2.0; }
    q = 0.0;
    titan_tic();
    for (k = 0; k < 2048; k++)
      q = q + z[k] * x[k];
    titan_toc();
    out = q;
  }
)";

/// Livermore kernel 5 (tri-diagonal elimination): a true recurrence —
/// x[i] reads x[i-1].  Neither vectorization nor spreading is legal; the
/// suite's negative control, expected to produce a missedParallel remark
/// naming the x/x access pair.
const char *TridiagSource = R"(
  float x[2000], y[2000], z[2000];
  float out;
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    int i;
    for (i = 0; i < 2000; i++) { x[i] = 0.0; y[i] = 1.0; z[i] = 0.5; }
    x[0] = 1.0;
    titan_tic();
    for (i = 1; i < 2000; i++)
      x[i] = z[i] * (y[i] - x[i - 1]);
    titan_toc();
    out = x[1999];
  }
)";

/// A 2-D Jacobi-style stencil on a flattened 66x66 grid: the outer row
/// loop spreads (rows are disjoint in the write footprint), the inner
/// column loop vectorizes — the paper's "spread the outer, vectorize the
/// inner" composition.
const char *Stencil2dSource = R"(
  float a[4356], b[4356];
  void titan_tic(void);
  void titan_toc(void);
  void main() {
    int i; int j;
    for (i = 0; i < 4356; i++) { a[i] = 0.25 * i; b[i] = 0.0; }
    titan_tic();
    for (i = 1; i < 65; i++)
      for (j = 1; j < 65; j++)
        b[i * 66 + j] = 0.25 * (a[i * 66 + j - 66] + a[i * 66 + j + 66] +
                                a[i * 66 + j - 1] + a[i * 66 + j + 1]);
    titan_toc();
  }
)";

/// The loop-with-call kernel: each iteration hands a disjoint 128-float
/// slice to an out-of-line callee.  Compiled with inlining disabled so
/// legality rests entirely on the interprocedural call-safety summary
/// (dst writes [0,512) bytes of its first argument; slices are 512 bytes
/// apart).
const char *SpreadcallSource = R"(
  float a[1024], b[1024];
  void titan_tic(void);
  void titan_toc(void);
  void scale(float *dst, float *src, float s) {
    int j;
    for (j = 0; j < 128; j++)
      dst[j] = s * src[j] + 1.0;
  }
  void main() {
    int i;
    for (i = 0; i < 1024; i++) { a[i] = 0.0; b[i] = 0.5 * i; }
    titan_tic();
    for (i = 0; i < 8; i++)
      scale(&a[i * 128], &b[i * 128], 2.0);
    titan_toc();
  }
)";

/// The call-safety negative control: the callee updates a global
/// accumulator, so its summary reports a global write and the spread
/// pass must refuse the loop with a missedParallel remark naming the
/// callee.
const char *SpreadcallUnsafeSource = R"(
  float a[1024];
  float acc;
  void titan_tic(void);
  void titan_toc(void);
  void bump(float *dst) {
    int j;
    acc = acc + 1.0;
    for (j = 0; j < 128; j++)
      dst[j] = acc + j;
  }
  void main() {
    int i;
    acc = 0.0;
    for (i = 0; i < 1024; i++) a[i] = 0.0;
    titan_tic();
    for (i = 0; i < 8; i++)
      bump(&a[i * 128]);
    titan_toc();
  }
)";

} // namespace

const std::vector<ParallelKernel> &ablate::parallelKernels() {
  static const std::vector<ParallelKernel> Kernels = {
      {"hydro", HydroSource, /*DisableInline=*/false, /*ExpectSpread=*/true},
      {"innerprod", InnerprodSource, false, true},
      {"tridiag", TridiagSource, false, /*ExpectSpread=*/false},
      {"stencil2d", Stencil2dSource, false, true},
      {"spreadcall", SpreadcallSource, /*DisableInline=*/true, true},
      {"spreadcall_unsafe", SpreadcallUnsafeSource, true,
       /*ExpectSpread=*/false},
  };
  return Kernels;
}

const ParallelKernel *ablate::findParallelKernel(const std::string &Name) {
  for (const ParallelKernel &K : parallelKernels())
    if (K.Name == Name)
      return &K;
  return nullptr;
}

const std::vector<BenchKernel> &ablate::benchKernels() {
  static const std::vector<BenchKernel> Kernels = [] {
    titan::TitanConfig Default; // overlap on, one processor
    std::vector<BenchKernel> K;
    K.push_back({"daxpy", DaxpySource, Default});
    K.push_back({"backsolve", BacksolveSource, Default});
    K.push_back({"whileconv", WhileconvSource, Default});
    K.push_back({"ivsub", IVSubSource, Default});
    K.push_back({"striplen", StriplenSource, Default});
    K.push_back({"constprop", ConstpropSource, Default});
    K.push_back({"aliasing", AliasingSource, Default});
    return K;
  }();
  return Kernels;
}

const BenchKernel *ablate::findKernel(const std::string &Name) {
  for (const BenchKernel &K : benchKernels())
    if (K.Name == Name)
      return &K;
  return nullptr;
}

std::string ablate::kernelNamesJoined() {
  std::string Out;
  for (const BenchKernel &K : benchKernels()) {
    if (!Out.empty())
      Out += ", ";
    Out += K.Name;
  }
  return Out;
}
