//===----------------------------------------------------------------------===//
///
/// \file
/// The bench-kernel suite the ablation sweep measures: the same C
/// programs the bench/ binaries compile (paper Sections 5-9), packaged
/// as data so tcc-ablate can compile each one under many pipeline specs.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_ABLATE_KERNELS_H
#define TCC_ABLATE_KERNELS_H

#include "titan/TitanMachine.h"

#include <string>
#include <vector>

namespace tcc {
namespace ablate {

/// One benchmark kernel: a complete C program with (usually) a
/// titan_tic/titan_toc region around the measured loop.
struct BenchKernel {
  std::string Name;          ///< "daxpy", "backsolve", ... (bench/ names).
  std::string Source;        ///< C source text.
  titan::TitanConfig Config; ///< Simulator configuration for the run.
};

/// The full kernel suite, in the bench/ naming: daxpy, backsolve,
/// whileconv, ivsub, striplen, constprop, aliasing.
const std::vector<BenchKernel> &benchKernels();

/// Kernel by name; null when unknown.
const BenchKernel *findKernel(const std::string &Name);

/// "daxpy, backsolve, ..." for diagnostics.
std::string kernelNamesJoined();

/// One kernel of the Livermore-style multiprocessor scaling suite
/// (bench_parallel_scaling and the spread tests): a complete C program
/// with a titan_tic/titan_toc region, chosen to exercise one spread-pass
/// behavior each (plain spread + vectorize, reduction, legality
/// rejection, outer-spread/inner-vectorize nests, call-safety accept and
/// reject).
struct ParallelKernel {
  std::string Name;
  std::string Source;
  /// Compile with inlining disabled: the kernel exists to exercise the
  /// interprocedural call-safety summary, which inlining would bypass.
  bool DisableInline = false;
  /// Whether the spread pass is expected to mark the kernel's outer
  /// measured loop `do parallel` (tests assert both polarities).
  bool ExpectSpread = true;
};

/// The scaling suite: hydro, innerprod, tridiag, stencil2d, spreadcall,
/// spreadcall_unsafe.
const std::vector<ParallelKernel> &parallelKernels();

/// Suite kernel by name; null when unknown.
const ParallelKernel *findParallelKernel(const std::string &Name);

} // namespace ablate
} // namespace tcc

#endif // TCC_ABLATE_KERNELS_H
