#include "frontend/Lower.h"

#include "support/StringExtras.h"

#include <map>

using namespace tcc;
using namespace tcc::il;

namespace {

using StmtList = std::vector<il::Stmt *>;

/// The (statement list, expression) pair of the paper.  E is a pure IL
/// expression; SL is the sequence of statements that must execute before E
/// is evaluated.
struct Value {
  StmtList SL;
  il::Expr *E = nullptr;
};

class Lowerer {
public:
  Lowerer(const ast::TranslationUnit &TU, il::Program &P,
          DiagnosticEngine &Diags)
      : TU(TU), P(P), Types(P.getTypes()), Diags(Diags) {}

  void run();

private:
  //===--------------------------------------------------------------------===//
  // Context
  //===--------------------------------------------------------------------===//

  const ast::TranslationUnit &TU;
  il::Program &P;
  TypeContext &Types;
  DiagnosticEngine &Diags;

  il::Function *F = nullptr;
  std::vector<std::map<std::string, Symbol *>> Scopes;
  std::map<std::string, const ast::FunctionDecl *> FuncDecls;

  struct LoopCtx {
    std::string BreakLabel;
    std::string ContinueLabel;
    bool UsedBreak = false;
    bool UsedContinue = false;
  };
  std::vector<LoopCtx> Loops;

  //===--------------------------------------------------------------------===//
  // Helpers
  //===--------------------------------------------------------------------===//

  const Type *intTy() { return Types.getIntType(); }

  void error(SourceLoc Loc, const std::string &Msg) { Diags.error(Loc, Msg); }

  Symbol *lookup(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return P.findGlobal(Name);
  }

  void declare(SourceLoc Loc, const std::string &Name, Symbol *S) {
    auto &Scope = Scopes.back();
    if (Scope.count(Name)) {
      error(Loc, "redeclaration of '" + Name + "'");
      return;
    }
    Scope[Name] = S;
  }

  /// Makes an IL-unique symbol name from a source name (two locals in
  /// different blocks may share a source name).
  std::string uniqueSymName(const std::string &Name) {
    if (!F->findSymbol(Name))
      return Name;
    unsigned Suffix = 2;
    for (;;) {
      std::string Candidate = Name + "_" + std::to_string(Suffix++);
      if (!F->findSymbol(Candidate))
        return Candidate;
    }
  }

  void append(StmtList &To, StmtList &&From) {
    To.insert(To.end(), From.begin(), From.end());
  }

  /// Clones a statement list (used to duplicate the condition statement
  /// list at the bottom of while bodies, paper Section 4).
  StmtList cloneStmtList(const StmtList &SL) {
    StmtList Out;
    Out.reserve(SL.size());
    auto Identity = [](Symbol *S) { return S; };
    auto LabelIdentity = [](const std::string &L) { return L; };
    for (il::Stmt *S : SL)
      Out.push_back(F->cloneStmtRemap(S, Identity, LabelIdentity));
    return Out;
  }

  AssignStmt *makeAssign(SourceLoc Loc, il::Expr *LHS, il::Expr *RHS) {
    return F->create<AssignStmt>(Loc, LHS, RHS);
  }

  /// Inserts a conversion of \p E to \p To, folding constants.
  il::Expr *coerce(il::Expr *E, const Type *To) {
    const Type *From = E->getType();
    if (From == To)
      return E;
    if (auto *CI = dyn_cast_int(E)) {
      if (To->isFloating())
        return F->makeFloatConst(To, static_cast<double>(CI->getValue()));
      if (To->isInteger() || To->isPointer())
        return F->makeIntConst(To, CI->getValue());
    }
    if (E->getKind() == il::Expr::ConstFloatKind) {
      auto *CF = static_cast<ConstFloatExpr *>(E);
      if (To->isFloating())
        return F->makeFloatConst(To, CF->getValue());
      if (To->isInteger())
        return F->makeIntConst(To, static_cast<int64_t>(CF->getValue()));
    }
    return F->create<CastExpr>(To, E);
  }

  static ConstIntExpr *dyn_cast_int(il::Expr *E) {
    if (E->getKind() == il::Expr::ConstIntKind)
      return static_cast<ConstIntExpr *>(E);
    return nullptr;
  }

  /// True for VarRef/Deref/Index — things that can be assigned to.
  static bool isLValueExpr(const il::Expr *E) {
    switch (E->getKind()) {
    case il::Expr::VarRefKind:
    case il::Expr::DerefKind:
    case il::Expr::IndexKind:
      return true;
    default:
      return false;
    }
  }

  /// Decays an array-typed lvalue to a pointer rvalue (&a, printed just as
  /// the paper prints it: `*(&a + 4*i)`).
  il::Expr *decay(il::Expr *LV) {
    const Type *Ty = LV->getType();
    if (!Ty->isArray())
      return LV;
    const Type *PtrTy = Types.getPointerType(Ty->getElementType());
    return F->create<AddrOfExpr>(PtrTy, LV);
  }

  /// Materializes \p V.E into a temporary, appending the assignment to
  /// V.SL, and returns a VarRef to the temp.
  il::Expr *materialize(Value &V, SourceLoc Loc,
                        const std::string &Prefix = "temp") {
    if (V.E->getKind() == il::Expr::VarRefKind ||
        V.E->getKind() == il::Expr::ConstIntKind ||
        V.E->getKind() == il::Expr::ConstFloatKind)
      return V.E;
    Symbol *T = F->createTemp(V.E->getType(), Prefix);
    V.SL.push_back(makeAssign(Loc, F->makeVarRef(T), V.E));
    return F->makeVarRef(T);
  }

  /// Scales an integer expression by a byte size for pointer arithmetic,
  /// folding constants (`temp_1 + 4` rather than `temp_1 + 1*4`).
  il::Expr *scaleBySize(il::Expr *E, int64_t Size) {
    E = coerce(E, intTy());
    if (auto *CI = dyn_cast_int(E))
      return F->makeIntConst(intTy(), CI->getValue() * Size);
    if (Size == 1)
      return E;
    return F->makeBinary(OpCode::Mul, F->makeIntConst(intTy(), Size), E,
                         intTy());
  }

  //===--------------------------------------------------------------------===//
  // Expression lowering
  //===--------------------------------------------------------------------===//

  Value lowerRValue(const ast::Expr *E);
  Value lowerLValue(const ast::Expr *E);
  Value lowerAssign(const ast::AssignExpr *E, bool NeedValue);
  Value lowerCompoundAssign(const ast::CompoundAssignExpr *E, bool NeedValue);
  Value lowerIncDec(const ast::IncDecExpr *E);
  Value lowerCall(const ast::CallExpr *E, bool NeedValue);
  Value lowerBinary(const ast::BinaryExpr *E);
  Value lowerShortCircuit(const ast::BinaryExpr *E);
  Value lowerConditional(const ast::ConditionalExpr *E);
  il::Expr *lowerAddSub(SourceLoc Loc, ast::BinaryOp Op, il::Expr *L,
                        il::Expr *R);

  /// Lowers an expression for its side effects only (statement context).
  StmtList lowerForEffect(const ast::Expr *E);

  //===--------------------------------------------------------------------===//
  // Statement lowering
  //===--------------------------------------------------------------------===//

  void lowerStmt(const ast::Stmt *S, Block &Out);
  void lowerBlockInto(const ast::Stmt *S, Block &Out);
  void lowerVarDecl(const ast::VarDecl &D, Block &Out);
  void lowerFunction(const ast::FunctionDecl &FD);
  void lowerGlobal(const ast::VarDecl &D);

  void emit(Block &Out, StmtList &&SL) {
    Out.Stmts.insert(Out.Stmts.end(), SL.begin(), SL.end());
  }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Value Lowerer::lowerRValue(const ast::Expr *E) {
  switch (E->getKind()) {
  case ast::Expr::IntLiteralKind: {
    const auto *L = static_cast<const ast::IntLiteralExpr *>(E);
    return {StmtList(), F->makeIntConst(intTy(), L->getValue())};
  }
  case ast::Expr::FloatLiteralKind: {
    const auto *L = static_cast<const ast::FloatLiteralExpr *>(E);
    return {StmtList(), F->makeFloatConst(Types.getDoubleType(),
                                          L->getValue())};
  }
  case ast::Expr::VarRefKind:
  case ast::Expr::IndexKind: {
    Value LV = lowerLValue(E);
    if (!LV.E)
      return LV;
    LV.E = decay(LV.E);
    return LV;
  }
  case ast::Expr::UnaryKind: {
    const auto *U = static_cast<const ast::UnaryExpr *>(E);
    switch (U->getOp()) {
    case ast::UnaryOp::Deref: {
      Value LV = lowerLValue(E);
      if (!LV.E)
        return LV;
      LV.E = decay(LV.E);
      return LV;
    }
    case ast::UnaryOp::AddrOf: {
      Value LV = lowerLValue(U->getOperand());
      if (!LV.E)
        return LV;
      const Type *LVTy = LV.E->getType();
      // &a where a is an array gives a pointer to the first element (the
      // Titan IL treats &array as the array's byte address).
      const Type *PtrTy = LVTy->isArray()
                              ? Types.getPointerType(LVTy->getElementType())
                              : Types.getPointerType(LVTy);
      LV.E = F->create<AddrOfExpr>(PtrTy, LV.E);
      return LV;
    }
    case ast::UnaryOp::Plus:
      return lowerRValue(U->getOperand());
    case ast::UnaryOp::Neg: {
      Value V = lowerRValue(U->getOperand());
      if (!V.E)
        return V;
      if (!V.E->getType()->isArithmetic()) {
        error(U->getLoc(), "unary '-' requires an arithmetic operand");
        return V;
      }
      // Fold constants.
      if (auto *CI = dyn_cast_int(V.E)) {
        V.E = F->makeIntConst(V.E->getType()->isChar() ? intTy()
                                                       : V.E->getType(),
                              -CI->getValue());
        return V;
      }
      if (V.E->getKind() == il::Expr::ConstFloatKind) {
        auto *CF = static_cast<ConstFloatExpr *>(V.E);
        V.E = F->makeFloatConst(CF->getType(), -CF->getValue());
        return V;
      }
      const Type *Ty = V.E->getType()->isChar() ? intTy() : V.E->getType();
      V.E = F->create<UnaryExpr>(Ty, OpCode::Neg, coerce(V.E, Ty));
      return V;
    }
    case ast::UnaryOp::LogNot: {
      Value V = lowerRValue(U->getOperand());
      if (!V.E)
        return V;
      V.E = F->create<UnaryExpr>(intTy(), OpCode::LogNot, V.E);
      return V;
    }
    case ast::UnaryOp::BitNot: {
      Value V = lowerRValue(U->getOperand());
      if (!V.E)
        return V;
      if (!V.E->getType()->isInteger()) {
        error(U->getLoc(), "unary '~' requires an integer operand");
        return V;
      }
      V.E = F->create<UnaryExpr>(intTy(), OpCode::BitNot,
                                 coerce(V.E, intTy()));
      return V;
    }
    }
    break;
  }
  case ast::Expr::BinaryKind: {
    const auto *B = static_cast<const ast::BinaryExpr *>(E);
    if (B->getOp() == ast::BinaryOp::LogAnd ||
        B->getOp() == ast::BinaryOp::LogOr)
      return lowerShortCircuit(B);
    return lowerBinary(B);
  }
  case ast::Expr::AssignKind:
    return lowerAssign(static_cast<const ast::AssignExpr *>(E),
                       /*NeedValue=*/true);
  case ast::Expr::CompoundAssignKind:
    return lowerCompoundAssign(static_cast<const ast::CompoundAssignExpr *>(E),
                               /*NeedValue=*/true);
  case ast::Expr::IncDecKind:
    return lowerIncDec(static_cast<const ast::IncDecExpr *>(E));
  case ast::Expr::ConditionalKind:
    return lowerConditional(static_cast<const ast::ConditionalExpr *>(E));
  case ast::Expr::CommaKind: {
    const auto *C = static_cast<const ast::CommaExpr *>(E);
    StmtList SL = lowerForEffect(C->getLHS());
    Value R = lowerRValue(C->getRHS());
    if (!R.E)
      return R;
    append(SL, std::move(R.SL));
    return {std::move(SL), R.E};
  }
  case ast::Expr::CallKind:
    return lowerCall(static_cast<const ast::CallExpr *>(E),
                     /*NeedValue=*/true);
  case ast::Expr::CastKind: {
    const auto *C = static_cast<const ast::CastExpr *>(E);
    Value V = lowerRValue(C->getOperand());
    if (!V.E)
      return V;
    V.E = coerce(V.E, C->getTargetType());
    return V;
  }
  }
  error(E->getLoc(), "unsupported expression");
  return {StmtList(), F->makeIntConst(intTy(), 0)};
}

Value Lowerer::lowerLValue(const ast::Expr *E) {
  switch (E->getKind()) {
  case ast::Expr::VarRefKind: {
    const auto *V = static_cast<const ast::VarRefExpr *>(E);
    Symbol *S = lookup(V->getName());
    if (!S) {
      error(V->getLoc(), "use of undeclared identifier '" + V->getName() +
                             "'");
      return {StmtList(), nullptr};
    }
    return {StmtList(), F->makeVarRef(S)};
  }
  case ast::Expr::UnaryKind: {
    const auto *U = static_cast<const ast::UnaryExpr *>(E);
    if (U->getOp() != ast::UnaryOp::Deref)
      break;
    Value V = lowerRValue(U->getOperand());
    if (!V.E)
      return V;
    if (!V.E->getType()->isPointer()) {
      error(U->getLoc(), "cannot dereference a non-pointer value");
      return {std::move(V.SL), nullptr};
    }
    const Type *Pointee = V.E->getType()->getElementType();
    V.E = F->create<DerefExpr>(Pointee, V.E);
    return V;
  }
  case ast::Expr::IndexKind: {
    const auto *I = static_cast<const ast::IndexExpr *>(E);
    // Determine whether the base is an array lvalue (use IndexExpr form,
    // which keeps subscripts explicit for the vectorizer) or a pointer
    // (use the `*(p + k*i)` form the paper shows).
    const ast::Expr *BaseAst = I->getBase();
    Value Base;
    bool BaseIsArrayLValue = false;
    // Peek: array lvalues are variables/subscripts of array type.
    if (BaseAst->getKind() == ast::Expr::VarRefKind ||
        BaseAst->getKind() == ast::Expr::IndexKind ||
        (BaseAst->getKind() == ast::Expr::UnaryKind &&
         static_cast<const ast::UnaryExpr *>(BaseAst)->getOp() ==
             ast::UnaryOp::Deref)) {
      Base = lowerLValue(BaseAst);
      if (!Base.E)
        return Base;
      if (Base.E->getType()->isArray())
        BaseIsArrayLValue = true;
      else
        Base.E = decay(Base.E); // already non-array; no-op
    } else {
      Base = lowerRValue(BaseAst);
      if (!Base.E)
        return Base;
    }

    Value Sub = lowerRValue(I->getIndex());
    if (!Sub.E)
      return {std::move(Base.SL), nullptr};
    append(Base.SL, std::move(Sub.SL));

    if (BaseIsArrayLValue) {
      const Type *ArrTy = Base.E->getType();
      const Type *ElemTy = ArrTy->getElementType();
      il::Expr *SubExpr = coerce(Sub.E, intTy());
      // Extend an existing IndexExpr of array type rather than nesting.
      if (Base.E->getKind() == il::Expr::IndexKind) {
        auto *BI = static_cast<IndexExpr *>(Base.E);
        std::vector<il::Expr *> Subs = BI->getSubscripts();
        Subs.push_back(SubExpr);
        return {std::move(Base.SL),
                F->create<IndexExpr>(ElemTy, BI->getBase(), std::move(Subs))};
      }
      return {std::move(Base.SL),
              F->create<IndexExpr>(ElemTy, Base.E,
                                   std::vector<il::Expr *>{SubExpr})};
    }

    // Pointer subscript: p[i] == *(p + size*i).
    if (!Base.E->getType()->isPointer()) {
      error(I->getLoc(), "subscripted value is not an array or pointer");
      return {std::move(Base.SL), nullptr};
    }
    const Type *Pointee = Base.E->getType()->getElementType();
    il::Expr *Offset = scaleBySize(Sub.E, Pointee->getSizeInBytes());
    il::Expr *Addr = F->makeBinary(OpCode::Add, Base.E, Offset,
                                   Base.E->getType());
    return {std::move(Base.SL), F->create<DerefExpr>(Pointee, Addr)};
  }
  default:
    break;
  }
  error(E->getLoc(), "expression is not an lvalue");
  return {StmtList(), nullptr};
}

Value Lowerer::lowerAssign(const ast::AssignExpr *E, bool NeedValue) {
  Value LV = lowerLValue(E->getLHS());
  Value RV = lowerRValue(E->getRHS());
  if (!LV.E || !RV.E) {
    append(LV.SL, std::move(RV.SL));
    return {std::move(LV.SL), F->makeIntConst(intTy(), 0)};
  }
  if (!isLValueExpr(LV.E)) {
    error(E->getLoc(), "left side of '=' is not assignable");
    return {std::move(LV.SL), F->makeIntConst(intTy(), 0)};
  }
  StmtList SL = std::move(LV.SL);
  append(SL, std::move(RV.SL));
  il::Expr *RHS = coerce(RV.E, LV.E->getType());
  if (!NeedValue) {
    SL.push_back(makeAssign(E->getLoc(), LV.E, RHS));
    return {std::move(SL), F->makeIntConst(intTy(), 0)};
  }
  // (SL1;SL2; t=E2; E1=t, t): the temp keeps `a = v = b` well-defined even
  // for volatile v (v is written once and never read).
  Symbol *T = F->createTemp(LV.E->getType());
  SL.push_back(makeAssign(E->getLoc(), F->makeVarRef(T), RHS));
  SL.push_back(makeAssign(E->getLoc(), LV.E, F->makeVarRef(T)));
  return {std::move(SL), F->makeVarRef(T)};
}

Value Lowerer::lowerCompoundAssign(const ast::CompoundAssignExpr *E,
                                   bool NeedValue) {
  Value LV = lowerLValue(E->getLHS());
  Value RV = lowerRValue(E->getRHS());
  if (!LV.E || !RV.E) {
    append(LV.SL, std::move(RV.SL));
    return {std::move(LV.SL), F->makeIntConst(intTy(), 0)};
  }
  if (!isLValueExpr(LV.E)) {
    error(E->getLoc(), "left side of compound assignment is not assignable");
    return {std::move(LV.SL), F->makeIntConst(intTy(), 0)};
  }
  StmtList SL = std::move(LV.SL);
  append(SL, std::move(RV.SL));

  il::Expr *LHSRead = F->cloneExpr(LV.E);
  il::Expr *NewValue;
  if (LV.E->getType()->isPointer() &&
      (E->getOp() == ast::BinaryOp::Add || E->getOp() == ast::BinaryOp::Sub)) {
    NewValue = lowerAddSub(E->getLoc(), E->getOp(), LHSRead, RV.E);
  } else {
    const Type *OpTy =
        Types.getCommonArithmeticType(LV.E->getType(), RV.E->getType());
    OpCode Op;
    switch (E->getOp()) {
    case ast::BinaryOp::Add:
      Op = OpCode::Add;
      break;
    case ast::BinaryOp::Sub:
      Op = OpCode::Sub;
      break;
    case ast::BinaryOp::Mul:
      Op = OpCode::Mul;
      break;
    case ast::BinaryOp::Div:
      Op = OpCode::Div;
      break;
    case ast::BinaryOp::Rem:
      Op = OpCode::Rem;
      break;
    case ast::BinaryOp::Shl:
      Op = OpCode::Shl;
      break;
    case ast::BinaryOp::Shr:
      Op = OpCode::Shr;
      break;
    case ast::BinaryOp::BitAnd:
      Op = OpCode::BitAnd;
      break;
    case ast::BinaryOp::BitOr:
      Op = OpCode::BitOr;
      break;
    case ast::BinaryOp::BitXor:
      Op = OpCode::BitXor;
      break;
    default:
      error(E->getLoc(), "bad compound assignment operator");
      Op = OpCode::Add;
      break;
    }
    NewValue = F->makeBinary(Op, coerce(LHSRead, OpTy), coerce(RV.E, OpTy),
                             OpTy);
  }
  il::Expr *Converted = coerce(NewValue, LV.E->getType());
  if (!NeedValue) {
    SL.push_back(makeAssign(E->getLoc(), LV.E, Converted));
    return {std::move(SL), F->makeIntConst(intTy(), 0)};
  }
  Symbol *T = F->createTemp(LV.E->getType());
  SL.push_back(makeAssign(E->getLoc(), F->makeVarRef(T), Converted));
  SL.push_back(makeAssign(E->getLoc(), LV.E, F->makeVarRef(T)));
  return {std::move(SL), F->makeVarRef(T)};
}

Value Lowerer::lowerIncDec(const ast::IncDecExpr *E) {
  // Post-increment of a pointer produces exactly the paper's shape:
  //   temp_1 = a; a = temp_1 + 4;  ... value temp_1
  Value LV = lowerLValue(E->getOperand());
  if (!LV.E)
    return {std::move(LV.SL), F->makeIntConst(intTy(), 0)};
  if (!isLValueExpr(LV.E)) {
    error(E->getLoc(), "operand of ++/-- is not assignable");
    return {std::move(LV.SL), F->makeIntConst(intTy(), 0)};
  }
  const Type *Ty = LV.E->getType();
  if (!Ty->isScalar()) {
    error(E->getLoc(), "operand of ++/-- must be scalar");
    return {std::move(LV.SL), F->makeIntConst(intTy(), 0)};
  }
  StmtList SL = std::move(LV.SL);
  int64_t Delta = 1;
  if (Ty->isPointer())
    Delta = Ty->getElementType()->getSizeInBytes();
  if (!E->isIncrement())
    Delta = -Delta;

  Symbol *T = F->createTemp(Ty);
  il::Expr *DeltaE = Ty->isFloating()
                         ? static_cast<il::Expr *>(F->makeFloatConst(
                               Ty, static_cast<double>(Delta)))
                         : F->makeIntConst(Ty->isPointer() ? intTy() : Ty,
                                           Delta);
  if (E->isPrefix()) {
    // t = lv + d; lv = t; value t.
    SL.push_back(makeAssign(E->getLoc(), F->makeVarRef(T),
                            F->makeBinary(OpCode::Add, F->cloneExpr(LV.E),
                                          DeltaE, Ty)));
    SL.push_back(makeAssign(E->getLoc(), LV.E, F->makeVarRef(T)));
  } else {
    // t = lv; lv = t + d; value t.
    SL.push_back(makeAssign(E->getLoc(), F->makeVarRef(T),
                            F->cloneExpr(LV.E)));
    SL.push_back(makeAssign(E->getLoc(), LV.E,
                            F->makeBinary(OpCode::Add, F->makeVarRef(T),
                                          DeltaE, Ty)));
  }
  return {std::move(SL), F->makeVarRef(T)};
}

il::Expr *Lowerer::lowerAddSub(SourceLoc Loc, ast::BinaryOp Op, il::Expr *L,
                               il::Expr *R) {
  bool IsSub = Op == ast::BinaryOp::Sub;
  const Type *LT = L->getType();
  const Type *RT = R->getType();

  if (LT->isPointer() && RT->isInteger()) {
    il::Expr *Off = scaleBySize(R, LT->getElementType()->getSizeInBytes());
    return F->makeBinary(IsSub ? OpCode::Sub : OpCode::Add, L, Off, LT);
  }
  if (LT->isInteger() && RT->isPointer() && !IsSub) {
    il::Expr *Off = scaleBySize(L, RT->getElementType()->getSizeInBytes());
    return F->makeBinary(OpCode::Add, R, Off, RT);
  }
  if (LT->isPointer() && RT->isPointer() && IsSub) {
    il::Expr *Diff = F->makeBinary(OpCode::Sub, coerce(L, intTy()),
                                   coerce(R, intTy()), intTy());
    int64_t Size = LT->getElementType()->getSizeInBytes();
    if (Size == 1)
      return Diff;
    return F->makeBinary(OpCode::Div, Diff, F->makeIntConst(intTy(), Size),
                         intTy());
  }
  if (LT->isArithmetic() && RT->isArithmetic()) {
    const Type *Ty = Types.getCommonArithmeticType(LT, RT);
    return F->makeBinary(IsSub ? OpCode::Sub : OpCode::Add, coerce(L, Ty),
                         coerce(R, Ty), Ty);
  }
  error(Loc, "invalid operands to '+'/'-'");
  return F->makeIntConst(intTy(), 0);
}

Value Lowerer::lowerBinary(const ast::BinaryExpr *E) {
  Value L = lowerRValue(E->getLHS());
  Value R = lowerRValue(E->getRHS());
  StmtList SL = std::move(L.SL);
  append(SL, std::move(R.SL));
  if (!L.E || !R.E)
    return {std::move(SL), F->makeIntConst(intTy(), 0)};

  switch (E->getOp()) {
  case ast::BinaryOp::Add:
  case ast::BinaryOp::Sub:
    return {std::move(SL), lowerAddSub(E->getLoc(), E->getOp(), L.E, R.E)};
  case ast::BinaryOp::Mul:
  case ast::BinaryOp::Div:
  case ast::BinaryOp::Rem: {
    if (!L.E->getType()->isArithmetic() || !R.E->getType()->isArithmetic()) {
      error(E->getLoc(), "invalid operands to arithmetic operator");
      return {std::move(SL), F->makeIntConst(intTy(), 0)};
    }
    const Type *Ty =
        Types.getCommonArithmeticType(L.E->getType(), R.E->getType());
    if (E->getOp() == ast::BinaryOp::Rem && !Ty->isInteger()) {
      error(E->getLoc(), "invalid operands to '%'");
      return {std::move(SL), F->makeIntConst(intTy(), 0)};
    }
    OpCode Op = E->getOp() == ast::BinaryOp::Mul   ? OpCode::Mul
                : E->getOp() == ast::BinaryOp::Div ? OpCode::Div
                                                   : OpCode::Rem;
    return {std::move(SL), F->makeBinary(Op, coerce(L.E, Ty), coerce(R.E, Ty),
                                         Ty)};
  }
  case ast::BinaryOp::Shl:
  case ast::BinaryOp::Shr:
  case ast::BinaryOp::BitAnd:
  case ast::BinaryOp::BitOr:
  case ast::BinaryOp::BitXor: {
    if (!L.E->getType()->isInteger() || !R.E->getType()->isInteger()) {
      error(E->getLoc(), "invalid operands to bitwise operator");
      return {std::move(SL), F->makeIntConst(intTy(), 0)};
    }
    OpCode Op;
    switch (E->getOp()) {
    case ast::BinaryOp::Shl:
      Op = OpCode::Shl;
      break;
    case ast::BinaryOp::Shr:
      Op = OpCode::Shr;
      break;
    case ast::BinaryOp::BitAnd:
      Op = OpCode::BitAnd;
      break;
    case ast::BinaryOp::BitOr:
      Op = OpCode::BitOr;
      break;
    default:
      Op = OpCode::BitXor;
      break;
    }
    return {std::move(SL),
            F->makeBinary(Op, coerce(L.E, intTy()), coerce(R.E, intTy()),
                          intTy())};
  }
  case ast::BinaryOp::Lt:
  case ast::BinaryOp::Gt:
  case ast::BinaryOp::Le:
  case ast::BinaryOp::Ge:
  case ast::BinaryOp::Eq:
  case ast::BinaryOp::Ne: {
    OpCode Op;
    switch (E->getOp()) {
    case ast::BinaryOp::Lt:
      Op = OpCode::Lt;
      break;
    case ast::BinaryOp::Gt:
      Op = OpCode::Gt;
      break;
    case ast::BinaryOp::Le:
      Op = OpCode::Le;
      break;
    case ast::BinaryOp::Ge:
      Op = OpCode::Ge;
      break;
    case ast::BinaryOp::Eq:
      Op = OpCode::Eq;
      break;
    default:
      Op = OpCode::Ne;
      break;
    }
    const Type *LT = L.E->getType();
    const Type *RT = R.E->getType();
    il::Expr *LE = L.E;
    il::Expr *RE = R.E;
    if (LT->isArithmetic() && RT->isArithmetic()) {
      const Type *Ty = Types.getCommonArithmeticType(LT, RT);
      LE = coerce(LE, Ty);
      RE = coerce(RE, Ty);
    } else if (LT->isPointer() || RT->isPointer()) {
      // Pointer comparisons (including against integer 0) compare byte
      // addresses.
      LE = coerce(LE, intTy());
      RE = coerce(RE, intTy());
    }
    return {std::move(SL), F->makeBinary(Op, LE, RE, intTy())};
  }
  case ast::BinaryOp::LogAnd:
  case ast::BinaryOp::LogOr:
    break; // handled by lowerShortCircuit
  }
  error(E->getLoc(), "unsupported binary operator");
  return {std::move(SL), F->makeIntConst(intTy(), 0)};
}

Value Lowerer::lowerShortCircuit(const ast::BinaryExpr *E) {
  // (SL1,E1) && (SL2,E2):
  //   SL1; if (E1) { SL2; t = (E2 != 0); } else { t = 0; }
  // || is the mirror image.  The && / || operators are not representable in
  // IL expressions (paper Section 4).
  bool IsAnd = E->getOp() == ast::BinaryOp::LogAnd;
  Value L = lowerRValue(E->getLHS());
  Value R = lowerRValue(E->getRHS());
  if (!L.E || !R.E) {
    append(L.SL, std::move(R.SL));
    return {std::move(L.SL), F->makeIntConst(intTy(), 0)};
  }
  Symbol *T = F->createTemp(intTy());
  StmtList SL = std::move(L.SL);
  auto *If = F->create<IfStmt>(E->getLoc(), L.E);
  il::Expr *RBool = F->makeBinary(OpCode::Ne, coerce(R.E, intTy()),
                                  F->makeIntConst(intTy(), 0), intTy());
  if (IsAnd) {
    for (il::Stmt *S : R.SL)
      If->getThen().Stmts.push_back(S);
    If->getThen().Stmts.push_back(
        makeAssign(E->getLoc(), F->makeVarRef(T), RBool));
    If->getElse().Stmts.push_back(makeAssign(E->getLoc(), F->makeVarRef(T),
                                             F->makeIntConst(intTy(), 0)));
  } else {
    If->getThen().Stmts.push_back(makeAssign(E->getLoc(), F->makeVarRef(T),
                                             F->makeIntConst(intTy(), 1)));
    for (il::Stmt *S : R.SL)
      If->getElse().Stmts.push_back(S);
    If->getElse().Stmts.push_back(
        makeAssign(E->getLoc(), F->makeVarRef(T), RBool));
  }
  SL.push_back(If);
  return {std::move(SL), F->makeVarRef(T)};
}

Value Lowerer::lowerConditional(const ast::ConditionalExpr *E) {
  Value C = lowerRValue(E->getCond());
  Value TV = lowerRValue(E->getTrueExpr());
  Value FV = lowerRValue(E->getFalseExpr());
  if (!C.E || !TV.E || !FV.E) {
    append(C.SL, std::move(TV.SL));
    append(C.SL, std::move(FV.SL));
    return {std::move(C.SL), F->makeIntConst(intTy(), 0)};
  }
  const Type *TT = TV.E->getType();
  const Type *FT = FV.E->getType();
  const Type *Ty;
  if (TT->isArithmetic() && FT->isArithmetic())
    Ty = Types.getCommonArithmeticType(TT, FT);
  else if (TT->isPointer())
    Ty = TT;
  else
    Ty = FT;
  Symbol *T = F->createTemp(Ty);
  StmtList SL = std::move(C.SL);
  auto *If = F->create<IfStmt>(E->getLoc(), C.E);
  for (il::Stmt *S : TV.SL)
    If->getThen().Stmts.push_back(S);
  If->getThen().Stmts.push_back(
      makeAssign(E->getLoc(), F->makeVarRef(T), coerce(TV.E, Ty)));
  for (il::Stmt *S : FV.SL)
    If->getElse().Stmts.push_back(S);
  If->getElse().Stmts.push_back(
      makeAssign(E->getLoc(), F->makeVarRef(T), coerce(FV.E, Ty)));
  SL.push_back(If);
  return {std::move(SL), F->makeVarRef(T)};
}

Value Lowerer::lowerCall(const ast::CallExpr *E, bool NeedValue) {
  StmtList SL;
  std::vector<il::Expr *> Args;
  const ast::FunctionDecl *Callee = nullptr;
  auto It = FuncDecls.find(E->getCallee());
  if (It != FuncDecls.end())
    Callee = It->second;

  for (size_t I = 0; I < E->getArgs().size(); ++I) {
    Value A = lowerRValue(E->getArgs()[I]);
    if (!A.E)
      return {std::move(SL), F->makeIntConst(intTy(), 0)};
    append(SL, std::move(A.SL));
    il::Expr *Arg = A.E;
    if (Callee && I < Callee->Params.size())
      Arg = coerce(Arg, Callee->Params[I].DeclType);
    Args.push_back(Arg);
  }
  if (Callee && E->getArgs().size() != Callee->Params.size())
    error(E->getLoc(), formatString("call to '%s' with %zu arguments; %zu "
                                    "expected",
                                    E->getCallee().c_str(),
                                    E->getArgs().size(),
                                    Callee->Params.size()));

  const Type *RetTy = Callee ? Callee->ReturnType : intTy();
  Symbol *Result = nullptr;
  if (NeedValue && !RetTy->isVoid())
    Result = F->createTemp(RetTy, "call");
  SL.push_back(F->create<CallStmt>(E->getLoc(), Result, E->getCallee(),
                                   std::move(Args)));
  if (NeedValue && RetTy->isVoid()) {
    error(E->getLoc(), "void value not ignored as it ought to be");
    return {std::move(SL), F->makeIntConst(intTy(), 0)};
  }
  il::Expr *Val = Result ? static_cast<il::Expr *>(F->makeVarRef(Result))
                         : F->makeIntConst(intTy(), 0);
  return {std::move(SL), Val};
}

StmtList Lowerer::lowerForEffect(const ast::Expr *E) {
  switch (E->getKind()) {
  case ast::Expr::AssignKind:
    return lowerAssign(static_cast<const ast::AssignExpr *>(E),
                       /*NeedValue=*/false)
        .SL;
  case ast::Expr::CompoundAssignKind:
    return lowerCompoundAssign(static_cast<const ast::CompoundAssignExpr *>(E),
                               /*NeedValue=*/false)
        .SL;
  case ast::Expr::IncDecKind:
    return lowerIncDec(static_cast<const ast::IncDecExpr *>(E)).SL;
  case ast::Expr::CallKind:
    return lowerCall(static_cast<const ast::CallExpr *>(E),
                     /*NeedValue=*/false)
        .SL;
  case ast::Expr::CommaKind: {
    const auto *C = static_cast<const ast::CommaExpr *>(E);
    StmtList SL = lowerForEffect(C->getLHS());
    StmtList SR = lowerForEffect(C->getRHS());
    append(SL, std::move(SR));
    return SL;
  }
  default: {
    // Expression with no effect at top level; still lower to surface any
    // embedded side effects, then drop the pure value.
    Value V = lowerRValue(E);
    return std::move(V.SL);
  }
  }
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Lowerer::lowerVarDecl(const ast::VarDecl &D, Block &Out) {
  StorageKind Storage = StorageKind::Local;
  if (D.Storage == ast::StorageClass::Static)
    Storage = StorageKind::Static;

  Symbol *S = F->createSymbol(uniqueSymName(D.Name), D.DeclType, Storage,
                              D.IsVolatile);
  declare(D.Loc, D.Name, S);

  if (!D.Init)
    return;
  if (Storage == StorageKind::Static) {
    // Static initializers must be constant; they are applied when the
    // machine image is laid out.
    Value V = lowerRValue(D.Init);
    if (!V.E || !V.SL.empty()) {
      error(D.Loc, "static initializer must be a constant expression");
      return;
    }
    GlobalInit Init;
    if (auto *CI = dyn_cast_int(V.E)) {
      Init.IntValue = CI->getValue();
    } else if (V.E->getKind() == il::Expr::ConstFloatKind) {
      Init.IsFloat = true;
      Init.FloatValue = static_cast<ConstFloatExpr *>(V.E)->getValue();
    } else {
      error(D.Loc, "static initializer must be a constant expression");
      return;
    }
    S->setInit(Init);
    return;
  }
  Value V = lowerRValue(D.Init);
  if (!V.E)
    return;
  emit(Out, std::move(V.SL));
  Out.Stmts.push_back(
      makeAssign(D.Loc, F->makeVarRef(S), coerce(V.E, D.DeclType)));
}

void Lowerer::lowerBlockInto(const ast::Stmt *S, Block &Out) {
  if (const auto *B = dynamic_cast<const ast::BlockStmt *>(S)) {
    Scopes.emplace_back();
    for (const ast::Stmt *Sub : B->getBody())
      lowerStmt(Sub, Out);
    Scopes.pop_back();
    return;
  }
  lowerStmt(S, Out);
}

void Lowerer::lowerStmt(const ast::Stmt *S, Block &Out) {
  switch (S->getKind()) {
  case ast::Stmt::EmptyKind:
    return;
  case ast::Stmt::ExprStmtKind: {
    const auto *ES = static_cast<const ast::ExprStmt *>(S);
    emit(Out, lowerForEffect(ES->getExpr()));
    return;
  }
  case ast::Stmt::DeclStmtKind: {
    const auto *DS = static_cast<const ast::DeclStmt *>(S);
    for (const ast::VarDecl &D : DS->getDecls())
      lowerVarDecl(D, Out);
    return;
  }
  case ast::Stmt::BlockKind: {
    Scopes.emplace_back();
    for (const ast::Stmt *Sub :
         static_cast<const ast::BlockStmt *>(S)->getBody())
      lowerStmt(Sub, Out);
    Scopes.pop_back();
    return;
  }
  case ast::Stmt::IfKind: {
    const auto *I = static_cast<const ast::IfStmt *>(S);
    Value C = lowerRValue(I->getCond());
    if (!C.E)
      return;
    emit(Out, std::move(C.SL));
    auto *If = F->create<IfStmt>(I->getLoc(), C.E);
    lowerBlockInto(I->getThen(), If->getThen());
    if (I->getElse())
      lowerBlockInto(I->getElse(), If->getElse());
    Out.Stmts.push_back(If);
    return;
  }
  case ast::Stmt::WhileKind: {
    // while ((SL,E)) body  =>  SL; while (E) { body; Lcont; SL' }  with SL'
    // a clone of SL (paper Section 4).
    const auto *W = static_cast<const ast::WhileStmt *>(S);
    Value C = lowerRValue(W->getCond());
    if (!C.E)
      return;
    emit(Out, cloneStmtList(C.SL));
    auto *Loop = F->create<WhileStmt>(W->getLoc(), C.E);
    Loop->setSafeVectorPragma(W->hasSafeVectorPragma());

    Loops.push_back({F->createLabelName("brk"), F->createLabelName("cont")});
    lowerBlockInto(W->getBody(), Loop->getBody());
    LoopCtx Ctx = Loops.back();
    Loops.pop_back();

    if (Ctx.UsedContinue)
      Loop->getBody().Stmts.push_back(
          F->create<LabelStmt>(W->getLoc(), Ctx.ContinueLabel));
    for (il::Stmt *Dup : C.SL)
      Loop->getBody().Stmts.push_back(Dup);
    Out.Stmts.push_back(Loop);
    if (Ctx.UsedBreak)
      Out.Stmts.push_back(F->create<LabelStmt>(W->getLoc(), Ctx.BreakLabel));
    return;
  }
  case ast::Stmt::DoWhileKind: {
    // Ltop:; body; Lcont; SL; if (E) goto Ltop; Lbrk.
    const auto *D = static_cast<const ast::DoWhileStmt *>(S);
    std::string TopLabel = F->createLabelName("top");
    Out.Stmts.push_back(F->create<LabelStmt>(D->getLoc(), TopLabel));

    Loops.push_back({F->createLabelName("brk"), F->createLabelName("cont")});
    Block BodyTmp;
    lowerBlockInto(D->getBody(), BodyTmp);
    LoopCtx Ctx = Loops.back();
    Loops.pop_back();

    for (il::Stmt *Sub : BodyTmp.Stmts)
      Out.Stmts.push_back(Sub);
    if (Ctx.UsedContinue)
      Out.Stmts.push_back(
          F->create<LabelStmt>(D->getLoc(), Ctx.ContinueLabel));
    Value C = lowerRValue(D->getCond());
    if (!C.E)
      return;
    emit(Out, std::move(C.SL));
    auto *If = F->create<IfStmt>(D->getLoc(), C.E);
    If->getThen().Stmts.push_back(F->create<GotoStmt>(D->getLoc(), TopLabel));
    Out.Stmts.push_back(If);
    if (Ctx.UsedBreak)
      Out.Stmts.push_back(F->create<LabelStmt>(D->getLoc(), Ctx.BreakLabel));
    return;
  }
  case ast::Stmt::ForKind: {
    // for (init; cond; inc) body => init; SL; while (E) { body; Lcont; inc;
    // SL' } — the front end does no sophisticated analysis here (paper
    // Section 5.2); while→DO conversion recovers the iterative form.
    const auto *FS = static_cast<const ast::ForStmt *>(S);
    Scopes.emplace_back(); // scope for a for-init declaration
    if (FS->getInit())
      lowerStmt(FS->getInit(), Out);

    Value C;
    if (FS->getCond()) {
      C = lowerRValue(FS->getCond());
      if (!C.E) {
        Scopes.pop_back();
        return;
      }
    } else {
      C = {StmtList(), F->makeIntConst(intTy(), 1)};
    }
    emit(Out, cloneStmtList(C.SL));
    auto *Loop = F->create<WhileStmt>(FS->getLoc(), C.E);
    Loop->setSafeVectorPragma(FS->hasSafeVectorPragma());

    Loops.push_back({F->createLabelName("brk"), F->createLabelName("cont")});
    lowerBlockInto(FS->getBody(), Loop->getBody());
    LoopCtx Ctx = Loops.back();
    Loops.pop_back();

    if (Ctx.UsedContinue)
      Loop->getBody().Stmts.push_back(
          F->create<LabelStmt>(FS->getLoc(), Ctx.ContinueLabel));
    if (FS->getInc()) {
      StmtList Inc = lowerForEffect(FS->getInc());
      for (il::Stmt *Sub : Inc)
        Loop->getBody().Stmts.push_back(Sub);
    }
    for (il::Stmt *Dup : C.SL)
      Loop->getBody().Stmts.push_back(Dup);
    Out.Stmts.push_back(Loop);
    if (Ctx.UsedBreak)
      Out.Stmts.push_back(F->create<LabelStmt>(FS->getLoc(), Ctx.BreakLabel));
    Scopes.pop_back();
    return;
  }
  case ast::Stmt::ReturnKind: {
    const auto *R = static_cast<const ast::ReturnStmt *>(S);
    il::Expr *Value = nullptr;
    if (R->getValue()) {
      auto V = lowerRValue(R->getValue());
      if (!V.E)
        return;
      emit(Out, std::move(V.SL));
      if (F->getReturnType()->isVoid())
        error(R->getLoc(), "void function cannot return a value");
      else
        Value = coerce(V.E, F->getReturnType());
    } else if (!F->getReturnType()->isVoid()) {
      error(R->getLoc(), "non-void function must return a value");
    }
    Out.Stmts.push_back(F->create<il::ReturnStmt>(R->getLoc(), Value));
    return;
  }
  case ast::Stmt::BreakKind: {
    if (Loops.empty()) {
      error(S->getLoc(), "break outside of a loop");
      return;
    }
    Loops.back().UsedBreak = true;
    Out.Stmts.push_back(
        F->create<il::GotoStmt>(S->getLoc(), Loops.back().BreakLabel));
    return;
  }
  case ast::Stmt::ContinueKind: {
    if (Loops.empty()) {
      error(S->getLoc(), "continue outside of a loop");
      return;
    }
    Loops.back().UsedContinue = true;
    Out.Stmts.push_back(
        F->create<il::GotoStmt>(S->getLoc(), Loops.back().ContinueLabel));
    return;
  }
  case ast::Stmt::GotoKind: {
    const auto *G = static_cast<const ast::GotoStmt *>(S);
    Out.Stmts.push_back(
        F->create<il::GotoStmt>(G->getLoc(), "L_" + G->getLabel()));
    return;
  }
  case ast::Stmt::LabeledKind: {
    const auto *L = static_cast<const ast::LabeledStmt *>(S);
    Out.Stmts.push_back(
        F->create<il::LabelStmt>(L->getLoc(), "L_" + L->getLabel()));
    lowerStmt(L->getSub(), Out);
    return;
  }
  }
}

void Lowerer::lowerFunction(const ast::FunctionDecl &FD) {
  F = P.createFunction(FD.Name, FD.ReturnType);
  F->setFortranPointerSemantics(FD.FortranPointerSemantics);
  Scopes.clear();
  Scopes.emplace_back();
  Loops.clear();

  for (const ast::VarDecl &PD : FD.Params) {
    Symbol *S = F->createSymbol(uniqueSymName(PD.Name), PD.DeclType,
                                StorageKind::Param, PD.IsVolatile);
    F->addParam(S);
    declare(PD.Loc, PD.Name, S);
  }
  lowerBlockInto(FD.Body, F->getBody());

  // Implicit return at the end.
  bool NeedsReturn = F->getBody().empty() ||
                     F->getBody().Stmts.back()->getKind() !=
                         il::Stmt::ReturnKind;
  if (NeedsReturn)
    F->getBody().Stmts.push_back(F->create<il::ReturnStmt>(FD.Loc, nullptr));
}

void Lowerer::lowerGlobal(const ast::VarDecl &D) {
  if (P.findGlobal(D.Name)) {
    if (D.Storage != ast::StorageClass::Extern)
      Diags.error(D.Loc, "redefinition of global '" + D.Name + "'");
    return;
  }
  Symbol *G = P.createGlobal(D.Name, D.DeclType, D.IsVolatile);
  if (!D.Init)
    return;
  GlobalInit Init;
  const ast::Expr *InitE = D.Init;
  bool Negate = false;
  if (const auto *U = dynamic_cast<const ast::UnaryExpr *>(InitE)) {
    if (U->getOp() == ast::UnaryOp::Neg) {
      Negate = true;
      InitE = U->getOperand();
    }
  }
  if (const auto *I = dynamic_cast<const ast::IntLiteralExpr *>(InitE)) {
    Init.IntValue = Negate ? -I->getValue() : I->getValue();
    if (D.DeclType->isFloating()) {
      Init.IsFloat = true;
      Init.FloatValue = static_cast<double>(Init.IntValue);
    }
  } else if (const auto *FL =
                 dynamic_cast<const ast::FloatLiteralExpr *>(InitE)) {
    Init.IsFloat = true;
    Init.FloatValue = Negate ? -FL->getValue() : FL->getValue();
    if (D.DeclType->isInteger()) {
      Init.IsFloat = false;
      Init.IntValue = static_cast<int64_t>(Init.FloatValue);
    }
  } else {
    Diags.error(D.Loc, "global initializer must be a constant");
    return;
  }
  G->setInit(Init);
}

void Lowerer::run() {
  for (const ast::FunctionDecl &FD : TU.Functions)
    FuncDecls[FD.Name] = &FD;
  for (const ast::VarDecl &G : TU.Globals)
    lowerGlobal(G);
  for (const ast::FunctionDecl &FD : TU.Functions)
    if (FD.Body)
      lowerFunction(FD);
}

} // namespace

void tcc::lowerTranslationUnit(const ast::TranslationUnit &TU,
                               il::Program &Program,
                               DiagnosticEngine &Diags) {
  Lowerer(TU, Program, Diags).run();
}
