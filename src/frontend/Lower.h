//===----------------------------------------------------------------------===//
///
/// \file
/// AST → IL lowering (paper Section 4).
///
/// The front end represents a C expression as a pair: a sequence of IL
/// statements plus a pure IL expression.  Every operator is recast to
/// combine such pairs:
///
///   (SL1,E1) + (SL2,E2)  =>  (SL1;SL2, E1+E2)
///   (SL1,E1) = (SL2,E2)  =>  (SL1;SL2; t=E2; E1=t, t)
///
/// with the temporary `t` making right-associated chains like `a = v = b`
/// well-defined even when `v` is volatile (the paper's observation that `v`
/// is then written once and never read is reproduced here).
///
/// Side-effecting operators (++/--, embedded assignment, &&, ||, ?:, comma,
/// calls) all become explicit statements; for loops become while loops; and
/// expressions in conditional context duplicate their statement list at the
/// bottom of the loop body exactly as the paper describes.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_FRONTEND_LOWER_H
#define TCC_FRONTEND_LOWER_H

#include "ast/Ast.h"
#include "il/IL.h"
#include "support/Diagnostics.h"

#include <memory>

namespace tcc {

/// Lowers a parsed translation unit into \p Program.  The AST must have
/// been parsed with \p Program.getTypes() as its TypeContext.  Reports
/// semantic errors (undeclared identifiers, bad lvalues, type misuse) into
/// \p Diags.
void lowerTranslationUnit(const ast::TranslationUnit &TU, il::Program &Program,
                          DiagnosticEngine &Diags);

} // namespace tcc

#endif // TCC_FRONTEND_LOWER_H
