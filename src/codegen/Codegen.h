//===----------------------------------------------------------------------===//
///
/// \file
/// Code generation: IL → TitanISA.
///
/// Register allocation follows the machine's character (paper Section 2):
/// the vector register file doubles as a large scalar FP register set, so
/// FP scalars essentially always live in registers; integer scalars
/// compete for a RISC-sized register budget with the least-used ones
/// spilled to the frame.  Address-taken and volatile scalars, and all
/// aggregates, are memory-resident (aliasing correctness).
///
/// Dependence-driven instruction scheduling (paper Section 6) appears
/// here as a load flag: when enabled, loads in loop statements that the
/// dependence graph proves free of incoming store conflicts are marked
/// NoStoreConflict, letting the machine overlap memory access with
/// computation.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_CODEGEN_CODEGEN_H
#define TCC_CODEGEN_CODEGEN_H

#include "il/IL.h"
#include "support/Diagnostics.h"
#include "titan/TitanISA.h"

namespace tcc {
namespace codegen {

struct CodegenOptions {
  /// Integer scalars promoted to registers (hottest first); the rest live
  /// in the frame.
  unsigned IntRegisterBudget = 24;
  /// FP scalars promoted to the register file.
  unsigned FpRegisterBudget = 512;
  /// Mark dependence-proven-independent loads so the machine can schedule
  /// them past the store queue.
  bool EnableDepScheduling = false;
};

/// Lowers \p P to a linked Titan program.  Calls to functions with no
/// body get empty stubs (returning zero).  Reports unsupported constructs
/// into \p Diags.
titan::TitanProgram generateProgram(il::Program &P, DiagnosticEngine &Diags,
                                    const CodegenOptions &Opts = {});

} // namespace codegen
} // namespace tcc

#endif // TCC_CODEGEN_CODEGEN_H
