#include "codegen/Codegen.h"

#include "analysis/UseDef.h"
#include "dependence/DependenceGraph.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::codegen;
using titan::ElemKind;
using titan::Instr;
using titan::Opcode;
using titan::SymbolLocation;
using titan::TitanFunction;
using titan::TitanProgram;

namespace {

bool isIntLike(const Type *Ty) {
  return Ty->isInteger() || Ty->isPointer();
}

ElemKind elemKindOf(const Type *Ty) {
  if (Ty->isDouble())
    return ElemKind::Float64;
  if (Ty->isFloat())
    return ElemKind::Float32;
  return ElemKind::Int32;
}

/// Per-function code generation.
class FunctionCodegen {
public:
  FunctionCodegen(Function &F, TitanProgram &Prog, DiagnosticEngine &Diags,
                  const CodegenOptions &Opts,
                  const std::map<std::string, size_t> &FuncIndex)
      : F(F), Prog(Prog), Diags(Diags), Opts(Opts), FuncIndex(FuncIndex) {}

  TitanFunction run() {
    Out.Name = F.getName();
    Out.RetIsFp = F.getReturnType()->isFloating();
    Out.HasRetValue = !F.getReturnType()->isVoid();

    assignStorage();

    for (Symbol *P : F.getParams())
      Out.ParamLocs.push_back(locOf(P));
    Out.NumParams = static_cast<unsigned>(F.getParams().size());

    genBlock(F.getBody());
    // Implicit return (lowering appends one, but guard anyway).
    emit(Opcode::RET);

    resolveFixups();
    Out.NumIntRegs = NextIntReg;
    Out.NumFpRegs = NextFpReg;
    Out.NumVecRegs = NextVecReg;
    Out.FrameSize = FrameSize;
    return std::move(Out);
  }

private:
  //===--------------------------------------------------------------------===//
  // Storage assignment
  //===--------------------------------------------------------------------===//

  void assignStorage() {
    // r0 is the frame pointer by convention.
    NextIntReg = 1;

    std::set<Symbol *> AddrTaken = analysis::computeAddressTakenScalars(F);

    // Use counts for register ranking.
    std::map<Symbol *, unsigned> UseCount;
    forEachStmt(F.getBody(), [&](Stmt *S) {
      forEachExprSlot(S, [&](Expr *&Slot) {
        forEachSubExprSlot(Slot, [&](Expr *&Sub) {
          if (Sub->getKind() == Expr::VarRefKind)
            ++UseCount[static_cast<VarRefExpr *>(Sub)->getSymbol()];
        });
      });
      if (S->getKind() == Stmt::DoLoopKind)
        UseCount[static_cast<DoLoopStmt *>(S)->getIndexVar()] += 4;
    });

    std::vector<Symbol *> IntCands, FpCands;
    auto Classify = [&](Symbol *Sym) {
      if (Locs.count(Sym))
        return;
      const Type *Ty = Sym->getType();
      if (Sym->getStorage() == StorageKind::Static) {
        SymbolLocation Loc;
        Loc.K = SymbolLocation::Global;
        Loc.Addr = Prog.GlobalAddresses.at(F.getName() + "." +
                                           Sym->getName());
        Locs[Sym] = Loc;
        return;
      }
      if (!Ty->isScalar() || Sym->isVolatile() || AddrTaken.count(Sym)) {
        SymbolLocation Loc;
        Loc.K = SymbolLocation::Frame;
        int64_t Size = Ty->isScalar() ? 8 : Ty->getSizeInBytes();
        FrameSize = (FrameSize + 7) & ~int64_t(7);
        Loc.Index = static_cast<int>(FrameSize);
        FrameSize += Size;
        Locs[Sym] = Loc;
        return;
      }
      if (isIntLike(Ty))
        IntCands.push_back(Sym);
      else
        FpCands.push_back(Sym);
    };
    for (const auto &S : F.getSymbols())
      Classify(S.get());

    auto ByUses = [&](Symbol *A, Symbol *B) {
      return UseCount[A] > UseCount[B];
    };
    std::stable_sort(IntCands.begin(), IntCands.end(), ByUses);
    std::stable_sort(FpCands.begin(), FpCands.end(), ByUses);

    auto Promote = [&](std::vector<Symbol *> &Cands, unsigned Budget,
                       bool Fp) {
      for (size_t I = 0; I < Cands.size(); ++I) {
        SymbolLocation Loc;
        if (I < Budget) {
          Loc.K = Fp ? SymbolLocation::FpReg : SymbolLocation::IntReg;
          Loc.Index = static_cast<int>(Fp ? NextFpReg++ : NextIntReg++);
        } else {
          Loc.K = SymbolLocation::Frame;
          FrameSize = (FrameSize + 7) & ~int64_t(7);
          Loc.Index = static_cast<int>(FrameSize);
          FrameSize += 8;
        }
        Locs[Cands[I]] = Loc;
      }
    };
    Promote(IntCands, Opts.IntRegisterBudget, false);
    Promote(FpCands, Opts.FpRegisterBudget, true);
  }

  SymbolLocation locOf(Symbol *Sym) {
    auto It = Locs.find(Sym);
    if (It != Locs.end())
      return It->second;
    // Globals (program symbols).
    SymbolLocation Loc;
    Loc.K = SymbolLocation::Global;
    auto GIt = Prog.GlobalAddresses.find(Sym->getName());
    if (GIt == Prog.GlobalAddresses.end()) {
      Diags.error(SourceLoc(), "codegen: unknown symbol '" + Sym->getName() +
                                   "'");
      Loc.Addr = 0;
      return Loc;
    }
    Loc.Addr = GIt->second;
    return Loc;
  }

  //===--------------------------------------------------------------------===//
  // Emission helpers
  //===--------------------------------------------------------------------===//

  size_t emit(Opcode Op, int Dst = -1, int SrcA = -1, int SrcB = -1,
              int64_t Imm = 0) {
    Instr In;
    In.Op = Op;
    In.Dst = Dst;
    In.SrcA = SrcA;
    In.SrcB = SrcB;
    In.Imm = Imm;
    Out.Code.push_back(In);
    return Out.Code.size() - 1;
  }

  Instr &last() { return Out.Code.back(); }

  int newIntReg() { return static_cast<int>(NextIntReg++); }
  int newFpReg() { return static_cast<int>(NextFpReg++); }
  int newVecReg() { return static_cast<int>(NextVecReg++); }

  int emitLI(int64_t V) {
    int R = newIntReg();
    emit(Opcode::LI, R, -1, -1, V);
    return R;
  }
  int emitLF(double V) {
    int R = newFpReg();
    emit(Opcode::LF, R);
    last().FImm = V;
    return R;
  }

  /// Address (in an int register) of a memory-resident symbol.
  int emitSymbolAddr(Symbol *Sym) {
    SymbolLocation Loc = locOf(Sym);
    switch (Loc.K) {
    case SymbolLocation::Global:
      return emitLI(Loc.Addr);
    case SymbolLocation::Frame: {
      int Off = emitLI(Loc.Index);
      int R = newIntReg();
      emit(Opcode::IADD, R, 0, Off); // r0 = frame pointer
      return R;
    }
    default:
      Diags.error(SourceLoc(), "codegen: address of register-resident '" +
                                   Sym->getName() + "'");
      return emitLI(0);
    }
  }

  //===--------------------------------------------------------------------===//
  // Scalar expressions
  //===--------------------------------------------------------------------===//

  bool inNoConflictStmt() const { return CurNoConflict; }

  int emitLoadScalarSym(Symbol *Sym) {
    SymbolLocation Loc = locOf(Sym);
    const Type *Ty = Sym->getType();
    switch (Loc.K) {
    case SymbolLocation::IntReg:
    case SymbolLocation::FpReg:
      return Loc.Index;
    case SymbolLocation::Frame:
    case SymbolLocation::Global: {
      int Addr = Loc.K == SymbolLocation::Global
                     ? emitLI(Loc.Addr)
                     : -1;
      int64_t Imm = 0;
      if (Loc.K == SymbolLocation::Frame) {
        Addr = 0; // frame pointer
        Imm = Loc.Index;
      }
      if (isIntLike(Ty)) {
        int R = newIntReg();
        // Memory-resident int scalars are stored as 4 bytes except frame
        // slots which are 8-byte aligned 4-byte values; LDW reads 4.
        emit(Ty->isChar() ? Opcode::LDC : Opcode::LDW, R, Addr, -1, Imm);
        last().NoStoreConflict = inNoConflictStmt() && !Sym->isVolatile();
        return R;
      }
      int R = newFpReg();
      emit(Ty->isFloat() ? Opcode::LDF : Opcode::LDD, R, Addr, -1, Imm);
      last().NoStoreConflict = inNoConflictStmt() && !Sym->isVolatile();
      return R;
    }
    }
    return 0;
  }

  void emitStoreScalarSym(Symbol *Sym, int ValueReg) {
    SymbolLocation Loc = locOf(Sym);
    const Type *Ty = Sym->getType();
    switch (Loc.K) {
    case SymbolLocation::IntReg:
      if (Loc.Index != ValueReg)
        emit(Opcode::IMOV, Loc.Index, ValueReg);
      return;
    case SymbolLocation::FpReg:
      if (Loc.Index != ValueReg) {
        emit(Opcode::FMOV, Loc.Index, ValueReg);
        last().SinglePrec = Ty->isFloat();
      }
      return;
    case SymbolLocation::Frame:
    case SymbolLocation::Global: {
      int Addr = -1;
      int64_t Imm = 0;
      if (Loc.K == SymbolLocation::Global) {
        Addr = emitLI(Loc.Addr);
      } else {
        Addr = 0;
        Imm = Loc.Index;
      }
      if (isIntLike(Ty))
        emit(Ty->isChar() ? Opcode::STC : Opcode::STW, -1, Addr, ValueReg,
             Imm);
      else
        emit(Ty->isFloat() ? Opcode::STF : Opcode::STD, -1, Addr, ValueReg,
             Imm);
      return;
    }
    }
  }

  /// Evaluates an integer-typed (int/char/pointer) expression.
  int emitInt(Expr *E) {
    switch (E->getKind()) {
    case Expr::ConstIntKind:
      return emitLI(static_cast<ConstIntExpr *>(E)->getValue());
    case Expr::ConstFloatKind:
      // Should have been coerced; truncate.
      return emitLI(static_cast<int64_t>(
          static_cast<ConstFloatExpr *>(E)->getValue()));
    case Expr::VarRefKind: {
      Symbol *Sym = static_cast<VarRefExpr *>(E)->getSymbol();
      if (!isIntLike(Sym->getType())) {
        Diags.error(SourceLoc(), "codegen: int use of fp symbol");
        return emitLI(0);
      }
      return emitLoadScalarSym(Sym);
    }
    case Expr::BinaryKind: {
      auto *B = static_cast<BinaryExpr *>(E);
      // FP comparison produces an int.
      if (isComparisonOp(B->getOp()) &&
          B->getLHS()->getType()->isFloating()) {
        int A = emitFp(B->getLHS());
        int C = emitFp(B->getRHS());
        int R = newIntReg();
        Opcode Op;
        switch (B->getOp()) {
        case OpCode::Lt:
          Op = Opcode::FCMPLT;
          break;
        case OpCode::Le:
          Op = Opcode::FCMPLE;
          break;
        case OpCode::Gt:
          Op = Opcode::FCMPGT;
          break;
        case OpCode::Ge:
          Op = Opcode::FCMPGE;
          break;
        case OpCode::Eq:
          Op = Opcode::FCMPEQ;
          break;
        default:
          Op = Opcode::FCMPNE;
          break;
        }
        emit(Op, R, A, C);
        return R;
      }
      int A = emitInt(B->getLHS());
      int C = emitInt(B->getRHS());
      int R = newIntReg();
      Opcode Op;
      switch (B->getOp()) {
      case OpCode::Add:
        Op = Opcode::IADD;
        break;
      case OpCode::Sub:
        Op = Opcode::ISUB;
        break;
      case OpCode::Mul:
        Op = Opcode::IMUL;
        break;
      case OpCode::Div:
        Op = Opcode::IDIV;
        break;
      case OpCode::Rem:
        Op = Opcode::IREM;
        break;
      case OpCode::Shl:
        Op = Opcode::ISHL;
        break;
      case OpCode::Shr:
        Op = Opcode::ISHR;
        break;
      case OpCode::BitAnd:
        Op = Opcode::IAND;
        break;
      case OpCode::BitOr:
        Op = Opcode::IOR;
        break;
      case OpCode::BitXor:
        Op = Opcode::IXOR;
        break;
      case OpCode::Lt:
        Op = Opcode::ICMPLT;
        break;
      case OpCode::Le:
        Op = Opcode::ICMPLE;
        break;
      case OpCode::Gt:
        Op = Opcode::ICMPGT;
        break;
      case OpCode::Ge:
        Op = Opcode::ICMPGE;
        break;
      case OpCode::Eq:
        Op = Opcode::ICMPEQ;
        break;
      case OpCode::Ne:
        Op = Opcode::ICMPNE;
        break;
      case OpCode::Min:
        Op = Opcode::IMIN;
        break;
      case OpCode::Max:
        Op = Opcode::IMAX;
        break;
      default:
        Diags.error(SourceLoc(), "codegen: bad int binary op");
        Op = Opcode::IADD;
        break;
      }
      emit(Op, R, A, C);
      return R;
    }
    case Expr::UnaryKind: {
      auto *U = static_cast<UnaryExpr *>(E);
      int R = newIntReg();
      if (U->getOp() == OpCode::LogNot &&
          U->getOperand()->getType()->isFloating()) {
        int A = emitFp(U->getOperand());
        int Z = emitLF(0.0);
        emit(Opcode::FCMPEQ, R, A, Z);
        return R;
      }
      int A = emitInt(U->getOperand());
      switch (U->getOp()) {
      case OpCode::Neg:
        emit(Opcode::INEG, R, A);
        break;
      case OpCode::LogNot:
        emit(Opcode::ILOGNOT, R, A);
        break;
      case OpCode::BitNot:
        emit(Opcode::IBITNOT, R, A);
        break;
      default:
        Diags.error(SourceLoc(), "codegen: bad int unary op");
        emit(Opcode::IMOV, R, A);
        break;
      }
      return R;
    }
    case Expr::CastKind: {
      auto *C = static_cast<CastExpr *>(E);
      const Type *From = C->getOperand()->getType();
      if (From->isFloating()) {
        int A = emitFp(C->getOperand());
        int R = newIntReg();
        emit(Opcode::FTOI, R, A);
        return R;
      }
      int A = emitInt(C->getOperand());
      if (C->getType()->isChar()) {
        // Truncate through shifts.
        int S = emitLI(24);
        int T1 = newIntReg();
        emit(Opcode::ISHL, T1, A, S);
        int T2 = newIntReg();
        emit(Opcode::ISHR, T2, T1, S);
        return T2;
      }
      return A;
    }
    case Expr::DerefKind: {
      auto *D = static_cast<DerefExpr *>(E);
      int Addr = emitInt(D->getAddr());
      int R = newIntReg();
      emit(D->getType()->isChar() ? Opcode::LDC : Opcode::LDW, R, Addr);
      last().NoStoreConflict = inNoConflictStmt();
      return R;
    }
    case Expr::IndexKind: {
      int Addr = emitIndexAddress(static_cast<IndexExpr *>(E));
      int R = newIntReg();
      emit(E->getType()->isChar() ? Opcode::LDC : Opcode::LDW, R, Addr);
      last().NoStoreConflict = inNoConflictStmt();
      return R;
    }
    case Expr::AddrOfKind:
      return emitAddressOf(static_cast<AddrOfExpr *>(E));
    case Expr::TripletKind:
      Diags.error(SourceLoc(), "codegen: triplet in scalar context");
      return emitLI(0);
    }
    return emitLI(0);
  }

  /// Evaluates a floating expression into an FP register.
  int emitFp(Expr *E) {
    const Type *Ty = E->getType();
    switch (E->getKind()) {
    case Expr::ConstFloatKind:
      return emitLF(static_cast<ConstFloatExpr *>(E)->getValue());
    case Expr::ConstIntKind:
      return emitLF(static_cast<double>(
          static_cast<ConstIntExpr *>(E)->getValue()));
    case Expr::VarRefKind: {
      Symbol *Sym = static_cast<VarRefExpr *>(E)->getSymbol();
      return emitLoadScalarSym(Sym);
    }
    case Expr::BinaryKind: {
      auto *B = static_cast<BinaryExpr *>(E);
      int A = emitFp(B->getLHS());
      int C = emitFp(B->getRHS());
      int R = newFpReg();
      Opcode Op;
      switch (B->getOp()) {
      case OpCode::Add:
        Op = Opcode::FADD;
        break;
      case OpCode::Sub:
        Op = Opcode::FSUB;
        break;
      case OpCode::Mul:
        Op = Opcode::FMUL;
        break;
      case OpCode::Div:
        Op = Opcode::FDIV;
        break;
      case OpCode::Min:
        Op = Opcode::FMIN;
        break;
      case OpCode::Max:
        Op = Opcode::FMAX;
        break;
      default:
        Diags.error(SourceLoc(), "codegen: bad fp binary op");
        Op = Opcode::FADD;
        break;
      }
      emit(Op, R, A, C);
      last().SinglePrec = Ty->isFloat();
      return R;
    }
    case Expr::UnaryKind: {
      auto *U = static_cast<UnaryExpr *>(E);
      int A = emitFp(U->getOperand());
      int R = newFpReg();
      emit(Opcode::FNEG, R, A);
      return R;
    }
    case Expr::CastKind: {
      auto *C = static_cast<CastExpr *>(E);
      const Type *From = C->getOperand()->getType();
      if (isIntLike(From)) {
        int A = emitInt(C->getOperand());
        int R = newFpReg();
        emit(Opcode::ITOF, R, A);
        return R;
      }
      int A = emitFp(C->getOperand());
      if (Ty->isFloat() && From->isDouble()) {
        int R = newFpReg();
        emit(Opcode::FMOV, R, A);
        last().SinglePrec = true;
        return R;
      }
      return A;
    }
    case Expr::DerefKind: {
      auto *D = static_cast<DerefExpr *>(E);
      int Addr = emitInt(D->getAddr());
      int R = newFpReg();
      emit(Ty->isFloat() ? Opcode::LDF : Opcode::LDD, R, Addr);
      last().NoStoreConflict = inNoConflictStmt();
      return R;
    }
    case Expr::IndexKind: {
      int Addr = emitIndexAddress(static_cast<IndexExpr *>(E));
      int R = newFpReg();
      emit(Ty->isFloat() ? Opcode::LDF : Opcode::LDD, R, Addr);
      last().NoStoreConflict = inNoConflictStmt();
      return R;
    }
    default:
      Diags.error(SourceLoc(), "codegen: bad fp expression");
      return emitLF(0.0);
    }
  }

  /// Byte address of an Index expression.
  int emitIndexAddress(IndexExpr *I) {
    Expr *Base = I->getBase();
    int Addr;
    const Type *Cur = Base->getType();
    if (Base->getKind() == Expr::VarRefKind) {
      Addr = emitSymbolAddr(static_cast<VarRefExpr *>(Base)->getSymbol());
    } else if (Base->getKind() == Expr::DerefKind) {
      Addr = emitInt(static_cast<DerefExpr *>(Base)->getAddr());
    } else {
      Diags.error(SourceLoc(), "codegen: unsupported array base");
      return emitLI(0);
    }
    for (Expr *Sub : I->getSubscripts()) {
      if (!Cur->isArray()) {
        Diags.error(SourceLoc(), "codegen: too many subscripts");
        return Addr;
      }
      int64_t Stride = Cur->getElementType()->getSizeInBytes();
      int SubReg = emitInt(Sub);
      int StrideReg = emitLI(Stride);
      int Scaled = newIntReg();
      emit(Opcode::IMUL, Scaled, SubReg, StrideReg);
      int NewAddr = newIntReg();
      emit(Opcode::IADD, NewAddr, Addr, Scaled);
      Addr = NewAddr;
      Cur = Cur->getElementType();
    }
    return Addr;
  }

  int emitAddressOf(AddrOfExpr *A) {
    Expr *LV = A->getLValue();
    switch (LV->getKind()) {
    case Expr::VarRefKind:
      return emitSymbolAddr(static_cast<VarRefExpr *>(LV)->getSymbol());
    case Expr::IndexKind:
      return emitIndexAddress(static_cast<IndexExpr *>(LV));
    case Expr::DerefKind:
      return emitInt(static_cast<DerefExpr *>(LV)->getAddr());
    default:
      Diags.error(SourceLoc(), "codegen: bad address-of");
      return emitLI(0);
    }
  }

  //===--------------------------------------------------------------------===//
  // Vector expressions
  //===--------------------------------------------------------------------===//

  struct VectorOperand {
    bool IsVector = false;
    int Reg = -1; ///< Vector register or FP register.
  };

  /// Extracts (addr, stride, len) registers from a vector memory
  /// reference whose address/subscript carries the top-level triplet.
  struct VecAccess {
    int AddrReg = -1;
    int StrideReg = -1;
    int LenReg = -1;
    ElemKind Kind = ElemKind::Float32;
    bool Ok = false;
  };

  VecAccess emitVecAccess(Expr *Ref) {
    VecAccess A;
    TripletExpr *T = nullptr;
    int64_t ElemSize = 4;
    const Type *ElemTy = Ref->getType();
    A.Kind = elemKindOf(ElemTy);
    ElemSize = ElemTy->getSizeInBytes();

    if (Ref->getKind() == Expr::DerefKind) {
      Expr *Addr = static_cast<DerefExpr *>(Ref)->getAddr();
      if (Addr->getKind() != Expr::TripletKind) {
        Diags.error(SourceLoc(), "codegen: vector deref without triplet");
        return A;
      }
      T = static_cast<TripletExpr *>(Addr);
      // Components are byte addresses.
      A.AddrReg = emitInt(T->getLo());
      A.StrideReg = emitInt(T->getStride());
      int Hi = emitInt(T->getHi());
      // len = (hi - lo)/stride + 1.
      int Diff = newIntReg();
      emit(Opcode::ISUB, Diff, Hi, A.AddrReg);
      int Div = newIntReg();
      emit(Opcode::IDIV, Div, Diff, A.StrideReg);
      int One = emitLI(1);
      A.LenReg = newIntReg();
      emit(Opcode::IADD, A.LenReg, Div, One);
      A.Ok = true;
      return A;
    }
    if (Ref->getKind() == Expr::IndexKind) {
      auto *I = static_cast<IndexExpr *>(Ref);
      if (I->getBase()->getKind() != Expr::VarRefKind) {
        Diags.error(SourceLoc(), "codegen: vector index base");
        return A;
      }
      // Walk the (possibly multi-dimensional) subscripts; exactly one may
      // carry the triplet.  Scalar subscripts fold into the base address.
      int Base =
          emitSymbolAddr(static_cast<VarRefExpr *>(I->getBase())->getSymbol());
      const Type *Cur = I->getBase()->getType();
      int Addr = Base;
      for (Expr *Sub : I->getSubscripts()) {
        if (!Cur->isArray()) {
          Diags.error(SourceLoc(), "codegen: too many vector subscripts");
          return A;
        }
        int64_t DimStride = Cur->getElementType()->getSizeInBytes();
        if (Sub->getKind() == Expr::TripletKind) {
          if (T) {
            Diags.error(SourceLoc(),
                        "codegen: multiple triplets in one reference");
            return A;
          }
          T = static_cast<TripletExpr *>(Sub);
          int Lo = emitInt(T->getLo());
          int Hi = emitInt(T->getHi());
          int SubStride = emitInt(T->getStride());
          int DS = emitLI(DimStride);
          int LoScaled = newIntReg();
          emit(Opcode::IMUL, LoScaled, Lo, DS);
          int NewAddr = newIntReg();
          emit(Opcode::IADD, NewAddr, Addr, LoScaled);
          Addr = NewAddr;
          A.StrideReg = newIntReg();
          emit(Opcode::IMUL, A.StrideReg, SubStride, DS);
          int Diff = newIntReg();
          emit(Opcode::ISUB, Diff, Hi, Lo);
          int Div = newIntReg();
          emit(Opcode::IDIV, Div, Diff, SubStride);
          int One = emitLI(1);
          A.LenReg = newIntReg();
          emit(Opcode::IADD, A.LenReg, Div, One);
        } else {
          int SubReg = emitInt(Sub);
          int DS = emitLI(DimStride);
          int Scaled = newIntReg();
          emit(Opcode::IMUL, Scaled, SubReg, DS);
          int NewAddr = newIntReg();
          emit(Opcode::IADD, NewAddr, Addr, Scaled);
          Addr = NewAddr;
        }
        Cur = Cur->getElementType();
      }
      if (!T) {
        Diags.error(SourceLoc(), "codegen: vector index without triplet");
        return A;
      }
      A.AddrReg = Addr;
      A.Ok = true;
      return A;
    }
    Diags.error(SourceLoc(), "codegen: bad vector reference");
    return A;
  }

  VectorOperand emitVector(Expr *E, bool SinglePrec) {
    if (!exprHasTriplet(E)) {
      VectorOperand Op;
      Op.IsVector = false;
      Op.Reg = isIntLike(E->getType()) ? -1 : emitFp(E);
      if (Op.Reg < 0) {
        // Integer scalar in a vector expression: convert to FP.
        int I = emitInt(E);
        Op.Reg = newFpReg();
        emit(Opcode::ITOF, Op.Reg, I);
      }
      return Op;
    }
    switch (E->getKind()) {
    case Expr::DerefKind:
    case Expr::IndexKind: {
      VecAccess A = emitVecAccess(E);
      VectorOperand Op;
      Op.IsVector = true;
      Op.Reg = newVecReg();
      Instr In;
      In.Op = Opcode::VLD;
      In.Dst = Op.Reg;
      In.Kind = A.Kind;
      In.Args = {A.AddrReg, A.StrideReg, A.LenReg};
      In.NoStoreConflict = true; // proven by the vectorizer
      Out.Code.push_back(In);
      return Op;
    }
    case Expr::BinaryKind: {
      auto *B = static_cast<BinaryExpr *>(E);
      VectorOperand L = emitVector(B->getLHS(), SinglePrec);
      VectorOperand R = emitVector(B->getRHS(), SinglePrec);
      VectorOperand Res;
      Res.IsVector = true;
      Res.Reg = newVecReg();
      Instr In;
      // Round per operation exactly as the scalar FP unit would: by the
      // expression's own type.
      In.SinglePrec = B->getType()->isFloat();
      In.Dst = Res.Reg;
      if (L.IsVector && R.IsVector) {
        switch (B->getOp()) {
        case OpCode::Add:
          In.Op = Opcode::VADD;
          break;
        case OpCode::Sub:
          In.Op = Opcode::VSUB;
          break;
        case OpCode::Mul:
          In.Op = Opcode::VMUL;
          break;
        case OpCode::Div:
          In.Op = Opcode::VDIV;
          break;
        default:
          Diags.error(SourceLoc(), "codegen: bad vector op");
          In.Op = Opcode::VADD;
          break;
        }
        In.SrcA = L.Reg;
        In.SrcB = R.Reg;
      } else {
        // Vector-scalar form.
        bool ScalarOnLeft = !L.IsVector;
        int VecReg = ScalarOnLeft ? R.Reg : L.Reg;
        int ScalReg = ScalarOnLeft ? L.Reg : R.Reg;
        switch (B->getOp()) {
        case OpCode::Add:
          In.Op = Opcode::VSADD;
          break;
        case OpCode::Sub:
          In.Op = ScalarOnLeft ? Opcode::VSSUBR : Opcode::VSSUB;
          break;
        case OpCode::Mul:
          In.Op = Opcode::VSMUL;
          break;
        case OpCode::Div:
          In.Op = ScalarOnLeft ? Opcode::VSDIVR : Opcode::VSDIV;
          break;
        default:
          Diags.error(SourceLoc(), "codegen: bad vector-scalar op");
          In.Op = Opcode::VSADD;
          break;
        }
        In.SrcA = VecReg;
        In.Args = {ScalReg};
      }
      Out.Code.push_back(In);
      return Res;
    }
    case Expr::UnaryKind: {
      auto *U = static_cast<UnaryExpr *>(E);
      VectorOperand A = emitVector(U->getOperand(), SinglePrec);
      VectorOperand Res;
      Res.IsVector = true;
      Res.Reg = newVecReg();
      Instr In;
      In.Op = Opcode::VNEG;
      In.Dst = Res.Reg;
      In.SrcA = A.Reg;
      Out.Code.push_back(In);
      return Res;
    }
    case Expr::CastKind:
      // Vector values are held as doubles; stores round by kind.
      return emitVector(static_cast<CastExpr *>(E)->getOperand(),
                        SinglePrec);
    case Expr::TripletKind: {
      // A bare triplet as a value: the index vector itself (iota).
      auto *T = static_cast<TripletExpr *>(E);
      int Lo = emitInt(T->getLo());
      int Hi = emitInt(T->getHi());
      int Stride = emitInt(T->getStride());
      int Diff = newIntReg();
      emit(Opcode::ISUB, Diff, Hi, Lo);
      int Div = newIntReg();
      emit(Opcode::IDIV, Div, Diff, Stride);
      int One = emitLI(1);
      int Len = newIntReg();
      emit(Opcode::IADD, Len, Div, One);
      VectorOperand Res;
      Res.IsVector = true;
      Res.Reg = newVecReg();
      Instr In;
      In.Op = Opcode::VIOTA;
      In.Dst = Res.Reg;
      In.Args = {Lo, Stride, Len};
      Out.Code.push_back(In);
      return Res;
    }
    default:
      Diags.error(SourceLoc(), "codegen: bad vector expression");
      return {};
    }
  }

  void genVectorAssign(AssignStmt *S) {
    const Type *ElemTy = S->getLHS()->getType();
    bool SinglePrec = ElemTy->isFloat();
    VectorOperand RHS = emitVector(S->getRHS(), SinglePrec);
    VecAccess Dst = emitVecAccess(S->getLHS());
    if (!Dst.Ok)
      return;
    int SrcVec = RHS.Reg;
    if (!RHS.IsVector) {
      // Broadcast: scalar RHS stored across the section.  Materialize via
      // a vector of the right length: vneg(vneg) trick avoided — use
      // VSADD with a zero-length... simplest: VLD from the destination
      // then overwrite with scalar via VSMUL 0 + VSADD s.
      int Zero = emitLF(0.0);
      int VTmp = newVecReg();
      Instr Ld;
      Ld.Op = Opcode::VLD;
      Ld.Dst = VTmp;
      Ld.Kind = Dst.Kind;
      Ld.Args = {Dst.AddrReg, Dst.StrideReg, Dst.LenReg};
      Ld.NoStoreConflict = true;
      Out.Code.push_back(Ld);
      int VZero = newVecReg();
      Instr Mul;
      Mul.Op = Opcode::VSMUL;
      Mul.Dst = VZero;
      Mul.SrcA = VTmp;
      Mul.Args = {Zero};
      Out.Code.push_back(Mul);
      int VBcast = newVecReg();
      Instr Add;
      Add.Op = Opcode::VSADD;
      Add.Dst = VBcast;
      Add.SrcA = VZero;
      Add.Args = {RHS.Reg};
      Add.SinglePrec = SinglePrec;
      Out.Code.push_back(Add);
      SrcVec = VBcast;
    }
    Instr St;
    St.Op = Opcode::VST;
    St.SrcA = SrcVec;
    St.Kind = Dst.Kind;
    St.Args = {Dst.AddrReg, Dst.StrideReg, Dst.LenReg};
    Out.Code.push_back(St);
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void genBlock(Block &B) {
    for (Stmt *S : B.Stmts)
      genStmt(S);
  }

  void genStmt(Stmt *S) {
    bool SavedNoConflict = CurNoConflict;
    if (S->getKind() == Stmt::AssignKind &&
        static_cast<AssignStmt *>(S)->loadsConflictFree() &&
        Opts.EnableDepScheduling)
      CurNoConflict = true;

    switch (S->getKind()) {
    case Stmt::AssignKind: {
      auto *A = static_cast<AssignStmt *>(S);
      if (exprHasTriplet(A->getLHS()) || exprHasTriplet(A->getRHS())) {
        genVectorAssign(A);
        break;
      }
      Expr *LHS = A->getLHS();
      if (LHS->getKind() == Expr::VarRefKind) {
        Symbol *Sym = static_cast<VarRefExpr *>(LHS)->getSymbol();
        int V = isIntLike(Sym->getType()) ? emitInt(A->getRHS())
                                          : emitFp(A->getRHS());
        emitStoreScalarSym(Sym, V);
        break;
      }
      // Store through memory.
      const Type *Ty = LHS->getType();
      int Addr;
      if (LHS->getKind() == Expr::DerefKind)
        Addr = emitInt(static_cast<DerefExpr *>(LHS)->getAddr());
      else
        Addr = emitIndexAddress(static_cast<IndexExpr *>(LHS));
      if (isIntLike(Ty)) {
        int V = emitInt(A->getRHS());
        emit(Ty->isChar() ? Opcode::STC : Opcode::STW, -1, Addr, V);
      } else {
        int V = emitFp(A->getRHS());
        emit(Ty->isFloat() ? Opcode::STF : Opcode::STD, -1, Addr, V);
      }
      break;
    }
    case Stmt::CallKind: {
      auto *C = static_cast<CallStmt *>(S);
      Instr In;
      In.Op = Opcode::CALL;
      for (Expr *Arg : C->getArgs()) {
        bool Fp = Arg->getType()->isFloating();
        In.Args.push_back(Fp ? emitFp(Arg) : emitInt(Arg));
        In.ArgIsFp.push_back(Fp);
      }
      auto It = FuncIndex.find(C->getCallee());
      if (It == FuncIndex.end()) {
        Diags.error(C->getLoc(), "codegen: call to unknown function '" +
                                     C->getCallee() + "'");
        break;
      }
      In.Target = static_cast<int>(It->second);
      if (C->getResult()) {
        bool Fp = C->getResult()->getType()->isFloating();
        In.RetIsFp = Fp;
        In.Dst = Fp ? newFpReg() : newIntReg();
      }
      Out.Code.push_back(In);
      if (C->getResult())
        emitStoreScalarSym(C->getResult(), Out.Code.back().Dst);
      break;
    }
    case Stmt::IfKind: {
      auto *I = static_cast<IfStmt *>(S);
      int Cond = emitCond(I->getCond());
      size_t BranchIx = emit(Opcode::BZ, -1, Cond);
      genBlock(I->getThen());
      if (I->getElse().empty()) {
        Out.Code[BranchIx].Target = static_cast<int>(Out.Code.size());
      } else {
        size_t JmpIx = emit(Opcode::JMP);
        Out.Code[BranchIx].Target = static_cast<int>(Out.Code.size());
        genBlock(I->getElse());
        Out.Code[JmpIx].Target = static_cast<int>(Out.Code.size());
      }
      break;
    }
    case Stmt::WhileKind: {
      auto *W = static_cast<WhileStmt *>(S);
      size_t Top = Out.Code.size();
      int Cond = emitCond(W->getCond());
      size_t ExitIx = emit(Opcode::BZ, -1, Cond);
      genBlock(W->getBody());
      emit(Opcode::JMP)
          ;
      Out.Code.back().Target = static_cast<int>(Top);
      Out.Code[ExitIx].Target = static_cast<int>(Out.Code.size());
      break;
    }
    case Stmt::DoLoopKind:
      genDoLoop(static_cast<DoLoopStmt *>(S));
      break;
    case Stmt::LabelKind:
      Labels[static_cast<LabelStmt *>(S)->getName()] = Out.Code.size();
      break;
    case Stmt::GotoKind: {
      size_t Ix = emit(Opcode::JMP);
      GotoFixups.push_back({Ix, static_cast<GotoStmt *>(S)->getTarget()});
      break;
    }
    case Stmt::ReturnKind: {
      auto *Ret = static_cast<ReturnStmt *>(S);
      Instr In;
      In.Op = Opcode::RET;
      if (Ret->getValue()) {
        In.RetIsFp = Ret->getValue()->getType()->isFloating();
        In.SrcA = In.RetIsFp ? emitFp(Ret->getValue())
                             : emitInt(Ret->getValue());
      }
      Out.Code.push_back(In);
      break;
    }
    }
    CurNoConflict = SavedNoConflict;
  }

  /// Condition value (nonzero = true); handles FP-typed conditions.
  int emitCond(Expr *Cond) {
    if (Cond->getType()->isFloating()) {
      int A = emitFp(Cond);
      int Z = emitLF(0.0);
      int R = newIntReg();
      emit(Opcode::FCMPNE, R, A, Z);
      return R;
    }
    return emitInt(Cond);
  }

  void genDoLoop(DoLoopStmt *D) {
    // Evaluate bounds once.
    int Init = emitInt(D->getInit());
    int Limit = emitInt(D->getLimit());
    int Step = emitInt(D->getStep());

    Symbol *Idx = D->getIndexVar();
    emitStoreScalarSym(Idx, Init);

    int64_t StepConst = 0;
    bool StepKnown =
        D->getStep()->getKind() == Expr::ConstIntKind &&
        (StepConst = static_cast<ConstIntExpr *>(D->getStep())->getValue(),
         true);

    if (D->isParallel()) {
      // chunks = (limit - init)/step + 1.
      int Diff = newIntReg();
      emit(Opcode::ISUB, Diff, Limit, Init);
      int Div = newIntReg();
      emit(Opcode::IDIV, Div, Diff, Step);
      int One = emitLI(1);
      int Chunks = newIntReg();
      emit(Opcode::IADD, Chunks, Div, One);
      emit(Opcode::PARBEGIN, -1, Chunks);
    }

    size_t Top = Out.Code.size();
    // Test: continue while idx <= limit (step>0) / idx >= limit (step<0).
    int IdxVal = emitLoadScalarSym(Idx);
    int Cmp = newIntReg();
    if (StepKnown && StepConst < 0)
      emit(Opcode::ICMPGE, Cmp, IdxVal, Limit);
    else
      emit(Opcode::ICMPLE, Cmp, IdxVal, Limit);
    size_t ExitIx = emit(Opcode::BZ, -1, Cmp);

    genBlock(D->getBody());

    int IdxVal2 = emitLoadScalarSym(Idx);
    int Next = newIntReg();
    emit(Opcode::IADD, Next, IdxVal2, Step);
    emitStoreScalarSym(Idx, Next);
    emit(Opcode::JMP);
    Out.Code.back().Target = static_cast<int>(Top);
    Out.Code[ExitIx].Target = static_cast<int>(Out.Code.size());

    if (D->isParallel())
      emit(Opcode::PAREND);
  }

  void resolveFixups() {
    for (auto &[Ix, Name] : GotoFixups) {
      auto It = Labels.find(Name);
      if (It == Labels.end()) {
        Diags.error(SourceLoc(), "codegen: undefined label '" + Name + "'");
        Out.Code[Ix].Target = static_cast<int>(Out.Code.size() - 1);
      } else {
        Out.Code[Ix].Target = static_cast<int>(It->second);
      }
    }
  }

  Function &F;
  TitanProgram &Prog;
  DiagnosticEngine &Diags;
  const CodegenOptions &Opts;
  const std::map<std::string, size_t> &FuncIndex;

  TitanFunction Out;
  std::map<Symbol *, SymbolLocation> Locs;
  unsigned NextIntReg = 1;
  unsigned NextFpReg = 0;
  unsigned NextVecReg = 0;
  int64_t FrameSize = 0;
  std::map<std::string, size_t> Labels;
  std::vector<std::pair<size_t, std::string>> GotoFixups;
  bool CurNoConflict = false;
};

/// Writes a scalar initial value into the image.
void writeInit(std::vector<uint8_t> &Image, int64_t Addr, const Type *Ty,
               const GlobalInit &Init) {
  if (Ty->isFloat()) {
    float V = static_cast<float>(Init.IsFloat ? Init.FloatValue
                                              : (double)Init.IntValue);
    std::memcpy(Image.data() + Addr, &V, 4);
  } else if (Ty->isDouble()) {
    double V = Init.IsFloat ? Init.FloatValue : (double)Init.IntValue;
    std::memcpy(Image.data() + Addr, &V, 8);
  } else if (Ty->isChar()) {
    int8_t V = static_cast<int8_t>(Init.IntValue);
    std::memcpy(Image.data() + Addr, &V, 1);
  } else {
    int32_t V = static_cast<int32_t>(
        Init.IsFloat ? (int64_t)Init.FloatValue : Init.IntValue);
    std::memcpy(Image.data() + Addr, &V, 4);
  }
}

} // namespace

TitanProgram codegen::generateProgram(il::Program &P, DiagnosticEngine &Diags,
                                      const CodegenOptions &Opts) {
  TitanProgram Out;

  // --- Global layout ---
  int64_t Addr = 64; // keep 0 as an invalid address
  auto place = [&](const std::string &Name, const Type *Ty,
                   const Symbol *Sym) {
    Addr = (Addr + 7) & ~int64_t(7);
    Out.GlobalAddresses[Name] = Addr;
    int64_t Size = Ty->isFunction() || Ty->isVoid() ? 8 : Ty->getSizeInBytes();
    if (Ty->isScalar())
      Size = 8;
    Addr += Size;
    (void)Sym;
  };
  for (const auto &G : P.getGlobals())
    place(G->getName(), G->getType(), G.get());
  for (const auto &F : P.getFunctions())
    for (const auto &S : F->getSymbols())
      if (S->getStorage() == StorageKind::Static)
        place(F->getName() + "." + S->getName(), S->getType(), S.get());
  Out.GlobalSize = Addr;
  Out.StackBase = (Addr + 63) & ~int64_t(63);

  // Initial image.
  Out.InitialImage.assign(static_cast<size_t>(Out.GlobalSize), 0);
  for (const auto &G : P.getGlobals())
    if (G->hasInit())
      writeInit(Out.InitialImage, Out.GlobalAddresses[G->getName()],
                G->getType(), G->getInit());
  for (const auto &F : P.getFunctions())
    for (const auto &S : F->getSymbols())
      if (S->getStorage() == StorageKind::Static && S->hasInit())
        writeInit(Out.InitialImage,
                  Out.GlobalAddresses[F->getName() + "." + S->getName()],
                  S->getType(), S->getInit());

  // --- Function index: defined functions plus stubs for unknown callees.
  for (const auto &F : P.getFunctions()) {
    Out.FunctionIndex[F->getName()] = Out.FunctionIndex.size();
  }
  std::set<std::string> Unknown;
  for (const auto &F : P.getFunctions())
    forEachStmt(F->getBody(), [&](Stmt *S) {
      if (S->getKind() == Stmt::CallKind) {
        const std::string &Callee =
            static_cast<CallStmt *>(S)->getCallee();
        if (!Out.FunctionIndex.count(Callee))
          Unknown.insert(Callee);
      }
    });
  for (const std::string &Name : Unknown)
    Out.FunctionIndex[Name] = Out.FunctionIndex.size();

  Out.Functions.resize(Out.FunctionIndex.size());

  for (const auto &F : P.getFunctions()) {
    FunctionCodegen CG(*F, Out, Diags, Opts, Out.FunctionIndex);
    Out.Functions[Out.FunctionIndex[F->getName()]] = CG.run();
  }
  // Stubs: return 0.
  for (const std::string &Name : Unknown) {
    TitanFunction Stub;
    Stub.Name = Name + " (stub)";
    Instr Ret;
    Ret.Op = Opcode::RET;
    Stub.Code.push_back(Ret);
    Out.Functions[Out.FunctionIndex[Name]] = std::move(Stub);
  }
  return Out;
}
