//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel sharded procedure-catalog builds (paper Section 7).
///
/// The paper treats procedure catalogs as compiled databases: "math
/// libraries can be 'compiled' into databases and used as a base for
/// inlining, much as include directories are used as a source for header
/// files."  Building such a database is embarrassingly parallel per
/// translation unit: each source file is lexed, parsed, lowered, prepared
/// for inlining, and serialized independently.  The CatalogBuilder runs
/// those per-TU shards on a worker-thread pool — every worker owns its own
/// Program, AstContext, and DiagnosticEngine, so there is no shared
/// mutable state — and then merges the per-shard serialized IL databases
/// deterministically:
///
///  - entries are merged in input-file order and stored name-sorted, so
///    the merged catalog text is byte-identical regardless of worker
///    count or completion order (the differential test harness in
///    tests/CatalogTest.cpp enforces this);
///  - duplicate procedure names across shards are reported with both
///    definition sites;
///  - per-shard diagnostics are re-emitted in input order, prefixed with
///    the originating file;
///  - per-shard wall-clock timings flow through the existing telemetry
///    types (one PassRecord per shard, named "catalog:<file>"), so
///    catalog builds appear in the same JSON stream as optimization
///    passes.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_CATALOG_CATALOGBUILDER_H
#define TCC_CATALOG_CATALOGBUILDER_H

#include "inliner/Inliner.h"
#include "remarks/Remarks.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace tcc {
namespace catalog {

/// One translation unit to compile into the catalog.
struct CatalogSource {
  std::string File; ///< Label used in diagnostics and telemetry.
  std::string Text; ///< C source text.
};

/// What one shard (translation unit) contributed.
struct ShardReport {
  std::string File;
  double Millis = 0.0;      ///< Wall-clock for lex→parse→lower→serialize.
  unsigned Procedures = 0;  ///< Functions stored from this shard.
  size_t SerializedBytes = 0;
  bool Ok = true;           ///< False if the shard had compile errors.
  bool CacheHit = false;    ///< Served from the compile-cache manifest.
};

struct CatalogBuildOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned Workers = 1;
  /// Optional `.tcc-cache` manifest path.  When set, a shard whose source
  /// text hash matches the manifest is served from it without compiling,
  /// and rebuilt shards are stored back (the same manifest file the
  /// function-at-a-time PassManager uses; shard records live alongside
  /// per-function records).
  std::string CacheFile;
  /// Deterministic fault injection over the worker pool: specs of the
  /// form `catalog:<file>:kind[:nth]` (support/FaultInjection.h) raise
  /// inside the matching shard's worker.  The worker contains the fault:
  /// that translation unit fails with a diagnostic, every other shard
  /// still merges.  Malformed specs fail the build up front.
  std::string FaultInject;
};

struct CatalogBuildResult {
  inliner::ProcedureCatalog Catalog;
  /// All diagnostics, merged deterministically in input-file order and
  /// prefixed with the originating file name.
  DiagnosticEngine Diags;
  /// Per-shard reports, in input order (not completion order).
  std::vector<ShardReport> Shards;
  /// Per-shard timings as PassRecords ("catalog:<file>") plus shard
  /// remarks, so catalog builds serialize into the same JSON stream as
  /// optimization passes (CompilationTelemetry::writeJSON).
  remarks::CompilationTelemetry Telemetry;
  /// Wall-clock of the whole build (shard pool + merge).
  double TotalMillis = 0.0;

  bool ok() const { return !Diags.hasErrors(); }
};

/// Compiles N translation units into one merged procedure catalog.
class CatalogBuilder {
public:
  void addSource(std::string File, std::string Text) {
    Sources.push_back({std::move(File), std::move(Text)});
  }
  /// Reads \p Path from disk; reports a diagnostic and returns false if
  /// the file cannot be read.
  bool addFile(const std::string &Path, DiagnosticEngine &Diags);

  size_t sourceCount() const { return Sources.size(); }

  /// Runs the sharded build.  The merged catalog (and therefore its
  /// serialized text) is byte-identical for every worker count.
  CatalogBuildResult build(const CatalogBuildOptions &Opts = {}) const;

private:
  std::vector<CatalogSource> Sources;
};

/// Writes `Catalog.serialize()` to \p Path; diagnostic on I/O failure.
bool saveCatalogFile(const inliner::ProcedureCatalog &Catalog,
                     const std::string &Path, DiagnosticEngine &Diags);

/// Reads \p Path and parses it with located diagnostics
/// (ProcedureCatalog::parse); false on I/O or parse failure.
bool loadCatalogFile(const std::string &Path,
                     inliner::ProcedureCatalog &Out, DiagnosticEngine &Diags);

} // namespace catalog
} // namespace tcc

#endif // TCC_CATALOG_CATALOGBUILDER_H
