#include "catalog/CatalogBuilder.h"

#include "frontend/Lower.h"
#include "il/ILSerializer.h"
#include "lexer/Lexer.h"
#include "parser/Parser.h"
#include "support/CompileCache.h"
#include "support/FaultInjection.h"
#include "support/WorkerPool.h"

#include <chrono>
#include <fstream>
#include <sstream>

using namespace tcc;
using namespace tcc::catalog;

namespace {

/// One serialized procedure from a shard, with the definition site kept
/// for duplicate-symbol conflict reporting.
struct ShardEntry {
  std::string Name;
  std::string Text;
  SourceLoc Loc; ///< First statement's location in the shard's source.
};

/// Everything a worker produces for one translation unit.  Workers write
/// only their own slot of a pre-sized vector, so the pool needs no locks.
struct ShardState {
  DiagnosticEngine Diags;
  std::vector<ShardEntry> Entries; ///< Definition order within the TU.
  uint64_t Stmts = 0;
  double Millis = 0.0;
  bool Ok = true;
};

SourceLoc firstStmtLoc(const il::Function &F) {
  for (const il::Stmt *S : F.getBody().Stmts)
    if (S->getLoc().isValid())
      return S->getLoc();
  return SourceLoc();
}

/// lex → parse → lower → prepareFunctionForInlining → serialize for one
/// translation unit.  Entirely self-contained: own Program (and thus own
/// TypeContext), own AST arena, own DiagnosticEngine.
void compileShard(const CatalogSource &Src, ShardState &Out) {
  auto Start = std::chrono::steady_clock::now();

  il::Program P;
  Lexer Lex(Src.Text, Out.Diags);
  ast::AstContext Ctx;
  Parser Parse(Lex.lexAll(), Ctx, P.getTypes(), Out.Diags);
  ast::TranslationUnit TU = Parse.parseTranslationUnit();
  if (!Out.Diags.hasErrors())
    lowerTranslationUnit(TU, P, Out.Diags);

  if (Out.Diags.hasErrors()) {
    Out.Ok = false;
  } else {
    for (const auto &F : P.getFunctions()) {
      inliner::prepareFunctionForInlining(*F);
      ShardEntry E;
      E.Name = F->getName();
      E.Loc = firstStmtLoc(*F);
      E.Text = il::serializeFunction(*F);
      il::forEachStmt(F->getBody(),
                      [&Out](const il::Stmt *) { ++Out.Stmts; });
      Out.Entries.push_back(std::move(E));
    }
  }

  Out.Millis = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - Start)
                   .count();
}

std::string describeSite(const std::string &File, SourceLoc Loc) {
  return Loc.isValid() ? File + ":" + std::to_string(Loc.Line) : File;
}

} // namespace

bool CatalogBuilder::addFile(const std::string &Path,
                             DiagnosticEngine &Diags) {
  std::ifstream In(Path);
  if (!In) {
    Diags.error(SourceLoc(), "cannot open '" + Path + "'");
    return false;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  addSource(Path, Buffer.str());
  return true;
}

CatalogBuildResult
CatalogBuilder::build(const CatalogBuildOptions &Opts) const {
  auto Start = std::chrono::steady_clock::now();
  CatalogBuildResult Result;
  std::vector<ShardState> Shards(Sources.size());

  // Validated before any work starts: a typo in the injection spec is a
  // located error, never a silently un-injected run.
  FaultInjector Injector;
  if (!Injector.addSpecs(Opts.FaultInject, Result.Diags))
    return Result;

  // Warm-start from the compile-cache manifest: a shard whose source text
  // hash matches is served from its stored serialized procedures and
  // never enters the worker pool.  A damaged manifest degrades to a cold
  // cache (warning already emitted); it never fails the build.
  CompileCache Cache;
  const bool UseCache = !Opts.CacheFile.empty();
  if (UseCache)
    CompileCache::load(Opts.CacheFile, Cache, Result.Diags);
  std::vector<std::string> Hashes(Sources.size());
  std::vector<bool> Hit(Sources.size(), false);
  if (UseCache) {
    for (size_t I = 0; I < Sources.size(); ++I) {
      Hashes[I] = cacheHash(Sources[I].Text);
      const CompileCache::ShardEntry *E =
          Cache.findShard(Sources[I].File, Hashes[I]);
      if (!E)
        continue;
      Hit[I] = true;
      for (const auto &[Name, Text] : E->Procs)
        Shards[I].Entries.push_back({Name, Text, SourceLoc()});
    }
  }

  // The shard pool (support/WorkerPool.h): workers race over which shard
  // they build but each writes only its own Shards[I] slot; determinism
  // comes from the merge below, which walks shards in input order
  // regardless of who built them when.
  runIndexed(Sources.size(), Opts.Workers, [this, &Shards, &Hit,
                                            &Injector](size_t I) {
    if (Hit[I])
      return;
    // Nothing may escape the shard body: an exception leaving a worker
    // thread would terminate the process and take every other shard
    // with it.  A dying TU costs exactly that TU.
    try {
      if (const FaultSpec *Injected = Injector.arm("catalog", Sources[I].File))
        throwInjectedFault(*Injected);
      compileShard(Sources[I], Shards[I]);
    } catch (const std::exception &E) {
      Shards[I].Ok = false;
      Shards[I].Entries.clear(); // Partial output is untrusted.
      Shards[I].Diags.error(
          SourceLoc(),
          std::string("internal error: ") + E.what() +
              " (worker contained the failure; translation unit skipped)");
    } catch (...) {
      Shards[I].Ok = false;
      Shards[I].Entries.clear();
      Shards[I].Diags.error(
          SourceLoc(),
          "internal error: unknown exception (worker contained the "
          "failure; translation unit skipped)");
    }
  });

  // Deterministic merge, in input-file order.  ProcedureCatalog stores
  // entries name-sorted, so the merged serialized text is independent of
  // both worker count and shard completion order.
  struct DefSite {
    size_t Shard;
    SourceLoc Loc;
  };
  std::map<std::string, DefSite> FirstDef;
  for (size_t I = 0; I < Shards.size(); ++I) {
    ShardState &S = Shards[I];
    ShardReport Report;
    Report.File = Sources[I].File;
    Report.Millis = S.Millis;
    Report.Ok = S.Ok;
    Report.CacheHit = Hit[I];

    // Store rebuilt shards before the merge consumes the entry text.
    if (UseCache && !Hit[I] && S.Ok) {
      std::vector<std::pair<std::string, std::string>> Procs;
      Procs.reserve(S.Entries.size());
      for (const ShardEntry &E : S.Entries)
        Procs.emplace_back(E.Name, E.Text);
      Cache.storeShard(Sources[I].File, Hashes[I], std::move(Procs));
    }

    for (const Diagnostic &D : S.Diags.diagnostics()) {
      std::string Message = Sources[I].File + ": " + D.Message;
      switch (D.Kind) {
      case DiagKind::Error:
        Result.Diags.error(D.Loc, std::move(Message));
        break;
      case DiagKind::Warning:
        Result.Diags.warning(D.Loc, std::move(Message));
        break;
      case DiagKind::Note:
        Result.Diags.note(D.Loc, std::move(Message));
        break;
      }
    }

    for (ShardEntry &E : S.Entries) {
      auto [It, Inserted] = FirstDef.emplace(E.Name, DefSite{I, E.Loc});
      if (!Inserted) {
        Result.Diags.error(
            E.Loc, "duplicate procedure '" + E.Name + "' defined in both " +
                       describeSite(Sources[It->second.Shard].File,
                                    It->second.Loc) +
                       " and " + describeSite(Sources[I].File, E.Loc));
        continue;
      }
      Report.SerializedBytes += E.Text.size();
      ++Report.Procedures;
      Result.Catalog.storeSerialized(E.Name, std::move(E.Text));
    }

    // One PassRecord per shard: catalog builds surface in the same
    // telemetry JSON as optimization passes.
    remarks::PassRecord Rec;
    Rec.Pass = "catalog:" + Sources[I].File;
    Rec.Millis = S.Millis;
    Rec.After.Functions = Report.Procedures;
    Rec.After.Stmts = S.Stmts;
    Rec.Stats = remarks::StatGroup(Rec.Pass);
    Rec.Stats.set("procedures", Report.Procedures);
    Rec.Stats.set("serializedBytes", Report.SerializedBytes);
    Rec.Stats.set("cacheHit", Report.CacheHit ? 1 : 0);
    Rec.Stats.set("failed", S.Ok ? 0 : 1);
    Result.Telemetry.Passes.push_back(std::move(Rec));

    remarks::Remark R;
    R.Kind = S.Ok ? remarks::RemarkKind::Note : remarks::RemarkKind::Missed;
    R.Pass = "catalog";
    R.Message = S.Ok ? "shard '" + Sources[I].File + "': " +
                           std::to_string(Report.Procedures) +
                           " procedures, " +
                           std::to_string(Report.SerializedBytes) +
                           " bytes serialized" +
                           (Report.CacheHit ? " (cache hit)" : "")
                     : "shard '" + Sources[I].File +
                           "' failed to compile and was skipped";
    Result.Telemetry.Remarks.push_back(std::move(R));

    Result.Shards.push_back(std::move(Report));
  }

  // writeBack, not save: concurrent builds sharing one manifest merge
  // their shards instead of clobbering each other's.
  if (UseCache && Cache.dirty() && !Result.Diags.hasErrors())
    Cache.writeBack(Opts.CacheFile, Result.Diags);

  Result.TotalMillis = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - Start)
                           .count();
  Result.Telemetry.TotalMillis = Result.TotalMillis;
  return Result;
}

bool catalog::saveCatalogFile(const inliner::ProcedureCatalog &Catalog,
                              const std::string &Path,
                              DiagnosticEngine &Diags) {
  std::ofstream OS(Path);
  if (!OS) {
    Diags.error(SourceLoc(), "cannot write '" + Path + "'");
    return false;
  }
  OS << Catalog.serialize();
  return static_cast<bool>(OS);
}

bool catalog::loadCatalogFile(const std::string &Path,
                              inliner::ProcedureCatalog &Out,
                              DiagnosticEngine &Diags) {
  std::ifstream In(Path);
  if (!In) {
    Diags.error(SourceLoc(), "cannot open catalog '" + Path + "'");
    return false;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return inliner::ProcedureCatalog::parse(Buffer.str(), Out, Diags);
}
