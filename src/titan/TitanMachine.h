//===----------------------------------------------------------------------===//
///
/// \file
/// The Titan machine simulator: functional execution of TitanISA programs
/// with a cycle timing model.
///
/// Timing reproduces the structural performance features the paper's
/// optimizations exploit (Section 2):
///  - the integer unit, FP unit and memory path are separate pipelines;
///    with overlap enabled, an instruction issues when its unit is free
///    and its operands are ready (scoreboard), so integer address
///    arithmetic overlaps FP computation and memory access overlaps both;
///  - without dependence information, a load cannot issue until earlier
///    stores drain (the conservative schedule); loads flagged
///    NoStoreConflict bypass the store queue — the paper's
///    dependence-driven instruction scheduling;
///  - vector instructions cost a startup plus one cycle per element and
///    chain back-to-back, so vector execution approaches one result per
///    cycle — "in practice vector instructions are necessary to keep the
///    pipeline full";
///  - `do parallel` regions divide their elapsed cycles across up to four
///    processors (never more than the chunk count) plus a barrier cost.
///
/// Functional execution is sequential and deterministic regardless of the
/// timing options, so every optimization level must produce identical
/// memory contents — the differential-testing property the test suite
/// checks.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_TITAN_TITANMACHINE_H
#define TCC_TITAN_TITANMACHINE_H

#include "titan/TitanISA.h"

#include <cstdint>
#include <string>

namespace tcc {
namespace titan {

/// Machine parameters.  Defaults approximate a 16 MHz Titan processor.
struct TitanConfig {
  double ClockMHz = 16.0;
  int NumProcessors = 1;

  // Scalar latencies (cycles).
  int IntLatency = 1;
  int FpAddLatency = 7;
  int FpMulLatency = 9;
  int FpDivLatency = 20;
  int LoadLatency = 8;
  int StoreLatency = 2;
  int BranchLatency = 3;
  int CallOverhead = 15;

  // Vector unit.
  int VectorStartup = 32;
  int VectorPerElement = 1;

  // Multiprocessor.
  /// The Titan graphics supercomputer shipped with up to four
  /// processors; -P is validated and clamped against this.
  static constexpr int MaxProcessors = 4;
  int BarrierCycles = 60;

  /// Scoreboarded overlap of int/FP/memory pipelines.  Off = every
  /// instruction waits for the previous one to complete (the paper's
  /// "scalar optimization only" baseline).
  bool EnableOverlap = true;

  uint64_t MemoryBytes = 1u << 22;
  uint64_t MaxInstructions = 400u * 1000 * 1000;
};

struct RunResult {
  bool Ok = false;
  std::string Error;
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t Flops = 0; ///< Scalar + vector FP add/sub/mul/div.
  uint64_t IntOps = 0;
  uint64_t Loads = 0;  ///< Scalar loads.
  uint64_t Stores = 0; ///< Scalar stores.
  uint64_t VectorInstrs = 0;
  uint64_t VectorElems = 0;
  uint64_t IntMuls = 0; ///< Integer multiplies (strength reduction metric).
  int64_t ExitValue = 0;

  /// Region-of-interest counters: cycles and flops accumulated between
  /// calls to `titan_tic()` and `titan_toc()` (declare them as `void`
  /// prototypes in the benchmarked C source — the calls are intercepted
  /// by the machine).  Zero when no region was marked.
  uint64_t RegionCycles = 0;
  uint64_t RegionFlops = 0;

  double seconds(const TitanConfig &C) const {
    return static_cast<double>(Cycles) / (C.ClockMHz * 1e6);
  }
  double mflops(const TitanConfig &C) const {
    if (Cycles == 0)
      return 0.0;
    return static_cast<double>(Flops) * C.ClockMHz /
           static_cast<double>(Cycles);
  }
  /// MFLOPS over the tic/toc region (falls back to the whole run when no
  /// region was marked).
  double regionMflops(const TitanConfig &C) const {
    if (RegionCycles == 0)
      return mflops(C);
    return static_cast<double>(RegionFlops) * C.ClockMHz /
           static_cast<double>(RegionCycles);
  }
};

class TitanMachine {
public:
  TitanMachine(const TitanProgram &Prog, TitanConfig Config);

  /// Runs \p Entry (no arguments) to completion.
  RunResult run(const std::string &Entry = "main");

  /// Byte address of a global; -1 when absent.
  int64_t addressOf(const std::string &Name) const;

  // Typed memory accessors for tests and benches.
  float readFloat(int64_t Addr) const;
  double readDouble(int64_t Addr) const;
  int32_t readInt(int64_t Addr) const;
  void writeFloat(int64_t Addr, float V);
  void writeDouble(int64_t Addr, double V);
  void writeInt(int64_t Addr, int32_t V);

private:
  const TitanProgram &Prog;
  TitanConfig Config;
  std::vector<uint8_t> Mem;
};

} // namespace titan
} // namespace tcc

#endif // TCC_TITAN_TITANMACHINE_H
