#include "titan/TitanMachine.h"

#include "support/StringExtras.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace tcc;
using namespace tcc::titan;

//===----------------------------------------------------------------------===//
// Disassembly
//===----------------------------------------------------------------------===//

std::string titan::disassemble(const TitanFunction &F) {
  static const char *Names[] = {
      "li",     "imov",   "iadd",   "isub",  "imul",    "idiv",   "irem",
      "ishl",   "ishr",   "iand",   "ior",   "ixor",    "ineg",   "ibitnot",
      "ilognot","icmplt", "icmple", "icmpgt","icmpge",  "icmpeq", "icmpne",
      "imin",   "imax",   "lf",     "fmov",  "fadd",    "fsub",   "fmul",
      "fdiv",   "fneg",   "fmin",   "fmax",  "fcmplt",  "fcmple", "fcmpgt",
      "fcmpge", "fcmpeq", "fcmpne", "itof",  "ftoi",    "ldc",    "ldw",
      "ldf",    "ldd",    "stc",    "stw",   "stf",     "std",    "jmp",
      "bnz",    "bz",     "call",   "ret",   "vld",     "vst",    "vadd",
      "vsub",   "vmul",   "vdiv",   "vneg",  "vsadd",   "vssub",  "vssubr",
      "vsmul",  "vsdiv",  "vsdivr", "viota", "parbegin", "parend", "halt"};
  std::string Out = F.Name + ":\n";
  for (size_t I = 0; I < F.Code.size(); ++I) {
    const Instr &In = F.Code[I];
    Out += formatString("%4zu: %-8s d=%d a=%d b=%d imm=%lld t=%d", I,
                        Names[static_cast<unsigned>(In.Op)], In.Dst, In.SrcA,
                        In.SrcB, static_cast<long long>(In.Imm), In.Target);
    if (In.Op == Opcode::LF)
      Out += formatString(" f=%g", In.FImm);
    if (In.NoStoreConflict)
      Out += " [nosconf]";
    if (!In.Comment.empty())
      Out += "  ; " + In.Comment;
    Out += "\n";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Machine
//===----------------------------------------------------------------------===//

TitanMachine::TitanMachine(const TitanProgram &Prog, TitanConfig Config)
    : Prog(Prog), Config(Config) {
  Mem.assign(Config.MemoryBytes, 0);
  // memcpy with a null source is UB even for zero bytes (an empty image
  // has no data pointer).
  if (const size_t N = std::min<size_t>(Prog.InitialImage.size(), Mem.size()))
    std::memcpy(Mem.data(), Prog.InitialImage.data(), N);
}

int64_t TitanMachine::addressOf(const std::string &Name) const {
  auto It = Prog.GlobalAddresses.find(Name);
  return It == Prog.GlobalAddresses.end() ? -1 : It->second;
}

float TitanMachine::readFloat(int64_t Addr) const {
  float V;
  std::memcpy(&V, Mem.data() + Addr, 4);
  return V;
}
double TitanMachine::readDouble(int64_t Addr) const {
  double V;
  std::memcpy(&V, Mem.data() + Addr, 8);
  return V;
}
int32_t TitanMachine::readInt(int64_t Addr) const {
  int32_t V;
  std::memcpy(&V, Mem.data() + Addr, 4);
  return V;
}
void TitanMachine::writeFloat(int64_t Addr, float V) {
  std::memcpy(Mem.data() + Addr, &V, 4);
}
void TitanMachine::writeDouble(int64_t Addr, double V) {
  std::memcpy(Mem.data() + Addr, &V, 8);
}
void TitanMachine::writeInt(int64_t Addr, int32_t V) {
  std::memcpy(Mem.data() + Addr, &V, 4);
}

namespace {

/// One activation record.
struct Frame {
  const TitanFunction *F = nullptr;
  size_t PC = 0;
  std::vector<int64_t> IReg;
  std::vector<double> FReg;
  std::vector<std::vector<double>> VReg;
  // Operand-ready cycles for the scoreboard.
  std::vector<uint64_t> IReady;
  std::vector<uint64_t> FReady;
  std::vector<uint64_t> VReady;
  int64_t FrameBase = 0;
  // Where to deliver the return value in the caller.
  int CallerRetReg = -1;
  bool CallerRetIsFp = false;
};

struct ParRegion {
  uint64_t StartCompletion = 0;
  int64_t Chunks = 1;
};

} // namespace

RunResult TitanMachine::run(const std::string &Entry) {
  RunResult R;
  const TitanFunction *Main = Prog.find(Entry);
  if (!Main) {
    R.Error = "entry function '" + Entry + "' not found";
    return R;
  }

  std::vector<Frame> Stack;
  int64_t SP = Prog.StackBase;

  auto pushFrame = [&](const TitanFunction *F) -> Frame & {
    Stack.emplace_back();
    Frame &Fr = Stack.back();
    Fr.F = F;
    Fr.IReg.assign(F->NumIntRegs, 0);
    Fr.FReg.assign(F->NumFpRegs, 0.0);
    Fr.VReg.assign(F->NumVecRegs, {});
    Fr.IReady.assign(F->NumIntRegs, 0);
    Fr.FReady.assign(F->NumFpRegs, 0);
    Fr.VReady.assign(F->NumVecRegs, 0);
    Fr.FrameBase = SP;
    SP += F->FrameSize;
    // r0 is the frame pointer by convention.
    if (!Fr.IReg.empty())
      Fr.IReg[0] = Fr.FrameBase;
    return Fr;
  };

  pushFrame(Main);

  // --- Timing state ---
  uint64_t LastIssue = 0;       ///< Issue cursor (in-order, 1/cycle).
  uint64_t FlowBarrier = 0;     ///< Branch/call boundary for scheduling.
  uint64_t PrevCompletion = 0;  ///< Completion of the previous instruction.
  uint64_t MaxCompletion = 0;
  uint64_t IntFree = 0, FpFree = 0, MemFree = 0, MemWFree = 0, VecFree = 0;
  uint64_t StoreBarrier = 0; ///< Loads wait for this unless disambiguated.
  std::vector<ParRegion> ParStack;
  uint64_t RegionStartCycles = 0;
  uint64_t RegionStartFlops = 0;
  bool InRegion = false;

  enum class Unit { Int, Fp, Mem, MemW, Vec, Ctl };

  auto issueOf = [&](Unit U, uint64_t OperandsReady,
                     bool IsLoad, bool NoConflict) -> uint64_t {
    uint64_t Issue = LastIssue + 1;
    if (Config.EnableOverlap) {
      // Scheduled code: within a branch-delimited region the compiler's
      // list scheduler reorders freely ("changing the instruction order
      // so that integer and floating point instructions overlap and so
      // that memory access and computation overlap", Section 2), so an
      // instruction is limited only by its operands, its unit's issue
      // rate, and the last control-flow boundary.
      Issue = std::max(FlowBarrier, OperandsReady);
      switch (U) {
      case Unit::Int:
        Issue = std::max(Issue, IntFree);
        break;
      case Unit::Fp:
        Issue = std::max(Issue, FpFree);
        break;
      case Unit::Mem:
        Issue = std::max(Issue, MemFree);
        break;
      case Unit::MemW:
        // Stores drain through the write buffer; they do not block the
        // read port (the scheduler hoists independent loads above them).
        Issue = std::max(Issue, MemWFree);
        break;
      case Unit::Vec:
        Issue = std::max(Issue, VecFree);
        break;
      case Unit::Ctl:
        break;
      }
      if (IsLoad && !NoConflict)
        Issue = std::max(Issue, StoreBarrier);
    } else {
      Issue = std::max(Issue, PrevCompletion);
      if (IsLoad)
        Issue = std::max(Issue, StoreBarrier);
    }
    return Issue;
  };

  auto finish = [&](Unit U, uint64_t Issue, uint64_t Latency) -> uint64_t {
    uint64_t Complete = Issue + Latency;
    switch (U) {
    case Unit::Int:
      IntFree = Issue + 1;
      break;
    case Unit::Fp:
      FpFree = Issue + 1;
      break;
    case Unit::Mem:
      MemFree = Issue + 1;
      break;
    case Unit::MemW:
      MemWFree = Issue + 1;
      break;
    case Unit::Vec:
      // Chained: the next vector operation enters the pipeline once this
      // one's startup drains; results stream one element per cycle.
      VecFree = Issue + Config.VectorStartup;
      break;
    case Unit::Ctl:
      break;
    }
    LastIssue = Issue;
    PrevCompletion = Complete;
    MaxCompletion = std::max(MaxCompletion, Complete);
    return Complete;
  };

  auto trap = [&](const std::string &Msg) {
    R.Ok = false;
    R.Error = Msg;
  };

  auto checkAddr = [&](int64_t Addr, int64_t Size) {
    return Addr >= 0 && Addr + Size <= static_cast<int64_t>(Mem.size());
  };

  while (!Stack.empty()) {
    Frame &Fr = Stack.back();
    if (Fr.PC >= Fr.F->Code.size()) {
      trap("fell off the end of function '" + Fr.F->Name + "'");
      return R;
    }
    if (++R.Instructions > Config.MaxInstructions) {
      trap("instruction budget exceeded (infinite loop?)");
      return R;
    }
    const Instr &In = Fr.F->Code[Fr.PC];
    size_t NextPC = Fr.PC + 1;

    auto ireg = [&](int N) -> int64_t & { return Fr.IReg[N]; };
    auto freg = [&](int N) -> double & { return Fr.FReg[N]; };
    auto iready = [&](int N) { return N >= 0 ? Fr.IReady[N] : 0; };
    auto fready = [&](int N) { return N >= 0 ? Fr.FReady[N] : 0; };

    switch (In.Op) {
    //===------------------------------------------------------------===//
    // Integer unit
    //===------------------------------------------------------------===//
    case Opcode::LI:
    case Opcode::IMOV:
    case Opcode::IADD:
    case Opcode::ISUB:
    case Opcode::IMUL:
    case Opcode::IDIV:
    case Opcode::IREM:
    case Opcode::ISHL:
    case Opcode::ISHR:
    case Opcode::IAND:
    case Opcode::IOR:
    case Opcode::IXOR:
    case Opcode::INEG:
    case Opcode::IBITNOT:
    case Opcode::ILOGNOT:
    case Opcode::ICMPLT:
    case Opcode::ICMPLE:
    case Opcode::ICMPGT:
    case Opcode::ICMPGE:
    case Opcode::ICMPEQ:
    case Opcode::ICMPNE:
    case Opcode::IMIN:
    case Opcode::IMAX: {
      int64_t A = In.SrcA >= 0 ? ireg(In.SrcA) : 0;
      int64_t B = In.SrcB >= 0 ? ireg(In.SrcB) : 0;
      int64_t V = 0;
      switch (In.Op) {
      case Opcode::LI:
        V = In.Imm;
        break;
      case Opcode::IMOV:
        V = A;
        break;
      case Opcode::IADD:
        V = A + B;
        break;
      case Opcode::ISUB:
        V = A - B;
        break;
      case Opcode::IMUL:
        V = A * B;
        ++R.IntMuls;
        break;
      case Opcode::IDIV:
        if (B == 0) {
          trap("integer division by zero");
          return R;
        }
        V = A / B;
        break;
      case Opcode::IREM:
        if (B == 0) {
          trap("integer remainder by zero");
          return R;
        }
        V = A % B;
        break;
      case Opcode::ISHL:
        V = A << (B & 31);
        break;
      case Opcode::ISHR:
        V = A >> (B & 31);
        break;
      case Opcode::IAND:
        V = A & B;
        break;
      case Opcode::IOR:
        V = A | B;
        break;
      case Opcode::IXOR:
        V = A ^ B;
        break;
      case Opcode::INEG:
        V = -A;
        break;
      case Opcode::IBITNOT:
        V = static_cast<int32_t>(~A);
        break;
      case Opcode::ILOGNOT:
        V = A == 0;
        break;
      case Opcode::ICMPLT:
        V = A < B;
        break;
      case Opcode::ICMPLE:
        V = A <= B;
        break;
      case Opcode::ICMPGT:
        V = A > B;
        break;
      case Opcode::ICMPGE:
        V = A >= B;
        break;
      case Opcode::ICMPEQ:
        V = A == B;
        break;
      case Opcode::ICMPNE:
        V = A != B;
        break;
      case Opcode::IMIN:
        V = std::min(A, B);
        break;
      case Opcode::IMAX:
        V = std::max(A, B);
        break;
      default:
        break;
      }
      V = static_cast<int32_t>(V); // 32-bit integer unit
      uint64_t Ready = std::max(iready(In.SrcA), iready(In.SrcB));
      uint64_t Issue = issueOf(Unit::Int, Ready, false, false);
      Fr.IReady[In.Dst] = finish(Unit::Int, Issue, Config.IntLatency);
      ireg(In.Dst) = V;
      ++R.IntOps;
      break;
    }

    //===------------------------------------------------------------===//
    // Scalar FP unit
    //===------------------------------------------------------------===//
    case Opcode::LF:
    case Opcode::FMOV:
    case Opcode::FADD:
    case Opcode::FSUB:
    case Opcode::FMUL:
    case Opcode::FDIV:
    case Opcode::FNEG:
    case Opcode::FMIN:
    case Opcode::FMAX:
    case Opcode::ITOF: {
      double A = In.Op == Opcode::ITOF
                     ? static_cast<double>(ireg(In.SrcA))
                     : (In.SrcA >= 0 ? freg(In.SrcA) : 0.0);
      double B = In.SrcB >= 0 ? freg(In.SrcB) : 0.0;
      double V = 0.0;
      int Lat = Config.FpAddLatency;
      switch (In.Op) {
      case Opcode::LF:
        V = In.FImm;
        Lat = Config.IntLatency;
        break;
      case Opcode::FMOV:
      case Opcode::ITOF:
        V = A;
        Lat = Config.IntLatency;
        break;
      case Opcode::FADD:
        V = A + B;
        ++R.Flops;
        break;
      case Opcode::FSUB:
        V = A - B;
        ++R.Flops;
        break;
      case Opcode::FMUL:
        V = A * B;
        Lat = Config.FpMulLatency;
        ++R.Flops;
        break;
      case Opcode::FDIV:
        V = A / B;
        Lat = Config.FpDivLatency;
        ++R.Flops;
        break;
      case Opcode::FNEG:
        V = -A;
        Lat = Config.IntLatency;
        break;
      case Opcode::FMIN:
        V = std::min(A, B);
        break;
      case Opcode::FMAX:
        V = std::max(A, B);
        break;
      default:
        break;
      }
      if (In.SinglePrec)
        V = static_cast<float>(V);
      uint64_t Ready =
          std::max(In.Op == Opcode::ITOF ? iready(In.SrcA) : fready(In.SrcA),
                   fready(In.SrcB));
      uint64_t Issue = issueOf(Unit::Fp, Ready, false, false);
      Fr.FReady[In.Dst] = finish(Unit::Fp, Issue, Lat);
      freg(In.Dst) = V;
      break;
    }
    case Opcode::FTOI: {
      int64_t V = static_cast<int64_t>(freg(In.SrcA));
      uint64_t Issue = issueOf(Unit::Fp, fready(In.SrcA), false, false);
      Fr.IReady[In.Dst] = finish(Unit::Fp, Issue, Config.FpAddLatency);
      ireg(In.Dst) = static_cast<int32_t>(V);
      break;
    }
    case Opcode::FCMPLT:
    case Opcode::FCMPLE:
    case Opcode::FCMPGT:
    case Opcode::FCMPGE:
    case Opcode::FCMPEQ:
    case Opcode::FCMPNE: {
      double A = freg(In.SrcA);
      double B = freg(In.SrcB);
      int64_t V = 0;
      switch (In.Op) {
      case Opcode::FCMPLT:
        V = A < B;
        break;
      case Opcode::FCMPLE:
        V = A <= B;
        break;
      case Opcode::FCMPGT:
        V = A > B;
        break;
      case Opcode::FCMPGE:
        V = A >= B;
        break;
      case Opcode::FCMPEQ:
        V = A == B;
        break;
      default:
        V = A != B;
        break;
      }
      uint64_t Ready = std::max(fready(In.SrcA), fready(In.SrcB));
      uint64_t Issue = issueOf(Unit::Fp, Ready, false, false);
      Fr.IReady[In.Dst] = finish(Unit::Fp, Issue, Config.FpAddLatency);
      ireg(In.Dst) = V;
      break;
    }

    //===------------------------------------------------------------===//
    // Scalar memory
    //===------------------------------------------------------------===//
    case Opcode::LDC:
    case Opcode::LDW:
    case Opcode::LDF:
    case Opcode::LDD: {
      int64_t Addr = ireg(In.SrcA) + In.Imm;
      int64_t Size = In.Op == Opcode::LDC   ? 1
                     : In.Op == Opcode::LDD ? 8
                                            : 4;
      if (!checkAddr(Addr, Size)) {
        trap(formatString("load from invalid address %lld in '%s'",
                          static_cast<long long>(Addr),
                          Fr.F->Name.c_str()));
        return R;
      }
      uint64_t Issue =
          issueOf(Unit::Mem, iready(In.SrcA), true, In.NoStoreConflict);
      uint64_t Done = finish(Unit::Mem, Issue, Config.LoadLatency);
      switch (In.Op) {
      case Opcode::LDC: {
        int8_t V;
        std::memcpy(&V, Mem.data() + Addr, 1);
        ireg(In.Dst) = V;
        Fr.IReady[In.Dst] = Done;
        break;
      }
      case Opcode::LDW: {
        int32_t V;
        std::memcpy(&V, Mem.data() + Addr, 4);
        ireg(In.Dst) = V;
        Fr.IReady[In.Dst] = Done;
        break;
      }
      case Opcode::LDF: {
        float V;
        std::memcpy(&V, Mem.data() + Addr, 4);
        freg(In.Dst) = V;
        Fr.FReady[In.Dst] = Done;
        break;
      }
      default: {
        double V;
        std::memcpy(&V, Mem.data() + Addr, 8);
        freg(In.Dst) = V;
        Fr.FReady[In.Dst] = Done;
        break;
      }
      }
      ++R.Loads;
      break;
    }
    case Opcode::STC:
    case Opcode::STW:
    case Opcode::STF:
    case Opcode::STD: {
      int64_t Addr = ireg(In.SrcA) + In.Imm;
      int64_t Size = In.Op == Opcode::STC   ? 1
                     : In.Op == Opcode::STD ? 8
                                            : 4;
      if (!checkAddr(Addr, Size)) {
        trap(formatString("store to invalid address %lld in '%s'",
                          static_cast<long long>(Addr),
                          Fr.F->Name.c_str()));
        return R;
      }
      uint64_t Ready = iready(In.SrcA);
      if (In.Op == Opcode::STF || In.Op == Opcode::STD)
        Ready = std::max(Ready, fready(In.SrcB));
      else
        Ready = std::max(Ready, iready(In.SrcB));
      uint64_t Issue = issueOf(Unit::MemW, Ready, false, false);
      finish(Unit::MemW, Issue, Config.StoreLatency);
      StoreBarrier = std::max<uint64_t>(StoreBarrier,
                                        Issue + Config.LoadLatency);
      switch (In.Op) {
      case Opcode::STC: {
        int8_t V = static_cast<int8_t>(ireg(In.SrcB));
        std::memcpy(Mem.data() + Addr, &V, 1);
        break;
      }
      case Opcode::STW: {
        int32_t V = static_cast<int32_t>(ireg(In.SrcB));
        std::memcpy(Mem.data() + Addr, &V, 4);
        break;
      }
      case Opcode::STF: {
        float V = static_cast<float>(freg(In.SrcB));
        std::memcpy(Mem.data() + Addr, &V, 4);
        break;
      }
      default: {
        double V = freg(In.SrcB);
        std::memcpy(Mem.data() + Addr, &V, 8);
        break;
      }
      }
      ++R.Stores;
      break;
    }

    //===------------------------------------------------------------===//
    // Control
    //===------------------------------------------------------------===//
    case Opcode::JMP: {
      uint64_t Issue = issueOf(Unit::Ctl, 0, false, false);
      finish(Unit::Ctl, Issue, Config.BranchLatency);
      LastIssue = Issue + Config.BranchLatency;
      FlowBarrier = LastIssue;
      NextPC = static_cast<size_t>(In.Target);
      break;
    }
    case Opcode::BNZ:
    case Opcode::BZ: {
      bool Taken = (ireg(In.SrcA) != 0) == (In.Op == Opcode::BNZ);
      uint64_t Issue = issueOf(Unit::Ctl, iready(In.SrcA), false, false);
      finish(Unit::Ctl, Issue, Config.BranchLatency);
      if (Taken) {
        LastIssue = Issue + Config.BranchLatency;
        FlowBarrier = LastIssue;
        NextPC = static_cast<size_t>(In.Target);
      }
      break;
    }
    case Opcode::CALL: {
      const TitanFunction &Callee = Prog.Functions[In.Target];
      // Region-of-interest markers: titan_tic()/titan_toc() are
      // intercepted, costing nothing.
      if (Callee.Name.rfind("titan_tic", 0) == 0) {
        RegionStartCycles = MaxCompletion;
        RegionStartFlops = R.Flops;
        InRegion = true;
        break;
      }
      if (Callee.Name.rfind("titan_toc", 0) == 0) {
        if (InRegion) {
          R.RegionCycles += MaxCompletion - RegionStartCycles;
          R.RegionFlops += R.Flops - RegionStartFlops;
          InRegion = false;
        }
        break;
      }
      uint64_t Ready = 0;
      for (size_t K = 0; K < In.Args.size(); ++K)
        Ready = std::max(Ready, In.ArgIsFp[K] ? fready(In.Args[K])
                                              : iready(In.Args[K]));
      uint64_t Issue = issueOf(Unit::Ctl, Ready, false, false);
      finish(Unit::Ctl, Issue, Config.CallOverhead);
      LastIssue = Issue + Config.CallOverhead;
      FlowBarrier = LastIssue;

      // Gather argument values before pushing the new frame.
      std::vector<int64_t> IArgs(In.Args.size(), 0);
      std::vector<double> FArgs(In.Args.size(), 0.0);
      for (size_t K = 0; K < In.Args.size(); ++K) {
        if (In.ArgIsFp[K])
          FArgs[K] = freg(In.Args[K]);
        else
          IArgs[K] = ireg(In.Args[K]);
      }
      Fr.PC = NextPC; // return point
      if (SP + Callee.FrameSize > static_cast<int64_t>(Mem.size())) {
        trap("frame stack overflow (runaway recursion?)");
        return R;
      }
      Frame &NewFr = pushFrame(&Callee);
      NewFr.CallerRetReg = In.Dst;
      NewFr.CallerRetIsFp = In.RetIsFp;
      for (size_t K = 0; K < Callee.ParamLocs.size() && K < In.Args.size();
           ++K) {
        const SymbolLocation &Loc = Callee.ParamLocs[K];
        switch (Loc.K) {
        case SymbolLocation::IntReg:
          NewFr.IReg[Loc.Index] = IArgs[K];
          break;
        case SymbolLocation::FpReg:
          NewFr.FReg[Loc.Index] = In.ArgIsFp[K]
                                      ? FArgs[K]
                                      : static_cast<double>(IArgs[K]);
          break;
        case SymbolLocation::Frame: {
          int64_t Addr = NewFr.FrameBase + Loc.Index;
          if (In.ArgIsFp[K]) {
            double V = FArgs[K];
            std::memcpy(Mem.data() + Addr, &V, 8);
          } else {
            int32_t V = static_cast<int32_t>(IArgs[K]);
            std::memcpy(Mem.data() + Addr, &V, 4);
          }
          break;
        }
        case SymbolLocation::Global:
          break;
        }
      }
      continue; // new frame starts at PC 0
    }
    case Opcode::RET: {
      int64_t IVal = In.SrcA >= 0 && !In.RetIsFp ? ireg(In.SrcA) : 0;
      double FVal = In.SrcA >= 0 && In.RetIsFp ? freg(In.SrcA) : 0.0;
      uint64_t Ready = In.SrcA >= 0
                           ? (In.RetIsFp ? fready(In.SrcA) : iready(In.SrcA))
                           : 0;
      uint64_t Issue = issueOf(Unit::Ctl, Ready, false, false);
      finish(Unit::Ctl, Issue, Config.BranchLatency);
      int RetReg = Fr.CallerRetReg;
      bool RetIsFp = Fr.CallerRetIsFp;
      SP = Fr.FrameBase;
      Stack.pop_back();
      if (Stack.empty()) {
        R.Ok = true;
        R.ExitValue = IVal;
        R.Cycles = MaxCompletion;
        return R;
      }
      if (RetReg >= 0) {
        Frame &Caller = Stack.back();
        if (RetIsFp) {
          Caller.FReg[RetReg] = In.RetIsFp ? FVal
                                           : static_cast<double>(IVal);
          Caller.FReady[RetReg] = PrevCompletion;
        } else {
          Caller.IReg[RetReg] =
              In.RetIsFp ? static_cast<int64_t>(FVal) : IVal;
          Caller.IReady[RetReg] = PrevCompletion;
        }
      }
      continue; // caller's PC already advanced
    }
    case Opcode::HALT: {
      R.Ok = true;
      R.Cycles = MaxCompletion;
      return R;
    }

    //===------------------------------------------------------------===//
    // Vector unit
    //===------------------------------------------------------------===//
    case Opcode::VLD:
    case Opcode::VST: {
      int64_t Addr = ireg(In.Args[0]);
      int64_t Stride = ireg(In.Args[1]);
      int64_t Len = ireg(In.Args[2]);
      if (Len < 0)
        Len = 0;
      if (Len > 8192) {
        trap("vector length exceeds the register file");
        return R;
      }
      int64_t ElemSize = In.Kind == ElemKind::Float64 ? 8 : 4;
      uint64_t Ready = std::max({iready(In.Args[0]), iready(In.Args[1]),
                                 iready(In.Args[2])});
      bool IsLoad = In.Op == Opcode::VLD;
      if (!IsLoad)
        Ready = std::max(Ready, Fr.VReady[In.SrcA]);
      uint64_t Issue = issueOf(Unit::Vec, Ready, IsLoad,
                               In.NoStoreConflict);
      uint64_t Busy = Config.VectorStartup + Len * Config.VectorPerElement;
      finish(Unit::Vec, Issue, Busy);
      VecFree = Issue + Busy; // the memory pipe moves one word per cycle
      uint64_t Done = Issue + Config.VectorStartup; // chained stream
      if (IsLoad) {
        auto &V = Fr.VReg[In.Dst];
        V.assign(static_cast<size_t>(Len), 0.0);
        for (int64_t K = 0; K < Len; ++K) {
          int64_t A = Addr + K * Stride;
          if (!checkAddr(A, ElemSize)) {
            trap("vector load from invalid address");
            return R;
          }
          if (In.Kind == ElemKind::Float64) {
            double X;
            std::memcpy(&X, Mem.data() + A, 8);
            V[K] = X;
          } else if (In.Kind == ElemKind::Float32) {
            float X;
            std::memcpy(&X, Mem.data() + A, 4);
            V[K] = X;
          } else {
            int32_t X;
            std::memcpy(&X, Mem.data() + A, 4);
            V[K] = X;
          }
        }
        Fr.VReady[In.Dst] = Done;
      } else {
        const auto &V = Fr.VReg[In.SrcA];
        for (int64_t K = 0; K < Len && K < (int64_t)V.size(); ++K) {
          int64_t A = Addr + K * Stride;
          if (!checkAddr(A, ElemSize)) {
            trap("vector store to invalid address");
            return R;
          }
          if (In.Kind == ElemKind::Float64) {
            double X = V[K];
            std::memcpy(Mem.data() + A, &X, 8);
          } else if (In.Kind == ElemKind::Float32) {
            float X = static_cast<float>(V[K]);
            std::memcpy(Mem.data() + A, &X, 4);
          } else {
            int32_t X = static_cast<int32_t>(V[K]);
            std::memcpy(Mem.data() + A, &X, 4);
          }
        }
        StoreBarrier = std::max<uint64_t>(StoreBarrier,
                                          Issue + Config.LoadLatency);
      }
      ++R.VectorInstrs;
      R.VectorElems += static_cast<uint64_t>(Len);
      break;
    }
    case Opcode::VADD:
    case Opcode::VSUB:
    case Opcode::VMUL:
    case Opcode::VDIV:
    case Opcode::VNEG:
    case Opcode::VSADD:
    case Opcode::VSSUB:
    case Opcode::VSSUBR:
    case Opcode::VSMUL:
    case Opcode::VSDIV:
    case Opcode::VSDIVR: {
      const auto &A = Fr.VReg[In.SrcA];
      size_t Len = A.size();
      auto &D = Fr.VReg[In.Dst];
      D.assign(Len, 0.0);
      bool VS = In.Op >= Opcode::VSADD;
      double S = VS ? freg(In.Args.empty() ? 0 : In.Args[0]) : 0.0;
      const std::vector<double> *B =
          (!VS && In.Op != Opcode::VNEG) ? &Fr.VReg[In.SrcB] : nullptr;
      for (size_t K = 0; K < Len; ++K) {
        double X = A[K];
        double Y = B && K < B->size() ? (*B)[K] : 0.0;
        double V = 0.0;
        switch (In.Op) {
        case Opcode::VADD:
          V = X + Y;
          break;
        case Opcode::VSUB:
          V = X - Y;
          break;
        case Opcode::VMUL:
          V = X * Y;
          break;
        case Opcode::VDIV:
          V = X / Y;
          break;
        case Opcode::VNEG:
          V = -X;
          break;
        case Opcode::VSADD:
          V = X + S;
          break;
        case Opcode::VSSUB:
          V = X - S;
          break;
        case Opcode::VSSUBR:
          V = S - X;
          break;
        case Opcode::VSMUL:
          V = X * S;
          break;
        case Opcode::VSDIV:
          V = X / S;
          break;
        case Opcode::VSDIVR:
          V = S / X;
          break;
        default:
          break;
        }
        if (In.SinglePrec)
          V = static_cast<float>(V);
        D[K] = V;
      }
      if (In.Op != Opcode::VNEG)
        R.Flops += Len;
      uint64_t Ready = Fr.VReady[In.SrcA];
      if (B)
        Ready = std::max(Ready, Fr.VReady[In.SrcB]);
      if (VS && !In.Args.empty())
        Ready = std::max(Ready, fready(In.Args[0]));
      uint64_t Issue = issueOf(Unit::Vec, Ready, false, false);
      finish(Unit::Vec, Issue,
             Config.VectorStartup +
                 static_cast<uint64_t>(Len) * Config.VectorPerElement);
      Fr.VReady[In.Dst] = Issue + Config.VectorStartup; // chained stream
      ++R.VectorInstrs;
      R.VectorElems += Len;
      break;
    }

    case Opcode::VIOTA: {
      int64_t Lo = ireg(In.Args[0]);
      int64_t Stride = ireg(In.Args[1]);
      int64_t Len = ireg(In.Args[2]);
      if (Len < 0)
        Len = 0;
      if (Len > 8192) {
        trap("vector length exceeds the register file");
        return R;
      }
      auto &V = Fr.VReg[In.Dst];
      V.assign(static_cast<size_t>(Len), 0.0);
      for (int64_t K = 0; K < Len; ++K)
        V[K] = static_cast<double>(Lo + K * Stride);
      uint64_t Ready = std::max({iready(In.Args[0]), iready(In.Args[1]),
                                 iready(In.Args[2])});
      uint64_t Issue = issueOf(Unit::Vec, Ready, false, false);
      finish(Unit::Vec, Issue,
             Config.VectorStartup +
                 static_cast<uint64_t>(Len) * Config.VectorPerElement);
      Fr.VReady[In.Dst] = Issue + Config.VectorStartup; // chained stream
      ++R.VectorInstrs;
      R.VectorElems += static_cast<uint64_t>(Len);
      break;
    }

    //===------------------------------------------------------------===//
    // Parallel regions
    //===------------------------------------------------------------===//
    case Opcode::PARBEGIN: {
      ParRegion Region;
      Region.StartCompletion = MaxCompletion;
      Region.Chunks = In.SrcA >= 0 ? std::max<int64_t>(1, ireg(In.SrcA)) : 1;
      ParStack.push_back(Region);
      break;
    }
    case Opcode::PAREND: {
      if (!ParStack.empty()) {
        ParRegion Region = ParStack.back();
        ParStack.pop_back();
        uint64_t Elapsed = MaxCompletion - Region.StartCompletion;
        int64_t Procs =
            std::min<int64_t>(Config.NumProcessors, Region.Chunks);
        // A region nested inside another parallel region (e.g. a
        // parallel strip loop in a callee invoked from a spread outer
        // loop) gets no processors of its own: the four processors are
        // already committed to the outer region's chunks, and dividing
        // twice would model a 16-way machine.
        if (!ParStack.empty())
          Procs = 1;
        if (Procs > 1) {
          uint64_t Shrunk = Elapsed / static_cast<uint64_t>(Procs) +
                            Config.BarrierCycles;
          uint64_t NewCompletion = Region.StartCompletion + Shrunk;
          MaxCompletion = NewCompletion;
          PrevCompletion = NewCompletion;
          LastIssue = NewCompletion;
          FlowBarrier = NewCompletion;
          IntFree = FpFree = MemFree = MemWFree = VecFree = NewCompletion;
          StoreBarrier = std::min(StoreBarrier, NewCompletion);
        }
      }
      break;
    }
    }

    Fr.PC = NextPC;
  }
  R.Ok = true;
  R.Cycles = MaxCompletion;
  return R;
}
