//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated Titan instruction set.
///
/// The real Titan (paper Section 2) pairs a RISC integer processor with a
/// highly pipelined floating point unit that executes all scalar FP and
/// all vector instructions, fed from an 8192-element vector register file
/// addressable at any origin, length and stride; up to four processors
/// share memory.  This module defines a register-transfer ISA with the
/// same structure:
///
///  - integer registers (unbounded virtual; the code generator maps hot
///    scalars to registers and the rest to frame slots),
///  - scalar FP registers (the register-file-as-scalars view the paper
///    describes),
///  - vector registers holding up to 8192 elements,
///  - scalar memory ops (byte/word/float/double), vector loads/stores
///    with arbitrary stride, vector-vector and vector-scalar arithmetic,
///  - branches, calls, and parallel-region markers used by the timing
///    model to spread loop iterations across processors.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_TITAN_TITANISA_H
#define TCC_TITAN_TITANISA_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tcc {
namespace titan {

enum class Opcode : uint8_t {
  // Integer unit.
  LI,   ///< idst = Imm
  IMOV, ///< idst = isrcA
  IADD,
  ISUB,
  IMUL,
  IDIV,
  IREM,
  ISHL,
  ISHR,
  IAND,
  IOR,
  IXOR,
  INEG,
  IBITNOT,
  ILOGNOT,
  ICMPLT,
  ICMPLE,
  ICMPGT,
  ICMPGE,
  ICMPEQ,
  ICMPNE,
  IMIN,
  IMAX,

  // Scalar FP unit (registers hold doubles; SinglePrec rounds results).
  LF,   ///< fdst = FImm
  FMOV, ///< fdst = fsrcA
  FADD,
  FSUB,
  FMUL,
  FDIV,
  FNEG,
  FMIN,
  FMAX,
  FCMPLT, ///< idst = fsrcA < fsrcB
  FCMPLE,
  FCMPGT,
  FCMPGE,
  FCMPEQ,
  FCMPNE,
  ITOF, ///< fdst = (double)isrcA
  FTOI, ///< idst = (int)fsrcA

  // Scalar memory; address in isrcA (byte address), offset in Imm.
  LDC, ///< idst = signext(*(int8*)addr)
  LDW, ///< idst = *(int32*)addr
  LDF, ///< fdst = *(float*)addr
  LDD, ///< fdst = *(double*)addr
  STC, ///< *(int8*)addr = isrcB
  STW,
  STF, ///< *(float*)addr = fsrcB
  STD,

  // Control.
  JMP, ///< to Target
  BNZ, ///< if (isrcA != 0) goto Target
  BZ,  ///< if (isrcA == 0) goto Target
  CALL,
  RET,

  // Vector unit.  Vector registers are indexed by Dst/SrcA/SrcB in the
  // vector file; Args holds [addrReg, strideReg, lenReg] for memory ops.
  VLD,   ///< vdst = memory[addr + k*stride], k in [0,len)
  VST,   ///< memory[addr + k*stride] = vsrcA
  VADD,  ///< vdst = vsrcA + vsrcB (elementwise)
  VSUB,
  VMUL,
  VDIV,
  VNEG,
  VSADD, ///< vdst = vsrcA + fscalar (scalar in fp reg Args[0])
  VSSUB, ///< vdst = vsrcA - fscalar
  VSSUBR,///< vdst = fscalar - vsrcA
  VSMUL,
  VSDIV, ///< vdst = vsrcA / fscalar
  VSDIVR,
  VIOTA, ///< vdst[k] = lo + k*stride; Args = [loReg, strideReg, lenReg]

  // Parallel region markers (multiprocessor spreading).  PARBEGIN reads
  /// the chunk count from isrcA.
  PARBEGIN,
  PAREND,

  HALT,
};

/// Element kind of a vector memory operation.
enum class ElemKind : uint8_t { Float32, Float64, Int32 };

struct Instr {
  Opcode Op = Opcode::HALT;
  int Dst = -1;
  int SrcA = -1;
  int SrcB = -1;
  int64_t Imm = 0;
  double FImm = 0.0;
  int Target = -1; ///< Branch target (instruction index) or callee index.
  ElemKind Kind = ElemKind::Float32;
  bool SinglePrec = false; ///< Round FP result to float32.
  /// Dependence analysis proved this load conflicts with no earlier store
  /// in flight — the scheduler may hoist it past the store queue (the
  /// paper's dependence-driven instruction scheduling, Section 6).
  bool NoStoreConflict = false;
  std::vector<int> Args; ///< Call argument registers / vector mem operands.
  /// For CALL: argument FP-ness flags, result in Dst (int) or Dst with
  /// RetIsFp.
  std::vector<bool> ArgIsFp;
  bool RetIsFp = false;
  std::string Comment; ///< Disassembly aid.
};

/// Where a function's scalar symbol lives at run time.
struct SymbolLocation {
  enum Kind { IntReg, FpReg, Frame, Global } K = Frame;
  int Index = 0;     ///< Register number or byte offset.
  int64_t Addr = 0;  ///< Global byte address (K == Global).
};

struct TitanFunction {
  std::string Name;
  std::vector<Instr> Code;
  unsigned NumIntRegs = 0;
  unsigned NumFpRegs = 0;
  unsigned NumVecRegs = 0;
  int64_t FrameSize = 0;
  unsigned NumParams = 0;
  std::vector<SymbolLocation> ParamLocs; ///< Where each param is received.
  bool RetIsFp = false;
  bool HasRetValue = false;
};

/// A linked Titan program: functions, global memory layout, initial image.
struct TitanProgram {
  std::vector<TitanFunction> Functions;
  std::map<std::string, size_t> FunctionIndex;
  /// Global/static symbol name → byte address.
  std::map<std::string, int64_t> GlobalAddresses;
  int64_t GlobalSize = 0;       ///< Bytes of global storage.
  std::vector<uint8_t> InitialImage; ///< Initialized global bytes.
  int64_t StackBase = 0;        ///< Frame stack starts here.

  const TitanFunction *find(const std::string &Name) const {
    auto It = FunctionIndex.find(Name);
    return It == FunctionIndex.end() ? nullptr : &Functions[It->second];
  }
};

/// Renders a function's code as pseudo-assembly (tests, debugging).
std::string disassemble(const TitanFunction &F);

} // namespace titan
} // namespace tcc

#endif // TCC_TITAN_TITANISA_H
