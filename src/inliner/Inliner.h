//===----------------------------------------------------------------------===//
///
/// \file
/// Inline expansion (paper Section 7).
///
/// The Titan compiler treats inlining as central: procedure calls hide
/// effects, aggravate aliasing, and block vectorization.  This module
/// provides:
///
///  - ProcedureCatalog: libraries of parsed procedures in the pointer-free
///    serialized IL ("math libraries can be 'compiled' into databases and
///    used as a base for inlining, much as include directories are used
///    as a source for header files");
///  - static-variable handling: statics provably re-initialized on every
///    invocation demote to automatic storage (the paper calls this "an
///    important optimization" because external variables optimize worse);
///    the rest are externalized so values stay correct whether the
///    procedure is called normally or inlined;
///  - call-site expansion with `in_`-prefixed parameter temporaries,
///    label renaming, return→goto rewriting — mechanically producing the
///    Section 9 intermediate form;
///  - recursion guards (inlining proceeds bottom-up over the call graph
///    and never expands a cycle);
///  - array-row argument promotion: a pure address argument whose
///    operands the inlined body does not modify is forward-substituted
///    into the body, turning `*(in_p + 4*j)` back into a named-array
///    reference the vectorizer can analyze.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_INLINER_INLINER_H
#define TCC_INLINER_INLINER_H

#include "il/IL.h"
#include "support/Diagnostics.h"

#include <map>
#include <set>
#include <string>

namespace tcc {
namespace inliner {

/// A database of procedures in serialized IL form.
class ProcedureCatalog {
public:
  /// Serializes and stores \p F (externalizing statics first is the
  /// caller's job; `prepareFunctionForInlining` does it).
  void store(const il::Function &F);

  /// Stores an already-serialized entry (the sharded catalog builder
  /// merges per-TU serialized databases without re-parsing them).
  void storeSerialized(const std::string &Name, std::string Text);

  bool contains(const std::string &Name) const {
    return Entries.count(Name) != 0;
  }
  const std::map<std::string, std::string> &entries() const {
    return Entries;
  }

  /// Materializes a catalog entry into \p P as a regular function (so it
  /// can be inlined or called).  Returns null if absent or malformed; a
  /// malformed entry reports a diagnostic naming the entry.
  il::Function *materialize(const std::string &Name, il::Program &P,
                            DiagnosticEngine &Diags) const;

  /// Whole-catalog text round-trip (for saving to disk in tools).
  std::string serialize() const;

  /// Validating parse of on-disk catalog text.  Malformed framing
  /// (bad/truncated `#entry` headers), entries that are not well-formed
  /// function S-expressions, and duplicate procedure names each produce a
  /// diagnostic located in \p Text (line:col of the whole catalog file).
  /// Returns false if any entry was rejected; accepted entries are kept.
  static bool parse(const std::string &Text, ProcedureCatalog &Out,
                    DiagnosticEngine &Diags);

  /// Best-effort variant of parse() for contexts without a diagnostic
  /// sink: keeps every well-formed entry, silently drops the rest.
  static ProcedureCatalog deserialize(const std::string &Text);

private:
  std::map<std::string, std::string> Entries;
};

struct InlineOptions {
  /// Upper bound on callee body size (statements) for expansion; 0 means
  /// no limit.
  unsigned MaxCalleeStmts = 0;
  /// Functions never to inline.
  std::set<std::string> NeverInline;
};

struct InlineStats {
  unsigned CallsInlined = 0;
  unsigned CallsLeft = 0;       ///< Unresolvable or guarded call sites.
  unsigned RecursionSkipped = 0;
  unsigned StaticsDemoted = 0;  ///< Statics moved to automatic storage.
  unsigned StaticsExternalized = 0;
  unsigned RowArgsPromoted = 0; ///< Address arguments forward-substituted.
};

/// Demotes provably re-initialized statics to locals and externalizes the
/// rest into program globals named "function.symbol".
InlineStats prepareFunctionForInlining(il::Function &F);

/// Expands calls throughout \p P, bottom-up over the call graph, pulling
/// unknown callees from \p Catalog when provided.  Recursive cycles are
/// never expanded.
InlineStats inlineCalls(il::Program &P, DiagnosticEngine &Diags,
                        const InlineOptions &Opts = {},
                        const ProcedureCatalog *Catalog = nullptr);

} // namespace inliner
} // namespace tcc

#endif // TCC_INLINER_INLINER_H
