#include "inliner/Inliner.h"

#include "analysis/CallGraph.h"
#include "analysis/UseDef.h"
#include "il/ILSerializer.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <functional>

using namespace tcc;
using namespace tcc::il;
using namespace tcc::inliner;

//===----------------------------------------------------------------------===//
// ProcedureCatalog
//===----------------------------------------------------------------------===//

void ProcedureCatalog::store(const Function &F) {
  Entries[F.getName()] = serializeFunction(F);
}

void ProcedureCatalog::storeSerialized(const std::string &Name,
                                       std::string Text) {
  Entries[Name] = std::move(Text);
}

Function *ProcedureCatalog::materialize(const std::string &Name, Program &P,
                                        DiagnosticEngine &Diags) const {
  auto It = Entries.find(Name);
  if (It == Entries.end())
    return nullptr;
  Function *F = deserializeFunction(It->second, P, Diags);
  if (!F)
    Diags.error(SourceLoc(),
                "catalog entry '" + Name + "' is malformed and was ignored");
  return F;
}

std::string ProcedureCatalog::serialize() const {
  // Entries are framed by a length header so function bodies may contain
  // anything.
  std::string Out;
  for (const auto &[Name, Text] : Entries) {
    Out += "#entry " + std::to_string(Text.size()) + "\n";
    Out += Text;
    if (!Text.empty() && Text.back() != '\n')
      Out += '\n';
  }
  return Out;
}

namespace {

/// 1-based line number of \p Pos in \p Text (column is not tracked for
/// framing diagnostics; headers start at column 1).
uint32_t lineAt(const std::string &Text, size_t Pos) {
  uint32_t Line = 1;
  for (size_t I = 0; I < Pos && I < Text.size(); ++I)
    if (Text[I] == '\n')
      ++Line;
  return Line;
}

} // namespace

bool ProcedureCatalog::parse(const std::string &Text, ProcedureCatalog &Out,
                             DiagnosticEngine &Diags) {
  bool Ok = true;
  std::map<std::string, uint32_t> SeenAtLine;
  size_t Pos = 0;
  const std::string Marker = "#entry ";
  while (Pos < Text.size()) {
    if (Text[Pos] == '\n') { // blank separator lines between entries
      ++Pos;
      continue;
    }
    SourceLoc HeaderLoc(lineAt(Text, Pos), 1);
    if (Text.compare(Pos, Marker.size(), Marker) != 0) {
      Diags.error(HeaderLoc, "expected '#entry <length>' header in catalog");
      return false;
    }
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos) {
      Diags.error(HeaderLoc, "truncated catalog: '#entry' header has no body");
      return false;
    }
    const std::string LenText =
        Text.substr(Pos + Marker.size(), Eol - Pos - Marker.size());
    errno = 0;
    char *End = nullptr;
    unsigned long Len = std::strtoul(LenText.c_str(), &End, 10);
    if (LenText.empty() || errno != 0 || *End != '\0') {
      Diags.error(HeaderLoc, "malformed '#entry' length '" + LenText +
                                 "' in catalog");
      return false;
    }
    size_t BodyStart = Eol + 1;
    if (BodyStart + Len > Text.size()) {
      Diags.error(HeaderLoc,
                  "truncated catalog: '#entry' header claims " +
                      std::to_string(Len) + " bytes but only " +
                      std::to_string(Text.size() - BodyStart) + " remain");
      return false;
    }
    std::string Body = Text.substr(BodyStart, Len);
    uint32_t BodyLine = lineAt(Text, BodyStart);

    // Validate the entry as a function S-expression (cheap, no IL built)
    // and re-emit its diagnostics located in the whole catalog file.
    DiagnosticEngine EntryDiags;
    std::string Name;
    if (!il::validateFunctionText(Body, Name, EntryDiags)) {
      for (const Diagnostic &D : EntryDiags.diagnostics()) {
        SourceLoc Loc = D.Loc.isValid()
                            ? SourceLoc(BodyLine + D.Loc.Line - 1, D.Loc.Col)
                            : SourceLoc(BodyLine, 1);
        Diags.error(Loc, D.Message);
      }
      Ok = false;
    } else if (auto [It, Inserted] = SeenAtLine.emplace(Name, BodyLine);
               !Inserted) {
      Diags.error(SourceLoc(BodyLine, 1),
                  "duplicate catalog entry for procedure '" + Name +
                      "' (previous entry at line " +
                      std::to_string(It->second) + ")");
      Ok = false;
    } else {
      Out.Entries[Name] = std::move(Body);
    }
    Pos = BodyStart + Len;
  }
  return Ok;
}

ProcedureCatalog ProcedureCatalog::deserialize(const std::string &Text) {
  ProcedureCatalog Out;
  DiagnosticEngine Sink;
  parse(Text, Out, Sink);
  return Out;
}

//===----------------------------------------------------------------------===//
// Static handling
//===----------------------------------------------------------------------===//

InlineStats inliner::prepareFunctionForInlining(Function &F) {
  InlineStats Stats;
  std::vector<Symbol *> Statics;
  for (const auto &S : F.getSymbols())
    if (S->getStorage() == StorageKind::Static)
      Statics.push_back(S.get());
  if (Statics.empty())
    return Stats;

  std::set<Symbol *> AddrTaken = analysis::computeAddressTakenScalars(F);
  analysis::UseDefChains UD(F);

  for (Symbol *S : Statics) {
    // Demotion: safe when no use can observe a previous invocation's
    // value — every reaching definition is inside this invocation (the
    // entry definition, representing the persisted value, reaches no
    // use), the address is never taken, and there is no initializer a
    // use could rely on.
    bool Demotable = S->getType()->isScalar() && !S->isVolatile() &&
                     !AddrTaken.count(S) && !S->hasInit();
    if (Demotable) {
      forEachStmt(F.getBody(), [&](Stmt *User) {
        for (Symbol *Used : analysis::usedScalars(User)) {
          if (Used != S)
            continue;
          for (const Stmt *Def : UD.defsReaching(User, S))
            if (Def == nullptr)
              Demotable = false;
        }
      });
    }
    if (Demotable) {
      S->setStorage(StorageKind::Local);
      ++Stats.StaticsDemoted;
      continue;
    }
    // Externalize: move to a program global named "function.symbol" so
    // the value is shared between inlined and out-of-line invocations.
    Program &P = F.getProgram();
    std::string GlobalName = F.getName() + "." + S->getName();
    Symbol *G = P.findGlobal(GlobalName);
    if (!G) {
      G = P.createGlobal(GlobalName, S->getType(), S->isVolatile());
      if (S->hasInit())
        G->setInit(S->getInit());
    }
    forEachStmt(F.getBody(), [&](Stmt *User) {
      forEachExprSlot(User, [&](Expr *&Slot) {
        forEachSubExprSlot(Slot, [&](Expr *&Sub) {
          if (Sub->getKind() == Expr::VarRefKind &&
              static_cast<VarRefExpr *>(Sub)->getSymbol() == S)
            static_cast<VarRefExpr *>(Sub)->setSymbol(G);
        });
      });
    });
    S->setStorage(StorageKind::Local); // now unused; DCE prunes
    ++Stats.StaticsExternalized;
  }
  F.removeUnusedSymbols();
  return Stats;
}

//===----------------------------------------------------------------------===//
// Expansion
//===----------------------------------------------------------------------===//

namespace {

/// Replaces every ReturnStmt in \p B with `retvar = value; goto endLabel`.
void rewriteReturns(Function &F, Block &B, Symbol *RetVar,
                    const std::string &EndLabel) {
  for (size_t I = 0; I < B.Stmts.size(); ++I) {
    Stmt *S = B.Stmts[I];
    switch (S->getKind()) {
    case Stmt::ReturnKind: {
      auto *R = static_cast<ReturnStmt *>(S);
      std::vector<Stmt *> Repl;
      if (RetVar && R->getValue())
        Repl.push_back(F.create<AssignStmt>(R->getLoc(),
                                            F.makeVarRef(RetVar),
                                            R->getValue()));
      Repl.push_back(F.create<GotoStmt>(R->getLoc(), EndLabel));
      B.Stmts.erase(B.Stmts.begin() + static_cast<long>(I));
      B.Stmts.insert(B.Stmts.begin() + static_cast<long>(I), Repl.begin(),
                     Repl.end());
      I += Repl.size() - 1;
      break;
    }
    case Stmt::IfKind: {
      auto *If = static_cast<IfStmt *>(S);
      rewriteReturns(F, If->getThen(), RetVar, EndLabel);
      rewriteReturns(F, If->getElse(), RetVar, EndLabel);
      break;
    }
    case Stmt::WhileKind:
      rewriteReturns(F, static_cast<WhileStmt *>(S)->getBody(), RetVar,
                     EndLabel);
      break;
    case Stmt::DoLoopKind:
      rewriteReturns(F, static_cast<DoLoopStmt *>(S)->getBody(), RetVar,
                     EndLabel);
      break;
    default:
      break;
    }
  }
}

size_t bodySize(const Function &F) {
  size_t N = 0;
  forEachStmt(F.getBody(), [&N](const Stmt *) { ++N; });
  return N;
}

class Expander {
public:
  Expander(Program &P, DiagnosticEngine &Diags, const InlineOptions &Opts,
           const ProcedureCatalog *Catalog)
      : P(P), Diags(Diags), Opts(Opts), Catalog(Catalog) {}

  InlineStats run() {
    // Externalize/demote statics everywhere first.
    for (const auto &F : P.getFunctions()) {
      InlineStats S = prepareFunctionForInlining(*F);
      Stats.StaticsDemoted += S.StaticsDemoted;
      Stats.StaticsExternalized += S.StaticsExternalized;
    }

    // Bottom-up over the call graph: callees are fully expanded before
    // their callers, so each site expands once and cycles never unroll.
    analysis::CallGraph CG(P);
    for (const std::string &Name : CG.bottomUpOrder()) {
      Function *F = P.findFunction(Name);
      if (F)
        expandIn(*F, CG);
    }
    return Stats;
  }

private:
  void expandIn(Function &Caller, analysis::CallGraph &CG) {
    std::function<void(Block &)> Visit = [&](Block &B) {
      for (size_t I = 0; I < B.Stmts.size(); ++I) {
        Stmt *S = B.Stmts[I];
        switch (S->getKind()) {
        case Stmt::CallKind: {
          auto *Call = static_cast<CallStmt *>(S);
          Function *Callee = resolve(Call->getCallee());
          if (!Callee || Callee == &Caller ||
              Opts.NeverInline.count(Call->getCallee())) {
            if (Callee == &Caller)
              ++Stats.RecursionSkipped;
            ++Stats.CallsLeft;
            break;
          }
          if (CG.isRecursive(Call->getCallee())) {
            ++Stats.RecursionSkipped;
            ++Stats.CallsLeft;
            break;
          }
          if (Opts.MaxCalleeStmts &&
              bodySize(*Callee) > Opts.MaxCalleeStmts) {
            ++Stats.CallsLeft;
            break;
          }
          std::vector<Stmt *> Expansion =
              expandSite(Caller, *Call, *Callee);
          B.Stmts.erase(B.Stmts.begin() + static_cast<long>(I));
          B.Stmts.insert(B.Stmts.begin() + static_cast<long>(I),
                         Expansion.begin(), Expansion.end());
          I += Expansion.size() - 1;
          ++Stats.CallsInlined;
          break;
        }
        case Stmt::IfKind: {
          auto *If = static_cast<IfStmt *>(S);
          Visit(If->getThen());
          Visit(If->getElse());
          break;
        }
        case Stmt::WhileKind:
          Visit(static_cast<WhileStmt *>(S)->getBody());
          break;
        case Stmt::DoLoopKind:
          Visit(static_cast<DoLoopStmt *>(S)->getBody());
          break;
        default:
          break;
        }
      }
    };
    Visit(Caller.getBody());
  }

  Function *resolve(const std::string &Name) {
    Function *F = P.findFunction(Name);
    if (F)
      return F;
    if (Catalog && Catalog->contains(Name)) {
      F = Catalog->materialize(Name, P, Diags);
      if (F) {
        InlineStats S = prepareFunctionForInlining(*F);
        Stats.StaticsDemoted += S.StaticsDemoted;
        Stats.StaticsExternalized += S.StaticsExternalized;
      }
      return F;
    }
    return nullptr;
  }

  std::vector<Stmt *> expandSite(Function &Caller, CallStmt &Call,
                                 Function &Callee) {
    std::vector<Stmt *> Out;
    unsigned Id = ++InlineCounter;

    // Map callee symbols to fresh caller symbols ("in_" prefix, as in the
    // paper's listings).  Globals map to themselves.
    std::map<Symbol *, Symbol *> SymMap;
    auto mapSym = [&](Symbol *S) -> Symbol * {
      if (S->getStorage() == StorageKind::Global)
        return S;
      auto It = SymMap.find(S);
      if (It != SymMap.end())
        return It->second;
      std::string Name = "in_" + S->getName();
      if (Caller.findSymbol(Name))
        Name += "_" + std::to_string(Id);
      Symbol *New = Caller.createSymbol(Name, S->getType(),
                                        StorageKind::Local,
                                        S->isVolatile());
      SymMap[S] = New;
      return New;
    };
    std::string EndLabel = Caller.createLabelName("lb");
    auto mapLabel = [&](const std::string &L) {
      return "in" + std::to_string(Id) + "_" + L;
    };

    // Parameter assignments, evaluated left to right at the call site.
    std::vector<std::pair<Symbol *, Expr *>> ParamInits;
    for (size_t K = 0; K < Callee.getParams().size(); ++K) {
      Symbol *Formal = mapSym(Callee.getParams()[K]);
      Expr *Arg = K < Call.getArgs().size()
                      ? Caller.cloneExpr(Call.getArgs()[K])
                      : static_cast<Expr *>(Caller.makeIntConst(
                            P.getTypes().getIntType(), 0));
      ParamInits.push_back({Formal, Arg});
      Out.push_back(
          Caller.create<AssignStmt>(Call.getLoc(),
                                    Caller.makeVarRef(Formal), Arg));
    }

    // Clone the body.
    Block Body;
    for (const Stmt *S : Callee.getBody().Stmts)
      Body.Stmts.push_back(Caller.cloneStmtRemap(S, mapSym, mapLabel));
    rewriteReturns(Caller, Body, Call.getResult(), EndLabel);

    // Array-row promotion: forward-substitute pure address arguments whose
    // operands the body does not modify and whose formal is never
    // reassigned.
    promoteAddressArguments(Caller, Out, Body, ParamInits);

    for (Stmt *S : Body.Stmts)
      Out.push_back(S);
    Out.push_back(Caller.create<LabelStmt>(Call.getLoc(), EndLabel));
    return Out;
  }

  /// True if \p E performs a memory *load* anywhere: a Deref or Index in
  /// value position.  An Index under an AddrOf (`&m[i][0]`) only computes
  /// an address.
  static bool hasLoads(Expr *E) {
    switch (E->getKind()) {
    case Expr::DerefKind:
    case Expr::IndexKind:
      return true;
    case Expr::AddrOfKind: {
      Expr *LV = static_cast<AddrOfExpr *>(E)->getLValue();
      if (LV->getKind() == Expr::IndexKind) {
        for (Expr *Sub : static_cast<IndexExpr *>(LV)->getSubscripts())
          if (hasLoads(Sub))
            return true;
        return false;
      }
      if (LV->getKind() == Expr::DerefKind)
        return hasLoads(static_cast<DerefExpr *>(LV)->getAddr());
      return false;
    }
    case Expr::BinaryKind: {
      auto *B = static_cast<BinaryExpr *>(E);
      return hasLoads(B->getLHS()) || hasLoads(B->getRHS());
    }
    case Expr::UnaryKind:
      return hasLoads(static_cast<UnaryExpr *>(E)->getOperand());
    case Expr::CastKind:
      return hasLoads(static_cast<CastExpr *>(E)->getOperand());
    default:
      return false;
    }
  }

  /// True if \p E is pure and load-free (safe to re-evaluate anywhere the
  /// operands are unchanged).
  static bool isSubstitutableArg(Expr *E) {
    return !hasLoads(E) && !exprReadsVolatile(E) && !exprHasTriplet(E);
  }

  void promoteAddressArguments(
      Function &Caller, std::vector<Stmt *> &ParamAssigns, Block &Body,
      const std::vector<std::pair<Symbol *, Expr *>> &ParamInits) {
    // Symbols defined anywhere in the inlined body.
    std::set<Symbol *> DefinedInBody;
    bool HasCallsOrStores = false;
    forEachStmt(Body, [&](Stmt *S) {
      for (Symbol *Sym : analysis::strongDefs(S))
        DefinedInBody.insert(Sym);
      if (S->getKind() == Stmt::CallKind)
        HasCallsOrStores = true;
      if (S->getKind() == Stmt::AssignKind &&
          static_cast<AssignStmt *>(S)->getLHS()->getKind() !=
              Expr::VarRefKind)
        HasCallsOrStores = true;
    });
    std::set<Symbol *> AddrTaken =
        analysis::computeAddressTakenScalars(Caller);

    for (const auto &[Formal, Arg] : ParamInits) {
      if (!Formal->getType()->isPointer() || !isSubstitutableArg(Arg))
        continue;
      if (DefinedInBody.count(Formal))
        continue; // e.g. daxpy's bumped pointers
      bool OperandsStable = true;
      std::vector<VarRefExpr *> Refs;
      collectVarRefs(Arg, Refs);
      for (VarRefExpr *R : Refs) {
        Symbol *Sym = R->getSymbol();
        if (DefinedInBody.count(Sym) || Sym->isVolatile())
          OperandsStable = false;
        if ((Sym->isGlobal() || AddrTaken.count(Sym)) && HasCallsOrStores &&
            Sym->getType()->isScalar())
          OperandsStable = false;
      }
      if (!OperandsStable)
        continue;
      // Substitute value uses only (&formal must survive).
      unsigned Count = 0;
      forEachStmt(Body, [&](Stmt *S) {
        forEachExprSlot(S, [&](Expr *&Slot) {
          forEachValueUseSlot(Slot, [&](Expr *&Sub) {
            if (static_cast<VarRefExpr *>(Sub)->getSymbol() == Formal) {
              Sub = Caller.cloneExpr(Arg);
              ++Count;
            }
          });
        });
      });
      if (Count)
        ++Stats.RowArgsPromoted;
    }
    (void)ParamAssigns; // the now-dead formal init is left for DCE
  }

  Program &P;
  DiagnosticEngine &Diags;
  const InlineOptions &Opts;
  const ProcedureCatalog *Catalog;
  InlineStats Stats;
  unsigned InlineCounter = 0;
};

} // namespace

InlineStats inliner::inlineCalls(Program &P, DiagnosticEngine &Diags,
                                 const InlineOptions &Opts,
                                 const ProcedureCatalog *Catalog) {
  return Expander(P, Diags, Opts, Catalog).run();
}
