#include "driver/Compiler.h"

#include "codegen/Codegen.h"
#include "dependence/DependenceGraph.h"
#include "frontend/Lower.h"
#include "il/ILPrinter.h"
#include "lexer/Lexer.h"
#include "parser/Parser.h"

using namespace tcc;
using namespace tcc::driver;

std::unique_ptr<CompileResult>
driver::compileSource(const std::string &Source, const CompilerOptions &Opts) {
  auto R = std::make_unique<CompileResult>();
  R->IL = std::make_unique<il::Program>();
  il::Program &P = *R->IL;

  // Front end.
  Lexer Lex(Source, R->Diags);
  ast::AstContext AstCtx;
  Parser Parse(Lex.lexAll(), AstCtx, P.getTypes(), R->Diags);
  ast::TranslationUnit TU = Parse.parseTranslationUnit();
  if (R->Diags.hasErrors())
    return R;
  lowerTranslationUnit(TU, P, R->Diags);
  if (R->Diags.hasErrors())
    return R;

  auto Snapshot = [&](const char *Key) {
    if (Opts.CaptureStages)
      R->Stages[Key] = il::printProgram(P);
  };
  Snapshot("lower");

  // Inlining before scalar analysis: the information at call sites drives
  // everything downstream (paper Sections 7–9).
  if (Opts.EnableInline) {
    R->Stats.Inline =
        inliner::inlineCalls(P, R->Diags, Opts.Inline, Opts.Catalog);
    Snapshot("inline");
  }

  for (const auto &F : P.getFunctions()) {
    // While→DO conversion immediately after use-def chains are built
    // (Section 5.2), with incremental chain patching.
    if (Opts.EnableWhileToDo) {
      analysis::UseDefChains UD(*F);
      auto S = scalar::convertWhileLoops(*F, &UD);
      R->Stats.WhileToDo.Attempted += S.Attempted;
      R->Stats.WhileToDo.Converted += S.Converted;
    }
  }
  Snapshot("whiletodo");

  for (const auto &F : P.getFunctions()) {
    if (Opts.EnableIVSub) {
      auto S = scalar::substituteInductionVariables(*F, Opts.IVSub);
      R->Stats.IVSub.LoopsProcessed += S.LoopsProcessed;
      R->Stats.IVSub.FamilyMembers += S.FamilyMembers;
      R->Stats.IVSub.UsesRewritten += S.UsesRewritten;
      R->Stats.IVSub.Substitutions += S.Substitutions;
      R->Stats.IVSub.Blocked += S.Blocked;
      R->Stats.IVSub.Backtracks += S.Backtracks;
      R->Stats.IVSub.Passes += S.Passes;
    }
  }
  Snapshot("ivsub");

  for (const auto &F : P.getFunctions()) {
    if (Opts.EnableConstProp) {
      auto S = scalar::propagateConstants(*F, Opts.ConstProp);
      R->Stats.ConstProp.UsesReplaced += S.UsesReplaced;
      R->Stats.ConstProp.BranchesFolded += S.BranchesFolded;
      R->Stats.ConstProp.LoopsDeleted += S.LoopsDeleted;
      R->Stats.ConstProp.StmtsRemoved += S.StmtsRemoved;
      R->Stats.ConstProp.Requeues += S.Requeues;
      R->Stats.ConstProp.PostpassRemoved += S.PostpassRemoved;
    }
  }
  Snapshot("constprop");

  for (const auto &F : P.getFunctions()) {
    if (Opts.EnableDCE) {
      auto S = scalar::eliminateDeadCode(*F);
      R->Stats.DCE.AssignsRemoved += S.AssignsRemoved;
      R->Stats.DCE.EmptyControlRemoved += S.EmptyControlRemoved;
      R->Stats.DCE.LabelsRemoved += S.LabelsRemoved;
    }
  }
  Snapshot("dce");

  for (const auto &F : P.getFunctions()) {
    if (Opts.EnableVectorize) {
      auto S = vec::vectorizeLoops(*F, Opts.Vectorize);
      R->Stats.Vectorize.LoopsConsidered += S.LoopsConsidered;
      R->Stats.Vectorize.LoopsVectorized += S.LoopsVectorized;
      R->Stats.Vectorize.LoopsDistributed += S.LoopsDistributed;
      R->Stats.Vectorize.VectorStmts += S.VectorStmts;
      R->Stats.Vectorize.SerialLoops += S.SerialLoops;
      R->Stats.Vectorize.ParallelLoops += S.ParallelLoops;
      R->Stats.Vectorize.StripLoops += S.StripLoops;
      R->Stats.Vectorize.UnstripedVectorStmts += S.UnstripedVectorStmts;
    }
  }
  Snapshot("vectorize");

  // Scalar replacement first: it removes the loop-carried loads, after
  // which the remaining loads are conflict-free.
  for (const auto &F : P.getFunctions()) {
    if (Opts.EnableScalarReplacement) {
      auto S = depopt::applyScalarReplacement(*F);
      R->Stats.ScalarReplace.LoopsApplied += S.LoopsApplied;
      R->Stats.ScalarReplace.LoadsEliminated += S.LoadsEliminated;
    }
  }

  // Dependence-driven scheduling marks (paper Section 6): record which
  // statements' loads conflict with no store in flight, before strength
  // reduction rewrites the address forms the analysis reads.
  if (Opts.EnableDepScheduling)
    for (const auto &F : P.getFunctions())
      dep::markConflictFreeLoads(*F);

  for (const auto &F : P.getFunctions()) {
    if (Opts.EnableStrengthReduction) {
      auto S = depopt::applyStrengthReduction(*F);
      R->Stats.StrengthReduce.LoopsApplied += S.LoopsApplied;
      R->Stats.StrengthReduce.AddressTemps += S.AddressTemps;
      R->Stats.StrengthReduce.RefsRewritten += S.RefsRewritten;
      R->Stats.StrengthReduce.InvariantsHoisted += S.InvariantsHoisted;
      R->Stats.StrengthReduce.SharedTemps += S.SharedTemps;
    }
  }
  Snapshot("depopt");

  // Code generation.
  codegen::CodegenOptions CGOpts;
  CGOpts.EnableDepScheduling = Opts.EnableDepScheduling;
  R->Machine = codegen::generateProgram(P, R->Diags, CGOpts);
  return R;
}

RunOutcome driver::compileAndRun(const std::string &Source,
                                 const CompilerOptions &Opts,
                                 const titan::TitanConfig &Config) {
  RunOutcome Out;
  Out.Compile = compileSource(Source, Opts);
  if (!Out.Compile->ok()) {
    Out.Run.Error = "compilation failed:\n" + Out.Compile->Diags.str();
    return Out;
  }
  Out.Machine =
      std::make_unique<titan::TitanMachine>(Out.Compile->Machine, Config);
  Out.Run = Out.Machine->run("main");
  return Out;
}
