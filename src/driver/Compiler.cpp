#include "driver/Compiler.h"

#include "codegen/Codegen.h"
#include "frontend/Lower.h"
#include "il/ILPrinter.h"
#include "lexer/Lexer.h"
#include "parser/Parser.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace tcc;
using namespace tcc::driver;

/// Part of each function's compile-cache content hash: a manifest built
/// under one configuration never serves another.
std::string driver::configFingerprint(const CompilerOptions &Opts) {
  std::string F;
  auto Add = [&F](const char *Key, long long V) {
    F += Key;
    F += '=';
    F += std::to_string(V);
    F += ';';
  };
  Add("ivsub.backtrack", Opts.IVSub.EnableBacktracking);
  Add("ivsub.maxpasses", Opts.IVSub.MaxPassesPerLoop);
  Add("cp.unreachable", Opts.ConstProp.EnableUnreachableHeuristic);
  Add("cp.postpass", Opts.ConstProp.EnableAlwaysTakenPostpass);
  Add("cp.addrconst", Opts.ConstProp.PropagateAddressConstants);
  Add("vec.parallel", Opts.Vectorize.EnableParallel);
  Add("vec.strip", Opts.Vectorize.StripLength);
  Add("vec.fortranptr", Opts.Vectorize.FortranPointerSemantics);
  Add("spread.procs", Opts.Spread.Processors);
  Add("spread.barrier", Opts.Spread.BarrierCycles);
  Add("dep.analysis", static_cast<long long>(Opts.DepAnalysis));
  Add("dep.scalarrepl", Opts.EnableScalarReplacement);
  Add("dep.sched", Opts.EnableDepScheduling);
  Add("dep.strength", Opts.EnableStrengthReduction);
  return F;
}

pipeline::PipelineOptions
driver::makePipelineOptions(const CompilerOptions &Opts) {
  pipeline::PipelineOptions PipeOpts;
  PipeOpts.Inline = Opts.Inline;
  PipeOpts.Catalog = Opts.Catalog;
  PipeOpts.IVSub = Opts.IVSub;
  PipeOpts.ConstProp = Opts.ConstProp;
  PipeOpts.Vectorize = Opts.Vectorize;
  PipeOpts.Spread = Opts.Spread;
  PipeOpts.DepAnalysis = Opts.DepAnalysis;
  PipeOpts.EnableScalarReplacement = Opts.EnableScalarReplacement;
  PipeOpts.EnableDepScheduling = Opts.EnableDepScheduling;
  PipeOpts.EnableStrengthReduction = Opts.EnableStrengthReduction;
  return PipeOpts;
}

namespace {

bool envVerifyEach() {
  const char *V = std::getenv("TCC_VERIFY_EACH");
  return V && *V && std::string(V) != "0";
}

/// -fault-inject= plus whatever TCC_FAULT_INJECT appends, so CI can sweep
/// fault injection over an existing command line without editing it.
std::string faultInjectSpec(const CompilerOptions &Opts) {
  std::string Spec = Opts.FaultInject;
  if (const char *Env = std::getenv("TCC_FAULT_INJECT"); Env && *Env) {
    if (!Spec.empty())
      Spec += ',';
    Spec += Env;
  }
  return Spec;
}

} // namespace

std::string CompilerOptions::pipelineSpec() const {
  std::string Spec;
  auto Add = [&Spec](const char *Name) {
    if (!Spec.empty())
      Spec += ',';
    Spec += Name;
  };
  // The paper's phase order (Sections 5-9): inlining first so call-site
  // information drives everything downstream.
  if (EnableInline)
    Add("inline");
  if (EnableWhileToDo)
    Add("whiletodo");
  if (EnableIVSub)
    Add("ivsub");
  if (EnableConstProp)
    Add("constprop");
  if (EnableDCE)
    Add("dce");
  if (Spread.Processors > 1)
    Add("spread");
  if (EnableVectorize)
    Add("vectorize");
  if (EnableScalarReplacement || EnableDepScheduling ||
      EnableStrengthReduction)
    Add("depopt");
  return Spec;
}

std::unique_ptr<CompileResult>
driver::compileSource(const std::string &Source, const CompilerOptions &Opts) {
  auto R = std::make_unique<CompileResult>();
  R->IL = std::make_unique<il::Program>();
  il::Program &P = *R->IL;

  // Front end.
  Lexer Lex(Source, R->Diags);
  ast::AstContext AstCtx;
  Parser Parse(Lex.lexAll(), AstCtx, P.getTypes(), R->Diags);
  ast::TranslationUnit TU = Parse.parseTranslationUnit();
  if (R->Diags.hasErrors())
    return R;
  lowerTranslationUnit(TU, P, R->Diags);
  if (R->Diags.hasErrors())
    return R;

  auto Snapshot = [&](const std::string &Key) {
    if (!Opts.CaptureStages)
      return;
    R->Stages[Key] = il::printProgram(P);
    R->StageOrder.push_back(Key);
  };
  Snapshot("lower");

  // Optimization pipeline: the Enable* toggles build the default spec,
  // -passes= overrides it.
  pipeline::PipelineOptions PipeOpts = makePipelineOptions(Opts);

  // The injector outlives PM.run() below; specs are validated up front so
  // a typo in -fault-inject= is a located error, not a silent no-op.
  FaultInjector Injector;
  if (!Injector.addSpecs(faultInjectSpec(Opts), R->Diags))
    return R;

  pipeline::PassManagerConfig Config;
  Config.Sandbox.Enabled = Opts.SandboxPasses;
  Config.Sandbox.PassBudgetMs = Opts.PassBudgetMs;
  Config.Sandbox.StmtGrowthFactor = Opts.StmtGrowthFactor;
  Config.Sandbox.StmtGrowthSlack = Opts.StmtGrowthSlack;
  Config.Sandbox.ReproDir = Opts.ReproDir;
  Config.Sandbox.Faults = Injector.empty() ? nullptr : &Injector;
  Config.VerifyEach = Opts.VerifyEach || envVerifyEach();
  // Stage capture needs the per-pass intermediate program states, which
  // only exist under pass-major execution.
  Config.Mode = (Opts.WholeProgram || Opts.CaptureStages)
                    ? pipeline::PipelineMode::WholeProgram
                    : pipeline::PipelineMode::FunctionAtATime;
  Config.CacheFile = Opts.CacheFile;
  Config.CacheConfig = configFingerprint(Opts);
  Config.ResultCache = Opts.ResultCache;
  Config.SharedAnalyses = Opts.SharedAnalyses;
  Config.AfterPass = [&Snapshot](const pipeline::Pass &Pass, il::Program &) {
    Snapshot(Pass.name());
  };

  pipeline::PassManager PM(std::move(PipeOpts), std::move(Config));
  const std::string Spec =
      Opts.Passes.empty() ? Opts.pipelineSpec() : Opts.Passes;
  if (!PM.addPipeline(Spec, R->Diags))
    return R;

  R->Telemetry = PM.run(P, R->Diags, R->Remarks, R->Stats);
  if (R->Diags.hasErrors())
    return R;

  // Code generation.
  codegen::CodegenOptions CGOpts;
  CGOpts.EnableDepScheduling = Opts.EnableDepScheduling;
  R->Machine = codegen::generateProgram(P, R->Diags, CGOpts);
  return R;
}

const inliner::ProcedureCatalog *
CompilerSession::catalog(const std::string &Path, DiagnosticEngine &Diags) {
  std::lock_guard<std::mutex> Lock(CatalogMutex);
  auto It = Catalogs.find(Path);
  if (It != Catalogs.end())
    return It->second.get();

  // Same load semantics (and message text) as catalog::loadCatalogFile,
  // inlined here so the driver does not depend on the catalog library.
  std::ifstream In(Path);
  if (!In) {
    Diags.error(SourceLoc(), "cannot open catalog '" + Path + "'");
    return nullptr;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  auto Parsed = std::make_unique<inliner::ProcedureCatalog>();
  if (!inliner::ProcedureCatalog::parse(Buffer.str(), *Parsed, Diags))
    return nullptr; // Not cached: a catalog rewritten later is retried.
  return Catalogs.emplace(Path, std::move(Parsed)).first->second.get();
}

size_t CompilerSession::catalogCount() const {
  std::lock_guard<std::mutex> Lock(CatalogMutex);
  return Catalogs.size();
}

std::unique_ptr<CompileResult>
CompilerSession::compile(const std::string &Source, CompilerOptions Opts) {
  Opts.ResultCache = ResultCache;
  Opts.SharedAnalyses = &Shared;
  return compileSource(Source, Opts);
}

RunOutcome driver::compileAndRun(const std::string &Source,
                                 const CompilerOptions &Opts,
                                 const titan::TitanConfig &Config) {
  RunOutcome Out;
  Out.Compile = compileSource(Source, Opts);
  if (!Out.Compile->ok()) {
    Out.Run.Error = "compilation failed:\n" + Out.Compile->Diags.str();
    return Out;
  }
  Out.Machine =
      std::make_unique<titan::TitanMachine>(Out.Compile->Machine, Config);
  Out.Run = Out.Machine->run("main");
  return Out;
}
