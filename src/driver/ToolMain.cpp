#include "driver/ToolMain.h"

#include "il/ILPrinter.h"
#include "pipeline/PassRegistry.h"
#include "titan/TitanISA.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <vector>

using namespace tcc;
using namespace tcc::driver;

namespace {

/// fprintf for an ostream, preserving the exact printf formatting the
/// original tcc main used — the byte-identity bar between `tcc` writing
/// to stdio and the daemon rendering the same request into a string.
void writef(std::ostream &OS, const char *Fmt, ...) {
  va_list Ap;
  va_start(Ap, Fmt);
  va_list Sized;
  va_copy(Sized, Ap);
  int N = std::vsnprintf(nullptr, 0, Fmt, Sized);
  va_end(Sized);
  if (N > 0) {
    std::vector<char> Buf(static_cast<size_t>(N) + 1);
    std::vsnprintf(Buf.data(), Buf.size(), Fmt, Ap);
    OS.write(Buf.data(), N);
  }
  va_end(Ap);
}

} // namespace

std::string driver::toolUsage(const std::string &Tool) {
  std::string U;
  U += "usage: " + Tool +
       " [-O0|-O1|-O2|-O3] [-P 1..4] [-fno-inline] [-ffortran-ptrs]\n";
  const std::string Pad(std::strlen("usage: ") + Tool.size() + 1, ' ');
  U += Pad + "[-strip n] [-catalog=file] [-passes=spec] [-cache=file]\n";
  U += Pad + "[-depanalysis=reachdef|memssa]\n";
  U += Pad + "[-whole-program] [-verify-each] [-print-il=phase]\n";
  U += Pad + "[-print-after-all] [-remarks=file]\n";
  U += Pad + "[-no-sandbox] [-pass-budget=ms] [-repro-dir=dir]\n";
  U += Pad + "[-fault-inject=spec] [-replay=bundle]\n";
  U += Pad + "[-S] [-run|-no-run] [-stats] file.c\n";
  U += "registered passes: " +
       pipeline::PassRegistry::instance().namesJoined() + "\n";
  return U;
}

bool driver::parseToolArgs(const std::vector<std::string> &Args,
                           ToolInvocation &Inv, std::string &Error) {
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    if (Arg == "-O0") {
      Inv.Opts = CompilerOptions::noOpt();
      Inv.Machine.EnableOverlap = false;
    } else if (Arg == "-O1") {
      Inv.Opts = CompilerOptions::scalarOnly();
      Inv.Machine.EnableOverlap = false;
    } else if (Arg == "-O2") {
      Inv.Opts = CompilerOptions::full();
    } else if (Arg == "-O3") {
      if (Inv.Machine.NumProcessors < 2)
        Inv.Machine.NumProcessors = 2;
      Inv.Opts = CompilerOptions::parallel(Inv.Machine.NumProcessors);
    } else if (Arg == "-P" && I + 1 < Args.size()) {
      const std::string &Val = Args[++I];
      char *End = nullptr;
      long N = std::strtol(Val.c_str(), &End, 10);
      if (Val.empty() || End == Val.c_str() || *End != '\0') {
        Error = "invalid -P value '" + Val + "' (expected an integer)";
        return false;
      }
      if (N <= 0) {
        Error = "invalid -P value '" + Val +
                "' (processor count must be at least 1)";
        return false;
      }
      // The Titan shipped with up to four processors; more than that is
      // clamped rather than rejected so scripts can sweep -P freely.
      if (N > titan::TitanConfig::MaxProcessors)
        N = titan::TitanConfig::MaxProcessors;
      Inv.Machine.NumProcessors = static_cast<int>(N);
      Inv.Opts.Vectorize.EnableParallel = N > 1;
      Inv.Opts.Spread.Processors = static_cast<int>(N);
    } else if (Arg == "-fno-inline") {
      Inv.Opts.EnableInline = false;
    } else if (Arg == "-ffortran-ptrs") {
      Inv.Opts.Vectorize.FortranPointerSemantics = true;
    } else if (Arg == "-strip" && I + 1 < Args.size()) {
      Inv.Opts.Vectorize.StripLength = std::atoll(Args[++I].c_str());
    } else if (Arg.rfind("-catalog=", 0) == 0) {
      Inv.CatalogPath = Arg.substr(std::strlen("-catalog="));
    } else if (Arg.rfind("-depanalysis=", 0) == 0) {
      std::string Name = Arg.substr(std::strlen("-depanalysis="));
      if (!dep::parseDepAnalysisKind(Name, Inv.Opts.DepAnalysis)) {
        Error = "unknown -depanalysis value '" + Name +
                "' (expected reachdef or memssa)";
        return false;
      }
    } else if (Arg.rfind("-passes=", 0) == 0) {
      Inv.Opts.Passes = Arg.substr(std::strlen("-passes="));
    } else if (Arg.rfind("-cache=", 0) == 0) {
      Inv.Opts.CacheFile = Arg.substr(std::strlen("-cache="));
    } else if (Arg == "-whole-program") {
      Inv.Opts.WholeProgram = true;
    } else if (Arg == "-verify-each") {
      Inv.Opts.VerifyEach = true;
    } else if (Arg == "-no-sandbox") {
      Inv.Opts.SandboxPasses = false;
    } else if (Arg.rfind("-pass-budget=", 0) == 0) {
      Inv.Opts.PassBudgetMs =
          std::atof(Arg.c_str() + std::strlen("-pass-budget="));
    } else if (Arg.rfind("-repro-dir=", 0) == 0) {
      Inv.Opts.ReproDir = Arg.substr(std::strlen("-repro-dir="));
    } else if (Arg.rfind("-fault-inject=", 0) == 0) {
      Inv.Opts.FaultInject = Arg.substr(std::strlen("-fault-inject="));
    } else if (Arg.rfind("-replay=", 0) == 0) {
      Inv.ReplayPath = Arg.substr(std::strlen("-replay="));
    } else if (Arg.rfind("-print-il=", 0) == 0) {
      Inv.PrintPhase = Arg.substr(std::strlen("-print-il="));
      Inv.Opts.CaptureStages = true;
    } else if (Arg == "-print-after-all") {
      Inv.PrintAfterAll = true;
      Inv.Opts.CaptureStages = true;
    } else if (Arg.rfind("-remarks=", 0) == 0) {
      Inv.RemarksPath = Arg.substr(std::strlen("-remarks="));
    } else if (Arg == "-S") {
      Inv.PrintAsm = true;
    } else if (Arg == "-run") {
      Inv.Run = true;
    } else if (Arg == "-no-run") {
      Inv.Run = false;
    } else if (Arg == "-stats") {
      Inv.PrintStats = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      Error = "unknown option '" + Arg + "'";
      return false;
    } else {
      Inv.InputPath = Arg;
    }
  }
  return true;
}

int driver::runToolInvocation(const ToolInvocation &Inv,
                              const std::string &Source,
                              CompilerSession &Session, std::ostream &Out,
                              std::ostream &Err) {
  CompilerOptions Opts = Inv.Opts;

  // The session owns the parsed catalog; it stays hot for the next
  // request that names the same path.
  if (!Inv.CatalogPath.empty()) {
    DiagnosticEngine CatalogDiags;
    const inliner::ProcedureCatalog *Catalog =
        Session.catalog(Inv.CatalogPath, CatalogDiags);
    if (!Catalog) {
      for (const auto &D : CatalogDiags.diagnostics())
        writef(Err, "%s: %s\n", Inv.CatalogPath.c_str(), D.str().c_str());
      return 2;
    }
    Opts.Catalog = Catalog;
  }

  auto Result = Session.compile(Source, Opts);
  for (const auto &D : Result->Diags.diagnostics())
    writef(Err, "%s: %s\n", Inv.InputPath.c_str(), D.str().c_str());

  // Contained faults degrade optimization, never correctness, so they are
  // summarized on stderr but do not change the exit code.
  if (!Result->Telemetry.Faults.empty())
    writef(Err,
           "tcc: %zu pass fault%s contained; output is correct but "
           "the affected function%s skipped the quarantined pass%s\n",
           Result->Telemetry.Faults.size(),
           Result->Telemetry.Faults.size() == 1 ? "" : "s",
           Result->Telemetry.Faults.size() == 1 ? "" : "s",
           Result->Telemetry.Faults.size() == 1 ? "" : "es");

  // Telemetry is written even for failed compiles: the record of what ran
  // before the failure is exactly what a verifier diagnostic needs.
  if (!Inv.RemarksPath.empty()) {
    if (Inv.RemarksPath == "-") {
      Result->Telemetry.writeJSON(Out);
    } else {
      std::ofstream OS(Inv.RemarksPath);
      if (!OS) {
        writef(Err, "tcc: cannot write '%s'\n", Inv.RemarksPath.c_str());
        return 2;
      }
      Result->Telemetry.writeJSON(OS);
    }
  }

  if (!Result->ok())
    return 1;

  if (Inv.PrintAfterAll) {
    for (const std::string &Key : Result->StageOrder)
      writef(Out, "*** IL after %s ***\n%s\n", Key.c_str(),
             Result->Stages[Key].c_str());
  } else if (!Inv.PrintPhase.empty()) {
    auto It = Result->Stages.find(Inv.PrintPhase);
    if (It == Result->Stages.end()) {
      writef(Err,
             "tcc: no IL snapshot for phase '%s' (captured: lower + "
             "executed passes)\n",
             Inv.PrintPhase.c_str());
      return 2;
    }
    writef(Out, "%s", It->second.c_str());
  }

  if (Inv.PrintAsm)
    for (const auto &F : Result->Machine.Functions)
      writef(Out, "%s\n", titan::disassemble(F).c_str());

  if (Inv.PrintStats) {
    const PhaseStats &S = Result->Stats;
    writef(Out,
           "inline:      %u calls expanded, %u left, %u recursion "
           "guards, %u statics externalized, %u demoted\n",
           S.Inline.CallsInlined, S.Inline.CallsLeft,
           S.Inline.RecursionSkipped, S.Inline.StaticsExternalized,
           S.Inline.StaticsDemoted);
    writef(Out, "while->do:   %u of %u loops converted\n",
           S.WhileToDo.Converted, S.WhileToDo.Attempted);
    writef(Out,
           "iv-sub:      %u IVs, %u uses rewritten, %u forward "
           "substitutions, %u blocked, %u backtracks, %u passes\n",
           S.IVSub.FamilyMembers, S.IVSub.UsesRewritten,
           S.IVSub.Substitutions, S.IVSub.Blocked, S.IVSub.Backtracks,
           S.IVSub.Passes);
    writef(Out,
           "const-prop:  %u uses, %u branches folded, %u loops "
           "deleted, %u stmts removed, %u requeues\n",
           S.ConstProp.UsesReplaced, S.ConstProp.BranchesFolded,
           S.ConstProp.LoopsDeleted, S.ConstProp.StmtsRemoved,
           S.ConstProp.Requeues);
    writef(Out, "dce:         %u assigns, %u empty controls, %u labels\n",
           S.DCE.AssignsRemoved, S.DCE.EmptyControlRemoved,
           S.DCE.LabelsRemoved);
    if (Inv.Opts.Spread.Processors > 1)
      writef(Out,
             "spread:      %llu/%llu loops (%llu reductions); rejected "
             "%llu dependence, %llu calls, %llu scalars, %llu structure, "
             "%llu unprofitable\n",
             static_cast<unsigned long long>(S.Spread.LoopsSpread),
             static_cast<unsigned long long>(S.Spread.LoopsConsidered),
             static_cast<unsigned long long>(S.Spread.Reductions),
             static_cast<unsigned long long>(S.Spread.RejectedDependence),
             static_cast<unsigned long long>(S.Spread.RejectedCalls),
             static_cast<unsigned long long>(S.Spread.RejectedScalars),
             static_cast<unsigned long long>(S.Spread.RejectedStructure),
             static_cast<unsigned long long>(S.Spread.RejectedUnprofitable));
    writef(Out,
           "vectorize:   %u/%u loops, %u vector stmts, %u strip "
           "loops (%u parallel), %u serial\n",
           S.Vectorize.LoopsVectorized, S.Vectorize.LoopsConsidered,
           S.Vectorize.VectorStmts, S.Vectorize.StripLoops,
           S.Vectorize.ParallelLoops, S.Vectorize.SerialLoops);
    writef(Out,
           "dep-opt:     %u scalar-replaced loops (%u loads), %u "
           "strength-reduced loops (%u temps, %u CSE)\n",
           S.ScalarReplace.LoopsApplied, S.ScalarReplace.LoadsEliminated,
           S.StrengthReduce.LoopsApplied, S.StrengthReduce.AddressTemps,
           S.StrengthReduce.SharedTemps);
    writef(Out, "pipeline:    %.3f ms total\n",
           Result->Telemetry.TotalMillis);
    if (!Result->Telemetry.Functions.empty())
      writef(Out, "functions:   %zu scheduled, %llu served from cache\n",
             Result->Telemetry.Functions.size(),
             static_cast<unsigned long long>(
                 Result->Telemetry.cacheHits()));
    writef(Out, "faults:      %zu contained\n",
           Result->Telemetry.Faults.size());
    for (const auto &F : Result->Telemetry.Faults)
      writef(Out, "  %s on '%s': %s (%s)%s%s\n", F.Pass.c_str(),
             F.Function.c_str(), F.Kind.c_str(), F.Description.c_str(),
             F.ReproFile.empty() ? "" : "  repro: ", F.ReproFile.c_str());
    for (const auto &Rec : Result->Telemetry.Passes)
      writef(Out, "  %-10s %8.3f ms  stmts %llu -> %llu%s\n",
             Rec.Pass.c_str(), Rec.Millis,
             static_cast<unsigned long long>(Rec.Before.Stmts),
             static_cast<unsigned long long>(Rec.After.Stmts),
             Rec.Verified ? "  [verified]" : "");
  }

  if (!Inv.Run)
    return 0;
  titan::TitanMachine M(Result->Machine, Inv.Machine);
  titan::RunResult R = M.run("main");
  if (!R.Ok) {
    writef(Err, "tcc: run failed: %s\n", R.Error.c_str());
    return 1;
  }
  writef(Out,
         "[titan] %llu instructions, %llu cycles, %.3f ms simulated, "
         "%.2f MFLOPS",
         static_cast<unsigned long long>(R.Instructions),
         static_cast<unsigned long long>(R.Cycles),
         R.seconds(Inv.Machine) * 1e3, R.mflops(Inv.Machine));
  if (R.RegionCycles)
    writef(Out, " (kernel region: %llu cycles, %.2f MFLOPS)",
           static_cast<unsigned long long>(R.RegionCycles),
           R.regionMflops(Inv.Machine));
  writef(Out, "\n");
  return 0;
}
