//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler driver: front end + the paper's phase pipeline, executed
/// through the pipeline subsystem (src/pipeline).
///
///   parse → lower (expression pairs, for→while) → [pipeline: inline →
///   while→DO → induction-variable substitution → constant propagation ⨝
///   unreachable-code elimination → dead-code elimination → vectorization
///   + strip-mining + parallelization → dependence-driven optimizations]
///   → code generation → Titan simulation.
///
/// The pipeline is a string spec of registered pass names executed by the
/// PassManager; the Enable* toggles construct the default spec, and
/// `Passes` overrides it entirely (the -passes= flag).  Every compile
/// records optimization telemetry (per-pass timings, IL deltas, counters,
/// source-located remarks) in CompileResult::Telemetry, and the IL can be
/// snapshotted after every pass (the Section 9 walkthrough) — snapshot
/// keys are the registered pass names.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_DRIVER_COMPILER_H
#define TCC_DRIVER_COMPILER_H

#include "dependence/DependenceAnalysis.h"
#include "il/IL.h"
#include "inliner/Inliner.h"
#include "pipeline/PassManager.h"
#include "remarks/Remarks.h"
#include "scalar/ConstProp.h"
#include "scalar/InductionVarSub.h"
#include "scalar/WhileToDo.h"
#include "scalar/DeadCode.h"
#include "depopt/DepOpt.h"
#include "support/Diagnostics.h"
#include "parallel/Spread.h"
#include "titan/TitanISA.h"
#include "titan/TitanMachine.h"
#include "vector/Vectorize.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tcc {
namespace driver {

struct CompilerOptions {
  // Inlining (paper Section 7).
  bool EnableInline = true;
  inliner::InlineOptions Inline;
  const inliner::ProcedureCatalog *Catalog = nullptr;

  // Scalar optimization (Sections 5 and 8).
  bool EnableWhileToDo = true;
  bool EnableIVSub = true;
  scalar::IVSubOptions IVSub;
  bool EnableConstProp = true;
  scalar::ConstPropOptions ConstProp;
  bool EnableDCE = true;

  // Vectorization and parallelization (Sections 5 and 9).
  bool EnableVectorize = true;
  vec::VectorizeOptions Vectorize;

  /// Outer-loop multiprocessor spreading (Section 9).  The pass joins
  /// the default pipeline (between dce and vectorize) whenever
  /// Spread.Processors > 1; its value fields are part of
  /// configFingerprint.
  par::SpreadOptions Spread;

  /// Which memory-dependence stack disambiguates different-base reference
  /// pairs (the -depanalysis= flag): the reachdef baseline or the
  /// Andersen points-to + MemorySSA stack (default).  Changes which
  /// loops vectorize, never what the program computes.
  dep::DepAnalysisKind DepAnalysis = dep::DepAnalysisKind::MemSSA;

  // Dependence-driven optimizations (Section 6).
  bool EnableScalarReplacement = true;
  bool EnableStrengthReduction = true;

  // Code generation.
  bool EnableDepScheduling = true;

  /// When non-empty, a pipeline spec (comma-separated registered pass
  /// names, e.g. "whiletodo,ivsub,vectorize") that *overrides* the
  /// Enable* toggles above — the -passes= flag.
  std::string Passes;

  /// Run the IL verifier after every pass; a violated invariant fails the
  /// compile with a diagnostic naming the offending pass.  Also forced on
  /// by the TCC_VERIFY_EACH environment variable (non-empty, not "0") so
  /// CI can sweep the whole test suite under verification.
  bool VerifyEach = false;

  /// Path of the .tcc-cache manifest for incremental recompilation (the
  /// -cache= flag).  Empty disables caching.  Functions whose content
  /// hash (serialized IL + option fingerprint + pipeline spec) matches
  /// the manifest skip the function-pass segment and reuse the stored
  /// optimized body — byte-identical to recompiling, since serialization
  /// round-trips are a fixed point.
  std::string CacheFile;

  /// Schedule the pipeline pass-major over the whole program instead of
  /// function-at-a-time.  Produces byte-identical IL (the differential
  /// invariant); forced on when CaptureStages is set, because the
  /// per-pass intermediate program states only exist in this order.
  bool WholeProgram = false;

  /// Capture printProgram() after each executed pass into
  /// CompileResult::Stages.  Keys come from the registered pass names
  /// (plus "lower" for the front-end output), so a newly added pass is
  /// snapshotted automatically.
  bool CaptureStages = false;

  // Fault containment (pipeline/PassSandbox.h).  On by default: a
  // function pass that throws, breaks the verifier (under VerifyEach),
  // or blows a budget is quarantined for that function — the function
  // rolls back to its pre-pass IL, a replayable reproducer bundle lands
  // in ReproDir, and compilation continues with that pass skipped.  The
  // -no-sandbox flag clears SandboxPasses and restores hard failure.
  bool SandboxPasses = true;
  double PassBudgetMs = 1000.0;   ///< Per-invocation wall-clock budget; 0 off.
  uint64_t StmtGrowthFactor = 8;  ///< Runaway-growth budget; 0 off.
  uint64_t StmtGrowthSlack = 512;
  std::string ReproDir = ".tcc-repro"; ///< Bundle directory; empty disables.

  /// Deterministic fault injection: comma-separated
  /// `pass:function:kind[:nth]` specs (kinds: throw, corrupt-il, oom,
  /// slow; `*` wildcards pass or function; nth is the 1-based matching
  /// invocation).  The TCC_FAULT_INJECT environment variable appends to
  /// this.  A malformed spec fails the compile with a located diagnostic.
  std::string FaultInject;

  // Compile-server wiring (normally set through CompilerSession, not by
  // hand): the daemon's hot function-result store with single-flight
  // dedupe, and the process-wide shared analysis pool.  Null for ordinary
  // one-shot compiles.  Neither participates in configFingerprint —
  // result-cache keys already fold the fingerprint in, so a hot entry can
  // never serve a compile configured differently.
  pipeline::FunctionResultCache *ResultCache = nullptr;
  pipeline::SharedAnalysisCache *SharedAnalyses = nullptr;

  /// The default pipeline spec constructed from the Enable* toggles.
  std::string pipelineSpec() const;

  /// Everything off: the straight-from-the-front-end baseline.
  static CompilerOptions noOpt() {
    CompilerOptions O;
    O.EnableInline = false;
    O.EnableWhileToDo = false;
    O.EnableIVSub = false;
    O.EnableConstProp = false;
    O.EnableDCE = false;
    O.EnableVectorize = false;
    O.EnableScalarReplacement = false;
    O.EnableStrengthReduction = false;
    O.EnableDepScheduling = false;
    return O;
  }

  /// Scalar optimization only (the paper's 0.5 MFLOPS backsolve build).
  static CompilerOptions scalarOnly() {
    CompilerOptions O;
    O.EnableVectorize = false;
    O.EnableScalarReplacement = false;
    O.EnableStrengthReduction = false;
    O.EnableDepScheduling = false;
    return O;
  }

  /// Full single-processor optimization.
  static CompilerOptions full() { return CompilerOptions(); }

  /// Full optimization plus multiprocessor spreading: the vectorizer
  /// marks its strip loops parallel and the spread pass takes outer
  /// loops, targeting \p Processors (clamped to the Titan's maximum).
  static CompilerOptions parallel(int Processors = 4) {
    CompilerOptions O;
    O.Vectorize.EnableParallel = true;
    O.Spread.Processors =
        std::min(std::max(Processors, 2), titan::TitanConfig::MaxProcessors);
    return O;
  }
};

/// Typed per-module statistics (accumulated by the pipeline's pass
/// wrappers; see pipeline/Pass.h).
using PhaseStats = pipeline::PipelineStats;

struct CompileResult {
  DiagnosticEngine Diags;
  std::unique_ptr<il::Program> IL;
  titan::TitanProgram Machine;
  PhaseStats Stats;

  /// Optimization telemetry: per-pass wall-clock timings, IL-delta
  /// counters, per-pass counter groups, and source-located remarks.
  /// Serializable via Telemetry.writeJSON() (the -remarks= flag).
  remarks::CompilationTelemetry Telemetry;
  remarks::RemarkCollector Remarks;

  /// IL snapshots when CompilerOptions::CaptureStages is set; keys are
  /// the executed pass names plus "lower".  StageOrder preserves the
  /// execution order for -print-after-all.
  std::map<std::string, std::string> Stages;
  std::vector<std::string> StageOrder;

  bool ok() const { return !Diags.hasErrors(); }
};

/// Compiles C source through the whole pipeline.
std::unique_ptr<CompileResult> compileSource(const std::string &Source,
                                             const CompilerOptions &Opts =
                                                 {});

/// A long-lived compilation session — the daemon's unit of hot state,
/// equally usable by any tool that compiles more than once per process.
/// Keeps procedure catalogs parsed (keyed by path; a catalog file is
/// treated as immutable for the session's lifetime), shares analysis
/// exports across compiles through one SharedAnalysisCache, and injects
/// an optional FunctionResultCache (the server's single-flight hot store)
/// into every compile.  compile() is safe to call from concurrent
/// threads: each call builds its own Program/DiagnosticEngine, and the
/// shared stores synchronize internally.
class CompilerSession {
public:
  pipeline::SharedAnalysisCache &sharedAnalyses() { return Shared; }

  /// Attaches the hot function-result store injected into every compile
  /// (may be null to detach).  Not owned.
  void setResultCache(pipeline::FunctionResultCache *RC) { ResultCache = RC; }

  /// The parsed catalog at \p Path, loading it on first use.  Returns
  /// null (with diagnostics in \p Diags) when the file does not load; a
  /// failed load is not cached, so a catalog written later is picked up.
  const inliner::ProcedureCatalog *catalog(const std::string &Path,
                                           DiagnosticEngine &Diags);

  /// Catalogs currently held hot (telemetry).
  size_t catalogCount() const;

  /// compileSource() with this session's shared stores injected.  \p Opts
  /// is taken by value: the session overwrites its ResultCache /
  /// SharedAnalyses fields.
  std::unique_ptr<CompileResult> compile(const std::string &Source,
                                         CompilerOptions Opts);

private:
  mutable std::mutex CatalogMutex;
  std::map<std::string, std::unique_ptr<inliner::ProcedureCatalog>> Catalogs;
  pipeline::SharedAnalysisCache Shared;
  pipeline::FunctionResultCache *ResultCache = nullptr;
};

/// Serializes every option that changes what the function passes produce —
/// the compile-cache and reproducer-bundle configuration fingerprint.
std::string configFingerprint(const CompilerOptions &Opts);

/// The PipelineOptions a compile with \p Opts would hand every pass.
/// Exposed so `tcc -replay=` re-runs a reproducer bundle under the same
/// pass configuration the original compile used.
pipeline::PipelineOptions makePipelineOptions(const CompilerOptions &Opts);

/// Compiles and runs on a Titan machine in one call (benches, examples).
struct RunOutcome {
  std::unique_ptr<CompileResult> Compile;
  titan::RunResult Run;
  std::unique_ptr<titan::TitanMachine> Machine; ///< For memory inspection.
};
RunOutcome compileAndRun(const std::string &Source,
                         const CompilerOptions &Opts = {},
                         const titan::TitanConfig &Config = {});

} // namespace driver
} // namespace tcc

#endif // TCC_DRIVER_COMPILER_H
