//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler driver: the paper's phase pipeline wired together.
///
///   parse → lower (expression pairs, for→while) → [inline from program
///   and catalogs] → use-def chains → while→DO conversion → induction-
///   variable substitution → constant propagation ⨝ unreachable-code
///   elimination → dead-code elimination → vectorization + strip-mining +
///   parallelization → dependence-driven optimizations (scalar
///   replacement, strength reduction) → code generation → Titan
///   simulation.
///
/// Every phase can be toggled for the ablation benches, and the IL can be
/// snapshotted after each phase (the Section 9 walkthrough).
///
//===----------------------------------------------------------------------===//

#ifndef TCC_DRIVER_COMPILER_H
#define TCC_DRIVER_COMPILER_H

#include "il/IL.h"
#include "inliner/Inliner.h"
#include "scalar/ConstProp.h"
#include "scalar/InductionVarSub.h"
#include "scalar/WhileToDo.h"
#include "scalar/DeadCode.h"
#include "depopt/DepOpt.h"
#include "support/Diagnostics.h"
#include "titan/TitanISA.h"
#include "titan/TitanMachine.h"
#include "vector/Vectorize.h"

#include <map>
#include <memory>
#include <string>

namespace tcc {
namespace driver {

struct CompilerOptions {
  // Inlining (paper Section 7).
  bool EnableInline = true;
  inliner::InlineOptions Inline;
  const inliner::ProcedureCatalog *Catalog = nullptr;

  // Scalar optimization (Sections 5 and 8).
  bool EnableWhileToDo = true;
  bool EnableIVSub = true;
  scalar::IVSubOptions IVSub;
  bool EnableConstProp = true;
  scalar::ConstPropOptions ConstProp;
  bool EnableDCE = true;

  // Vectorization and parallelization (Sections 5 and 9).
  bool EnableVectorize = true;
  vec::VectorizeOptions Vectorize;

  // Dependence-driven optimizations (Section 6).
  bool EnableScalarReplacement = true;
  bool EnableStrengthReduction = true;

  // Code generation.
  bool EnableDepScheduling = true;

  /// Capture printProgram() after each phase (keys: "lower", "inline",
  /// "whiletodo", "ivsub", "constprop", "dce", "vectorize", "depopt").
  bool CaptureStages = false;

  /// Everything off: the straight-from-the-front-end baseline.
  static CompilerOptions noOpt() {
    CompilerOptions O;
    O.EnableInline = false;
    O.EnableWhileToDo = false;
    O.EnableIVSub = false;
    O.EnableConstProp = false;
    O.EnableDCE = false;
    O.EnableVectorize = false;
    O.EnableScalarReplacement = false;
    O.EnableStrengthReduction = false;
    O.EnableDepScheduling = false;
    return O;
  }

  /// Scalar optimization only (the paper's 0.5 MFLOPS backsolve build).
  static CompilerOptions scalarOnly() {
    CompilerOptions O;
    O.EnableVectorize = false;
    O.EnableScalarReplacement = false;
    O.EnableStrengthReduction = false;
    O.EnableDepScheduling = false;
    return O;
  }

  /// Full single-processor optimization.
  static CompilerOptions full() { return CompilerOptions(); }

  /// Full optimization plus multiprocessor spreading.
  static CompilerOptions parallel() {
    CompilerOptions O;
    O.Vectorize.EnableParallel = true;
    return O;
  }
};

struct PhaseStats {
  inliner::InlineStats Inline;
  scalar::WhileToDoStats WhileToDo;
  scalar::IVSubStats IVSub;
  scalar::ConstPropStats ConstProp;
  scalar::DCEStats DCE;
  vec::VectorizeStats Vectorize;
  depopt::ScalarReplaceStats ScalarReplace;
  depopt::StrengthReduceStats StrengthReduce;
};

struct CompileResult {
  DiagnosticEngine Diags;
  std::unique_ptr<il::Program> IL;
  titan::TitanProgram Machine;
  PhaseStats Stats;
  std::map<std::string, std::string> Stages;

  bool ok() const { return !Diags.hasErrors(); }
};

/// Compiles C source through the whole pipeline.
std::unique_ptr<CompileResult> compileSource(const std::string &Source,
                                             const CompilerOptions &Opts =
                                                 {});

/// Compiles and runs on a Titan machine in one call (benches, examples).
struct RunOutcome {
  std::unique_ptr<CompileResult> Compile;
  titan::RunResult Run;
  std::unique_ptr<titan::TitanMachine> Machine; ///< For memory inspection.
};
RunOutcome compileAndRun(const std::string &Source,
                         const CompilerOptions &Opts = {},
                         const titan::TitanConfig &Config = {});

} // namespace driver
} // namespace tcc

#endif // TCC_DRIVER_COMPILER_H
