//===----------------------------------------------------------------------===//
///
/// \file
/// The tcc command-line surface as a library: one flag parser and one
/// post-parse execution path shared verbatim by `tcc`, `tcc-client`, and
/// the compile server's request handler.
///
/// Sharing is what makes the server's correctness bar checkable: a
/// daemon-compiled request is byte-identical to a direct `tcc` run
/// because both render the same ToolInvocation through the same
/// runToolInvocation(), and a `-passes=`/`-cache=`/`-fault-inject=` typo
/// produces the same located diagnostic no matter which entry point saw
/// the flag.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_DRIVER_TOOLMAIN_H
#define TCC_DRIVER_TOOLMAIN_H

#include "driver/Compiler.h"
#include "titan/TitanMachine.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace tcc {
namespace driver {

/// One parsed tcc-style command line.
struct ToolInvocation {
  CompilerOptions Opts = CompilerOptions::full();
  titan::TitanConfig Machine;
  std::string PrintPhase;   ///< -print-il=PHASE
  std::string RemarksPath;  ///< -remarks=FILE ("-" for stdout)
  std::string CatalogPath;  ///< -catalog=FILE
  /// -replay=BUNDLE; tcc-only (bundles are local files).  The replay
  /// exit-code contract, shared by every bundle flavor:
  ///
  ///   0  the recorded failure reproduced — for a sandbox bundle, the
  ///      same fault kind fired again on the bundle's pass + IL; for a
  ///      fuzz bundle (oracle/spec/csource records present), the
  ///      whole-program differential check reported the same oracle
  ///      class (output-divergence, verifier, or quarantine)
  ///   1  the replay ran but the recorded failure did NOT reproduce
  ///   2  the bundle is malformed, names an unknown pass/oracle, or its
  ///      IL / C source no longer loads — nothing was replayed
  std::string ReplayPath;
  std::string InputPath;
  bool PrintAsm = false;
  bool PrintAfterAll = false;
  bool Run = true;
  bool PrintStats = false;
};

/// The usage text, with \p Tool as the program name.
std::string toolUsage(const std::string &Tool);

/// Parses \p Args (argv without the program name) into \p Inv.  On
/// failure \p Error carries the message (e.g. "unknown option '-x'");
/// the caller prefixes its tool name and prints usage.  Flag semantics
/// are identical across entry points by construction.
bool parseToolArgs(const std::vector<std::string> &Args, ToolInvocation &Inv,
                   std::string &Error);

/// Everything after flag parsing: catalog load (through \p Session),
/// compile, fault/remarks/stage/stat printing, Titan simulation.  Writes
/// byte-for-byte what `tcc` would print to stdout/stderr into \p Out /
/// \p Err and returns the process exit code (0 ok — including contained
/// faults, 1 compile/run failure, 2 usage or IO error).
///
/// \p Source is the input file's text: callers own the file IO (`tcc`
/// reads Inv.InputPath itself; the daemon receives the text over the
/// socket), so "cannot open" errors stay caller-side.  Replay mode is
/// also caller-side — this function ignores Inv.ReplayPath.
int runToolInvocation(const ToolInvocation &Inv, const std::string &Source,
                      CompilerSession &Session, std::ostream &Out,
                      std::ostream &Err);

} // namespace driver
} // namespace tcc

#endif // TCC_DRIVER_TOOLMAIN_H
