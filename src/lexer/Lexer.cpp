#include "lexer/Lexer.h"

#include "support/StringExtras.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace tcc;

const char *tcc::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "floating literal";
  case TokenKind::CharLiteral:
    return "character literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwChar:
    return "'char'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwFloat:
    return "'float'";
  case TokenKind::KwDouble:
    return "'double'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwGoto:
    return "'goto'";
  case TokenKind::KwStatic:
    return "'static'";
  case TokenKind::KwExtern:
    return "'extern'";
  case TokenKind::KwVolatile:
    return "'volatile'";
  case TokenKind::KwConst:
    return "'const'";
  case TokenKind::KwRegister:
    return "'register'";
  case TokenKind::KwSizeof:
    return "'sizeof'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::Tilde:
    return "'~'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::BangEqual:
    return "'!='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::LessLess:
    return "'<<'";
  case TokenKind::GreaterGreater:
    return "'>>'";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::PlusEqual:
    return "'+='";
  case TokenKind::MinusEqual:
    return "'-='";
  case TokenKind::StarEqual:
    return "'*='";
  case TokenKind::SlashEqual:
    return "'/='";
  case TokenKind::PercentEqual:
    return "'%='";
  case TokenKind::AmpEqual:
    return "'&='";
  case TokenKind::PipeEqual:
    return "'|='";
  case TokenKind::CaretEqual:
    return "'^='";
  case TokenKind::LessLessEqual:
    return "'<<='";
  case TokenKind::GreaterGreaterEqual:
    return "'>>='";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  case TokenKind::Pragma:
    return "'#pragma'";
  case TokenKind::Unknown:
    return "unknown token";
  }
  return "unknown token";
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  if (Pos + Ahead >= Source.size())
    return '\0';
  return Source[Pos + Ahead];
}

char Lexer::advance() {
  char C = peek();
  if (C == '\0')
    return C;
  ++Pos;
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = currentLoc();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc, std::string Text) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexNumber(SourceLoc Loc) {
  size_t Start = Pos;
  bool IsFloat = false;

  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      advance();
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
    if (peek() == '.') {
      // After digits, '.' always continues the number ("1.", "3.f", "2.5").
      IsFloat = true;
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      unsigned Skip = (peek(1) == '+' || peek(1) == '-') ? 2 : 1;
      if (std::isdigit(static_cast<unsigned char>(peek(Skip)))) {
        IsFloat = true;
        advance();
        if (peek() == '+' || peek() == '-')
          advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
          advance();
      }
    }
  }
  // Suffixes: f/F forces float, l/L and u/U are accepted and ignored.
  std::string Text = Source.substr(Start, Pos - Start);
  while (peek() == 'f' || peek() == 'F' || peek() == 'l' || peek() == 'L' ||
         peek() == 'u' || peek() == 'U') {
    if (peek() == 'f' || peek() == 'F')
      IsFloat = true;
    advance();
  }

  Token T = makeToken(IsFloat ? TokenKind::FloatLiteral : TokenKind::IntLiteral,
                      Loc, Text);
  if (IsFloat)
    T.FloatValue = std::strtod(Text.c_str(), nullptr);
  else
    T.IntValue = std::strtoll(Text.c_str(), nullptr, 0);
  return T;
}

Token Lexer::lexIdentifierOrKeyword(SourceLoc Loc) {
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string Text = Source.substr(Start, Pos - Start);

  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"void", TokenKind::KwVoid},         {"char", TokenKind::KwChar},
      {"int", TokenKind::KwInt},           {"float", TokenKind::KwFloat},
      {"double", TokenKind::KwDouble},     {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},         {"while", TokenKind::KwWhile},
      {"do", TokenKind::KwDo},             {"for", TokenKind::KwFor},
      {"return", TokenKind::KwReturn},     {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue}, {"goto", TokenKind::KwGoto},
      {"static", TokenKind::KwStatic},     {"extern", TokenKind::KwExtern},
      {"volatile", TokenKind::KwVolatile}, {"const", TokenKind::KwConst},
      {"register", TokenKind::KwRegister}, {"sizeof", TokenKind::KwSizeof},
  };
  auto It = Keywords.find(Text);
  if (It != Keywords.end())
    return makeToken(It->second, Loc, Text);
  return makeToken(TokenKind::Identifier, Loc, Text);
}

int Lexer::decodeEscape() {
  // Caller consumed the backslash.
  char C = advance();
  switch (C) {
  case 'n':
    return '\n';
  case 't':
    return '\t';
  case 'r':
    return '\r';
  case '0':
    return '\0';
  case '\\':
    return '\\';
  case '\'':
    return '\'';
  case '"':
    return '"';
  default:
    Diags.error(currentLoc(), "unknown escape sequence");
    return C;
  }
}

Token Lexer::lexCharLiteral(SourceLoc Loc) {
  advance(); // opening quote
  int Value = 0;
  if (peek() == '\\') {
    advance();
    Value = decodeEscape();
  } else {
    Value = advance();
  }
  if (!match('\''))
    Diags.error(Loc, "unterminated character literal");
  Token T = makeToken(TokenKind::CharLiteral, Loc, std::string(1, (char)Value));
  T.IntValue = Value;
  return T;
}

Token Lexer::lexStringLiteral(SourceLoc Loc) {
  advance(); // opening quote
  std::string Value;
  while (peek() != '"') {
    if (peek() == '\0' || peek() == '\n') {
      Diags.error(Loc, "unterminated string literal");
      break;
    }
    if (peek() == '\\') {
      advance();
      Value.push_back(static_cast<char>(decodeEscape()));
    } else {
      Value.push_back(advance());
    }
  }
  match('"');
  return makeToken(TokenKind::StringLiteral, Loc, Value);
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  SourceLoc Loc = currentLoc();
  char C = peek();

  // Preprocessor-lite: `#pragma <body>` becomes a Pragma token; any other
  // `#` directive line is skipped.
  while (C == '#') {
    advance();
    size_t WordStart = Pos;
    while (std::isalpha(static_cast<unsigned char>(peek())))
      advance();
    std::string Directive = Source.substr(WordStart, Pos - WordStart);
    size_t BodyStart = Pos;
    while (peek() != '\n' && peek() != '\0')
      advance();
    if (Directive == "pragma") {
      std::string Body = Source.substr(BodyStart, Pos - BodyStart);
      // Trim surrounding whitespace.
      size_t First = Body.find_first_not_of(" \t");
      size_t Last = Body.find_last_not_of(" \t");
      if (First == std::string::npos)
        Body.clear();
      else
        Body = Body.substr(First, Last - First + 1);
      return makeToken(TokenKind::Pragma, Loc, Body);
    }
    skipWhitespaceAndComments();
    Loc = currentLoc();
    C = peek();
  }

  if (C == '\0')
    return makeToken(TokenKind::Eof, Loc, "");
  if (std::isdigit(static_cast<unsigned char>(C)) ||
      (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))))
    return lexNumber(Loc);
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword(Loc);
  if (C == '\'')
    return lexCharLiteral(Loc);
  if (C == '"')
    return lexStringLiteral(Loc);

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Loc, "(");
  case ')':
    return makeToken(TokenKind::RParen, Loc, ")");
  case '{':
    return makeToken(TokenKind::LBrace, Loc, "{");
  case '}':
    return makeToken(TokenKind::RBrace, Loc, "}");
  case '[':
    return makeToken(TokenKind::LBracket, Loc, "[");
  case ']':
    return makeToken(TokenKind::RBracket, Loc, "]");
  case ';':
    return makeToken(TokenKind::Semi, Loc, ";");
  case ',':
    return makeToken(TokenKind::Comma, Loc, ",");
  case ':':
    return makeToken(TokenKind::Colon, Loc, ":");
  case '?':
    return makeToken(TokenKind::Question, Loc, "?");
  case '~':
    return makeToken(TokenKind::Tilde, Loc, "~");
  case '+':
    if (match('+'))
      return makeToken(TokenKind::PlusPlus, Loc, "++");
    if (match('='))
      return makeToken(TokenKind::PlusEqual, Loc, "+=");
    return makeToken(TokenKind::Plus, Loc, "+");
  case '-':
    if (match('-'))
      return makeToken(TokenKind::MinusMinus, Loc, "--");
    if (match('='))
      return makeToken(TokenKind::MinusEqual, Loc, "-=");
    return makeToken(TokenKind::Minus, Loc, "-");
  case '*':
    if (match('='))
      return makeToken(TokenKind::StarEqual, Loc, "*=");
    return makeToken(TokenKind::Star, Loc, "*");
  case '/':
    if (match('='))
      return makeToken(TokenKind::SlashEqual, Loc, "/=");
    return makeToken(TokenKind::Slash, Loc, "/");
  case '%':
    if (match('='))
      return makeToken(TokenKind::PercentEqual, Loc, "%=");
    return makeToken(TokenKind::Percent, Loc, "%");
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp, Loc, "&&");
    if (match('='))
      return makeToken(TokenKind::AmpEqual, Loc, "&=");
    return makeToken(TokenKind::Amp, Loc, "&");
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe, Loc, "||");
    if (match('='))
      return makeToken(TokenKind::PipeEqual, Loc, "|=");
    return makeToken(TokenKind::Pipe, Loc, "|");
  case '^':
    if (match('='))
      return makeToken(TokenKind::CaretEqual, Loc, "^=");
    return makeToken(TokenKind::Caret, Loc, "^");
  case '!':
    if (match('='))
      return makeToken(TokenKind::BangEqual, Loc, "!=");
    return makeToken(TokenKind::Bang, Loc, "!");
  case '=':
    if (match('='))
      return makeToken(TokenKind::EqualEqual, Loc, "==");
    return makeToken(TokenKind::Equal, Loc, "=");
  case '<':
    if (match('<')) {
      if (match('='))
        return makeToken(TokenKind::LessLessEqual, Loc, "<<=");
      return makeToken(TokenKind::LessLess, Loc, "<<");
    }
    if (match('='))
      return makeToken(TokenKind::LessEqual, Loc, "<=");
    return makeToken(TokenKind::Less, Loc, "<");
  case '>':
    if (match('>')) {
      if (match('='))
        return makeToken(TokenKind::GreaterGreaterEqual, Loc, ">>=");
      return makeToken(TokenKind::GreaterGreater, Loc, ">>");
    }
    if (match('='))
      return makeToken(TokenKind::GreaterEqual, Loc, ">=");
    return makeToken(TokenKind::Greater, Loc, ">");
  default:
    Diags.error(Loc, formatString("unexpected character '%c'", C));
    return makeToken(TokenKind::Unknown, Loc, std::string(1, C));
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::Eof))
      return Tokens;
  }
}
