//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token value type produced by the C lexer.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_LEXER_TOKEN_H
#define TCC_LEXER_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace tcc {

enum class TokenKind : uint8_t {
  Eof,
  Identifier,
  IntLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,

  // Keywords.
  KwVoid,
  KwChar,
  KwInt,
  KwFloat,
  KwDouble,
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwGoto,
  KwStatic,
  KwExtern,
  KwVolatile,
  KwConst,
  KwRegister,
  KwSizeof,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Colon,
  Question,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Less,
  Greater,
  LessEqual,
  GreaterEqual,
  EqualEqual,
  BangEqual,
  AmpAmp,
  PipePipe,
  LessLess,
  GreaterGreater,
  Equal,
  PlusEqual,
  MinusEqual,
  StarEqual,
  SlashEqual,
  PercentEqual,
  AmpEqual,
  PipeEqual,
  CaretEqual,
  LessLessEqual,
  GreaterGreaterEqual,
  PlusPlus,
  MinusMinus,

  /// A `#pragma ...` directive; Text holds the directive body (everything
  /// after "#pragma", trimmed).  Other `#` lines are skipped by the lexer.
  Pragma,

  Unknown,
};

/// Human-readable spelling of a token kind for diagnostics ("'+='",
/// "identifier", ...).
const char *tokenKindName(TokenKind Kind);

/// One lexed token.  Identifier and literal tokens carry their text; numeric
/// literals also carry a decoded value.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;
  int64_t IntValue = 0;
  double FloatValue = 0.0;

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
};

} // namespace tcc

#endif // TCC_LEXER_TOKEN_H
