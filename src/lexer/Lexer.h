//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-written lexer for the supported C subset.  Handles the full C
/// operator set (including compound assignment, ++/-- and shift operators),
/// decimal/hex/octal integer literals, floating literals with exponents,
/// character and string literals with escapes, and both comment styles.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_LEXER_LEXER_H
#define TCC_LEXER_LEXER_H

#include "lexer/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace tcc {

class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes and returns the next token.  After end of input, repeatedly
  /// returns an Eof token.
  Token next();

  /// Lexes the entire buffer; the last element is always Eof.
  std::vector<Token> lexAll();

private:
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();
  SourceLoc currentLoc() const { return SourceLoc(Line, Col); }

  Token makeToken(TokenKind Kind, SourceLoc Loc, std::string Text);
  Token lexNumber(SourceLoc Loc);
  Token lexIdentifierOrKeyword(SourceLoc Loc);
  Token lexCharLiteral(SourceLoc Loc);
  Token lexStringLiteral(SourceLoc Loc);
  int decodeEscape();

  std::string Source;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
  DiagnosticEngine &Diags;
};

} // namespace tcc

#endif // TCC_LEXER_LEXER_H
