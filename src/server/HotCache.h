//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's hot function-result store: a single-flight, in-memory
/// implementation of pipeline::FunctionResultCache.
///
/// Entries are keyed by the content hash the PassManager already
/// computes (serialized input IL + configuration fingerprint + segment
/// pass spec), so a hit is byte-identical to recompiling by the same
/// argument that makes the on-disk manifest sound.  What this class adds
/// over the manifest is *deduplication across concurrent requests*: when
/// N clients submit the same function at once, one request computes and
/// N-1 block in acquire() until the result publishes.  If the owner dies
/// — contained fault, verifier failure, an exception unwinding the
/// request — abandon() wakes the waiters and the first one becomes the
/// new owner, so a poisoned request can delay but never wedge the rest.
///
/// Persistence is deliberately NOT here: the daemon points every
/// compile's CacheFile at its manifest, and the PassManager's
/// flock-guarded write-back keeps disk consistent.  A kill -9 loses only
/// the in-memory layer; a restarted daemon warms back up from the
/// manifest on the first request.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SERVER_HOTCACHE_H
#define TCC_SERVER_HOTCACHE_H

#include "pipeline/PassManager.h"

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace tcc {
namespace server {

struct HotCacheStats {
  uint64_t Hits = 0;      ///< acquire() served a finished body.
  uint64_t Misses = 0;    ///< acquire() made the caller the owner.
  uint64_t Waits = 0;     ///< acquire() blocked on another owner first.
  uint64_t Published = 0; ///< Owned computations that completed.
  uint64_t Abandoned = 0; ///< Owned computations released without a result.
};

class HotCache : public pipeline::FunctionResultCache {
public:
  Acquire acquire(const std::string &Key, const std::string &Hash,
                  std::string &Text) override;
  void publish(const std::string &Key, const std::string &Hash,
               std::string Text) override;
  void abandon(const std::string &Key, const std::string &Hash) override;

  HotCacheStats stats() const;
  size_t size() const; ///< Finished bodies currently held.

private:
  struct Slot {
    bool Ready = false; ///< False while the owner computes.
    std::string Text;
  };

  mutable std::mutex M;
  std::condition_variable CV;
  std::map<std::string, Slot> Slots; ///< Keyed by content hash.
  HotCacheStats S;
};

} // namespace server
} // namespace tcc

#endif // TCC_SERVER_HOTCACHE_H
