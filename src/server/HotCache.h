//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's hot function-result store: a single-flight, in-memory
/// implementation of pipeline::FunctionResultCache.
///
/// Entries are keyed by the content hash the PassManager already
/// computes (serialized input IL + configuration fingerprint + segment
/// pass spec), so a hit is byte-identical to recompiling by the same
/// argument that makes the on-disk manifest sound.  What this class adds
/// over the manifest is *deduplication across concurrent requests*: when
/// N clients submit the same function at once, one request computes and
/// N-1 block in acquire() until the result publishes.  If the owner dies
/// — contained fault, verifier failure, an exception unwinding the
/// request — abandon() wakes the waiters and the first one becomes the
/// new owner, so a poisoned request can delay but never wedge the rest.
///
/// Persistence is deliberately NOT here: the daemon points every
/// compile's CacheFile at its manifest, and the PassManager's
/// flock-guarded write-back keeps disk consistent.  A kill -9 loses only
/// the in-memory layer; a restarted daemon warms back up from the
/// manifest on the first request.
///
//===----------------------------------------------------------------------===//

#ifndef TCC_SERVER_HOTCACHE_H
#define TCC_SERVER_HOTCACHE_H

#include "pipeline/PassManager.h"

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

namespace tcc {
namespace server {

struct HotCacheStats {
  uint64_t Hits = 0;      ///< acquire() served a finished body.
  uint64_t Misses = 0;    ///< acquire() made the caller the owner.
  uint64_t Waits = 0;     ///< acquire() blocked on another owner first.
  uint64_t Published = 0; ///< Owned computations that completed.
  uint64_t Abandoned = 0; ///< Owned computations released without a result.
  uint64_t Evictions = 0; ///< Finished bodies dropped by the LRU cap.
};

class HotCache : public pipeline::FunctionResultCache {
public:
  /// \p MaxEntries caps the finished bodies held (0 = unbounded).  When
  /// a publish pushes the count past the cap, the least-recently-used
  /// finished body is dropped — never an in-flight slot, whose waiters
  /// are parked on it.  A dropped body is only an in-memory loss: the
  /// next request for its hash recompiles (or re-reads the manifest).
  explicit HotCache(size_t MaxEntries = DefaultMaxEntries)
      : MaxEntries(MaxEntries) {}

  Acquire acquire(const std::string &Key, const std::string &Hash,
                  std::string &Text) override;
  void publish(const std::string &Key, const std::string &Hash,
               std::string Text) override;
  void abandon(const std::string &Key, const std::string &Hash) override;

  HotCacheStats stats() const;
  size_t size() const; ///< Finished bodies currently held.
  size_t maxEntries() const { return MaxEntries; }

  /// A deliberately generous default: entries are optimized IL texts, so
  /// thousands of them are megabytes, not gigabytes.  The cap exists so
  /// a long-lived daemon fed an unbounded stream of distinct functions
  /// plateaus instead of growing forever.
  static constexpr size_t DefaultMaxEntries = 4096;

private:
  struct Slot {
    bool Ready = false; ///< False while the owner computes.
    std::string Text;
    /// Position in Lru; valid only while Ready.
    std::list<std::string>::iterator LruIt;
  };

  mutable std::mutex M;
  std::condition_variable CV;
  std::map<std::string, Slot> Slots; ///< Keyed by content hash.
  /// Finished bodies, least-recently-used first.  In-flight slots are
  /// never listed.
  std::list<std::string> Lru;
  size_t MaxEntries;
  HotCacheStats S;
};

} // namespace server
} // namespace tcc

#endif // TCC_SERVER_HOTCACHE_H
