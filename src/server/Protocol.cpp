#include "server/Protocol.h"

#include "support/JSONWriter.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <unistd.h>

using namespace tcc;
using namespace tcc::server;

//===----------------------------------------------------------------------===//
// Encoding (via the streaming writer; compact single-line form).
//===----------------------------------------------------------------------===//

std::string server::encodeRequest(const Request &R) {
  std::ostringstream OS;
  json::JSONWriter W(OS, /*IndentWidth=*/0);
  W.beginObject();
  W.key("args").beginArray();
  for (const std::string &A : R.Args)
    W.value(A);
  W.endArray();
  W.keyValue("source", R.Source);
  // "compile" is the wire default; only non-default kinds are framed, so
  // compile requests are byte-identical to the pre-kind protocol.
  if (!R.Kind.empty() && R.Kind != "compile")
    W.keyValue("kind", R.Kind);
  W.endObject();
  return OS.str();
}

std::string server::encodeResponse(const Response &R) {
  std::ostringstream OS;
  json::JSONWriter W(OS, /*IndentWidth=*/0);
  W.beginObject();
  W.keyValue("exit", R.Exit);
  W.keyValue("stdout", R.Out);
  W.keyValue("stderr", R.Err);
  if (R.RetryAfterMs >= 0)
    W.keyValue("retryAfterMs", R.RetryAfterMs);
  W.endObject();
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Decoding: a minimal recursive-descent reader for the writer's subset.
//===----------------------------------------------------------------------===//

namespace {

struct JsonValue {
  enum Kind { Null, Bool, Number, String, Array, Object } K = Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Elems;
  std::map<std::string, JsonValue> Fields;
};

class JsonReader {
public:
  JsonReader(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool parse(JsonValue &Out) {
    skipSpace();
    if (!parseValue(Out))
      return false;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing bytes after JSON value");
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    Error = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Lit) {
    size_t N = std::strlen(Lit);
    if (Text.compare(Pos, N, Lit) != 0)
      return fail(std::string("expected '") + Lit + "'");
    Pos += N;
    return true;
  }

  bool parseValue(JsonValue &Out) {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"':
      Out.K = JsonValue::String;
      return parseString(Out.Str);
    case 't':
      Out.K = JsonValue::Bool;
      Out.B = true;
      return literal("true");
    case 'f':
      Out.K = JsonValue::Bool;
      Out.B = false;
      return literal("false");
    case 'n':
      Out.K = JsonValue::Null;
      return literal("null");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out) {
    Out.K = JsonValue::Object;
    ++Pos; // '{'
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      std::string Key;
      if (!parseString(Key))
        return false;
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':' in object");
      ++Pos;
      skipSpace();
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.Fields.emplace(std::move(Key), std::move(V));
      skipSpace();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out) {
    Out.K = JsonValue::Array;
    ++Pos; // '['
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.Elems.push_back(std::move(V));
      skipSpace();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape digit");
        }
        // The writer only emits \u00XX for control bytes; decode the
        // basic-multilingual-plane code point as UTF-8.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    if (Pos == Start)
      return fail("expected value");
    Out.K = JsonValue::Number;
    try {
      Out.Num = std::stod(Text.substr(Start, Pos - Start));
    } catch (...) {
      return fail("malformed number");
    }
    return true;
  }

  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;
};

const JsonValue *field(const JsonValue &Obj, const char *Name,
                       JsonValue::Kind K) {
  auto It = Obj.Fields.find(Name);
  if (It == Obj.Fields.end() || It->second.K != K)
    return nullptr;
  return &It->second;
}

} // namespace

bool server::decodeRequest(const std::string &Payload, Request &R,
                           std::string &Error) {
  JsonValue V;
  if (!JsonReader(Payload, Error).parse(V))
    return false;
  if (V.K != JsonValue::Object) {
    Error = "request is not a JSON object";
    return false;
  }
  const JsonValue *Args = field(V, "args", JsonValue::Array);
  const JsonValue *Source = field(V, "source", JsonValue::String);
  if (!Args || !Source) {
    Error = "request missing 'args' array or 'source' string";
    return false;
  }
  R.Args.clear();
  for (const JsonValue &A : Args->Elems) {
    if (A.K != JsonValue::String) {
      Error = "request 'args' holds a non-string element";
      return false;
    }
    R.Args.push_back(A.Str);
  }
  R.Source = Source->Str;
  // Optional request kind; absent means "compile" (the pre-kind wire
  // form).  A present non-string kind is malformed.
  R.Kind.clear();
  auto KindIt = V.Fields.find("kind");
  if (KindIt != V.Fields.end()) {
    if (KindIt->second.K != JsonValue::String) {
      Error = "request 'kind' is not a string";
      return false;
    }
    R.Kind = KindIt->second.Str;
  }
  return true;
}

bool server::decodeResponse(const std::string &Payload, Response &R,
                            std::string &Error) {
  JsonValue V;
  if (!JsonReader(Payload, Error).parse(V))
    return false;
  if (V.K != JsonValue::Object) {
    Error = "response is not a JSON object";
    return false;
  }
  const JsonValue *Exit = field(V, "exit", JsonValue::Number);
  const JsonValue *Out = field(V, "stdout", JsonValue::String);
  const JsonValue *Err = field(V, "stderr", JsonValue::String);
  if (!Exit || !Out || !Err) {
    Error = "response missing 'exit', 'stdout', or 'stderr'";
    return false;
  }
  R.Exit = static_cast<int>(Exit->Num);
  R.Out = Out->Str;
  R.Err = Err->Str;
  // Optional busy hint; absent (the common case) stays -1.
  R.RetryAfterMs = -1;
  if (const JsonValue *Hint = field(V, "retryAfterMs", JsonValue::Number))
    R.RetryAfterMs = static_cast<int>(Hint->Num);
  return true;
}

//===----------------------------------------------------------------------===//
// Framing.
//===----------------------------------------------------------------------===//

namespace {

using Clock = std::chrono::steady_clock;

/// A deadline that may be "never".  All frame I/O below is written
/// against an absolute deadline so a frame that dribbles in one byte at
/// a time cannot extend its own budget.
struct Deadline {
  bool Bounded = false;
  Clock::time_point At;

  static Deadline after(int TimeoutMs) {
    Deadline D;
    if (TimeoutMs > 0) {
      D.Bounded = true;
      D.At = Clock::now() + std::chrono::milliseconds(TimeoutMs);
    }
    return D;
  }

  /// Remaining budget in ms for poll(): -1 means wait forever, 0 means
  /// already expired.
  int remainingMs() const {
    if (!Bounded)
      return -1;
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
        At - Clock::now());
    if (Left.count() <= 0)
      return 0;
    // Cap the slice so a clock adjustment cannot park us for hours.
    return static_cast<int>(std::min<long long>(Left.count(), 3600000));
  }
};

/// Moves exactly \p N bytes through \p Fd before the deadline, polling
/// between partial transfers.  \p Got counts bytes moved so far (shared
/// across the header/payload halves of a frame so error messages report
/// frame-level progress).  Writes use send(MSG_NOSIGNAL) so a vanished
/// peer surfaces as EPIPE instead of killing the process with SIGPIPE.
server::FrameIO transferAll(int Fd, char *Data, size_t N, bool Writing,
                            const Deadline &D, size_t &Got) {
  size_t Done = 0;
  while (Done < N) {
    int Budget = D.remainingMs();
    if (Budget == 0)
      return server::FrameIO::Timeout;

    pollfd P;
    P.fd = Fd;
    P.events = Writing ? POLLOUT : POLLIN;
    P.revents = 0;
    int R = ::poll(&P, 1, Budget);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return server::FrameIO::Error;
    }
    if (R == 0)
      return server::FrameIO::Timeout;

    ssize_t IO =
        Writing
            ? ::send(Fd, Data + Done, N - Done, MSG_NOSIGNAL)
            : ::recv(Fd, Data + Done, N - Done, 0);
    if (IO < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      return server::FrameIO::Error;
    }
    if (IO == 0) {
      // EOF mid-read.  Clean only if the peer closed at a frame
      // boundary — i.e. nothing of this frame had arrived yet.
      if (!Writing && Got == 0 && Done == 0)
        return server::FrameIO::CleanEof;
      errno = ECONNRESET;
      return server::FrameIO::Error;
    }
    Done += static_cast<size_t>(IO);
    Got += static_cast<size_t>(IO);
  }
  return server::FrameIO::Ok;
}

std::string progressSuffix(size_t Got, size_t Total) {
  return " after " + std::to_string(Got) + " of " + std::to_string(Total) +
         " bytes";
}

} // namespace

int server::pollReadable(int Fd, int TimeoutMs) {
  pollfd P;
  P.fd = Fd;
  P.events = POLLIN;
  P.revents = 0;
  for (;;) {
    int R = ::poll(&P, 1, TimeoutMs);
    if (R < 0 && errno == EINTR)
      continue;
    return R < 0 ? -1 : (R > 0 ? 1 : 0);
  }
}

server::FrameIO server::writeFrameDeadline(int Fd,
                                           const std::string &Payload,
                                           int TimeoutMs,
                                           std::string &Error) {
  Error.clear();
  Deadline D = Deadline::after(TimeoutMs);
  uint32_t N = static_cast<uint32_t>(Payload.size());
  char Hdr[4] = {static_cast<char>(N & 0xFF),
                 static_cast<char>((N >> 8) & 0xFF),
                 static_cast<char>((N >> 16) & 0xFF),
                 static_cast<char>((N >> 24) & 0xFF)};
  size_t Got = 0;
  size_t Total = sizeof(Hdr) + Payload.size();
  FrameIO R = transferAll(Fd, Hdr, sizeof(Hdr), /*Writing=*/true, D, Got);
  if (R == FrameIO::Ok && !Payload.empty())
    R = transferAll(Fd, const_cast<char *>(Payload.data()), Payload.size(),
                    /*Writing=*/true, D, Got);
  switch (R) {
  case FrameIO::Ok:
  case FrameIO::CleanEof: // Unreachable for writes.
    return FrameIO::Ok;
  case FrameIO::Timeout:
    Error = "write deadline expired" + progressSuffix(Got, Total);
    return FrameIO::Timeout;
  case FrameIO::Error:
    Error = std::string("write failed (") + std::strerror(errno) + ")" +
            progressSuffix(Got, Total);
    return FrameIO::Error;
  }
  return FrameIO::Error;
}

server::FrameIO server::readFrameDeadline(int Fd, std::string &Payload,
                                          int TimeoutMs,
                                          std::string &Error) {
  Error.clear();
  Deadline D = Deadline::after(TimeoutMs);
  char Hdr[4];
  size_t Got = 0;
  FrameIO R = transferAll(Fd, Hdr, sizeof(Hdr), /*Writing=*/false, D, Got);
  if (R == FrameIO::CleanEof)
    return R; // Peer closed between frames; Error stays empty.
  if (R == FrameIO::Timeout) {
    Error = "read deadline expired in frame header" +
            progressSuffix(Got, sizeof(Hdr));
    return R;
  }
  if (R == FrameIO::Error) {
    Error = std::string("connection truncated reading frame header (") +
            std::strerror(errno) + ")";
    return R;
  }
  uint32_t N = static_cast<uint32_t>(static_cast<unsigned char>(Hdr[0])) |
               (static_cast<uint32_t>(static_cast<unsigned char>(Hdr[1]))
                << 8) |
               (static_cast<uint32_t>(static_cast<unsigned char>(Hdr[2]))
                << 16) |
               (static_cast<uint32_t>(static_cast<unsigned char>(Hdr[3]))
                << 24);
  if (N > MaxFrameBytes) {
    Error = "frame of " + std::to_string(N) + " bytes exceeds the " +
            std::to_string(MaxFrameBytes) + "-byte limit";
    return FrameIO::Error;
  }
  Payload.resize(N);
  if (N > 0) {
    R = transferAll(Fd, Payload.data(), N, /*Writing=*/false, D, Got);
    size_t Total = sizeof(Hdr) + N;
    if (R != FrameIO::Ok) {
      // A half-read payload is poison — wipe it so no caller can decode
      // a truncated frame by accident.
      Payload.clear();
      if (R == FrameIO::Timeout) {
        Error = "read deadline expired in frame payload" +
                progressSuffix(Got, Total);
        return FrameIO::Timeout;
      }
      Error = std::string("connection truncated reading frame payload (") +
              std::strerror(errno) + ")" + progressSuffix(Got, Total);
      return FrameIO::Error;
    }
  }
  return FrameIO::Ok;
}

bool server::writeFrame(int Fd, const std::string &Payload) {
  std::string Ignored;
  return writeFrameDeadline(Fd, Payload, /*TimeoutMs=*/0, Ignored) ==
         FrameIO::Ok;
}

bool server::readFrame(int Fd, std::string &Payload, std::string &Error) {
  return readFrameDeadline(Fd, Payload, /*TimeoutMs=*/0, Error) ==
         FrameIO::Ok;
}
