#include "server/Protocol.h"

#include "support/JSONWriter.h"

#include <cctype>
#include <cerrno>
#include <cstring>
#include <map>
#include <sstream>
#include <unistd.h>

using namespace tcc;
using namespace tcc::server;

//===----------------------------------------------------------------------===//
// Encoding (via the streaming writer; compact single-line form).
//===----------------------------------------------------------------------===//

std::string server::encodeRequest(const Request &R) {
  std::ostringstream OS;
  json::JSONWriter W(OS, /*IndentWidth=*/0);
  W.beginObject();
  W.key("args").beginArray();
  for (const std::string &A : R.Args)
    W.value(A);
  W.endArray();
  W.keyValue("source", R.Source);
  W.endObject();
  return OS.str();
}

std::string server::encodeResponse(const Response &R) {
  std::ostringstream OS;
  json::JSONWriter W(OS, /*IndentWidth=*/0);
  W.beginObject();
  W.keyValue("exit", R.Exit);
  W.keyValue("stdout", R.Out);
  W.keyValue("stderr", R.Err);
  W.endObject();
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Decoding: a minimal recursive-descent reader for the writer's subset.
//===----------------------------------------------------------------------===//

namespace {

struct JsonValue {
  enum Kind { Null, Bool, Number, String, Array, Object } K = Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Elems;
  std::map<std::string, JsonValue> Fields;
};

class JsonReader {
public:
  JsonReader(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool parse(JsonValue &Out) {
    skipSpace();
    if (!parseValue(Out))
      return false;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing bytes after JSON value");
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    Error = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Lit) {
    size_t N = std::strlen(Lit);
    if (Text.compare(Pos, N, Lit) != 0)
      return fail(std::string("expected '") + Lit + "'");
    Pos += N;
    return true;
  }

  bool parseValue(JsonValue &Out) {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"':
      Out.K = JsonValue::String;
      return parseString(Out.Str);
    case 't':
      Out.K = JsonValue::Bool;
      Out.B = true;
      return literal("true");
    case 'f':
      Out.K = JsonValue::Bool;
      Out.B = false;
      return literal("false");
    case 'n':
      Out.K = JsonValue::Null;
      return literal("null");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out) {
    Out.K = JsonValue::Object;
    ++Pos; // '{'
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      std::string Key;
      if (!parseString(Key))
        return false;
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':' in object");
      ++Pos;
      skipSpace();
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.Fields.emplace(std::move(Key), std::move(V));
      skipSpace();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out) {
    Out.K = JsonValue::Array;
    ++Pos; // '['
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.Elems.push_back(std::move(V));
      skipSpace();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape digit");
        }
        // The writer only emits \u00XX for control bytes; decode the
        // basic-multilingual-plane code point as UTF-8.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    if (Pos == Start)
      return fail("expected value");
    Out.K = JsonValue::Number;
    try {
      Out.Num = std::stod(Text.substr(Start, Pos - Start));
    } catch (...) {
      return fail("malformed number");
    }
    return true;
  }

  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;
};

const JsonValue *field(const JsonValue &Obj, const char *Name,
                       JsonValue::Kind K) {
  auto It = Obj.Fields.find(Name);
  if (It == Obj.Fields.end() || It->second.K != K)
    return nullptr;
  return &It->second;
}

} // namespace

bool server::decodeRequest(const std::string &Payload, Request &R,
                           std::string &Error) {
  JsonValue V;
  if (!JsonReader(Payload, Error).parse(V))
    return false;
  if (V.K != JsonValue::Object) {
    Error = "request is not a JSON object";
    return false;
  }
  const JsonValue *Args = field(V, "args", JsonValue::Array);
  const JsonValue *Source = field(V, "source", JsonValue::String);
  if (!Args || !Source) {
    Error = "request missing 'args' array or 'source' string";
    return false;
  }
  R.Args.clear();
  for (const JsonValue &A : Args->Elems) {
    if (A.K != JsonValue::String) {
      Error = "request 'args' holds a non-string element";
      return false;
    }
    R.Args.push_back(A.Str);
  }
  R.Source = Source->Str;
  return true;
}

bool server::decodeResponse(const std::string &Payload, Response &R,
                            std::string &Error) {
  JsonValue V;
  if (!JsonReader(Payload, Error).parse(V))
    return false;
  if (V.K != JsonValue::Object) {
    Error = "response is not a JSON object";
    return false;
  }
  const JsonValue *Exit = field(V, "exit", JsonValue::Number);
  const JsonValue *Out = field(V, "stdout", JsonValue::String);
  const JsonValue *Err = field(V, "stderr", JsonValue::String);
  if (!Exit || !Out || !Err) {
    Error = "response missing 'exit', 'stdout', or 'stderr'";
    return false;
  }
  R.Exit = static_cast<int>(Exit->Num);
  R.Out = Out->Str;
  R.Err = Err->Str;
  return true;
}

//===----------------------------------------------------------------------===//
// Framing.
//===----------------------------------------------------------------------===//

namespace {

bool writeAll(int Fd, const char *Data, size_t N) {
  while (N > 0) {
    ssize_t W = ::write(Fd, Data, N);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += W;
    N -= static_cast<size_t>(W);
  }
  return true;
}

/// Returns 1 on success, 0 on clean EOF at a frame boundary (only
/// meaningful when nothing has been consumed yet), -1 on error.
int readAll(int Fd, char *Data, size_t N) {
  size_t Got = 0;
  while (Got < N) {
    ssize_t R = ::read(Fd, Data + Got, N - Got);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (R == 0)
      return Got == 0 ? 0 : -1;
    Got += static_cast<size_t>(R);
  }
  return 1;
}

} // namespace

bool server::writeFrame(int Fd, const std::string &Payload) {
  uint32_t N = static_cast<uint32_t>(Payload.size());
  char Hdr[4] = {static_cast<char>(N & 0xFF),
                 static_cast<char>((N >> 8) & 0xFF),
                 static_cast<char>((N >> 16) & 0xFF),
                 static_cast<char>((N >> 24) & 0xFF)};
  return writeAll(Fd, Hdr, sizeof(Hdr)) &&
         writeAll(Fd, Payload.data(), Payload.size());
}

bool server::readFrame(int Fd, std::string &Payload, std::string &Error) {
  Error.clear();
  char Hdr[4];
  int R = readAll(Fd, Hdr, sizeof(Hdr));
  if (R == 0)
    return false; // Clean EOF between frames; Error stays empty.
  if (R < 0) {
    Error = "connection truncated reading frame header";
    return false;
  }
  uint32_t N = static_cast<uint32_t>(static_cast<unsigned char>(Hdr[0])) |
               (static_cast<uint32_t>(static_cast<unsigned char>(Hdr[1]))
                << 8) |
               (static_cast<uint32_t>(static_cast<unsigned char>(Hdr[2]))
                << 16) |
               (static_cast<uint32_t>(static_cast<unsigned char>(Hdr[3]))
                << 24);
  if (N > MaxFrameBytes) {
    Error = "frame of " + std::to_string(N) + " bytes exceeds the " +
            std::to_string(MaxFrameBytes) + "-byte limit";
    return false;
  }
  Payload.resize(N);
  if (N > 0 && readAll(Fd, Payload.data(), N) != 1) {
    Error = "connection truncated reading frame payload";
    return false;
  }
  return true;
}
