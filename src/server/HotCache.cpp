#include "server/HotCache.h"

using namespace tcc;
using namespace tcc::server;

HotCache::Acquire HotCache::acquire(const std::string &Key,
                                    const std::string &Hash,
                                    std::string &Text) {
  (void)Key; // Slots key on the content hash; Key exists for diagnostics.
  std::unique_lock<std::mutex> Lock(M);
  bool Waited = false;
  while (true) {
    auto It = Slots.find(Hash);
    if (It == Slots.end()) {
      // No one holds this hash: claim ownership by inserting the
      // in-flight slot.  Waiters promoted after an abandon land here too.
      Slots.emplace(Hash, Slot());
      ++S.Misses;
      if (Waited)
        ++S.Waits;
      return Acquire::Own;
    }
    if (It->second.Ready) {
      ++S.Hits;
      if (Waited)
        ++S.Waits;
      Text = It->second.Text;
      // Freshly used: move to the most-recently-used end.
      Lru.splice(Lru.end(), Lru, It->second.LruIt);
      return Acquire::Hit;
    }
    // Another request owns the computation: wait for publish (slot turns
    // Ready) or abandon (slot disappears; the loop re-claims it).
    Waited = true;
    CV.wait(Lock);
  }
}

void HotCache::publish(const std::string &Key, const std::string &Hash,
                       std::string Text) {
  (void)Key;
  {
    std::lock_guard<std::mutex> Lock(M);
    Slot &E = Slots[Hash];
    if (E.Ready) // duplicate publish: refresh recency, keep first body
      Lru.erase(E.LruIt);
    E.Ready = true;
    E.Text = std::move(Text);
    E.LruIt = Lru.insert(Lru.end(), Hash);
    ++S.Published;
    // Enforce the cap over *finished* bodies only; in-flight slots have
    // waiters parked on them and are never evicted.
    while (MaxEntries && Lru.size() > MaxEntries) {
      Slots.erase(Lru.front());
      Lru.pop_front();
      ++S.Evictions;
    }
  }
  CV.notify_all();
}

void HotCache::abandon(const std::string &Key, const std::string &Hash) {
  (void)Key;
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Slots.find(Hash);
    // Only an in-flight slot is removed: abandon after someone else
    // published (can't happen with a correct owner, but stay safe) must
    // not discard the finished body.
    if (It != Slots.end() && !It->second.Ready)
      Slots.erase(It);
    ++S.Abandoned;
  }
  CV.notify_all();
}

HotCacheStats HotCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return S;
}

size_t HotCache::size() const {
  std::lock_guard<std::mutex> Lock(M);
  size_t N = 0;
  for (const auto &[Hash, E] : Slots)
    if (E.Ready)
      ++N;
  return N;
}
