#include "server/Client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <random>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace tcc;
using namespace tcc::server;

const char *server::transportErrorName(TransportError E) {
  switch (E) {
  case TransportError::None:
    return "none";
  case TransportError::ConnectFailed:
    return "connect-failed";
  case TransportError::ConnectRefused:
    return "connect-refused";
  case TransportError::SendFailed:
    return "send-failed";
  case TransportError::PeerClosed:
    return "peer-closed";
  case TransportError::PartialResponse:
    return "partial-response";
  case TransportError::Timeout:
    return "timeout";
  case TransportError::Protocol:
    return "protocol";
  }
  return "none";
}

Client::~Client() { close(); }

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Client::connect(const std::string &SocketPath, std::string &Error) {
  close();
  LastError = TransportError::ConnectFailed;

  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path '" + SocketPath + "' exceeds the " +
            std::to_string(sizeof(Addr.sun_path) - 1) + "-byte limit";
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("cannot create socket: ") + std::strerror(errno);
    return false;
  }

  // Non-blocking connect so the deadline also covers a daemon whose
  // accept queue is full (connect() on a Unix socket blocks then, e.g.
  // mid-restart when the old listener's backlog is saturated).
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0 || ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) < 0) {
    Error = std::string("cannot set socket non-blocking: ") +
            std::strerror(errno);
    close();
    return false;
  }

  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    if (errno == EINPROGRESS || errno == EAGAIN) {
      // In flight (or backlog-full on some kernels): wait for the
      // socket to become writable, then read the final verdict.
      pollfd P;
      P.fd = Fd;
      P.events = POLLOUT;
      P.revents = 0;
      int R;
      do {
        R = ::poll(&P, 1, TimeoutMs > 0 ? TimeoutMs : -1);
      } while (R < 0 && errno == EINTR);
      if (R == 0) {
        LastError = TransportError::Timeout;
        Error = "connect to '" + SocketPath + "' timed out after " +
                std::to_string(TimeoutMs) + " ms";
        close();
        return false;
      }
      int SoErr = 0;
      socklen_t Len = sizeof(SoErr);
      if (R < 0 ||
          ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoErr, &Len) < 0) {
        Error = std::string("cannot complete connect to '") + SocketPath +
                "': " + std::strerror(errno);
        close();
        return false;
      }
      if (SoErr != 0) {
        errno = SoErr;
        // Fall through to the shared classification below.
      } else {
        goto connected;
      }
    }
    // Classify.  ECONNREFUSED: socket file exists but nobody is
    // listening (daemon dead or mid-restart with a stale socket).
    // ENOENT: no socket file at all (daemon never started or already
    // unlinked its socket while shutting down).  EAGAIN on a blocking
    // Unix connect means the backlog is full — the daemon is alive but
    // saturated.  All three prove the request was never admitted.
    if (errno == ECONNREFUSED || errno == ENOENT || errno == EAGAIN) {
      LastError = TransportError::ConnectRefused;
      Error = "cannot connect to daemon at '" + SocketPath +
              "': " + std::strerror(errno) + " (is tccd running?)";
    } else {
      Error = "cannot connect to daemon at '" + SocketPath +
              "': " + std::strerror(errno);
    }
    close();
    return false;
  }

connected:
  // Leave the fd non-blocking: all frame I/O below is poll-based and
  // handles EAGAIN, and a blocking fd would defeat the read deadline.
  LastError = TransportError::None;
  return true;
}

bool Client::roundTrip(const Request &Req, Response &Resp,
                       std::string &Error) {
  if (Fd < 0) {
    LastError = TransportError::ConnectFailed;
    Error = "not connected";
    return false;
  }
  std::string IoError;
  FrameIO W = writeFrameDeadline(Fd, encodeRequest(Req), TimeoutMs, IoError);
  if (W != FrameIO::Ok) {
    if (W == FrameIO::Timeout) {
      LastError = TransportError::Timeout;
      Error = "cannot send request: " + IoError;
    } else if (errno == EPIPE || errno == ECONNRESET) {
      // The daemon closed its end before reading our frame.  One
      // legitimate reason: load shedding writes a busy response and
      // hangs up without ever reading, and that frame races our own
      // write.  It was sent before the close, so it is already queued
      // locally — drain it so the busy hint is not lost to the race.
      std::string Pending, DrainError;
      if (readFrameDeadline(Fd, Pending, /*TimeoutMs=*/1000, DrainError) ==
              FrameIO::Ok &&
          decodeResponse(Pending, Resp, DrainError)) {
        LastError = TransportError::None;
        close();
        return true;
      }
      // No parked response: the daemon is shutting down (drain closes
      // idle connections) or was killed.  Nothing was admitted, so this
      // is safe to retry elsewhere/later.
      LastError = TransportError::PeerClosed;
      Error = "daemon is shutting down (connection closed before the "
              "request was read)";
    } else {
      LastError = TransportError::SendFailed;
      Error = "cannot send request: " + IoError;
    }
    close();
    return false;
  }

  std::string Payload;
  FrameIO R = readFrameDeadline(Fd, Payload, TimeoutMs, IoError);
  if (R != FrameIO::Ok) {
    switch (R) {
    case FrameIO::CleanEof:
      // A killed daemon shows up here as clean EOF before any response
      // byte: the request was never answered, so it never completed —
      // safe to retry against a restarted daemon.
      LastError = TransportError::PeerClosed;
      Error = "daemon closed the connection before responding (was it "
              "killed mid-request?)";
      break;
    case FrameIO::Timeout:
      LastError = TransportError::Timeout;
      Error = "no response within " + std::to_string(TimeoutMs) +
              " ms (" + IoError + ")";
      break;
    default:
      LastError = TransportError::PartialResponse;
      Error = IoError;
      break;
    }
    close();
    return false;
  }
  if (!decodeResponse(Payload, Resp, Error)) {
    LastError = TransportError::Protocol;
    close();
    return false;
  }
  LastError = TransportError::None;
  return true;
}

bool server::runRequest(const std::string &SocketPath, const Request &Req,
                        Response &Resp, std::string &Error) {
  Client C;
  return C.connect(SocketPath, Error) && C.roundTrip(Req, Resp, Error);
}

namespace {

/// Backoff before attempt \p Attempt (1-based count of failures so
/// far): exponential from 25 ms, capped at 500 ms, jittered to 50–150%
/// so a fleet of clients retrying against a restarting daemon does not
/// stampede in lockstep.  \p HintMs (a busy response's retry-after)
/// raises the floor when present.
int backoffMs(unsigned Attempt, int HintMs) {
  long long Base = 25LL << (Attempt > 5 ? 5 : Attempt - 1);
  if (Base > 500)
    Base = 500;
  if (HintMs > Base)
    Base = HintMs;
  static thread_local std::mt19937 Rng{std::random_device{}()};
  std::uniform_int_distribution<int> Jitter(static_cast<int>(Base / 2),
                                            static_cast<int>(Base * 3 / 2));
  return Jitter(Rng);
}

} // namespace

CallOutcome server::runRequestWithRetry(const std::string &SocketPath,
                                        const Request &Req,
                                        const ClientOptions &Opts,
                                        Response &Resp,
                                        std::string &Error) {
  using Clock = std::chrono::steady_clock;
  const auto Start = Clock::now();
  auto BudgetLeftMs = [&]() -> long long {
    if (Opts.RetryBudgetMs <= 0)
      return 0;
    auto Spent = std::chrono::duration_cast<std::chrono::milliseconds>(
                     Clock::now() - Start)
                     .count();
    return Opts.RetryBudgetMs - Spent;
  };

  CallOutcome Outcome;
  for (;;) {
    ++Outcome.Attempts;
    Client C(Opts.TimeoutMs);
    bool Ok = C.connect(SocketPath, Error) && C.roundTrip(Req, Resp, Error);
    if (Ok) {
      Outcome.Failure = TransportError::None;
      if (Resp.Exit != BusyExit) {
        Outcome.Ok = true;
        return Outcome;
      }
      // Shed under load: complete, never admitted, always retryable.
      if (Outcome.Attempts > Opts.Retries || BudgetLeftMs() <= 0) {
        // Budget exhausted: surface the busy response itself so the
        // caller can distinguish "overloaded" from "broken".
        Outcome.Ok = true;
        return Outcome;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(
          backoffMs(Outcome.Attempts, Resp.RetryAfterMs)));
      continue;
    }

    Outcome.Failure = C.lastError();
    if (!C.retrySafe() || Outcome.Attempts > Opts.Retries ||
        BudgetLeftMs() <= 0)
      return Outcome;
    long long Wait = backoffMs(Outcome.Attempts, -1);
    long long Left = BudgetLeftMs();
    if (Wait > Left)
      Wait = Left; // Sleep at most to the budget edge, then try once.
    if (Wait > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(Wait));
  }
}
