#include "server/Client.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace tcc;
using namespace tcc::server;

Client::~Client() { close(); }

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Client::connect(const std::string &SocketPath, std::string &Error) {
  close();
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path '" + SocketPath + "' exceeds the " +
            std::to_string(sizeof(Addr.sun_path) - 1) + "-byte limit";
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("cannot create socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = "cannot connect to daemon at '" + SocketPath +
            "': " + std::strerror(errno) +
            (errno == ECONNREFUSED || errno == ENOENT
                 ? " (is tccd running?)"
                 : "");
    close();
    return false;
  }
  return true;
}

bool Client::roundTrip(const Request &Req, Response &Resp,
                       std::string &Error) {
  if (Fd < 0) {
    Error = "not connected";
    return false;
  }
  if (!writeFrame(Fd, encodeRequest(Req))) {
    Error = std::string("cannot send request: ") + std::strerror(errno);
    close();
    return false;
  }
  std::string Payload;
  if (!readFrame(Fd, Payload, Error)) {
    // A killed daemon shows up here as clean EOF: report it, never hang.
    if (Error.empty())
      Error = "daemon closed the connection before responding (was it "
              "killed mid-request?)";
    close();
    return false;
  }
  if (!decodeResponse(Payload, Resp, Error)) {
    close();
    return false;
  }
  return true;
}

bool server::runRequest(const std::string &SocketPath, const Request &Req,
                        Response &Resp, std::string &Error) {
  Client C;
  return C.connect(SocketPath, Error) && C.roundTrip(Req, Resp, Error);
}
